# Empty dependencies file for ablation_uniform_branch.
# This may be replaced when dependencies are built.
