file(REMOVE_RECURSE
  "CMakeFiles/ablation_uniform_branch.dir/ablation_uniform_branch.cpp.o"
  "CMakeFiles/ablation_uniform_branch.dir/ablation_uniform_branch.cpp.o.d"
  "ablation_uniform_branch"
  "ablation_uniform_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uniform_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
