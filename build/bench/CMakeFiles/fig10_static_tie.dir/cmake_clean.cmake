file(REMOVE_RECURSE
  "CMakeFiles/fig10_static_tie.dir/fig10_static_tie.cpp.o"
  "CMakeFiles/fig10_static_tie.dir/fig10_static_tie.cpp.o.d"
  "fig10_static_tie"
  "fig10_static_tie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_static_tie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
