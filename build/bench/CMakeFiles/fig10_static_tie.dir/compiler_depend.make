# Empty compiler generated dependencies file for fig10_static_tie.
# This may be replaced when dependencies are built.
