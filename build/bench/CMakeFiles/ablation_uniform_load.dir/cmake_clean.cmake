file(REMOVE_RECURSE
  "CMakeFiles/ablation_uniform_load.dir/ablation_uniform_load.cpp.o"
  "CMakeFiles/ablation_uniform_load.dir/ablation_uniform_load.cpp.o.d"
  "ablation_uniform_load"
  "ablation_uniform_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uniform_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
