# Empty dependencies file for ablation_uniform_load.
# This may be replaced when dependencies are built.
