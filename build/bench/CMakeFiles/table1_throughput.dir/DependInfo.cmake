
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_throughput.cpp" "bench/CMakeFiles/table1_throughput.dir/table1_throughput.cpp.o" "gcc" "bench/CMakeFiles/table1_throughput.dir/table1_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtvec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
