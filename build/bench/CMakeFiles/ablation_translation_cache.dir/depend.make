# Empty dependencies file for ablation_translation_cache.
# This may be replaced when dependencies are built.
