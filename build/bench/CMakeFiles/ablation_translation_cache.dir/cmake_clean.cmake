file(REMOVE_RECURSE
  "CMakeFiles/ablation_translation_cache.dir/ablation_translation_cache.cpp.o"
  "CMakeFiles/ablation_translation_cache.dir/ablation_translation_cache.cpp.o.d"
  "ablation_translation_cache"
  "ablation_translation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_translation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
