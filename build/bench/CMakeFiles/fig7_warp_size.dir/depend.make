# Empty dependencies file for fig7_warp_size.
# This may be replaced when dependencies are built.
