file(REMOVE_RECURSE
  "CMakeFiles/fig8_liveness.dir/fig8_liveness.cpp.o"
  "CMakeFiles/fig8_liveness.dir/fig8_liveness.cpp.o.d"
  "fig8_liveness"
  "fig8_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
