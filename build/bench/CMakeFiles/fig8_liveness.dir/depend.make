# Empty dependencies file for fig8_liveness.
# This may be replaced when dependencies are built.
