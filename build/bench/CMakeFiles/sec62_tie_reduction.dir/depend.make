# Empty dependencies file for sec62_tie_reduction.
# This may be replaced when dependencies are built.
