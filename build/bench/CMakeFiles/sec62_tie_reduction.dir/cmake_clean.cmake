file(REMOVE_RECURSE
  "CMakeFiles/sec62_tie_reduction.dir/sec62_tie_reduction.cpp.o"
  "CMakeFiles/sec62_tie_reduction.dir/sec62_tie_reduction.cpp.o.d"
  "sec62_tie_reduction"
  "sec62_tie_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_tie_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
