# Empty compiler generated dependencies file for fig9_cycles.
# This may be replaced when dependencies are built.
