# Empty dependencies file for simtvec_analysis.
# This may be replaced when dependencies are built.
