file(REMOVE_RECURSE
  "libsimtvec_analysis.a"
)
