src/CMakeFiles/simtvec_analysis.dir/analysis/_placeholder.cpp.o: \
 /root/repo/src/analysis/_placeholder.cpp /usr/include/stdc-predef.h
