file(REMOVE_RECURSE
  "CMakeFiles/simtvec_analysis.dir/analysis/CFG.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/CFG.cpp.o.d"
  "CMakeFiles/simtvec_analysis.dir/analysis/Dominators.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/Dominators.cpp.o.d"
  "CMakeFiles/simtvec_analysis.dir/analysis/Liveness.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/Liveness.cpp.o.d"
  "CMakeFiles/simtvec_analysis.dir/analysis/LoopInfo.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/LoopInfo.cpp.o.d"
  "CMakeFiles/simtvec_analysis.dir/analysis/Variance.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/Variance.cpp.o.d"
  "CMakeFiles/simtvec_analysis.dir/analysis/_placeholder.cpp.o"
  "CMakeFiles/simtvec_analysis.dir/analysis/_placeholder.cpp.o.d"
  "libsimtvec_analysis.a"
  "libsimtvec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
