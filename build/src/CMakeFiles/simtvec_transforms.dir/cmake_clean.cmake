file(REMOVE_RECURSE
  "CMakeFiles/simtvec_transforms.dir/transforms/BarrierSplit.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/BarrierSplit.cpp.o.d"
  "CMakeFiles/simtvec_transforms.dir/transforms/ConstantFold.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/ConstantFold.cpp.o.d"
  "CMakeFiles/simtvec_transforms.dir/transforms/DeadCodeElim.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/DeadCodeElim.cpp.o.d"
  "CMakeFiles/simtvec_transforms.dir/transforms/LocalCSE.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/LocalCSE.cpp.o.d"
  "CMakeFiles/simtvec_transforms.dir/transforms/PredicateToSelect.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/PredicateToSelect.cpp.o.d"
  "CMakeFiles/simtvec_transforms.dir/transforms/_placeholder.cpp.o"
  "CMakeFiles/simtvec_transforms.dir/transforms/_placeholder.cpp.o.d"
  "libsimtvec_transforms.a"
  "libsimtvec_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
