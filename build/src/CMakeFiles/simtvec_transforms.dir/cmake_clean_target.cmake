file(REMOVE_RECURSE
  "libsimtvec_transforms.a"
)
