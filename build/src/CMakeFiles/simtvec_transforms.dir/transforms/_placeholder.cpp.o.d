src/CMakeFiles/simtvec_transforms.dir/transforms/_placeholder.cpp.o: \
 /root/repo/src/transforms/_placeholder.cpp /usr/include/stdc-predef.h
