
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/BarrierSplit.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/BarrierSplit.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/BarrierSplit.cpp.o.d"
  "/root/repo/src/transforms/ConstantFold.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/ConstantFold.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/ConstantFold.cpp.o.d"
  "/root/repo/src/transforms/DeadCodeElim.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/DeadCodeElim.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/DeadCodeElim.cpp.o.d"
  "/root/repo/src/transforms/LocalCSE.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/LocalCSE.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/LocalCSE.cpp.o.d"
  "/root/repo/src/transforms/PredicateToSelect.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/PredicateToSelect.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/PredicateToSelect.cpp.o.d"
  "/root/repo/src/transforms/_placeholder.cpp" "src/CMakeFiles/simtvec_transforms.dir/transforms/_placeholder.cpp.o" "gcc" "src/CMakeFiles/simtvec_transforms.dir/transforms/_placeholder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
