# Empty compiler generated dependencies file for simtvec_transforms.
# This may be replaced when dependencies are built.
