# Empty compiler generated dependencies file for simtvec_vm.
# This may be replaced when dependencies are built.
