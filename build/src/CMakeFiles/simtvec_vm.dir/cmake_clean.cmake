file(REMOVE_RECURSE
  "CMakeFiles/simtvec_vm.dir/vm/Executable.cpp.o"
  "CMakeFiles/simtvec_vm.dir/vm/Executable.cpp.o.d"
  "CMakeFiles/simtvec_vm.dir/vm/Interpreter.cpp.o"
  "CMakeFiles/simtvec_vm.dir/vm/Interpreter.cpp.o.d"
  "CMakeFiles/simtvec_vm.dir/vm/MachineModel.cpp.o"
  "CMakeFiles/simtvec_vm.dir/vm/MachineModel.cpp.o.d"
  "CMakeFiles/simtvec_vm.dir/vm/_placeholder.cpp.o"
  "CMakeFiles/simtvec_vm.dir/vm/_placeholder.cpp.o.d"
  "libsimtvec_vm.a"
  "libsimtvec_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
