file(REMOVE_RECURSE
  "libsimtvec_vm.a"
)
