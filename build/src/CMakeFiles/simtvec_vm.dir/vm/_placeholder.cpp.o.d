src/CMakeFiles/simtvec_vm.dir/vm/_placeholder.cpp.o: \
 /root/repo/src/vm/_placeholder.cpp /usr/include/stdc-predef.h
