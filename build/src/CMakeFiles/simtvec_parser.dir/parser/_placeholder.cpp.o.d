src/CMakeFiles/simtvec_parser.dir/parser/_placeholder.cpp.o: \
 /root/repo/src/parser/_placeholder.cpp /usr/include/stdc-predef.h
