file(REMOVE_RECURSE
  "libsimtvec_parser.a"
)
