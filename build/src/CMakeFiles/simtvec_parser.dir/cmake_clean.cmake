file(REMOVE_RECURSE
  "CMakeFiles/simtvec_parser.dir/parser/Lexer.cpp.o"
  "CMakeFiles/simtvec_parser.dir/parser/Lexer.cpp.o.d"
  "CMakeFiles/simtvec_parser.dir/parser/Parser.cpp.o"
  "CMakeFiles/simtvec_parser.dir/parser/Parser.cpp.o.d"
  "CMakeFiles/simtvec_parser.dir/parser/_placeholder.cpp.o"
  "CMakeFiles/simtvec_parser.dir/parser/_placeholder.cpp.o.d"
  "libsimtvec_parser.a"
  "libsimtvec_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
