# Empty dependencies file for simtvec_parser.
# This may be replaced when dependencies are built.
