# Empty compiler generated dependencies file for simtvec_runtime.
# This may be replaced when dependencies are built.
