file(REMOVE_RECURSE
  "libsimtvec_runtime.a"
)
