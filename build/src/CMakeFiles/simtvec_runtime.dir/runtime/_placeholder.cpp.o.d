src/CMakeFiles/simtvec_runtime.dir/runtime/_placeholder.cpp.o: \
 /root/repo/src/runtime/_placeholder.cpp /usr/include/stdc-predef.h
