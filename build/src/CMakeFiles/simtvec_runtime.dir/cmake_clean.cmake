file(REMOVE_RECURSE
  "CMakeFiles/simtvec_runtime.dir/runtime/Runtime.cpp.o"
  "CMakeFiles/simtvec_runtime.dir/runtime/Runtime.cpp.o.d"
  "CMakeFiles/simtvec_runtime.dir/runtime/_placeholder.cpp.o"
  "CMakeFiles/simtvec_runtime.dir/runtime/_placeholder.cpp.o.d"
  "libsimtvec_runtime.a"
  "libsimtvec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
