src/CMakeFiles/simtvec_core.dir/core/_placeholder.cpp.o: \
 /root/repo/src/core/_placeholder.cpp /usr/include/stdc-predef.h
