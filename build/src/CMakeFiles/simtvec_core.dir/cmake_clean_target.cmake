file(REMOVE_RECURSE
  "libsimtvec_core.a"
)
