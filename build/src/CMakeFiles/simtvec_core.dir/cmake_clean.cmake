file(REMOVE_RECURSE
  "CMakeFiles/simtvec_core.dir/core/ExecutionManager.cpp.o"
  "CMakeFiles/simtvec_core.dir/core/ExecutionManager.cpp.o.d"
  "CMakeFiles/simtvec_core.dir/core/TranslationCache.cpp.o"
  "CMakeFiles/simtvec_core.dir/core/TranslationCache.cpp.o.d"
  "CMakeFiles/simtvec_core.dir/core/Vectorizer.cpp.o"
  "CMakeFiles/simtvec_core.dir/core/Vectorizer.cpp.o.d"
  "CMakeFiles/simtvec_core.dir/core/_placeholder.cpp.o"
  "CMakeFiles/simtvec_core.dir/core/_placeholder.cpp.o.d"
  "libsimtvec_core.a"
  "libsimtvec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
