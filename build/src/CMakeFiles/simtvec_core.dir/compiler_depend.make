# Empty compiler generated dependencies file for simtvec_core.
# This may be replaced when dependencies are built.
