file(REMOVE_RECURSE
  "CMakeFiles/simtvec_support.dir/support/Format.cpp.o"
  "CMakeFiles/simtvec_support.dir/support/Format.cpp.o.d"
  "libsimtvec_support.a"
  "libsimtvec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
