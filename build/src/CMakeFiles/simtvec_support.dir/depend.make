# Empty dependencies file for simtvec_support.
# This may be replaced when dependencies are built.
