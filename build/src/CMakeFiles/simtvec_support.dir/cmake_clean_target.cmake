file(REMOVE_RECURSE
  "libsimtvec_support.a"
)
