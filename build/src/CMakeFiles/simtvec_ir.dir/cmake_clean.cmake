file(REMOVE_RECURSE
  "CMakeFiles/simtvec_ir.dir/ir/Kernel.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Kernel.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/Opcode.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Opcode.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/Operand.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Operand.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/ScalarOps.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/ScalarOps.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Type.cpp.o.d"
  "CMakeFiles/simtvec_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/simtvec_ir.dir/ir/Verifier.cpp.o.d"
  "libsimtvec_ir.a"
  "libsimtvec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
