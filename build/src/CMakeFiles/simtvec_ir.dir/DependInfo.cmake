
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Kernel.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Kernel.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Kernel.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Opcode.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Operand.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Operand.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Operand.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/ScalarOps.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/ScalarOps.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/ScalarOps.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/simtvec_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/simtvec_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
