# Empty dependencies file for simtvec_ir.
# This may be replaced when dependencies are built.
