file(REMOVE_RECURSE
  "libsimtvec_ir.a"
)
