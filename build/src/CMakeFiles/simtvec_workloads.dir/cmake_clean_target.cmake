file(REMOVE_RECURSE
  "libsimtvec_workloads.a"
)
