
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BinomialOptions.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/BinomialOptions.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/BinomialOptions.cpp.o.d"
  "/root/repo/src/workloads/Bitonic.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Bitonic.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Bitonic.cpp.o.d"
  "/root/repo/src/workloads/BlackScholes.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/BlackScholes.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/BlackScholes.cpp.o.d"
  "/root/repo/src/workloads/BoxFilter.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/BoxFilter.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/BoxFilter.cpp.o.d"
  "/root/repo/src/workloads/ConvolutionSeparable.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/ConvolutionSeparable.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/ConvolutionSeparable.cpp.o.d"
  "/root/repo/src/workloads/Cp.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Cp.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Cp.cpp.o.d"
  "/root/repo/src/workloads/FastWalsh.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/FastWalsh.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/FastWalsh.cpp.o.d"
  "/root/repo/src/workloads/Histogram64.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Histogram64.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Histogram64.cpp.o.d"
  "/root/repo/src/workloads/Mandelbrot.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Mandelbrot.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Mandelbrot.cpp.o.d"
  "/root/repo/src/workloads/MatrixMul.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/MatrixMul.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/MatrixMul.cpp.o.d"
  "/root/repo/src/workloads/MersenneTwister.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/MersenneTwister.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/MersenneTwister.cpp.o.d"
  "/root/repo/src/workloads/MonteCarlo.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/MonteCarlo.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/MonteCarlo.cpp.o.d"
  "/root/repo/src/workloads/MriFhd.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/MriFhd.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/MriFhd.cpp.o.d"
  "/root/repo/src/workloads/MriQ.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/MriQ.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/MriQ.cpp.o.d"
  "/root/repo/src/workloads/Nbody.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Nbody.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Nbody.cpp.o.d"
  "/root/repo/src/workloads/Reduction.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Reduction.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Reduction.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Registry.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Registry.cpp.o.d"
  "/root/repo/src/workloads/ScalarProd.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/ScalarProd.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/ScalarProd.cpp.o.d"
  "/root/repo/src/workloads/Scan.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Scan.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Scan.cpp.o.d"
  "/root/repo/src/workloads/SobolQRNG.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/SobolQRNG.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/SobolQRNG.cpp.o.d"
  "/root/repo/src/workloads/Throughput.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Throughput.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Throughput.cpp.o.d"
  "/root/repo/src/workloads/Transpose.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/Transpose.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/Transpose.cpp.o.d"
  "/root/repo/src/workloads/VectorAdd.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/VectorAdd.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/VectorAdd.cpp.o.d"
  "/root/repo/src/workloads/_placeholder.cpp" "src/CMakeFiles/simtvec_workloads.dir/workloads/_placeholder.cpp.o" "gcc" "src/CMakeFiles/simtvec_workloads.dir/workloads/_placeholder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtvec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
