# Empty dependencies file for simtvec_workloads.
# This may be replaced when dependencies are built.
