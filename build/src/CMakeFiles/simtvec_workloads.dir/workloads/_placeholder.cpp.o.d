src/CMakeFiles/simtvec_workloads.dir/workloads/_placeholder.cpp.o: \
 /root/repo/src/workloads/_placeholder.cpp /usr/include/stdc-predef.h
