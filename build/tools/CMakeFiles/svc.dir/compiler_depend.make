# Empty compiler generated dependencies file for svc.
# This may be replaced when dependencies are built.
