file(REMOVE_RECURSE
  "CMakeFiles/svc.dir/svc.cpp.o"
  "CMakeFiles/svc.dir/svc.cpp.o.d"
  "svc"
  "svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
