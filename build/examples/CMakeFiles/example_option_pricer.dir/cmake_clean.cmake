file(REMOVE_RECURSE
  "CMakeFiles/example_option_pricer.dir/option_pricer.cpp.o"
  "CMakeFiles/example_option_pricer.dir/option_pricer.cpp.o.d"
  "example_option_pricer"
  "example_option_pricer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_option_pricer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
