# Empty dependencies file for example_option_pricer.
# This may be replaced when dependencies are built.
