# Empty compiler generated dependencies file for example_divergence_explorer.
# This may be replaced when dependencies are built.
