file(REMOVE_RECURSE
  "CMakeFiles/example_divergence_explorer.dir/divergence_explorer.cpp.o"
  "CMakeFiles/example_divergence_explorer.dir/divergence_explorer.cpp.o.d"
  "example_divergence_explorer"
  "example_divergence_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_divergence_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
