file(REMOVE_RECURSE
  "CMakeFiles/simtvec_tests.dir/analysis_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/analysis_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/core_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/ir_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/ir_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/parser_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/parser_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/property_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/runtime_smoke_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/runtime_smoke_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/shapes_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/shapes_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/support_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/support_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/transforms_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/transforms_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/vm_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/vm_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/workload_roundtrip_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/workload_roundtrip_test.cpp.o.d"
  "CMakeFiles/simtvec_tests.dir/workloads_test.cpp.o"
  "CMakeFiles/simtvec_tests.dir/workloads_test.cpp.o.d"
  "simtvec_tests"
  "simtvec_tests.pdb"
  "simtvec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtvec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
