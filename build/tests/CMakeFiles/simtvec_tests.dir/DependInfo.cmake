
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/runtime_smoke_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/runtime_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/runtime_smoke_test.cpp.o.d"
  "/root/repo/tests/shapes_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/shapes_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/shapes_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/transforms_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/transforms_test.cpp.o.d"
  "/root/repo/tests/vm_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/vm_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/vm_test.cpp.o.d"
  "/root/repo/tests/workload_roundtrip_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/workload_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/workload_roundtrip_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/simtvec_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/simtvec_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtvec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
