# Empty dependencies file for simtvec_tests.
# This may be replaced when dependencies are built.
