//===- serve/Client.cpp - Serving daemon client -----------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Client.h"

#include "simtvec/support/Format.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtvec;
using namespace simtvec::serve;

ServeClient::~ServeClient() { close(); }

Status ServeClient::connect(const std::string &SocketPath,
                            const std::string &ClientName) {
  if (Fd >= 0)
    return Status::error("serve: client is already connected");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error(formatString(
        "serve: socket path '%s' is empty or longer than %zu bytes",
        SocketPath.c_str(), sizeof(Addr.sun_path) - 1));
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::error(
        formatString("serve: socket(): %s", std::strerror(errno)));
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status E = Status::error(formatString("serve: connect('%s'): %s",
                                          SocketPath.c_str(),
                                          std::strerror(errno)));
    ::close(S);
    return E;
  }
  Fd = S;

  ByteWriter W;
  W.u32(ProtocolVersion);
  W.str(ClientName);
  auto Reply = roundTrip(MsgType::Hello, W, MsgType::HelloOk);
  if (!Reply)
    return Reply.status(); // roundTrip already closed the socket

  ByteReader R(Reply->Payload);
  uint32_t Version = R.u32();
  SessionId = R.u64();
  MaxInFlight = R.u32();
  DevBytes = R.u64();
  if (R.failed() || Version != ProtocolVersion) {
    close();
    return Status::error("serve: malformed HelloOk from daemon");
  }
  return Status::success();
}

void ServeClient::close() {
  if (Fd < 0)
    return;
  // Best-effort Bye so the daemon logs a polite close; EOF works too.
  if (!sendFrame(Fd, MsgType::Bye).isError())
    (void)recvFrame(Fd);
  ::close(Fd);
  Fd = -1;
}

Expected<Frame> ServeClient::roundTrip(MsgType Type, const ByteWriter &W,
                                       MsgType Expect) {
  if (Fd < 0)
    return Status::error("serve: client is not connected");
  if (Status E = sendFrame(Fd, Type, W); E.isError()) {
    ::close(Fd);
    Fd = -1;
    return E;
  }
  auto Reply = recvFrame(Fd);
  if (!Reply) {
    ::close(Fd);
    Fd = -1;
    return Reply.status();
  }
  if (Reply->Type == MsgType::Error) {
    // Server-attributed rejection: the session survives; surface the
    // message. (If the server is about to hang up — framing errors,
    // version mismatch — the *next* round-trip reports the dead socket.)
    ByteReader R(Reply->Payload);
    std::string Msg = R.str();
    return Status::error(R.failed() ? "serve: daemon rejected the request"
                                    : Msg);
  }
  if (Reply->Type != Expect) {
    ::close(Fd);
    Fd = -1;
    return Status::error(formatString(
        "serve: expected reply type %u, got %u",
        static_cast<uint32_t>(Expect), static_cast<uint32_t>(Reply->Type)));
  }
  return Reply;
}

Expected<uint64_t> ServeClient::loadProgram(const std::string &Svir) {
  ByteWriter W;
  W.str(Svir);
  auto Reply = roundTrip(MsgType::LoadProgram, W, MsgType::ProgramOk);
  if (!Reply)
    return Reply.status();
  ByteReader R(Reply->Payload);
  uint64_t Id = R.u64();
  if (R.failed())
    return Status::error("serve: malformed ProgramOk");
  return Id;
}

Expected<uint64_t> ServeClient::alloc(uint64_t Bytes) {
  ByteWriter W;
  W.u64(Bytes);
  auto Reply = roundTrip(MsgType::Alloc, W, MsgType::AllocOk);
  if (!Reply)
    return Reply.status();
  ByteReader R(Reply->Payload);
  uint64_t Addr = R.u64();
  if (R.failed())
    return Status::error("serve: malformed AllocOk");
  return Addr;
}

Status ServeClient::copyIn(uint64_t Dst, const void *Src, size_t N) {
  const auto *P = static_cast<const uint8_t *>(Src);
  // Keep whole frames comfortably under the cap (header fields + payload).
  const size_t Chunk = MaxFrameBytes - 64;
  while (N) {
    const size_t This = N < Chunk ? N : Chunk;
    ByteWriter W;
    W.u64(Dst);
    W.u32(static_cast<uint32_t>(This));
    W.raw(P, This);
    auto Reply = roundTrip(MsgType::CopyIn, W, MsgType::Ok);
    if (!Reply)
      return Reply.status();
    P += This;
    Dst += This;
    N -= This;
  }
  return Status::success();
}

Status ServeClient::copyOut(void *Dst, uint64_t Src, size_t N) {
  auto *P = static_cast<uint8_t *>(Dst);
  const size_t Chunk = MaxFrameBytes - 64;
  while (N) {
    const size_t This = N < Chunk ? N : Chunk;
    ByteWriter W;
    W.u64(Src);
    W.u64(This);
    auto Reply = roundTrip(MsgType::CopyOut, W, MsgType::Data);
    if (!Reply)
      return Reply.status();
    if (Reply->Payload.size() != This) {
      ::close(Fd);
      Fd = -1;
      return Status::error(formatString(
          "serve: CopyOut returned %zu bytes, wanted %zu",
          Reply->Payload.size(), This));
    }
    std::memcpy(P, Reply->Payload.data(), This);
    P += This;
    Src += This;
    N -= This;
  }
  return Status::success();
}

Expected<uint64_t> ServeClient::launch(uint64_t ProgramId,
                                       const std::string &Kernel, Dim3 Grid,
                                       Dim3 Block, const Params &P,
                                       const LaunchOptions &O) {
  ByteWriter W;
  W.u64(ProgramId);
  W.str(Kernel);
  W.u32(Grid.X);
  W.u32(Grid.Y);
  W.u32(Grid.Z);
  W.u32(Block.X);
  W.u32(Block.Y);
  W.u32(Block.Z);
  W.u8(O.Policy == LaunchOptions::WidthPolicy::Auto ? 1 : 0);
  W.u32(O.MaxWarpSize);
  if (!encodeParams(W, P))
    return Status::error(
        "serve: launch Params contain a type the wire cannot carry");
  auto Reply = roundTrip(MsgType::Launch, W, MsgType::LaunchOk);
  if (!Reply)
    return Reply.status();
  ByteReader R(Reply->Payload);
  uint64_t Seq = R.u64();
  if (R.failed())
    return Status::error("serve: malformed LaunchOk");
  return Seq;
}

Status ServeClient::synchronize() {
  ByteWriter W;
  auto Reply = roundTrip(MsgType::Synchronize, W, MsgType::SyncOk);
  if (!Reply)
    return Reply.status();
  ByteReader R(Reply->Payload);
  std::string Deferred = R.str();
  LaunchesDone = R.u64();
  if (R.failed())
    return Status::error("serve: malformed SyncOk");
  if (!Deferred.empty())
    return Status::error(Deferred);
  return Status::success();
}

Expected<std::vector<std::pair<std::string, uint64_t>>>
ServeClient::stats() {
  ByteWriter W;
  auto Reply = roundTrip(MsgType::Stats, W, MsgType::StatsOk);
  if (!Reply)
    return Reply.status();
  ByteReader R(Reply->Payload);
  uint32_t N = R.u32();
  std::vector<std::pair<std::string, uint64_t>> Rows;
  for (uint32_t I = 0; I < N && !R.failed(); ++I) {
    std::string Name = R.str();
    uint64_t Value = R.u64();
    Rows.emplace_back(std::move(Name), Value);
  }
  if (R.failed())
    return Status::error("serve: malformed StatsOk");
  return Rows;
}

Expected<uint64_t> ServeClient::statValue(const std::string &Name) {
  auto Rows = stats();
  if (!Rows)
    return Rows.status();
  for (const auto &KV : *Rows)
    if (KV.first == Name)
      return KV.second;
  return Status::error(
      formatString("serve: no stats row named '%s'", Name.c_str()));
}
