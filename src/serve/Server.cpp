//===- serve/Server.cpp - Multi-tenant serving daemon ----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Threading model:
//  - one acceptor thread (acceptLoop);
//  - one connection thread per session (serveSession) — the only thread
//    that reads from or writes to that session's socket;
//  - one FairScheduler dispatcher thread, which performs every stream
//    submission for every session (so admission control and round-robin
//    ordering are decided in one place);
//  - the process WorkerPool, which drains the streams and runs the
//    launches themselves.
//
// A session's connection thread never touches another session's state, and
// cross-session state (the program registry, daemon counters) is mutex- or
// atomic-guarded. Replies are written only from the connection thread:
// fire-and-forget verbs (CopyIn, Launch) reply as soon as the op is
// queued, CopyOut parks the connection thread on a promise the stream
// fulfils, and Synchronize flushes the scheduler queue before helping
// drain the stream.
//
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Server.h"

#include "simtvec/runtime/WorkerPool.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"

#include <cerrno>
#include <cstring>
#include <future>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtvec;
using namespace simtvec::serve;

//===----------------------------------------------------------------------===//
// FairScheduler
//===----------------------------------------------------------------------===//

FairScheduler::FairScheduler(unsigned MaxInFlight, unsigned MaxQueued)
    : MaxInFlight(MaxInFlight ? MaxInFlight : 1),
      MaxQueued(MaxQueued ? MaxQueued : 1) {
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

FairScheduler::~FairScheduler() { stop(); }

void FairScheduler::addSession(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(M);
  Sessions.emplace(Id, std::make_unique<SessionQ>());
  Order.push_back(Id);
}

void FairScheduler::removeSession(uint64_t Id) {
  flush(Id);
  std::lock_guard<std::mutex> Lock(M);
  Sessions.erase(Id);
  for (size_t I = 0; I < Order.size(); ++I) {
    if (Order[I] == Id) {
      Order.erase(Order.begin() + static_cast<ptrdiff_t>(I));
      if (Cursor > I)
        --Cursor;
      break;
    }
  }
  if (!Order.empty())
    Cursor %= Order.size();
  else
    Cursor = 0;
}

bool FairScheduler::enqueue(uint64_t Id, bool IsLaunch,
                            std::function<void()> Submit) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || Stopping)
    return false; // session already gone / scheduler stopping: dropped
  SessionQ &Q = *It->second;
  // Backpressure: the tenant's own connection thread waits here, so a
  // flooding client throttles itself without consuming daemon memory.
  Q.CV.wait(Lock, [&] { return Q.Items.size() < MaxQueued || Stopping; });
  if (Stopping)
    return false;
  Q.Items.emplace_back(IsLaunch, std::move(Submit));
  WorkCV.notify_one();
  return true;
}

void FairScheduler::onLaunchRetired(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return; // session removed with launches still in flight
  SessionQ &Q = *It->second;
  if (Q.InFlight)
    --Q.InFlight;
  WorkCV.notify_one(); // the freed window slot may admit a queued launch
}

void FairScheduler::flush(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return;
  SessionQ &Q = *It->second;
  // Wait out an in-progress Submit too: removeSession destroys the queue
  // right after flush, and the dispatcher still holds a reference while
  // Submitting is set.
  Q.CV.wait(Lock,
            [&] { return (Q.Items.empty() && !Q.Submitting) || Stopping; });
}

void FairScheduler::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping)
      return;
    Stopping = true;
    for (auto &KV : Sessions)
      KV.second->CV.notify_all();
  }
  WorkCV.notify_all();
  if (Dispatcher.joinable())
    Dispatcher.join();
}

FairScheduler::Stats FairScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return {Dispatched, DeferredCount};
}

void FairScheduler::dispatchLoop() {
  std::unique_lock<std::mutex> Lock(M);
  while (!Stopping) {
    // One rotation: visit every session once starting at the cursor,
    // submitting at most one op each — a deep backlog in one session
    // cannot delay another session's head op by more than one submission.
    bool Progress = false;
    const size_t N = Order.size();
    for (size_t Step = 0; Step < N; ++Step) {
      const size_t Slot = (Cursor + Step) % N;
      auto It = Sessions.find(Order[Slot]);
      if (It == Sessions.end())
        continue;
      SessionQ &Q = *It->second;
      if (Q.Items.empty())
        continue;
      auto &[IsLaunch, Submit] = Q.Items.front();
      if (IsLaunch && Q.InFlight >= MaxInFlight) {
        ++DeferredCount; // admission control held this one back
        continue;
      }
      std::function<void()> Run = std::move(Submit);
      if (IsLaunch)
        ++Q.InFlight;
      Q.Items.pop_front();
      ++Dispatched;
      Q.Submitting = true; // keeps removeSession from freeing Q under us
      // Submit with the lock dropped: it enqueues stream ops (cheap but
      // takes the stream mutex) and must not serialize against enqueue().
      Lock.unlock();
      Run();
      Lock.lock();
      Q.Submitting = false;
      Q.CV.notify_all(); // backpressure / flush waiters
      Progress = true;
      Cursor = (Slot + 1) % N;
      break; // restart the rotation: sessions may have come or gone
    }
    if (!Progress && !Stopping)
      WorkCV.wait(Lock);
  }
  // Unblock any flush()/enqueue() waiters observing Stopping.
  for (auto &KV : Sessions)
    KV.second->CV.notify_all();
}

//===----------------------------------------------------------------------===//
// ServeDaemon::Session
//===----------------------------------------------------------------------===//

struct ServeDaemon::Session {
  uint64_t Id = 0;
  int Fd = -1;
  std::string ClientName;
  bool SaidHello = false;

  // Dev before Strm: the stream synchronizes (and so releases every op
  // referencing the arena) before the arena dies.
  Device Dev;
  Stream Strm;

  /// Program ids this session was granted (LoadProgram replies); launches
  /// resolve only through here, so a tenant cannot guess another tenant's
  /// handles into its own session.
  std::map<uint64_t, std::shared_ptr<Program>> Programs;

  std::atomic<uint64_t> LaunchesSubmitted{0};
  std::atomic<uint64_t> LaunchesCompleted{0};
  std::atomic<uint64_t> BytesIn{0};
  std::atomic<uint64_t> BytesOut{0};

  explicit Session(size_t DeviceBytes) : Dev(DeviceBytes) {}
};

//===----------------------------------------------------------------------===//
// ServeDaemon
//===----------------------------------------------------------------------===//

ServeDaemon::ServeDaemon(ServeOptions O)
    : Opts(std::move(O)), Sched(Opts.MaxInFlight, Opts.MaxQueued) {}

ServeDaemon::~ServeDaemon() { requestStop(); }

Status ServeDaemon::start() {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error(formatString(
        "serve: socket path '%s' is empty or longer than %zu bytes",
        Opts.SocketPath.c_str(), sizeof(Addr.sun_path) - 1));
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(
        formatString("serve: socket(): %s", std::strerror(errno)));

  // Replace a stale socket file from a dead daemon; a *live* daemon still
  // holds its listen fd, and connect() would have succeeded — kick the
  // decision to connect(): if someone answers, the address is taken.
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
      0) {
    ::close(Fd);
    return Status::error(formatString(
        "serve: '%s' already has a live daemon", Opts.SocketPath.c_str()));
  }
  ::unlink(Opts.SocketPath.c_str());

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status E = Status::error(formatString("serve: bind('%s'): %s",
                                          Opts.SocketPath.c_str(),
                                          std::strerror(errno)));
    ::close(Fd);
    return E;
  }
  if (::listen(Fd, 64) != 0) {
    Status E = Status::error(
        formatString("serve: listen(): %s", std::strerror(errno)));
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return E;
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    ListenFd = Fd;
    Running = true;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  trace::instant("serve.start", "serve");
  return Status::success();
}

void ServeDaemon::acceptLoop() {
  for (;;) {
    int LFd;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Stopping)
        return;
      LFd = ListenFd;
    }
    int Fd = ::accept(LFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // requestStop closed the listen fd out from under us (or something
      // fatal happened to it); either way accepting is over.
      return;
    }
    auto S = std::make_shared<Session>(Opts.DeviceBytes);
    S->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Stopping) {
        ::close(Fd);
        return;
      }
      S->Id = NextSessionId++;
      ActiveSessions.push_back(S);
      SessionThreads.emplace_back([this, S] { serveSession(S); });
    }
    SessionsAccepted.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.sessions", 1);
  }
}

void ServeDaemon::serveSession(std::shared_ptr<Session> S) {
  trace::Span SessSpan("serve.session", "serve");
  SessSpan.arg("session", S->Id);
  Sched.addSession(S->Id);

  for (;;) {
    bool AtEof = false;
    auto F = recvFrame(S->Fd, &AtEof);
    if (!F) {
      if (!AtEof) {
        // Garbage framing: tell the peer why (best-effort) and hang up.
        ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global().add("serve.protocol_errors", 1);
        (void)sendError(S->Fd, F.status().message());
      }
      break;
    }
    FramesServed.fetch_add(1, std::memory_order_relaxed);
    if (!handleFrame(*S, *F))
      break;
  }

  // Drain the session: every queued op submitted, every submitted op
  // complete — only then may the Device arena and the Stream die.
  Sched.flush(S->Id);
  (void)S->Strm.synchronize();
  Sched.removeSession(S->Id);
  {
    std::lock_guard<std::mutex> Lock(M);
    // Close under the daemon mutex: requestStop reads S->Fd under M to
    // shutdown() lingering sessions, and must never race a concurrent
    // close/reuse of the descriptor.
    ::close(S->Fd);
    S->Fd = -1;
    for (size_t I = 0; I < ActiveSessions.size(); ++I) {
      if (ActiveSessions[I].get() == S.get()) {
        ActiveSessions[I] = ActiveSessions.back();
        ActiveSessions.pop_back();
        break;
      }
    }
  }
}

bool ServeDaemon::handleFrame(Session &S, const Frame &F) {
  ByteReader R(F.Payload);
  auto Reject = [&](const std::string &Msg) {
    // Client-attributable mistake: report it, keep the session.
    return !sendError(S.Fd, Msg).isError();
  };
  auto Malformed = [&](const char *Verb) {
    // Structurally bad payload: report and close (framing is suspect).
    ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.protocol_errors", 1);
    (void)sendError(S.Fd, formatString("serve: malformed %s payload", Verb));
    return false;
  };

  if (!S.SaidHello && F.Type != MsgType::Hello) {
    (void)sendError(S.Fd, "serve: expected Hello as the first frame");
    return false;
  }

  switch (F.Type) {
  case MsgType::Hello: {
    uint32_t Version = R.u32();
    std::string Name = R.str();
    if (R.failed() || !R.exhausted())
      return Malformed("Hello");
    if (Version != ProtocolVersion) {
      (void)sendError(
          S.Fd, formatString("serve: protocol version %u, server speaks %u",
                             Version, ProtocolVersion));
      return false;
    }
    S.SaidHello = true;
    S.ClientName = Name.substr(0, 256);
    ByteWriter W;
    W.u32(ProtocolVersion);
    W.u64(S.Id);
    W.u32(Opts.MaxInFlight);
    W.u64(Opts.DeviceBytes);
    return !sendFrame(S.Fd, MsgType::HelloOk, W).isError();
  }

  case MsgType::LoadProgram: {
    std::string Svir = R.str();
    if (R.failed() || !R.exhausted())
      return Malformed("LoadProgram");
    const uint64_t SrcHash = fnv1a64(Svir);
    std::shared_ptr<Program> Prog;
    {
      // One compile per distinct source across every tenant: the registry
      // lookup is the moment two sessions start sharing a TranslationCache
      // and the warm artifact store behind it.
      std::lock_guard<std::mutex> Lock(ProgM);
      auto It = ProgramsBySource.find(SrcHash);
      if (It != ProgramsBySource.end())
        Prog = It->second;
    }
    if (!Prog) {
      auto Compiled = Program::compile(Svir, Opts.Machine, Opts.Spec);
      if (!Compiled)
        return Reject(formatString("serve: program rejected: %s",
                                   Compiled.status().message().c_str()));
      Prog = std::shared_ptr<Program>(std::move(Compiled.take()));
      std::lock_guard<std::mutex> Lock(ProgM);
      auto [It, Inserted] = ProgramsBySource.emplace(SrcHash, Prog);
      if (!Inserted)
        Prog = It->second; // another tenant won the compile race
    }
    S.Programs[SrcHash] = Prog;
    ByteWriter W;
    W.u64(SrcHash);
    return !sendFrame(S.Fd, MsgType::ProgramOk, W).isError();
  }

  case MsgType::Alloc: {
    uint64_t Bytes = R.u64();
    if (R.failed() || !R.exhausted())
      return Malformed("Alloc");
    auto Addr = S.Dev.tryAlloc(Bytes);
    if (!Addr)
      return Reject(Addr.status().message());
    ByteWriter W;
    W.u64(*Addr);
    return !sendFrame(S.Fd, MsgType::AllocOk, W).isError();
  }

  case MsgType::CopyIn: {
    uint64_t Dst = R.u64();
    uint32_t N = R.u32();
    if (R.failed() || R.remaining() != N)
      return Malformed("CopyIn");
    if (Dst > S.Dev.size() || N > S.Dev.size() - Dst)
      return Reject(formatString(
          "serve: CopyIn [%llu, +%u) outside the %zu-byte arena",
          static_cast<unsigned long long>(Dst), N, S.Dev.size()));
    // Stream-ordered: the buffer (one heap copy of the frame tail) stays
    // alive inside the op closure until the copy has run.
    auto Buf = std::make_shared<std::vector<uint8_t>>(
        F.Payload.end() - static_cast<ptrdiff_t>(N), F.Payload.end());
    if (!Sched.enqueue(S.Id, /*IsLaunch=*/false, [&S, Dst, N, Buf] {
          S.Dev.copyToDeviceAsync(S.Strm, Dst, Buf->data(), N);
          S.Strm.addCallback([Buf](const Status &) {});
        }))
      return Reject("serve: daemon is shutting down");
    S.BytesIn.fetch_add(N, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.bytes_in", N);
    return !sendFrame(S.Fd, MsgType::Ok).isError();
  }

  case MsgType::CopyOut: {
    uint64_t Src = R.u64();
    uint64_t N = R.u64();
    if (R.failed() || !R.exhausted())
      return Malformed("CopyOut");
    if (N > MaxFrameBytes)
      return Reject(formatString(
          "serve: CopyOut of %llu bytes exceeds the %u-byte frame cap",
          static_cast<unsigned long long>(N), MaxFrameBytes));
    if (Src > S.Dev.size() || N > S.Dev.size() - Src)
      return Reject(formatString(
          "serve: CopyOut [%llu, +%llu) outside the %zu-byte arena",
          static_cast<unsigned long long>(Src),
          static_cast<unsigned long long>(N), S.Dev.size()));
    auto Buf = std::make_shared<std::vector<uint8_t>>(N);
    auto Done = std::make_shared<std::promise<void>>();
    std::future<void> Ready = Done->get_future();
    if (!Sched.enqueue(S.Id, /*IsLaunch=*/false, [&S, Src, N, Buf, Done] {
          S.Dev.copyFromDeviceAsync(S.Strm, Buf->data(), Src, N);
          S.Strm.addCallback(
              [Buf, Done](const Status &) { Done->set_value(); });
        }))
      return Reject("serve: daemon is shutting down");
    // Stream-ordered read-back: every op this session submitted before the
    // CopyOut has completed by the time the callback fulfils the promise.
    Ready.wait();
    S.BytesOut.fetch_add(N, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.bytes_out", N);
    return !sendFrame(S.Fd, MsgType::Data, Buf->data(), Buf->size())
                .isError();
  }

  case MsgType::Launch: {
    uint64_t ProgId = R.u64();
    std::string Kernel = R.str();
    Dim3 Grid{R.u32(), R.u32(), R.u32()};
    Dim3 Block{R.u32(), R.u32(), R.u32()};
    uint8_t WidthAuto = R.u8();
    uint32_t MaxWarp = R.u32();
    auto P = std::make_shared<Params>();
    if (!decodeParams(R, *P) || R.failed() || !R.exhausted())
      return Malformed("Launch");
    auto It = S.Programs.find(ProgId);
    if (It == S.Programs.end())
      return Reject(formatString("serve: unknown program id %016llx",
                                 static_cast<unsigned long long>(ProgId)));
    std::shared_ptr<Program> Prog = It->second;
    LaunchOptions O;
    O.Policy = WidthAuto ? LaunchOptions::WidthPolicy::Auto
                         : LaunchOptions::WidthPolicy::Fixed;
    if (!WidthAuto)
      O.MaxWarpSize = MaxWarp;
    const uint64_t Seq =
        S.LaunchesSubmitted.fetch_add(1, std::memory_order_relaxed) + 1;
    LaunchCount.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.launches", 1);
    FairScheduler *Sch = &Sched;
    const uint64_t Sid = S.Id;
    Session *SP = &S;
    if (!Sched.enqueue(
            S.Id, /*IsLaunch=*/true,
            [SP, Sch, Sid, Prog, Kernel, Grid, Block, P, O] {
              // A submission-time rejection (bad params, bad width) still
              // lands in the stream's deferred error, so the tenant sees
              // it at its next Synchronize; the callback below retires the
              // window slot either way — launchAsync never enqueues for
              // rejected launches, making the callback the very next
              // stream op.
              (void)Prog->launchAsync(SP->Strm, SP->Dev, Kernel, Grid,
                                      Block, *P, O);
              SP->Strm.addCallback([SP, Sch, Sid](const Status &) {
                SP->LaunchesCompleted.fetch_add(1,
                                                std::memory_order_relaxed);
                Sch->onLaunchRetired(Sid);
              });
            }))
      return Reject("serve: daemon is shutting down");
    ByteWriter W;
    W.u64(Seq);
    return !sendFrame(S.Fd, MsgType::LaunchOk, W).isError();
  }

  case MsgType::Synchronize: {
    if (!R.exhausted())
      return Malformed("Synchronize");
    Sched.flush(S.Id); // every queued op is in the stream...
    Status E = S.Strm.synchronize(); // ...and the stream is drained
    ByteWriter W;
    W.str(E.isError() ? E.message() : std::string());
    W.u64(S.LaunchesCompleted.load(std::memory_order_relaxed));
    return !sendFrame(S.Fd, MsgType::SyncOk, W).isError();
  }

  case MsgType::Stats: {
    if (!R.exhausted())
      return Malformed("Stats");
    ByteWriter W;
    std::vector<std::pair<std::string, uint64_t>> Rows;
    Rows.emplace_back("session.launches",
                      S.LaunchesSubmitted.load(std::memory_order_relaxed));
    Rows.emplace_back("session.launches_completed",
                      S.LaunchesCompleted.load(std::memory_order_relaxed));
    Rows.emplace_back("session.bytes_in",
                      S.BytesIn.load(std::memory_order_relaxed));
    Rows.emplace_back("session.bytes_out",
                      S.BytesOut.load(std::memory_order_relaxed));
    Rows.emplace_back("session.programs", S.Programs.size());
    auto Snap = MetricsRegistry::global().snapshot();
    for (auto &KV : Snap.Counters)
      Rows.emplace_back(KV.first, KV.second);
    W.u32(static_cast<uint32_t>(Rows.size()));
    for (auto &KV : Rows) {
      W.str(KV.first);
      W.u64(KV.second);
    }
    return !sendFrame(S.Fd, MsgType::StatsOk, W).isError();
  }

  case MsgType::Bye: {
    (void)sendFrame(S.Fd, MsgType::Ok);
    return false;
  }

  default:
    ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().add("serve.protocol_errors", 1);
    (void)sendError(S.Fd, formatString("serve: unknown message type %u",
                                       static_cast<uint32_t>(F.Type)));
    return false;
  }
}

void ServeDaemon::requestStop() {
  std::thread AcceptorToJoin;
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Running || Stopping)
      return;
    Stopping = true;
    if (ListenFd >= 0) {
      // Closing the fd makes the blocked accept() fail and the loop exit
      // (it re-checks Stopping); shutdown first for portability.
      ::shutdown(ListenFd, SHUT_RDWR);
      ::close(ListenFd);
      ListenFd = -1;
    }
    // Wake session threads blocked in recv: a read-side shutdown delivers
    // EOF, and each session then drains (flush + synchronize) on its own
    // thread — this is what makes SIGTERM a drain, not an abort.
    for (auto &S : ActiveSessions)
      if (S->Fd >= 0)
        ::shutdown(S->Fd, SHUT_RD);
    AcceptorToJoin = std::move(Acceptor);
    ToJoin = std::move(SessionThreads);
  }
  if (AcceptorToJoin.joinable())
    AcceptorToJoin.join();
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
  Sched.stop();
  // Every session synchronized its stream, but stream drain tasks and
  // background work (JIT compiles, governor prunes) may still be on pool
  // threads. Quiesce before the caller returns toward process exit — the
  // leaked global pool must not tear work down mid-flight.
  WorkerPool::global().drain();
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(M);
    Running = false;
  }
  trace::instant("serve.stop", "serve");
}

ServeDaemon::Counters ServeDaemon::counters() const {
  Counters C;
  C.SessionsAccepted = SessionsAccepted.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(M);
    C.SessionsActive = ActiveSessions.size();
  }
  C.FramesServed = FramesServed.load(std::memory_order_relaxed);
  C.ProtocolErrors = ProtocolErrors.load(std::memory_order_relaxed);
  C.Launches = LaunchCount.load(std::memory_order_relaxed);
  return C;
}
