//===- serve/Protocol.cpp - Serving wire protocol --------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Protocol.h"

#include "simtvec/support/Format.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace simtvec;
using namespace simtvec::serve;

namespace {

void putU32(uint8_t *Out, uint32_t V) {
  Out[0] = static_cast<uint8_t>(V);
  Out[1] = static_cast<uint8_t>(V >> 8);
  Out[2] = static_cast<uint8_t>(V >> 16);
  Out[3] = static_cast<uint8_t>(V >> 24);
}

uint32_t getU32(const uint8_t *In) {
  return static_cast<uint32_t>(In[0]) | (static_cast<uint32_t>(In[1]) << 8) |
         (static_cast<uint32_t>(In[2]) << 16) |
         (static_cast<uint32_t>(In[3]) << 24);
}

/// Writes all \p Len bytes, riding out partial writes and EINTR. MSG_NOSIGNAL
/// turns a dead peer into EPIPE instead of a process-wide SIGPIPE — a client
/// that vanishes mid-reply must never take the daemon down.
Status writeAll(int Fd, const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  while (Len) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(
          formatString("serve: send failed: %s", std::strerror(errno)));
    }
    P += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return Status::success();
}

/// Reads exactly \p Len bytes. \p SawEof reports a clean close at offset 0
/// (between frames); a close mid-buffer is a truncation error.
Status readAll(int Fd, void *Data, size_t Len, bool *SawEof) {
  auto *P = static_cast<uint8_t *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(
          formatString("serve: recv failed: %s", std::strerror(errno)));
    }
    if (N == 0) {
      if (Got == 0 && SawEof)
        *SawEof = true;
      return Status::error(Got == 0
                               ? "serve: connection closed"
                               : "serve: connection closed mid-frame");
    }
    Got += static_cast<size_t>(N);
  }
  return Status::success();
}

} // namespace

namespace simtvec {
namespace serve {

void encodeFrameHeader(uint8_t Out[FrameHeaderBytes], MsgType Type,
                       uint32_t Len) {
  putU32(Out, ProtocolMagic);
  putU32(Out + 4, static_cast<uint32_t>(Type));
  putU32(Out + 8, Len);
}

bool decodeFrameHeader(const uint8_t In[FrameHeaderBytes], uint32_t &Type,
                       uint32_t &Len) {
  uint32_t Magic = getU32(In);
  Type = getU32(In + 4);
  Len = getU32(In + 8);
  return Magic == ProtocolMagic;
}

Status sendFrame(int Fd, MsgType Type, const void *Payload, size_t Len) {
  if (Len > MaxFrameBytes)
    return Status::error(formatString(
        "serve: refusing to send %zu-byte frame (max %u)", Len,
        MaxFrameBytes));
  uint8_t Header[FrameHeaderBytes];
  encodeFrameHeader(Header, Type, static_cast<uint32_t>(Len));
  if (Status E = writeAll(Fd, Header, sizeof(Header)); E.isError())
    return E;
  if (Len)
    return writeAll(Fd, Payload, Len);
  return Status::success();
}

Expected<Frame> recvFrame(int Fd, bool *AtEof) {
  if (AtEof)
    *AtEof = false;
  uint8_t Header[FrameHeaderBytes];
  if (Status E = readAll(Fd, Header, sizeof(Header), AtEof); E.isError())
    return E;
  uint32_t Type = 0, Len = 0;
  if (!decodeFrameHeader(Header, Type, Len))
    return Status::error(formatString(
        "serve: bad frame magic 0x%08x (not a simtvec serve peer?)",
        getU32(Header)));
  if (Len > MaxFrameBytes)
    return Status::error(formatString(
        "serve: frame length %u exceeds the %u-byte cap", Len,
        MaxFrameBytes));
  Frame F;
  F.Type = static_cast<MsgType>(Type);
  F.Payload.resize(Len);
  if (Len)
    if (Status E = readAll(Fd, F.Payload.data(), Len, nullptr); E.isError())
      return E;
  return F;
}

Status sendError(int Fd, const std::string &Message) {
  ByteWriter W;
  W.str(Message);
  return sendFrame(Fd, MsgType::Error, W);
}

bool encodeParams(ByteWriter &W, const Params &P) {
  const auto &Elems = P.elements();
  const auto &Bytes = P.bytes();
  W.u32(static_cast<uint32_t>(Elems.size()));
  for (const Params::Element &E : Elems) {
    uint8_t Code;
    uint64_t Bits = 0;
    const std::byte *Src = Bytes.data() + E.Offset;
    switch (E.Ty.kind()) {
    case ScalarKind::U32: {
      Code = 0;
      uint32_t V;
      std::memcpy(&V, Src, sizeof(V));
      Bits = V;
      break;
    }
    case ScalarKind::S32: {
      Code = 1;
      uint32_t V;
      std::memcpy(&V, Src, sizeof(V));
      Bits = V;
      break;
    }
    case ScalarKind::U64:
      Code = 2;
      std::memcpy(&Bits, Src, sizeof(Bits));
      break;
    case ScalarKind::S64:
      Code = 3;
      std::memcpy(&Bits, Src, sizeof(Bits));
      break;
    case ScalarKind::F32: {
      Code = 4;
      uint32_t V;
      std::memcpy(&V, Src, sizeof(V));
      Bits = V;
      break;
    }
    case ScalarKind::F64:
      Code = 5;
      std::memcpy(&Bits, Src, sizeof(Bits));
      break;
    default:
      return false; // Pred/U8/vector elements never appear in Params
    }
    if (E.Ty.lanes() != 1)
      return false;
    W.u8(Code);
    W.u64(Bits);
  }
  return true;
}

bool decodeParams(ByteReader &R, Params &P) {
  uint32_t N = R.u32();
  // A count an attacker inflates past the payload fails the per-element
  // reads below (the reader latches), but bound it anyway so a hostile
  // frame cannot make this loop spin 4 billion times.
  if (N > MaxFrameBytes / 9)
    return false;
  for (uint32_t I = 0; I < N; ++I) {
    uint8_t Code = R.u8();
    uint64_t Bits = R.u64();
    if (R.failed())
      return false;
    switch (Code) {
    case 0:
      P.u32(static_cast<uint32_t>(Bits));
      break;
    case 1:
      P.s32(static_cast<int32_t>(static_cast<uint32_t>(Bits)));
      break;
    case 2:
      P.u64(Bits);
      break;
    case 3:
      P.s64(static_cast<int64_t>(Bits));
      break;
    case 4: {
      uint32_t V = static_cast<uint32_t>(Bits);
      float F;
      std::memcpy(&F, &V, sizeof(F));
      P.f32(F);
      break;
    }
    case 5: {
      double D;
      std::memcpy(&D, &Bits, sizeof(D));
      P.f64(D);
      break;
    }
    default:
      return false;
    }
  }
  return true;
}

} // namespace serve
} // namespace simtvec
