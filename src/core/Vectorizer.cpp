//===- core/Vectorizer.cpp - Kernel vectorization -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/Vectorizer.h"

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"
#include "simtvec/analysis/Variance.h"
#include "simtvec/ir/IRBuilder.h"
#include "simtvec/support/Format.h"

#include <map>
#include <optional>

using namespace simtvec;

SpecializationPlan SpecializationPlan::build(const Kernel &S,
                                             const MeldResult *Meld) {
  SpecializationPlan Plan;
  Plan.EntryIdOf.assign(S.Blocks.size(), ~0u);
  Plan.EntryScalarBlocks.push_back(0); // entry 0: the initial kernel entry

  auto addEntry = [&](uint32_t Block) {
    if (Plan.EntryIdOf[Block] != ~0u)
      return;
    Plan.EntryIdOf[Block] =
        static_cast<uint32_t>(Plan.EntryScalarBlocks.size());
    Plan.EntryScalarBlocks.push_back(Block);
  };

  for (uint32_t B = 0; B < S.Blocks.size(); ++B) {
    const BasicBlock &Blk = S.Blocks[B];
    if (!Blk.hasTerminator())
      continue;
    const Instruction &T = Blk.terminator();
    if (T.Op == Opcode::Bra && T.Guard.isValid()) {
      // Divergence site: both successors are resume points (Algorithm 2).
      addEntry(T.Target);
      addEntry(T.FalseTarget);
    } else if (T.Op == Opcode::Bra && Blk.Insts.size() >= 2 &&
               Blk.Insts[Blk.Insts.size() - 2].Op == Opcode::BarSync) {
      // Barrier site: the continuation is a resume point.
      addEntry(T.Target);
    }
  }

  // Spill-slot layout: one slot per register, deterministic across warp
  // sizes (a thread may yield from one width and resume in another).
  Plan.SlotOf.assign(S.Regs.size(), 0);
  uint32_t Offset = 0;
  for (uint32_t R = 0; R < S.Regs.size(); ++R) {
    Type Ty = S.Regs[R].Ty;
    uint32_t Bytes = Ty.isPred() ? 1 : Ty.byteSize();
    Offset = (Offset + Bytes - 1) / Bytes * Bytes;
    Plan.SlotOf[R] = Offset;
    Offset += Bytes;
  }
  Plan.SpillBytes = (Offset + 15) / 16 * 16;

  // Divergence-site bookkeeping for the branch-policy layer. With a
  // MeldResult the melder's pre-transform numbering and masked-backedge
  // set carry over; without one (legacy callers, all-yield plan) sites are
  // numbered from the kernel as-is — identical to what the melder reports
  // for the empty plan.
  Plan.MaskedBlock.assign(S.Blocks.size(), 0);
  std::vector<uint32_t> SiteOfBlock(S.Blocks.size(), ~0u);
  if (Meld) {
    Plan.NumSites = Meld->NumSites;
    SiteOfBlock = Meld->SiteOfBlockTerm;
    for (uint32_t B : Meld->MaskedBlocks)
      Plan.MaskedBlock[B] = 1;
  } else {
    uint32_t N = 0;
    for (uint32_t B = 0; B < S.Blocks.size(); ++B)
      if (S.Blocks[B].hasTerminator() &&
          S.Blocks[B].terminator().isConditionalBranch())
        SiteOfBlock[B] = N++;
    Plan.NumSites = N;
  }
  Plan.SiteOfEntry.assign(Plan.EntryScalarBlocks.size(), ~0u);
  for (uint32_t B = 0; B < S.Blocks.size(); ++B) {
    if (SiteOfBlock[B] == ~0u || Plan.MaskedBlock[B])
      continue;
    const Instruction &T = S.Blocks[B].terminator();
    for (uint32_t Succ : {T.Target, T.FalseTarget}) {
      uint32_t E = Plan.EntryIdOf[Succ];
      if (E != ~0u && Plan.SiteOfEntry[E] == ~0u)
        Plan.SiteOfEntry[E] = SiteOfBlock[B]; // first site wins on shares
    }
  }
  return Plan;
}

namespace {

/// How a scalar register is represented in the specialized kernel.
enum class Rep : uint8_t {
  Vector,     ///< one vector register, lane i = thread i
  Replicated, ///< ws scalar registers (defined by non-vectorizable ops)
  Uniform,    ///< one scalar register (thread-invariant, TIE only)
};

class VectorizerImpl {
public:
  VectorizerImpl(const Kernel &S, const SpecializationPlan &Plan,
                 const VectorizeOptions &Opts)
      : S(S), Plan(Plan), Opts(Opts), WS(Opts.WarpSize), G(S), Live(S, G) {}

  std::unique_ptr<Kernel> run();

private:
  // --- Register representation -------------------------------------------
  void classifyRegisters();
  void createRegisters();
  Type vecTy(Type Scalar) const {
    return Scalar.withLanes(static_cast<uint16_t>(WS));
  }

  RegId newTemp(Type Ty, const char *Hint) {
    return V->addReg(formatString("$t%u_%s", TempCounter++, Hint), Ty);
  }

  void invalidate(uint32_t Reg) {
    PackCache.erase(Reg);
    for (uint32_t L = 0; L < WS; ++L)
      LaneCache.erase({Reg, L});
  }

  /// The warp-wide (vector) form of scalar register \p R, packing or
  /// broadcasting as needed (memoized per block).
  Operand vectorValue(RegId R);
  /// Lane \p L's scalar form of register \p R, unpacking as needed.
  RegId laneValue(RegId R, uint32_t L);

  // --- Instruction emission ----------------------------------------------
  void emitInstruction(const Instruction &I);
  void emitVector(const Instruction &I);
  void emitReplicated(const Instruction &I);
  void emitUniformScalar(const Instruction &I);

  void spillReg(RegId R);
  void restoreReg(RegId R);
  void spillLiveOut(uint32_t ScalarBlock);

  // --- Control flow (Algorithms 2-4) ---------------------------------------
  void emitBlockBody(uint32_t ScalarBlock);
  void emitTerminator(uint32_t ScalarBlock, bool HasBarrier);
  uint32_t createBranchExit(uint32_t ScalarBlock, RegId PredScalarReg,
                            const Operand &PredVec, uint32_t Taken,
                            uint32_t FallThrough);
  void createEntryHandlers();
  void createScheduler();

  const Kernel &S;
  const SpecializationPlan &Plan;
  VectorizeOptions Opts;
  uint32_t WS;
  CFG G;
  Liveness Live;
  std::optional<VarianceAnalysis> Var;

  std::unique_ptr<Kernel> V;
  std::optional<IRBuilder> B;

  std::vector<Rep> RepOf;
  std::vector<RegId> VecRegs;                // Rep::Vector storage
  std::vector<std::vector<RegId>> RepRegs;   // Rep::Replicated storage
  std::vector<RegId> UniRegs;                // Rep::Uniform storage
  std::vector<uint32_t> BodyBlock;           // scalar block -> V block
  std::vector<uint32_t> SchedulerCases;      // entry id -> V block
  std::map<uint32_t, RegId> PackCache;
  std::map<std::pair<uint32_t, uint32_t>, RegId> LaneCache;
  unsigned TempCounter = 0;
};

void VectorizerImpl::classifyRegisters() {
  RepOf.assign(S.Regs.size(), Rep::Vector);

  if (Opts.ThreadInvariantElim || Opts.UniformLoadOpt) {
    // Invariant registers collapse to one scalar copy (paper §6.2 for
    // static formation; the UniformLoadOpt extension applies the same
    // collapse under dynamic formation, where %tid.y/z remain variant).
    for (uint32_t R = 0; R < S.Regs.size(); ++R)
      if (!Var->isVariant(RegId(R)))
        RepOf[R] = Rep::Uniform;
  }

  // Use kinds: a register consumed by a promoted (vector) instruction needs
  // a packed form; one consumed only by replicated scalar instructions
  // (addresses, stored values, guards) is cheaper to keep per lane.
  std::vector<uint8_t> VectorUse(S.Regs.size(), 0);
  std::vector<uint8_t> LaneUse(S.Regs.size(), 0);
  for (const BasicBlock &Blk : S.Blocks)
    for (const Instruction &I : Blk.Insts) {
      if (I.Op == Opcode::Bra) {
        // Divergence lowering sums the predicate vector (Algorithm 2).
        if (I.Guard.isValid())
          VectorUse[I.Guard.Index] = 1;
        continue;
      }
      bool Promoted = isVectorizable(I.Op) && !I.Guard.isValid();
      I.forEachUse([&](RegId R) {
        (Promoted ? VectorUse : LaneUse)[R.Index] = 1;
      });
    }

  // Registers with any non-vectorizable or guarded definition stay
  // replicated; so do registers with only lane consumers.
  for (const BasicBlock &Blk : S.Blocks)
    for (const Instruction &I : Blk.Insts) {
      if (!I.hasResult())
        continue;
      if (!isVectorizable(I.Op) && RepOf[I.Dst.Index] != Rep::Uniform)
        RepOf[I.Dst.Index] = Rep::Replicated;
      // Guarded defs are lane-conditional and replicate as well.
      if (I.Guard.isValid() && RepOf[I.Dst.Index] != Rep::Uniform)
        RepOf[I.Dst.Index] = Rep::Replicated;
    }
  for (uint32_t R = 0; R < S.Regs.size(); ++R)
    if (RepOf[R] == Rep::Vector && LaneUse[R] && !VectorUse[R])
      RepOf[R] = Rep::Replicated;

  if (WS == 1) {
    // The scalar specialization: every representation collapses to one
    // scalar register; use Vector as the canonical tag except where TIE
    // kept Uniform semantics (identical at width 1).
    for (uint32_t R = 0; R < S.Regs.size(); ++R)
      if (RepOf[R] == Rep::Replicated)
        RepOf[R] = Rep::Vector;
  }
}

void VectorizerImpl::createRegisters() {
  VecRegs.assign(S.Regs.size(), RegId());
  RepRegs.assign(S.Regs.size(), {});
  UniRegs.assign(S.Regs.size(), RegId());
  for (uint32_t R = 0; R < S.Regs.size(); ++R) {
    const VirtualRegister &SR = S.Regs[R];
    switch (RepOf[R]) {
    case Rep::Vector:
      VecRegs[R] = V->addReg(SR.Name, WS == 1 ? SR.Ty : vecTy(SR.Ty));
      break;
    case Rep::Replicated:
      for (uint32_t L = 0; L < WS; ++L)
        RepRegs[R].push_back(
            V->addReg(formatString("%s_t%u", SR.Name.c_str(), L), SR.Ty));
      break;
    case Rep::Uniform:
      UniRegs[R] = V->addReg(SR.Name + "_u", SR.Ty);
      break;
    }
  }
}

Operand VectorizerImpl::vectorValue(RegId R) {
  switch (RepOf[R.Index]) {
  case Rep::Vector:
    return Operand::reg(VecRegs[R.Index]);
  case Rep::Uniform: {
    if (WS == 1)
      return Operand::reg(UniRegs[R.Index]);
    auto It = PackCache.find(R.Index);
    if (It != PackCache.end())
      return Operand::reg(It->second);
    RegId Temp = newTemp(vecTy(S.Regs[R.Index].Ty), "bcast");
    B->broadcast(Temp, Operand::reg(UniRegs[R.Index]));
    PackCache[R.Index] = Temp;
    return Operand::reg(Temp);
  }
  case Rep::Replicated: {
    assert(WS > 1 && "width-1 kernels have no replicated registers");
    auto It = PackCache.find(R.Index);
    if (It != PackCache.end())
      return Operand::reg(It->second);
    // Explicit packing of a non-vectorizable producer's lanes (paper §4,
    // "Non-vectorizable Instructions"); memoized per block.
    RegId Temp = newTemp(vecTy(S.Regs[R.Index].Ty), "pack");
    for (uint32_t L = 0; L < WS; ++L)
      B->insertElement(Temp, Operand::reg(Temp),
                       Operand::reg(RepRegs[R.Index][L]), L);
    PackCache[R.Index] = Temp;
    return Operand::reg(Temp);
  }
  }
  assert(false && "unknown representation");
  return Operand();
}

RegId VectorizerImpl::laneValue(RegId R, uint32_t L) {
  switch (RepOf[R.Index]) {
  case Rep::Replicated:
    return RepRegs[R.Index][L];
  case Rep::Uniform:
    return UniRegs[R.Index];
  case Rep::Vector: {
    if (WS == 1)
      return VecRegs[R.Index];
    auto It = LaneCache.find({R.Index, L});
    if (It != LaneCache.end())
      return It->second;
    // Explicit unpacking at a non-vectorizable consumer (paper §4).
    RegId Temp = newTemp(S.Regs[R.Index].Ty, "lane");
    B->extractElement(Temp, Operand::reg(VecRegs[R.Index]), L);
    LaneCache[{R.Index, L}] = Temp;
    return Temp;
  }
  }
  assert(false && "unknown representation");
  return RegId();
}

void VectorizerImpl::emitInstruction(const Instruction &I) {
  assert(I.Op != Opcode::BarSync && !I.isTerminator() &&
         "handled by emitTerminator");
  if ((Opts.ThreadInvariantElim || Opts.UniformLoadOpt) && I.hasResult() &&
      !I.Guard.isValid() && Var->isInvariantInstruction(I) &&
      !Var->isVariant(I.Dst)) {
    emitUniformScalar(I);
    return;
  }
  // A vectorizable instruction whose destination and register operands are
  // all in per-lane scalar form is cheaper replicated than packed,
  // promoted and unpacked again ("memoize the resulting instruction or
  // bundle", Algorithm 1 — the bundle stays scalar when packing would cost
  // more than it saves).
  if (isVectorizable(I.Op) && !I.Guard.isValid() && WS > 1 &&
      I.hasResult() && RepOf[I.Dst.Index] == Rep::Replicated) {
    bool AnyVectorOperand = false;
    I.forEachUse([&](RegId R) {
      AnyVectorOperand |= RepOf[R.Index] == Rep::Vector;
    });
    if (!AnyVectorOperand) {
      emitReplicated(I);
      return;
    }
  }
  if (isVectorizable(I.Op) && !I.Guard.isValid())
    emitVector(I);
  else
    emitReplicated(I);
}

void VectorizerImpl::emitVector(const Instruction &I) {
  Instruction VI(I.Op, WS == 1 ? I.Ty : vecTy(I.Ty));
  VI.Cmp = I.Cmp;
  for (const Operand &O : I.Srcs) {
    if (O.isReg()) {
      VI.Srcs.push_back(vectorValue(O.regId()));
      continue;
    }
    if (I.Op == Opcode::Cvt && O.isImm() && WS > 1) {
      // cvt requires matching lane counts; materialize the immediate as a
      // vector first.
      RegId Temp = newTemp(vecTy(O.immType()), "cimm");
      B->broadcast(Temp, O);
      VI.Srcs.push_back(Operand::reg(Temp));
      continue;
    }
    VI.Srcs.push_back(O); // immediates broadcast; specials are per-lane
  }

  RegId Dst = I.Dst;
  switch (RepOf[Dst.Index]) {
  case Rep::Vector:
    VI.Dst = VecRegs[Dst.Index];
    B->append(std::move(VI));
    break;
  case Rep::Replicated: {
    // Unpack the vector result into the replicated lanes.
    Type ResultTy = I.Op == Opcode::Setp ? Type::pred() : I.Ty;
    (void)ResultTy;
    Type TempTy = I.Op == Opcode::Setp ? vecTy(Type::pred()) : vecTy(I.Ty);
    RegId Temp = newTemp(TempTy, "vres");
    VI.Dst = Temp;
    B->append(std::move(VI));
    for (uint32_t L = 0; L < WS; ++L)
      B->extractElement(RepRegs[Dst.Index][L], Operand::reg(Temp), L);
    break;
  }
  case Rep::Uniform:
    assert(false && "variant instruction writing a uniform register");
    break;
  }
  invalidate(Dst.Index);
}

void VectorizerImpl::emitReplicated(const Instruction &I) {
  // Static interleaving of the warp's threads (Algorithm 1, Figure 3).
  for (uint32_t L = 0; L < WS; ++L) {
    Instruction RI(I.Op, I.Ty);
    RI.Cmp = I.Cmp;
    RI.Space = I.Space;
    RI.MemOffset = I.MemOffset;
    RI.Lane = static_cast<uint16_t>(L);
    for (const Operand &O : I.Srcs)
      RI.Srcs.push_back(O.isReg() ? Operand::reg(laneValue(O.regId(), L))
                                  : O);
    if (I.Guard.isValid()) {
      RI.Guard = laneValue(I.Guard, L);
      RI.GuardNegated = I.GuardNegated;
    }
    if (I.hasResult()) {
      RegId Dst = I.Dst;
      switch (RepOf[Dst.Index]) {
      case Rep::Replicated:
        RI.Dst = RepRegs[Dst.Index][L];
        B->append(std::move(RI));
        break;
      case Rep::Vector: {
        if (WS == 1) {
          RI.Dst = VecRegs[Dst.Index];
          B->append(std::move(RI));
          break;
        }
        // Lane-wise def of a vector-represented register: compute into a
        // scalar temp, then insert.
        Type ResultTy = I.Op == Opcode::Setp ? Type::pred() : I.Ty;
        RegId Temp = newTemp(ResultTy, "ldef");
        RI.Dst = Temp;
        B->append(std::move(RI));
        B->insertElement(VecRegs[Dst.Index],
                         Operand::reg(VecRegs[Dst.Index]),
                         Operand::reg(Temp), L);
        break;
      }
      case Rep::Uniform:
        assert(false &&
               "non-vectorizable instruction writing a uniform register");
        break;
      }
    } else {
      B->append(std::move(RI));
    }
  }
  if (I.hasResult())
    invalidate(I.Dst.Index);

  // Side-effecting memory operations invalidate nothing register-wise.
  if (I.Op == Opcode::Membar)
    return;
}

void VectorizerImpl::emitUniformScalar(const Instruction &I) {
  // Thread-invariant elimination: one scalar instruction computes the value
  // for the whole warp (paper §6.2).
  Instruction UI(I.Op, I.Ty);
  UI.Cmp = I.Cmp;
  UI.Space = I.Space;
  UI.MemOffset = I.MemOffset;
  UI.Lane = 0;
  for (const Operand &O : I.Srcs) {
    if (O.isReg()) {
      assert(RepOf[O.regId().Index] == Rep::Uniform &&
             "invariant instruction uses a variant register");
      UI.Srcs.push_back(Operand::reg(UniRegs[O.regId().Index]));
    } else {
      UI.Srcs.push_back(O);
    }
  }
  assert(RepOf[I.Dst.Index] == Rep::Uniform &&
         "uniform emission into a variant register");
  UI.Dst = UniRegs[I.Dst.Index];
  B->append(std::move(UI));
  invalidate(I.Dst.Index);
}

void VectorizerImpl::spillReg(RegId R) {
  Type ScalarTy = S.Regs[R.Index].Ty;
  int64_t Slot = Plan.SlotOf[R.Index];
  switch (RepOf[R.Index]) {
  case Rep::Vector:
    B->spill(Operand::reg(VecRegs[R.Index]),
             WS == 1 ? ScalarTy : vecTy(ScalarTy), Slot);
    break;
  case Rep::Replicated:
    for (uint32_t L = 0; L < WS; ++L) {
      Instruction SI(Opcode::Spill, ScalarTy);
      SI.Srcs = {Operand::reg(RepRegs[R.Index][L])};
      SI.MemOffset = Slot;
      SI.Lane = static_cast<uint16_t>(L);
      B->append(std::move(SI));
    }
    break;
  case Rep::Uniform: {
    if (WS == 1) {
      B->spill(Operand::reg(UniRegs[R.Index]), ScalarTy, Slot);
      break;
    }
    // Every thread needs the value in its own slot so any regrouped warp
    // can restore it.
    RegId Temp = newTemp(vecTy(ScalarTy), "uspill");
    B->broadcast(Temp, Operand::reg(UniRegs[R.Index]));
    B->spill(Operand::reg(Temp), vecTy(ScalarTy), Slot);
    break;
  }
  }
}

void VectorizerImpl::restoreReg(RegId R) {
  Type ScalarTy = S.Regs[R.Index].Ty;
  int64_t Slot = Plan.SlotOf[R.Index];
  switch (RepOf[R.Index]) {
  case Rep::Vector:
    B->restore(VecRegs[R.Index], Slot);
    break;
  case Rep::Replicated:
    for (uint32_t L = 0; L < WS; ++L) {
      Instruction RI(Opcode::Restore, ScalarTy);
      RI.Dst = RepRegs[R.Index][L];
      RI.MemOffset = Slot;
      RI.Lane = static_cast<uint16_t>(L);
      B->append(std::move(RI));
    }
    break;
  case Rep::Uniform: {
    if (WS == 1) {
      B->restore(UniRegs[R.Index], Slot);
      break;
    }
    RegId Temp = newTemp(vecTy(ScalarTy), "urest");
    B->restore(Temp, Slot);
    B->extractElement(UniRegs[R.Index], Operand::reg(Temp), 0);
    break;
  }
  }
}

void VectorizerImpl::spillLiveOut(uint32_t ScalarBlock) {
  Live.liveOut(ScalarBlock).forEach([&](size_t R) {
    spillReg(RegId(static_cast<uint32_t>(R)));
  });
}

uint32_t VectorizerImpl::createBranchExit(uint32_t ScalarBlock,
                                          RegId PredScalarReg,
                                          const Operand &PredVec,
                                          uint32_t Taken,
                                          uint32_t FallThrough) {
  (void)PredScalarReg;
  uint32_t SavedBlock = B->block();
  uint32_t ExitBlk = B->startBlock(
      formatString("%s_exit", S.Blocks[ScalarBlock].Name.c_str()),
      BlockKind::ExitHandler);

  // Algorithm 4: spill live-outs, select per-thread resume points, set the
  // status and yield.
  spillLiveOut(ScalarBlock);
  uint32_t TakenEntry = Plan.EntryIdOf[Taken];
  uint32_t FallEntry = Plan.EntryIdOf[FallThrough];
  assert(TakenEntry != ~0u && FallEntry != ~0u &&
         "divergent successors must be planned entries");
  RegId Eids = newTemp(vecTy(Type::u32()), "eids");
  B->selp(vecTy(Type::u32()), Eids,
          Operand::immInt(Type::u32(), TakenEntry),
          Operand::immInt(Type::u32(), FallEntry), PredVec);
  B->setRPoint(Operand::reg(Eids));
  B->setRStatus(ResumeStatus::Branch);
  B->yield();

  B->setBlock(SavedBlock);
  return ExitBlk;
}

void VectorizerImpl::emitTerminator(uint32_t ScalarBlock, bool HasBarrier) {
  const Instruction &T = S.Blocks[ScalarBlock].terminator();
  switch (T.Op) {
  case Opcode::Bra: {
    if (!T.Guard.isValid()) {
      if (!HasBarrier) {
        B->bra(BodyBlock[T.Target]);
        return;
      }
      // Barrier yield: spill, set the continuation entry, wait.
      uint32_t SavedBlock = B->block();
      uint32_t ExitBlk = B->startBlock(
          formatString("%s_bar", S.Blocks[ScalarBlock].Name.c_str()),
          BlockKind::ExitHandler);
      spillLiveOut(ScalarBlock);
      uint32_t Entry = Plan.EntryIdOf[T.Target];
      assert(Entry != ~0u && "barrier continuation must be a planned entry");
      B->setRPoint(Operand::immInt(Type::u32(), Entry));
      B->setRStatus(ResumeStatus::Barrier);
      B->yield();
      B->setBlock(SavedBlock);
      B->bra(ExitBlk);
      return;
    }

    assert(!HasBarrier && "barrier blocks end in unconditional branches");
    RegId Pred = T.Guard;

    // Uniform lowerings keep control inside the vectorized region.
    bool ProvablyUniform =
        RepOf[Pred.Index] == Rep::Uniform ||
        (Opts.UniformBranchOpt && Var && !Var->isVariant(Pred));
    if (WS == 1 || ProvablyUniform) {
      Instruction BI(Opcode::Bra);
      BI.Guard = laneValue(Pred, 0);
      BI.GuardNegated = T.GuardNegated;
      BI.Target = BodyBlock[T.Target];
      BI.FalseTarget = BodyBlock[T.FalseTarget];
      B->append(std::move(BI));
      return;
    }

    // Masked loop backedge (ControlFlowMeld): any live lane keeps the
    // whole warp iterating; only a zero vote falls through to the exit.
    // Finished lanes idle under a false mask, so there is no divergence
    // to yield on and no exit handler at this site.
    if (ScalarBlock < Plan.MaskedBlock.size() &&
        Plan.MaskedBlock[ScalarBlock]) {
      Operand MaskVec = vectorValue(Pred);
      uint32_t Stay = T.Target, Done = T.FalseTarget;
      if (T.GuardNegated)
        std::swap(Stay, Done);
      RegId MSum = newTemp(Type::u32(), "msum");
      B->voteSum(MSum, MaskVec);
      B->makeSwitch(Operand::reg(MSum), {0}, {BodyBlock[Done]},
                    BodyBlock[Stay]);
      return;
    }

    // Algorithm 2: sum the per-thread predicates; 0 and ws stay uniform,
    // anything else yields on divergence.
    Operand PredVec = vectorValue(Pred);
    uint32_t Taken = T.Target, Fall = T.FalseTarget;
    if (T.GuardNegated)
      std::swap(Taken, Fall);
    RegId Sum = newTemp(Type::u32(), "psum");
    B->voteSum(Sum, PredVec);
    uint32_t ExitBlk =
        createBranchExit(ScalarBlock, Pred, PredVec, Taken, Fall);
    B->makeSwitch(Operand::reg(Sum), {0, static_cast<int64_t>(WS)},
                  {BodyBlock[Fall], BodyBlock[Taken]}, ExitBlk);
    return;
  }
  case Opcode::Ret: {
    // Thread termination: context objects are discarded (§4.1).
    B->setRStatus(ResumeStatus::Exit);
    B->yield();
    return;
  }
  case Opcode::Trap:
    B->append(Instruction(Opcode::Trap));
    return;
  default:
    assert(false && "unexpected terminator in a scalar kernel");
  }
}

void VectorizerImpl::emitBlockBody(uint32_t ScalarBlock) {
  PackCache.clear();
  LaneCache.clear();
  B->setBlock(BodyBlock[ScalarBlock]);

  const BasicBlock &Blk = S.Blocks[ScalarBlock];
  bool HasBarrier = false;
  for (size_t Idx = 0; Idx + 1 < Blk.Insts.size(); ++Idx) {
    const Instruction &I = Blk.Insts[Idx];
    if (I.Op == Opcode::BarSync) {
      assert(Idx + 2 == Blk.Insts.size() &&
             "run BarrierSplit before vectorization");
      HasBarrier = true;
      continue;
    }
    emitInstruction(I);
  }
  emitTerminator(ScalarBlock, HasBarrier);
}

void VectorizerImpl::createEntryHandlers() {
  // Algorithm 3: one handler per non-initial entry restores the live-in
  // values of its resume block.
  SchedulerCases.assign(Plan.EntryScalarBlocks.size(), InvalidBlock);
  SchedulerCases[0] = BodyBlock[Plan.EntryScalarBlocks[0]];
  for (uint32_t E = 1; E < Plan.EntryScalarBlocks.size(); ++E) {
    uint32_t Target = Plan.EntryScalarBlocks[E];
    uint32_t Handler = B->startBlock(
        formatString("%s_entry", S.Blocks[Target].Name.c_str()),
        BlockKind::EntryHandler);
    PackCache.clear();
    LaneCache.clear();
    Live.liveIn(Target).forEach([&](size_t R) {
      restoreReg(RegId(static_cast<uint32_t>(R)));
    });
    B->bra(BodyBlock[Target]);
    SchedulerCases[E] = Handler;
  }
}

void VectorizerImpl::createScheduler() {
  B->setBlock(0);
  std::vector<int64_t> Values;
  std::vector<uint32_t> Targets;
  for (uint32_t E = 1; E < SchedulerCases.size(); ++E) {
    Values.push_back(E);
    Targets.push_back(SchedulerCases[E]);
  }
  B->makeSwitch(Operand::special(SReg::EntryId), std::move(Values),
                std::move(Targets), SchedulerCases[0]);
}

std::unique_ptr<Kernel> VectorizerImpl::run() {
  assert(WS >= 1 && WS <= 64 && "unsupported warp size");
  BitSet EntryLiveRoots(S.Regs.size());
  if (Opts.ThreadInvariantElim || Opts.UniformBranchOpt ||
      Opts.UniformLoadOpt) {
    // Registers live across a *divergent* yield entry are restored per
    // lane and may differ across the re-formed warp (threads can arrive at
    // the same entry from different loop phases): they are variance roots.
    // Which branches are divergent depends on variance, so iterate to a
    // fixed point (roots grow monotonically). Barrier continuations are
    // exempt: the barrier equalizes phases, and an invariant value is then
    // CTA-uniform, so every thread restores the same bits.
    VarianceOptions VO;
    VO.TidYZUniform = Opts.ThreadInvariantElim;
    VO.ExtraRoots = &EntryLiveRoots;
    bool RootsChanged = true;
    while (RootsChanged) {
      Var.emplace(S, VO);
      RootsChanged = false;
      for (const BasicBlock &Blk : S.Blocks) {
        if (!Blk.hasTerminator())
          continue;
        const Instruction &T = Blk.terminator();
        if (T.Op != Opcode::Bra || !T.Guard.isValid() ||
            !Var->isVariant(T.Guard))
          continue;
        for (uint32_t Succ : {T.Target, T.FalseTarget})
          if (Plan.EntryIdOf[Succ] != ~0u)
            RootsChanged |= EntryLiveRoots.unionWith(Live.liveIn(Succ));
      }
    }
  }

  V = std::make_unique<Kernel>();
  V->Name = formatString("%s$w%u%s", S.Name.c_str(), WS,
                         Opts.ThreadInvariantElim ? "t" : "");
  V->Params = S.Params;
  V->ParamBytes = S.ParamBytes;
  V->SharedVars = S.SharedVars;
  V->SharedBytes = S.SharedBytes;
  V->LocalVars = S.LocalVars;
  V->LocalBytes = S.LocalBytes;
  V->WarpSize = WS;
  V->SpillBytes = Plan.SpillBytes;

  B.emplace(*V);
  classifyRegisters();
  createRegisters();

  // Block 0 is the scheduler trampoline; body blocks follow in the scalar
  // kernel's order, handlers are appended as they are created.
  uint32_t Scheduler = V->addBlock("$scheduler", BlockKind::Scheduler);
  (void)Scheduler;
  BodyBlock.resize(S.Blocks.size());
  for (uint32_t Blk = 0; Blk < S.Blocks.size(); ++Blk)
    BodyBlock[Blk] = V->addBlock("v_" + S.Blocks[Blk].Name);

  for (uint32_t Blk = 0; Blk < S.Blocks.size(); ++Blk)
    emitBlockBody(Blk);

  createEntryHandlers();
  createScheduler();

  // Publish the entry table.
  V->EntryBlocks = SchedulerCases;
  return std::move(V);
}

} // namespace

std::unique_ptr<Kernel>
simtvec::vectorizeKernel(const Kernel &ScalarKernel,
                         const SpecializationPlan &Plan,
                         const VectorizeOptions &Opts) {
  assert(ScalarKernel.WarpSize == 0 && "input must be an unspecialized kernel");
  return VectorizerImpl(ScalarKernel, Plan, Opts).run();
}
