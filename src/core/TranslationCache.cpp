//===- core/TranslationCache.cpp - Dynamic translation cache --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/TranslationCache.h"

#include "simtvec/core/SpecializationService.h"
#include "simtvec/ir/Module.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/support/Format.h"
#include "simtvec/transforms/Passes.h"

#include <chrono>

using namespace simtvec;

TranslationCache::Shard &TranslationCache::shardFor(const Key &K) {
  // Kernel name dominates the distribution; mix in the width so the
  // specializations of one kernel spread over shards too.
  size_t H = std::hash<std::string>{}(K.KernelName);
  H ^= (H >> 17) ^ (static_cast<size_t>(K.WarpSize) * 0x9e3779b97f4a7c15ull);
  return Shards[H % NumShards];
}

Expected<const TranslationCache::PreparedKernel *>
TranslationCache::prepare(const std::string &KernelName,
                          const std::string &BranchPlan) {
  std::lock_guard<std::mutex> Guard(PrepareLock);
  auto MapKey = std::make_pair(KernelName, BranchPlan);
  auto It = Prepared.find(MapKey);
  if (It != Prepared.end())
    return &It->second;

  const Kernel *Source = M.findKernel(KernelName);
  if (!Source)
    return Status::error(
        formatString("kernel '%s' is not registered", KernelName.c_str()));
  if (Status E = verifyKernel(*Source))
    return Status::error("invalid kernel: " + E.message());
  if (Source->WarpSize != 0)
    return Status::error(formatString(
        "kernel '%s' is already specialized", KernelName.c_str()));

  PreparedKernel P;
  P.Scalar = *Source; // deep copy
  // PTX-to-PTX preparation (paper §5.1): replace non-branch predicated
  // instructions with selects, split blocks at barriers, then apply the
  // branch plan's divergence melding. Melding happens at the scalar level
  // so every warp width — and the interpreter and native tier alike —
  // executes the same melded program.
  runPredicateToSelect(P.Scalar);
  runBarrierSplit(P.Scalar);
  MeldResult Meld = runControlFlowMeld(P.Scalar, BranchPlan);
  if (Status E = verifyKernel(P.Scalar))
    return Status::error("preparation broke the kernel: " + E.message());
  P.Plan = SpecializationPlan::build(P.Scalar, &Meld);

  // std::map nodes are stable: the pointer survives later insertions.
  auto [Inserted, _] = Prepared.emplace(std::move(MapKey), std::move(P));
  return &Inserted->second;
}

std::shared_ptr<const KernelExec> TranslationCache::peek(const Key &K) {
  Shard &S = shardFor(K);
  std::shared_lock<std::shared_mutex> Guard(S.Lock);
  auto It = S.Cache.find(K);
  return It == S.Cache.end() ? nullptr : It->second;
}

Expected<std::shared_ptr<const KernelExec>>
TranslationCache::get(const Key &K) {
  Shard &S = shardFor(K);

  // Warm path: sharded reader lock only. Concurrent warm queries never
  // serialize against each other; they block only against an insert into
  // this same shard (once per specialization, ever).
  {
    std::shared_lock<std::shared_mutex> Guard(S.Lock);
    auto It = S.Cache.find(K);
    if (It != S.Cache.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      RegHits->fetch_add(1, std::memory_order_relaxed);
      trace::instant("tc.hit", "cache", K.WarpSize, "width");
      return It->second;
    }
  }

  // Cold path: claim or join the in-flight compilation for this key.
  std::shared_ptr<CompileSlot> Slot;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Guard(InFlightLock);
    // Re-check the cache: the previous owner may have published between our
    // miss above and acquiring InFlightLock.
    {
      std::shared_lock<std::shared_mutex> CacheGuard(S.Lock);
      auto It = S.Cache.find(K);
      if (It != S.Cache.end()) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        RegHits->fetch_add(1, std::memory_order_relaxed);
        trace::instant("tc.hit", "cache", K.WarpSize, "width");
        return It->second;
      }
    }
    auto It = InFlight.find(K);
    if (It != InFlight.end()) {
      Slot = It->second;
    } else {
      Slot = std::make_shared<CompileSlot>();
      InFlight.emplace(K, Slot);
      Owner = true;
    }
  }

  if (!Owner) {
    // Another execution manager is compiling this exact specialization;
    // wait for its result rather than duplicating the work.
    std::unique_lock<std::mutex> Guard(Slot->Lock);
    Slot->Ready.wait(Guard, [&] { return Slot->Done; });
    if (Slot->Err.isError())
      return Slot->Err;
    Hits.fetch_add(1, std::memory_order_relaxed);
    RegHits->fetch_add(1, std::memory_order_relaxed);
    trace::instant("tc.hit", "cache", K.WarpSize, "width");
    return Slot->Value;
  }

  // We own the compile. No cache lock is held while specializing, so other
  // keys (other kernels, other widths) compile and hit concurrently.
  Misses.fetch_add(1, std::memory_order_relaxed);
  RegMisses->fetch_add(1, std::memory_order_relaxed);
  trace::instant("tc.miss", "cache", K.WarpSize, "width");

  auto Publish = [&](Status Err,
                     std::shared_ptr<const KernelExec> Value) {
    {
      std::lock_guard<std::mutex> Guard(Slot->Lock);
      Slot->Err = std::move(Err);
      Slot->Value = std::move(Value);
      Slot->Done = true;
    }
    Slot->Ready.notify_all();
    std::lock_guard<std::mutex> Guard(InFlightLock);
    InFlight.erase(K);
  };

  // Persistent-store fast path: a memory miss may still be a disk hit (a
  // prior process — or a prior cache in this one — compiled this exact
  // specialization). The rebuilt executable is published like a compiled
  // one, but no compile happens: no tc.compile span, count, or wall time.
  if (Svc) {
    if (auto Exec = Svc->tryLoadArtifact(K)) {
      {
        std::unique_lock<std::shared_mutex> Guard(S.Lock);
        S.Cache.emplace(K, Exec);
      }
      Publish(Status::success(), Exec);
      return Exec;
    }
  }

  RegCompiles->fetch_add(1, std::memory_order_relaxed);
  trace::Span CompileSpan("tc.compile", "cache");
  if (trace::enabled()) {
    CompileSpan.strArg("kernel", trace::intern(K.KernelName));
    CompileSpan.arg("width", K.WarpSize);
  }
  auto Start = std::chrono::steady_clock::now();

  auto POrErr = prepare(K.KernelName, K.BranchPlan);
  if (!POrErr) {
    Publish(POrErr.status(), nullptr);
    return POrErr.status();
  }
  const PreparedKernel *P = *POrErr;

  VectorizeOptions Opts;
  Opts.WarpSize = K.WarpSize;
  Opts.ThreadInvariantElim = K.ThreadInvariantElim;
  Opts.UniformBranchOpt = K.UniformBranchOpt;
  Opts.UniformLoadOpt = K.UniformLoadOpt;
  std::unique_ptr<Kernel> Specialized =
      vectorizeKernel(P->Scalar, P->Plan, Opts);
  if (RunCleanup)
    runCleanupPipeline(*Specialized);
  if (Status E = verifyKernel(*Specialized)) {
    Status Err = Status::error("specialization failed verification: " +
                               E.message());
    Publish(Err, nullptr);
    return Err;
  }

  auto Exec = KernelExec::build(std::move(Specialized), Machine,
                                K.Superinstructions, K.Simd);
  {
    std::unique_lock<std::shared_mutex> Guard(S.Lock);
    S.Cache.emplace(K, Exec);
  }
  Publish(Status::success(), Exec);
  if (Svc)
    Svc->storeArtifact(K, *Exec);

  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  {
    std::lock_guard<std::mutex> Guard(StatsLock);
    CompileSeconds += Seconds;
  }
  MetricsRegistry::global().add("tc.compile_nanos",
                                static_cast<uint64_t>(Seconds * 1e9));
  return Exec;
}

Expected<TranslationCache::KernelLayout>
TranslationCache::layoutFor(const std::string &KernelName,
                            const std::string &BranchPlan) {
  auto POrErr = prepare(KernelName, BranchPlan);
  if (!POrErr)
    return POrErr.status();
  const PreparedKernel *P = *POrErr;
  KernelLayout Layout;
  Layout.LocalBytes = P->Scalar.LocalBytes + P->Plan.SpillBytes;
  Layout.SharedBytes = P->Scalar.SharedBytes;
  Layout.ParamBytes = P->Scalar.ParamBytes;
  return Layout;
}

Expected<const SpecializationPlan *>
TranslationCache::planFor(const std::string &KernelName,
                          const std::string &BranchPlan) {
  auto POrErr = prepare(KernelName, BranchPlan);
  if (!POrErr)
    return POrErr.status();
  return &(*POrErr)->Plan;
}

TranslationCache::Stats TranslationCache::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Guard(StatsLock);
  S.CompileSeconds = CompileSeconds;
  return S;
}
