//===- core/TranslationCache.cpp - Dynamic translation cache --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/TranslationCache.h"

#include "simtvec/ir/Module.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/support/Format.h"
#include "simtvec/transforms/Passes.h"

#include <chrono>

using namespace simtvec;

Expected<const TranslationCache::PreparedKernel *>
TranslationCache::prepare(const std::string &KernelName) {
  auto It = Prepared.find(KernelName);
  if (It != Prepared.end())
    return &It->second;

  const Kernel *Source = M.findKernel(KernelName);
  if (!Source)
    return Status::error(
        formatString("kernel '%s' is not registered", KernelName.c_str()));
  if (Status E = verifyKernel(*Source))
    return Status::error("invalid kernel: " + E.message());
  if (Source->WarpSize != 0)
    return Status::error(formatString(
        "kernel '%s' is already specialized", KernelName.c_str()));

  PreparedKernel P;
  P.Scalar = *Source; // deep copy
  // PTX-to-PTX preparation (paper §5.1): replace non-branch predicated
  // instructions with selects and split blocks at barriers.
  runPredicateToSelect(P.Scalar);
  runBarrierSplit(P.Scalar);
  if (Status E = verifyKernel(P.Scalar))
    return Status::error("preparation broke the kernel: " + E.message());
  P.Plan = SpecializationPlan::build(P.Scalar);

  auto [Inserted, _] = Prepared.emplace(KernelName, std::move(P));
  return &Inserted->second;
}

Expected<std::shared_ptr<const KernelExec>>
TranslationCache::get(const Key &K) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Cache.find(K);
  if (It != Cache.end()) {
    ++Counters.Hits;
    return It->second;
  }
  ++Counters.Misses;
  auto Start = std::chrono::steady_clock::now();

  auto POrErr = prepare(K.KernelName);
  if (!POrErr)
    return POrErr.status();
  const PreparedKernel *P = *POrErr;

  VectorizeOptions Opts;
  Opts.WarpSize = K.WarpSize;
  Opts.ThreadInvariantElim = K.ThreadInvariantElim;
  Opts.UniformBranchOpt = K.UniformBranchOpt;
  Opts.UniformLoadOpt = K.UniformLoadOpt;
  std::unique_ptr<Kernel> Specialized =
      vectorizeKernel(P->Scalar, P->Plan, Opts);
  if (RunCleanup)
    runCleanupPipeline(*Specialized);
  if (Status E = verifyKernel(*Specialized))
    return Status::error("specialization failed verification: " +
                         E.message());

  auto Exec = KernelExec::build(std::move(Specialized), Machine);
  Cache.emplace(K, Exec);

  Counters.CompileSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Exec;
}

Expected<TranslationCache::KernelLayout>
TranslationCache::layoutFor(const std::string &KernelName) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto POrErr = prepare(KernelName);
  if (!POrErr)
    return POrErr.status();
  const PreparedKernel *P = *POrErr;
  KernelLayout Layout;
  Layout.LocalBytes = P->Scalar.LocalBytes + P->Plan.SpillBytes;
  Layout.SharedBytes = P->Scalar.SharedBytes;
  Layout.ParamBytes = P->Scalar.ParamBytes;
  return Layout;
}

TranslationCache::Stats TranslationCache::stats() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Counters;
}
