// placeholder
