//===- core/SpecializationService.cpp - Persistent specialization ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/SpecializationService.h"

#include "simtvec/ir/Module.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/support/Env.h"
#include "simtvec/support/Format.h"
#include "simtvec/vm/NativeABI.h"
#include "simtvec/vm/NativeCodegen.h"
#include "simtvec/vm/NativeModule.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include <sys/stat.h>

#if defined(__unix__) || defined(__APPLE__)
#include <stdlib.h> // mkdtemp
#include <unistd.h> // rmdir
#define SIMTVEC_JIT_HOST 1
#else
#define SIMTVEC_JIT_HOST 0
#endif

using namespace simtvec;

//===----------------------------------------------------------------------===//
// Kernel serialization
//===----------------------------------------------------------------------===//

namespace {

// Maxima of the enums a serialized kernel embeds; deserialization rejects
// anything beyond them so a bit-flipped artifact cannot manufacture an
// out-of-range enum (every switch downstream assumes validity).
constexpr uint8_t MaxOpcode = static_cast<uint8_t>(Opcode::Trap);
constexpr uint8_t MaxCmpOp = static_cast<uint8_t>(CmpOp::Ge);
constexpr uint8_t MaxSpace = static_cast<uint8_t>(AddressSpace::Param);
constexpr uint8_t MaxScalarKind = static_cast<uint8_t>(ScalarKind::F64);
constexpr uint8_t MaxSReg = static_cast<uint8_t>(SReg::EntryId);
constexpr uint8_t MaxSymKind = static_cast<uint8_t>(SymKind::Local);
constexpr uint8_t MaxBlockKind = static_cast<uint8_t>(BlockKind::ExitHandler);
constexpr uint8_t MaxOperandKind = static_cast<uint8_t>(Operand::Kind::Symbol);

void putType(ByteWriter &W, Type Ty) {
  W.u8(static_cast<uint8_t>(Ty.kind()));
  W.u16(Ty.lanes());
}

bool getType(ByteReader &R, Type &Ty) {
  uint8_t Kind = R.u8();
  uint16_t Lanes = R.u16();
  if (Kind > MaxScalarKind)
    return false;
  Ty = Type(static_cast<ScalarKind>(Kind), Lanes);
  return true;
}

void putOperand(ByteWriter &W, const Operand &O) {
  W.u8(static_cast<uint8_t>(O.kind()));
  switch (O.kind()) {
  case Operand::Kind::None:
    break;
  case Operand::Kind::Reg:
    W.u32(O.regId().Index);
    break;
  case Operand::Kind::Imm:
    putType(W, O.immType());
    W.u64(O.immBits());
    break;
  case Operand::Kind::Special:
    W.u8(static_cast<uint8_t>(O.specialReg()));
    break;
  case Operand::Kind::Symbol:
    W.u8(static_cast<uint8_t>(O.symKind()));
    W.u32(O.symIndex());
    break;
  }
}

bool getOperand(ByteReader &R, Operand &O) {
  uint8_t K = R.u8();
  if (K > MaxOperandKind)
    return false;
  switch (static_cast<Operand::Kind>(K)) {
  case Operand::Kind::None:
    O = Operand();
    return true;
  case Operand::Kind::Reg:
    O = Operand::reg(RegId(R.u32()));
    return true;
  case Operand::Kind::Imm: {
    Type Ty;
    if (!getType(R, Ty))
      return false;
    O = Operand::immBits(Ty, R.u64());
    return true;
  }
  case Operand::Kind::Special: {
    uint8_t S = R.u8();
    if (S > MaxSReg)
      return false;
    O = Operand::special(static_cast<SReg>(S));
    return true;
  }
  case Operand::Kind::Symbol: {
    uint8_t SK = R.u8();
    if (SK > MaxSymKind)
      return false;
    O = Operand::symbol(static_cast<SymKind>(SK), R.u32());
    return true;
  }
  }
  return false;
}

void putInstruction(ByteWriter &W, const Instruction &I) {
  W.u8(static_cast<uint8_t>(I.Op));
  putType(W, I.Ty);
  W.u8(static_cast<uint8_t>(I.Cmp));
  W.u8(static_cast<uint8_t>(I.Space));
  W.u32(I.Dst.Index);
  W.u32(static_cast<uint32_t>(I.Srcs.size()));
  for (const Operand &O : I.Srcs)
    putOperand(W, O);
  W.i64(I.MemOffset);
  W.u32(I.Guard.Index);
  W.u8(I.GuardNegated ? 1 : 0);
  W.u16(I.Lane);
  W.u32(I.Target);
  W.u32(I.FalseTarget);
  W.u32(static_cast<uint32_t>(I.SwitchValues.size()));
  for (int64_t V : I.SwitchValues)
    W.i64(V);
  for (uint32_t T : I.SwitchTargets)
    W.u32(T);
  W.u32(I.SwitchDefault);
}

/// Caps a decoded element count by what the remaining payload could possibly
/// hold (\p MinElemBytes per element), so a corrupt count cannot drive a
/// multi-gigabyte allocation before the bounds check latches.
bool plausibleCount(const ByteReader &R, uint32_t N, size_t MinElemBytes) {
  return static_cast<uint64_t>(N) * MinElemBytes <= R.remaining();
}

bool getInstruction(ByteReader &R, Instruction &I) {
  uint8_t Op = R.u8();
  if (Op > MaxOpcode)
    return false;
  I.Op = static_cast<Opcode>(Op);
  if (!getType(R, I.Ty))
    return false;
  uint8_t Cmp = R.u8();
  uint8_t Space = R.u8();
  if (Cmp > MaxCmpOp || Space > MaxSpace)
    return false;
  I.Cmp = static_cast<CmpOp>(Cmp);
  I.Space = static_cast<AddressSpace>(Space);
  I.Dst = RegId(R.u32());
  uint32_t NumSrcs = R.u32();
  if (!plausibleCount(R, NumSrcs, 1))
    return false;
  I.Srcs.resize(NumSrcs);
  for (Operand &O : I.Srcs)
    if (!getOperand(R, O))
      return false;
  I.MemOffset = R.i64();
  I.Guard = RegId(R.u32());
  I.GuardNegated = R.u8() != 0;
  I.Lane = R.u16();
  I.Target = R.u32();
  I.FalseTarget = R.u32();
  uint32_t NumCases = R.u32();
  if (!plausibleCount(R, NumCases, 12))
    return false;
  I.SwitchValues.resize(NumCases);
  for (int64_t &V : I.SwitchValues)
    V = R.i64();
  I.SwitchTargets.resize(NumCases);
  for (uint32_t &T : I.SwitchTargets)
    T = R.u32();
  I.SwitchDefault = R.u32();
  return !R.failed();
}

} // namespace

void simtvec::serializeKernel(ByteWriter &W, const Kernel &K) {
  W.str(K.Name);

  W.u32(static_cast<uint32_t>(K.Params.size()));
  for (const Param &P : K.Params) {
    W.str(P.Name);
    putType(W, P.Ty);
    W.u32(P.Offset);
  }
  W.u32(K.ParamBytes);

  auto putMemVars = [&](const std::vector<MemVar> &Vars, uint32_t Bytes) {
    W.u32(static_cast<uint32_t>(Vars.size()));
    for (const MemVar &V : Vars) {
      W.str(V.Name);
      W.u32(V.Bytes);
      W.u32(V.Offset);
    }
    W.u32(Bytes);
  };
  putMemVars(K.SharedVars, K.SharedBytes);
  putMemVars(K.LocalVars, K.LocalBytes);

  W.u32(static_cast<uint32_t>(K.Regs.size()));
  for (const VirtualRegister &Reg : K.Regs) {
    W.str(Reg.Name);
    putType(W, Reg.Ty);
  }

  W.u32(static_cast<uint32_t>(K.Blocks.size()));
  for (const BasicBlock &B : K.Blocks) {
    W.str(B.Name);
    W.u8(static_cast<uint8_t>(B.Kind));
    W.u32(static_cast<uint32_t>(B.Insts.size()));
    for (const Instruction &I : B.Insts)
      putInstruction(W, I);
  }

  W.u32(K.WarpSize);
  W.u32(static_cast<uint32_t>(K.EntryBlocks.size()));
  for (uint32_t E : K.EntryBlocks)
    W.u32(E);
  W.u32(K.SpillBytes);
}

bool simtvec::deserializeKernel(ByteReader &R, Kernel &K) {
  K = Kernel();
  K.Name = R.str();

  uint32_t NumParams = R.u32();
  if (!plausibleCount(R, NumParams, 11))
    return false;
  K.Params.resize(NumParams);
  for (Param &P : K.Params) {
    P.Name = R.str();
    if (!getType(R, P.Ty))
      return false;
    P.Offset = R.u32();
  }
  K.ParamBytes = R.u32();

  auto getMemVars = [&](std::vector<MemVar> &Vars, uint32_t &Bytes) {
    uint32_t N = R.u32();
    if (!plausibleCount(R, N, 12))
      return false;
    Vars.resize(N);
    for (MemVar &V : Vars) {
      V.Name = R.str();
      V.Bytes = R.u32();
      V.Offset = R.u32();
    }
    Bytes = R.u32();
    return !R.failed();
  };
  if (!getMemVars(K.SharedVars, K.SharedBytes) ||
      !getMemVars(K.LocalVars, K.LocalBytes))
    return false;

  uint32_t NumRegs = R.u32();
  if (!plausibleCount(R, NumRegs, 7))
    return false;
  K.Regs.resize(NumRegs);
  for (VirtualRegister &Reg : K.Regs) {
    Reg.Name = R.str();
    if (!getType(R, Reg.Ty))
      return false;
  }

  uint32_t NumBlocks = R.u32();
  if (!plausibleCount(R, NumBlocks, 9))
    return false;
  K.Blocks.resize(NumBlocks);
  for (BasicBlock &B : K.Blocks) {
    B.Name = R.str();
    uint8_t Kind = R.u8();
    if (Kind > MaxBlockKind)
      return false;
    B.Kind = static_cast<BlockKind>(Kind);
    uint32_t NumInsts = R.u32();
    if (!plausibleCount(R, NumInsts, 40))
      return false;
    B.Insts.resize(NumInsts);
    for (Instruction &I : B.Insts)
      if (!getInstruction(R, I))
        return false;
  }

  K.WarpSize = R.u32();
  uint32_t NumEntries = R.u32();
  if (!plausibleCount(R, NumEntries, 4))
    return false;
  K.EntryBlocks.resize(NumEntries);
  for (uint32_t &E : K.EntryBlocks)
    E = R.u32();
  K.SpillBytes = R.u32();
  return !R.failed();
}

//===----------------------------------------------------------------------===//
// Artifact and profile files
//===----------------------------------------------------------------------===//

namespace {

constexpr char ArtifactMagic[4] = {'S', 'V', 'C', 'A'};
constexpr char ProfileMagic[4] = {'S', 'V', 'C', 'P'};

/// Fixed-size artifact header preceding the payload.
struct ArtifactHeader {
  uint32_t Version = 0;
  uint64_t Fingerprint = 0;
  uint64_t LayoutFingerprint = 0;
  uint32_t PayloadCrc = 0;
  uint32_t PayloadBytes = 0;
};

/// Parses magic + header; false on bad magic or truncation.
bool readHeader(ByteReader &R, ArtifactHeader &H, const char Magic[4]) {
  char M[4] = {};
  R.raw(M, 4);
  if (R.failed() || std::memcmp(M, Magic, 4) != 0)
    return false;
  H.Version = R.u32();
  H.Fingerprint = R.u64();
  H.LayoutFingerprint = R.u64();
  H.PayloadCrc = R.u32();
  H.PayloadBytes = R.u32();
  return !R.failed();
}

void writeHeader(ByteWriter &W, const ArtifactHeader &H, const char Magic[4]) {
  W.raw(Magic, 4);
  W.u32(H.Version);
  W.u64(H.Fingerprint);
  W.u64(H.LayoutFingerprint);
  W.u32(H.PayloadCrc);
  W.u32(H.PayloadBytes);
}

/// Kernel names may contain characters hostile to filenames; keep
/// [A-Za-z0-9_-] and fold the rest (uniqueness comes from the fingerprint
/// in the name, not the sanitized prefix).
std::string sanitizeName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Keep = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '_' || C == '-';
    Out.push_back(Keep ? C : '_');
  }
  return Out.empty() ? std::string("kernel") : Out;
}

} // namespace

SpecializationOptions SpecializationOptions::fromEnv() {
  SpecializationOptions O;
  if (const char *Dir = std::getenv("SIMTVEC_CACHE_DIR"))
    if (*Dir)
      O.CacheDir = Dir;
  if (auto V = env::intKnob("SIMTVEC_CACHE_MAX_BYTES", 1,
                            std::numeric_limits<long long>::max(),
                            "no cache size cap"))
    O.CacheMaxBytes = static_cast<uint64_t>(*V);
  return O;
}

SpecializationService::SpecializationService(const Module &M,
                                             const MachineModel &Machine,
                                             SpecializationOptions Opts)
    : M(M), Machine(Machine), Opts(std::move(Opts)) {}

uint64_t SpecializationService::sourceHash(const std::string &KernelName) {
  std::lock_guard<std::mutex> G(HashLock);
  auto It = SourceHashes.find(KernelName);
  if (It != SourceHashes.end())
    return It->second;
  const Kernel *K = M.findKernel(KernelName);
  uint64_t H = K ? fnv1a64(printKernel(*K)) : 0;
  SourceHashes.emplace(KernelName, H);
  return H;
}

uint64_t SpecializationService::fingerprintFor(const TranslationCache::Key &K) {
  // Hash field by field through the writer — raw struct bytes would fold
  // padding into the fingerprint.
  ByteWriter W;
  W.str("simtvec.svc");
  W.u32(FormatVersion);
  W.u64(sourceHash(K.KernelName));
  W.u32(K.WarpSize);
  W.u8(K.ThreadInvariantElim ? 1 : 0);
  W.u8(K.UniformBranchOpt ? 1 : 0);
  W.u8(K.UniformLoadOpt ? 1 : 0);
  W.u8(K.Superinstructions ? 1 : 0);
  W.u8(static_cast<uint8_t>(K.Simd));
  W.str(K.BranchPlan);
  W.u32(Machine.VectorWidthBytes);
  W.u32(Machine.NumVecRegs);
  W.f64(Machine.ClockGHz);
  W.u32(Machine.Cores);
  W.f64(Machine.ArithCost);
  W.f64(Machine.TranscCost);
  W.f64(Machine.MemCost);
  W.f64(Machine.MemMissExtra);
  W.f64(Machine.ParamMemCost);
  W.u32(Machine.L1LineBytes);
  W.u32(Machine.L1Sets);
  W.u32(Machine.L1Ways);
  W.f64(Machine.AtomCost);
  W.f64(Machine.PackCost);
  W.f64(Machine.ControlCost);
  W.f64(Machine.SpillRestorePerLane);
  W.u32(Machine.PressureSlackRegs);
  W.f64(Machine.SpillPenaltyPerExcessReg);
  W.f64(Machine.EMWarpFormBase);
  W.f64(Machine.EMPerThreadScan);
  W.u32(Machine.EMScanWindow);
  W.f64(Machine.EMYieldUpdatePerThread);
  W.f64(Machine.EMBarrierRelease);
  return fnv1a64(W.bytes().data(), W.size());
}

uint64_t
SpecializationService::profileFingerprintFor(const std::string &KernelName) {
  // Width and flags are deliberately absent: one profile spans all widths of
  // a kernel.
  ByteWriter W;
  W.str("simtvec.svc.profile");
  W.u32(FormatVersion);
  W.u64(sourceHash(KernelName));
  return fnv1a64(W.bytes().data(), W.size());
}

std::string
SpecializationService::artifactPath(const TranslationCache::Key &K) {
  return formatString(
      "%s/%s.w%u.%016llx%s", Opts.CacheDir.c_str(),
      sanitizeName(K.KernelName).c_str(), K.WarpSize,
      static_cast<unsigned long long>(fingerprintFor(K)), ArtifactExt);
}

std::string SpecializationService::profilePath(const std::string &KernelName) {
  return formatString(
      "%s/%s.%016llx%s", Opts.CacheDir.c_str(),
      sanitizeName(KernelName).c_str(),
      static_cast<unsigned long long>(profileFingerprintFor(KernelName)),
      ProfileExt);
}

std::shared_ptr<const KernelExec>
SpecializationService::tryLoadArtifact(const TranslationCache::Key &K) {
  if (!persistent())
    return nullptr;
  auto Miss = [&]() -> std::shared_ptr<const KernelExec> {
    DiskMisses.fetch_add(1, std::memory_order_relaxed);
    RegDiskMisses->fetch_add(1, std::memory_order_relaxed);
    trace::instant("tc.disk_miss", "cache", K.WarpSize, "width");
    return nullptr;
  };

  auto Bytes = readFileBytes(artifactPath(K));
  if (!Bytes)
    return Miss();

  ByteReader R(*Bytes);
  ArtifactHeader H;
  if (!readHeader(R, H, ArtifactMagic))
    return Miss();
  if (H.Version != FormatVersion || H.Fingerprint != fingerprintFor(K))
    return Miss();
  if (H.PayloadBytes != R.remaining())
    return Miss();
  const uint8_t *Payload = Bytes->data() + (Bytes->size() - R.remaining());
  if (crc32(Payload, H.PayloadBytes) != H.PayloadCrc)
    return Miss();

  ByteReader PR(Payload, H.PayloadBytes);
  auto Kern = std::make_unique<Kernel>();
  if (!deserializeKernel(PR, *Kern) || !PR.exhausted())
    return Miss();

  // The payload decoded structurally; now hold it to the same bar a fresh
  // compile meets. Identity (right kernel, right width), then the verifier,
  // then a rebuild whose layout must match the recorded fingerprint — any
  // decoder or cost-model drift the build fingerprint failed to capture
  // surfaces here as a miss, never as divergent execution. The vectorizer
  // renames its output "<source>$w<width>..." so accept either the source
  // name or a specialization of it.
  bool NameMatches =
      Kern->Name == K.KernelName ||
      Kern->Name.compare(0, K.KernelName.size() + 2, K.KernelName + "$w") == 0;
  if (!NameMatches || Kern->WarpSize != K.WarpSize)
    return Miss();
  if (verifyKernel(*Kern).isError())
    return Miss();

  auto Exec = KernelExec::build(std::move(Kern), Machine,
                                K.Superinstructions, K.Simd);
  if (!Exec || Exec->layoutFingerprint() != H.LayoutFingerprint)
    return Miss();

  DiskHits.fetch_add(1, std::memory_order_relaxed);
  RegDiskHits->fetch_add(1, std::memory_order_relaxed);
  trace::instant("tc.disk_hit", "cache", K.WarpSize, "width");
  return Exec;
}

void SpecializationService::storeArtifact(const TranslationCache::Key &K,
                                          const KernelExec &Exec) {
  if (!persistent())
    return;

  ByteWriter Payload;
  serializeKernel(Payload, Exec.kernel());

  ArtifactHeader H;
  H.Version = FormatVersion;
  H.Fingerprint = fingerprintFor(K);
  H.LayoutFingerprint = Exec.layoutFingerprint();
  H.PayloadCrc = crc32(Payload.bytes().data(), Payload.size());
  H.PayloadBytes = static_cast<uint32_t>(Payload.size());

  ByteWriter W;
  writeHeader(W, H, ArtifactMagic);
  W.raw(Payload.bytes().data(), Payload.size());

  if (writeFileAtomic(artifactPath(K), W.bytes()).isError())
    return; // advisory store; the compile already succeeded
  DiskWrites.fetch_add(1, std::memory_order_relaxed);
  RegDiskWrites->fetch_add(1, std::memory_order_relaxed);
  trace::instant("tc.disk_write", "cache", K.WarpSize, "width");
  governStore();
}

//===----------------------------------------------------------------------===//
// CacheGovernor: in-process LRU size cap over the store directory
//===----------------------------------------------------------------------===//

namespace {

/// (seconds, nanoseconds) timestamp; ordered lexicographically.
using FileTime = std::pair<int64_t, int64_t>;

struct StoreEntry {
  std::string Path;
  std::string Name;
  uint64_t Bytes = 0;
  FileTime ATime{};
  FileTime MTime{};
};

/// One governor pass, shared between SpecializationService::governStore
/// and the native-JIT publish job (which must not touch the service).
/// Evicts only when the store is over cap; every pass that evicts is one
/// `cache.prune` span and a `cache.prune_runs` increment.
void runGovernorPass(const std::string &Dir, uint64_t MaxBytes,
                     const std::shared_ptr<std::atomic<bool>> &Busy) {
  auto R = SpecializationService::pruneStoreToBytes(
      Dir, MaxBytes, [](const std::string &Name, uint64_t Bytes) {
        trace::instant("cache.prune_evict", "cache", Bytes, "bytes");
        (void)Name;
      });
  if (R.Evicted) {
    auto &Reg = MetricsRegistry::global();
    Reg.counter("cache.prune_runs").fetch_add(1, std::memory_order_relaxed);
    Reg.counter("cache.prune_evicted")
        .fetch_add(R.Evicted, std::memory_order_relaxed);
    Reg.counter("cache.prune_bytes")
        .fetch_add(R.BytesFreed, std::memory_order_relaxed);
  }
  Busy->store(false, std::memory_order_release);
}

} // namespace

SpecializationService::PruneResult SpecializationService::pruneStoreToBytes(
    const std::string &Dir, uint64_t MaxBytes,
    const std::function<void(const std::string &, uint64_t)> &OnEvict) {
  namespace fs = std::filesystem;
  PruneResult Res;

  // Scan first, and capture every timestamp during the scan: recency must
  // reflect the runtime's own reads/writes, not this pass.
  std::vector<StoreEntry> Entries;
  std::error_code EC;
  for (const auto &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    std::string Ext = DE.path().extension().string();
    if (Ext != ArtifactExt && Ext != ProfileExt && Ext != NativeExt)
      continue;
    StoreEntry E;
    E.Path = DE.path().string();
    E.Name = DE.path().filename().string();
    E.Bytes = DE.file_size(EC);
    struct stat St;
    if (::stat(E.Path.c_str(), &St) == 0) {
      E.ATime = {static_cast<int64_t>(St.st_atim.tv_sec),
                 static_cast<int64_t>(St.st_atim.tv_nsec)};
      E.MTime = {static_cast<int64_t>(St.st_mtim.tv_sec),
                 static_cast<int64_t>(St.st_mtim.tv_nsec)};
    }
    Res.StoreBytes += E.Bytes;
    Entries.push_back(std::move(E));
  }
  if (Res.StoreBytes <= MaxBytes)
    return Res;

  trace::Span S("cache.prune", "cache");
  S.arg("store_bytes", Res.StoreBytes);
  S.arg("cap", MaxBytes);

  // Least-recently-USED first (file atime). On mounts that never advance
  // atimes (noatime, or relatime once atime caught up to mtime) every
  // atime equals its mtime and the "recency" signal is really the write
  // clock — detect that (no entry anywhere with atime > mtime) and order
  // by mtime explicitly, so mtime-LRU is the deliberate fallback rather
  // than an accident of frozen atimes. Name tie-break keeps eviction
  // deterministic either way.
  bool AtimeTracked = false;
  for (const StoreEntry &E : Entries)
    AtimeTracked |= E.ATime > E.MTime;
  std::sort(Entries.begin(), Entries.end(),
            [AtimeTracked](const StoreEntry &A, const StoreEntry &B) {
              FileTime TA =
                  AtimeTracked ? std::max(A.ATime, A.MTime) : A.MTime;
              FileTime TB =
                  AtimeTracked ? std::max(B.ATime, B.MTime) : B.MTime;
              if (TA != TB)
                return TA < TB;
              return A.Name < B.Name;
            });
  for (const StoreEntry &E : Entries) {
    if (Res.StoreBytes <= MaxBytes)
      break;
    std::error_code RemoveEC;
    if (!fs::remove(E.Path, RemoveEC))
      continue; // raced with another pruner, or permission — skip
    Res.StoreBytes -= E.Bytes;
    Res.BytesFreed += E.Bytes;
    ++Res.Evicted;
    if (OnEvict)
      OnEvict(E.Name, E.Bytes);
  }
  S.arg("evicted", Res.Evicted);
  return Res;
}

void SpecializationService::governStore() {
  if (!persistent() || Opts.CacheMaxBytes == 0)
    return;
  // Single-flight: one pass at a time per service. The pass itself decides
  // whether the store is actually over cap, so a lost race just means the
  // in-flight pass will see (and account for) this publish too — the next
  // over-cap publish re-arms it.
  bool Expected = false;
  if (!GovernorBusy->compare_exchange_strong(Expected, true,
                                             std::memory_order_acq_rel))
    return;
  auto Busy = GovernorBusy;
  std::string Dir = Opts.CacheDir;
  uint64_t Cap = Opts.CacheMaxBytes;
  auto Pass = [Dir, Cap, Busy] { runGovernorPass(Dir, Cap, Busy); };
  std::function<void(std::function<void()>)> Submit;
  {
    std::lock_guard<std::mutex> G(JitLock);
    Submit = AsyncSubmit;
  }
  // The pool runs detached tasks after every parallel job requesting help,
  // so a governor pass never preempts launch bodies — the "low priority"
  // the policy wants.
  if (Submit)
    Submit(std::move(Pass));
  else
    Pass();
}

Expected<SpecializationService::ArtifactInfo>
SpecializationService::inspectArtifact(const std::string &Path) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.status();

  ByteReader R(*Bytes);
  ArtifactHeader H;
  if (!readHeader(R, H, ArtifactMagic))
    return Status::error(
        formatString("'%s' is not an artifact file", Path.c_str()));

  ArtifactInfo Info;
  Info.Version = H.Version;
  Info.Fingerprint = H.Fingerprint;
  Info.LayoutFingerprint = H.LayoutFingerprint;
  Info.PayloadBytes = H.PayloadBytes;
  if (H.PayloadBytes != R.remaining())
    return Info; // truncated/padded: CrcValid stays false
  const uint8_t *Payload = Bytes->data() + (Bytes->size() - R.remaining());
  Info.CrcValid = crc32(Payload, H.PayloadBytes) == H.PayloadCrc;
  if (!Info.CrcValid || H.Version != FormatVersion)
    return Info;

  ByteReader PR(Payload, H.PayloadBytes);
  Kernel K;
  if (deserializeKernel(PR, K) && PR.exhausted() &&
      !verifyKernel(K).isError()) {
    Info.Decodes = true;
    Info.KernelName = K.Name;
    Info.WarpSize = K.WarpSize;
  }
  return Info;
}

SpecializationService::Stats SpecializationService::stats() const {
  Stats S;
  S.DiskHits = DiskHits.load(std::memory_order_relaxed);
  S.DiskMisses = DiskMisses.load(std::memory_order_relaxed);
  S.DiskWrites = DiskWrites.load(std::memory_order_relaxed);
  S.JitCompiles = JitStats->Compiles.load(std::memory_order_relaxed);
  S.JitHits = JitStats->Hits.load(std::memory_order_relaxed);
  S.JitSwaps = JitStats->Swaps.load(std::memory_order_relaxed);
  return S;
}

//===----------------------------------------------------------------------===//
// Warp-width autotuner
//===----------------------------------------------------------------------===//

SpecializationService::KernelTune &
SpecializationService::tuneFor(const std::string &KernelName) {
  KernelTune &T = Tune[KernelName];
  if (T.Per.empty())
    for (uint32_t W : Opts.Widths)
      T.Per.push_back({W, 0, 0});

  if (!T.ProfileChecked) {
    T.ProfileChecked = true;
    if (persistent()) {
      // Adopt a persisted commit so a later process starts exploited. The
      // profile fingerprint pins source + machine; a stale file is ignored.
      if (auto Bytes = readFileBytes(profilePath(KernelName))) {
        ByteReader R(*Bytes);
        ArtifactHeader H;
        if (readHeader(R, H, ProfileMagic) && H.Version == FormatVersion &&
            H.Fingerprint == profileFingerprintFor(KernelName) &&
            H.PayloadBytes == R.remaining()) {
          const uint8_t *Payload =
              Bytes->data() + (Bytes->size() - R.remaining());
          if (crc32(Payload, H.PayloadBytes) == H.PayloadCrc) {
            ByteReader PR(Payload, H.PayloadBytes);
            uint32_t Committed = PR.u32();
            uint32_t N = PR.u32();
            std::vector<WidthState> Loaded;
            if (N <= 64) {
              for (uint32_t I = 0; I < N && !PR.failed(); ++I) {
                WidthState WS;
                WS.Width = PR.u32();
                WS.Samples = PR.u32();
                WS.SumCyclesPerThread = PR.f64();
                Loaded.push_back(WS);
              }
            }
            // Divergence-PGO section (always present since v2): the
            // committed (width, plan) pairs. In-flight trial state is
            // never persisted — wall seconds measured by one process are
            // not comparable to another's.
            uint32_t NBranch = PR.u32();
            std::vector<std::pair<uint32_t, std::string>> BLoaded;
            if (NBranch <= 64)
              for (uint32_t I = 0; I < NBranch && !PR.failed(); ++I) {
                uint32_t BW = PR.u32();
                std::string BPlan = PR.str();
                BLoaded.emplace_back(BW, std::move(BPlan));
              }
            bool Structural = !PR.failed() && PR.exhausted();
            // Width commit and branch commit adopt independently: either
            // half of the autotuner may converge (and persist) first.
            if (Structural && Committed != 0 &&
                std::any_of(T.Per.begin(), T.Per.end(),
                            [&](const WidthState &WS) {
                              return WS.Width == Committed;
                            })) {
              T.Committed = Committed;
              for (const WidthState &L : Loaded)
                for (WidthState &WS : T.Per)
                  if (WS.Width == L.Width) {
                    WS.Samples = L.Samples;
                    WS.SumCyclesPerThread = L.SumCyclesPerThread;
                  }
            }
            if (Structural)
              for (auto &WP : BLoaded) {
                BranchState &B = T.Branch[WP.first];
                B.Committed = true;
                B.Plan = std::move(WP.second);
              }
          }
        }
      }
    }
  }
  return T;
}

uint32_t SpecializationService::chooseWidth(const std::string &KernelName) {
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  if (T.Committed)
    return T.Committed;
  for (const WidthState &WS : T.Per)
    if (WS.Samples < Opts.ExploreSamples) {
      RegExplore->fetch_add(1, std::memory_order_relaxed);
      trace::instant("autotune.explore", "autotune", WS.Width, "width");
      return WS.Width;
    }
  // Every candidate is fully sampled but no commit happened (e.g. feedback
  // was lost); fall back to the current argmin without committing.
  const WidthState *Best = &T.Per.front();
  for (const WidthState &WS : T.Per)
    if (WS.SumCyclesPerThread / WS.Samples <
        Best->SumCyclesPerThread / Best->Samples)
      Best = &WS;
  return Best->Width;
}

void SpecializationService::recordSample(const std::string &KernelName,
                                         uint32_t Width, double ModeledCycles,
                                         uint64_t Threads) {
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  if (T.Committed)
    return;
  WidthState *Slot = nullptr;
  for (WidthState &WS : T.Per)
    if (WS.Width == Width)
      Slot = &WS;
  if (!Slot)
    return; // feedback for a width outside the candidate set
  Slot->Samples += 1;
  Slot->SumCyclesPerThread +=
      ModeledCycles / static_cast<double>(std::max<uint64_t>(1, Threads));

  for (const WidthState &WS : T.Per)
    if (WS.Samples < Opts.ExploreSamples)
      return; // still exploring

  const WidthState *Best = &T.Per.front();
  for (const WidthState &WS : T.Per)
    if (WS.SumCyclesPerThread / WS.Samples <
        Best->SumCyclesPerThread / Best->Samples)
      Best = &WS;
  T.Committed = Best->Width;
  RegCommit->fetch_add(1, std::memory_order_relaxed);
  trace::instant("autotune.commit", "autotune", T.Committed, "width");
  persistProfile(KernelName, T);
}

uint32_t SpecializationService::committedWidth(const std::string &KernelName) {
  std::lock_guard<std::mutex> G(TuneLock);
  return tuneFor(KernelName).Committed;
}

//===----------------------------------------------------------------------===//
// Divergence PGO
//===----------------------------------------------------------------------===//

// The trial candidates. "" (legacy all-yield) leads every round: its
// very first launch reveals whether the kernel diverges at all at this
// width (divergence is shape-deterministic — if the first launch saw no
// yields, none will), and a never-diverging kernel commits "" without
// ever building a transformed artifact. "p" (flatten only) removes
// inner-branch divergence but keeps loop backedges yielding; "m" adds
// melding and masked self-loops.
static const char *const BranchCandidates[] = {"", "p", "m"};
static constexpr size_t NumBranchCandidates =
    sizeof(BranchCandidates) / sizeof(BranchCandidates[0]);
// A challenger must beat the reigning candidate's best wall seconds by
// >2%. Ties and noise stay with the earlier candidate, so "" keeps the
// kernel on the legacy artifacts unless a transform wins clearly.
static constexpr double BranchNoiseMargin = 0.98;

std::string
SpecializationService::chooseBranchPlan(const std::string &KernelName,
                                        uint32_t Width) {
  if (Width <= 1)
    return std::string(); // a 1-wide warp cannot diverge
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  BranchState &B = T.Branch[Width];
  if (B.Committed)
    return B.Plan;
  RegBranchExplore->fetch_add(1, std::memory_order_relaxed);
  trace::instant("autotune.branch_explore", "autotune", B.Launches,
                 "launches");
  // Round-robin, not consecutive stages: interleaving spreads machine
  // drift (background JIT swaps, frequency ramps) across all candidates
  // instead of letting it bias whichever candidate ran last.
  return BranchCandidates[B.Launches % NumBranchCandidates];
}

void SpecializationService::recordBranchSample(
    const std::string &KernelName, uint32_t Width,
    const std::string &PlanUsed, const std::vector<uint64_t> &SiteYields,
    double Seconds) {
  if (Width <= 1)
    return;
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  BranchState &B = T.Branch[Width];
  if (B.Committed)
    return;
  const size_t Cand = B.Launches % NumBranchCandidates;
  if (PlanUsed != BranchCandidates[Cand])
    return; // stale in-flight launch from an earlier trial slot
  if (B.CandMinSecs.empty()) {
    B.CandMinSecs.assign(NumBranchCandidates,
                         std::numeric_limits<double>::infinity());
    B.CandLaunches.assign(NumBranchCandidates, 0);
  }
  if (B.SiteYields.size() < SiteYields.size())
    B.SiteYields.resize(SiteYields.size(), 0);
  for (size_t S = 0; S < SiteYields.size(); ++S)
    B.SiteYields[S] += SiteYields[S];
  if (Cand == 0)
    for (uint64_t Y : SiteYields)
      B.ExploreYields += Y;
  // Per-candidate minimum, not mean: a candidate's first launch pays its
  // artifact compile, and on kernels whose launch time is comparable to a
  // compile, folding that stall into a mean would make every transformed
  // plan look slower than it runs (exactly how SpMV once lost a 1.5x
  // win). The minimum is the steady-state cost.
  B.CandMinSecs[Cand] = std::min(B.CandMinSecs[Cand], Seconds);
  B.CandLaunches[Cand] += 1;
  B.Launches += 1;
  if (Cand == 0 && B.ExploreYields == 0) {
    // The legacy plan never diverged at this width: the transformed plans
    // have nothing to remove, so stay on the legacy artifacts without
    // trialing them.
    B.Plan.clear();
    commitBranchPlan(KernelName, T, B);
    return;
  }
  if (B.Launches < NumBranchCandidates * Opts.BranchExploreLaunches)
    return;

  // Trial complete: commit the wall-argmin, with "" defended by the
  // noise margin (and each later candidate needing a >2% win over the
  // reigning one).
  size_t Best = 0;
  for (size_t C = 1; C < NumBranchCandidates; ++C)
    if (B.CandMinSecs[C] < BranchNoiseMargin * B.CandMinSecs[Best])
      Best = C;
  B.Plan = BranchCandidates[Best];
  commitBranchPlan(KernelName, T, B);
}

void SpecializationService::commitBranchPlan(const std::string &KernelName,
                                             KernelTune &T, BranchState &B) {
  B.Committed = true;
  RegBranchCommit->fetch_add(1, std::memory_order_relaxed);
  trace::instant("autotune.branch_commit", "autotune",
                 static_cast<uint64_t>(B.Plan.size()), "sites");
  persistProfile(KernelName, T);
}

std::string
SpecializationService::committedBranchPlan(const std::string &KernelName,
                                           uint32_t Width) {
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  auto It = T.Branch.find(Width);
  return It != T.Branch.end() && It->second.Committed ? It->second.Plan
                                                      : std::string();
}

bool SpecializationService::branchPlanCommitted(const std::string &KernelName,
                                                uint32_t Width) {
  std::lock_guard<std::mutex> G(TuneLock);
  KernelTune &T = tuneFor(KernelName);
  auto It = T.Branch.find(Width);
  return It != T.Branch.end() && It->second.Committed;
}

void SpecializationService::persistProfile(const std::string &KernelName,
                                           const KernelTune &T) {
  if (!persistent())
    return;
  ByteWriter Payload;
  Payload.u32(T.Committed);
  Payload.u32(static_cast<uint32_t>(T.Per.size()));
  for (const WidthState &WS : T.Per) {
    Payload.u32(WS.Width);
    Payload.u32(WS.Samples);
    Payload.f64(WS.SumCyclesPerThread);
  }
  // Divergence-PGO section (v2): committed (width, plan) pairs only.
  uint32_t NBranch = 0;
  for (const auto &KV : T.Branch)
    if (KV.second.Committed)
      ++NBranch;
  Payload.u32(NBranch);
  for (const auto &KV : T.Branch)
    if (KV.second.Committed) {
      Payload.u32(KV.first);
      Payload.str(KV.second.Plan);
    }

  ArtifactHeader H;
  H.Version = FormatVersion;
  H.Fingerprint = profileFingerprintFor(KernelName);
  H.LayoutFingerprint = 0;
  H.PayloadCrc = crc32(Payload.bytes().data(), Payload.size());
  H.PayloadBytes = static_cast<uint32_t>(Payload.size());

  ByteWriter W;
  writeHeader(W, H, ProfileMagic);
  W.raw(Payload.bytes().data(), Payload.size());
  (void)writeFileAtomic(profilePath(KernelName), W.bytes());
  // Profiles count against SIMTVEC_CACHE_MAX_BYTES like any other store
  // entry, so every write path arms the governor.
  governStore();
}

//===----------------------------------------------------------------------===//
// Native JIT tier
//===----------------------------------------------------------------------===//

namespace {

/// Flags the background compile uses. -ffp-contract=off keeps the generated
/// float math bit-identical to the interpreter build (no surprise FMA
/// contraction); everything else is the plainest shared-object recipe the
/// system toolchain understands.
const char *jitFlags() {
  return "-std=c++20 -O2 -fPIC -shared -ffp-contract=off";
}

/// First line of `<cmd> --version`, or "" when the command is absent. Used
/// both as the discovery probe and as the compiler-identity input.
std::string toolVersionLine(const std::string &Cmd) {
#if SIMTVEC_JIT_HOST
  std::string Out;
  std::string Probe = Cmd + " --version 2>/dev/null";
  FILE *P = popen(Probe.c_str(), "r");
  if (!P)
    return Out;
  char Buf[512];
  if (fgets(Buf, sizeof(Buf), P))
    Out = Buf;
  pclose(P);
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return Out;
#else
  (void)Cmd;
  return std::string();
#endif
}

/// The discovered host toolchain. Identity folds the version banner and the
/// flag set: upgrading the compiler (or changing the recipe) changes every
/// native-object filename, so a warm store recompiles instead of trusting
/// stale code.
struct Toolchain {
  bool OK = false;
  std::string Cxx;
  uint64_t Id = 0;
};

const Toolchain &hostToolchain() {
  static const Toolchain TC = [] {
    Toolchain T;
    std::vector<std::string> Candidates;
    if (const char *Env = std::getenv("SIMTVEC_JIT_CXX")) {
      if (*Env)
        Candidates.push_back(Env);
    }
    if (Candidates.empty())
      Candidates = {"c++", "g++", "clang++"};
    for (const std::string &C : Candidates) {
      std::string V = toolVersionLine(C);
      if (V.empty())
        continue;
      T.OK = true;
      T.Cxx = C;
      T.Id = fnv1a64(V + "|" + jitFlags());
      break;
    }
    return T;
  }();
  return TC;
}

/// Include root the generated TU resolves simtvec headers from.
std::string jitIncludeDir() {
  if (const char *Env = std::getenv("SIMTVEC_JIT_INCLUDE"))
    if (*Env)
      return Env;
#ifdef SIMTVEC_JIT_INCLUDE_DIR
  return SIMTVEC_JIT_INCLUDE_DIR;
#else
  return std::string();
#endif
}

bool keepJitTemps() {
  const char *E = std::getenv("SIMTVEC_JIT_KEEP");
  return E && *E && std::strcmp(E, "0") != 0;
}

/// POSIX-shell single-quote. Paths reach std::system inside these.
std::string shellQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out.push_back('\'');
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out.push_back(C);
  }
  Out.push_back('\'');
  return Out;
}

std::string scratchBaseDir(bool Persistent, const std::string &CacheDir) {
  if (Persistent)
    return CacheDir; // same filesystem as the publish target → atomic rename
  if (const char *T = std::getenv("TMPDIR"))
    if (*T)
      return T;
  return "/tmp";
}

} // namespace

void SpecializationService::setAsyncSubmit(
    std::function<void(std::function<void()>)> Submit) {
  std::lock_guard<std::mutex> G(JitLock);
  AsyncSubmit = std::move(Submit);
}

std::string
SpecializationService::nativeObjectPath(const TranslationCache::Key &K) {
  if (!persistent())
    return std::string();
  const Toolchain &TC = hostToolchain();
  if (!TC.OK)
    return std::string();
  return formatString(
      "%s/%s.w%u.%016llx.%016llx%s", Opts.CacheDir.c_str(),
      sanitizeName(K.KernelName).c_str(), K.WarpSize,
      static_cast<unsigned long long>(fingerprintFor(K)),
      static_cast<unsigned long long>(TC.Id), NativeExt);
}

void SpecializationService::requestNative(
    const TranslationCache::Key &K, std::shared_ptr<const KernelExec> Exec,
    bool Sync) {
#if !SIMTVEC_JIT_HOST
  (void)K;
  (void)Exec;
  (void)Sync;
  return;
#else
  if (!Exec)
    return;
  // Cheap pre-check; claimJit() below is the authoritative single-compile
  // gate (exactly one caller wins the None -> Queued transition).
  if (Exec->jitState() != JitState::None)
    return;
  const Toolchain &TC = hostToolchain();
  if (!TC.OK)
    return; // leave unclaimed: discovery is static, nothing to retry
  if (!Exec->claimJit())
    return;

  // The job owns everything it touches by value (plus shared_ptrs): it may
  // run detached on the worker pool after this service is destroyed, so it
  // must never dereference `this`.
  struct JobCtx {
    std::string SoPath;     ///< publish target; "" when not persistent
    std::string ScratchBase;
    std::string IncludeDir;
    std::string Cxx;
    uint64_t BuildFp = 0;
    MachineModel Machine;
    uint32_t WarpSize = 1;
    bool Persist = false;
    bool Keep = false;
    bool Background = false;
    std::shared_ptr<const KernelExec> Exec;
    std::shared_ptr<JitSharedStats> Stats;
    /// CacheGovernor inputs: a published `.so` can push the store over its
    /// cap just like an artifact write, and the job cannot call back into
    /// the (possibly destroyed) service.
    std::string CacheDir;
    uint64_t CacheMaxBytes = 0;
    std::shared_ptr<std::atomic<bool>> GovernorBusy;
  };
  auto J = std::make_shared<JobCtx>();
  J->SoPath = nativeObjectPath(K);
  J->CacheDir = Opts.CacheDir;
  J->CacheMaxBytes = Opts.CacheMaxBytes;
  J->GovernorBusy = GovernorBusy;
  J->ScratchBase = scratchBaseDir(persistent(), Opts.CacheDir);
  J->IncludeDir = jitIncludeDir();
  J->Cxx = TC.Cxx;
  J->BuildFp = fingerprintFor(K);
  J->Machine = Machine;
  J->WarpSize = Exec->kernel().WarpSize ? Exec->kernel().WarpSize : 1;
  J->Persist = persistent();
  J->Keep = keepJitTemps();
  J->Background = !Sync;
  J->Exec = std::move(Exec);
  J->Stats = JitStats;

  auto Run = [J] {
    const uint64_t LayoutFp = J->Exec->layoutFingerprint();
    auto &Reg = MetricsRegistry::global();

    auto Publish = [&](std::shared_ptr<NativeModule> M) {
      SimtvecNativeEntryFn E = M->entry();
      J->Exec->publishNative(std::move(M), E);
      J->Stats->Swaps.fetch_add(1, std::memory_order_relaxed);
      Reg.counter("tc.jit_swap").fetch_add(1, std::memory_order_relaxed);
      trace::instant("tc.jit_swap", "cache", J->WarpSize, "width");
    };
    auto Fail = [&] { J->Exec->failJit(); };

    // Warm path: an earlier process (same fingerprint, same compiler)
    // already published the object — dlopen without recompiling.
    if (J->Persist && !J->SoPath.empty()) {
      if (auto M = NativeModule::loadAndVerify(J->SoPath, LayoutFp,
                                               J->BuildFp, J->WarpSize)) {
        J->Stats->Hits.fetch_add(1, std::memory_order_relaxed);
        Reg.counter("tc.jit_hit").fetch_add(1, std::memory_order_relaxed);
        trace::instant("tc.jit_hit", "cache", J->WarpSize, "width");
        Publish(std::move(M));
        return;
      }
      // Stale or corrupt object: fall through and recompile over it.
    }

    std::string Src = emitNativeSource(*J->Exec, J->Machine, J->BuildFp);
    if (Src.empty() || J->IncludeDir.empty())
      return Fail();

    // Private scratch directory; avoids predictable temp names and keeps
    // concurrent compiles of different executables apart.
    std::string Templ = J->ScratchBase + "/simtvec-jit-XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    if (!mkdtemp(Buf.data()))
      return Fail();
    const std::string Dir = Buf.data();
    const std::string CppPath = Dir + "/kernel.cpp";
    const std::string SoTmp = Dir + "/kernel.so";
    const std::string LogPath = Dir + "/compile.log";
    auto Cleanup = [&] {
      if (J->Keep)
        return;
      std::remove(CppPath.c_str());
      std::remove(SoTmp.c_str());
      std::remove(LogPath.c_str());
      rmdir(Dir.c_str());
    };

    if (writeFileAtomic(CppPath, Src.data(), Src.size()).isError()) {
      Cleanup();
      return Fail();
    }

    // Background compiles run at reduced scheduling priority: the tier is
    // an optimization, and on narrow hosts an un-niced compiler subprocess
    // visibly steals cycles from the launches it is trying to speed up.
    // nice 10 (~10% share under full contention) rather than 19 (~1.5%):
    // a fully saturated single-core host must still finish the compile in
    // seconds, not starve it forever. Forced-synchronous compiles
    // (SIMTVEC_JIT=native) run at full priority — the caller is waiting.
    std::string Cmd = (J->Background ? "nice -n 10 " : "") +
                      shellQuote(J->Cxx) + " " + jitFlags() + " -I" +
                      shellQuote(J->IncludeDir) + " -o " + shellQuote(SoTmp) +
                      " " + shellQuote(CppPath) + " -lm 2> " +
                      shellQuote(LogPath);
    int Rc;
    {
      trace::Span S("tc.jit_compile", "cache");
      S.arg("width", J->WarpSize);
      J->Stats->Compiles.fetch_add(1, std::memory_order_relaxed);
      Reg.counter("tc.jit_compile").fetch_add(1, std::memory_order_relaxed);
      Rc = std::system(Cmd.c_str());
    }
    if (Rc != 0) {
      Cleanup();
      return Fail();
    }

    // Publish into the store by rename (same filesystem); on any rename
    // problem just load the scratch copy — the unlink during Cleanup is
    // safe, the mapping stays valid after dlopen.
    std::string LoadPath = SoTmp;
    bool StoreGrew = false;
    if (J->Persist && !J->SoPath.empty() &&
        std::rename(SoTmp.c_str(), J->SoPath.c_str()) == 0) {
      LoadPath = J->SoPath;
      StoreGrew = true;
    }

    auto M = NativeModule::loadAndVerify(LoadPath, LayoutFp, J->BuildFp,
                                         J->WarpSize);
    if (!M) {
      Cleanup();
      return Fail();
    }
    Publish(std::move(M));
    Cleanup();

    // The store just grew by one object; give the governor a chance to
    // re-fit it. Runs after the dlopen (an evicted mapping stays valid)
    // and inline — this is already a background task.
    if (StoreGrew && J->CacheMaxBytes) {
      bool Expected = false;
      if (J->GovernorBusy->compare_exchange_strong(
              Expected, true, std::memory_order_acq_rel))
        runGovernorPass(J->CacheDir, J->CacheMaxBytes, J->GovernorBusy);
    }
  };

  if (Sync) {
    Run();
    return;
  }
  std::function<void(std::function<void()>)> Submit;
  {
    std::lock_guard<std::mutex> G(JitLock);
    Submit = AsyncSubmit;
  }
  if (Submit)
    Submit(std::move(Run));
  else
    Run();
#endif
}
