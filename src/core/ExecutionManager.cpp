//===- core/ExecutionManager.cpp - Dynamic execution manager --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/ExecutionManager.h"

#include "simtvec/support/Format.h"
#include "simtvec/vm/Interpreter.h"

#include <deque>
#include <optional>
#include <thread>

using namespace simtvec;

namespace {

/// Largest power of two <= N (N >= 1).
uint32_t floorPow2(uint32_t N) {
  uint32_t P = 1;
  while (P * 2 <= N)
    P *= 2;
  return P;
}

/// Per-worker accumulation.
struct WorkerResult {
  CycleCounters Counters;
  std::map<uint32_t, uint64_t> EntriesByWidth;
  uint64_t WarpEntries = 0;
  uint64_t ThreadEntries = 0;
  uint64_t BranchYields = 0;
  uint64_t BarrierYields = 0;
  uint64_t ExitYields = 0;
  std::optional<std::string> Error;
};

/// One worker thread's execution manager (paper §5.2). Executes its
/// assigned CTAs to completion, one at a time.
class ExecutionManager {
public:
  ExecutionManager(TranslationCache &TC, const std::string &KernelName,
                   const LaunchConfig &Config,
                   const TranslationCache::KernelLayout &Layout, Dim3 Grid,
                   Dim3 Block, const std::vector<std::byte> &ParamBuf,
                   std::byte *Global, size_t GlobalSize,
                   std::mutex &AtomicMutex)
      : TC(TC), KernelName(KernelName), Config(Config), Layout(Layout),
        Grid(Grid), Block(Block), ParamBuf(ParamBuf), Global(Global),
        GlobalSize(GlobalSize), AtomicMutex(AtomicMutex),
        Interp(Config.Machine) {}

  /// Runs CTAs [first, first+stride, ...) to completion.
  WorkerResult run(uint64_t FirstCta, uint64_t Stride);

private:
  enum class ThreadState : uint8_t { Ready, Running, Barrier, Exited };

  bool runCta(uint64_t LinearCta, WorkerResult &R);

  uint64_t bucketKey(const ThreadContext &Ctx) const {
    uint64_t Key = Ctx.ResumePoint;
    if (Config.Formation == WarpFormation::Static)
      Key = (Key << 32) | (Ctx.LinearTid / Config.MaxWarpSize);
    return Key;
  }

  TranslationCache &TC;
  const std::string &KernelName;
  const LaunchConfig &Config;
  TranslationCache::KernelLayout Layout;
  Dim3 Grid, Block;
  const std::vector<std::byte> &ParamBuf;
  std::byte *Global;
  size_t GlobalSize;
  std::mutex &AtomicMutex;
  Interpreter Interp;
};

bool ExecutionManager::runCta(uint64_t LinearCta, WorkerResult &R) {
  const uint32_t NumThreads = static_cast<uint32_t>(Block.count());
  const MachineModel &Machine = Config.Machine;

  // Per-CTA memory structures (paper §5.2): shared memory and a contiguous
  // block partitioned into per-thread local memories.
  std::vector<std::byte> Shared(Layout.SharedBytes);
  std::vector<std::byte> LocalArena(static_cast<size_t>(NumThreads) *
                                    Layout.LocalBytes);

  std::vector<ThreadContext> Ctxs(NumThreads);
  Dim3 CtaId;
  CtaId.X = static_cast<uint32_t>(LinearCta % Grid.X);
  CtaId.Y = static_cast<uint32_t>((LinearCta / Grid.X) % Grid.Y);
  CtaId.Z = static_cast<uint32_t>(LinearCta / (static_cast<uint64_t>(Grid.X) *
                                               Grid.Y));
  for (uint32_t T = 0; T < NumThreads; ++T) {
    ThreadContext &Ctx = Ctxs[T];
    Ctx.TidX = T % Block.X;
    Ctx.TidY = (T / Block.X) % Block.Y;
    Ctx.TidZ = T / (Block.X * Block.Y);
    Ctx.LinearTid = T;
    Ctx.CtaId = CtaId;
    Ctx.GridDim = Grid;
    Ctx.BlockDim = Block;
    Ctx.LocalMem = LocalArena.data() +
                   static_cast<size_t>(T) * Layout.LocalBytes;
    Ctx.ResumePoint = 0;
    Ctx.Status = ResumeStatus::Branch;
  }

  ExecMemory Mem;
  Mem.Global = Global;
  Mem.GlobalSize = GlobalSize;
  Mem.Shared = Shared.data();
  Mem.SharedSize = Shared.size();
  Mem.ParamBuf = ParamBuf.data();
  Mem.ParamSize = ParamBuf.size();
  Mem.LocalSize = Layout.LocalBytes;
  Mem.AtomicMutex = &AtomicMutex;

  // Ready pool: a round-robin order queue plus same-entry buckets.
  // Sequence numbers invalidate stale queue entries of threads that were
  // swept into another thread's warp.
  std::vector<ThreadState> State(NumThreads, ThreadState::Ready);
  std::vector<uint32_t> Seq(NumThreads, 0);
  std::deque<std::pair<uint32_t, uint32_t>> Order;
  std::map<uint64_t, std::deque<std::pair<uint32_t, uint32_t>>> Buckets;

  auto makeReady = [&](uint32_t T) {
    State[T] = ThreadState::Ready;
    ++Seq[T];
    Order.emplace_back(T, Seq[T]);
    Buckets[bucketKey(Ctxs[T])].emplace_back(T, Seq[T]);
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    makeReady(T);

  uint32_t Alive = NumThreads;
  uint32_t AtBarrier = 0;
  std::vector<ThreadContext *> WarpPtrs(Config.MaxWarpSize);

  while (Alive > 0) {
    if (Order.empty()) {
      if (AtBarrier == Alive && AtBarrier > 0) {
        // All live threads arrived: release the barrier (paper §4.1).
        for (uint32_t T = 0; T < NumThreads; ++T)
          if (State[T] == ThreadState::Barrier)
            makeReady(T);
        R.Counters.EMCycles += Machine.EMBarrierRelease * AtBarrier;
        AtBarrier = 0;
        continue;
      }
      R.Error = formatString(
          "barrier deadlock in kernel '%s': %u of %u live threads waiting",
          KernelName.c_str(), AtBarrier, Alive);
      return false;
    }

    auto [Pick, PickSeq] = Order.front();
    Order.pop_front();
    if (State[Pick] != ThreadState::Ready || Seq[Pick] != PickSeq)
      continue; // stale entry

    // Gather the largest same-entry warp (paper §5.2): round-robin pick,
    // then sweep the bucket.
    auto &Bucket = Buckets[bucketKey(Ctxs[Pick])];
    uint32_t Valid = 0;
    for (size_t Idx = 0; Idx < Bucket.size() && Valid < Config.MaxWarpSize;) {
      auto [T, TSeq] = Bucket[Idx];
      if (State[T] != ThreadState::Ready || Seq[T] != TSeq) {
        Bucket.erase(Bucket.begin() + static_cast<ptrdiff_t>(Idx));
        continue;
      }
      WarpPtrs[Valid++] = &Ctxs[T];
      ++Idx;
    }
    assert(Valid > 0 && "picked thread must be in its bucket");
    uint32_t Width = std::min(floorPow2(Valid), Config.MaxWarpSize);
    // Consume the first Width valid entries.
    uint32_t Taken = 0;
    while (Taken < Width) {
      auto [T, TSeq] = Bucket.front();
      Bucket.pop_front();
      if (State[T] != ThreadState::Ready || Seq[T] != TSeq)
        continue;
      State[T] = ThreadState::Running;
      ++Taken;
    }

    // Warp formation scans the same-entry pool up to a bounded window
    // (paper 5.2: "inserting thread contexts into warps" is a major EM
    // cost; large ready pools make formation expensive). The width-1
    // baseline scheduler is a plain round-robin pick and does not gather.
    uint32_t Scanned =
        Config.MaxWarpSize == 1
            ? 1
            : static_cast<uint32_t>(std::min<size_t>(
                  Bucket.size() + Width, Machine.EMScanWindow));
    R.Counters.EMCycles +=
        Machine.EMWarpFormBase + Machine.EMPerThreadScan * Scanned;

    // Query the translation cache for this width's binary (paper §5.1).
    TranslationCache::Key Key{KernelName, Width,
                              Config.ThreadInvariantElim,
                              Config.UniformBranchOpt,
                              Config.UniformLoadOpt};
    auto ExecOrErr = TC.get(Key);
    if (!ExecOrErr) {
      R.Error = ExecOrErr.status().message();
      return false;
    }

    Warp W;
    W.Threads = WarpPtrs.data();
    W.Size = Width;
    Interpreter::Result Run = Interp.run(**ExecOrErr, W, Mem, R.Counters);
    if (Run.Trap) {
      R.Error = formatString("kernel '%s' trapped: %s", KernelName.c_str(),
                             Run.Trap->c_str());
      return false;
    }

    ++R.WarpEntries;
    R.ThreadEntries += Width;
    ++R.EntriesByWidth[Width];
    R.Counters.EMCycles += Machine.EMYieldUpdatePerThread * Width;

    switch (Run.Status) {
    case ResumeStatus::Branch:
      ++R.BranchYields;
      for (uint32_t L = 0; L < Width; ++L)
        makeReady(static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data()));
      break;
    case ResumeStatus::Barrier:
      ++R.BarrierYields;
      for (uint32_t L = 0; L < Width; ++L)
        State[static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data())] =
            ThreadState::Barrier;
      AtBarrier += Width;
      break;
    case ResumeStatus::Exit:
      ++R.ExitYields;
      for (uint32_t L = 0; L < Width; ++L)
        State[static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data())] =
            ThreadState::Exited;
      Alive -= Width;
      break;
    }
  }
  return true;
}

WorkerResult ExecutionManager::run(uint64_t FirstCta, uint64_t Stride) {
  WorkerResult R;
  uint64_t NumCtas = Grid.count();
  for (uint64_t Cta = FirstCta; Cta < NumCtas; Cta += Stride)
    if (!runCta(Cta, R))
      break;
  return R;
}

} // namespace

Expected<LaunchStats>
simtvec::launchKernel(TranslationCache &TC, const std::string &KernelName,
                      Dim3 Grid, Dim3 Block,
                      const std::vector<std::byte> &ParamBuf,
                      std::byte *Global, size_t GlobalSize,
                      std::mutex &AtomicMutex, const LaunchConfig &Config) {
  if (Grid.count() == 0 || Block.count() == 0)
    return Status::error("empty launch geometry");
  if (Config.MaxWarpSize == 0 ||
      (Config.MaxWarpSize & (Config.MaxWarpSize - 1)) != 0)
    return Status::error("MaxWarpSize must be a power of two");
  if (Config.ThreadInvariantElim &&
      Config.Formation != WarpFormation::Static)
    return Status::error(
        "thread-invariant elimination requires static warp formation");
  if (Config.ThreadInvariantElim && Block.Y * Block.Z > 1 &&
      Block.X % Config.MaxWarpSize != 0)
    return Status::error("thread-invariant elimination requires the CTA "
                         "x-extent to be a multiple of the warp size");
  if (Block.count() > (1u << 20))
    return Status::error("CTA too large");

  auto LayoutOrErr = TC.layoutFor(KernelName);
  if (!LayoutOrErr)
    return LayoutOrErr.status();
  if (LayoutOrErr->ParamBytes > ParamBuf.size())
    return Status::error(formatString(
        "kernel '%s' expects %u parameter bytes, launch provided %zu",
        KernelName.c_str(), LayoutOrErr->ParamBytes, ParamBuf.size()));

  unsigned Workers = Config.Workers ? Config.Workers : Config.Machine.Cores;
  Workers = static_cast<unsigned>(
      std::min<uint64_t>(Workers, Grid.count()));

  // Kernel launches spawn a set of worker threads, each running a dynamic
  // execution manager over its statically assigned CTAs (paper §3).
  std::vector<WorkerResult> Results(Workers);
  auto Body = [&](unsigned WorkerId) {
    ExecutionManager EM(TC, KernelName, Config, *LayoutOrErr, Grid, Block,
                        ParamBuf, Global, GlobalSize, AtomicMutex);
    Results[WorkerId] = EM.run(WorkerId, Workers);
  };
  if (Config.UseOsThreads && Workers > 1) {
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (unsigned WId = 0; WId < Workers; ++WId)
      Threads.emplace_back(Body, WId);
    for (std::thread &T : Threads)
      T.join();
  } else {
    for (unsigned WId = 0; WId < Workers; ++WId)
      Body(WId);
  }

  LaunchStats Stats;
  for (const WorkerResult &R : Results) {
    if (R.Error)
      return Status::error(*R.Error);
    Stats.Counters += R.Counters;
    Stats.MaxWorkerCycles =
        std::max(Stats.MaxWorkerCycles, R.Counters.totalCycles());
    for (const auto &[Width, Count] : R.EntriesByWidth)
      Stats.EntriesByWidth[Width] += Count;
    Stats.WarpEntries += R.WarpEntries;
    Stats.ThreadEntries += R.ThreadEntries;
    Stats.BranchYields += R.BranchYields;
    Stats.BarrierYields += R.BarrierYields;
    Stats.ExitYields += R.ExitYields;
  }
  Stats.ModeledSeconds =
      Stats.MaxWorkerCycles / (Config.Machine.ClockGHz * 1e9);
  return Stats;
}
