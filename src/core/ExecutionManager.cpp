//===- core/ExecutionManager.cpp - Dynamic execution manager --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/ExecutionManager.h"

#include "simtvec/core/SpecializationService.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"
#include "simtvec/vm/Interpreter.h"

#include <array>
#include <bit>
#include <optional>
#include <thread>

using namespace simtvec;

namespace {

/// Registry counter for warps formed at width 2^Log2, created lazily and
/// cached so the per-launch metrics flush performs no map lookup in the
/// steady state.
MetricsRegistry::Counter &warpWidthCounter(unsigned Log2) {
  static std::array<std::atomic<MetricsRegistry::Counter *>, 32> Cache{};
  MetricsRegistry::Counter *C = Cache[Log2].load(std::memory_order_acquire);
  if (!C) {
    C = &MetricsRegistry::global().counter(
        formatString("em.warps.w%u", 1u << Log2));
    Cache[Log2].store(C, std::memory_order_release);
  }
  return *C;
}

/// Registry counter for divergence yields attributed to branch site
/// \p Site, created lazily and cached (site counts are tiny).
MetricsRegistry::Counter &siteYieldCounter(uint32_t Site) {
  static std::mutex Lock;
  static std::map<uint32_t, MetricsRegistry::Counter *> Cache;
  std::lock_guard<std::mutex> Guard(Lock);
  auto [It, Inserted] = Cache.emplace(Site, nullptr);
  if (Inserted)
    It->second = &MetricsRegistry::global().counter(
        formatString("em.branch_yields.s%u", Site));
  return *It->second;
}

/// Flushes one launch's aggregated stats into the metrics registry (once
/// per launch — off every hot path).
void flushLaunchMetrics(const LaunchStats &Stats) {
  struct Counters {
    MetricsRegistry::Counter &Launches, &WarpEntries, &ThreadEntries,
        &BranchYields, &BarrierWaits, &ExitYields;
  };
  static Counters C{MetricsRegistry::global().counter("launch.count"),
                    MetricsRegistry::global().counter("em.warp_entries"),
                    MetricsRegistry::global().counter("em.thread_entries"),
                    MetricsRegistry::global().counter("em.branch_yields"),
                    MetricsRegistry::global().counter("em.barrier_waits"),
                    MetricsRegistry::global().counter("em.exit_yields")};
  C.Launches.fetch_add(1, std::memory_order_relaxed);
  C.WarpEntries.fetch_add(Stats.WarpEntries, std::memory_order_relaxed);
  C.ThreadEntries.fetch_add(Stats.ThreadEntries, std::memory_order_relaxed);
  C.BranchYields.fetch_add(Stats.BranchYields, std::memory_order_relaxed);
  C.BarrierWaits.fetch_add(Stats.BarrierYields, std::memory_order_relaxed);
  C.ExitYields.fetch_add(Stats.ExitYields, std::memory_order_relaxed);
  for (const auto &[Width, N] : Stats.EntriesByWidth)
    warpWidthCounter(static_cast<unsigned>(std::countr_zero(Width)))
        .fetch_add(N, std::memory_order_relaxed);
  for (uint32_t S = 0; S < Stats.SiteBranchYields.size(); ++S)
    if (uint64_t N = Stats.SiteBranchYields[S])
      siteYieldCounter(S).fetch_add(N, std::memory_order_relaxed);
}

/// Largest power of two <= N (N >= 1).
uint32_t floorPow2(uint32_t N) { return std::bit_floor(N); }

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Per-worker accumulation. Warp widths are powers of two, so the per-width
/// entry histogram is a flat array indexed by log2(width) — the per-entry
/// increment stays off the std::map (it is folded into the LaunchStats map
/// once per worker).
struct WorkerResult {
  CycleCounters Counters;
  uint64_t EntriesByWidthLog2[32] = {};
  uint64_t WarpEntries = 0;
  uint64_t ThreadEntries = 0;
  uint64_t BranchYields = 0;
  uint64_t BarrierYields = 0;
  uint64_t ExitYields = 0;
  /// Divergence yields by pre-meld branch site (index = site id).
  std::vector<uint64_t> SiteYields;
  std::optional<std::string> Error;
};

constexpr uint32_t InvalidThread = ~0u;

enum class ThreadState : uint8_t { Ready, Running, Barrier, Exited };

/// One same-entry ready bucket: an intrusive singly-linked list through
/// NextIdx, in insertion order. Every linked thread is Ready (threads only
/// leave a bucket by being consumed into a warp), so membership is exact
/// and Len is the bucket's true size.
struct BucketRec {
  uint64_t Key = 0;
  uint64_t Epoch = 0; ///< a record is empty unless Epoch == current
  uint32_t Head = InvalidThread;
  uint32_t Tail = InvalidThread;
  uint32_t Len = 0;
};

/// Worker-lifetime buffers an execution manager works in. One arena lives
/// per host thread (`thread_local` in launchKernel's worker body): with a
/// persistent worker pool the arena survives across launches, so the
/// steady-state launch allocates nothing for contexts, ready-pool state, or
/// the local/shared arenas — they are reinitialized in place. The geometry
/// fingerprint (LastGrid/LastBlock/LastLocalBytes) detects reuse under a
/// *different* launch shape, forcing the full thread-context reinit; the
/// cheap per-CTA reinit only touches fields that vary per CTA.
struct EMArena {
  std::vector<std::byte> Shared;
  std::vector<std::byte> LocalArena;
  std::byte *LocalBase = nullptr; ///< arena base the Ctx slices point into
  std::vector<ThreadContext> Ctxs;
  std::vector<ThreadState> State;
  std::vector<uint32_t> Seq;
  std::vector<uint32_t> NextIdx; ///< intrusive bucket links
  std::vector<std::pair<uint32_t, uint32_t>> Order; ///< (thread, seq)
  size_t OrderHead = 0;
  std::vector<BucketRec> Table;
  uint64_t Epoch = 0;
  size_t TableUsed = 0;
  std::vector<ThreadContext *> WarpPtrs;

  /// Geometry the Ctxs were last initialized for.
  Dim3 LastGrid{0, 0, 0};
  Dim3 LastBlock{0, 0, 0};
  uint32_t LastLocalBytes = ~0u;
};

/// One worker thread's execution manager (paper §5.2). Executes its
/// assigned CTAs to completion, one at a time. All per-CTA structures
/// (shared memory, the local-memory arena, thread contexts, the ready pool)
/// live in the caller-provided EMArena and are reinitialized — not
/// reallocated — between CTAs (and between launches, when the arena is a
/// pool thread's), so the steady state performs no heap allocation per CTA.
class ExecutionManager {
public:
  ExecutionManager(TranslationCache &TC, const std::string &KernelName,
                   const LaunchConfig &Config,
                   const TranslationCache::KernelLayout &Layout, Dim3 Grid,
                   Dim3 Block, const std::vector<std::byte> &ParamBuf,
                   std::byte *Global, size_t GlobalSize,
                   AtomicStripes &Atomics, EMArena &Arena,
                   const SpecializationPlan &Plan,
                   const std::vector<std::shared_ptr<const KernelExec>>
                       *Prefill = nullptr)
      : TC(TC), KernelName(KernelName), Config(Config), Layout(Layout),
        Plan(Plan),
        Grid(Grid), Block(Block), ParamBuf(ParamBuf), Global(Global),
        GlobalSize(GlobalSize), Atomics(Atomics), Interp(Config.Machine),
        A(Arena), Shared(Arena.Shared), LocalArena(Arena.LocalArena),
        LocalBase(Arena.LocalBase), Ctxs(Arena.Ctxs), State(Arena.State),
        Seq(Arena.Seq), NextIdx(Arena.NextIdx), Order(Arena.Order),
        OrderHead(Arena.OrderHead), Table(Arena.Table), Epoch(Arena.Epoch),
        TableUsed(Arena.TableUsed), WarpPtrs(Arena.WarpPtrs) {
    ExecMemo.resize(
        static_cast<size_t>(std::countr_zero(Config.MaxWarpSize)) + 1);
    // A prepared launch seeds the memo, so every warp entry — including the
    // first per width — is a memo hit and replay touches no cache lock.
    if (Prefill)
      for (size_t I = 0; I < ExecMemo.size() && I < Prefill->size(); ++I)
        ExecMemo[I] = (*Prefill)[I];
    if (Table.empty())
      Table.resize(64);
  }

  /// Runs CTAs [first, first+stride, ...) to completion.
  WorkerResult run(uint64_t FirstCta, uint64_t Stride);

private:
  bool runCta(uint64_t LinearCta, WorkerResult &R);

  uint64_t bucketKey(const ThreadContext &Ctx) const {
    uint64_t Key = Ctx.ResumePoint;
    if (Config.Formation == WarpFormation::Static)
      Key = (Key << 32) | (Ctx.LinearTid / Config.MaxWarpSize);
    return Key;
  }

  /// Finds or inserts the bucket for \p Key in the open-addressed table.
  /// Records from earlier CTAs (stale Epoch) count as empty, so the table
  /// is reset by bumping Epoch instead of clearing.
  BucketRec &bucketFor(uint64_t Key) {
    if ((TableUsed + 1) * 2 > Table.size())
      growTable();
    size_t Mask = Table.size() - 1;
    size_t I = splitmix64(Key) & Mask;
    for (;;) {
      BucketRec &R = Table[I];
      if (R.Epoch != Epoch) {
        R = BucketRec{Key, Epoch, InvalidThread, InvalidThread, 0};
        ++TableUsed;
        return R;
      }
      if (R.Key == Key)
        return R;
      I = (I + 1) & Mask;
    }
  }

  void growTable() {
    std::vector<BucketRec> Old(Table.size() * 2);
    Old.swap(Table);
    size_t Mask = Table.size() - 1;
    for (const BucketRec &R : Old) {
      if (R.Epoch != Epoch)
        continue;
      size_t I = splitmix64(R.Key) & Mask;
      while (Table[I].Epoch == Epoch)
        I = (I + 1) & Mask;
      Table[I] = R;
    }
  }

  TranslationCache &TC;
  const std::string &KernelName;
  const LaunchConfig &Config;
  TranslationCache::KernelLayout Layout;
  /// The kernel's specialization plan, used to attribute divergence yields
  /// to their pre-meld branch sites (divergence-PGO profile input).
  const SpecializationPlan &Plan;
  Dim3 Grid, Block;
  const std::vector<std::byte> &ParamBuf;
  std::byte *Global;
  size_t GlobalSize;
  AtomicStripes &Atomics;
  Interpreter Interp;

  // Worker-lifetime buffers reused across CTAs (and launches); owned by the
  // host thread's EMArena, bound here by reference.
  EMArena &A;
  std::vector<std::byte> &Shared;
  std::vector<std::byte> &LocalArena;
  std::byte *&LocalBase;
  std::vector<ThreadContext> &Ctxs;
  std::vector<ThreadState> &State;
  std::vector<uint32_t> &Seq;
  std::vector<uint32_t> &NextIdx;
  std::vector<std::pair<uint32_t, uint32_t>> &Order;
  size_t &OrderHead;
  std::vector<BucketRec> &Table;
  uint64_t &Epoch;
  size_t &TableUsed;
  std::vector<ThreadContext *> &WarpPtrs;

  /// This worker's memo of the translation cache's answer per width
  /// (indexed by log2(width)). Kernel name and options are fixed for the
  /// launch, so a steady-state warp entry touches no cache lock at all.
  /// Memo hits are reported back to the cache via noteWarmHits.
  std::vector<std::shared_ptr<const KernelExec>> ExecMemo;
  uint64_t MemoHits = 0;
};

bool ExecutionManager::runCta(uint64_t LinearCta, WorkerResult &R) {
  const uint32_t NumThreads = static_cast<uint32_t>(Block.count());
  const MachineModel &Machine = Config.Machine;
  // Native-tier resolution for this CTA: Interp pins the interpreter, the
  // reference engine never mixes with the native tier (it is the oracle).
  const JitMode JitTier =
      Config.UseReferenceInterp ? JitMode::Interp : resolveJitMode(Config.Jit);

  // Per-CTA observability: one span per CTA plus, at CTA end, the warp
  // formation summary and the entry-point histogram delta this CTA
  // contributed (paper Fig. 7, but time-resolved). All of it is behind the
  // one-load enabled() check and none of it touches modeled counters.
  trace::Span CtaSpan("cta", "em");
  CtaSpan.arg("cta", LinearCta);
  const bool Tracing = trace::enabled();
  uint64_t WarpsBefore = R.WarpEntries;
  uint64_t HistBefore[32];
  if (Tracing)
    std::copy(std::begin(R.EntriesByWidthLog2),
              std::end(R.EntriesByWidthLog2), std::begin(HistBefore));

  // Per-CTA memory structures (paper §5.2): shared memory and a contiguous
  // block partitioned into per-thread local memories. assign() zeroes the
  // contents (matching freshly allocated arenas) while keeping capacity.
  Shared.assign(Layout.SharedBytes, std::byte{0});
  LocalArena.assign(static_cast<size_t>(NumThreads) * Layout.LocalBytes,
                    std::byte{0});

  Dim3 CtaId;
  CtaId.X = static_cast<uint32_t>(LinearCta % Grid.X);
  CtaId.Y = static_cast<uint32_t>((LinearCta / Grid.X) % Grid.Y);
  CtaId.Z = static_cast<uint32_t>(LinearCta / (static_cast<uint64_t>(Grid.X) *
                                               Grid.Y));
  // Thread ids, dimensions, and local-memory slices are identical for every
  // CTA of the launch; they are computed once and only refreshed if the
  // arena moved or was last used under a different launch geometry (the
  // arena outlives the launch on pool threads). Per-CTA reinit touches just
  // the varying fields.
  if (Ctxs.size() != NumThreads || LocalBase != LocalArena.data() ||
      A.LastGrid != Grid || A.LastBlock != Block ||
      A.LastLocalBytes != Layout.LocalBytes) {
    Ctxs.resize(NumThreads);
    LocalBase = LocalArena.data();
    for (uint32_t T = 0; T < NumThreads; ++T) {
      ThreadContext &Ctx = Ctxs[T];
      Ctx.TidX = T % Block.X;
      Ctx.TidY = (T / Block.X) % Block.Y;
      Ctx.TidZ = T / (Block.X * Block.Y);
      Ctx.LinearTid = T;
      Ctx.GridDim = Grid;
      Ctx.BlockDim = Block;
      Ctx.LocalMem = LocalBase + static_cast<size_t>(T) * Layout.LocalBytes;
    }
    A.LastGrid = Grid;
    A.LastBlock = Block;
    A.LastLocalBytes = Layout.LocalBytes;
  }
  for (uint32_t T = 0; T < NumThreads; ++T) {
    ThreadContext &Ctx = Ctxs[T];
    Ctx.CtaId = CtaId;
    Ctx.ResumePoint = 0;
    Ctx.Status = ResumeStatus::Branch;
  }

  ExecMemory Mem;
  Mem.Global = Global;
  Mem.GlobalSize = GlobalSize;
  Mem.Shared = Shared.data();
  Mem.SharedSize = Shared.size();
  Mem.ParamBuf = ParamBuf.data();
  Mem.ParamSize = ParamBuf.size();
  Mem.LocalSize = Layout.LocalBytes;
  Mem.Atomics = &Atomics;

  // Ready pool: a round-robin order queue plus same-entry buckets.
  // Sequence numbers invalidate stale queue entries of threads that were
  // swept into another thread's warp; bucket membership is exact (intrusive
  // lists, threads leave only by consumption), so buckets need no
  // invalidation.
  State.assign(NumThreads, ThreadState::Ready);
  Seq.assign(NumThreads, 0);
  NextIdx.assign(NumThreads, InvalidThread);
  Order.clear();
  OrderHead = 0;
  ++Epoch;
  TableUsed = 0;

  auto makeReady = [&](uint32_t T) {
    State[T] = ThreadState::Ready;
    ++Seq[T];
    Order.emplace_back(T, Seq[T]);
    BucketRec &B = bucketFor(bucketKey(Ctxs[T]));
    NextIdx[T] = InvalidThread;
    if (B.Len == 0)
      B.Head = T;
    else
      NextIdx[B.Tail] = T;
    B.Tail = T;
    ++B.Len;
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    makeReady(T);

  uint32_t Alive = NumThreads;
  uint32_t AtBarrier = 0;
  WarpPtrs.resize(Config.MaxWarpSize);

  while (Alive > 0) {
    if (OrderHead == Order.size()) {
      if (AtBarrier == Alive && AtBarrier > 0) {
        // All live threads arrived: release the barrier (paper §4.1).
        for (uint32_t T = 0; T < NumThreads; ++T)
          if (State[T] == ThreadState::Barrier)
            makeReady(T);
        R.Counters.EMCycles += Machine.EMBarrierRelease * AtBarrier;
        AtBarrier = 0;
        continue;
      }
      R.Error = formatString(
          "barrier deadlock in kernel '%s': %u of %u live threads waiting",
          KernelName.c_str(), AtBarrier, Alive);
      return false;
    }

    auto [Pick, PickSeq] = Order[OrderHead++];
    if (State[Pick] != ThreadState::Ready || Seq[Pick] != PickSeq)
      continue; // stale entry

    // Gather the largest same-entry warp (paper §5.2): round-robin pick,
    // then sweep the bucket in insertion order.
    BucketRec &Bucket = bucketFor(bucketKey(Ctxs[Pick]));
    assert(Bucket.Len > 0 && "picked thread must be in its bucket");
    uint32_t Valid = std::min(Bucket.Len, Config.MaxWarpSize);
    {
      uint32_t T = Bucket.Head;
      for (uint32_t Idx = 0; Idx < Valid; ++Idx) {
        WarpPtrs[Idx] = &Ctxs[T];
        T = NextIdx[T];
      }
    }
    uint32_t Width = std::min(floorPow2(Valid), Config.MaxWarpSize);
    // Consume the first Width entries (== WarpPtrs[0..Width)).
    {
      uint32_t T = Bucket.Head;
      for (uint32_t Idx = 0; Idx < Width; ++Idx) {
        State[T] = ThreadState::Running;
        T = NextIdx[T];
      }
      Bucket.Head = T;
      Bucket.Len -= Width;
      if (Bucket.Len == 0)
        Bucket.Tail = InvalidThread;
    }

    // Warp formation scans the same-entry pool up to a bounded window
    // (paper 5.2: "inserting thread contexts into warps" is a major EM
    // cost; large ready pools make formation expensive). The width-1
    // baseline scheduler is a plain round-robin pick and does not gather.
    uint32_t Scanned =
        Config.MaxWarpSize == 1
            ? 1
            : static_cast<uint32_t>(std::min<size_t>(
                  static_cast<size_t>(Bucket.Len) + Width,
                  Machine.EMScanWindow));
    R.Counters.EMCycles +=
        Machine.EMWarpFormBase + Machine.EMPerThreadScan * Scanned;

    // This width's binary: the worker's memo answers steady-state entries
    // without touching the translation cache (paper §5.1 notes managers
    // "block while contending for a lock on the dynamic translation
    // cache"; the memo removes even the lock-free lookup).
    const size_t WIdx = static_cast<size_t>(std::countr_zero(Width));
    std::shared_ptr<const KernelExec> &Exec = ExecMemo[WIdx];
    if (!Exec) {
      TranslationCache::Key Key{KernelName, Width,
                                Config.ThreadInvariantElim,
                                Config.UniformBranchOpt,
                                Config.UniformLoadOpt,
                                Config.Superinstructions,
                                resolveSimdPath(Config.Simd),
                                Config.BranchPlan};
      auto ExecOrErr = TC.get(Key);
      if (!ExecOrErr) {
        R.Error = ExecOrErr.status().message();
        return false;
      }
      Exec = *ExecOrErr;
      // Forced native compiles synchronously at the memo miss so even the
      // first warp entry runs native. The tiered (Auto) trigger lives in
      // launchKernel instead: it fires on the second launch of a
      // specialization, keeping the first launch free of any compile
      // contention (the executable's single claimJit() slot makes
      // duplicate requests free either way).
      if (JitTier == JitMode::Native)
        if (SpecializationService *Svc = TC.specializationService())
          Svc->requestNative(Key, Exec, /*Sync=*/true);
    } else {
      ++MemoHits;
    }

    Warp W;
    W.Threads = WarpPtrs.data();
    W.Size = Width;
    Interpreter::Result Run;
    if (Config.UseReferenceInterp)
      Run = Interp.runReference(*Exec, W, Mem, R.Counters);
    else if (SimtvecNativeEntryFn Fn = JitTier != JitMode::Interp
                                           ? Exec->nativeEntry()
                                           : nullptr)
      Run = Interp.runNative(Fn, *Exec, W, Mem, R.Counters);
    else
      Run = Interp.run(*Exec, W, Mem, R.Counters);
    if (Run.Trap) {
      R.Error = formatString("kernel '%s' trapped: %s", KernelName.c_str(),
                             Run.Trap->c_str());
      return false;
    }

    ++R.WarpEntries;
    R.ThreadEntries += Width;
    ++R.EntriesByWidthLog2[std::countr_zero(Width)];
    R.Counters.EMCycles += Machine.EMYieldUpdatePerThread * Width;

    switch (Run.Status) {
    case ResumeStatus::Branch: {
      ++R.BranchYields;
      // Attribute the yield to the divergence site whose branch created the
      // entry point lane 0 resumes at (entry 0 / barrier continuations map
      // to no site — e.g. the synthetic first entry of every thread).
      uint32_t E = WarpPtrs[0]->ResumePoint;
      if (E < Plan.SiteOfEntry.size()) {
        uint32_t Site = Plan.SiteOfEntry[E];
        if (Site != ~0u) {
          if (R.SiteYields.size() < Plan.NumSites)
            R.SiteYields.resize(Plan.NumSites, 0);
          ++R.SiteYields[Site];
        }
      }
      for (uint32_t L = 0; L < Width; ++L)
        makeReady(static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data()));
      break;
    }
    case ResumeStatus::Barrier:
      ++R.BarrierYields;
      for (uint32_t L = 0; L < Width; ++L)
        State[static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data())] =
            ThreadState::Barrier;
      AtBarrier += Width;
      break;
    case ResumeStatus::Exit:
      ++R.ExitYields;
      for (uint32_t L = 0; L < Width; ++L)
        State[static_cast<uint32_t>(WarpPtrs[L] - Ctxs.data())] =
            ThreadState::Exited;
      Alive -= Width;
      break;
    }
  }
  if (Tracing) {
    trace::instant("warp_formation", "em", R.WarpEntries - WarpsBefore,
                   "warps", NumThreads, "threads");
    for (unsigned I = 0; I < 32; ++I)
      if (uint64_t D = R.EntriesByWidthLog2[I] - HistBefore[I])
        trace::instant("entries_by_width", "em", 1u << I, "width", D,
                       "entries");
  }
  return true;
}

WorkerResult ExecutionManager::run(uint64_t FirstCta, uint64_t Stride) {
  WorkerResult R;
  uint64_t NumCtas = Grid.count();
  for (uint64_t Cta = FirstCta; Cta < NumCtas; Cta += Stride)
    if (!runCta(Cta, R))
      break;
  if (MemoHits) {
    TC.noteWarmHits(MemoHits);
    MemoHits = 0;
  }
  return R;
}

/// Dispatches per-worker execution managers over the CTA partition and
/// aggregates their results — the half of a launch shared verbatim between
/// eager `launchKernel` and prepared-graph replay, so LaunchStats and em.*
/// metrics are bit-identical across the two entry points by construction.
Expected<LaunchStats> runLaunchWorkers(
    TranslationCache &TC, const std::string &KernelName,
    const LaunchConfig &Config, const TranslationCache::KernelLayout &Layout,
    Dim3 Grid, Dim3 Block, const std::vector<std::byte> &ParamBuf,
    std::byte *Global, size_t GlobalSize, AtomicStripes &Atomics,
    unsigned Workers,
    const std::vector<std::shared_ptr<const KernelExec>> *Prefill) {
  // Each worker runs a dynamic execution manager over its statically
  // assigned CTAs (paper §3). The worker bodies are dispatched through the
  // installed ParallelFor hook (the runtime's persistent worker pool) when
  // present; otherwise per-launch OS threads are spawned as in the paper,
  // or the workers run sequentially in the caller. The per-thread EMArena
  // persists across launches on pool threads, so steady-state launches
  // reuse every worker buffer instead of reallocating.
  trace::Span LaunchSpan("launch", "em");
  if (trace::enabled()) {
    LaunchSpan.strArg("kernel", trace::intern(KernelName));
    LaunchSpan.arg("ctas", Grid.count());
    LaunchSpan.arg("workers", Workers);
  }

  // The plan pointer stays valid for the cache's lifetime; workers use it
  // to attribute divergence yields to their pre-meld branch sites.
  auto PlanOrErr = TC.planFor(KernelName, Config.BranchPlan);
  if (!PlanOrErr)
    return PlanOrErr.status();
  const SpecializationPlan &Plan = **PlanOrErr;

  std::vector<WorkerResult> Results(Workers);
  auto Body = [&](unsigned WorkerId) {
    trace::Span WorkerSpan("worker", "em");
    WorkerSpan.arg("worker", WorkerId);
    static thread_local EMArena Arena;
    ExecutionManager EM(TC, KernelName, Config, Layout, Grid, Block,
                        ParamBuf, Global, GlobalSize, Atomics, Arena, Plan,
                        Prefill);
    Results[WorkerId] = EM.run(WorkerId, Workers);
    if (trace::enabled()) {
      // Per-worker CycleCounters snapshot: the interpreter-accumulated
      // modeled buckets, exported as counter tracks so a timeline shows
      // where this worker's modeled time went (paper Fig. 9, per launch).
      const CycleCounters &C = Results[WorkerId].Counters;
      trace::counter("cycles.subkernel", "counters",
                     static_cast<uint64_t>(C.SubkernelCycles));
      trace::counter("cycles.yield", "counters",
                     static_cast<uint64_t>(C.YieldCycles));
      trace::counter("cycles.em", "counters",
                     static_cast<uint64_t>(C.EMCycles));
      trace::counter("insts", "counters", C.InstsExecuted);
    }
  };
  if (Config.ParallelFor && Workers > 1) {
    Config.ParallelFor(Workers, Body);
  } else if (Config.UseOsThreads && Workers > 1) {
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (unsigned WId = 0; WId < Workers; ++WId)
      Threads.emplace_back(Body, WId);
    for (std::thread &T : Threads)
      T.join();
  } else {
    for (unsigned WId = 0; WId < Workers; ++WId)
      Body(WId);
  }

  LaunchStats Stats;
  for (const WorkerResult &R : Results) {
    if (R.Error)
      return Status::error(*R.Error);
    Stats.Counters += R.Counters;
    Stats.MaxWorkerCycles =
        std::max(Stats.MaxWorkerCycles, R.Counters.totalCycles());
    for (unsigned I = 0; I < 32; ++I)
      if (R.EntriesByWidthLog2[I])
        Stats.EntriesByWidth[1u << I] += R.EntriesByWidthLog2[I];
    Stats.WarpEntries += R.WarpEntries;
    Stats.ThreadEntries += R.ThreadEntries;
    Stats.BranchYields += R.BranchYields;
    Stats.BarrierYields += R.BarrierYields;
    Stats.ExitYields += R.ExitYields;
    if (!R.SiteYields.empty()) {
      if (Stats.SiteBranchYields.size() < R.SiteYields.size())
        Stats.SiteBranchYields.resize(R.SiteYields.size(), 0);
      for (size_t S = 0; S < R.SiteYields.size(); ++S)
        Stats.SiteBranchYields[S] += R.SiteYields[S];
    }
  }
  Stats.ModeledSeconds =
      Stats.MaxWorkerCycles / (Config.Machine.ClockGHz * 1e9);
  flushLaunchMetrics(Stats);
  return Stats;
}

} // namespace

Status simtvec::validateLaunchGeometry(const LaunchConfig &Config, Dim3 Grid,
                                       Dim3 Block) {
  if (Grid.count() == 0 || Block.count() == 0)
    return Status::error("empty launch geometry");
  if (Config.MaxWarpSize < 1 || Config.MaxWarpSize > 8 ||
      (Config.MaxWarpSize & (Config.MaxWarpSize - 1)) != 0)
    return Status::error(formatString(
        "MaxWarpSize must be a power of two in {1,2,4,8}, got %u",
        Config.MaxWarpSize));
  if (Config.ThreadInvariantElim &&
      Config.Formation != WarpFormation::Static)
    return Status::error(
        "thread-invariant elimination requires static warp formation");
  if (Config.ThreadInvariantElim && Block.Y * Block.Z > 1 &&
      Block.X % Config.MaxWarpSize != 0)
    return Status::error("thread-invariant elimination requires the CTA "
                         "x-extent to be a multiple of the warp size");
  if (Block.count() > (1u << 20))
    return Status::error("CTA too large");
  return Status::success();
}

Expected<LaunchStats>
simtvec::launchKernel(TranslationCache &TC, const std::string &KernelName,
                      Dim3 Grid, Dim3 Block,
                      const std::vector<std::byte> &ParamBuf,
                      std::byte *Global, size_t GlobalSize,
                      AtomicStripes &Atomics, const LaunchConfig &Config) {
  if (Status E = validateLaunchGeometry(Config, Grid, Block); E.isError())
    return E;

  auto LayoutOrErr = TC.layoutFor(KernelName, Config.BranchPlan);
  if (!LayoutOrErr)
    return LayoutOrErr.status();
  if (LayoutOrErr->ParamBytes > ParamBuf.size())
    return Status::error(formatString(
        "kernel '%s' expects %u parameter bytes, launch provided %zu",
        KernelName.c_str(), LayoutOrErr->ParamBytes, ParamBuf.size()));

  unsigned Workers = Config.Workers ? Config.Workers : Config.Machine.Cores;
  Workers = static_cast<unsigned>(
      std::min<uint64_t>(Workers, Grid.count()));

  // Tiered-native hotness trigger: in Auto mode the background compile is
  // requested only for specializations the cache already holds — i.e. on
  // the second launch, never the first. A cold launch therefore pays no
  // compile contention at all (on narrow hosts even a niced background
  // compiler visibly steals cycles from the launch that triggered it),
  // and a one-shot kernel never compiles. Forced Native instead compiles
  // synchronously at the worker memo miss above.
  if (!Config.UseReferenceInterp &&
      resolveJitMode(Config.Jit) == JitMode::Auto)
    if (SpecializationService *Svc = TC.specializationService())
      for (uint32_t W = 1; W <= Config.MaxWarpSize; W *= 2) {
        TranslationCache::Key Key{KernelName, W,
                                  Config.ThreadInvariantElim,
                                  Config.UniformBranchOpt,
                                  Config.UniformLoadOpt,
                                  Config.Superinstructions,
                                  resolveSimdPath(Config.Simd),
                                  Config.BranchPlan};
        if (std::shared_ptr<const KernelExec> Exec = TC.peek(Key))
          Svc->requestNative(Key, Exec, /*Sync=*/false);
      }

  return runLaunchWorkers(TC, KernelName, Config, *LayoutOrErr, Grid, Block,
                          ParamBuf, Global, GlobalSize, Atomics, Workers,
                          /*Prefill=*/nullptr);
}

Expected<LaunchStats>
simtvec::launchPrepared(TranslationCache &TC, const PreparedLaunch &PL,
                        std::byte *Global, size_t GlobalSize,
                        AtomicStripes &Atomics) {
  return runLaunchWorkers(TC, PL.KernelName, PL.Config, PL.Layout, PL.Grid,
                          PL.Block, PL.ParamBuf, Global, GlobalSize, Atomics,
                          PL.Workers, &PL.Execs);
}
