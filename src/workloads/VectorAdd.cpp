//===- workloads/VectorAdd.cpp - Memory-bound streaming add ---------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The quickstart workload: c[i] = a[i] + b[i]. Two loads and a store per
/// thread dwarf the single add; vectorization cannot speed the replicated
/// memory operations, so this anchors the ~1.0x end of Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %np, %n;
  .reg .u64 %off, %pa, %pb, %pc, %ba, %bb, %bc;
  .reg .f32 %x, %y, %z;
  .reg .pred %p;

entry:
  mov.u32 %i, %tid.x;
  mad.u32 %i, %ntid.x, %ctaid.x, %i;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %ba, [a];
  ld.param.u64 %bb, [b];
  ld.param.u64 %bc, [c];
  add.u64 %pa, %ba, %off;
  add.u64 %pb, %bb, %off;
  add.u64 %pc, %bc, %off;
  ld.global.f32 %x, [%pa];
  ld.global.f32 %y, [%pb];
  add.f32 %z, %x, %y;
  st.global.f32 [%pc], %z;
  bra done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 16384 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 12 + 4096);
  Inst->Block = {128, 1, 1};
  Inst->Grid = {(N + 127) / 128, 1, 1};

  RNG Rng(0x5eed01);
  std::vector<float> A(N), B(N);
  for (uint32_t I = 0; I < N; ++I) {
    A[I] = Rng.nextFloat(-100.0f, 100.0f);
    B[I] = Rng.nextFloat(-100.0f, 100.0f);
  }
  uint64_t DA = Inst->Dev->allocArray<float>(N);
  uint64_t DB = Inst->Dev->allocArray<float>(N);
  uint64_t DC = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DA, A);
  Inst->Dev->upload(DB, B);
  Inst->Params.u64(DA).u64(DB).u64(DC).u32(N);

  Inst->Check = [=, A = std::move(A),
                 B = std::move(B)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N);
    for (uint32_t I = 0; I < N; ++I)
      Ref[I] = A[I] + B[I];
    return checkF32Buffer(Dev, DC, Ref, 0, 0, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getVectorAddWorkload() {
  static const Workload W{"VectorAdd", "vecadd", WorkloadClass::MemoryBound,
                          Source, make};
  return W;
}
