// placeholder
