//===- workloads/Reduction.cpp - Shared-memory tree reduction -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Sum reduction: each thread accumulates a contiguous chunk, then a
/// log2(CTA) shared-memory tree with a barrier per level and a shrinking
/// active front (divergent once the front is narrower than a warp) writes
/// one partial per CTA.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel reduction (.param .u64 in, .param .u64 partials, .param .u32 n)
{
  .shared .b8 sums[512];   // 128 floats
  .reg .u32 %tid0, %gid, %stride, %np, %n, %i, %s;
  .reg .u64 %addr, %bin, %off, %saddr, %saddr2;
  .reg .f32 %x, %acc, %other;
  .reg .pred %p, %pact;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  ld.param.u64 %bin, [in];
  mov.u32 %stride, %ntid.x;
  mul.u32 %stride, %stride, %nctaid.x;
  div.u32 %stride, %n, %stride;
  mul.u32 %i, %gid, %stride;
  add.u32 %n, %i, %stride;
  mov.f32 %acc, 0.0;
  bra loopcheck;

loopcheck:
  setp.lt.u32 %p, %i, %n;
  @%p bra loopbody, reduce;
loopbody:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bin, %off;
  ld.global.f32 %x, [%addr];
  add.f32 %acc, %acc, %x;
  add.u32 %i, %i, 1;
  bra loopcheck;

reduce:
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %acc;
  bar.sync;
  mov.u32 %s, 64;
  bra redloop;

redloop:
  setp.lt.u32 %pact, %tid0, %s;
  @%pact bra redbody, redjoin;
redbody:
  add.u32 %i, %tid0, %s;
  cvt.u64.u32 %saddr2, %i;
  shl.u64 %saddr2, %saddr2, 2;
  ld.shared.f32 %other, [%saddr2];
  ld.shared.f32 %x, [%saddr];
  add.f32 %x, %x, %other;
  st.shared.f32 [%saddr], %x;
  bra redjoin;
redjoin:
  bar.sync;
  shr.u32 %s, %s, 1;
  setp.gt.u32 %p, %s, 0;
  @%p bra redloop, fin;

fin:
  setp.eq.u32 %p, %tid0, 0;
  @!%p bra done, writeout;
writeout:
  ld.shared.f32 %x, [0];
  ld.param.u64 %bin, [partials];
  cvt.u64.u32 %off, %ctaid.x;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bin, %off;
  st.global.f32 [%addr], %x;
  bra done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 32768 * Scale;
  const uint32_t CtaSize = 128, Ctas = 8;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {CtaSize, 1, 1};
  Inst->Grid = {Ctas, 1, 1};

  RNG Rng(0x5eed0b);
  std::vector<float> In(N);
  for (auto &V : In)
    V = Rng.nextFloat(-1.0f, 1.0f);
  uint64_t DIn = Inst->Dev->allocArray<float>(N);
  uint64_t DP = Inst->Dev->allocArray<float>(Ctas);
  Inst->Dev->upload(DIn, In);
  Inst->Params.u64(DIn).u64(DP).u32(N);

  Inst->Check = [=, In = std::move(In)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(Ctas);
    const uint32_t Chunk = N / (CtaSize * Ctas);
    for (uint32_t C = 0; C < Ctas; ++C) {
      std::vector<float> Sums(CtaSize);
      for (uint32_t T = 0; T < CtaSize; ++T) {
        float Acc = 0;
        uint32_t Gid = C * CtaSize + T;
        for (uint32_t I = Gid * Chunk; I < (Gid + 1) * Chunk; ++I)
          Acc += In[I];
        Sums[T] = Acc;
      }
      for (uint32_t S = CtaSize / 2; S > 0; S >>= 1)
        for (uint32_t T = 0; T < S; ++T)
          Sums[T] += Sums[T + S];
      Ref[C] = Sums[0];
    }
    return checkF32Buffer(Dev, DP, Ref, 1e-5f, 1e-6f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getReductionWorkload() {
  static const Workload W{"Reduction", "reduction",
                          WorkloadClass::BarrierHeavy, Source, make};
  return W;
}
