//===- workloads/Scan.cpp - Hillis-Steele inclusive scan ------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Per-CTA inclusive prefix sum: log2(CTA) passes; each pass gates its work
/// on tid >= offset (divergent at the moving boundary) and synchronizes
/// twice (read phase / write phase).
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel scan (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .shared .b8 buf[512];   // 128 floats
  .reg .u32 %tid0, %gid, %offt, %i;
  .reg .u64 %addr, %base, %off, %saddr, %saddr2;
  .reg .f32 %x, %t;
  .reg .pred %p, %pact;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u64 %base, [in];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;
  bar.sync;
  mov.u32 %offt, 1;
  bra pass;

pass:
  setp.ge.u32 %pact, %tid0, %offt;
  @%pact bra readphase, readjoin;
readphase:
  sub.u32 %i, %tid0, %offt;
  cvt.u64.u32 %saddr2, %i;
  shl.u64 %saddr2, %saddr2, 2;
  ld.shared.f32 %t, [%saddr2];
  bra readjoin;
readjoin:
  bar.sync;
  @%pact bra writephase, writejoin;
writephase:
  ld.shared.f32 %x, [%saddr];
  add.f32 %x, %x, %t;
  st.shared.f32 [%saddr], %x;
  bra writejoin;
writejoin:
  bar.sync;
  shl.u32 %offt, %offt, 1;
  setp.lt.u32 %p, %offt, %ntid.x;
  @%p bra pass, fin;

fin:
  ld.shared.f32 %x, [%saddr];
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %x;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t CtaSize = 128;
  const uint32_t Ctas = 16 * Scale;
  const uint32_t N = CtaSize * Ctas;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 8 + 4096);
  Inst->Block = {CtaSize, 1, 1};
  Inst->Grid = {Ctas, 1, 1};

  RNG Rng(0x5eed0c);
  std::vector<float> In(N);
  for (auto &V : In)
    V = Rng.nextFloat(-1.0f, 1.0f);
  uint64_t DIn = Inst->Dev->allocArray<float>(N);
  uint64_t DOut = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DIn, In);
  Inst->Params.u64(DIn).u64(DOut).u32(N);

  Inst->Check = [=, In = std::move(In)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N);
    for (uint32_t C = 0; C < Ctas; ++C) {
      std::vector<float> Buf(In.begin() + C * CtaSize,
                             In.begin() + (C + 1) * CtaSize);
      for (uint32_t Off = 1; Off < CtaSize; Off <<= 1) {
        std::vector<float> T(CtaSize);
        for (uint32_t I = Off; I < CtaSize; ++I)
          T[I] = Buf[I - Off];
        for (uint32_t I = Off; I < CtaSize; ++I)
          Buf[I] += T[I];
      }
      for (uint32_t I = 0; I < CtaSize; ++I)
        Ref[C * CtaSize + I] = Buf[I];
    }
    return checkF32Buffer(Dev, DOut, Ref, 1e-5f, 1e-6f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getScanWorkload() {
  static const Workload W{"Scan", "scan", WorkloadClass::BarrierHeavy,
                          Source, make};
  return W;
}
