//===- workloads/MatrixMul.cpp - Tiled shared-memory matmul ---------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// C = A x B with 16x16 shared-memory tiles and two barriers per k-tile.
/// 2D thread blocks; uniform control flow; shared-load dominated with heavy
/// synchronization — limited speedup with a large execution-manager
/// fraction (paper Fig. 9: "Synchronization-intensive applications such as
/// BinomialOptions and MatrixMul spend more time within the execution
/// manager").
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr uint32_t Tile = 16;

const char *Source = R"(
.kernel matmul (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .shared .b8 tileA[1024];   // 16x16 f32
  .shared .b8 tileB[1024];
  .reg .u32 %tx, %ty, %row, %col, %np, %n, %kt, %ktiles, %k, %idx;
  .reg .u64 %addr, %base, %off, %sa, %sb;
  .reg .f32 %x, %y, %acc;
  .reg .pred %p;

entry:
  mov.u32 %tx, %tid.x;
  mov.u32 %ty, %tid.y;
  mov.u32 %col, %tx;
  mad.u32 %col, %ntid.x, %ctaid.x, %col;
  mov.u32 %row, %ty;
  mad.u32 %row, %ntid.y, %ctaid.y, %row;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  shr.u32 %ktiles, %n, 4;
  mov.f32 %acc, 0.0;
  mov.u32 %kt, 0;
  bra ktile;

ktile:
  // Stage A[row][kt*16 + tx] and B[kt*16 + ty][col].
  mov.u32 %idx, %kt;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %tx;
  mad.u32 %idx, %row, %n, %idx;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [a];
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  mov.u32 %idx, %ty;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %tx;
  cvt.u64.u32 %sa, %idx;
  shl.u64 %sa, %sa, 2;
  st.shared.f32 [%sa], %x;

  mov.u32 %idx, %kt;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %ty;
  mad.u32 %idx, %idx, %n, %col;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [b];
  add.u64 %addr, %base, %off;
  ld.global.f32 %y, [%addr];
  mov.u32 %idx, %ty;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %tx;
  cvt.u64.u32 %sb, %idx;
  shl.u64 %sb, %sb, 2;
  st.shared.f32 [%sb+1024], %y;
  bar.sync;

  // Inner product over the staged tile.
  mov.u32 %k, 0;
  bra inner;
inner:
  mov.u32 %idx, %ty;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %k;
  cvt.u64.u32 %sa, %idx;
  shl.u64 %sa, %sa, 2;
  ld.shared.f32 %x, [%sa];
  mov.u32 %idx, %k;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %tx;
  cvt.u64.u32 %sb, %idx;
  shl.u64 %sb, %sb, 2;
  ld.shared.f32 %y, [%sb+1024];
  mad.f32 %acc, %x, %y, %acc;
  add.u32 %k, %k, 1;
  setp.lt.u32 %p, %k, 16;
  @%p bra inner, innerdone;
innerdone:
  bar.sync;
  add.u32 %kt, %kt, 1;
  setp.lt.u32 %p, %kt, %ktiles;
  @%p bra ktile, writeback;

writeback:
  mad.u32 %idx, %row, %n, %col;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [c];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %acc;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 32 * Scale; // multiple of Tile
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * N * 12 +
                                       4096);
  Inst->Block = {Tile, Tile, 1};
  Inst->Grid = {N / Tile, N / Tile, 1};

  RNG Rng(0x5eed07);
  std::vector<float> A(N * N), B(N * N);
  for (auto &V : A)
    V = Rng.nextFloat(-1.0f, 1.0f);
  for (auto &V : B)
    V = Rng.nextFloat(-1.0f, 1.0f);
  uint64_t DA = Inst->Dev->allocArray<float>(N * N);
  uint64_t DB = Inst->Dev->allocArray<float>(N * N);
  uint64_t DC = Inst->Dev->allocArray<float>(N * N);
  Inst->Dev->upload(DA, A);
  Inst->Dev->upload(DB, B);
  Inst->Params.u64(DA).u64(DB).u64(DC).u32(N);

  Inst->Check = [=, A = std::move(A),
                 B = std::move(B)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N * N);
    for (uint32_t Row = 0; Row < N; ++Row)
      for (uint32_t Col = 0; Col < N; ++Col) {
        float Acc = 0;
        for (uint32_t K = 0; K < N; ++K)
          Acc = A[Row * N + K] * B[K * N + Col] + Acc;
        Ref[Row * N + Col] = Acc;
      }
    return checkF32Buffer(Dev, DC, Ref, 1e-4f, 1e-5f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getMatrixMulWorkload() {
  static const Workload W{"MatrixMul", "matmul",
                          WorkloadClass::BarrierHeavy, Source, make};
  return W;
}
