//===- workloads/Mandelbrot.cpp - Escape-time iteration -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Mandelbrot escape-time: neighbouring pixels need similar but unequal
/// iteration counts, so warps leak threads as lanes escape — spatially
/// correlated divergence with reconvergence pressure on the warp-formation
/// machinery (contrast with MersenneTwister's uncorrelated shattering).
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr uint32_t MaxIter = 64;

const char *Source = R"(
.kernel mandelbrot (.param .u64 out, .param .u32 width, .param .u32 height)
{
  .reg .u32 %gid, %wp, %w, %hp, %xi, %yi, %iter;
  .reg .u64 %addr, %base, %off;
  .reg .f32 %cx, %cy, %zx, %zy, %zx2, %zy2, %mag, %t;
  .reg .pred %p, %pesc;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %wp, [width];
  mov.u32 %w, %wp;
  rem.u32 %xi, %gid, %w;
  div.u32 %yi, %gid, %w;

  // c = (-2.2 + x * 3/w, -1.2 + y * 2.4/h)
  cvt.f32.u32 %cx, %xi;
  mul.f32 %cx, %cx, 0.046875;
  add.f32 %cx, %cx, -2.2;
  cvt.f32.u32 %cy, %yi;
  mul.f32 %cy, %cy, 0.075;
  add.f32 %cy, %cy, -1.2;

  mov.f32 %zx, 0.0;
  mov.f32 %zy, 0.0;
  mov.u32 %iter, 0;
  bra loop;

loop:
  mul.f32 %zx2, %zx, %zx;
  mul.f32 %zy2, %zy, %zy;
  add.f32 %mag, %zx2, %zy2;
  setp.gt.f32 %pesc, %mag, 4.0;
  @%pesc bra store, continue;
continue:
  mul.f32 %t, %zx, %zy;
  sub.f32 %zx, %zx2, %zy2;
  add.f32 %zx, %zx, %cx;
  mad.f32 %zy, %t, 2.0, %cy;
  add.u32 %iter, %iter, 1;
  setp.lt.u32 %p, %iter, 64;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %iter;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t Width = 64, Height = 32 * Scale;
  const uint32_t N = Width * Height;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Params.u64(DOut).u32(Width).u32(Height);

  Inst->Check = [=](Device &Dev, std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t G = 0; G < N; ++G) {
      float Cx = static_cast<float>(G % Width) * 0.046875f + -2.2f;
      float Cy = static_cast<float>(G / Width) * 0.075f + -1.2f;
      float Zx = 0, Zy = 0;
      uint32_t Iter = 0;
      while (true) {
        float Zx2 = Zx * Zx, Zy2 = Zy * Zy;
        if (Zx2 + Zy2 > 4.0f)
          break;
        float T = Zx * Zy;
        Zx = Zx2 - Zy2 + Cx;
        Zy = T * 2.0f + Cy;
        ++Iter;
        if (Iter >= MaxIter)
          break;
      }
      Ref[G] = Iter;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getMandelbrotWorkload() {
  static const Workload W{"Mandelbrot", "mandelbrot",
                          WorkloadClass::Divergent, Source, make};
  return W;
}
