//===- workloads/FastWalsh.cpp - Fast Walsh-Hadamard transform ------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Per-CTA Walsh-Hadamard butterfly over 128 floats in shared memory:
/// log2(CTA) stages, two barriers each, branchless pairing via selp.
/// Add/sub only — synchronization-bound.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel fastwalsh (.param .u64 data, .param .u32 n)
{
  .shared .b8 buf[512];   // 128 floats
  .reg .u32 %tid0, %gid, %h, %peer, %bit;
  .reg .u64 %addr, %base, %off, %sa, %sb;
  .reg .f32 %x, %y, %sum, %diff, %nv;
  .reg .pred %p, %phigh;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u64 %base, [data];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  cvt.u64.u32 %sa, %tid0;
  shl.u64 %sa, %sa, 2;
  st.shared.f32 [%sa], %x;
  bar.sync;
  mov.u32 %h, 1;
  bra stage;

stage:
  xor.u32 %peer, %tid0, %h;
  cvt.u64.u32 %sb, %peer;
  shl.u64 %sb, %sb, 2;
  ld.shared.f32 %x, [%sa];
  ld.shared.f32 %y, [%sb];
  add.f32 %sum, %x, %y;
  sub.f32 %diff, %x, %y;
  and.u32 %bit, %tid0, %h;
  setp.eq.u32 %phigh, %bit, 0;
  // Low partner keeps x+y; high partner keeps peer - own = -(diff).
  neg.f32 %nv, %diff;
  selp.f32 %nv, %sum, %nv, %phigh;
  bar.sync;
  st.shared.f32 [%sa], %nv;
  bar.sync;
  shl.u32 %h, %h, 1;
  setp.lt.u32 %p, %h, %ntid.x;
  @%p bra stage, fin;

fin:
  ld.shared.f32 %x, [%sa];
  st.global.f32 [%addr], %x;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t CtaSize = 128;
  const uint32_t Ctas = 8 * Scale;
  const uint32_t N = CtaSize * Ctas;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {CtaSize, 1, 1};
  Inst->Grid = {Ctas, 1, 1};

  RNG Rng(0x5eed10);
  std::vector<float> Data(N);
  for (auto &V : Data)
    V = Rng.nextFloat(-1.0f, 1.0f);
  uint64_t DData = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DData, Data);
  Inst->Params.u64(DData).u32(N);

  Inst->Check = [=, Data = std::move(Data)](Device &Dev,
                                            std::string &Error) {
    std::vector<float> Ref = Data;
    for (uint32_t C = 0; C < Ctas; ++C) {
      float *Buf = Ref.data() + C * CtaSize;
      for (uint32_t H = 1; H < CtaSize; H <<= 1) {
        std::vector<float> Next(CtaSize);
        for (uint32_t T = 0; T < CtaSize; ++T) {
          uint32_t Peer = T ^ H;
          float X = Buf[T], Y = Buf[Peer];
          Next[T] = (T & H) == 0 ? X + Y : -(X - Y);
        }
        for (uint32_t T = 0; T < CtaSize; ++T)
          Buf[T] = Next[T];
      }
    }
    return checkF32Buffer(Dev, DData, Ref, 1e-5f, 1e-6f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getFastWalshWorkload() {
  static const Workload W{"FastWalshTransform", "fastwalsh",
                          WorkloadClass::BarrierHeavy, Source, make};
  return W;
}
