//===- workloads/Bitonic.cpp - Per-CTA bitonic sort -----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Bitonic sort of 128 keys in shared memory. The compare-exchange is
/// guarded twice: structurally (only the lower partner of each pair works —
/// divergent for small strides) and by the data-dependent swap condition,
/// exercising guarded-store replication. One barrier per network stage.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include <algorithm>

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel bitonic (.param .u64 data, .param .u32 n)
{
  .shared .b8 keys[512];   // 128 u32
  .reg .u32 %tid0, %gid, %k, %j, %ixj, %a, %b, %dirbit, %t;
  .reg .u64 %addr, %base, %off, %sa, %sb;
  .reg .pred %pwork, %pdir, %pgt, %pswap, %p;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u64 %base, [data];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.u32 %a, [%addr];
  cvt.u64.u32 %sa, %tid0;
  shl.u64 %sa, %sa, 2;
  st.shared.u32 [%sa], %a;
  bar.sync;
  mov.u32 %k, 2;
  bra kloop;

kloop:
  shr.u32 %j, %k, 1;
  bra jloop;
jloop:
  xor.u32 %ixj, %tid0, %j;
  setp.gt.u32 %pwork, %ixj, %tid0;
  @%pwork bra work, joinj;
work:
  cvt.u64.u32 %sb, %ixj;
  shl.u64 %sb, %sb, 2;
  ld.shared.u32 %a, [%sa];
  ld.shared.u32 %b, [%sb];
  and.u32 %dirbit, %tid0, %k;
  setp.eq.u32 %pdir, %dirbit, 0;   // ascending when (tid & k) == 0
  setp.gt.u32 %pgt, %a, %b;
  // Swap when (a > b) == ascending.
  and.pred %pswap, %pgt, %pdir;
  not.pred %pgt, %pgt;
  not.pred %pdir, %pdir;
  and.pred %pgt, %pgt, %pdir;
  or.pred %pswap, %pswap, %pgt;
  @%pswap bra doswap, joinj;
doswap:
  st.shared.u32 [%sa], %b;
  st.shared.u32 [%sb], %a;
  bra joinj;
joinj:
  bar.sync;
  shr.u32 %j, %j, 1;
  setp.gt.u32 %p, %j, 0;
  @%p bra jloop, nextk;
nextk:
  shl.u32 %k, %k, 1;
  setp.le.u32 %p, %k, %ntid.x;
  @%p bra kloop, fin;

fin:
  ld.shared.u32 %a, [%sa];
  st.global.u32 [%addr], %a;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t CtaSize = 128;
  const uint32_t Ctas = 8 * Scale;
  const uint32_t N = CtaSize * Ctas;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {CtaSize, 1, 1};
  Inst->Grid = {Ctas, 1, 1};

  RNG Rng(0x5eed0f);
  std::vector<uint32_t> Data(N);
  for (auto &V : Data)
    V = static_cast<uint32_t>(Rng.next());
  uint64_t DData = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Dev->upload(DData, Data);
  Inst->Params.u64(DData).u32(N);

  Inst->Check = [=, Data = std::move(Data)](Device &Dev,
                                            std::string &Error) {
    std::vector<uint32_t> Ref = Data;
    for (uint32_t C = 0; C < Ctas; ++C)
      std::sort(Ref.begin() + C * CtaSize, Ref.begin() + (C + 1) * CtaSize);
    return checkU32Buffer(Dev, DData, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getBitonicWorkload() {
  static const Workload W{"Bitonic", "bitonic", WorkloadClass::Divergent,
                          Source, make};
  return W;
}
