//===- workloads/ConvolutionSeparable.cpp - Separable row convolution -----===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The row pass of the SDK's separable convolution: each CTA stages a row
/// tile plus halo in shared memory, synchronizes, and convolves with a
/// 9-tap kernel held in the constant (.param) space. Shared-load heavy with
/// a barrier per tile but a denser multiply-accumulate core than BoxFilter.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr int Radius = 4; // 9 taps

const char *Source = R"(
.kernel convrow (.param .u64 in, .param .u64 out, .param .u32 width,
                 .param .u64 taps)
{
  .shared .b8 tile[544];   // 128 + 2*4 floats
  .reg .u32 %tid0, %gid, %wp, %w, %idx, %halo, %k;
  .reg .s32 %sidx;
  .reg .u64 %addr, %base, %off, %saddr, %toff;
  .reg .f32 %x, %acc, %tap;
  .reg .pred %p, %phl, %phr;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %wp, [width];
  mov.u32 %w, %wp;
  ld.param.u64 %base, [in];

  // Center element.
  sub.u32 %halo, %w, 1;
  min.u32 %idx, %gid, %halo;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  add.u32 %halo, %tid0, 4;
  cvt.u64.u32 %saddr, %halo;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;

  // Left halo.
  setp.lt.u32 %phl, %tid0, 4;
  @%phl bra lhalo, afterlh;
lhalo:
  cvt.s32.u32 %sidx, %gid;
  sub.s32 %sidx, %sidx, 4;
  max.s32 %sidx, %sidx, 0;
  cvt.u64.s32 %off, %sidx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;
  bra afterlh;
afterlh:
  // Right halo.
  mov.u32 %idx, %ntid.x;
  sub.u32 %idx, %idx, 4;
  setp.ge.u32 %phr, %tid0, %idx;
  @%phr bra rhalo, afterrh;
rhalo:
  add.u32 %idx, %gid, 4;
  sub.u32 %halo, %w, 1;
  min.u32 %idx, %idx, %halo;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  add.u32 %halo, %tid0, 8;
  cvt.u64.u32 %saddr, %halo;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;
  bra afterrh;
afterrh:
  bar.sync;

  // 9-tap convolution from shared, taps from the constant space.
  setp.ge.u32 %p, %gid, %w;
  @%p bra done, compute;
compute:
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  ld.param.u64 %toff, [taps];
  mov.f32 %acc, 0.0;
  mov.u32 %k, 0;
  bra taploop;
taploop:
  ld.shared.f32 %x, [%saddr];
  ld.param.f32 %tap, [%toff];
  mad.f32 %acc, %x, %tap, %acc;
  add.u64 %saddr, %saddr, 4;
  add.u64 %toff, %toff, 4;
  add.u32 %k, %k, 1;
  setp.lt.u32 %p, %k, 9;
  @%p bra taploop, writeback;
writeback:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %acc;
  bra done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 8192 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 8 + 4096);
  Inst->Block = {128, 1, 1};
  Inst->Grid = {(N + 127) / 128, 1, 1};

  RNG Rng(0x5eed11);
  std::vector<float> In(N), Taps(9);
  for (auto &V : In)
    V = Rng.nextFloat(-1.0f, 1.0f);
  float Sum = 0;
  for (auto &T : Taps) {
    T = Rng.nextFloat(0.0f, 1.0f);
    Sum += T;
  }
  for (auto &T : Taps)
    T /= Sum;

  uint64_t DIn = Inst->Dev->allocArray<float>(N);
  uint64_t DOut = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DIn, In);
  // Taps ride in the parameter buffer (constant memory): scalars occupy
  // 8+8+4 bytes; the u64 below lands at 24, the taps at 32.
  Inst->Params.u64(DIn).u64(DOut).u32(N);
  Inst->Params.u64(32);
  for (float T : Taps)
    Inst->Params.f32(T);

  Inst->Check = [=, In = std::move(In),
                 Taps = std::move(Taps)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N);
    for (uint32_t I = 0; I < N; ++I) {
      float Acc = 0;
      for (int D = -Radius; D <= Radius; ++D) {
        int J = static_cast<int>(I) + D;
        J = std::max(J, 0);
        J = std::min(J, static_cast<int>(N) - 1);
        Acc = In[static_cast<uint32_t>(J)] *
                  Taps[static_cast<size_t>(D + Radius)] +
              Acc;
      }
      Ref[I] = Acc;
    }
    return checkF32Buffer(Dev, DOut, Ref, 1e-4f, 1e-5f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getConvolutionSeparableWorkload() {
  static const Workload W{"ConvolutionSeparable", "convrow",
                          WorkloadClass::MemoryBound, Source, make};
  return W;
}
