//===- workloads/Histogram64.cpp - 64-bin byte histogram ------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// 64-bin histogram of a byte stream: grid-stride loop, one global atomic
/// add per element. Uniform control flow but atomic-serialized memory
/// traffic — no benefit from vectorization.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel histogram (.param .u64 data, .param .u64 bins, .param .u32 n)
{
  .reg .u32 %gid, %stride, %np, %n, %i, %byte, %bin, %old;
  .reg .u64 %addr, %bdata, %bbins, %off;
  .reg .pred %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  mov.u32 %stride, %ntid.x;
  mul.u32 %stride, %stride, %nctaid.x;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  ld.param.u64 %bdata, [data];
  ld.param.u64 %bbins, [bins];
  mov.u32 %i, %gid;
  bra loopcheck;

loopcheck:
  setp.lt.u32 %p, %i, %n;
  @%p bra loopbody, done;
loopbody:
  cvt.u64.u32 %off, %i;
  add.u64 %addr, %bdata, %off;
  ld.global.u8 %byte, [%addr];
  shr.u32 %bin, %byte, 2;
  cvt.u64.u32 %off, %bin;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bbins, %off;
  atom.global.add.u32 %old, [%addr], 1;
  add.u32 %i, %i, %stride;
  bra loopcheck;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 16384 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {8, 1, 1};

  RNG Rng(0x5eed0d);
  std::vector<uint8_t> Data(N);
  for (auto &V : Data)
    V = static_cast<uint8_t>(Rng.next());
  uint64_t DData = Inst->Dev->allocArray<uint8_t>(N);
  uint64_t DBins = Inst->Dev->allocArray<uint32_t>(64);
  Inst->Dev->upload(DData, Data);
  Inst->Dev->memset(DBins, 0, 64 * 4);
  Inst->Params.u64(DData).u64(DBins).u32(N);

  Inst->Check = [=, Data = std::move(Data)](Device &Dev,
                                            std::string &Error) {
    std::vector<uint32_t> Ref(64, 0);
    for (uint8_t B : Data)
      ++Ref[B >> 2];
    return checkU32Buffer(Dev, DBins, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getHistogram64Workload() {
  static const Workload W{"Histogram64", "histogram",
                          WorkloadClass::MemoryBound, Source, make};
  return W;
}
