//===- workloads/Cp.cpp - Coulombic potential (Parboil cp) ----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Parboil's cp: a 2D grid of lattice points accumulates the Coulombic
/// potential of a set of atoms. Atoms live in the .param (constant) space,
/// exactly as Parboil keeps them in CUDA constant memory, so the inner loop
/// is almost pure arithmetic — the best speedup of Figure 6 (paper: 3.9x).
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel cp (.param .u64 grid, .param .u32 width, .param .u32 natoms,
            .param .u64 atomtab)
{
  .reg .u32 %gid, %wp, %w, %nap, %na, %j, %xi, %yi;
  .reg .u64 %addr, %bgrid, %off, %atoff;
  .reg .f32 %px, %py, %ax, %ay, %aq, %dx, %dy, %r2, %inv, %pot;
  .reg .pred %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %wp, [width];
  mov.u32 %w, %wp;
  ld.param.u32 %nap, [natoms];
  mov.u32 %na, %nap;

  // 2D lattice point (0.25 A spacing).
  rem.u32 %xi, %gid, %w;
  div.u32 %yi, %gid, %w;
  cvt.f32.u32 %px, %xi;
  mul.f32 %px, %px, 0.25;
  cvt.f32.u32 %py, %yi;
  mul.f32 %py, %py, 0.25;

  mov.f32 %pot, 0.0;
  mov.u32 %j, 0;
  // atomtab is a byte offset into the .param space: [x, y, q] per atom.
  ld.param.u64 %atoff, [atomtab];
  bra loop;

loop:
  add.u64 %addr, %atoff, 0;
  ld.param.f32 %ax, [%addr+0];
  ld.param.f32 %ay, [%addr+4];
  ld.param.f32 %aq, [%addr+8];
  add.u64 %atoff, %atoff, 12;
  sub.f32 %dx, %ax, %px;
  sub.f32 %dy, %ay, %py;
  mul.f32 %r2, %dx, %dx;
  mad.f32 %r2, %dy, %dy, %r2;
  add.f32 %r2, %r2, 0.05;
  rsqrt.f32 %inv, %r2;
  mad.f32 %pot, %aq, %inv, %pot;
  add.u32 %j, %j, 1;
  setp.lt.u32 %p, %j, %na;
  @%p bra loop, writeback;

writeback:
  ld.param.u64 %bgrid, [grid];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bgrid, %off;
  st.global.f32 [%addr], %pot;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t Width = 64, Height = 32;
  const uint32_t Points = Width * Height;
  const uint32_t Atoms = 24 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(Points) * 4 +
                                       4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {Points / 64, 1, 1};

  RNG Rng(0x5eed09);
  std::vector<float> AtomTab(Atoms * 3);
  for (uint32_t A = 0; A < Atoms; ++A) {
    AtomTab[A * 3 + 0] = Rng.nextFloat(0.0f, Width * 0.25f);
    AtomTab[A * 3 + 1] = Rng.nextFloat(0.0f, Height * 0.25f);
    AtomTab[A * 3 + 2] = Rng.nextFloat(-1.0f, 1.0f);
  }
  uint64_t DGrid = Inst->Dev->allocArray<float>(Points);

  // The atom table rides in the parameter buffer after the declared
  // scalars, mirroring CUDA constant memory.
  Inst->Params.u64(DGrid).u32(Width).u32(Atoms);
  // Placeholder for the table offset: the scalar params occupy 16 bytes so
  // far; the u64 below lands at offset 16, the table at 24.
  Inst->Params.u64(24);
  for (float V : AtomTab)
    Inst->Params.f32(V);

  Inst->Check = [=, AtomTab = std::move(AtomTab)](Device &Dev,
                                                  std::string &Error) {
    std::vector<float> Ref(Points);
    for (uint32_t G = 0; G < Points; ++G) {
      float Px = static_cast<float>(G % Width) * 0.25f;
      float Py = static_cast<float>(G / Width) * 0.25f;
      float Pot = 0;
      for (uint32_t A = 0; A < Atoms; ++A) {
        float Dx = AtomTab[A * 3] - Px;
        float Dy = AtomTab[A * 3 + 1] - Py;
        float R2 = Dx * Dx;
        R2 = Dy * Dy + R2;
        R2 += 0.05f;
        float Inv = 1.0f / std::sqrt(R2);
        Pot = AtomTab[A * 3 + 2] * Inv + Pot;
      }
      Ref[G] = Pot;
    }
    return checkF32Buffer(Dev, DGrid, Ref, 1e-3f, 1e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getCpWorkload() {
  static const Workload W{"cp", "cp", WorkloadClass::ComputeUniform, Source,
                          make};
  return W;
}
