//===- workloads/SobolQRNG.cpp - Sobol quasirandom generation -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Sobol sequence via the incremental gray-code recurrence (as the SDK
/// kernel): each thread seeds its position with the full direction-vector
/// XOR, then emits a contiguous run of points with x_{n+1} = x_n ^
/// v[ctz(n+1)]. One streaming store per point plus a short data-dependent
/// count-trailing-zeros loop: store-bandwidth-bound with thread-dependent
/// micro-divergence — pinned near 1.0x in Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr uint32_t PointsPerThread = 16;

const char *Source = R"(
.kernel sobol (.param .u64 directions, .param .u64 out, .param .u32 n)
{
  .reg .u32 %gid, %np, %n, %j, %gray, %x, %dir, %bit, %i0, %m, %t, %c;
  .reg .u64 %addr, %bdir, %bout, %off;
  .reg .pred %p, %pbit, %podd;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  ld.param.u64 %bdir, [directions];
  ld.param.u64 %bout, [out];
  shl.u32 %i0, %gid, 4;        // 16 points per thread
  setp.ge.u32 %p, %i0, %n;
  @%p bra done, seed;

seed:
  // x = XOR of direction vectors selected by gray(i0).
  shr.u32 %gray, %i0, 1;
  xor.u32 %gray, %gray, %i0;
  mov.u32 %x, 0;
  mov.u32 %j, 0;
  bra seedloop;
seedloop:
  cvt.u64.u32 %off, %j;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bdir, %off;
  ld.global.u32 %dir, [%addr];
  shr.u32 %bit, %gray, %j;
  and.u32 %bit, %bit, 1;
  setp.eq.u32 %pbit, %bit, 1;
  xor.u32 %dir, %dir, %x;
  selp.u32 %x, %dir, %x, %pbit;
  add.u32 %j, %j, 1;
  setp.lt.u32 %p, %j, 32;
  @%p bra seedloop, emit;

emit:
  mov.u32 %m, 0;
  cvt.u64.u32 %off, %i0;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %bout, %off;
  bra emitloop;
emitloop:
  st.global.u32 [%addr], %x;
  // c = ctz(i0 + m + 1): thread-dependent trip count (micro-divergence).
  add.u32 %t, %i0, %m;
  add.u32 %t, %t, 1;
  mov.u32 %c, 0;
  bra ctzloop;
ctzloop:
  and.u32 %bit, %t, 1;
  setp.eq.u32 %podd, %bit, 1;
  @%podd bra ctzdone, ctzstep;
ctzstep:
  shr.u32 %t, %t, 1;
  add.u32 %c, %c, 1;
  bra ctzloop;
ctzdone:
  cvt.u64.u32 %off, %c;
  shl.u64 %off, %off, 2;
  add.u64 %off, %bdir, %off;
  ld.global.u32 %dir, [%off];
  xor.u32 %x, %x, %dir;
  add.u64 %addr, %addr, 4;
  add.u32 %m, %m, 1;
  setp.lt.u32 %p, %m, 16;
  @%p bra emitloop, done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 16384 * Scale; // points; 16 per thread
  const uint32_t Threads = N / PointsPerThread;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {Threads / 64, 1, 1};

  // Standard first-dimension direction vectors: v_j = 2^(31-j).
  std::vector<uint32_t> Dirs(32);
  for (uint32_t J = 0; J < 32; ++J)
    Dirs[J] = 1u << (31 - J);
  uint64_t DDirs = Inst->Dev->allocArray<uint32_t>(32);
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Dev->upload(DDirs, Dirs);
  Inst->Params.u64(DDirs).u64(DOut).u32(N);

  Inst->Check = [=, Dirs = std::move(Dirs)](Device &Dev,
                                            std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t Gray = I ^ (I >> 1);
      uint32_t X = 0;
      for (uint32_t J = 0; J < 32; ++J)
        if ((Gray >> J) & 1)
          X ^= Dirs[J];
      Ref[I] = X;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getSobolQRNGWorkload() {
  static const Workload W{"SobolQRNG", "sobol", WorkloadClass::MemoryBound,
                          Source, make};
  return W;
}
