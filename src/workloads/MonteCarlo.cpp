//===- workloads/MonteCarlo.cpp - Monte Carlo option pricing --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Monte Carlo European-call estimation: each thread simulates paths with a
/// branchless LCG and an Irwin-Hall approximate normal, accumulating
/// discounted payoffs. Uniform control flow, flop-dense — vectorizes
/// near-linearly.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel montecarlo (.param .u64 out, .param .u32 paths, .param .f32 s0,
                    .param .f32 strike, .param .f32 drift, .param .f32 volsq)
{
  .reg .u32 %gid, %pp, %np, %i, %state, %u;
  .reg .f32 %z, %uf, %s, %payoff, %acc, %sp, %xp, %dp, %vp, %tmp;
  .reg .u64 %addr, %base, %off;
  .reg .pred %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %pp, [paths];
  mov.u32 %np, %pp;
  ld.param.f32 %sp, [s0];
  mov.f32 %s, %sp;
  ld.param.f32 %xp, [strike];
  ld.param.f32 %dp, [drift];
  ld.param.f32 %vp, [volsq];
  mul.u32 %state, %gid, 747796405;
  add.u32 %state, %state, 2891336453;
  mov.f32 %acc, 0.0;
  mov.u32 %i, 0;
  bra loop;

loop:
  // Irwin-Hall: z = (u1 + u2 + u3 + u4) - 2, u_k uniform in [0,1).
  mov.f32 %z, -2.0;
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %u, %state, 8;
  cvt.f32.u32 %uf, %u;
  mad.f32 %z, %uf, 0.000000059604645, %z;
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %u, %state, 8;
  cvt.f32.u32 %uf, %u;
  mad.f32 %z, %uf, 0.000000059604645, %z;
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %u, %state, 8;
  cvt.f32.u32 %uf, %u;
  mad.f32 %z, %uf, 0.000000059604645, %z;
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %u, %state, 8;
  cvt.f32.u32 %uf, %u;
  mad.f32 %z, %uf, 0.000000059604645, %z;

  // S_T = s0 * exp(drift + sqrt(volsq) * z); payoff = max(S_T - X, 0)
  sqrt.f32 %tmp, %vp;
  mul.f32 %tmp, %tmp, %z;
  add.f32 %tmp, %tmp, %dp;
  mul.f32 %tmp, %tmp, 1.44269504;
  ex2.f32 %tmp, %tmp;
  mul.f32 %s, %sp, %tmp;
  sub.f32 %payoff, %s, %xp;
  max.f32 %payoff, %payoff, 0.0;
  add.f32 %acc, %acc, %payoff;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %np;
  @%p bra loop, writeback;

writeback:
  cvt.f32.u32 %tmp, %np;
  div.f32 %acc, %acc, %tmp;
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %acc;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t Threads = 512;
  const uint32_t Paths = 16 * Scale;
  const float S0 = 20.0f, Strike = 22.0f, Drift = 0.01f, VolSq = 0.09f;
  Inst->Dev = std::make_unique<Device>(1 << 20);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {Threads / 64, 1, 1};
  uint64_t DOut = Inst->Dev->allocArray<float>(Threads);
  Inst->Params.u64(DOut).u32(Paths).f32(S0).f32(Strike)
      .f32(Drift).f32(VolSq);

  Inst->Check = [=](Device &Dev, std::string &Error) {
    std::vector<float> Ref(Threads);
    for (uint32_t T = 0; T < Threads; ++T) {
      uint32_t State = T * 747796405u + 2891336453u;
      float Acc = 0;
      for (uint32_t I = 0; I < Paths; ++I) {
        float Z = -2.0f;
        for (int K = 0; K < 4; ++K) {
          State = State * 1664525u + 1013904223u;
          Z = static_cast<float>(State >> 8) * 0.000000059604645f + Z;
        }
        float Tmp =
            std::exp2((std::sqrt(VolSq) * Z + Drift) * 1.44269504f);
        float Payoff = std::max(S0 * Tmp - Strike, 0.0f);
        Acc += Payoff;
      }
      Ref[T] = Acc / static_cast<float>(Paths);
    }
    return checkF32Buffer(Dev, DOut, Ref, 2e-3f, 2e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getMonteCarloWorkload() {
  static const Workload W{"MonteCarlo", "montecarlo",
                          WorkloadClass::ComputeUniform, Source, make};
  return W;
}
