//===- workloads/Nbody.cpp - All-pairs gravitational forces ---------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// All-pairs N-body acceleration: each thread owns a body and loops over
/// every other body (softened inverse-square law, rsqrt-heavy). Uniform
/// control flow, no barriers — nearly all cycles in the vectorized
/// subkernel, one of the best speedups of Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel nbody (.param .u64 pos, .param .u64 accel, .param .u32 n)
{
  .reg .u32 %gid, %np, %n, %j;
  .reg .u64 %addr, %bpos, %bacc, %off;
  .reg .f32 %px, %py, %pz, %qx, %qy, %qz, %qw;
  .reg .f32 %dx, %dy, %dz, %r2, %inv, %inv3, %f, %ax, %ay, %az;
  .reg .pred %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  ld.param.u64 %bpos, [pos];

  // Own position (xyzw layout, 16 bytes per body).
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 4;
  add.u64 %addr, %bpos, %off;
  ld.global.f32 %px, [%addr+0];
  ld.global.f32 %py, [%addr+4];
  ld.global.f32 %pz, [%addr+8];

  mov.f32 %ax, 0.0;
  mov.f32 %ay, 0.0;
  mov.f32 %az, 0.0;
  mov.u32 %j, 0;
  bra loop;

loop:
  cvt.u64.u32 %off, %j;
  shl.u64 %off, %off, 4;
  add.u64 %addr, %bpos, %off;
  ld.global.f32 %qx, [%addr+0];
  ld.global.f32 %qy, [%addr+4];
  ld.global.f32 %qz, [%addr+8];
  ld.global.f32 %qw, [%addr+12];
  sub.f32 %dx, %qx, %px;
  sub.f32 %dy, %qy, %py;
  sub.f32 %dz, %qz, %pz;
  mul.f32 %r2, %dx, %dx;
  mad.f32 %r2, %dy, %dy, %r2;
  mad.f32 %r2, %dz, %dz, %r2;
  add.f32 %r2, %r2, 0.01;
  rsqrt.f32 %inv, %r2;
  mul.f32 %inv3, %inv, %inv;
  mul.f32 %inv3, %inv3, %inv;
  mul.f32 %f, %qw, %inv3;
  mad.f32 %ax, %f, %dx, %ax;
  mad.f32 %ay, %f, %dy, %ay;
  mad.f32 %az, %f, %dz, %az;
  add.u32 %j, %j, 1;
  setp.lt.u32 %p, %j, %n;
  @%p bra loop, writeback;

writeback:
  ld.param.u64 %bacc, [accel];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 4;
  add.u64 %addr, %bacc, %off;
  st.global.f32 [%addr+0], %ax;
  st.global.f32 [%addr+4], %ay;
  st.global.f32 [%addr+8], %az;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 256 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 32 + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};

  RNG Rng(0x5eed08);
  std::vector<float> Pos(N * 4);
  for (uint32_t I = 0; I < N; ++I) {
    Pos[I * 4 + 0] = Rng.nextFloat(-10.0f, 10.0f);
    Pos[I * 4 + 1] = Rng.nextFloat(-10.0f, 10.0f);
    Pos[I * 4 + 2] = Rng.nextFloat(-10.0f, 10.0f);
    Pos[I * 4 + 3] = Rng.nextFloat(0.1f, 2.0f); // mass
  }
  uint64_t DPos = Inst->Dev->allocArray<float>(N * 4);
  uint64_t DAcc = Inst->Dev->allocArray<float>(N * 4);
  Inst->Dev->upload(DPos, Pos);
  Inst->Params.u64(DPos).u64(DAcc).u32(N);

  Inst->Check = [=, Pos = std::move(Pos)](Device &Dev, std::string &Error) {
    std::vector<float> Got = Dev.download<float>(DAcc, N * 4);
    for (uint32_t I = 0; I < N; ++I) {
      float Ax = 0, Ay = 0, Az = 0;
      float Px = Pos[I * 4], Py = Pos[I * 4 + 1], Pz = Pos[I * 4 + 2];
      for (uint32_t J = 0; J < N; ++J) {
        float Dx = Pos[J * 4] - Px;
        float Dy = Pos[J * 4 + 1] - Py;
        float Dz = Pos[J * 4 + 2] - Pz;
        float R2 = Dx * Dx;
        R2 = Dy * Dy + R2;
        R2 = Dz * Dz + R2;
        R2 += 0.01f;
        float Inv = 1.0f / std::sqrt(R2);
        float F = Pos[J * 4 + 3] * (Inv * Inv * Inv);
        Ax = F * Dx + Ax;
        Ay = F * Dy + Ay;
        Az = F * Dz + Az;
      }
      float TolBase = 1e-3f;
      auto Close = [&](float Got1, float Want) {
        return std::fabs(Got1 - Want) <=
               TolBase + 1e-3f * std::fabs(Want);
      };
      if (!Close(Got[I * 4], Ax) || !Close(Got[I * 4 + 1], Ay) ||
          !Close(Got[I * 4 + 2], Az)) {
        Error = formatString("body %u acceleration mismatch", I);
        return false;
      }
    }
    return true;
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getNbodyWorkload() {
  static const Workload W{"Nbody", "nbody", WorkloadClass::ComputeUniform,
                          Source, make};
  return W;
}
