//===- workloads/BlackScholes.cpp - Option pricing ------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// European option pricing with the Abramowitz-Stegun cumulative-normal
/// polynomial: branchless (selp), flop-dense, uniform control flow — the
/// compute-bound profile that vectorizes near-linearly in Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel blackscholes (.param .u64 spot, .param .u64 strike, .param .u64 years,
                      .param .u64 call, .param .u64 put, .param .u32 n,
                      .param .f32 rrate, .param .f32 vol)
{
  .reg .u32 %i, %np, %n;
  .reg .u64 %off, %addr, %b0;
  .reg .f32 %s, %x, %t, %r, %v, %rp, %vp;
  .reg .f32 %sqrtt, %d1, %d2, %k1, %k2, %cnd1, %cnd2, %expr, %tmp, %tmp2;
  .reg .f32 %poly1, %poly2, %absd, %callv, %putv;
  .reg .pred %p, %neg;

entry:
  mov.u32 %i, %tid.x;
  mad.u32 %i, %ntid.x, %ctaid.x, %i;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %b0, [spot];
  add.u64 %addr, %b0, %off;
  ld.global.f32 %s, [%addr];
  ld.param.u64 %b0, [strike];
  add.u64 %addr, %b0, %off;
  ld.global.f32 %x, [%addr];
  ld.param.u64 %b0, [years];
  add.u64 %addr, %b0, %off;
  ld.global.f32 %t, [%addr];
  ld.param.f32 %rp, [rrate];
  ld.param.f32 %vp, [vol];
  mov.f32 %r, %rp;
  mov.f32 %v, %vp;

  // d1 = (ln(S/X) + (r + v^2/2) t) / (v sqrt(t)); d2 = d1 - v sqrt(t)
  sqrt.f32 %sqrtt, %t;
  div.f32 %d1, %s, %x;
  lg2.f32 %d1, %d1;
  mul.f32 %d1, %d1, 0.69314718;
  mul.f32 %tmp, %v, %v;
  mul.f32 %tmp, %tmp, 0.5;
  add.f32 %tmp, %tmp, %r;
  mad.f32 %d1, %tmp, %t, %d1;
  mul.f32 %tmp, %v, %sqrtt;
  div.f32 %d1, %d1, %tmp;
  sub.f32 %d2, %d1, %tmp;

  // cnd(d) via the A&S 5-term polynomial, branchless.
  abs.f32 %absd, %d1;
  mad.f32 %k1, %absd, 0.2316419, 1.0;
  rcp.f32 %k1, %k1;
  mov.f32 %poly1, 1.330274429;
  mad.f32 %poly1, %poly1, %k1, -1.821255978;
  mad.f32 %poly1, %poly1, %k1, 1.781477937;
  mad.f32 %poly1, %poly1, %k1, -0.356563782;
  mad.f32 %poly1, %poly1, %k1, 0.319381530;
  mul.f32 %poly1, %poly1, %k1;
  mul.f32 %tmp, %d1, %d1;
  mul.f32 %tmp, %tmp, -0.72134752;
  ex2.f32 %tmp, %tmp;
  mul.f32 %tmp, %tmp, 0.39894228;
  mul.f32 %poly1, %poly1, %tmp;
  sub.f32 %cnd1, 1.0, %poly1;
  setp.lt.f32 %neg, %d1, 0.0;
  sub.f32 %tmp, 1.0, %cnd1;
  selp.f32 %cnd1, %tmp, %cnd1, %neg;

  abs.f32 %absd, %d2;
  mad.f32 %k2, %absd, 0.2316419, 1.0;
  rcp.f32 %k2, %k2;
  mov.f32 %poly2, 1.330274429;
  mad.f32 %poly2, %poly2, %k2, -1.821255978;
  mad.f32 %poly2, %poly2, %k2, 1.781477937;
  mad.f32 %poly2, %poly2, %k2, -0.356563782;
  mad.f32 %poly2, %poly2, %k2, 0.319381530;
  mul.f32 %poly2, %poly2, %k2;
  mul.f32 %tmp, %d2, %d2;
  mul.f32 %tmp, %tmp, -0.72134752;
  ex2.f32 %tmp, %tmp;
  mul.f32 %tmp, %tmp, 0.39894228;
  mul.f32 %poly2, %poly2, %tmp;
  sub.f32 %cnd2, 1.0, %poly2;
  setp.lt.f32 %neg, %d2, 0.0;
  sub.f32 %tmp, 1.0, %cnd2;
  selp.f32 %cnd2, %tmp, %cnd2, %neg;

  // expr = exp(-r t); call = S cnd1 - X expr cnd2; put = call - S + X expr
  mul.f32 %expr, %r, %t;
  neg.f32 %expr, %expr;
  mul.f32 %expr, %expr, 1.44269504;
  ex2.f32 %expr, %expr;
  mul.f32 %tmp, %x, %expr;
  mul.f32 %tmp2, %tmp, %cnd2;
  mul.f32 %callv, %s, %cnd1;
  sub.f32 %callv, %callv, %tmp2;
  sub.f32 %putv, %callv, %s;
  add.f32 %putv, %putv, %tmp;

  ld.param.u64 %b0, [call];
  add.u64 %addr, %b0, %off;
  st.global.f32 [%addr], %callv;
  ld.param.u64 %b0, [put];
  add.u64 %addr, %b0, %off;
  st.global.f32 [%addr], %putv;
  bra done;
done:
  ret;
}
)";

float hostCnd(float D) {
  // Horner evaluation matching the kernel exactly.
  float AbsD = std::fabs(D);
  float K = 1.0f / (AbsD * 0.2316419f + 1.0f);
  float Poly = 1.330274429f;
  Poly = Poly * K + -1.821255978f;
  Poly = Poly * K + 1.781477937f;
  Poly = Poly * K + -0.356563782f;
  Poly = Poly * K + 0.319381530f;
  Poly = Poly * K;
  float T = std::exp2(D * D * -0.72134752f) * 0.39894228f;
  float Cnd = 1.0f - Poly * T;
  return D < 0 ? 1.0f - Cnd : Cnd;
}

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 8192 * Scale;
  const float R = 0.02f, V = 0.30f;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 20 + 4096);
  Inst->Block = {128, 1, 1};
  Inst->Grid = {(N + 127) / 128, 1, 1};

  RNG Rng(0x5eed02);
  std::vector<float> S(N), X(N), T(N);
  for (uint32_t I = 0; I < N; ++I) {
    S[I] = Rng.nextFloat(5.0f, 30.0f);
    X[I] = Rng.nextFloat(1.0f, 100.0f);
    T[I] = Rng.nextFloat(0.25f, 10.0f);
  }
  uint64_t DS = Inst->Dev->allocArray<float>(N);
  uint64_t DX = Inst->Dev->allocArray<float>(N);
  uint64_t DT = Inst->Dev->allocArray<float>(N);
  uint64_t DCall = Inst->Dev->allocArray<float>(N);
  uint64_t DPut = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DS, S);
  Inst->Dev->upload(DX, X);
  Inst->Dev->upload(DT, T);
  Inst->Params.u64(DS).u64(DX).u64(DT).u64(DCall).u64(DPut)
      .u32(N).f32(R).f32(V);

  Inst->Check = [=, S = std::move(S), X = std::move(X),
                 T = std::move(T)](Device &Dev, std::string &Error) {
    std::vector<float> Call(N), Put(N);
    for (uint32_t I = 0; I < N; ++I) {
      float SqrtT = std::sqrt(T[I]);
      float D1 = std::log2(S[I] / X[I]) * 0.69314718f;
      D1 = (V * V * 0.5f + R) * T[I] + D1;
      D1 = D1 / (V * SqrtT);
      float D2 = D1 - V * SqrtT;
      float Cnd1 = hostCnd(D1), Cnd2 = hostCnd(D2);
      float ExpR = std::exp2(-(R * T[I]) * 1.44269504f);
      Call[I] = S[I] * Cnd1 - X[I] * ExpR * Cnd2;
      Put[I] = Call[I] - S[I] + X[I] * ExpR;
    }
    return checkF32Buffer(Dev, DCall, Call, 2e-3f, 2e-3f, Error) &&
           checkF32Buffer(Dev, DPut, Put, 2e-3f, 2e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getBlackScholesWorkload() {
  static const Workload W{"BlackScholes", "blackscholes",
                          WorkloadClass::ComputeUniform, Source, make};
  return W;
}
