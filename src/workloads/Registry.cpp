//===- workloads/Registry.cpp - Suite registry ----------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include <cstdio>
#include <cstdlib>

using namespace simtvec;

const char *simtvec::workloadClassName(WorkloadClass C) {
  switch (C) {
  case WorkloadClass::ComputeUniform:
    return "compute-uniform";
  case WorkloadClass::BarrierHeavy:
    return "barrier-heavy";
  case WorkloadClass::MemoryBound:
    return "memory-bound";
  case WorkloadClass::Divergent:
    return "divergent";
  }
  return "?";
}

const std::vector<Workload> &simtvec::allWorkloads() {
  static const std::vector<Workload> All = {
      getVectorAddWorkload(),     getBlackScholesWorkload(),
      getBinomialOptionsWorkload(), getBoxFilterWorkload(),
      getScalarProdWorkload(),    getSobolQRNGWorkload(),
      getMersenneTwisterWorkload(), getMatrixMulWorkload(),
      getNbodyWorkload(),         getCpWorkload(),
      getMriQWorkload(),          getMriFhdWorkload(),
      getReductionWorkload(),
      getScanWorkload(),          getHistogram64Workload(),
      getTransposeWorkload(),     getBitonicWorkload(),
      getFastWalshWorkload(),     getMonteCarloWorkload(),
      getMandelbrotWorkload(),    getConvolutionSeparableWorkload(),
      getLoopTripWorkload(),      getBfsWorkload(),
      getSpmvWorkload(),          getThroughputWorkload(),
  };
  return All;
}

const Workload *simtvec::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}

std::unique_ptr<Program> simtvec::compileWorkload(const Workload &W,
                                                  const MachineModel &M) {
  auto POrErr = Program::compile(W.Source, M);
  if (!POrErr) {
    std::fprintf(stderr, "workload '%s' failed to compile: %s\n", W.Name,
                 POrErr.status().message().c_str());
    std::abort();
  }
  return POrErr.take();
}

Expected<LaunchStats> simtvec::runWorkload(const Workload &W, uint32_t Scale,
                                           const LaunchOptions &Options,
                                           const MachineModel &Machine) {
  std::unique_ptr<Program> Prog = compileWorkload(W, Machine);
  std::unique_ptr<WorkloadInstance> Inst = W.Make(Scale);
  auto StatsOrErr = Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid,
                                 Inst->Block, Inst->Params, Options);
  if (!StatsOrErr)
    return StatsOrErr.status();
  std::string Error;
  if (!Inst->Check(*Inst->Dev, Error))
    return Status::error(
        formatString("%s validation failed: %s", W.Name, Error.c_str()));
  return StatsOrErr;
}
