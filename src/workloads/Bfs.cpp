//===- workloads/Bfs.cpp - BFS-style irregular relaxation -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// One BFS relaxation step over a synthetic CSR graph: each thread owns a
/// vertex, walks its adjacency list (degree 0..31, hashed from the vertex id
/// so adjacent lanes disagree), and keeps the minimum tentative distance of
/// its neighbours plus one. Two nested divergence sites — the variable-trip
/// neighbour loop and the `cand < best` improvement test inside it — make
/// this the canonical target for control-flow melding: the inner diamond
/// flattens into the loop body, the loop becomes a masked self-loop, and the
/// per-iteration divergent yield disappears.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel bfs_relax (.param .u64 rowptr, .param .u64 cols, .param .u64 dist, .param .u64 out, .param .u32 n)
{
  .reg .u32 %gid, %n, %start, %end, %best, %i, %c, %cand;
  .reg .u64 %rp, %cl, %ds, %base, %off, %addr;
  .reg .pred %pn, %pd, %pc, %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %n, [n];
  setp.lt.u32 %pn, %gid, %n;
  @%pn bra work, done;

work:
  ld.param.u64 %rp, [rowptr];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %rp, %off;
  ld.global.u32 %start, [%addr];
  add.u64 %addr, %addr, 4;
  ld.global.u32 %end, [%addr];
  ld.param.u64 %ds, [dist];
  add.u64 %addr, %ds, %off;
  ld.global.u32 %best, [%addr];
  mov.u32 %i, %start;
  setp.lt.u32 %pd, %i, %end;
  @%pd bra loop, store;

loop:
  ld.param.u64 %cl, [cols];
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %cl, %off;
  ld.global.u32 %c, [%addr];
  ld.param.u64 %ds, [dist];
  cvt.u64.u32 %off, %c;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %ds, %off;
  ld.global.u32 %cand, [%addr];
  add.u32 %cand, %cand, 1;
  setp.lt.u32 %pc, %cand, %best;
  @%pc bra take, next;

take:
  mov.u32 %best, %cand;
  bra next;

next:
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %end;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %best;
  bra done;

done:
  ret;
}
)";

uint32_t hashU32(uint32_t X) {
  X ^= X >> 16;
  X *= 0x7feb352du;
  X ^= X >> 15;
  X *= 0x846ca68bu;
  X ^= X >> 16;
  return X;
}

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 4096 * Scale;

  // Synthetic CSR: degree(v) = hash(v) & 31, cols drawn from a second hash.
  std::vector<uint32_t> RowPtr(N + 1);
  uint32_t Nnz = 0;
  for (uint32_t V = 0; V < N; ++V) {
    RowPtr[V] = Nnz;
    Nnz += hashU32(V) & 31u;
  }
  RowPtr[N] = Nnz;
  std::vector<uint32_t> Cols(Nnz);
  for (uint32_t V = 0; V < N; ++V)
    for (uint32_t K = RowPtr[V]; K < RowPtr[V + 1]; ++K)
      Cols[K] = hashU32(V * 2654435761u + K) % N;
  std::vector<uint32_t> Dist(N);
  for (uint32_t V = 0; V < N; ++V)
    Dist[V] = hashU32(V + 0x9e3779b9u) & 0xffffu;

  size_t Bytes = (static_cast<size_t>(N) * 3 + Nnz + 1) * 4 + 4096;
  Inst->Dev = std::make_unique<Device>(Bytes);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};
  uint64_t DRowPtr = Inst->Dev->allocArray<uint32_t>(N + 1);
  uint64_t DCols = Inst->Dev->allocArray<uint32_t>(Nnz ? Nnz : 1);
  uint64_t DDist = Inst->Dev->allocArray<uint32_t>(N);
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Dev->upload(DRowPtr, RowPtr);
  Inst->Dev->upload(DCols, Cols);
  Inst->Dev->upload(DDist, Dist);
  Inst->Params.u64(DRowPtr).u64(DCols).u64(DDist).u64(DOut).u32(N);

  Inst->Check = [=](Device &Dev, std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t V = 0; V < N; ++V) {
      uint32_t Best = Dist[V];
      for (uint32_t K = RowPtr[V]; K < RowPtr[V + 1]; ++K) {
        uint32_t Cand = Dist[Cols[K]] + 1;
        if (Cand < Best)
          Best = Cand;
      }
      Ref[V] = Best;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getBfsWorkload() {
  static const Workload W{"Bfs", "bfs_relax", WorkloadClass::Divergent, Source,
                          make};
  return W;
}
