//===- workloads/MriFhd.cpp - MRI FhD computation -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Parboil's mri-fhd shape: like mri-q but accumulating the complex FhD
/// product (four mads per sample over real/imaginary rho terms). The same
/// thread-local phase test gives the uncorrelated divergence the paper
/// cites for its slowdown under dynamic warp formation ("applications such
/// as MersenneTwister, mri-fhd, and mri-q run slower with dynamic warp
/// formation").
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel mrifhd (.param .u64 xcoord, .param .u64 ktab, .param .u64 rfhd,
                .param .u64 ifhd, .param .u32 nvox, .param .u32 nk)
{
  .reg .u32 %gid, %nvp, %nv, %nkp, %nk1, %j;
  .reg .s32 %fi;
  .reg .u64 %addr, %base, %off, %koff;
  .reg .f32 %x, %kx, %rrho, %irho, %phi, %frac, %s, %c, %re, %im;
  .reg .pred %p, %pskip;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %nvp, [nvox];
  mov.u32 %nv, %nvp;
  ld.param.u32 %nkp, [nk];
  mov.u32 %nk1, %nkp;
  setp.ge.u32 %p, %gid, %nv;
  @%p bra done, body;
body:
  ld.param.u64 %base, [xcoord];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  ld.param.u64 %base, [ktab];
  mov.u64 %koff, %base;
  mov.f32 %re, 0.0;
  mov.f32 %im, 0.0;
  mov.u32 %j, 0;
  bra loop;

loop:
  ld.global.f32 %kx, [%koff+0];
  ld.global.f32 %rrho, [%koff+4];
  ld.global.f32 %irho, [%koff+8];
  add.u64 %koff, %koff, 12;
  mul.f32 %phi, %kx, %x;
  mul.f32 %phi, %phi, 6.2831853;
  // Thread-local phase gate: lanes disagree (paper: "threads with
  // uncorrelated control-flow properties may diverge at every branch").
  mul.f32 %frac, %phi, 0.15915494;
  cvt.s32.f32 %fi, %frac;
  cvt.f32.s32 %s, %fi;
  sub.f32 %frac, %frac, %s;
  setp.lt.f32 %pskip, %frac, 0.4;
  @%pskip bra next, accum;
accum:
  sin.f32 %s, %phi;
  cos.f32 %c, %phi;
  mad.f32 %re, %rrho, %c, %re;
  mad.f32 %re, %irho, %s, %re;
  mad.f32 %im, %irho, %c, %im;
  mul.f32 %s, %rrho, %s;
  sub.f32 %im, %im, %s;
  bra next;
next:
  add.u32 %j, %j, 1;
  setp.lt.u32 %p, %j, %nk1;
  @%p bra loop, writeback;

writeback:
  ld.param.u64 %base, [rfhd];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %re;
  ld.param.u64 %base, [ifhd];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %im;
  bra done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t NVox = 1024;
  const uint32_t NK = 20 * Scale;
  Inst->Dev = std::make_unique<Device>(1 << 20);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {NVox / 64, 1, 1};

  RNG Rng(0x5eed12);
  std::vector<float> X(NVox), KTab(NK * 3);
  for (auto &V : X)
    V = Rng.nextFloat(0.0f, 4.0f);
  for (uint32_t J = 0; J < NK; ++J) {
    KTab[J * 3 + 0] = Rng.nextFloat(0.1f, 3.0f);   // kx
    KTab[J * 3 + 1] = Rng.nextFloat(-1.0f, 1.0f);  // rRho
    KTab[J * 3 + 2] = Rng.nextFloat(-1.0f, 1.0f);  // iRho
  }
  uint64_t DX = Inst->Dev->allocArray<float>(NVox);
  uint64_t DK = Inst->Dev->allocArray<float>(NK * 3);
  uint64_t DRe = Inst->Dev->allocArray<float>(NVox);
  uint64_t DIm = Inst->Dev->allocArray<float>(NVox);
  Inst->Dev->upload(DX, X);
  Inst->Dev->upload(DK, KTab);
  Inst->Params.u64(DX).u64(DK).u64(DRe).u64(DIm).u32(NVox)
      .u32(NK);

  Inst->Check = [=, X = std::move(X),
                 KTab = std::move(KTab)](Device &Dev, std::string &Error) {
    std::vector<float> Re(NVox), Im(NVox);
    for (uint32_t V = 0; V < NVox; ++V) {
      float AccRe = 0, AccIm = 0;
      for (uint32_t J = 0; J < NK; ++J) {
        float Phi = KTab[J * 3] * X[V] * 6.2831853f;
        float Frac = Phi * 0.15915494f;
        Frac = Frac - static_cast<float>(static_cast<int>(Frac));
        if (Frac < 0.4f)
          continue;
        float S = std::sin(Phi), C = std::cos(Phi);
        AccRe = KTab[J * 3 + 1] * C + AccRe;
        AccRe = KTab[J * 3 + 2] * S + AccRe;
        AccIm = KTab[J * 3 + 2] * C + AccIm;
        AccIm = AccIm - KTab[J * 3 + 1] * S;
      }
      Re[V] = AccRe;
      Im[V] = AccIm;
    }
    return checkF32Buffer(Dev, DRe, Re, 2e-3f, 2e-3f, Error) &&
           checkF32Buffer(Dev, DIm, Im, 2e-3f, 2e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getMriFhdWorkload() {
  static const Workload W{"mri-fhd", "mrifhd", WorkloadClass::Divergent,
                          Source, make};
  return W;
}
