//===- workloads/BinomialOptions.cpp - Binomial tree pricing --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// One CTA prices one option by backward induction over a 127-step binomial
/// tree; each thread carries four adjacent nodes in registers (as the SDK
/// kernel caches nodes per thread) and exchanges only its left boundary
/// through a double-buffered shared slot, synchronizing once per step.
/// Uniform control flow with very frequent synchronization — the
/// barrier-heavy profile with a large execution-manager fraction (Fig. 9).
///
/// Values past the shrinking valid front are computed from stale
/// neighbours, but node k at induction step i is only read when k <= i, so
/// the garbage never reaches node 0.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr uint32_t Steps = 127;            // leaves = Steps + 1 = 128
constexpr uint32_t NodesPerThread = 4;
constexpr uint32_t CtaSize = 32;           // 32 threads x 4 nodes

const char *Source = R"(
.kernel binomial (.param .u64 spots, .param .u64 strikes, .param .u64 out,
                  .param .f32 tyears, .param .f32 rrate, .param .f32 vol)
{
  .shared .b8 edges[272];   // two 33-float boundary buffers
  .reg .u32 %j, %i, %node;
  .reg .s32 %twoj;
  .reg .u64 %addr, %base, %off, %sa, %sa0, %sa1, %saswap, %rda;
  .reg .f32 %s, %x, %t, %r, %v, %dt, %vsdt, %a, %u, %d;
  .reg .f32 %pu, %pd, %pudf, %pddf, %leaf, %nb, %tmp;
  .reg .f32 %v0, %v1, %v2, %v3;
  .reg .pred %ploop, %pzero;

entry:
  mov.u32 %j, %tid.x;
  cvt.u64.u32 %off, %ctaid.x;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [spots];
  add.u64 %addr, %base, %off;
  ld.global.f32 %s, [%addr];
  ld.param.u64 %base, [strikes];
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  ld.param.f32 %t, [tyears];
  ld.param.f32 %r, [rrate];
  ld.param.f32 %v, [vol];

  // dt = t/steps; u = exp(v sqrt(dt)); d = 1/u; a = exp(r dt)
  mul.f32 %dt, %t, 0.007874016;
  sqrt.f32 %vsdt, %dt;
  mul.f32 %vsdt, %vsdt, %v;
  mul.f32 %tmp, %vsdt, 1.44269504;
  ex2.f32 %u, %tmp;
  rcp.f32 %d, %u;
  mul.f32 %tmp, %r, %dt;
  mul.f32 %tmp, %tmp, 1.44269504;
  ex2.f32 %a, %tmp;
  sub.f32 %pu, %a, %d;
  sub.f32 %tmp, %u, %d;
  div.f32 %pu, %pu, %tmp;
  sub.f32 %pd, 1.0, %pu;
  rcp.f32 %tmp, %a;
  mul.f32 %pudf, %pu, %tmp;
  mul.f32 %pddf, %pd, %tmp;

  // Register-carried leaves: nodes 4j .. 4j+3.
  shl.u32 %node, %j, 2;
  cvt.s32.u32 %twoj, %node;
  shl.s32 %twoj, %twoj, 1;
  sub.s32 %twoj, %twoj, 127;
  cvt.f32.s32 %leaf, %twoj;
  mul.f32 %leaf, %leaf, %vsdt;
  mul.f32 %leaf, %leaf, 1.44269504;
  ex2.f32 %leaf, %leaf;
  mul.f32 %tmp, %vsdt, 2.88539008;  // exp(2 vsdt) per node step
  ex2.f32 %tmp, %tmp;
  mul.f32 %v0, %leaf, %s;
  mul.f32 %v1, %v0, %tmp;
  mul.f32 %v2, %v1, %tmp;
  mul.f32 %v3, %v2, %tmp;
  sub.f32 %v0, %v0, %x;
  max.f32 %v0, %v0, 0.0;
  sub.f32 %v1, %v1, %x;
  max.f32 %v1, %v1, 0.0;
  sub.f32 %v2, %v2, %x;
  max.f32 %v2, %v2, 0.0;
  sub.f32 %v3, %v3, %x;
  max.f32 %v3, %v3, 0.0;

  // Double-buffered boundary exchange: sa alternates between the buffers.
  cvt.u64.u32 %sa0, %j;
  shl.u64 %sa0, %sa0, 2;
  add.u64 %sa1, %sa0, 136;
  xor.u64 %saswap, %sa0, %sa1;
  mov.u64 %sa, %sa0;
  mov.u32 %i, 127;
  bra loop;

loop:
  // Publish the left boundary, sync once, read the right neighbour's.
  st.shared.f32 [%sa], %v0;
  bar.sync;
  add.u64 %rda, %sa, 4;
  ld.shared.f32 %nb, [%rda];
  mul.f32 %tmp, %pddf, %v0;
  mad.f32 %v0, %pudf, %v1, %tmp;
  mul.f32 %tmp, %pddf, %v1;
  mad.f32 %v1, %pudf, %v2, %tmp;
  mul.f32 %tmp, %pddf, %v2;
  mad.f32 %v2, %pudf, %v3, %tmp;
  mul.f32 %tmp, %pddf, %v3;
  mad.f32 %v3, %pudf, %nb, %tmp;
  xor.u64 %sa, %sa, %saswap;
  sub.u32 %i, %i, 1;
  setp.gt.u32 %ploop, %i, 0;
  @%ploop bra loop, fin;

fin:
  setp.eq.u32 %pzero, %tid.x, 0;
  @!%pzero bra done, writeout;
writeout:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %ctaid.x;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %v0;
  bra done;
done:
  ret;
}
)";
std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t Options = 16 * Scale;
  const float T = 2.0f, R = 0.02f, V = 0.30f;
  Inst->Dev = std::make_unique<Device>(1 << 20);
  Inst->Block = {CtaSize, 1, 1};
  Inst->Grid = {Options, 1, 1};

  RNG Rng(0x5eed03);
  std::vector<float> S(Options), X(Options);
  for (uint32_t I = 0; I < Options; ++I) {
    S[I] = Rng.nextFloat(5.0f, 30.0f);
    X[I] = Rng.nextFloat(1.0f, 100.0f);
  }
  uint64_t DS = Inst->Dev->allocArray<float>(Options);
  uint64_t DX = Inst->Dev->allocArray<float>(Options);
  uint64_t DOut = Inst->Dev->allocArray<float>(Options);
  Inst->Dev->upload(DS, S);
  Inst->Dev->upload(DX, X);
  Inst->Params.u64(DS).u64(DX).u64(DOut).f32(T).f32(R)
      .f32(V);

  Inst->Check = [=, S = std::move(S),
                 X = std::move(X)](Device &Dev, std::string &Error) {
    const uint32_t Leaves = CtaSize * NodesPerThread;
    std::vector<float> Ref(Options);
    for (uint32_t O = 0; O < Options; ++O) {
      float Dt = T * 0.007874016f;
      float Vsdt = std::sqrt(Dt) * V;
      float U = std::exp2(Vsdt * 1.44269504f);
      float D = 1.0f / U;
      float A = std::exp2(R * Dt * 1.44269504f);
      float Pu = (A - D) / (U - D);
      float Pd = 1.0f - Pu;
      float InvA = 1.0f / A;
      float PuDf = Pu * InvA, PdDf = Pd * InvA;
      std::vector<float> Vals(Leaves);
      float Step = std::exp2(Vsdt * 2.88539008f);
      for (uint32_t J = 0; J < CtaSize; ++J) {
        uint32_t Node = J * 4;
        float Leaf =
            std::exp2(static_cast<float>(2 * static_cast<int>(Node) - 127) *
                      Vsdt * 1.44269504f) *
            S[O];
        for (uint32_t K = 0; K < 4; ++K) {
          Vals[Node + K] = std::max(Leaf - X[O], 0.0f);
          Leaf = Leaf * Step;
        }
      }
      for (uint32_t I = Steps; I >= 1; --I)
        for (uint32_t K = 0; K < I; ++K)
          Vals[K] = PuDf * Vals[K + 1] + PdDf * Vals[K];
      Ref[O] = Vals[0];
    }
    return checkF32Buffer(Dev, DOut, Ref, 5e-3f, 5e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getBinomialOptionsWorkload() {
  static const Workload W{"BinomialOptions", "binomial",
                          WorkloadClass::BarrierHeavy, Source, make};
  return W;
}
