//===- workloads/Transpose.cpp - Tiled matrix transpose -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// 16x16 tiled transpose through shared memory with one barrier per tile:
/// pure data movement, the floor case of Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel transpose (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .shared .b8 tile[1024];   // 16x16 f32
  .reg .u32 %tx, %ty, %xi, %yi, %xo, %yo, %np, %n, %idx;
  .reg .u64 %addr, %base, %off, %saddr;
  .reg .f32 %v;

entry:
  mov.u32 %tx, %tid.x;
  mov.u32 %ty, %tid.y;
  mov.u32 %xi, %tx;
  mad.u32 %xi, %ntid.x, %ctaid.x, %xi;
  mov.u32 %yi, %ty;
  mad.u32 %yi, %ntid.y, %ctaid.y, %yi;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;

  // tile[ty][tx] = in[yi][xi]
  mad.u32 %idx, %yi, %n, %xi;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [in];
  add.u64 %addr, %base, %off;
  ld.global.f32 %v, [%addr];
  mov.u32 %idx, %ty;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %tx;
  cvt.u64.u32 %saddr, %idx;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %v;
  bar.sync;

  // out[xo..][yo..] with transposed block coordinates: the thread writes
  // out[(ctaid.x*16 + ty)][(ctaid.y*16 + tx)] = tile[tx][ty].
  mov.u32 %xo, %tx;
  mad.u32 %xo, %ntid.y, %ctaid.y, %xo;
  mov.u32 %yo, %ty;
  mad.u32 %yo, %ntid.x, %ctaid.x, %yo;
  mov.u32 %idx, %tx;
  shl.u32 %idx, %idx, 4;
  add.u32 %idx, %idx, %ty;
  cvt.u64.u32 %saddr, %idx;
  shl.u64 %saddr, %saddr, 2;
  ld.shared.f32 %v, [%saddr];
  mad.u32 %idx, %yo, %n, %xo;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %v;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 64 * Scale; // multiple of 16
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * N * 8 +
                                       4096);
  Inst->Block = {16, 16, 1};
  Inst->Grid = {N / 16, N / 16, 1};

  RNG Rng(0x5eed0e);
  std::vector<float> In(N * N);
  for (auto &V : In)
    V = Rng.nextFloat(-100.0f, 100.0f);
  uint64_t DIn = Inst->Dev->allocArray<float>(N * N);
  uint64_t DOut = Inst->Dev->allocArray<float>(N * N);
  Inst->Dev->upload(DIn, In);
  Inst->Params.u64(DIn).u64(DOut).u32(N);

  Inst->Check = [=, In = std::move(In)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N * N);
    for (uint32_t Y = 0; Y < N; ++Y)
      for (uint32_t X = 0; X < N; ++X)
        Ref[X * N + Y] = In[Y * N + X];
    return checkF32Buffer(Dev, DOut, Ref, 0, 0, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getTransposeWorkload() {
  static const Workload W{"Transpose", "transpose",
                          WorkloadClass::MemoryBound, Source, make};
  return W;
}
