//===- workloads/Throughput.cpp - Peak-FLOP microbenchmark ----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The Table 1 microbenchmark: "back-to-back floating point multiply and
/// adds within a heavily unrolled loop launched over 576 threads". Eight
/// independent accumulators hide the pipeline; the 4x-unrolled body issues
/// 32 mads per loop iteration. The ~10 live f32 values per thread exceed
/// the 16-register file at warp size 8, triggering the register-pressure
/// collapse the paper reports.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

std::string buildSource() {
  std::string S = R"(
.kernel throughput (.param .u64 out, .param .u32 iters)
{
  .reg .u32 %gid, %i, %n, %itp;
  .reg .u64 %addr, %base, %off;
  .reg .f32 %a<8>;
  .reg .f32 %b, %c, %sum;
  .reg .pred %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %itp, [iters];
  mov.u32 %n, %itp;
  mov.f32 %b, 1.000001;
  mov.f32 %c, 0.999999;
  cvt.f32.u32 %a0, %gid;
  mul.f32 %a0, %a0, 0.001;
  add.f32 %a1, %a0, 0.125;
  add.f32 %a2, %a0, 0.25;
  add.f32 %a3, %a0, 0.375;
  add.f32 %a4, %a0, 0.5;
  add.f32 %a5, %a0, 0.625;
  add.f32 %a6, %a0, 0.75;
  add.f32 %a7, %a0, 0.875;
  mov.u32 %i, 0;
  bra loop;
loop:
)";
  // 4x unrolled: 32 independent mads per iteration.
  for (int Unroll = 0; Unroll < 4; ++Unroll)
    for (int Acc = 0; Acc < 8; ++Acc)
      S += formatString("  mad.f32 %%a%d, %%a%d, %%b, %%c;\n", Acc, Acc);
  S += R"(  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %n;
  @%p bra loop, done;
done:
  add.f32 %sum, %a0, %a1;
  add.f32 %sum, %sum, %a2;
  add.f32 %sum, %sum, %a3;
  add.f32 %sum, %sum, %a4;
  add.f32 %sum, %sum, %a5;
  add.f32 %sum, %sum, %a6;
  add.f32 %sum, %sum, %a7;
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %sum;
  ret;
}
)";
  return S;
}

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  Inst->Dev = std::make_unique<Device>(1 << 20);
  // The paper launches 576 threads; 12 CTAs of 48 balance over 4 workers.
  const uint32_t Threads = 576;
  const uint32_t Iters = 50 * Scale;
  Inst->Block = {48, 1, 1};        // 12 CTAs balance over 4 workers
  Inst->Grid = {Threads / 48, 1, 1};
  uint64_t Out = Inst->Dev->allocArray<float>(Threads);
  Inst->Params.u64(Out).u32(Iters);

  Inst->Check = [Out, Threads, Iters](Device &Dev, std::string &Error) {
    std::vector<float> Ref(Threads);
    for (uint32_t T = 0; T < Threads; ++T) {
      float A[8];
      A[0] = static_cast<float>(T) * 0.001f;
      for (int K = 1; K < 8; ++K)
        A[K] = A[0] + 0.125f * static_cast<float>(K);
      for (uint32_t I = 0; I < Iters; ++I)
        for (int U = 0; U < 4; ++U)
          for (int K = 0; K < 8; ++K)
            A[K] = A[K] * 1.000001f + 0.999999f;
      float Sum = A[0];
      for (int K = 1; K < 8; ++K)
        Sum += A[K];
      Ref[T] = Sum;
    }
    return checkF32Buffer(Dev, Out, Ref, 1e-4f, 1e-3f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getThroughputWorkload() {
  static const std::string Source = buildSource();
  static const Workload W{"Throughput", "throughput",
                          WorkloadClass::ComputeUniform, Source.c_str(),
                          make};
  return W;
}
