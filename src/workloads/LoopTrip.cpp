//===- workloads/LoopTrip.cpp - Uncorrelated loop-trip divergence ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Per-thread loop whose trip count is a hash of the thread id (1..256,
/// uncorrelated between adjacent lanes): every warp keeps iterating until
/// its slowest lane finishes, paying a divergent yield on nearly every
/// iteration. This is the worst case for wide warps — divergence cuts the
/// width-8-over-width-1 advantage to ~2.8x where streaming kernels see the
/// full lane-count win (contrast with Mandelbrot, whose divergence is
/// spatially correlated).
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel looptrip (.param .u64 out, .param .u32 n)
{
  .reg .u32 %gid, %n, %h, %trips, %i, %acc;
  .reg .u64 %addr, %base, %off;
  .reg .pred %p, %pn;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %n, [n];
  setp.lt.u32 %pn, %gid, %n;
  @%pn bra work, done;

work:
  // Knuth multiplicative hash of the thread id; the top 8 bits give an
  // uncorrelated trip count in 1..256.
  mov.u32 %h, %gid;
  mul.u32 %h, %h, 2654435761;
  shr.u32 %trips, %h, 24;
  add.u32 %trips, %trips, 1;
  mov.u32 %i, 0;
  mov.u32 %acc, %gid;
  bra loop;

loop:
  mul.u32 %acc, %acc, 1664525;
  add.u32 %acc, %acc, 1013904223;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %trips;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  bra done;

done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 4096 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 4 + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Params.u64(DOut).u32(N);

  Inst->Check = [=](Device &Dev, std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t G = 0; G < N; ++G) {
      uint32_t Trips = ((G * 2654435761u) >> 24) + 1;
      uint32_t Acc = G;
      for (uint32_t I = 0; I < Trips; ++I)
        Acc = Acc * 1664525u + 1013904223u;
      Ref[G] = Acc;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getLoopTripWorkload() {
  static const Workload W{"LoopTrip", "looptrip", WorkloadClass::Divergent,
                          Source, make};
  return W;
}
