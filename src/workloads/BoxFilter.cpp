//===- workloads/BoxFilter.cpp - 1D box filter over shared tiles ----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Radius-4 box filter: each CTA stages a 128-element tile plus halo in
/// shared memory, synchronizes, then averages nine neighbours. Dominated by
/// replicated loads with two barriers per tile — the memory-bound,
/// frequently-synchronizing profile pinned near 1.0x in Figure 6.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

constexpr int Radius = 4;

const char *Source = R"(
.kernel boxfilter (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .shared .b8 tile[544];   // (128 + 2*4) floats
  .reg .u32 %tid0, %gid, %np, %n, %idx, %halo;
  .reg .s32 %sidx;
  .reg .u64 %addr, %base, %off, %saddr;
  .reg .f32 %x, %acc;
  .reg .pred %p, %phl, %phr;

entry:
  mov.u32 %tid0, %tid.x;
  mov.u32 %gid, %tid0;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  ld.param.u64 %base, [in];

  // Center element -> tile[tid + R], global index clamped to [0, n-1].
  sub.u32 %halo, %n, 1;
  min.u32 %idx, %gid, %halo;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  add.u32 %halo, %tid0, 4;
  cvt.u64.u32 %saddr, %halo;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;

  // Left halo: threads 0..R-1 load tile[tid], global index gid - R clamped.
  setp.lt.u32 %phl, %tid0, 4;
  @%phl bra lhalo, afterlh;
lhalo:
  cvt.s32.u32 %sidx, %gid;
  sub.s32 %sidx, %sidx, 4;
  max.s32 %sidx, %sidx, 0;
  cvt.u64.s32 %off, %sidx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;
  bra afterlh;
afterlh:
  // Right halo: last R threads load tile[tid + 2R], index gid + R clamped.
  mov.u32 %idx, %ntid.x;
  sub.u32 %idx, %idx, 4;
  setp.ge.u32 %phr, %tid0, %idx;
  @%phr bra rhalo, afterrh;
rhalo:
  add.u32 %idx, %gid, 4;
  sub.u32 %halo, %n, 1;
  min.u32 %idx, %idx, %halo;
  cvt.u64.u32 %off, %idx;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.f32 %x, [%addr];
  add.u32 %halo, %tid0, 8;
  cvt.u64.u32 %saddr, %halo;
  shl.u64 %saddr, %saddr, 2;
  st.shared.f32 [%saddr], %x;
  bra afterrh;
afterrh:
  bar.sync;

  // Average tile[tid .. tid + 2R].
  setp.ge.u32 %p, %gid, %n;
  @%p bra done, compute;
compute:
  cvt.u64.u32 %saddr, %tid0;
  shl.u64 %saddr, %saddr, 2;
  mov.f32 %acc, 0.0;
  ld.shared.f32 %x, [%saddr+0];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+4];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+8];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+12];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+16];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+20];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+24];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+28];
  add.f32 %acc, %acc, %x;
  ld.shared.f32 %x, [%saddr+32];
  add.f32 %acc, %acc, %x;
  mul.f32 %acc, %acc, 0.111111111;
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.f32 [%addr], %acc;
  bra done;
done:
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 8192 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 8 + 4096);
  Inst->Block = {128, 1, 1};
  Inst->Grid = {(N + 127) / 128, 1, 1};

  RNG Rng(0x5eed04);
  std::vector<float> In(N);
  for (uint32_t I = 0; I < N; ++I)
    In[I] = Rng.nextFloat(0.0f, 1.0f);
  uint64_t DIn = Inst->Dev->allocArray<float>(N);
  uint64_t DOut = Inst->Dev->allocArray<float>(N);
  Inst->Dev->upload(DIn, In);
  Inst->Params.u64(DIn).u64(DOut).u32(N);

  Inst->Check = [=, In = std::move(In)](Device &Dev, std::string &Error) {
    std::vector<float> Ref(N);
    for (uint32_t I = 0; I < N; ++I) {
      float Acc = 0;
      for (int D = -Radius; D <= Radius; ++D) {
        int J = static_cast<int>(I) + D;
        // The kernel's halo staging clamps at tile granularity: left halo
        // clamps gid-R at 0, right halo clamps gid+R at n-1, centers use
        // their own element.
        J = std::max(J, 0);
        J = std::min(J, static_cast<int>(N) - 1);
        Acc += In[static_cast<uint32_t>(J)];
      }
      Ref[I] = Acc * 0.111111111f;
    }
    return checkF32Buffer(Dev, DOut, Ref, 1e-4f, 1e-5f, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getBoxFilterWorkload() {
  static const Workload W{"BoxFilter", "boxfilter",
                          WorkloadClass::MemoryBound, Source, make};
  return W;
}
