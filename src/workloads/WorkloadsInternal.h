//===- workloads/WorkloadsInternal.h - Suite internals ----------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_LIB_WORKLOADS_WORKLOADSINTERNAL_H
#define SIMTVEC_LIB_WORKLOADS_WORKLOADSINTERNAL_H

#include "simtvec/support/Format.h"
#include "simtvec/support/RNG.h"
#include "simtvec/workloads/Workloads.h"

#include <cmath>

namespace simtvec {

// One accessor per workload translation unit.
const Workload &getThroughputWorkload();
const Workload &getVectorAddWorkload();
const Workload &getBlackScholesWorkload();
const Workload &getBinomialOptionsWorkload();
const Workload &getBoxFilterWorkload();
const Workload &getScalarProdWorkload();
const Workload &getSobolQRNGWorkload();
const Workload &getMersenneTwisterWorkload();
const Workload &getMatrixMulWorkload();
const Workload &getNbodyWorkload();
const Workload &getCpWorkload();
const Workload &getMriQWorkload();
const Workload &getMriFhdWorkload();
const Workload &getReductionWorkload();
const Workload &getScanWorkload();
const Workload &getHistogram64Workload();
const Workload &getTransposeWorkload();
const Workload &getBitonicWorkload();
const Workload &getFastWalshWorkload();
const Workload &getMonteCarloWorkload();
const Workload &getMandelbrotWorkload();
const Workload &getConvolutionSeparableWorkload();
const Workload &getLoopTripWorkload();
const Workload &getBfsWorkload();
const Workload &getSpmvWorkload();

/// Compares a device f32 buffer against \p Ref with mixed tolerance.
inline bool checkF32Buffer(Device &Dev, uint64_t Addr,
                           const std::vector<float> &Ref, float RelTol,
                           float AbsTol, std::string &Error) {
  std::vector<float> Got = Dev.download<float>(Addr, Ref.size());
  for (size_t I = 0; I < Ref.size(); ++I) {
    float Diff = std::fabs(Got[I] - Ref[I]);
    float Bound = AbsTol + RelTol * std::fabs(Ref[I]);
    if (!(Diff <= Bound)) { // catches NaN as well
      Error = formatString("element %zu: got %g, expected %g", I,
                           static_cast<double>(Got[I]),
                           static_cast<double>(Ref[I]));
      return false;
    }
  }
  return true;
}

/// Compares a device u32 buffer exactly.
inline bool checkU32Buffer(Device &Dev, uint64_t Addr,
                           const std::vector<uint32_t> &Ref,
                           std::string &Error) {
  std::vector<uint32_t> Got = Dev.download<uint32_t>(Addr, Ref.size());
  for (size_t I = 0; I < Ref.size(); ++I) {
    if (Got[I] != Ref[I]) {
      Error = formatString("element %zu: got %u, expected %u", I, Got[I],
                           Ref[I]);
      return false;
    }
  }
  return true;
}

} // namespace simtvec

#endif // SIMTVEC_LIB_WORKLOADS_WORKLOADSINTERNAL_H
