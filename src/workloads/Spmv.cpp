//===- workloads/Spmv.cpp - SpMV-style irregular accumulation -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Sparse matrix-vector product over a synthetic CSR matrix with 0..15
/// non-zeros per row (hashed from the row id) and a parity-dependent weight
/// on every element: even columns contribute 2*v*x[c], odd columns 3*v*x[c].
/// The weight diamond has structurally identical arms that differ only in an
/// immediate — the textbook melding case, where the two `mul`s collapse to a
/// single instruction plus an operand select — and the variable-trip row
/// loop turns into a masked self-loop once the diamond is flattened.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel spmv_cond (.param .u64 rowptr, .param .u64 cols, .param .u64 vals, .param .u64 x, .param .u32 n, .param .u64 out)
{
  .reg .u32 %gid, %n, %start, %end, %i, %c, %v, %xv, %w, %par, %acc;
  .reg .u64 %rp, %cl, %vl, %xp, %base, %off, %addr;
  .reg .pred %pn, %pd, %pc, %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %n, [n];
  setp.lt.u32 %pn, %gid, %n;
  @%pn bra work, done;

work:
  ld.param.u64 %rp, [rowptr];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %rp, %off;
  ld.global.u32 %start, [%addr];
  add.u64 %addr, %addr, 4;
  ld.global.u32 %end, [%addr];
  mov.u32 %acc, 0;
  mov.u32 %i, %start;
  setp.lt.u32 %pd, %i, %end;
  @%pd bra loop, store;

loop:
  ld.param.u64 %cl, [cols];
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %cl, %off;
  ld.global.u32 %c, [%addr];
  ld.param.u64 %vl, [vals];
  add.u64 %addr, %vl, %off;
  ld.global.u32 %v, [%addr];
  ld.param.u64 %xp, [x];
  cvt.u64.u32 %off, %c;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %xp, %off;
  ld.global.u32 %xv, [%addr];
  and.u32 %par, %c, 1;
  setp.eq.u32 %pc, %par, 0;
  @%pc bra even, odd;

even:
  mul.u32 %w, %v, 2;
  bra acc;

odd:
  mul.u32 %w, %v, 3;
  bra acc;

acc:
  mad.u32 %acc, %w, %xv, %acc;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %end;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  bra done;

done:
  ret;
}
)";

uint32_t hashU32(uint32_t X) {
  X ^= X >> 16;
  X *= 0x7feb352du;
  X ^= X >> 15;
  X *= 0x846ca68bu;
  X ^= X >> 16;
  return X;
}

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 4096 * Scale;

  // Synthetic CSR: nnz(row) = hash(row) & 15; u32 values, wrap-around math.
  std::vector<uint32_t> RowPtr(N + 1);
  uint32_t Nnz = 0;
  for (uint32_t R = 0; R < N; ++R) {
    RowPtr[R] = Nnz;
    Nnz += hashU32(R ^ 0x5bd1e995u) & 15u;
  }
  RowPtr[N] = Nnz;
  std::vector<uint32_t> Cols(Nnz), Vals(Nnz);
  for (uint32_t R = 0; R < N; ++R)
    for (uint32_t K = RowPtr[R]; K < RowPtr[R + 1]; ++K) {
      Cols[K] = hashU32(R * 40503u + K) % N;
      Vals[K] = hashU32(K + 0x27d4eb2fu) & 0xffu;
    }
  std::vector<uint32_t> X(N);
  for (uint32_t I = 0; I < N; ++I)
    X[I] = hashU32(I + 0x165667b1u) & 0xffu;

  size_t Bytes = (static_cast<size_t>(N) * 3 + Nnz * 2 + 1) * 4 + 4096;
  Inst->Dev = std::make_unique<Device>(Bytes);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};
  uint64_t DRowPtr = Inst->Dev->allocArray<uint32_t>(N + 1);
  uint64_t DCols = Inst->Dev->allocArray<uint32_t>(Nnz ? Nnz : 1);
  uint64_t DVals = Inst->Dev->allocArray<uint32_t>(Nnz ? Nnz : 1);
  uint64_t DX = Inst->Dev->allocArray<uint32_t>(N);
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Dev->upload(DRowPtr, RowPtr);
  Inst->Dev->upload(DCols, Cols);
  Inst->Dev->upload(DVals, Vals);
  Inst->Dev->upload(DX, X);
  Inst->Params.u64(DRowPtr).u64(DCols).u64(DVals).u64(DX).u32(N).u64(DOut);

  Inst->Check = [=](Device &Dev, std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t R = 0; R < N; ++R) {
      uint32_t Acc = 0;
      for (uint32_t K = RowPtr[R]; K < RowPtr[R + 1]; ++K) {
        uint32_t W = Vals[K] * ((Cols[K] & 1u) ? 3u : 2u);
        Acc += W * X[Cols[K]];
      }
      Ref[R] = Acc;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getSpmvWorkload() {
  static const Workload W{"Spmv", "spmv_cond", WorkloadClass::Divergent,
                          Source, make};
  return W;
}
