//===- workloads/MersenneTwister.cpp - Irregular per-thread RNG -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A Mersenne-Twister-style generator whose update path branches on the low
/// state bit — uncorrelated across threads, so warps shatter at nearly
/// every iteration. This is the pathological case of Figure 6: dynamic warp
/// formation keeps re-merging threads that immediately re-diverge, paying a
/// yield round-trip each time, while the scalar baseline (and static warp
/// formation, Figure 10) runs the branches natively.
///
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

using namespace simtvec;

namespace {

const char *Source = R"(
.kernel mtwister (.param .u64 seeds, .param .u64 out, .param .u32 rounds)
{
  .reg .u32 %gid, %state, %acc, %i, %nr, %np, %t;
  .reg .u64 %addr, %base, %off;
  .reg .pred %podd, %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [rounds];
  mov.u32 %nr, %np;
  ld.param.u64 %base, [seeds];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.u32 %state, [%addr];
  mov.u32 %acc, 0;
  mov.u32 %i, 0;
  bra loop;

loop:
  and.u32 %t, %state, 1;
  setp.eq.u32 %podd, %t, 1;
  @%podd bra odd, even;
odd:
  // Twist with the MT19937 matrix constant plus tempering.
  shr.u32 %state, %state, 1;
  xor.u32 %state, %state, 0x9908B0DF;
  shr.u32 %t, %state, 11;
  xor.u32 %state, %state, %t;
  shl.u32 %t, %state, 7;
  and.u32 %t, %t, 0x9D2C5680;
  xor.u32 %state, %state, %t;
  bra join;
even:
  shr.u32 %state, %state, 1;
  xor.u32 %state, %state, 0x6C078965;
  bra join;
join:
  add.u32 %acc, %acc, %state;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %nr;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  ret;
}
)";

std::unique_ptr<WorkloadInstance> make(uint32_t Scale) {
  auto Inst = std::make_unique<WorkloadInstance>();
  const uint32_t N = 2048;
  const uint32_t Rounds = 48 * Scale;
  Inst->Dev = std::make_unique<Device>(static_cast<size_t>(N) * 8 + 4096);
  Inst->Block = {64, 1, 1};
  Inst->Grid = {N / 64, 1, 1};

  RNG Rng(0x5eed06);
  std::vector<uint32_t> Seeds(N);
  for (uint32_t I = 0; I < N; ++I)
    Seeds[I] = static_cast<uint32_t>(Rng.next()) | 1u;
  uint64_t DSeeds = Inst->Dev->allocArray<uint32_t>(N);
  uint64_t DOut = Inst->Dev->allocArray<uint32_t>(N);
  Inst->Dev->upload(DSeeds, Seeds);
  Inst->Params.u64(DSeeds).u64(DOut).u32(Rounds);

  Inst->Check = [=, Seeds = std::move(Seeds)](Device &Dev,
                                              std::string &Error) {
    std::vector<uint32_t> Ref(N);
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t State = Seeds[I], Acc = 0;
      for (uint32_t R = 0; R < Rounds; ++R) {
        if (State & 1) {
          State >>= 1;
          State ^= 0x9908B0DFu;
          State ^= State >> 11;
          State ^= (State << 7) & 0x9D2C5680u;
        } else {
          State >>= 1;
          State ^= 0x6C078965u;
        }
        Acc += State;
      }
      Ref[I] = Acc;
    }
    return checkU32Buffer(Dev, DOut, Ref, Error);
  };
  return Inst;
}

} // namespace

const Workload &simtvec::getMersenneTwisterWorkload() {
  static const Workload W{"MersenneTwister", "mtwister",
                          WorkloadClass::Divergent, Source, make};
  return W;
}
