//===- ir/Opcode.cpp - SVIR opcode properties -----------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Opcode.h"

#include <cassert>

using namespace simtvec;

const char *simtvec::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Mad:
    return "mad";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Neg:
    return "neg";
  case Opcode::Abs:
    return "abs";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Not:
    return "not";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Setp:
    return "setp";
  case Opcode::Selp:
    return "selp";
  case Opcode::Cvt:
    return "cvt";
  case Opcode::Rcp:
    return "rcp";
  case Opcode::Sqrt:
    return "sqrt";
  case Opcode::Rsqrt:
    return "rsqrt";
  case Opcode::Sin:
    return "sin";
  case Opcode::Cos:
    return "cos";
  case Opcode::Lg2:
    return "lg2";
  case Opcode::Ex2:
    return "ex2";
  case Opcode::Ld:
    return "ld";
  case Opcode::St:
    return "st";
  case Opcode::AtomAdd:
    return "atom.add";
  case Opcode::Bra:
    return "bra";
  case Opcode::Ret:
    return "ret";
  case Opcode::BarSync:
    return "bar.sync";
  case Opcode::InsertElement:
    return "insertelement";
  case Opcode::ExtractElement:
    return "extractelement";
  case Opcode::Broadcast:
    return "broadcast";
  case Opcode::Iota:
    return "iota";
  case Opcode::VoteSum:
    return "vote.sum";
  case Opcode::Switch:
    return "switch";
  case Opcode::Spill:
    return "spill";
  case Opcode::Restore:
    return "restore";
  case Opcode::SetRPoint:
    return "set.rpoint";
  case Opcode::SetRStatus:
    return "set.rstatus";
  case Opcode::Yield:
    return "yield";
  case Opcode::Membar:
    return "membar";
  case Opcode::Trap:
    return "trap";
  }
  assert(false && "unknown opcode");
  return "?";
}

const char *simtvec::cmpOpName(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return "eq";
  case CmpOp::Ne:
    return "ne";
  case CmpOp::Lt:
    return "lt";
  case CmpOp::Le:
    return "le";
  case CmpOp::Gt:
    return "gt";
  case CmpOp::Ge:
    return "ge";
  }
  assert(false && "unknown cmp op");
  return "?";
}

const char *simtvec::addressSpaceName(AddressSpace Space) {
  switch (Space) {
  case AddressSpace::Global:
    return "global";
  case AddressSpace::Shared:
    return "shared";
  case AddressSpace::Local:
    return "local";
  case AddressSpace::Param:
    return "param";
  }
  assert(false && "unknown address space");
  return "?";
}

bool simtvec::isVectorizable(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Mad:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Not:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Setp:
  case Opcode::Selp:
  case Opcode::Cvt:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
    return true;
  default:
    return false;
  }
}

bool simtvec::isMemoryOp(Opcode Op) {
  return Op == Opcode::Ld || Op == Opcode::St || Op == Opcode::AtomAdd;
}

bool simtvec::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Bra:
  case Opcode::Ret:
  case Opcode::Switch:
  case Opcode::Yield:
  case Opcode::Trap:
    return true;
  default:
    return false;
  }
}

bool simtvec::isTranscendental(Opcode Op) {
  switch (Op) {
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
    return true;
  default:
    return false;
  }
}

bool simtvec::hasResult(Opcode Op) {
  switch (Op) {
  case Opcode::St:
  case Opcode::Bra:
  case Opcode::Ret:
  case Opcode::BarSync:
  case Opcode::Switch:
  case Opcode::Spill:
  case Opcode::SetRPoint:
  case Opcode::SetRStatus:
  case Opcode::Yield:
  case Opcode::Membar:
  case Opcode::Trap:
    return false;
  default:
    return true;
  }
}

bool simtvec::hasSideEffects(Opcode Op) {
  switch (Op) {
  case Opcode::St:
  case Opcode::AtomAdd:
  case Opcode::BarSync:
  case Opcode::Spill:
  case Opcode::SetRPoint:
  case Opcode::SetRStatus:
  case Opcode::Membar:
    return true;
  default:
    return isTerminator(Op);
  }
}
