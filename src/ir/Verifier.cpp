//===- ir/Verifier.cpp - SVIR structural verifier -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Verifier.h"

#include "simtvec/ir/Module.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/support/Format.h"

using namespace simtvec;

namespace {

/// Verification context for one kernel.
class KernelVerifier {
public:
  explicit KernelVerifier(const Kernel &K) : K(K) {}

  Status run();

private:
  Status fail(const Instruction *I, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  Status checkBlock(uint32_t BlockIdx);
  Status checkInstruction(const Instruction &I);
  Status checkOperandType(const Instruction &I, const Operand &O,
                          Type Expected);
  Status checkTarget(const Instruction &I, uint32_t Target);

  /// Type of an operand as seen by the executing instruction.
  Expected<Type> operandType(const Instruction &I, const Operand &O);

  const Kernel &K;
  uint32_t CurrentBlock = 0;
};

} // namespace

Status KernelVerifier::fail(const Instruction *I, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Detail = formatStringV(Fmt, Args);
  va_end(Args);
  std::string Where =
      formatString("kernel '%s', block '%s'", K.Name.c_str(),
                   K.Blocks[CurrentBlock].Name.c_str());
  if (I)
    Where += ": " + printInstruction(K, *I);
  return Status::error(Where + ": " + Detail);
}

Expected<Type> KernelVerifier::operandType(const Instruction &I,
                                           const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::None:
    return Status::error("empty operand");
  case Operand::Kind::Reg:
    if (O.regId().Index >= K.Regs.size())
      return Status::error("register index out of range");
    return K.regType(O.regId());
  case Operand::Kind::Imm:
    return O.immType();
  case Operand::Kind::Special:
    return Type::u32();
  case Operand::Kind::Symbol: {
    size_t Count = 0;
    switch (O.symKind()) {
    case SymKind::Param:
      Count = K.Params.size();
      break;
    case SymKind::Shared:
      Count = K.SharedVars.size();
      break;
    case SymKind::Local:
      Count = K.LocalVars.size();
      break;
    }
    if (O.symIndex() >= Count)
      return Status::error("symbol index out of range");
    // Symbols evaluate to a byte offset within their space.
    return Type::u64();
  }
  }
  (void)I;
  return Status::error("unknown operand kind");
}

Status KernelVerifier::checkOperandType(const Instruction &I, const Operand &O,
                                        Type Expected) {
  auto TyOrErr = operandType(I, O);
  if (!TyOrErr)
    return fail(&I, "%s", TyOrErr.status().message().c_str());
  Type Ty = *TyOrErr;
  // Immediates and symbols coerce freely among same-width integer kinds;
  // register operands must match width and lane count exactly, and kind
  // except for signedness (PTX arithmetic is sign-agnostic at the register
  // level).
  if (O.isImm() || O.isSymbol() || O.isSpecial()) {
    // Immediates and symbols broadcast across lanes; special registers
    // evaluate per lane in vector instructions ("update thread ID
    // operands", Algorithm 1).
    if (Expected.isPred() != Ty.isPred())
      return fail(&I, "operand kind mismatch: predicate vs non-predicate");
    return Status::success();
  }
  if (Ty.lanes() != Expected.lanes())
    return fail(&I, "operand lane count %u, expected %u",
                static_cast<unsigned>(Ty.lanes()),
                static_cast<unsigned>(Expected.lanes()));
  if (Ty.isPred() != Expected.isPred())
    return fail(&I, "operand kind mismatch: predicate vs non-predicate");
  if (!Ty.isPred() && Ty.bitWidth() != Expected.bitWidth())
    return fail(&I, "operand bit width %u, expected %u",
                Ty.scalar().bitWidth(), Expected.scalar().bitWidth());
  if (Ty.isFloat() != Expected.isFloat())
    return fail(&I, "operand kind mismatch: float vs integer");
  return Status::success();
}

Status KernelVerifier::checkTarget(const Instruction &I, uint32_t Target) {
  if (Target >= K.Blocks.size())
    return fail(&I, "branch target out of range");
  return Status::success();
}

Status KernelVerifier::checkInstruction(const Instruction &I) {
  // Destination checks.
  if (simtvec::hasResult(I.Op)) {
    if (!I.Dst.isValid())
      return fail(&I, "missing destination register");
    if (I.Dst.Index >= K.Regs.size())
      return fail(&I, "destination register out of range");
  } else if (I.Dst.isValid()) {
    return fail(&I, "opcode cannot write a destination");
  }

  // Guard checks.
  if (I.Guard.isValid()) {
    if (I.Guard.Index >= K.Regs.size())
      return fail(&I, "guard register out of range");
    Type GTy = K.regType(I.Guard);
    if (!GTy.isPred() || GTy.isVector())
      return fail(&I, "guard must be a scalar predicate");
    if (I.Ty.isVector() && I.Op != Opcode::Bra)
      return fail(&I, "vector instructions may not be guarded");
  }

  Type Dst = I.hasResult() ? K.regType(I.Dst) : Type();
  auto expectSrcs = [&](size_t N) -> Status {
    if (I.Srcs.size() != N)
      return fail(&I, "expected %zu source operands, found %zu", N,
                  I.Srcs.size());
    return Status::success();
  };

  switch (I.Op) {
  case Opcode::Mov: {
    if (auto E = expectSrcs(1))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "mov destination type differs from operation type");
    return checkOperandType(I, I.Srcs[0], I.Ty);
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr: {
    if (auto E = expectSrcs(2))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "destination type differs from operation type");
    for (const Operand &O : I.Srcs)
      if (auto E = checkOperandType(I, O, I.Ty))
        return E;
    return Status::success();
  }
  case Opcode::Mad: {
    if (auto E = expectSrcs(3))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "destination type differs from operation type");
    for (const Operand &O : I.Srcs)
      if (auto E = checkOperandType(I, O, I.Ty))
        return E;
    return Status::success();
  }
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Not:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2: {
    if (auto E = expectSrcs(1))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "destination type differs from operation type");
    return checkOperandType(I, I.Srcs[0], I.Ty);
  }
  case Opcode::Setp: {
    if (auto E = expectSrcs(2))
      return E;
    if (!Dst.isPred() || Dst.lanes() != I.Ty.lanes())
      return fail(&I, "setp must write a predicate of matching lane count");
    for (const Operand &O : I.Srcs)
      if (auto E = checkOperandType(I, O, I.Ty))
        return E;
    return Status::success();
  }
  case Opcode::Selp: {
    if (auto E = expectSrcs(3))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "destination type differs from operation type");
    if (auto E = checkOperandType(I, I.Srcs[0], I.Ty))
      return E;
    if (auto E = checkOperandType(I, I.Srcs[1], I.Ty))
      return E;
    return checkOperandType(I, I.Srcs[2],
                            Type::pred().withLanes(I.Ty.lanes()));
  }
  case Opcode::Cvt: {
    if (auto E = expectSrcs(1))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "destination type differs from operation type");
    auto SrcTy = operandType(I, I.Srcs[0]);
    if (!SrcTy)
      return fail(&I, "%s", SrcTy.status().message().c_str());
    // Register sources must match lane-for-lane; immediates broadcast and
    // special registers evaluate per lane.
    if (I.Srcs[0].isReg() && SrcTy->lanes() != I.Ty.lanes())
      return fail(&I, "cvt source lane count differs from destination");
    if (SrcTy->isPred())
      return fail(&I, "cvt cannot convert predicates");
    return Status::success();
  }
  case Opcode::Ld: {
    if (auto E = expectSrcs(1))
      return E;
    if (I.Ty.isVector())
      return fail(&I, "loads are not vectorizable and must stay scalar");
    if (Dst.isVector() || Dst.isPred())
      return fail(&I, "load destination must be a scalar non-predicate");
    if (Dst.bitWidth() != I.Ty.bitWidth() && Dst.bitWidth() < I.Ty.bitWidth())
      return fail(&I, "load destination narrower than the element type");
    return Status::success();
  }
  case Opcode::St: {
    if (auto E = expectSrcs(2))
      return E;
    if (I.Ty.isVector())
      return fail(&I, "stores are not vectorizable and must stay scalar");
    auto ValTy = operandType(I, I.Srcs[1]);
    if (!ValTy)
      return fail(&I, "%s", ValTy.status().message().c_str());
    if (ValTy->isVector() || ValTy->isPred())
      return fail(&I, "stored value must be a scalar non-predicate");
    if (ValTy->isFloat() != I.Ty.isFloat())
      return fail(&I, "stored value kind mismatch: float vs integer");
    // Integer stores may truncate from a wider register (st.global.u8 from
    // a .u32, as in PTX).
    if (ValTy->bitWidth() < I.Ty.bitWidth())
      return fail(&I, "stored value narrower than the element type");
    return Status::success();
  }
  case Opcode::AtomAdd: {
    if (auto E = expectSrcs(2))
      return E;
    if (I.Space != AddressSpace::Global && I.Space != AddressSpace::Shared)
      return fail(&I, "atomics require the global or shared space");
    if (I.Ty.isVector())
      return fail(&I, "atomics must stay scalar");
    return checkOperandType(I, I.Srcs[1], I.Ty);
  }
  case Opcode::Bra: {
    if (auto E = checkTarget(I, I.Target))
      return E;
    if (I.Guard.isValid())
      return checkTarget(I, I.FalseTarget);
    return Status::success();
  }
  case Opcode::Ret:
  case Opcode::Yield:
  case Opcode::Trap:
  case Opcode::BarSync:
  case Opcode::Membar:
    return expectSrcs(0);
  case Opcode::Switch: {
    if (auto E = expectSrcs(1))
      return E;
    if (I.SwitchValues.size() != I.SwitchTargets.size())
      return fail(&I, "switch case arrays are not parallel");
    for (uint32_t T : I.SwitchTargets)
      if (auto E = checkTarget(I, T))
        return E;
    return checkTarget(I, I.SwitchDefault);
  }
  case Opcode::InsertElement: {
    if (auto E = expectSrcs(3))
      return E;
    if (!I.Ty.isVector() || Dst != I.Ty)
      return fail(&I, "insertelement must produce the vector type");
    if (auto E = checkOperandType(I, I.Srcs[0], I.Ty))
      return E;
    if (auto E = checkOperandType(I, I.Srcs[1], I.Ty.scalar()))
      return E;
    if (!I.Srcs[2].isImm())
      return fail(&I, "insertelement lane must be an immediate");
    if (I.Srcs[2].immInt() < 0 || I.Srcs[2].immInt() >= I.Ty.lanes())
      return fail(&I, "insertelement lane out of range");
    return Status::success();
  }
  case Opcode::ExtractElement: {
    if (auto E = expectSrcs(2))
      return E;
    if (I.Ty.isVector() || Dst != I.Ty)
      return fail(&I, "extractelement must produce the element type");
    auto SrcTy = operandType(I, I.Srcs[0]);
    if (!SrcTy)
      return fail(&I, "%s", SrcTy.status().message().c_str());
    if (!SrcTy->isVector() || SrcTy->scalar() != I.Ty)
      return fail(&I, "extractelement source must be a matching vector");
    if (!I.Srcs[1].isImm())
      return fail(&I, "extractelement lane must be an immediate");
    if (I.Srcs[1].immInt() < 0 || I.Srcs[1].immInt() >= SrcTy->lanes())
      return fail(&I, "extractelement lane out of range");
    return Status::success();
  }
  case Opcode::Broadcast: {
    if (auto E = expectSrcs(1))
      return E;
    if (!I.Ty.isVector() || Dst != I.Ty)
      return fail(&I, "broadcast must produce the vector type");
    return checkOperandType(I, I.Srcs[0], I.Ty.scalar());
  }
  case Opcode::Iota: {
    if (auto E = expectSrcs(0))
      return E;
    if (!I.Ty.isVector() || Dst != I.Ty || I.Ty.isPred() || I.Ty.isFloat())
      return fail(&I, "iota must produce an integer vector");
    return Status::success();
  }
  case Opcode::VoteSum: {
    if (auto E = expectSrcs(1))
      return E;
    if (Dst.isVector() || Dst.isPred())
      return fail(&I, "vote.sum must write a scalar integer");
    auto SrcTy = operandType(I, I.Srcs[0]);
    if (!SrcTy)
      return fail(&I, "%s", SrcTy.status().message().c_str());
    if (!SrcTy->isPred())
      return fail(&I, "vote.sum source must be a predicate");
    return Status::success();
  }
  case Opcode::Spill: {
    if (auto E = expectSrcs(1))
      return E;
    return checkOperandType(I, I.Srcs[0], I.Ty);
  }
  case Opcode::Restore: {
    if (auto E = expectSrcs(0))
      return E;
    if (Dst != I.Ty)
      return fail(&I, "restore destination type differs from operation type");
    return Status::success();
  }
  case Opcode::SetRPoint:
    return expectSrcs(1);
  case Opcode::SetRStatus: {
    if (auto E = expectSrcs(1))
      return E;
    if (!I.Srcs[0].isImm() || I.Srcs[0].immInt() < 0 || I.Srcs[0].immInt() > 2)
      return fail(&I, "set.rstatus requires a status immediate");
    return Status::success();
  }
  }
  return fail(&I, "unknown opcode");
}

Status KernelVerifier::checkBlock(uint32_t BlockIdx) {
  CurrentBlock = BlockIdx;
  const BasicBlock &B = K.Blocks[BlockIdx];
  if (B.Insts.empty())
    return fail(nullptr, "empty basic block");
  if (!B.hasTerminator())
    return fail(nullptr, "block does not end with a terminator");
  for (size_t Idx = 0; Idx + 1 < B.Insts.size(); ++Idx)
    if (B.Insts[Idx].isTerminator())
      return fail(&B.Insts[Idx], "terminator in the middle of a block");
  for (const Instruction &I : B.Insts)
    if (auto E = checkInstruction(I))
      return E;
  return Status::success();
}

Status KernelVerifier::run() {
  if (K.Blocks.empty())
    return Status::error(
        formatString("kernel '%s' has no basic blocks", K.Name.c_str()));
  for (uint32_t B = 0; B < K.Blocks.size(); ++B)
    if (auto E = checkBlock(B))
      return E;
  for (uint32_t EntryBlock : K.EntryBlocks)
    if (EntryBlock >= K.Blocks.size())
      return Status::error(formatString(
          "kernel '%s': entry table references a missing block",
          K.Name.c_str()));
  if (K.WarpSize > 0) {
    for (const VirtualRegister &R : K.Regs)
      if (R.Ty.isVector() && R.Ty.lanes() != K.WarpSize)
        return Status::error(formatString(
            "kernel '%s': vector register '%s' width differs from warp size",
            K.Name.c_str(), R.Name.c_str()));
  }
  return Status::success();
}

Status simtvec::verifyKernel(const Kernel &K) {
  return KernelVerifier(K).run();
}

Status simtvec::verifyModule(const Module &M) {
  for (const auto &K : M.kernels())
    if (auto E = verifyKernel(*K))
      return E;
  return Status::success();
}
