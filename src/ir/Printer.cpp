//===- ir/Printer.cpp - SVIR textual printer ------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Printer.h"

#include "simtvec/ir/Module.h"
#include "simtvec/support/Format.h"

#include <cmath>

using namespace simtvec;

namespace {

/// Type suffix in mnemonics: ".v4.f32" for vectors, ".f32" for scalars.
std::string typeSuffix(Type Ty) {
  if (Ty.isVector())
    return formatString(".v%u.%s", static_cast<unsigned>(Ty.lanes()),
                        Type::kindName(Ty.kind()));
  return formatString(".%s", Type::kindName(Ty.kind()));
}

std::string immString(const Operand &O) {
  Type Ty = O.immType();
  if (Ty.kind() == ScalarKind::F32) {
    // Hex float form guarantees exact round-trips.
    return formatString("0f%08X", static_cast<unsigned>(O.immBits()));
  }
  if (Ty.kind() == ScalarKind::F64)
    return formatString("0d%016llX",
                        static_cast<unsigned long long>(O.immBits()));
  return formatString("%lld", static_cast<long long>(O.immInt()));
}

} // namespace

static std::string operandString(const Kernel &K, const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Reg:
    return "%" + K.reg(O.regId()).Name;
  case Operand::Kind::Imm:
    return immString(O);
  case Operand::Kind::Special:
    return sregName(O.specialReg());
  case Operand::Kind::Symbol:
    switch (O.symKind()) {
    case SymKind::Param:
      return K.Params[O.symIndex()].Name;
    case SymKind::Shared:
      return K.SharedVars[O.symIndex()].Name;
    case SymKind::Local:
      return K.LocalVars[O.symIndex()].Name;
    }
  }
  assert(false && "unknown operand kind");
  return "?";
}

static std::string addressString(const Kernel &K, const Instruction &I) {
  assert(!I.Srcs.empty() && "memory instruction without an address operand");
  std::string Base = operandString(K, I.Srcs[0]);
  if (I.MemOffset == 0)
    return formatString("[%s]", Base.c_str());
  return formatString("[%s%+lld]", Base.c_str(),
                      static_cast<long long>(I.MemOffset));
}

std::string simtvec::printInstruction(const Kernel &K, const Instruction &I) {
  std::string S;
  if (I.Guard.isValid() && I.Op != Opcode::Bra)
    S += formatString("@%s%%%s ", I.GuardNegated ? "!" : "",
                      K.reg(I.Guard).Name.c_str());

  // Tolerate invalid targets: the verifier prints instructions it is about
  // to reject.
  auto blockName = [&](uint32_t Idx) -> std::string {
    if (Idx >= K.Blocks.size())
      return formatString("<invalid:%u>", Idx);
    return K.Blocks[Idx].Name;
  };

  switch (I.Op) {
  case Opcode::Bra:
    if (I.Guard.isValid()) {
      S += formatString("@%s%%%s bra %s, %s", I.GuardNegated ? "!" : "",
                        K.reg(I.Guard).Name.c_str(),
                        blockName(I.Target).c_str(),
                        blockName(I.FalseTarget).c_str());
    } else {
      S += formatString("bra %s", blockName(I.Target).c_str());
    }
    break;
  case Opcode::Ret:
    S += "ret";
    break;
  case Opcode::Yield:
    S += "yield";
    break;
  case Opcode::Trap:
    S += "trap";
    break;
  case Opcode::BarSync:
    S += "bar.sync";
    break;
  case Opcode::Membar:
    S += "membar";
    break;
  case Opcode::Switch: {
    S += formatString("switch.u32 %s, [", operandString(K, I.Srcs[0]).c_str());
    for (size_t C = 0; C < I.SwitchValues.size(); ++C) {
      if (C)
        S += ",";
      S += formatString(" %lld: %s",
                        static_cast<long long>(I.SwitchValues[C]),
                        blockName(I.SwitchTargets[C]).c_str());
    }
    S += formatString(" ], default: %s", blockName(I.SwitchDefault).c_str());
    break;
  }
  case Opcode::Ld:
    S += formatString("ld.%s%s %%%s, %s", addressSpaceName(I.Space),
                      typeSuffix(I.Ty).c_str(), K.reg(I.Dst).Name.c_str(),
                      addressString(K, I).c_str());
    break;
  case Opcode::St:
    S += formatString("st.%s%s %s, %s", addressSpaceName(I.Space),
                      typeSuffix(I.Ty).c_str(), addressString(K, I).c_str(),
                      operandString(K, I.Srcs[1]).c_str());
    break;
  case Opcode::AtomAdd:
    S += formatString("atom.%s.add%s %%%s, %s, %s", addressSpaceName(I.Space),
                      typeSuffix(I.Ty).c_str(), K.reg(I.Dst).Name.c_str(),
                      addressString(K, I).c_str(),
                      operandString(K, I.Srcs[1]).c_str());
    break;
  case Opcode::Setp:
    S += formatString("setp.%s%s %%%s", cmpOpName(I.Cmp),
                      typeSuffix(I.Ty).c_str(), K.reg(I.Dst).Name.c_str());
    for (const Operand &O : I.Srcs)
      S += ", " + operandString(K, O);
    break;
  case Opcode::Cvt: {
    // cvt.DST.SRC: the source kind is recorded by the source register type.
    Type SrcTy = I.Srcs[0].isReg() ? K.regType(I.Srcs[0].regId()).scalar()
                                   : I.Srcs[0].immType();
    S += formatString("cvt%s.%s %%%s, %s", typeSuffix(I.Ty).c_str(),
                      Type::kindName(SrcTy.kind()), K.reg(I.Dst).Name.c_str(),
                      operandString(K, I.Srcs[0]).c_str());
    break;
  }
  case Opcode::Spill:
    S += formatString("spill%s %s, %lld", typeSuffix(I.Ty).c_str(),
                      operandString(K, I.Srcs[0]).c_str(),
                      static_cast<long long>(I.MemOffset));
    break;
  case Opcode::Restore:
    S += formatString("restore%s %%%s, %lld", typeSuffix(I.Ty).c_str(),
                      K.reg(I.Dst).Name.c_str(),
                      static_cast<long long>(I.MemOffset));
    break;
  case Opcode::SetRPoint:
    S += formatString("set.rpoint %s", operandString(K, I.Srcs[0]).c_str());
    break;
  case Opcode::SetRStatus: {
    static const char *Names[] = {"branch", "barrier", "exit"};
    S += formatString("set.rstatus %s",
                      Names[static_cast<unsigned>(I.Srcs[0].immInt())]);
    break;
  }
  default: {
    // Generic form: mnemonic[.cmp].type dst?, srcs...
    S += opcodeName(I.Op);
    S += typeSuffix(I.Ty);
    bool First = true;
    auto append = [&](const std::string &Text) {
      S += First ? " " : ", ";
      S += Text;
      First = false;
    };
    if (I.hasResult())
      append("%" + K.reg(I.Dst).Name);
    for (const Operand &O : I.Srcs)
      append(operandString(K, O));
    break;
  }
  }

  if (I.Lane != 0)
    S += formatString(" !lane %u", static_cast<unsigned>(I.Lane));
  S += ";";
  return S;
}

std::string simtvec::printKernel(const Kernel &K) {
  std::string S = formatString(".kernel %s (", K.Name.c_str());
  for (size_t P = 0; P < K.Params.size(); ++P) {
    if (P)
      S += ", ";
    S += formatString(".param %s %s", K.Params[P].Ty.str().c_str(),
                      K.Params[P].Name.c_str());
  }
  S += ")\n{\n";

  for (const MemVar &V : K.SharedVars)
    S += formatString("  .shared .b8 %s[%u];\n", V.Name.c_str(), V.Bytes);
  for (const MemVar &V : K.LocalVars)
    S += formatString("  .local .b8 %s[%u];\n", V.Name.c_str(), V.Bytes);
  for (const VirtualRegister &R : K.Regs)
    S += formatString("  .reg %s %%%s;\n", R.Ty.str().c_str(),
                      R.Name.c_str());

  if (K.WarpSize != 0)
    S += formatString("  .warpsize %u;\n", K.WarpSize);
  if (K.SpillBytes != 0)
    S += formatString("  .spillbytes %u;\n", K.SpillBytes);
  for (size_t E = 0; E < K.EntryBlocks.size(); ++E)
    S += formatString("  .entry %zu %s;\n", E,
                      K.Blocks[K.EntryBlocks[E]].Name.c_str());

  for (const BasicBlock &B : K.Blocks) {
    S += B.Name + ":";
    switch (B.Kind) {
    case BlockKind::Body:
      break;
    case BlockKind::Scheduler:
      S += " !scheduler";
      break;
    case BlockKind::EntryHandler:
      S += " !entry";
      break;
    case BlockKind::ExitHandler:
      S += " !exit";
      break;
    }
    S += "\n";
    for (const Instruction &I : B.Insts)
      S += "  " + printInstruction(K, I) + "\n";
  }
  S += "}\n";
  return S;
}

std::string simtvec::printModule(const Module &M) {
  std::string S = ".version 1.0\n\n";
  for (const auto &K : M.kernels())
    S += printKernel(*K) + "\n";
  return S;
}
