//===- ir/Type.cpp - SVIR type system -------------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Type.h"

#include "simtvec/support/Format.h"

using namespace simtvec;

unsigned Type::bitWidth() const {
  switch (Kind) {
  case ScalarKind::Pred:
    return 1;
  case ScalarKind::U8:
    return 8;
  case ScalarKind::S32:
  case ScalarKind::U32:
  case ScalarKind::F32:
    return 32;
  case ScalarKind::S64:
  case ScalarKind::U64:
  case ScalarKind::F64:
    return 64;
  }
  assert(false && "unknown scalar kind");
  return 0;
}

unsigned Type::byteSize() const {
  assert(!isPred() && "predicates are not addressable");
  return bitWidth() / 8;
}

const char *Type::kindName(ScalarKind Kind) {
  switch (Kind) {
  case ScalarKind::Pred:
    return "pred";
  case ScalarKind::U8:
    return "u8";
  case ScalarKind::S32:
    return "s32";
  case ScalarKind::U32:
    return "u32";
  case ScalarKind::S64:
    return "s64";
  case ScalarKind::U64:
    return "u64";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  }
  assert(false && "unknown scalar kind");
  return "?";
}

std::string Type::str() const {
  if (!isVector())
    return formatString(".%s", kindName(Kind));
  return formatString("<%u x .%s>", static_cast<unsigned>(NumLanes),
                      kindName(Kind));
}
