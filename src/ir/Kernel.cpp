//===- ir/Kernel.cpp - SVIR kernels ---------------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Kernel.h"

#include "simtvec/ir/Module.h"

using namespace simtvec;

static uint32_t alignTo(uint32_t Value, uint32_t Align) {
  return (Value + Align - 1) / Align * Align;
}

RegId Kernel::findReg(const std::string &Name) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Regs.size()); I != E; ++I)
    if (Regs[I].Name == Name)
      return RegId(I);
  return RegId();
}

uint32_t Kernel::findBlock(const std::string &Name) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Blocks.size()); I != E; ++I)
    if (Blocks[I].Name == Name)
      return I;
  return InvalidBlock;
}

uint32_t Kernel::findParam(const std::string &Name) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Params.size()); I != E; ++I)
    if (Params[I].Name == Name)
      return I;
  return ~0u;
}

uint32_t Kernel::addParam(std::string Name, Type Ty) {
  uint32_t Offset = alignTo(ParamBytes, Ty.byteSize());
  Params.push_back({std::move(Name), Ty, Offset});
  ParamBytes = Offset + Ty.byteSize();
  return static_cast<uint32_t>(Params.size() - 1);
}

uint32_t Kernel::addSharedVar(std::string Name, uint32_t Bytes) {
  uint32_t Offset = alignTo(SharedBytes, 16);
  SharedVars.push_back({std::move(Name), Bytes, Offset});
  SharedBytes = Offset + Bytes;
  return static_cast<uint32_t>(SharedVars.size() - 1);
}

uint32_t Kernel::addLocalVar(std::string Name, uint32_t Bytes) {
  uint32_t Offset = alignTo(LocalBytes, 16);
  LocalVars.push_back({std::move(Name), Bytes, Offset});
  LocalBytes = Offset + Bytes;
  return static_cast<uint32_t>(LocalVars.size() - 1);
}

std::vector<uint32_t> Kernel::successors(uint32_t BlockIdx) const {
  assert(BlockIdx < Blocks.size() && "block index out of range");
  const BasicBlock &B = Blocks[BlockIdx];
  std::vector<uint32_t> Result;
  if (!B.hasTerminator())
    return Result;
  const Instruction &T = B.terminator();
  switch (T.Op) {
  case Opcode::Bra:
    Result.push_back(T.Target);
    if (T.Guard.isValid())
      Result.push_back(T.FalseTarget);
    break;
  case Opcode::Switch:
    for (uint32_t Tgt : T.SwitchTargets)
      Result.push_back(Tgt);
    Result.push_back(T.SwitchDefault);
    break;
  case Opcode::Ret:
  case Opcode::Yield:
  case Opcode::Trap:
    break;
  default:
    assert(false && "unexpected terminator opcode");
  }
  return Result;
}

size_t Kernel::instructionCount() const {
  size_t Count = 0;
  for (const BasicBlock &B : Blocks)
    Count += B.Insts.size();
  return Count;
}

Kernel *Module::findKernel(const std::string &Name) {
  for (auto &K : Kernels)
    if (K->Name == Name)
      return K.get();
  return nullptr;
}

const Kernel *Module::findKernel(const std::string &Name) const {
  for (const auto &K : Kernels)
    if (K->Name == Name)
      return K.get();
  return nullptr;
}
