//===- ir/Operand.cpp - SVIR operands -------------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Operand.h"

#include <cstring>

using namespace simtvec;

const char *simtvec::sregName(SReg S) {
  switch (S) {
  case SReg::TidX:
    return "%tid.x";
  case SReg::TidY:
    return "%tid.y";
  case SReg::TidZ:
    return "%tid.z";
  case SReg::NTidX:
    return "%ntid.x";
  case SReg::NTidY:
    return "%ntid.y";
  case SReg::NTidZ:
    return "%ntid.z";
  case SReg::CTAIdX:
    return "%ctaid.x";
  case SReg::CTAIdY:
    return "%ctaid.y";
  case SReg::CTAIdZ:
    return "%ctaid.z";
  case SReg::NCTAIdX:
    return "%nctaid.x";
  case SReg::NCTAIdY:
    return "%nctaid.y";
  case SReg::NCTAIdZ:
    return "%nctaid.z";
  case SReg::LaneId:
    return "%laneid";
  case SReg::WarpBaseTid:
    return "%warpbase";
  case SReg::WarpWidth:
    return "%warpwidth";
  case SReg::EntryId:
    return "%entryid";
  }
  assert(false && "unknown special register");
  return "?";
}

bool simtvec::isThreadVariant(SReg S) {
  switch (S) {
  case SReg::TidX:
  case SReg::TidY:
  case SReg::TidZ:
  case SReg::LaneId:
    return true;
  default:
    return false;
  }
}

Operand Operand::immF32(float Value) {
  uint32_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return immBits(Type::f32(), Bits);
}

Operand Operand::immF64(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return immBits(Type::f64(), Bits);
}

int64_t Operand::immInt() const {
  assert(isImm() && "not an immediate operand");
  // Sign-extend from the type's width.
  unsigned Width = ImmTy.bitWidth();
  if (Width >= 64)
    return static_cast<int64_t>(ImmBits);
  uint64_t Mask = (1ull << Width) - 1;
  uint64_t Value = ImmBits & Mask;
  if (ImmTy.isSigned() && (Value >> (Width - 1)))
    Value |= ~Mask;
  return static_cast<int64_t>(Value);
}

float Operand::immF32() const {
  assert(isImm() && "not an immediate operand");
  float Value;
  uint32_t Bits = static_cast<uint32_t>(ImmBits);
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

double Operand::immF64() const {
  assert(isImm() && "not an immediate operand");
  double Value;
  std::memcpy(&Value, &ImmBits, sizeof(Value));
  return Value;
}
