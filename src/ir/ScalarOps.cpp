//===- ir/ScalarOps.cpp - Scalar operation semantics ----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/ScalarOps.h"

#include "simtvec/ir/ScalarOpsImpl.h"

using namespace simtvec;
using namespace simtvec::scalarops;

//===----------------------------------------------------------------------===
// Generic entry points: the semantics live in ScalarOpsImpl.h so that the
// specialized lane kernels (vm/ExecKernels.cpp) instantiate the very same
// expressions and stay bit-identical to this path.
//===----------------------------------------------------------------------===

uint64_t simtvec::evalBinary(Opcode Op, ScalarKind K, uint64_t A, uint64_t B,
                             bool &Bad) {
  return evalBinaryImpl(Op, K, A, B, Bad);
}

uint64_t simtvec::evalMad(ScalarKind K, uint64_t A, uint64_t B, uint64_t C,
                          bool &Bad) {
  return evalMadImpl(K, A, B, C, Bad);
}

uint64_t simtvec::evalUnary(Opcode Op, ScalarKind K, uint64_t A, bool &Bad) {
  return evalUnaryImpl(Op, K, A, Bad);
}

bool simtvec::evalCmp(CmpOp Cmp, ScalarKind K, uint64_t A, uint64_t B) {
  return evalCmpImpl(Cmp, K, A, B);
}

uint64_t simtvec::evalConvert(ScalarKind DstK, ScalarKind SrcK,
                              uint64_t Bits) {
  return evalConvertImpl(DstK, SrcK, Bits);
}

//===----------------------------------------------------------------------===
// Decode-time resolution
//===----------------------------------------------------------------------===
//
// The thunks below re-instantiate the generic eval* code with the opcode and
// kind as compile-time constants: the optimizer folds the dispatch switches
// away, and because it is the *same* code (ScalarOpsImpl.h) the results are
// bit-identical to the generic path. Each resolver probes the generic path
// once to learn whether the combination is valid (Bad never depends on the
// data — division by zero is defined as 0).

namespace {

template <Opcode Op, ScalarKind K> uint64_t binThunk(uint64_t A, uint64_t B) {
  bool Bad = false;
  return evalBinaryImpl(Op, K, A, B, Bad);
}

template <ScalarKind K> BinaryFn binForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_BIN_CASE(OP)                                                   \
  case Opcode::OP:                                                             \
    return binThunk<Opcode::OP, K>;
    SIMTVEC_BIN_CASE(Add)
    SIMTVEC_BIN_CASE(Sub)
    SIMTVEC_BIN_CASE(Mul)
    SIMTVEC_BIN_CASE(Div)
    SIMTVEC_BIN_CASE(Rem)
    SIMTVEC_BIN_CASE(Min)
    SIMTVEC_BIN_CASE(Max)
    SIMTVEC_BIN_CASE(And)
    SIMTVEC_BIN_CASE(Or)
    SIMTVEC_BIN_CASE(Xor)
    SIMTVEC_BIN_CASE(Shl)
    SIMTVEC_BIN_CASE(Shr)
#undef SIMTVEC_BIN_CASE
  default:
    return nullptr;
  }
}

template <Opcode Op, ScalarKind K> uint64_t unThunk(uint64_t A) {
  bool Bad = false;
  return evalUnaryImpl(Op, K, A, Bad);
}

template <ScalarKind K> UnaryFn unForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_UN_CASE(OP)                                                    \
  case Opcode::OP:                                                             \
    return unThunk<Opcode::OP, K>;
    SIMTVEC_UN_CASE(Neg)
    SIMTVEC_UN_CASE(Abs)
    SIMTVEC_UN_CASE(Not)
    SIMTVEC_UN_CASE(Rcp)
    SIMTVEC_UN_CASE(Sqrt)
    SIMTVEC_UN_CASE(Rsqrt)
    SIMTVEC_UN_CASE(Sin)
    SIMTVEC_UN_CASE(Cos)
    SIMTVEC_UN_CASE(Lg2)
    SIMTVEC_UN_CASE(Ex2)
#undef SIMTVEC_UN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K>
uint64_t madThunk(uint64_t A, uint64_t B, uint64_t C) {
  bool Bad = false;
  return evalMadImpl(K, A, B, C, Bad);
}

template <CmpOp Cmp, ScalarKind K> bool cmpThunk(uint64_t A, uint64_t B) {
  return evalCmpImpl(Cmp, K, A, B);
}

template <ScalarKind K> CmpFn cmpForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return cmpThunk<CmpOp::Eq, K>;
  case CmpOp::Ne:
    return cmpThunk<CmpOp::Ne, K>;
  case CmpOp::Lt:
    return cmpThunk<CmpOp::Lt, K>;
  case CmpOp::Le:
    return cmpThunk<CmpOp::Le, K>;
  case CmpOp::Gt:
    return cmpThunk<CmpOp::Gt, K>;
  case CmpOp::Ge:
    return cmpThunk<CmpOp::Ge, K>;
  }
  return nullptr;
}

template <ScalarKind DstK, ScalarKind SrcK> uint64_t cvtThunk(uint64_t Bits) {
  return evalConvertImpl(DstK, SrcK, Bits);
}

template <ScalarKind DstK> ConvertFn cvtForDst(ScalarKind SrcK) {
  switch (SrcK) {
#define SIMTVEC_CVT_CASE(SK)                                                   \
  case ScalarKind::SK:                                                         \
    return cvtThunk<DstK, ScalarKind::SK>;
    SIMTVEC_CVT_CASE(Pred)
    SIMTVEC_CVT_CASE(U8)
    SIMTVEC_CVT_CASE(S32)
    SIMTVEC_CVT_CASE(U32)
    SIMTVEC_CVT_CASE(S64)
    SIMTVEC_CVT_CASE(U64)
    SIMTVEC_CVT_CASE(F32)
    SIMTVEC_CVT_CASE(F64)
#undef SIMTVEC_CVT_CASE
  }
  return nullptr;
}

/// Expands a switch over every ScalarKind forwarding to FN<Kind>(ARG).
#define SIMTVEC_DISPATCH_KIND(K, FN, ARG)                                      \
  switch (K) {                                                                 \
  case ScalarKind::Pred:                                                       \
    return FN<ScalarKind::Pred>(ARG);                                          \
  case ScalarKind::U8:                                                         \
    return FN<ScalarKind::U8>(ARG);                                            \
  case ScalarKind::S32:                                                        \
    return FN<ScalarKind::S32>(ARG);                                           \
  case ScalarKind::U32:                                                        \
    return FN<ScalarKind::U32>(ARG);                                           \
  case ScalarKind::S64:                                                        \
    return FN<ScalarKind::S64>(ARG);                                           \
  case ScalarKind::U64:                                                        \
    return FN<ScalarKind::U64>(ARG);                                           \
  case ScalarKind::F32:                                                        \
    return FN<ScalarKind::F32>(ARG);                                           \
  case ScalarKind::F64:                                                        \
    return FN<ScalarKind::F64>(ARG);                                           \
  }                                                                            \
  return nullptr;

} // namespace

BinaryFn simtvec::resolveBinary(Opcode Op, ScalarKind K) {
  bool Bad = false;
  evalBinary(Op, K, 1, 1, Bad);
  if (Bad)
    return nullptr;
  SIMTVEC_DISPATCH_KIND(K, binForKind, Op)
}

UnaryFn simtvec::resolveUnary(Opcode Op, ScalarKind K) {
  bool Bad = false;
  evalUnary(Op, K, 1, Bad);
  if (Bad)
    return nullptr;
  SIMTVEC_DISPATCH_KIND(K, unForKind, Op)
}

MadFn simtvec::resolveMad(ScalarKind K) {
  bool Bad = false;
  evalMad(K, 1, 1, 1, Bad);
  if (Bad)
    return nullptr;
  switch (K) {
  case ScalarKind::F32:
    return madThunk<ScalarKind::F32>;
  case ScalarKind::F64:
    return madThunk<ScalarKind::F64>;
  case ScalarKind::S32:
    return madThunk<ScalarKind::S32>;
  case ScalarKind::U32:
    return madThunk<ScalarKind::U32>;
  case ScalarKind::S64:
    return madThunk<ScalarKind::S64>;
  case ScalarKind::U64:
    return madThunk<ScalarKind::U64>;
  default:
    return nullptr;
  }
}

CmpFn simtvec::resolveCmp(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND(K, cmpForKind, Cmp)
}

ConvertFn simtvec::resolveConvert(ScalarKind DstK, ScalarKind SrcK) {
  SIMTVEC_DISPATCH_KIND(DstK, cvtForDst, SrcK)
}

#undef SIMTVEC_DISPATCH_KIND
