//===- ir/ScalarOps.cpp - Scalar operation semantics ----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/ScalarOps.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

using namespace simtvec;

namespace {

template <typename T> T fromBits(uint64_t Bits);
template <> int32_t fromBits(uint64_t Bits) {
  return static_cast<int32_t>(static_cast<uint32_t>(Bits));
}
template <> uint32_t fromBits(uint64_t Bits) {
  return static_cast<uint32_t>(Bits);
}
template <> int64_t fromBits(uint64_t Bits) {
  return static_cast<int64_t>(Bits);
}
template <> uint64_t fromBits(uint64_t Bits) { return Bits; }
template <> uint8_t fromBits(uint64_t Bits) {
  return static_cast<uint8_t>(Bits);
}
template <> float fromBits(uint64_t Bits) {
  float V;
  uint32_t B = static_cast<uint32_t>(Bits);
  std::memcpy(&V, &B, sizeof(V));
  return V;
}
template <> double fromBits(uint64_t Bits) {
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

template <typename T> uint64_t toBits(T Value);
template <> uint64_t toBits(int32_t V) {
  return static_cast<uint32_t>(V);
}
template <> uint64_t toBits(uint32_t V) { return V; }
template <> uint64_t toBits(int64_t V) { return static_cast<uint64_t>(V); }
template <> uint64_t toBits(uint64_t V) { return V; }
template <> uint64_t toBits(uint8_t V) { return V; }
template <> uint64_t toBits(float V) {
  uint32_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}
template <> uint64_t toBits(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

//===----------------------------------------------------------------------===
// Scalar operation semantics
//===----------------------------------------------------------------------===

template <typename T>
uint64_t intBinary(Opcode Op, uint64_t A, uint64_t B, bool &Bad) {
  T X = fromBits<T>(A), Y = fromBits<T>(B);
  using U = std::make_unsigned_t<T>;
  switch (Op) {
  case Opcode::Add:
    return toBits<T>(static_cast<T>(static_cast<U>(X) + static_cast<U>(Y)));
  case Opcode::Sub:
    return toBits<T>(static_cast<T>(static_cast<U>(X) - static_cast<U>(Y)));
  case Opcode::Mul:
    return toBits<T>(static_cast<T>(static_cast<U>(X) * static_cast<U>(Y)));
  case Opcode::Div:
    return toBits<T>(Y == 0 ? T(0) : static_cast<T>(X / Y));
  case Opcode::Rem:
    return toBits<T>(Y == 0 ? T(0) : static_cast<T>(X % Y));
  case Opcode::Min:
    return toBits<T>(X < Y ? X : Y);
  case Opcode::Max:
    return toBits<T>(X > Y ? X : Y);
  case Opcode::And:
    return toBits<T>(static_cast<T>(X & Y));
  case Opcode::Or:
    return toBits<T>(static_cast<T>(X | Y));
  case Opcode::Xor:
    return toBits<T>(static_cast<T>(X ^ Y));
  case Opcode::Shl: {
    unsigned Count = static_cast<unsigned>(Y) & (sizeof(T) * 8 - 1);
    return toBits<T>(static_cast<T>(static_cast<U>(X) << Count));
  }
  case Opcode::Shr: {
    unsigned Count = static_cast<unsigned>(Y) & (sizeof(T) * 8 - 1);
    return toBits<T>(static_cast<T>(X >> Count)); // arithmetic iff signed T
  }
  default:
    Bad = true;
    return 0;
  }
}

template <typename T>
uint64_t floatBinary(Opcode Op, uint64_t A, uint64_t B, bool &Bad) {
  T X = fromBits<T>(A), Y = fromBits<T>(B);
  switch (Op) {
  case Opcode::Add:
    return toBits<T>(X + Y);
  case Opcode::Sub:
    return toBits<T>(X - Y);
  case Opcode::Mul:
    return toBits<T>(X * Y);
  case Opcode::Div:
    return toBits<T>(X / Y);
  case Opcode::Min:
    return toBits<T>(X < Y ? X : Y);
  case Opcode::Max:
    return toBits<T>(X > Y ? X : Y);
  default:
    Bad = true;
    return 0;
  }
}

} // namespace

uint64_t simtvec::evalBinary(Opcode Op, ScalarKind K, uint64_t A, uint64_t B,
                    bool &Bad) {
  switch (K) {
  case ScalarKind::Pred:
    switch (Op) {
    case Opcode::And:
      return (A & B) & 1;
    case Opcode::Or:
      return (A | B) & 1;
    case Opcode::Xor:
      return (A ^ B) & 1;
    default:
      Bad = true;
      return 0;
    }
  case ScalarKind::U8:
    return intBinary<uint8_t>(Op, A, B, Bad);
  case ScalarKind::S32:
    return intBinary<int32_t>(Op, A, B, Bad);
  case ScalarKind::U32:
    return intBinary<uint32_t>(Op, A, B, Bad);
  case ScalarKind::S64:
    return intBinary<int64_t>(Op, A, B, Bad);
  case ScalarKind::U64:
    return intBinary<uint64_t>(Op, A, B, Bad);
  case ScalarKind::F32:
    return floatBinary<float>(Op, A, B, Bad);
  case ScalarKind::F64:
    return floatBinary<double>(Op, A, B, Bad);
  }
  Bad = true;
  return 0;
}

uint64_t simtvec::evalMad(ScalarKind K, uint64_t A, uint64_t B, uint64_t C,
                 bool &Bad) {
  switch (K) {
  case ScalarKind::F32:
    return toBits<float>(fromBits<float>(A) * fromBits<float>(B) +
                         fromBits<float>(C));
  case ScalarKind::F64:
    return toBits<double>(fromBits<double>(A) * fromBits<double>(B) +
                          fromBits<double>(C));
  case ScalarKind::S32:
  case ScalarKind::U32:
    return toBits<uint32_t>(fromBits<uint32_t>(A) * fromBits<uint32_t>(B) +
                            fromBits<uint32_t>(C));
  case ScalarKind::S64:
  case ScalarKind::U64:
    return fromBits<uint64_t>(A) * fromBits<uint64_t>(B) +
           fromBits<uint64_t>(C);
  default:
    Bad = true;
    return 0;
  }
}

template <typename T> uint64_t floatUnary(Opcode Op, uint64_t A, bool &Bad) {
  T X = fromBits<T>(A);
  switch (Op) {
  case Opcode::Neg:
    return toBits<T>(-X);
  case Opcode::Abs:
    return toBits<T>(std::fabs(X));
  case Opcode::Rcp:
    return toBits<T>(T(1) / X);
  case Opcode::Sqrt:
    return toBits<T>(std::sqrt(X));
  case Opcode::Rsqrt:
    return toBits<T>(T(1) / std::sqrt(X));
  case Opcode::Sin:
    return toBits<T>(std::sin(X));
  case Opcode::Cos:
    return toBits<T>(std::cos(X));
  case Opcode::Lg2:
    return toBits<T>(std::log2(X));
  case Opcode::Ex2:
    return toBits<T>(std::exp2(X));
  default:
    Bad = true;
    return 0;
  }
}

template <typename T> uint64_t intUnary(Opcode Op, uint64_t A, bool &Bad) {
  T X = fromBits<T>(A);
  switch (Op) {
  case Opcode::Neg:
    return toBits<T>(static_cast<T>(0 - std::make_unsigned_t<T>(X)));
  case Opcode::Abs:
    return toBits<T>(X < 0 ? static_cast<T>(-X) : X);
  case Opcode::Not:
    return toBits<T>(static_cast<T>(~X));
  default:
    Bad = true;
    return 0;
  }
}

uint64_t simtvec::evalUnary(Opcode Op, ScalarKind K, uint64_t A, bool &Bad) {
  switch (K) {
  case ScalarKind::Pred:
    if (Op == Opcode::Not)
      return (~A) & 1;
    Bad = true;
    return 0;
  case ScalarKind::U8:
    return intUnary<uint8_t>(Op, A, Bad);
  case ScalarKind::S32:
    return intUnary<int32_t>(Op, A, Bad);
  case ScalarKind::U32:
    return intUnary<uint32_t>(Op, A, Bad);
  case ScalarKind::S64:
    return intUnary<int64_t>(Op, A, Bad);
  case ScalarKind::U64:
    return intUnary<uint64_t>(Op, A, Bad);
  case ScalarKind::F32:
    return floatUnary<float>(Op, A, Bad);
  case ScalarKind::F64:
    return floatUnary<double>(Op, A, Bad);
  }
  Bad = true;
  return 0;
}

template <typename T> bool cmpTyped(CmpOp Cmp, T A, T B) {
  switch (Cmp) {
  case CmpOp::Eq:
    return A == B;
  case CmpOp::Ne:
    return A != B;
  case CmpOp::Lt:
    return A < B;
  case CmpOp::Le:
    return A <= B;
  case CmpOp::Gt:
    return A > B;
  case CmpOp::Ge:
    return A >= B;
  }
  return false;
}

bool simtvec::evalCmp(CmpOp Cmp, ScalarKind K, uint64_t A, uint64_t B) {
  switch (K) {
  case ScalarKind::Pred:
    return cmpTyped<uint64_t>(Cmp, A & 1, B & 1);
  case ScalarKind::U8:
    return cmpTyped(Cmp, fromBits<uint8_t>(A), fromBits<uint8_t>(B));
  case ScalarKind::S32:
    return cmpTyped(Cmp, fromBits<int32_t>(A), fromBits<int32_t>(B));
  case ScalarKind::U32:
    return cmpTyped(Cmp, fromBits<uint32_t>(A), fromBits<uint32_t>(B));
  case ScalarKind::S64:
    return cmpTyped(Cmp, fromBits<int64_t>(A), fromBits<int64_t>(B));
  case ScalarKind::U64:
    return cmpTyped(Cmp, fromBits<uint64_t>(A), fromBits<uint64_t>(B));
  case ScalarKind::F32:
    return cmpTyped(Cmp, fromBits<float>(A), fromBits<float>(B));
  case ScalarKind::F64:
    return cmpTyped(Cmp, fromBits<double>(A), fromBits<double>(B));
  }
  return false;
}

/// Widest-range intermediate conversion with well-defined float->int
/// behaviour (NaN -> 0, saturation at the type bounds).
template <typename To> To floatToInt(double V) {
  if (std::isnan(V))
    return To(0);
  constexpr double Lo = static_cast<double>(std::numeric_limits<To>::min());
  constexpr double Hi = static_cast<double>(std::numeric_limits<To>::max());
  if (V <= Lo)
    return std::numeric_limits<To>::min();
  if (V >= Hi)
    return std::numeric_limits<To>::max();
  return static_cast<To>(V);
}

uint64_t simtvec::evalConvert(ScalarKind DstK, ScalarKind SrcK, uint64_t Bits) {
  // Load the source as the widest lossless representation.
  bool SrcFloat = SrcK == ScalarKind::F32 || SrcK == ScalarKind::F64;
  double FloatVal = 0;
  int64_t IntVal = 0;
  uint64_t UIntVal = 0;
  bool SrcSigned = SrcK == ScalarKind::S32 || SrcK == ScalarKind::S64;
  switch (SrcK) {
  case ScalarKind::F32:
    FloatVal = fromBits<float>(Bits);
    break;
  case ScalarKind::F64:
    FloatVal = fromBits<double>(Bits);
    break;
  case ScalarKind::S32:
    IntVal = fromBits<int32_t>(Bits);
    break;
  case ScalarKind::S64:
    IntVal = fromBits<int64_t>(Bits);
    break;
  case ScalarKind::U8:
    UIntVal = fromBits<uint8_t>(Bits);
    break;
  case ScalarKind::U32:
    UIntVal = fromBits<uint32_t>(Bits);
    break;
  case ScalarKind::U64:
    UIntVal = Bits;
    break;
  case ScalarKind::Pred:
    UIntVal = Bits & 1;
    break;
  }

  auto asDouble = [&]() -> double {
    if (SrcFloat)
      return FloatVal;
    if (SrcSigned)
      return static_cast<double>(IntVal);
    return static_cast<double>(UIntVal);
  };
  auto asU64 = [&]() -> uint64_t {
    if (SrcFloat)
      return static_cast<uint64_t>(floatToInt<int64_t>(FloatVal));
    if (SrcSigned)
      return static_cast<uint64_t>(IntVal);
    return UIntVal;
  };

  switch (DstK) {
  case ScalarKind::F32:
    return toBits<float>(static_cast<float>(asDouble()));
  case ScalarKind::F64:
    return toBits<double>(asDouble());
  case ScalarKind::S32:
    if (SrcFloat)
      return toBits<int32_t>(floatToInt<int32_t>(FloatVal));
    return toBits<int32_t>(static_cast<int32_t>(asU64()));
  case ScalarKind::U8:
    if (SrcFloat)
      return toBits<uint8_t>(static_cast<uint8_t>(floatToInt<int64_t>(
          FloatVal)));
    return toBits<uint8_t>(static_cast<uint8_t>(asU64()));
  case ScalarKind::U32:
    if (SrcFloat)
      return toBits<uint32_t>(static_cast<uint32_t>(floatToInt<int64_t>(
          FloatVal)));
    return toBits<uint32_t>(static_cast<uint32_t>(asU64()));
  case ScalarKind::S64:
    if (SrcFloat)
      return toBits<int64_t>(floatToInt<int64_t>(FloatVal));
    return asU64();
  case ScalarKind::U64:
    return asU64();
  case ScalarKind::Pred:
    return asU64() != 0;
  }
  return 0;
}

//===----------------------------------------------------------------------===
// Decode-time resolution
//===----------------------------------------------------------------------===
//
// The thunks below re-instantiate the generic eval* code with the opcode and
// kind as compile-time constants: being in the same translation unit, the
// optimizer folds the dispatch switches away, and because it is the *same*
// code the results are bit-identical to the generic path. Each resolver
// probes the generic path once to learn whether the combination is valid
// (Bad never depends on the data — division by zero is defined as 0).

namespace {

template <Opcode Op, ScalarKind K> uint64_t binThunk(uint64_t A, uint64_t B) {
  bool Bad = false;
  return simtvec::evalBinary(Op, K, A, B, Bad);
}

template <ScalarKind K> BinaryFn binForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_BIN_CASE(OP)                                                   \
  case Opcode::OP:                                                             \
    return binThunk<Opcode::OP, K>;
    SIMTVEC_BIN_CASE(Add)
    SIMTVEC_BIN_CASE(Sub)
    SIMTVEC_BIN_CASE(Mul)
    SIMTVEC_BIN_CASE(Div)
    SIMTVEC_BIN_CASE(Rem)
    SIMTVEC_BIN_CASE(Min)
    SIMTVEC_BIN_CASE(Max)
    SIMTVEC_BIN_CASE(And)
    SIMTVEC_BIN_CASE(Or)
    SIMTVEC_BIN_CASE(Xor)
    SIMTVEC_BIN_CASE(Shl)
    SIMTVEC_BIN_CASE(Shr)
#undef SIMTVEC_BIN_CASE
  default:
    return nullptr;
  }
}

template <Opcode Op, ScalarKind K> uint64_t unThunk(uint64_t A) {
  bool Bad = false;
  return simtvec::evalUnary(Op, K, A, Bad);
}

template <ScalarKind K> UnaryFn unForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_UN_CASE(OP)                                                    \
  case Opcode::OP:                                                             \
    return unThunk<Opcode::OP, K>;
    SIMTVEC_UN_CASE(Neg)
    SIMTVEC_UN_CASE(Abs)
    SIMTVEC_UN_CASE(Not)
    SIMTVEC_UN_CASE(Rcp)
    SIMTVEC_UN_CASE(Sqrt)
    SIMTVEC_UN_CASE(Rsqrt)
    SIMTVEC_UN_CASE(Sin)
    SIMTVEC_UN_CASE(Cos)
    SIMTVEC_UN_CASE(Lg2)
    SIMTVEC_UN_CASE(Ex2)
#undef SIMTVEC_UN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K>
uint64_t madThunk(uint64_t A, uint64_t B, uint64_t C) {
  bool Bad = false;
  return simtvec::evalMad(K, A, B, C, Bad);
}

template <CmpOp Cmp, ScalarKind K> bool cmpThunk(uint64_t A, uint64_t B) {
  return simtvec::evalCmp(Cmp, K, A, B);
}

template <ScalarKind K> CmpFn cmpForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return cmpThunk<CmpOp::Eq, K>;
  case CmpOp::Ne:
    return cmpThunk<CmpOp::Ne, K>;
  case CmpOp::Lt:
    return cmpThunk<CmpOp::Lt, K>;
  case CmpOp::Le:
    return cmpThunk<CmpOp::Le, K>;
  case CmpOp::Gt:
    return cmpThunk<CmpOp::Gt, K>;
  case CmpOp::Ge:
    return cmpThunk<CmpOp::Ge, K>;
  }
  return nullptr;
}

template <ScalarKind DstK, ScalarKind SrcK> uint64_t cvtThunk(uint64_t Bits) {
  return simtvec::evalConvert(DstK, SrcK, Bits);
}

template <ScalarKind DstK> ConvertFn cvtForDst(ScalarKind SrcK) {
  switch (SrcK) {
#define SIMTVEC_CVT_CASE(SK)                                                   \
  case ScalarKind::SK:                                                         \
    return cvtThunk<DstK, ScalarKind::SK>;
    SIMTVEC_CVT_CASE(Pred)
    SIMTVEC_CVT_CASE(U8)
    SIMTVEC_CVT_CASE(S32)
    SIMTVEC_CVT_CASE(U32)
    SIMTVEC_CVT_CASE(S64)
    SIMTVEC_CVT_CASE(U64)
    SIMTVEC_CVT_CASE(F32)
    SIMTVEC_CVT_CASE(F64)
#undef SIMTVEC_CVT_CASE
  }
  return nullptr;
}

/// Expands a switch over every ScalarKind forwarding to FN<Kind>(ARG).
#define SIMTVEC_DISPATCH_KIND(K, FN, ARG)                                      \
  switch (K) {                                                                 \
  case ScalarKind::Pred:                                                       \
    return FN<ScalarKind::Pred>(ARG);                                          \
  case ScalarKind::U8:                                                         \
    return FN<ScalarKind::U8>(ARG);                                            \
  case ScalarKind::S32:                                                        \
    return FN<ScalarKind::S32>(ARG);                                           \
  case ScalarKind::U32:                                                        \
    return FN<ScalarKind::U32>(ARG);                                           \
  case ScalarKind::S64:                                                        \
    return FN<ScalarKind::S64>(ARG);                                           \
  case ScalarKind::U64:                                                        \
    return FN<ScalarKind::U64>(ARG);                                           \
  case ScalarKind::F32:                                                        \
    return FN<ScalarKind::F32>(ARG);                                           \
  case ScalarKind::F64:                                                        \
    return FN<ScalarKind::F64>(ARG);                                           \
  }                                                                            \
  return nullptr;

} // namespace

BinaryFn simtvec::resolveBinary(Opcode Op, ScalarKind K) {
  bool Bad = false;
  evalBinary(Op, K, 1, 1, Bad);
  if (Bad)
    return nullptr;
  SIMTVEC_DISPATCH_KIND(K, binForKind, Op)
}

UnaryFn simtvec::resolveUnary(Opcode Op, ScalarKind K) {
  bool Bad = false;
  evalUnary(Op, K, 1, Bad);
  if (Bad)
    return nullptr;
  SIMTVEC_DISPATCH_KIND(K, unForKind, Op)
}

MadFn simtvec::resolveMad(ScalarKind K) {
  bool Bad = false;
  evalMad(K, 1, 1, 1, Bad);
  if (Bad)
    return nullptr;
  switch (K) {
  case ScalarKind::F32:
    return madThunk<ScalarKind::F32>;
  case ScalarKind::F64:
    return madThunk<ScalarKind::F64>;
  case ScalarKind::S32:
    return madThunk<ScalarKind::S32>;
  case ScalarKind::U32:
    return madThunk<ScalarKind::U32>;
  case ScalarKind::S64:
    return madThunk<ScalarKind::S64>;
  case ScalarKind::U64:
    return madThunk<ScalarKind::U64>;
  default:
    return nullptr;
  }
}

CmpFn simtvec::resolveCmp(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND(K, cmpForKind, Cmp)
}

ConvertFn simtvec::resolveConvert(ScalarKind DstK, ScalarKind SrcK) {
  SIMTVEC_DISPATCH_KIND(DstK, cvtForDst, SrcK)
}

#undef SIMTVEC_DISPATCH_KIND

