//===- analysis/Variance.cpp - Thread-variance analysis -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/Variance.h"

using namespace simtvec;

bool VarianceAnalysis::introducesVariance(const Instruction &I) const {
  switch (I.Op) {
  case Opcode::Ld:
    // Loads may observe thread-dependent memory (the affine/uniform-load
    // refinement is the paper's future work), except parameter loads, which
    // read launch-uniform state.
    if (I.Space != AddressSpace::Param)
      return true;
    break;
  case Opcode::AtomAdd: // returned old value depends on arrival order
  case Opcode::Restore: // restores per-thread state
  case Opcode::Iota:    // per-lane by construction
    return true;
  default:
    break;
  }
  for (const Operand &O : I.Srcs) {
    if (!O.isSpecial())
      continue;
    SReg S = O.specialReg();
    if (Opts.TidYZUniform && (S == SReg::TidY || S == SReg::TidZ))
      continue;
    if (isThreadVariant(S))
      return true;
  }
  return false;
}

VarianceAnalysis::VarianceAnalysis(const Kernel &K, VarianceOptions Opts)
    : Opts(Opts), Variant(K.Regs.size()) {
  if (Opts.ExtraRoots)
    Variant.unionWith(*Opts.ExtraRoots);
  // Flow-insensitive fixed point: a register is variant if any definition
  // of it is variant.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : K.Blocks) {
      for (const Instruction &I : B.Insts) {
        if (!I.hasResult() || Variant.test(I.Dst.Index))
          continue;
        bool IsVariant = introducesVariance(I);
        if (!IsVariant)
          I.forEachUse([&](RegId R) { IsVariant |= Variant.test(R.Index); });
        if (IsVariant) {
          Variant.set(I.Dst.Index);
          Changed = true;
        }
      }
    }
  }
}

bool VarianceAnalysis::isInvariantInstruction(const Instruction &I) const {
  if (introducesVariance(I))
    return false;
  bool AnyVariant = false;
  I.forEachUse([&](RegId R) { AnyVariant |= Variant.test(R.Index); });
  return !AnyVariant;
}
