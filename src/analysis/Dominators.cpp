//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/Dominators.h"

using namespace simtvec;

DominatorTree::DominatorTree(const CFG &G) {
  size_t N = G.numBlocks();
  IDom.assign(N, InvalidBlock);
  RPONumber.assign(N, ~0u);

  const std::vector<uint32_t> &RPO = G.reversePostOrder();
  for (uint32_t I = 0; I < RPO.size(); ++I)
    RPONumber[RPO[I]] = I;

  if (N == 0)
    return;
  IDom[0] = 0;

  auto intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : RPO) {
      if (Block == 0 || !G.isReachable(Block))
        continue;
      uint32_t NewIDom = InvalidBlock;
      for (uint32_t P : G.predecessors(Block)) {
        if (IDom[P] == InvalidBlock)
          continue; // predecessor not processed yet or unreachable
        NewIDom = NewIDom == InvalidBlock ? P : intersect(P, NewIDom);
      }
      if (NewIDom != InvalidBlock && IDom[Block] != NewIDom) {
        IDom[Block] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (IDom[B] == InvalidBlock || IDom[A] == InvalidBlock)
    return false; // unreachable blocks dominate nothing
  while (true) {
    if (A == B)
      return true;
    if (B == 0)
      return false;
    uint32_t Next = IDom[B];
    if (Next == B)
      return false;
    B = Next;
  }
}
