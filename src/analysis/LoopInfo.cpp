//===- analysis/LoopInfo.cpp - Natural-loop detection ---------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace simtvec;

LoopInfo::LoopInfo(const CFG &G, const DominatorTree &DT) {
  size_t N = G.numBlocks();
  InAnyLoop.assign(N, false);

  // Back edge: B -> H where H dominates B. Loops with the same header
  // merge.
  std::map<uint32_t, Loop> ByHeader;
  for (uint32_t B = 0; B < N; ++B) {
    if (!G.isReachable(B))
      continue;
    for (uint32_t H : G.successors(B)) {
      if (!DT.dominates(H, B))
        continue;
      Loop &L = ByHeader[H];
      L.Header = H;
      L.BackEdgeSources.push_back(B);
    }
  }

  // Loop body: backward reachability from each latch, stopping at the
  // header.
  for (auto &[Header, L] : ByHeader) {
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<uint32_t> Stack = L.BackEdgeSources;
    for (uint32_t B : Stack)
      InLoop[B] = true;
    while (!Stack.empty()) {
      uint32_t B = Stack.back();
      Stack.pop_back();
      if (B == Header)
        continue;
      for (uint32_t P : G.predecessors(B))
        if (!InLoop[P]) {
          InLoop[P] = true;
          Stack.push_back(P);
        }
    }
    for (uint32_t B = 0; B < N; ++B)
      if (InLoop[B]) {
        L.Blocks.push_back(B);
        InAnyLoop[B] = true;
      }
    std::sort(L.Blocks.begin(), L.Blocks.end());
    Loops.push_back(std::move(L));
  }
}

const Loop *LoopInfo::loopWithHeader(uint32_t Block) const {
  for (const Loop &L : Loops)
    if (L.Header == Block)
      return &L;
  return nullptr;
}
