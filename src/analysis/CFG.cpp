//===- analysis/CFG.cpp - Control-flow graph utilities --------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/CFG.h"

#include <algorithm>

using namespace simtvec;

CFG::CFG(const Kernel &K) {
  size_t N = K.Blocks.size();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (uint32_t B = 0; B < N; ++B) {
    Succs[B] = K.successors(B);
    for (uint32_t S : Succs[B])
      Preds[S].push_back(B);
  }

  // Iterative post-order DFS from the entry. Extra entry points of
  // specialized kernels are reachable through the scheduler block, which is
  // the function entry, so rooting at 0 covers them.
  std::vector<uint32_t> PostOrder;
  PostOrder.reserve(N);
  std::vector<uint8_t> State(N, 0); // 0 = unvisited, 1 = on stack, 2 = done
  std::vector<std::pair<uint32_t, size_t>> Stack;
  if (N > 0) {
    Stack.emplace_back(0, 0);
    State[0] = 1;
    Reachable[0] = true;
  }
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Succs[Block].size()) {
      uint32_t S = Succs[Block][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Reachable[S] = true;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[Block] = 2;
    PostOrder.push_back(Block);
    Stack.pop_back();
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (uint32_t B = 0; B < N; ++B)
    if (!Reachable[B])
      RPO.push_back(B);
}
