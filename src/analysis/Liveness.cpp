//===- analysis/Liveness.cpp - Backward liveness --------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/Liveness.h"

using namespace simtvec;

namespace {

/// Per-block use (upward-exposed) and kill (unconditional def) sets.
struct UseDef {
  BitSet Use, Def;
};

UseDef computeUseDef(const Kernel &K, const BasicBlock &B) {
  size_t NumRegs = K.Regs.size();
  UseDef UD{BitSet(NumRegs), BitSet(NumRegs)};
  for (const Instruction &I : B.Insts) {
    I.forEachUse([&](RegId R) {
      if (!UD.Def.test(R.Index))
        UD.Use.set(R.Index);
    });
    if (I.hasResult() && !I.Guard.isValid())
      UD.Def.set(I.Dst.Index);
  }
  return UD;
}

} // namespace

Liveness::Liveness(const Kernel &K, const CFG &G) {
  size_t N = K.Blocks.size();
  size_t NumRegs = K.Regs.size();
  In.assign(N, BitSet(NumRegs));
  Out.assign(N, BitSet(NumRegs));

  std::vector<UseDef> UD;
  UD.reserve(N);
  for (const BasicBlock &B : K.Blocks)
    UD.push_back(computeUseDef(K, B));

  // Backward fixed point, iterating blocks in post order (reverse of RPO)
  // for fast convergence.
  const std::vector<uint32_t> &RPO = G.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = RPO.rbegin(); It != RPO.rend(); ++It) {
      uint32_t B = *It;
      for (uint32_t S : G.successors(B))
        Changed |= Out[B].unionWith(In[S]);
      // In = Use | (Out - Def)
      Changed |= In[B].unionWith(UD[B].Use);
      Changed |= In[B].unionWithMinus(Out[B], UD[B].Def);
    }
  }
}

BitSet Liveness::liveBefore(const Kernel &K, uint32_t Block,
                            size_t InstIdx) const {
  const BasicBlock &B = K.Blocks[Block];
  assert(InstIdx <= B.Insts.size() && "instruction index out of range");
  BitSet Live = Out[Block];
  for (size_t I = B.Insts.size(); I-- > InstIdx;) {
    const Instruction &Inst = B.Insts[I];
    if (Inst.hasResult() && !Inst.Guard.isValid())
      Live.reset(Inst.Dst.Index);
    Inst.forEachUse([&](RegId R) { Live.set(R.Index); });
  }
  return Live;
}

unsigned Liveness::maxPressure(
    const Kernel &K, uint32_t Block,
    const std::function<unsigned(const Kernel &, RegId)> &RegCost) const {
  const BasicBlock &B = K.Blocks[Block];
  BitSet Live = Out[Block];
  auto weigh = [&](const BitSet &S) {
    unsigned Total = 0;
    S.forEach([&](size_t R) {
      Total += RegCost(K, RegId(static_cast<uint32_t>(R)));
    });
    return Total;
  };
  unsigned Max = weigh(Live);
  for (size_t I = B.Insts.size(); I-- > 0;) {
    const Instruction &Inst = B.Insts[I];
    if (Inst.hasResult() && !Inst.Guard.isValid())
      Live.reset(Inst.Dst.Index);
    Inst.forEachUse([&](RegId R) { Live.set(R.Index); });
    unsigned Here = weigh(Live);
    if (Here > Max)
      Max = Here;
  }
  return Max;
}
