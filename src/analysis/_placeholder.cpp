// placeholder
