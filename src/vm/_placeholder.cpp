// placeholder
