//===- vm/NativeCodegen.cpp - C++ emission for the native tier ------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Translates one pre-decoded executable into a standalone C++ TU. The
// strategy for bit-identity is to generate *calls into the same inline
// semantics the interpreter is compiled from* (ScalarOpsImpl.h) with the
// opcode/kind arguments emitted as integer-cast constants, then let the
// system compiler fold the dispatch switches at -O2 — the generated object
// performs the identical sequence of rounded operations, bounds checks and
// counter updates as Interpreter::run, with all decode-time constants
// (slots, immediates, cost sums, trap-refund tails, L1 geometry) baked in.
//
// Counter fidelity notes:
//  * Block cost sums and trap-refund tails are doubles folded left-to-right
//    in stream order. We fold them at emit time with the same order and emit
//    them as hexfloat literals, which round-trip exactly.
//  * The modeled L1 is shared state across tiers (the worker's arrays are
//    passed in), and the emitted probe replicates the fast engine's
//    MRU-first scan so hit/miss outcomes *and* replacement state evolve
//    identically whether a warp entry ran native or interpreted.
//
// Fused superinstructions are emitted member-by-member in stream order —
// the decode contract guarantees a fused group's architectural effects are
// exactly those of its unfused records, and the block counter sums already
// include the members, so unfused emission is bit-identical.
//
// Anything outside the supported envelope returns "" and the caller stays
// on the interpreter: this is a performance tier, not a completeness tier.
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/NativeCodegen.h"

#include "simtvec/support/Format.h"
#include "simtvec/vm/Executable.h"
#include "simtvec/vm/MachineModel.h"

#include <bit>
#include <cmath>
#include <cstdarg>

using namespace simtvec;

namespace {

std::string hexU64(uint64_t V) {
  return formatString("0x%llxull", static_cast<unsigned long long>(V));
}

/// Hexfloat literals round-trip doubles exactly (printf %a prints full
/// precision). Parenthesized so negative values compose into expressions.
std::string dblLit(double V) { return formatString("(%a)", V); }

/// Escapes a string into a C string literal (quotes included).
std::string cstr(const std::string &S) {
  std::string R = "\"";
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '\\' || C == '"') {
      R += '\\';
      R += C;
    } else if (U < 32 || U > 126) {
      R += formatString("\\%03o", U);
    } else {
      R += C;
    }
  }
  R += '"';
  return R;
}

class NativeEmitter {
public:
  NativeEmitter(const KernelExec &Exec, const MachineModel &Machine,
                uint64_t BuildFp)
      : Exec(Exec), Machine(Machine), BuildFp(BuildFp),
        Code(Exec.code().data()),
        WS(Exec.kernel().WarpSize ? Exec.kernel().WarpSize : 1) {}

  std::string emit();

private:
  const KernelExec &Exec;
  const MachineModel &Machine;
  const uint64_t BuildFp;
  const DecodedInst *Code;
  const uint32_t WS;

  std::string O;
  bool OK = true;
  uint32_t CurBlock = 0;
  std::string Bucket; ///< "A->EMBody" or "A->EMYield" for the current block

  void refuse() { OK = false; }

  [[gnu::format(printf, 2, 3)]] void add(const char *Fmt, ...) {
    va_list Args;
    va_start(Args, Fmt);
    O += formatStringV(Fmt, Args);
    va_end(Args);
  }

  bool validTarget(uint32_t B) const {
    return B != InvalidBlock && B < Exec.decodedBlocks().size();
  }

  std::string specialExpr(SReg S, uint32_t Lane);
  std::string opExpr(const DecodedOp &Op, uint32_t Lane);
  std::string baseExpr(AddressSpace Space, uint32_t Lane);
  std::string limitExpr(AddressSpace Space);

  std::string settleStr(uint32_t AbsIdx);
  void emitTrapConst(const std::string &Msg, uint32_t AbsIdx);
  bool emitBounds(uint32_t AbsIdx, AddressSpace Space, bool Write,
                  unsigned Bytes);

  void emitPrelude();
  void emitBlock(uint32_t BlockIdx);
  void emitRecord(uint32_t AbsIdx, const DecodedInst &D, ExecShape S);
  void emitTerminator(uint32_t AbsIdx, const DecodedInst &D);
  void emitMemAccess(uint32_t AbsIdx, const DecodedInst &D, ExecShape S);
  void emitSpillRestore(uint32_t AbsIdx, const DecodedInst &D, bool IsSpill);

  /// The semantic (unfused) shape a record executes with. Fused heads map
  /// back to the shape of their original opcode; ordinary records keep
  /// their own.
  ExecShape semanticShape(const DecodedInst &D);
};

ExecShape NativeEmitter::semanticShape(const DecodedInst &D) {
  switch (D.Shape) {
  case ExecShape::FusedCmpSel:
    return ExecShape::Setp;
  case ExecShape::FusedIotaBin:
    return ExecShape::Iota;
  case ExecShape::FusedSpillRun:
    return ExecShape::Spill;
  case ExecShape::FusedRestoreRun:
    return ExecShape::Restore;
  case ExecShape::FusedLdRun:
    return ExecShape::Ld;
  case ExecShape::FusedStRun:
    return ExecShape::St;
  case ExecShape::FusedKernelRun:
    // The head's own operation; recover its shape from the opcode.
    switch (D.Op) {
    case Opcode::Mov:
    case Opcode::Broadcast:
      return ExecShape::Mov;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      return ExecShape::Binary;
    case Opcode::Mad:
      return ExecShape::Mad;
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Not:
    case Opcode::Rcp:
    case Opcode::Sqrt:
    case Opcode::Rsqrt:
    case Opcode::Sin:
    case Opcode::Cos:
    case Opcode::Lg2:
    case Opcode::Ex2:
      return ExecShape::Unary;
    case Opcode::Setp:
      return ExecShape::Setp;
    case Opcode::Selp:
      return ExecShape::Selp;
    case Opcode::Cvt:
      return ExecShape::Cvt;
    case Opcode::Iota:
      return ExecShape::Iota;
    default:
      refuse();
      return ExecShape::Nop;
    }
  default:
    return D.Shape;
  }
}

std::string NativeEmitter::specialExpr(SReg S, uint32_t Lane) {
  if (Lane >= NativeMaxWarp) {
    refuse();
    return "0ull";
  }
  switch (S) {
  case SReg::TidX:
    return formatString("(uint64_t)A->TidX[%u]", Lane);
  case SReg::TidY:
    return formatString("(uint64_t)A->TidY[%u]", Lane);
  case SReg::TidZ:
    return formatString("(uint64_t)A->TidZ[%u]", Lane);
  case SReg::NTidX:
    return "(uint64_t)A->BlockDimX";
  case SReg::NTidY:
    return "(uint64_t)A->BlockDimY";
  case SReg::NTidZ:
    return "(uint64_t)A->BlockDimZ";
  case SReg::CTAIdX:
    return "(uint64_t)A->CtaIdX";
  case SReg::CTAIdY:
    return "(uint64_t)A->CtaIdY";
  case SReg::CTAIdZ:
    return "(uint64_t)A->CtaIdZ";
  case SReg::NCTAIdX:
    return "(uint64_t)A->GridDimX";
  case SReg::NCTAIdY:
    return "(uint64_t)A->GridDimY";
  case SReg::NCTAIdZ:
    return "(uint64_t)A->GridDimZ";
  case SReg::LaneId:
    return formatString("%uull", Lane);
  case SReg::WarpBaseTid:
    return "(uint64_t)A->WarpBaseTid";
  case SReg::WarpWidth:
    return formatString("%uull", WS);
  case SReg::EntryId:
    // Read live: SetRPoint may rewrite the resume points mid-run before
    // the resume-dispatch switch reads this (lane 0, like the interpreter).
    return "(uint64_t)A->ResumePoint[0]";
  }
  refuse();
  return "0ull";
}

std::string NativeEmitter::opExpr(const DecodedOp &Op, uint32_t Lane) {
  switch (Op.K) {
  case DecodedOp::Kind::RegVec:
    return formatString("RF[%uu]", Op.Slot + Lane);
  case DecodedOp::Kind::RegScal:
    return formatString("RF[%uu]", Op.Slot);
  case DecodedOp::Kind::Imm:
    return hexU64(Op.Imm);
  case DecodedOp::Kind::Special:
    return specialExpr(Op.S, Lane);
  case DecodedOp::Kind::None:
    break;
  }
  refuse();
  return "0ull";
}

std::string NativeEmitter::baseExpr(AddressSpace Space, uint32_t Lane) {
  switch (Space) {
  case AddressSpace::Global:
    return "A->Global";
  case AddressSpace::Shared:
    return "A->Shared";
  case AddressSpace::Local:
    if (Lane >= NativeMaxWarp) {
      refuse();
      return "A->Global";
    }
    return formatString("A->LocalMem[%u]", Lane);
  case AddressSpace::Param:
    return "A->ParamBuf";
  }
  refuse();
  return "A->Global";
}

std::string NativeEmitter::limitExpr(AddressSpace Space) {
  switch (Space) {
  case AddressSpace::Global:
    return "A->GlobalSize";
  case AddressSpace::Shared:
    return "A->SharedSize";
  case AddressSpace::Local:
    return "A->LocalSize";
  case AddressSpace::Param:
    return "A->ParamSize";
  }
  refuse();
  return "A->GlobalSize";
}

std::string NativeEmitter::settleStr(uint32_t AbsIdx) {
  // Refund the records strictly after the trapping one, folded in stream
  // order from 0.0 exactly like Interpreter::run's settleTrap.
  const DecodedBlock &B = Exec.decodedBlocks()[CurBlock];
  double TailCost = 0;
  uint64_t TailInsts = 0, TailVec = 0, TailFlops = 0;
  for (uint32_t P = AbsIdx + 1; P < B.First + B.Count; ++P) {
    const DecodedInst &D = Code[P];
    TailCost += D.Cost;
    ++TailInsts;
    TailVec += D.IsVector ? 1 : 0;
    TailFlops += D.Flops;
  }
  if (!std::isfinite(TailCost))
    refuse();
  return formatString("      *%s -= %s;\n"
                      "      *A->InstsExecuted -= %lluull;\n"
                      "      *A->VectorInsts -= %lluull;\n"
                      "      *A->Flops -= %lluull;\n"
                      "      return 3;\n",
                      Bucket.c_str(), dblLit(TailCost).c_str(),
                      static_cast<unsigned long long>(TailInsts),
                      static_cast<unsigned long long>(TailVec),
                      static_cast<unsigned long long>(TailFlops));
}

void NativeEmitter::emitTrapConst(const std::string &Msg, uint32_t AbsIdx) {
  add("      std::snprintf(A->TrapMsg, sizeof A->TrapMsg, \"%%s\", %s);\n",
      cstr(Msg).c_str());
  O += settleStr(AbsIdx);
}

/// Emits the overflow-proof bounds check (and, on failure, the trap path)
/// for one access of \p Bytes at the in-scope `Addr`. Returns false when
/// the access unconditionally traps (Param writes) — the caller must not
/// emit the access body.
bool NativeEmitter::emitBounds(uint32_t AbsIdx, AddressSpace Space,
                               bool Write, unsigned Bytes) {
  if (Space == AddressSpace::Param && Write) {
    emitTrapConst("store to the read-only parameter space", AbsIdx);
    return false;
  }
  std::string Limit = limitExpr(Space);
  add("      if ((uint64_t)%uu > %s || Addr > %s - (uint64_t)%uu) {\n", Bytes,
      Limit.c_str(), Limit.c_str(), Bytes);
  switch (Space) {
  case AddressSpace::Global:
    add("        std::snprintf(A->TrapMsg, sizeof A->TrapMsg,\n"
        "            \"out-of-bounds global access at 0x%%llx (+%%zu)\",\n"
        "            (unsigned long long)Addr, (size_t)%uu);\n",
        Bytes);
    break;
  case AddressSpace::Shared:
    add("        std::snprintf(A->TrapMsg, sizeof A->TrapMsg,\n"
        "            \"out-of-bounds shared access at 0x%%llx\",\n"
        "            (unsigned long long)Addr);\n");
    break;
  case AddressSpace::Local:
    add("        std::snprintf(A->TrapMsg, sizeof A->TrapMsg,\n"
        "            \"out-of-bounds local access at 0x%%llx\",\n"
        "            (unsigned long long)Addr);\n");
    break;
  case AddressSpace::Param:
    add("        std::snprintf(A->TrapMsg, sizeof A->TrapMsg,\n"
        "            \"out-of-bounds param access at 0x%%llx\",\n"
        "            (unsigned long long)Addr);\n");
    break;
  }
  O += "  " + settleStr(AbsIdx); // extra indent inside the if
  add("      }\n");
  return true;
}

void NativeEmitter::emitPrelude() {
  add("// Generated by the SIMTVec native tier; do not edit.\n"
      "// kernel '%s'  warp %u  layout %s  build %s\n\n",
      Exec.kernel().Name.c_str(), WS,
      formatString("%016llx",
                   (unsigned long long)Exec.layoutFingerprint())
          .c_str(),
      formatString("%016llx", (unsigned long long)BuildFp).c_str());
  O += "#include \"simtvec/ir/ScalarOpsImpl.h\"\n"
       "#include \"simtvec/vm/NativeABI.h\"\n\n"
       "#include <cstdint>\n"
       "#include <cstdio>\n"
       "#include <cstring>\n\n"
       "namespace {\n\n"
       "inline uint64_t ldN(const unsigned char *P, unsigned Bytes) {\n"
       "  switch (Bytes) {\n"
       "  case 1: { uint8_t V; std::memcpy(&V, P, sizeof V); return V; }\n"
       "  case 2: { uint16_t V; std::memcpy(&V, P, sizeof V); return V; }\n"
       "  case 4: { uint32_t V; std::memcpy(&V, P, sizeof V); return V; }\n"
       "  case 8: { uint64_t V; std::memcpy(&V, P, sizeof V); return V; }\n"
       "  default: { uint64_t V = 0; std::memcpy(&V, P, Bytes); return V; }\n"
       "  }\n"
       "}\n\n"
       "inline void stN(unsigned char *P, uint64_t V, unsigned Bytes) {\n"
       "  switch (Bytes) {\n"
       "  case 1: { uint8_t T = (uint8_t)V; std::memcpy(P, &T, sizeof T); "
       "break; }\n"
       "  case 2: { uint16_t T = (uint16_t)V; std::memcpy(P, &T, sizeof T); "
       "break; }\n"
       "  case 4: { uint32_t T = (uint32_t)V; std::memcpy(P, &T, sizeof T); "
       "break; }\n"
       "  case 8: std::memcpy(P, &V, sizeof V); break;\n"
       "  default: std::memcpy(P, &V, Bytes); break;\n"
       "  }\n"
       "}\n\n";

  // Modeled-L1 probe with the machine geometry folded in. Must evolve the
  // shared tag/MRU/FIFO arrays exactly like the fast engine's
  // globalAccessExtra (MRU-first probe, membership scan, FIFO victim).
  const bool Pow2 = std::has_single_bit(Machine.L1LineBytes) &&
                    std::has_single_bit(Machine.L1Sets);
  std::string LineExpr =
      Pow2 ? formatString("Addr >> %u",
                          (unsigned)std::countr_zero(Machine.L1LineBytes))
           : formatString("Addr / %uull", Machine.L1LineBytes);
  std::string SetExpr = Pow2 ? formatString("Line & %uull", Machine.L1Sets - 1)
                             : formatString("Line %% %uull", Machine.L1Sets);
  if (!std::isfinite(Machine.MemMissExtra))
    refuse();
  add("inline double l1x(simtvec::SimtvecNativeArgs *A, uint64_t Addr) {\n"
      "  uint64_t Line = %s;\n"
      "  uint64_t Set = %s;\n"
      "  uint64_t *Ways = A->L1Tags + Set * %uull;\n"
      "  ++*A->GlobalAccesses;\n"
      "  if (Ways[A->L1MRU[Set]] == Line)\n"
      "    return 0;\n"
      "  for (unsigned Way = 0; Way < %uu; ++Way)\n"
      "    if (Ways[Way] == Line) {\n"
      "      A->L1MRU[Set] = (uint8_t)Way;\n"
      "      return 0;\n"
      "    }\n"
      "  uint8_t Victim = A->L1NextWay[Set];\n"
      "  Ways[Victim] = Line;\n"
      "  A->L1MRU[Set] = Victim;\n"
      "  A->L1NextWay[Set] = (uint8_t)((Victim + 1u) %% %uu);\n"
      "  ++*A->GlobalMisses;\n"
      "  return %s;\n"
      "}\n\n"
      "} // namespace\n\n",
      LineExpr.c_str(), SetExpr.c_str(), Machine.L1Ways, Machine.L1Ways,
      Machine.L1Ways, dblLit(Machine.MemMissExtra).c_str());

  add("extern \"C\" const simtvec::SimtvecNativeMeta simtvec_native_meta = "
      "{\n    %uu, (uint32_t)sizeof(simtvec::SimtvecNativeArgs), %s, %s, "
      "%uu, 0u};\n\n",
      NativeAbiVersion, hexU64(Exec.layoutFingerprint()).c_str(),
      hexU64(BuildFp).c_str(), WS);

  O += "extern \"C\" int32_t simtvec_native_entry("
       "simtvec::SimtvecNativeArgs *A) {\n"
       "  using namespace simtvec;\n"
       "  using namespace simtvec::scalarops;\n"
       "  uint64_t *RF = A->RF;\n"
       "  int32_t PendingStatus = 2;\n"
       "  uint64_t Scr[8];\n"
       "  bool Bad = false;\n"
       "  (void)RF; (void)PendingStatus; (void)Scr; (void)Bad;\n";
}

void NativeEmitter::emitMemAccess(uint32_t AbsIdx, const DecodedInst &D,
                                  ExecShape S) {
  const bool Write = S != ExecShape::Ld;
  add("    {\n"
      "      uint64_t Addr = %s + %s;\n",
      opExpr(D.Src[0], D.Lane).c_str(),
      hexU64(static_cast<uint64_t>(D.MemOffset)).c_str());
  if (!emitBounds(AbsIdx, D.Space, Write, D.MemBytes)) {
    add("    }\n");
    return;
  }
  if (D.Space == AddressSpace::Global)
    add("      *%s += l1x(A, Addr);\n", Bucket.c_str());
  std::string Base = baseExpr(D.Space, D.Lane);
  switch (S) {
  case ExecShape::Ld:
    if (D.DstSlot == InvalidSlot) {
      refuse();
      break;
    }
    add("      RF[%uu] = ldN(%s + Addr, %uu);\n", D.DstSlot, Base.c_str(),
        D.MemBytes);
    break;
  case ExecShape::St:
    add("      stN(%s + Addr, %s, %uu);\n", Base.c_str(),
        opExpr(D.Src[1], D.Lane).c_str(), D.MemBytes);
    break;
  case ExecShape::AtomAdd:
    // Lock -> read-modify-write -> result writeback -> unlock, matching the
    // interpreter's unique_lock scope (released after the RF write).
    add("      if (A->Atomics) A->AtomLock(A->Atomics, Addr);\n"
        "      { uint64_t Old = ldN(%s + Addr, %uu);\n"
        "        bool BadA = false; (void)BadA;\n"
        "        uint64_t New = evalBinaryImpl((Opcode)%uu, (ScalarKind)%uu, "
        "Old, %s, BadA);\n"
        "        stN(%s + Addr, New, %uu);\n",
        Base.c_str(), D.MemBytes,
        static_cast<unsigned>(Opcode::Add), static_cast<unsigned>(D.Kind),
        opExpr(D.Src[1], D.Lane).c_str(), Base.c_str(), D.MemBytes);
    if (D.DstSlot != InvalidSlot)
      add("        RF[%uu] = Old;\n", D.DstSlot);
    add("      }\n"
        "      if (A->Atomics) A->AtomUnlock(A->Atomics, Addr);\n");
    break;
  default:
    refuse();
    break;
  }
  add("    }\n");
}

void NativeEmitter::emitSpillRestore(uint32_t AbsIdx, const DecodedInst &D,
                                     bool IsSpill) {
  // The local-space bounds check does not depend on the lane, so one check
  // covers the whole lane loop; a failure traps before any architectural
  // effect, exactly like the interpreter faulting at lane 0.
  if (!IsSpill && D.DstSlot == InvalidSlot) {
    refuse();
    return;
  }
  add("    {\n"
      "      if ((uint64_t)%uu > A->LocalSize || %s > A->LocalSize - "
      "(uint64_t)%uu) {\n",
      D.MemBytes, hexU64(D.SpillAddr).c_str(), D.MemBytes);
  emitTrapConst(formatString("out-of-bounds local access at 0x%llx",
                             static_cast<unsigned long long>(D.SpillAddr)),
                AbsIdx);
  add("      }\n");
  for (uint32_t L = 0; L < D.N; ++L) {
    uint32_t T = D.IsVector ? L : D.Lane;
    if (T >= NativeMaxWarp) {
      refuse();
      return;
    }
    if (IsSpill)
      add("      stN(A->LocalMem[%u] + %s, %s, %uu);\n", T,
          hexU64(D.SpillAddr).c_str(), opExpr(D.Src[0], T).c_str(),
          D.MemBytes);
    else
      add("      RF[%uu] = ldN(A->LocalMem[%u] + %s, %uu);\n", D.DstSlot + L,
          T, hexU64(D.SpillAddr).c_str(), D.MemBytes);
  }
  add("      *A->%s += %uull;\n"
      "    }\n",
      IsSpill ? "SpilledValues" : "RestoredValues", D.N);
}

void NativeEmitter::emitRecord(uint32_t AbsIdx, const DecodedInst &D,
                               ExecShape S) {
  const uint32_t N = D.N;
  if (N > NativeMaxWarp || D.SrcN > NativeMaxWarp) {
    refuse();
    return;
  }

  auto ctxLane = [&](uint32_t L) { return D.IsVector ? L : D.Lane; };
  auto invalidTrap = [&](const std::string &Msg) {
    // The generic path zeroes every destination lane before trapping.
    add("    {\n");
    for (uint32_t L = 0; L < N; ++L)
      add("      RF[%uu] = 0;\n", D.DstSlot + L);
    emitTrapConst(Msg, AbsIdx);
    add("    }\n");
  };

  switch (S) {
  case ExecShape::Mov: {
    const bool PerLane = D.Op == Opcode::Broadcast || D.IsVector;
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = %s;\n", D.DstSlot + L,
          opExpr(D.Src[0], PerLane ? L : D.Lane).c_str());
    break;
  }
  case ExecShape::Binary: {
    if (!D.Fn.Bin && !D.Kern.Lanes) {
      invalidTrap(formatString("invalid %s on %s", opcodeName(D.Op),
                               D.Ty.str().c_str()));
      break;
    }
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = evalBinaryImpl((Opcode)%uu, (ScalarKind)%uu, %s, "
          "%s, Bad);\n",
          D.DstSlot + L, static_cast<unsigned>(D.Op),
          static_cast<unsigned>(D.Kind),
          opExpr(D.Src[0], ctxLane(L)).c_str(),
          opExpr(D.Src[1], ctxLane(L)).c_str());
    break;
  }
  case ExecShape::Mad: {
    if (!D.Fn.MadF && !D.Kern.Lanes) {
      invalidTrap("invalid mad type");
      break;
    }
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = evalMadImpl((ScalarKind)%uu, %s, %s, %s, Bad);\n",
          D.DstSlot + L, static_cast<unsigned>(D.Kind),
          opExpr(D.Src[0], ctxLane(L)).c_str(),
          opExpr(D.Src[1], ctxLane(L)).c_str(),
          opExpr(D.Src[2], ctxLane(L)).c_str());
    break;
  }
  case ExecShape::Unary: {
    if (!D.Fn.Un && !D.Kern.Lanes) {
      invalidTrap(formatString("invalid %s on %s", opcodeName(D.Op),
                               D.Ty.str().c_str()));
      break;
    }
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = evalUnaryImpl((Opcode)%uu, (ScalarKind)%uu, %s, "
          "Bad);\n",
          D.DstSlot + L, static_cast<unsigned>(D.Op),
          static_cast<unsigned>(D.Kind),
          opExpr(D.Src[0], ctxLane(L)).c_str());
    break;
  }
  case ExecShape::Setp: {
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = evalCmpImpl((CmpOp)%uu, (ScalarKind)%uu, %s, %s) ? "
          "1ull : 0ull;\n",
          D.DstSlot + L, static_cast<unsigned>(D.Cmp),
          static_cast<unsigned>(D.Kind),
          opExpr(D.Src[0], ctxLane(L)).c_str(),
          opExpr(D.Src[1], ctxLane(L)).c_str());
    break;
  }
  case ExecShape::Selp: {
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = ((%s & 1) != 0) ? %s : %s;\n", D.DstSlot + L,
          opExpr(D.Src[2], ctxLane(L)).c_str(),
          opExpr(D.Src[0], ctxLane(L)).c_str(),
          opExpr(D.Src[1], ctxLane(L)).c_str());
    break;
  }
  case ExecShape::Cvt: {
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = evalConvertImpl((ScalarKind)%uu, (ScalarKind)%uu, "
          "%s);\n",
          D.DstSlot + L, static_cast<unsigned>(D.Kind),
          static_cast<unsigned>(D.CvtSrcKind),
          opExpr(D.Src[0], ctxLane(L)).c_str());
    break;
  }

  case ExecShape::Ld:
  case ExecShape::St:
  case ExecShape::AtomAdd:
    emitMemAccess(AbsIdx, D, S);
    break;

  case ExecShape::InsertElement: {
    if (D.AuxLane >= N) {
      refuse();
      break;
    }
    add("    {\n");
    for (uint32_t L = 0; L < N; ++L)
      add("      Scr[%u] = %s;\n", L, opExpr(D.Src[0], L).c_str());
    add("      Scr[%u] = %s;\n", D.AuxLane,
        opExpr(D.Src[1], D.Lane).c_str());
    for (uint32_t L = 0; L < N; ++L)
      add("      RF[%uu] = Scr[%u];\n", D.DstSlot + L, L);
    add("    }\n");
    break;
  }
  case ExecShape::ExtractElement:
    add("    RF[%uu] = %s;\n", D.DstSlot,
        opExpr(D.Src[0], D.AuxLane).c_str());
    break;
  case ExecShape::Iota:
    for (uint32_t L = 0; L < N; ++L)
      add("    RF[%uu] = %uull;\n", D.DstSlot + L, L);
    break;
  case ExecShape::VoteSum: {
    std::string Sum;
    for (uint32_t L = 0; L < D.SrcN; ++L) {
      if (L)
        Sum += " + ";
      Sum += formatString("((%s) & 1)", opExpr(D.Src[0], L).c_str());
    }
    if (Sum.empty())
      Sum = "0ull";
    add("    RF[%uu] = %s;\n", D.DstSlot, Sum.c_str());
    break;
  }

  case ExecShape::Spill:
    emitSpillRestore(AbsIdx, D, /*IsSpill=*/true);
    break;
  case ExecShape::Restore:
    emitSpillRestore(AbsIdx, D, /*IsSpill=*/false);
    break;

  case ExecShape::SetRPoint:
    for (uint32_t L = 0; L < WS; ++L)
      add("    A->ResumePoint[%u] = (uint32_t)%s;\n", L,
          opExpr(D.Src[0], L).c_str());
    break;
  case ExecShape::SetRStatus:
    add("    PendingStatus = %d;\n", static_cast<int>(D.Src[0].Imm));
    break;
  case ExecShape::Nop:
    break;

  case ExecShape::BarSync:
    add("    {\n");
    emitTrapConst("bar.sync executed directly; barriers must be lowered to "
                  "yields before execution",
                  AbsIdx);
    add("    }\n");
    break;
  case ExecShape::Trap:
    add("    {\n");
    emitTrapConst("trap instruction executed", AbsIdx);
    add("    }\n");
    break;

  case ExecShape::Ret:
    add("    return 2;\n");
    break;
  case ExecShape::Yield:
    add("    return PendingStatus;\n");
    break;

  case ExecShape::Bra:
  case ExecShape::Switch:
    // A non-final branch only assigns NextBlock, which the block's real
    // terminator overwrites before it is consulted: no effect to emit.
    add("    // non-final %s: overwritten by the block terminator\n",
        S == ExecShape::Bra ? "bra" : "switch");
    break;

  default:
    refuse();
    break;
  }
}

void NativeEmitter::emitTerminator(uint32_t AbsIdx, const DecodedInst &D) {
  switch (D.Shape) {
  case ExecShape::Bra:
    if (D.GuardSlot != InvalidSlot) {
      if (!validTarget(D.Target) || !validTarget(D.FalseTarget)) {
        refuse();
        return;
      }
      add("    if ((RF[%uu] & 1) %s 0)\n"
          "      goto B%u;\n"
          "    goto B%u;\n",
          D.GuardSlot, D.GuardNegated ? "==" : "!=", D.Target, D.FalseTarget);
    } else {
      if (!validTarget(D.Target)) {
        refuse();
        return;
      }
      add("    goto B%u;\n", D.Target);
    }
    return;
  case ExecShape::Switch: {
    if (D.GuardSlot != InvalidSlot) {
      refuse();
      return;
    }
    const DecodedSwitch &SW = Exec.switchTable(D.SwitchId);
    if (!validTarget(SW.Default)) {
      refuse();
      return;
    }
    add("    {\n"
        "      uint64_t V = %s;\n"
        "      (void)V;\n",
        opExpr(D.Src[0], 0).c_str());
    for (size_t Case = 0; Case < SW.Values.size(); ++Case) {
      if (!validTarget(SW.Targets[Case])) {
        refuse();
        return;
      }
      add("      if (V == %s) goto B%u;\n",
          hexU64(static_cast<uint64_t>(SW.Values[Case])).c_str(),
          SW.Targets[Case]);
    }
    add("      goto B%u;\n"
        "    }\n",
        SW.Default);
    return;
  }
  case ExecShape::Ret:
  case ExecShape::Yield:
  case ExecShape::Trap:
  case ExecShape::BarSync:
    if (D.GuardSlot != InvalidSlot) {
      // A guarded final non-branch could fall off the block end (the
      // interpreter asserts); refuse rather than guess.
      refuse();
      return;
    }
    emitRecord(AbsIdx, D, D.Shape);
    return;
  default:
    refuse();
    return;
  }
}

void NativeEmitter::emitBlock(uint32_t BlockIdx) {
  const DecodedBlock &B = Exec.decodedBlocks()[BlockIdx];
  CurBlock = BlockIdx;
  Bucket = B.IsBody ? "A->EMBody" : "A->EMYield";
  if (B.Count == 0) {
    refuse();
    return;
  }
  if (!std::isfinite(B.CostSum)) {
    refuse();
    return;
  }

  add("\nB%u: {\n", BlockIdx);
  // Block-batched counters, added unconditionally on entry (trap paths
  // refund their tails) — same contract as both interpreter engines.
  add("  *%s += %s;\n"
      "  *A->InstsExecuted += %lluull;\n"
      "  *A->VectorInsts += %lluull;\n"
      "  *A->Flops += %lluull;\n",
      Bucket.c_str(), dblLit(B.CostSum).c_str(),
      static_cast<unsigned long long>(B.InstsSum),
      static_cast<unsigned long long>(B.VectorSum),
      static_cast<unsigned long long>(B.FlopsSum));

  const uint32_t End = B.First + B.Count;
  const uint32_t TermIdx = End - 1;
  uint32_t I = B.First;
  // Body records (everything before the terminator).
  while (I < TermIdx && OK) {
    const DecodedInst &D = Code[I];
    const uint32_t Len = D.FuseLen ? D.FuseLen : 1;
    if (I + Len > TermIdx) {
      // A fused group may not absorb the block terminator.
      refuse();
      return;
    }
    const bool Guarded =
        D.GuardSlot != InvalidSlot && D.Shape != ExecShape::Bra;
    if (Guarded)
      add("  if ((RF[%uu] & 1) %s 0) {\n", D.GuardSlot,
          D.GuardNegated ? "==" : "!=");
    for (uint32_t J = 0; J < Len && OK; ++J) {
      const DecodedInst &M = Code[I + J];
      if (J > 0 && M.FuseLen) {
        refuse();
        break;
      }
      add("  // inst %u\n", I + J);
      emitRecord(I + J, M, J == 0 ? semanticShape(M) : M.Shape);
    }
    if (Guarded)
      add("  }\n");
    I += Len;
  }
  if (!OK)
    return;

  // Terminator.
  const DecodedInst &Last = Code[End - 1];
  if (Last.FuseLen) {
    refuse();
    return;
  }
  add("  // inst %u (terminator)\n", End - 1);
  emitTerminator(End - 1, Last);
  add("}\n");
}

std::string NativeEmitter::emit() {
  if (WS < 1 || WS > NativeMaxWarp)
    return "";
  if (Machine.L1LineBytes == 0 || Machine.L1Sets == 0 || Machine.L1Ways == 0)
    return "";
  if (Exec.decodedBlocks().empty())
    return "";

  emitPrelude();
  for (uint32_t BI = 0; BI < Exec.decodedBlocks().size() && OK; ++BI)
    emitBlock(BI);
  // Unreachable (every block ends in a goto or return), but keeps the
  // function well-formed for flow-sensitive diagnostics.
  O += "  return 2;\n}\n";
  return OK ? O : std::string();
}

} // namespace

std::string simtvec::emitNativeSource(const KernelExec &Exec,
                                      const MachineModel &Machine,
                                      uint64_t BuildFingerprint) {
  return NativeEmitter(Exec, Machine, BuildFingerprint).emit();
}
