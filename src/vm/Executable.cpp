//===- vm/Executable.cpp - Prepared kernel for the VM ---------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/Executable.h"

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"
#include "simtvec/support/Serialize.h"

#include <algorithm>

using namespace simtvec;

namespace {

ExecShape shapeOf(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Broadcast:
    return ExecShape::Mov;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return ExecShape::Binary;
  case Opcode::Mad:
    return ExecShape::Mad;
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Not:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
    return ExecShape::Unary;
  case Opcode::Setp:
    return ExecShape::Setp;
  case Opcode::Selp:
    return ExecShape::Selp;
  case Opcode::Cvt:
    return ExecShape::Cvt;
  case Opcode::Ld:
    return ExecShape::Ld;
  case Opcode::St:
    return ExecShape::St;
  case Opcode::AtomAdd:
    return ExecShape::AtomAdd;
  case Opcode::InsertElement:
    return ExecShape::InsertElement;
  case Opcode::ExtractElement:
    return ExecShape::ExtractElement;
  case Opcode::Iota:
    return ExecShape::Iota;
  case Opcode::VoteSum:
    return ExecShape::VoteSum;
  case Opcode::Spill:
    return ExecShape::Spill;
  case Opcode::Restore:
    return ExecShape::Restore;
  case Opcode::SetRPoint:
    return ExecShape::SetRPoint;
  case Opcode::SetRStatus:
    return ExecShape::SetRStatus;
  case Opcode::Membar:
    return ExecShape::Nop;
  case Opcode::BarSync:
    return ExecShape::BarSync;
  case Opcode::Bra:
    return ExecShape::Bra;
  case Opcode::Switch:
    return ExecShape::Switch;
  case Opcode::Ret:
    return ExecShape::Ret;
  case Opcode::Yield:
    return ExecShape::Yield;
  case Opcode::Trap:
    return ExecShape::Trap;
  }
  return ExecShape::Trap;
}

/// Byte size of a spill slot element for one lane (predicates spill as one
/// byte).
unsigned spillElemBytes(Type Ty) {
  return Ty.isPred() ? 1 : Ty.scalar().byteSize();
}

} // namespace

namespace simtvec {

/// Decode helper with access to KernelExec internals.
struct KernelExecBuilder {
  KernelExec &E;
  const Kernel &K;
  const MachineModel &Machine;
  SimdPath Simd;

  DecodedOp decodeOperand(const Operand &O) const {
    DecodedOp D;
    switch (O.kind()) {
    case Operand::Kind::Reg:
      D.K = K.regType(O.regId()).isVector() ? DecodedOp::Kind::RegVec
                                            : DecodedOp::Kind::RegScal;
      D.Slot = E.RegOffset[O.regId().Index];
      break;
    case Operand::Kind::Imm:
      D.K = DecodedOp::Kind::Imm;
      D.Imm = O.immBits();
      break;
    case Operand::Kind::Special:
      D.K = DecodedOp::Kind::Special;
      D.S = O.specialReg();
      break;
    case Operand::Kind::Symbol:
      // Address symbols resolve to their space offsets at translation time.
      D.K = DecodedOp::Kind::Imm;
      switch (O.symKind()) {
      case SymKind::Param:
        D.Imm = K.Params[O.symIndex()].Offset;
        break;
      case SymKind::Shared:
        D.Imm = K.SharedVars[O.symIndex()].Offset;
        break;
      case SymKind::Local:
        D.Imm = K.LocalVars[O.symIndex()].Offset;
        break;
      }
      break;
    case Operand::Kind::None:
      break;
    }
    return D;
  }

  DecodedInst decode(const Instruction &I, double BlockPenalty) const {
    DecodedInst D;
    D.Shape = shapeOf(I.Op);
    D.Op = I.Op;
    D.Ty = I.Ty;
    D.Kind = I.Ty.kind();
    D.Space = I.Space;
    D.IsVector = I.Ty.isVector();
    D.N = std::max<uint16_t>(1, I.Ty.lanes());
    D.Lane = I.Lane;
    D.Cmp = I.Cmp;
    D.Cost = Machine.issueCost(I) + BlockPenalty;
    D.Flops = Machine.flopsFor(I);
    if (I.Dst.isValid())
      D.DstSlot = E.RegOffset[I.Dst.Index];
    if (I.Guard.isValid()) {
      D.GuardSlot = E.RegOffset[I.Guard.Index];
      D.GuardNegated = I.GuardNegated;
    }
    for (size_t S = 0; S < I.Srcs.size() && S < 3; ++S)
      D.Src[S] = decodeOperand(I.Srcs[S]);

    switch (D.Shape) {
    case ExecShape::Binary:
      D.Fn.Bin = resolveBinary(I.Op, D.Kind);
      break;
    case ExecShape::Unary:
      D.Fn.Un = resolveUnary(I.Op, D.Kind);
      break;
    case ExecShape::Mad:
      D.Fn.MadF = resolveMad(D.Kind);
      break;
    case ExecShape::Setp:
      D.Fn.CmpF = resolveCmp(I.Cmp, D.Kind);
      break;
    default:
      break;
    }

    switch (I.Op) {
    case Opcode::Cvt:
      D.CvtSrcKind = I.Srcs[0].isReg() ? K.regType(I.Srcs[0].regId()).kind()
                     : I.Srcs[0].isImm() ? I.Srcs[0].immType().kind()
                                         : ScalarKind::U32;
      D.Fn.Cvt = resolveConvert(D.Kind, D.CvtSrcKind);
      break;
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::AtomAdd:
      D.MemBytes = static_cast<uint8_t>(I.Ty.byteSize());
      D.MemOffset = I.MemOffset;
      break;
    case Opcode::Spill:
    case Opcode::Restore:
      D.MemBytes = static_cast<uint8_t>(spillElemBytes(I.Ty));
      D.SpillAddr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
      break;
    case Opcode::InsertElement:
      D.AuxLane = static_cast<uint32_t>(I.Srcs[2].immInt());
      break;
    case Opcode::ExtractElement:
      D.AuxLane = static_cast<uint32_t>(I.Srcs[1].immInt());
      break;
    case Opcode::VoteSum:
      D.SrcN = I.Srcs[0].isReg()
                   ? std::max<uint16_t>(1, K.regType(I.Srcs[0].regId()).lanes())
                   : 1;
      break;
    case Opcode::Bra:
      D.Target = I.Target;
      D.FalseTarget = I.FalseTarget;
      break;
    case Opcode::Switch: {
      DecodedSwitch SW;
      SW.Values = I.SwitchValues;
      SW.Targets = I.SwitchTargets;
      SW.Default = I.SwitchDefault;
      D.SwitchId = static_cast<uint32_t>(E.Switches.size());
      E.Switches.push_back(std::move(SW));
      break;
    }
    default:
      break;
    }

    // Specialized lane kernels (vm/ExecKernels.h): fold the operation, kind
    // and width into one fixed-trip-count handler where a specialization
    // exists; null keeps the generic per-lane path (bit-identical results
    // either way). Scalar records execute as width-1 kernels over operands
    // materialized at the record's replicated lane — except scalar
    // Broadcast, whose per-lane semantics read lane L, not D.Lane. Kernels
    // are resolved at every width here so the fusion pass can chain them;
    // build() clears them again on solo single-lane records, where one
    // direct call is measurably cheaper than the kernel indirection.
    switch (D.Shape) {
    case ExecShape::Binary:
      if (D.Fn.Bin)
        D.Kern.Lanes = resolveBinaryLanes(I.Op, D.Kind, D.N, Simd);
      break;
    case ExecShape::Unary:
      if (D.Fn.Un)
        D.Kern.Lanes = resolveUnaryLanes(I.Op, D.Kind, D.N, Simd);
      break;
    case ExecShape::Mad:
      if (D.Fn.MadF)
        D.Kern.Lanes = resolveMadLanes(D.Kind, D.N, Simd);
      break;
    case ExecShape::Setp:
      if (D.Fn.CmpF)
        D.Kern.Lanes = resolveSetpLanes(I.Cmp, D.Kind, D.N, Simd);
      break;
    case ExecShape::Selp:
      D.Kern.Lanes = resolveSelpLanes(D.N, Simd);
      break;
    case ExecShape::Cvt:
      if (D.Fn.Cvt)
        D.Kern.Lanes = resolveConvertLanes(D.Kind, D.CvtSrcKind, D.N, Simd);
      break;
    case ExecShape::Mov:
      if (D.IsVector || I.Op == Opcode::Mov)
        D.Kern.Lanes = resolveMovLanes(D.N, Simd);
      break;
    default:
      break;
    }
    return D;
  }
};

} // namespace simtvec

//===----------------------------------------------------------------------===
// Superinstruction fusion: a peephole pass over each block's records. The
// fused head record is rewritten in place (Shape + FuseLen + Kern); member
// records stay in the stream untouched — the interpreter reads their
// operands through the head but advances past them with Inst += FuseLen, so
// block bounds and the batched counter sums are unchanged by fusion.
//===----------------------------------------------------------------------===

namespace {

/// Slot range a register operand of \p D reads: vector operands read one
/// slot per lane, scalar reads are a single slot (at the record's
/// replicated lane for vector registers).
bool readsSlotRange(const DecodedInst &D, const DecodedOp &O, uint32_t First,
                    uint32_t Len) {
  uint32_t RFirst, RLen;
  switch (O.K) {
  case DecodedOp::Kind::RegVec:
    if (D.IsVector) {
      RFirst = O.Slot;
      RLen = D.N;
    } else {
      RFirst = O.Slot + D.Lane;
      RLen = 1;
    }
    break;
  case DecodedOp::Kind::RegScal:
    RFirst = O.Slot;
    RLen = 1;
    break;
  default:
    return false;
  }
  return RFirst < First + Len && First < RFirst + RLen;
}

/// setp + selp consuming its predicate -> one fused compare-select.
bool tryFuseCmpSel(DecodedInst &Head, const DecodedInst &Next,
                   SimdPath Simd) {
  if (Head.Shape != ExecShape::Setp || Next.Shape != ExecShape::Selp)
    return false;
  if (Head.GuardSlot != InvalidSlot || Next.GuardSlot != InvalidSlot)
    return false;
  if (Head.N != Next.N || Head.IsVector != Next.IsVector)
    return false;
  // The selp's predicate operand must be exactly the setp's destination.
  const DecodedOp &P = Next.Src[2];
  if (Head.IsVector) {
    if (P.K != DecodedOp::Kind::RegVec || P.Slot != Head.DstSlot)
      return false;
  } else {
    if (P.K != DecodedOp::Kind::RegScal || P.Slot != Head.DstSlot)
      return false;
  }
  // The selp's value operands must not read the freshly written predicate
  // (the kernel reads them before the predicate store; unfused order reads
  // them after).
  if (readsSlotRange(Next, Next.Src[0], Head.DstSlot, Head.N) ||
      readsSlotRange(Next, Next.Src[1], Head.DstSlot, Head.N))
    return false;
  CmpSelKernelFn Kern = resolveCmpSelLanes(Head.Cmp, Head.Kind, Head.N, Simd);
  if (!Kern)
    return false;
  Head.Shape = ExecShape::FusedCmpSel;
  Head.FuseLen = 2;
  Head.Kern.CmpSel = Kern;
  return true;
}

/// iota + binary consuming it -> fused affine tid-address compute: the
/// interpreter writes the iota and runs the binary's lane kernel in one
/// dispatch.
bool tryFuseIotaBin(DecodedInst &Head, const DecodedInst &Next) {
  if (Head.Shape != ExecShape::Iota || Next.Shape != ExecShape::Binary ||
      !Next.Kern.Lanes)
    return false;
  if (Head.GuardSlot != InvalidSlot || Next.GuardSlot != InvalidSlot)
    return false;
  if (!Head.IsVector || !Next.IsVector || Head.N != Next.N)
    return false;
  const auto ConsumesIota = [&](const DecodedOp &O) {
    return O.K == DecodedOp::Kind::RegVec && O.Slot == Head.DstSlot;
  };
  if (!ConsumesIota(Next.Src[0]) && !ConsumesIota(Next.Src[1]))
    return false;
  Head.Shape = ExecShape::FusedIotaBin;
  Head.FuseLen = 2;
  Head.Kern.Lanes = Next.Kern.Lanes;
  return true;
}

/// Length of the contiguous spill/restore run starting at \p I: records of
/// the same shape, guard, width and replicated lane whose spill slots form
/// one contiguous byte range. Guarded restore runs stop before any member
/// that overwrites the guard register (later members would re-evaluate it).
uint32_t spillRunLength(const std::vector<DecodedInst> &Code, uint32_t I,
                        uint32_t End, uint32_t &TotalBytes) {
  const DecodedInst &H = Code[I];
  uint64_t NextAddr = H.SpillAddr + H.MemBytes;
  TotalBytes = H.MemBytes;
  uint32_t Len = 1;
  while (I + Len < End) {
    const DecodedInst &M = Code[I + Len];
    if (M.Shape != H.Shape || M.GuardSlot != H.GuardSlot ||
        M.GuardNegated != H.GuardNegated || M.IsVector != H.IsVector ||
        M.N != H.N || M.Lane != H.Lane || M.SpillAddr != NextAddr)
      break;
    if (H.Shape == ExecShape::Restore && H.GuardSlot != InvalidSlot &&
        H.GuardSlot >= M.DstSlot && H.GuardSlot < M.DstSlot + M.N)
      break;
    NextAddr += M.MemBytes;
    TotalBytes += M.MemBytes;
    ++Len;
  }
  return Len;
}

/// A record the kernel-run pass may chain: it executes entirely through its
/// pre-resolved lane kernel (the interpreter's run loop calls Kern.Lanes
/// with up to three kernSrc operands and nothing else).
bool isSoloKernelRecord(const DecodedInst &D) {
  if (D.FuseLen != 0 || !D.Kern.Lanes)
    return false;
  switch (D.Shape) {
  case ExecShape::Mov:
  case ExecShape::Binary:
  case ExecShape::Mad:
  case ExecShape::Unary:
  case ExecShape::Setp:
  case ExecShape::Selp:
  case ExecShape::Cvt:
    return true;
  default:
    return false;
  }
}

/// Does \p D write the register slot \p Slot? Kernel records write exactly
/// [DstSlot, DstSlot + N).
bool writesSlot(const DecodedInst &D, uint32_t Slot) {
  return Slot >= D.DstSlot && Slot < D.DstSlot + D.N;
}

void fuseBlock(std::vector<DecodedInst> &Code, uint32_t First, uint32_t Count,
               SimdPath Simd) {
  const uint32_t End = First + Count;

  // Pass 1: targeted pairs. These beat the generic kernel run below (one
  // fused handler instead of two chained calls), so they claim their
  // records first.
  for (uint32_t I = First; I + 1 < End;) {
    DecodedInst &D = Code[I];
    if (tryFuseCmpSel(D, Code[I + 1], Simd) || tryFuseIotaBin(D, Code[I + 1]))
      I += 2;
    else
      ++I;
  }

  // Pass 2: maximal strips of kernel-bearing records under one guard become
  // a single dispatch (the run loop invokes each member's own kernel).
  // Guarded strips must not extend past a member that writes the shared
  // guard register: the unfused stream re-reads the guard at every record,
  // while the fused head reads it once.
  for (uint32_t I = First; I < End;) {
    DecodedInst &D = Code[I];
    if (D.FuseLen) {
      I += D.FuseLen;
      continue;
    }
    if (!isSoloKernelRecord(D)) {
      ++I;
      continue;
    }
    const bool Guarded = D.GuardSlot != InvalidSlot;
    bool GuardWritten = Guarded && writesSlot(D, D.GuardSlot);
    uint32_t Len = 1;
    while (I + Len < End) {
      const DecodedInst &M = Code[I + Len];
      if (!isSoloKernelRecord(M) || M.GuardSlot != D.GuardSlot ||
          M.GuardNegated != D.GuardNegated || GuardWritten)
        break;
      if (Guarded)
        GuardWritten = writesSlot(M, D.GuardSlot);
      ++Len;
    }
    if (Len >= 2) {
      D.Shape = ExecShape::FusedKernelRun;
      D.FuseLen = static_cast<uint16_t>(Len);
    }
    I += Len;
  }

  // Pass 3: contiguous spill/restore runs -> bulk block moves.
  for (uint32_t I = First; I < End;) {
    DecodedInst &D = Code[I];
    if (D.FuseLen) {
      I += D.FuseLen;
      continue;
    }
    if ((D.Shape == ExecShape::Spill || D.Shape == ExecShape::Restore) &&
        D.N <= 64) {
      uint32_t TotalBytes = 0;
      uint32_t Len = spillRunLength(Code, I, End, TotalBytes);
      if (Len >= 2) {
        D.FuseLen = static_cast<uint16_t>(Len);
        D.AuxLane = TotalBytes; // unused by Spill/Restore records
        D.Shape = D.Shape == ExecShape::Spill ? ExecShape::FusedSpillRun
                                              : ExecShape::FusedRestoreRun;
        I += Len;
        continue;
      }
    }
    ++I;
  }

  // Pass 4: adjacent scalar Ld (or St) records under one guard become a
  // single dispatch. The vectorizer replicates a warp memory access into WS
  // consecutive scalar records, so these runs are the memory analogue of the
  // kernel strips above. The fused handler executes members strictly in
  // stream order, reading each member's operands at its own turn, so address
  // dependencies between members are preserved; guarded runs stop past a
  // member that writes the shared guard register, as above.
  for (uint32_t I = First; I < End;) {
    DecodedInst &D = Code[I];
    if (D.FuseLen) {
      I += D.FuseLen;
      continue;
    }
    if (D.Shape != ExecShape::Ld && D.Shape != ExecShape::St) {
      ++I;
      continue;
    }
    const bool Guarded = D.GuardSlot != InvalidSlot;
    bool GuardWritten = Guarded && writesSlot(D, D.GuardSlot);
    uint32_t Len = 1;
    while (I + Len < End) {
      const DecodedInst &M = Code[I + Len];
      if (M.Shape != D.Shape || M.GuardSlot != D.GuardSlot ||
          M.GuardNegated != D.GuardNegated || GuardWritten)
        break;
      if (Guarded)
        GuardWritten = writesSlot(M, D.GuardSlot);
      ++Len;
    }
    if (Len >= 2) {
      const bool IsLd = D.Shape == ExecShape::Ld;
      // Homogeneous-run detection for the vector fast path: when member J's
      // address lives in register-file word Base + J (either lane J of one
      // shared vector slot, or — the common warp-decode shape — consecutive
      // scalar slots) with one shared offset/size/space, the whole run's
      // addresses and bounds checks collapse to one Simd computation over
      // the contiguous words at RF[Base..Base+Len). Local space is excluded
      // (per-lane base pointers); St-to-Param always traps; Ld runs whose
      // destinations overlap the address words are excluded because the
      // fast path reads all address lanes up front, while the member loop
      // would observe earlier members' loads.
      bool Homogeneous = (Len == 2 || Len == 4 || Len == 8) &&
                         D.Space != AddressSpace::Local &&
                         (IsLd || D.Space != AddressSpace::Param) &&
                         (D.Src[0].K == DecodedOp::Kind::RegScal ||
                          D.Src[0].K == DecodedOp::Kind::RegVec);
      const uint32_t Base = D.Src[0].Slot;
      for (uint32_t J = 0; Homogeneous && J < Len; ++J) {
        const DecodedInst &M = Code[I + J];
        const bool AddrAt = // opVal(M.Src[0], M.Lane) == RF[Base + J]?
            (M.Src[0].K == DecodedOp::Kind::RegScal &&
             M.Src[0].Slot == Base + J) ||
            (M.Src[0].K == DecodedOp::Kind::RegVec &&
             M.Src[0].Slot == Base && M.Lane == J);
        Homogeneous = AddrAt && M.Space == D.Space &&
                      M.MemBytes == D.MemBytes &&
                      M.MemOffset == D.MemOffset && !M.IsVector && M.N == 1;
        if (Homogeneous && IsLd && M.DstSlot >= Base && M.DstSlot < Base + Len)
          Homogeneous = false;
      }
      D.Shape = IsLd ? ExecShape::FusedLdRun : ExecShape::FusedStRun;
      D.FuseLen = static_cast<uint16_t>(Len);
      if (Homogeneous)
        D.Kern.RunCheck = resolveRunAddrCheck(Len, Simd);
    }
    I += Len;
  }
}

} // namespace

std::shared_ptr<const KernelExec>
KernelExec::build(std::unique_ptr<Kernel> K, const MachineModel &Machine,
                  bool Superinstructions, SimdPath Simd) {
  auto Exec = std::make_shared<KernelExec>();
  Exec->Simd = Simd;

  // Register-file layout: one 64-bit slot per lane.
  Exec->RegOffset.reserve(K->Regs.size());
  uint32_t Slot = 0;
  for (const VirtualRegister &R : K->Regs) {
    Exec->RegOffset.push_back(Slot);
    Slot += std::max<uint16_t>(1, R.Ty.lanes());
  }
  Exec->TotalSlots = Slot;

  // Per-block register-pressure penalty (paper Table 1: exceeding the
  // machine vector width "increases register pressure and extends the live
  // ranges of values", degrading warp-size-8 throughput).
  CFG G(*K);
  Liveness Live(*K, G);
  Exec->BlockPenalty.resize(K->Blocks.size());
  auto RegCost = [&Machine](const Kernel &Kern, RegId R) {
    return Machine.physRegsFor(Kern.regType(R));
  };
  for (uint32_t B = 0; B < K->Blocks.size(); ++B) {
    unsigned Pressure = Live.maxPressure(*K, B, RegCost);
    Exec->MaxPressure = std::max(Exec->MaxPressure, Pressure);
    unsigned Budget = Machine.NumVecRegs + Machine.PressureSlackRegs;
    unsigned Excess = Pressure > Budget ? Pressure - Budget : 0;
    Exec->BlockPenalty[B] = Excess * Machine.SpillPenaltyPerExcessReg;
  }

  // Lower every instruction into the flat pre-decoded stream. The per-block
  // pressure penalty folds into each record's issue cost (the interpreter
  // adds Cost exactly as the IR walk added issueCost(I) + Penalty).
  KernelExecBuilder B{*Exec, *K, Machine, Simd};
  Exec->DBlocks.resize(K->Blocks.size());
  for (uint32_t Blk = 0; Blk < K->Blocks.size(); ++Blk) {
    const BasicBlock &Block = K->Blocks[Blk];
    DecodedBlock &DB = Exec->DBlocks[Blk];
    DB.First = static_cast<uint32_t>(Exec->Code.size());
    DB.Count = static_cast<uint32_t>(Block.Insts.size());
    DB.IsBody = Block.Kind == BlockKind::Body;
    for (const Instruction &I : Block.Insts)
      Exec->Code.push_back(B.decode(I, Exec->BlockPenalty[Blk]));
    if (Superinstructions)
      fuseBlock(Exec->Code, DB.First, DB.Count, Simd);

    // Solo single-lane records go back to the generic direct path: measured
    // on the wallclock suite, operand materialization plus the indirect
    // kernel call costs more than one direct evaluation when a lone lane
    // cannot amortize it. Members of fused groups keep their kernels — the
    // run loop invokes them without per-record dispatch, which is exactly
    // what makes width-1 kernels pay off.
    for (uint32_t J = DB.First; J < DB.First + DB.Count;) {
      DecodedInst &D = Exec->Code[J];
      if (D.FuseLen >= 2) {
        J += D.FuseLen;
        continue;
      }
      if (D.N == 1)
        D.Kern.Lanes = nullptr;
      ++J;
    }

    // Block-batched counter sums: blocks are straight-line and charge every
    // record's cost before guard checks, so both engines add these once per
    // block entry. CostSum folds left-to-right from 0.0 in stream order;
    // the engines' trap paths subtract an identically ordered tail fold.
    DB.InstsSum = DB.Count;
    for (uint32_t J = 0; J < DB.Count; ++J) {
      const DecodedInst &D = Exec->Code[DB.First + J];
      DB.CostSum += D.Cost;
      DB.FlopsSum += D.Flops;
      DB.VectorSum += D.IsVector ? 1 : 0;
    }
  }

  // Slots that may be read before written: the registers live-in at the
  // entry block (block 0; the scheduler reaches every resume point from
  // there). Only these need zeroing on warp entry — every other register is
  // fully defined before any use on all paths, so its slots never expose
  // stale state. Ranges of adjacent registers are merged.
  const BitSet &LiveIn = Live.liveIn(0);
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  LiveIn.forEach([&](size_t R) {
    uint32_t First = Exec->RegOffset[R];
    uint32_t Len =
        std::max<uint16_t>(1, K->Regs[R].Ty.lanes());
    if (!Ranges.empty() && Ranges.back().first + Ranges.back().second == First)
      Ranges.back().second += Len;
    else
      Ranges.emplace_back(First, Len);
  });
  Exec->ZeroRanges = std::move(Ranges);

  Exec->K = std::move(K);
  return Exec;
}

uint64_t KernelExec::layoutFingerprint() const {
  // Everything decode resolves, minus the process-local function pointers
  // (Fn/Kern): those are re-derived from the hashed structural fields, so
  // equal fingerprints imply equal behaviour.
  ByteWriter W;
  W.u32(TotalSlots);
  W.u32(MaxPressure);
  W.u32(static_cast<uint32_t>(RegOffset.size()));
  for (uint32_t Off : RegOffset)
    W.u32(Off);
  W.u32(static_cast<uint32_t>(BlockPenalty.size()));
  for (double P : BlockPenalty)
    W.f64(P);

  W.u32(static_cast<uint32_t>(Code.size()));
  for (const DecodedInst &D : Code) {
    W.u8(static_cast<uint8_t>(D.Shape));
    W.u8(static_cast<uint8_t>(D.Op));
    W.u8(static_cast<uint8_t>(D.Kind));
    W.u8(static_cast<uint8_t>(D.CvtSrcKind));
    W.u8(static_cast<uint8_t>(D.Cmp));
    W.u8(static_cast<uint8_t>(D.Space));
    W.u8(D.IsVector ? 1 : 0);
    W.u8(D.GuardNegated ? 1 : 0);
    W.u8(D.MemBytes);
    W.u16(D.N);
    W.u16(D.Lane);
    W.u16(D.SrcN);
    W.u16(D.FuseLen);
    W.u32(D.AuxLane);
    W.u32(D.DstSlot);
    W.u32(D.GuardSlot);
    W.f64(D.Cost);
    W.u32(D.Flops);
    for (const DecodedOp &S : D.Src) {
      W.u8(static_cast<uint8_t>(S.K));
      W.u8(static_cast<uint8_t>(S.S));
      W.u32(S.Slot);
      W.u64(S.Imm);
    }
    W.i64(D.MemOffset);
    W.u64(D.SpillAddr);
    W.u32(D.Target);
    W.u32(D.FalseTarget);
    W.u32(D.SwitchId);
    W.u8(static_cast<uint8_t>(D.Ty.kind()));
    W.u16(D.Ty.lanes());
  }

  W.u32(static_cast<uint32_t>(DBlocks.size()));
  for (const DecodedBlock &B : DBlocks) {
    W.u32(B.First);
    W.u32(B.Count);
    W.u8(B.IsBody ? 1 : 0);
    W.f64(B.CostSum);
    W.u64(B.FlopsSum);
    W.u64(B.InstsSum);
    W.u64(B.VectorSum);
  }

  W.u32(static_cast<uint32_t>(Switches.size()));
  for (const DecodedSwitch &S : Switches) {
    W.u32(static_cast<uint32_t>(S.Values.size()));
    for (int64_t V : S.Values)
      W.i64(V);
    for (uint32_t T : S.Targets)
      W.u32(T);
    W.u32(S.Default);
  }

  W.u32(static_cast<uint32_t>(ZeroRanges.size()));
  for (const auto &R : ZeroRanges) {
    W.u32(R.first);
    W.u32(R.second);
  }

  return fnv1a64(W.bytes().data(), W.size());
}
