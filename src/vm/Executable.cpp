//===- vm/Executable.cpp - Prepared kernel for the VM ---------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/Executable.h"

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"

#include <algorithm>

using namespace simtvec;

namespace {

ExecShape shapeOf(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Broadcast:
    return ExecShape::Mov;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return ExecShape::Binary;
  case Opcode::Mad:
    return ExecShape::Mad;
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Not:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
    return ExecShape::Unary;
  case Opcode::Setp:
    return ExecShape::Setp;
  case Opcode::Selp:
    return ExecShape::Selp;
  case Opcode::Cvt:
    return ExecShape::Cvt;
  case Opcode::Ld:
    return ExecShape::Ld;
  case Opcode::St:
    return ExecShape::St;
  case Opcode::AtomAdd:
    return ExecShape::AtomAdd;
  case Opcode::InsertElement:
    return ExecShape::InsertElement;
  case Opcode::ExtractElement:
    return ExecShape::ExtractElement;
  case Opcode::Iota:
    return ExecShape::Iota;
  case Opcode::VoteSum:
    return ExecShape::VoteSum;
  case Opcode::Spill:
    return ExecShape::Spill;
  case Opcode::Restore:
    return ExecShape::Restore;
  case Opcode::SetRPoint:
    return ExecShape::SetRPoint;
  case Opcode::SetRStatus:
    return ExecShape::SetRStatus;
  case Opcode::Membar:
    return ExecShape::Nop;
  case Opcode::BarSync:
    return ExecShape::BarSync;
  case Opcode::Bra:
    return ExecShape::Bra;
  case Opcode::Switch:
    return ExecShape::Switch;
  case Opcode::Ret:
    return ExecShape::Ret;
  case Opcode::Yield:
    return ExecShape::Yield;
  case Opcode::Trap:
    return ExecShape::Trap;
  }
  return ExecShape::Trap;
}

/// Byte size of a spill slot element for one lane (predicates spill as one
/// byte).
unsigned spillElemBytes(Type Ty) {
  return Ty.isPred() ? 1 : Ty.scalar().byteSize();
}

} // namespace

namespace simtvec {

/// Decode helper with access to KernelExec internals.
struct KernelExecBuilder {
  KernelExec &E;
  const Kernel &K;
  const MachineModel &Machine;

  DecodedOp decodeOperand(const Operand &O) const {
    DecodedOp D;
    switch (O.kind()) {
    case Operand::Kind::Reg:
      D.K = K.regType(O.regId()).isVector() ? DecodedOp::Kind::RegVec
                                            : DecodedOp::Kind::RegScal;
      D.Slot = E.RegOffset[O.regId().Index];
      break;
    case Operand::Kind::Imm:
      D.K = DecodedOp::Kind::Imm;
      D.Imm = O.immBits();
      break;
    case Operand::Kind::Special:
      D.K = DecodedOp::Kind::Special;
      D.S = O.specialReg();
      break;
    case Operand::Kind::Symbol:
      // Address symbols resolve to their space offsets at translation time.
      D.K = DecodedOp::Kind::Imm;
      switch (O.symKind()) {
      case SymKind::Param:
        D.Imm = K.Params[O.symIndex()].Offset;
        break;
      case SymKind::Shared:
        D.Imm = K.SharedVars[O.symIndex()].Offset;
        break;
      case SymKind::Local:
        D.Imm = K.LocalVars[O.symIndex()].Offset;
        break;
      }
      break;
    case Operand::Kind::None:
      break;
    }
    return D;
  }

  DecodedInst decode(const Instruction &I, double BlockPenalty) const {
    DecodedInst D;
    D.Shape = shapeOf(I.Op);
    D.Op = I.Op;
    D.Ty = I.Ty;
    D.Kind = I.Ty.kind();
    D.Space = I.Space;
    D.IsVector = I.Ty.isVector();
    D.N = std::max<uint16_t>(1, I.Ty.lanes());
    D.Lane = I.Lane;
    D.Cmp = I.Cmp;
    D.Cost = Machine.issueCost(I) + BlockPenalty;
    D.Flops = Machine.flopsFor(I);
    if (I.Dst.isValid())
      D.DstSlot = E.RegOffset[I.Dst.Index];
    if (I.Guard.isValid()) {
      D.GuardSlot = E.RegOffset[I.Guard.Index];
      D.GuardNegated = I.GuardNegated;
    }
    for (size_t S = 0; S < I.Srcs.size() && S < 3; ++S)
      D.Src[S] = decodeOperand(I.Srcs[S]);

    switch (D.Shape) {
    case ExecShape::Binary:
      D.Fn.Bin = resolveBinary(I.Op, D.Kind);
      break;
    case ExecShape::Unary:
      D.Fn.Un = resolveUnary(I.Op, D.Kind);
      break;
    case ExecShape::Mad:
      D.Fn.MadF = resolveMad(D.Kind);
      break;
    case ExecShape::Setp:
      D.Fn.CmpF = resolveCmp(I.Cmp, D.Kind);
      break;
    default:
      break;
    }

    switch (I.Op) {
    case Opcode::Cvt:
      D.CvtSrcKind = I.Srcs[0].isReg() ? K.regType(I.Srcs[0].regId()).kind()
                     : I.Srcs[0].isImm() ? I.Srcs[0].immType().kind()
                                         : ScalarKind::U32;
      D.Fn.Cvt = resolveConvert(D.Kind, D.CvtSrcKind);
      break;
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::AtomAdd:
      D.MemBytes = static_cast<uint8_t>(I.Ty.byteSize());
      D.MemOffset = I.MemOffset;
      break;
    case Opcode::Spill:
    case Opcode::Restore:
      D.MemBytes = static_cast<uint8_t>(spillElemBytes(I.Ty));
      D.SpillAddr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
      break;
    case Opcode::InsertElement:
      D.AuxLane = static_cast<uint32_t>(I.Srcs[2].immInt());
      break;
    case Opcode::ExtractElement:
      D.AuxLane = static_cast<uint32_t>(I.Srcs[1].immInt());
      break;
    case Opcode::VoteSum:
      D.SrcN = I.Srcs[0].isReg()
                   ? std::max<uint16_t>(1, K.regType(I.Srcs[0].regId()).lanes())
                   : 1;
      break;
    case Opcode::Bra:
      D.Target = I.Target;
      D.FalseTarget = I.FalseTarget;
      break;
    case Opcode::Switch: {
      DecodedSwitch SW;
      SW.Values = I.SwitchValues;
      SW.Targets = I.SwitchTargets;
      SW.Default = I.SwitchDefault;
      D.SwitchId = static_cast<uint32_t>(E.Switches.size());
      E.Switches.push_back(std::move(SW));
      break;
    }
    default:
      break;
    }
    return D;
  }
};

} // namespace simtvec

std::shared_ptr<const KernelExec>
KernelExec::build(std::unique_ptr<Kernel> K, const MachineModel &Machine) {
  auto Exec = std::make_shared<KernelExec>();

  // Register-file layout: one 64-bit slot per lane.
  Exec->RegOffset.reserve(K->Regs.size());
  uint32_t Slot = 0;
  for (const VirtualRegister &R : K->Regs) {
    Exec->RegOffset.push_back(Slot);
    Slot += std::max<uint16_t>(1, R.Ty.lanes());
  }
  Exec->TotalSlots = Slot;

  // Per-block register-pressure penalty (paper Table 1: exceeding the
  // machine vector width "increases register pressure and extends the live
  // ranges of values", degrading warp-size-8 throughput).
  CFG G(*K);
  Liveness Live(*K, G);
  Exec->BlockPenalty.resize(K->Blocks.size());
  auto RegCost = [&Machine](const Kernel &Kern, RegId R) {
    return Machine.physRegsFor(Kern.regType(R));
  };
  for (uint32_t B = 0; B < K->Blocks.size(); ++B) {
    unsigned Pressure = Live.maxPressure(*K, B, RegCost);
    Exec->MaxPressure = std::max(Exec->MaxPressure, Pressure);
    unsigned Budget = Machine.NumVecRegs + Machine.PressureSlackRegs;
    unsigned Excess = Pressure > Budget ? Pressure - Budget : 0;
    Exec->BlockPenalty[B] = Excess * Machine.SpillPenaltyPerExcessReg;
  }

  // Lower every instruction into the flat pre-decoded stream. The per-block
  // pressure penalty folds into each record's issue cost (the interpreter
  // adds Cost exactly as the IR walk added issueCost(I) + Penalty).
  KernelExecBuilder B{*Exec, *K, Machine};
  Exec->DBlocks.resize(K->Blocks.size());
  for (uint32_t Blk = 0; Blk < K->Blocks.size(); ++Blk) {
    const BasicBlock &Block = K->Blocks[Blk];
    DecodedBlock &DB = Exec->DBlocks[Blk];
    DB.First = static_cast<uint32_t>(Exec->Code.size());
    DB.Count = static_cast<uint32_t>(Block.Insts.size());
    DB.IsBody = Block.Kind == BlockKind::Body;
    for (const Instruction &I : Block.Insts)
      Exec->Code.push_back(B.decode(I, Exec->BlockPenalty[Blk]));
  }

  // Slots that may be read before written: the registers live-in at the
  // entry block (block 0; the scheduler reaches every resume point from
  // there). Only these need zeroing on warp entry — every other register is
  // fully defined before any use on all paths, so its slots never expose
  // stale state. Ranges of adjacent registers are merged.
  const BitSet &LiveIn = Live.liveIn(0);
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  LiveIn.forEach([&](size_t R) {
    uint32_t First = Exec->RegOffset[R];
    uint32_t Len =
        std::max<uint16_t>(1, K->Regs[R].Ty.lanes());
    if (!Ranges.empty() && Ranges.back().first + Ranges.back().second == First)
      Ranges.back().second += Len;
    else
      Ranges.emplace_back(First, Len);
  });
  Exec->ZeroRanges = std::move(Ranges);

  Exec->K = std::move(K);
  return Exec;
}
