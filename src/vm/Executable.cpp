//===- vm/Executable.cpp - Prepared kernel for the VM ---------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/Executable.h"

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"

using namespace simtvec;

std::shared_ptr<const KernelExec>
KernelExec::build(std::unique_ptr<Kernel> K, const MachineModel &Machine) {
  auto Exec = std::make_shared<KernelExec>();

  // Register-file layout: one 64-bit slot per lane.
  Exec->RegOffset.reserve(K->Regs.size());
  uint32_t Slot = 0;
  for (const VirtualRegister &R : K->Regs) {
    Exec->RegOffset.push_back(Slot);
    Slot += std::max<uint16_t>(1, R.Ty.lanes());
  }
  Exec->TotalSlots = Slot;

  // Per-block register-pressure penalty (paper Table 1: exceeding the
  // machine vector width "increases register pressure and extends the live
  // ranges of values", degrading warp-size-8 throughput).
  CFG G(*K);
  Liveness Live(*K, G);
  Exec->BlockPenalty.resize(K->Blocks.size());
  auto RegCost = [&Machine](const Kernel &Kern, RegId R) {
    return Machine.physRegsFor(Kern.regType(R));
  };
  for (uint32_t B = 0; B < K->Blocks.size(); ++B) {
    unsigned Pressure = Live.maxPressure(*K, B, RegCost);
    Exec->MaxPressure = std::max(Exec->MaxPressure, Pressure);
    unsigned Budget = Machine.NumVecRegs + Machine.PressureSlackRegs;
    unsigned Excess = Pressure > Budget ? Pressure - Budget : 0;
    Exec->BlockPenalty[B] = Excess * Machine.SpillPenaltyPerExcessReg;
  }

  Exec->K = std::move(K);
  return Exec;
}
