//===- vm/Interpreter.cpp - The vector virtual machine --------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/Interpreter.h"

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/support/Format.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

using namespace simtvec;

namespace {

//===----------------------------------------------------------------------===
// Raw-bits <-> typed value helpers. Lane values are stored as 64-bit words:
// integers zero-extended from their bit pattern, f32 in the low 32 bits,
// predicates as 0/1.
//===----------------------------------------------------------------------===

uint64_t evalSpecial(SReg S, const Warp &W, uint32_t Lane) {
  const ThreadContext &Ctx = W.lane(Lane);
  switch (S) {
  case SReg::TidX:
    return Ctx.TidX;
  case SReg::TidY:
    return Ctx.TidY;
  case SReg::TidZ:
    return Ctx.TidZ;
  case SReg::NTidX:
    return Ctx.BlockDim.X;
  case SReg::NTidY:
    return Ctx.BlockDim.Y;
  case SReg::NTidZ:
    return Ctx.BlockDim.Z;
  case SReg::CTAIdX:
    return Ctx.CtaId.X;
  case SReg::CTAIdY:
    return Ctx.CtaId.Y;
  case SReg::CTAIdZ:
    return Ctx.CtaId.Z;
  case SReg::NCTAIdX:
    return Ctx.GridDim.X;
  case SReg::NCTAIdY:
    return Ctx.GridDim.Y;
  case SReg::NCTAIdZ:
    return Ctx.GridDim.Z;
  case SReg::LaneId:
    return Lane;
  case SReg::WarpBaseTid:
    return W.lane(0).LinearTid;
  case SReg::WarpWidth:
    return W.Size;
  case SReg::EntryId:
    return W.lane(0).ResumePoint;
  }
  assert(false && "unknown special register");
  return 0;
}

/// Byte size of a spill slot element for one lane.
unsigned spillElemBytes(Type Ty) {
  return Ty.isPred() ? 1 : Ty.scalar().byteSize();
}

/// Cold half of resolveAddr: builds the trap message for a failed access.
/// Only reached when the fast-path check already failed, so the message
/// precedence (Param writes fail before bounds) matches the check order.
[[gnu::cold, gnu::noinline]] std::byte *
failAddr(AddressSpace Space, uint64_t Addr, size_t Size, bool Write,
         std::string &Err) {
  switch (Space) {
  case AddressSpace::Global:
    Err = formatString("out-of-bounds global access at 0x%llx (+%zu)",
                       static_cast<unsigned long long>(Addr), Size);
    break;
  case AddressSpace::Shared:
    Err = formatString("out-of-bounds shared access at 0x%llx",
                       static_cast<unsigned long long>(Addr));
    break;
  case AddressSpace::Local:
    Err = formatString("out-of-bounds local access at 0x%llx",
                       static_cast<unsigned long long>(Addr));
    break;
  case AddressSpace::Param:
    if (Write)
      Err = "store to the read-only parameter space";
    else
      Err = formatString("out-of-bounds param access at 0x%llx",
                         static_cast<unsigned long long>(Addr));
    break;
  }
  return nullptr;
}

/// Resolves (space, address, size, lane) to a host pointer. Returns null on
/// fault and fills \p Err with the trap message. The bounds checks are
/// written overflow-proof: `Addr + Size > Limit` wraps for addresses near
/// UINT64_MAX and would bypass the check, so each space tests
/// `Size > Limit || Addr > Limit - Size` instead. Force-inlined: the happy
/// path is two compares and an add, and it sits on every modeled memory
/// access; the message formatting lives out of line in failAddr.
[[gnu::always_inline]] inline std::byte *
resolveAddr(ExecMemory &Mem, const Warp &W, AddressSpace Space, uint64_t Addr,
            size_t Size, uint32_t Lane, bool Write, std::string &Err) {
  switch (Space) {
  case AddressSpace::Global:
    if (Size > Mem.GlobalSize || Addr > Mem.GlobalSize - Size) [[unlikely]]
      return failAddr(Space, Addr, Size, Write, Err);
    return Mem.Global + Addr;
  case AddressSpace::Shared:
    if (Size > Mem.SharedSize || Addr > Mem.SharedSize - Size) [[unlikely]]
      return failAddr(Space, Addr, Size, Write, Err);
    return Mem.Shared + Addr;
  case AddressSpace::Local:
    if (Size > Mem.LocalSize || Addr > Mem.LocalSize - Size) [[unlikely]]
      return failAddr(Space, Addr, Size, Write, Err);
    return W.lane(Lane).LocalMem + Addr;
  case AddressSpace::Param:
    if (Write || Size > Mem.ParamSize || Addr > Mem.ParamSize - Size)
        [[unlikely]]
      return failAddr(Space, Addr, Size, Write, Err);
    return const_cast<std::byte *>(Mem.ParamBuf) + Addr;
  }
  return nullptr;
}

// Element sizes are 1/2/4/8; dispatching to fixed-size copies lets each
// compile to a single move instead of a variable-length memcpy call.
uint64_t loadBytes(const std::byte *P, unsigned Bytes) {
  switch (Bytes) {
  case 1: {
    uint8_t V;
    std::memcpy(&V, P, sizeof(V));
    return V;
  }
  case 2: {
    uint16_t V;
    std::memcpy(&V, P, sizeof(V));
    return V;
  }
  case 4: {
    uint32_t V;
    std::memcpy(&V, P, sizeof(V));
    return V;
  }
  case 8: {
    uint64_t V;
    std::memcpy(&V, P, sizeof(V));
    return V;
  }
  default: {
    uint64_t V = 0;
    std::memcpy(&V, P, Bytes);
    return V;
  }
  }
}

void storeBytes(std::byte *P, uint64_t V, unsigned Bytes) {
  switch (Bytes) {
  case 1: {
    uint8_t T = static_cast<uint8_t>(V);
    std::memcpy(P, &T, sizeof(T));
    break;
  }
  case 2: {
    uint16_t T = static_cast<uint16_t>(V);
    std::memcpy(P, &T, sizeof(T));
    break;
  }
  case 4: {
    uint32_t T = static_cast<uint32_t>(V);
    std::memcpy(P, &T, sizeof(T));
    break;
  }
  case 8:
    std::memcpy(P, &V, sizeof(V));
    break;
  default:
    std::memcpy(P, &V, Bytes);
    break;
  }
}

} // namespace

void Interpreter::ensureL1() {
  if (L1Tags.empty()) {
    L1Tags.assign(static_cast<size_t>(Machine.L1Sets) * Machine.L1Ways,
                  ~0ull);
    L1NextWay.assign(Machine.L1Sets, 0);
    L1MRU.assign(Machine.L1Sets, 0);
    // Power-of-two geometry (the default) turns the per-access line/set
    // division and modulo into a shift and mask.
    L1Pow2 = std::has_single_bit(Machine.L1LineBytes) &&
             std::has_single_bit(Machine.L1Sets);
    L1LineShift = static_cast<unsigned>(std::countr_zero(Machine.L1LineBytes));
    L1SetMask = Machine.L1Sets - 1;
  }
}

//===----------------------------------------------------------------------===
// Fast path: the pre-decoded execution engine.
//
// Counter accounting is block-batched: the whole block's Cost/Flops/
// InstsExecuted/VectorInsts sums (precomputed at decode time) are added once
// on block entry — valid because blocks are straight-line and every record
// charges its issue slot before its guard check. A trap mid-block settles
// by subtracting the tail (the records strictly after the trapping one),
// folded in stream order from 0.0; runReference performs the identical
// entry-add and tail-fold, so settled counters stay bit-identical.
//===----------------------------------------------------------------------===

Interpreter::Result Interpreter::run(const KernelExec &Exec, const Warp &W,
                                     ExecMemory &Mem,
                                     CycleCounters &Counters) {
#ifndef NDEBUG
  const uint32_t Width =
      Exec.kernel().WarpSize ? Exec.kernel().WarpSize : 1;
  assert(W.Size == Width && "warp size must match the specialization");
  for (uint32_t L = 1; L < W.Size; ++L)
    assert(W.lane(L).ResumePoint == W.lane(0).ResumePoint &&
           "warp lanes must share one entry point");
#endif

  // Selective register-file preparation: only slots that may be read before
  // written (the entry block's live-in registers) are zeroed; every other
  // slot is proven written-before-read and may keep stale bits that are
  // never observed.
  if (RegFile.size() < Exec.totalSlots())
    RegFile.resize(Exec.totalSlots(), 0);
  uint64_t *RF = RegFile.data();
  for (const auto &[First, Len] : Exec.zeroRanges())
    std::memset(RF + First, 0, static_cast<size_t>(Len) * sizeof(uint64_t));

  Result R;
  ResumeStatus PendingStatus = ResumeStatus::Exit;
  std::string Err;

  auto trap = [&](std::string Message) {
    R.Trap = std::move(Message);
    R.Status = ResumeStatus::Exit;
  };

  auto opVal = [&](const DecodedOp &O,
                   uint32_t L) __attribute__((always_inline)) -> uint64_t {
    switch (O.K) {
    case DecodedOp::Kind::RegVec:
      return RF[O.Slot + L];
    case DecodedOp::Kind::RegScal:
      return RF[O.Slot];
    case DecodedOp::Kind::Imm:
      return O.Imm;
    case DecodedOp::Kind::Special:
      return evalSpecial(O.S, W, L);
    case DecodedOp::Kind::None:
      break;
    }
    assert(false && "bad operand");
    return 0;
  };

  // Modeled L1 lookup for global accesses; returns the extra miss cycles.
  // The shift/mask form computes the same line/set as the reference
  // engine's division/modulo when the geometry is a power of two.
  ensureL1();
  auto globalAccessExtra = [&](uint64_t Addr)
      __attribute__((always_inline)) -> double {
    uint64_t Line = L1Pow2 ? Addr >> L1LineShift : Addr / Machine.L1LineBytes;
    size_t Set = static_cast<size_t>(L1Pow2 ? Line & L1SetMask
                                            : Line % Machine.L1Sets);
    uint64_t *Ways = L1Tags.data() + Set * Machine.L1Ways;
    ++Counters.GlobalAccesses;
    // Probe the set's last-hit way before scanning: streaming access
    // patterns hit the same line repeatedly, so this resolves most lookups
    // in one compare. Search order cannot change hit/miss outcomes (the
    // scan is a membership test), so counters stay identical to the
    // reference engine's plain scan.
    if (Ways[L1MRU[Set]] == Line)
      return 0;
    for (unsigned Way = 0; Way < Machine.L1Ways; ++Way)
      if (Ways[Way] == Line) {
        L1MRU[Set] = static_cast<uint8_t>(Way);
        return 0;
      }
    const uint8_t Victim = L1NextWay[Set];
    Ways[Victim] = Line;
    L1MRU[Set] = Victim;
    L1NextWay[Set] = static_cast<uint8_t>((Victim + 1) % Machine.L1Ways);
    ++Counters.GlobalMisses;
    return Machine.MemMissExtra;
  };

  // Hoisted vector-operand access: a base pointer plus a 0/1 lane stride,
  // so the per-lane loops index directly instead of re-dispatching on the
  // operand kind. Special registers are materialized once into \p Buf.
  // Lane counts beyond SpecialBufLanes fall back to the generic opVal path.
  struct SrcRef {
    const uint64_t *P;
    uintptr_t Stride;
  };
  constexpr uint32_t SpecialBufLanes = 64;
  uint64_t SpecialBuf[4][SpecialBufLanes];
  auto srcRef = [&](const DecodedOp &O, uint32_t N, uint64_t *Buf) -> SrcRef {
    switch (O.K) {
    case DecodedOp::Kind::RegVec:
      return {RF + O.Slot, 1};
    case DecodedOp::Kind::RegScal:
      return {RF + O.Slot, 0};
    case DecodedOp::Kind::Imm:
      return {&O.Imm, 0};
    case DecodedOp::Kind::Special:
      for (uint32_t L = 0; L < N; ++L)
        Buf[L] = evalSpecial(O.S, W, L);
      return {Buf, 1};
    case DecodedOp::Kind::None:
      break;
    }
    assert(false && "bad operand");
    Buf[0] = 0;
    return {Buf, 0};
  };

  // Specialized-kernel operand materialization: every operand becomes a
  // stride-1 array of exactly D.N words (ExecKernels.h contract). Vector
  // register operands are passed in place; everything else is splat /
  // evaluated into \p Buf. Scalar records (N == 1) evaluate at the record's
  // replicated lane, matching the generic path's CtxLane.
  auto kernSrc = [&](const DecodedInst &D, const DecodedOp &O,
                     uint64_t *Buf)
      __attribute__((always_inline)) -> const uint64_t * {
    switch (O.K) {
    case DecodedOp::Kind::RegVec:
      return D.IsVector ? RF + O.Slot : RF + O.Slot + D.Lane;
    case DecodedOp::Kind::RegScal:
      if (D.N == 1) // single lane: read the slot in place, no splat
        return RF + O.Slot;
      for (uint32_t L = 0; L < D.N; ++L)
        Buf[L] = RF[O.Slot];
      return Buf;
    case DecodedOp::Kind::Imm:
      if (D.N == 1) // the decoded stream is immutable during the run
        return &O.Imm;
      for (uint32_t L = 0; L < D.N; ++L)
        Buf[L] = O.Imm;
      return Buf;
    case DecodedOp::Kind::Special:
      for (uint32_t L = 0; L < D.N; ++L)
        Buf[L] = evalSpecial(O.S, W, D.IsVector ? L : D.Lane);
      return Buf;
    case DecodedOp::Kind::None:
      break;
    }
    assert(false && "bad operand");
    Buf[0] = 0;
    return Buf;
  };

  const DecodedInst *Code = Exec.code().data();
  const DecodedBlock *Blocks = Exec.decodedBlocks().data();

  uint32_t Block = 0;
  for (;;) {
    const DecodedBlock &B = Blocks[Block];
    double *Bucket =
        B.IsBody ? &Counters.SubkernelCycles : &Counters.YieldCycles;
    uint32_t NextBlock = InvalidBlock;

    const DecodedInst *First = Code + B.First;
    const DecodedInst *End = First + B.Count;

    // Block-batched counters (see the engine comment above).
    *Bucket += B.CostSum;
    Counters.InstsExecuted += B.InstsSum;
    Counters.VectorInsts += B.VectorSum;
    Counters.Flops += B.FlopsSum;

    // A trap at record T refunds the records strictly after it. Outlined
    // cold: it is referenced from every trap exit, and inlining it at each
    // one bloats the dispatch loop past the icache sweet spot.
    auto settleTrap = [&](const DecodedInst *T)
        __attribute__((noinline, cold)) {
      double TailCost = 0;
      uint64_t TailInsts = 0, TailVec = 0, TailFlops = 0;
      for (const DecodedInst *P = T + 1; P != End; ++P) {
        TailCost += P->Cost;
        ++TailInsts;
        TailVec += P->IsVector ? 1 : 0;
        TailFlops += P->Flops;
      }
      *Bucket -= TailCost;
      Counters.InstsExecuted -= TailInsts;
      Counters.VectorInsts -= TailVec;
      Counters.Flops -= TailFlops;
    };

    for (const DecodedInst *Inst = First; Inst != End; ++Inst) {
      const DecodedInst &D = *Inst;

      // Guard check (non-branch): skip the architectural effect; the issue
      // slot is still consumed. Fused members carry the head's guard, so a
      // skipped head skips the whole group.
      if (D.GuardSlot != InvalidSlot && D.Shape != ExecShape::Bra) {
        bool G = (RF[D.GuardSlot] & 1) != 0;
        if (D.GuardNegated)
          G = !G;
        if (!G) {
          if (D.FuseLen > 1)
            Inst += D.FuseLen - 1;
          continue;
        }
      }

      const uint32_t N = D.N;
      switch (D.Shape) {
      case ExecShape::Mov: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       nullptr, nullptr);
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const bool PerLane = D.Op == Opcode::Broadcast || D.IsVector;
        if (PerLane && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = S0.P[L * S0.Stride];
        } else {
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = opVal(D.Src[0], PerLane ? L : D.Lane);
        }
        break;
      }
      case ExecShape::Binary: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       kernSrc(D, D.Src[1], SpecialBuf[1]), nullptr);
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const BinaryFn Fn = D.Fn.Bin;
        if (!Fn) [[unlikely]] {
          // The generic path writes zero to every lane before trapping.
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = 0;
          trap(formatString("invalid %s on %s", opcodeName(D.Op),
                            D.Ty.str().c_str()));
          settleTrap(Inst);
          return R;
        }
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          SrcRef S1 = srcRef(D.Src[1], N, SpecialBuf[1]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = Fn(S0.P[L * S0.Stride], S1.P[L * S1.Stride]);
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            Dst[L] = Fn(opVal(D.Src[0], CtxLane), opVal(D.Src[1], CtxLane));
          }
        }
        break;
      }
      case ExecShape::Mad: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       kernSrc(D, D.Src[1], SpecialBuf[1]),
                       kernSrc(D, D.Src[2], SpecialBuf[2]));
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const MadFn Fn = D.Fn.MadF;
        if (!Fn) [[unlikely]] {
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = 0;
          trap("invalid mad type");
          settleTrap(Inst);
          return R;
        }
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          SrcRef S1 = srcRef(D.Src[1], N, SpecialBuf[1]);
          SrcRef S2 = srcRef(D.Src[2], N, SpecialBuf[2]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = Fn(S0.P[L * S0.Stride], S1.P[L * S1.Stride],
                        S2.P[L * S2.Stride]);
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            Dst[L] = Fn(opVal(D.Src[0], CtxLane), opVal(D.Src[1], CtxLane),
                        opVal(D.Src[2], CtxLane));
          }
        }
        break;
      }
      case ExecShape::Unary: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       nullptr, nullptr);
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const UnaryFn Fn = D.Fn.Un;
        if (!Fn) [[unlikely]] {
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = 0;
          trap(formatString("invalid %s on %s", opcodeName(D.Op),
                            D.Ty.str().c_str()));
          settleTrap(Inst);
          return R;
        }
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = Fn(S0.P[L * S0.Stride]);
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            Dst[L] = Fn(opVal(D.Src[0], CtxLane));
          }
        }
        break;
      }
      case ExecShape::Setp: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       kernSrc(D, D.Src[1], SpecialBuf[1]), nullptr);
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const CmpFn Fn = D.Fn.CmpF;
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          SrcRef S1 = srcRef(D.Src[1], N, SpecialBuf[1]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = Fn(S0.P[L * S0.Stride], S1.P[L * S1.Stride]);
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            Dst[L] = Fn(opVal(D.Src[0], CtxLane), opVal(D.Src[1], CtxLane));
          }
        }
        break;
      }
      case ExecShape::Selp: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       kernSrc(D, D.Src[1], SpecialBuf[1]),
                       kernSrc(D, D.Src[2], SpecialBuf[2]));
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          SrcRef S1 = srcRef(D.Src[1], N, SpecialBuf[1]);
          SrcRef S2 = srcRef(D.Src[2], N, SpecialBuf[2]);
          for (uint32_t L = 0; L < N; ++L) {
            bool P = (S2.P[L * S2.Stride] & 1) != 0;
            Dst[L] = P ? S0.P[L * S0.Stride] : S1.P[L * S1.Stride];
          }
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            bool P = (opVal(D.Src[2], CtxLane) & 1) != 0;
            Dst[L] = opVal(D.Src[P ? 0 : 1], CtxLane);
          }
        }
        break;
      }
      case ExecShape::Cvt: {
        if (D.Kern.Lanes) {
          D.Kern.Lanes(RF + D.DstSlot, kernSrc(D, D.Src[0], SpecialBuf[0]),
                       nullptr, nullptr);
          break;
        }
        uint64_t *Dst = RF + D.DstSlot;
        const ConvertFn Fn = D.Fn.Cvt;
        if (D.IsVector && N <= SpecialBufLanes) {
          SrcRef S0 = srcRef(D.Src[0], N, SpecialBuf[0]);
          for (uint32_t L = 0; L < N; ++L)
            Dst[L] = Fn(S0.P[L * S0.Stride]);
        } else {
          for (uint32_t L = 0; L < N; ++L) {
            uint32_t CtxLane = D.IsVector ? L : D.Lane;
            Dst[L] = Fn(opVal(D.Src[0], CtxLane));
          }
        }
        break;
      }

      // Superinstructions. The member records following the head are
      // consumed here (Inst advances past them); their counters were
      // already included in the block sums.
      case ExecShape::FusedCmpSel: {
        const DecodedInst &Sel = Inst[1];
        const uint64_t *A = kernSrc(D, D.Src[0], SpecialBuf[0]);
        const uint64_t *Bv = kernSrc(D, D.Src[1], SpecialBuf[1]);
        const uint64_t *C = kernSrc(Sel, Sel.Src[0], SpecialBuf[2]);
        const uint64_t *E = kernSrc(Sel, Sel.Src[1], SpecialBuf[3]);
        D.Kern.CmpSel(RF + D.DstSlot, RF + Sel.DstSlot, A, Bv, C, E);
        ++Inst;
        break;
      }
      case ExecShape::FusedIotaBin: {
        // The iota result may be live past the binary, so it is still
        // written; the binary's lane kernel then reads it in place.
        uint64_t *IDst = RF + D.DstSlot;
        for (uint32_t L = 0; L < N; ++L)
          IDst[L] = L;
        const DecodedInst &Bin = Inst[1];
        D.Kern.Lanes(RF + Bin.DstSlot, kernSrc(Bin, Bin.Src[0], SpecialBuf[0]),
                     kernSrc(Bin, Bin.Src[1], SpecialBuf[1]), nullptr);
        ++Inst;
        break;
      }
      case ExecShape::FusedKernelRun: {
        // A strip of kernel-bearing records under one dispatch: each member
        // runs its own pre-resolved lane kernel over its own operands, in
        // stream order, so the architectural effects are exactly those of
        // the unfused records.
        const uint32_t Len = D.FuseLen;
        for (uint32_t J = 0; J < Len; ++J) {
          const DecodedInst &M = Inst[J];
          const uint64_t *S0 = kernSrc(M, M.Src[0], SpecialBuf[0]);
          const uint64_t *S1 = M.Src[1].K == DecodedOp::Kind::None
                                   ? nullptr
                                   : kernSrc(M, M.Src[1], SpecialBuf[1]);
          const uint64_t *S2 = M.Src[2].K == DecodedOp::Kind::None
                                   ? nullptr
                                   : kernSrc(M, M.Src[2], SpecialBuf[2]);
          M.Kern.Lanes(RF + M.DstSlot, S0, S1, S2);
        }
        Inst += Len - 1;
        break;
      }
      case ExecShape::FusedLdRun: {
        // A strip of scalar loads under one dispatch; each member resolves
        // its own address and traps at its own record, exactly as unfused.
        const uint32_t Len = D.FuseLen;
        // Homogeneous runs (decode-time detection) carry a RunCheck: all
        // member addresses and their combined bounds check collapse into one
        // Simd computation. The member loop below stays the trap-order
        // oracle: RunCheck returning false re-runs it so the fault lands on
        // the exact member record, with identical partial effects (nothing
        // is written before the first failing member either way).
        if (D.Kern.RunCheck) {
          uint64_t A[8];
          uint64_t Limit;
          const std::byte *Base;
          switch (D.Space) {
          case AddressSpace::Global:
            Limit = Mem.GlobalSize;
            Base = Mem.Global;
            break;
          case AddressSpace::Shared:
            Limit = Mem.SharedSize;
            Base = Mem.Shared;
            break;
          default: // Param (Local runs never resolve a RunCheck)
            Limit = Mem.ParamSize;
            Base = Mem.ParamBuf;
            break;
          }
          if (D.Kern.RunCheck(A, RF + D.Src[0].Slot,
                              static_cast<uint64_t>(D.MemOffset), Limit,
                              D.MemBytes)) {
            for (uint32_t J = 0; J < Len; ++J) {
              if (D.Space == AddressSpace::Global)
                *Bucket += globalAccessExtra(A[J]);
              RF[Inst[J].DstSlot] = loadBytes(Base + A[J], D.MemBytes);
            }
            Inst += Len - 1;
            break;
          }
        }
        for (uint32_t J = 0; J < Len; ++J) {
          const DecodedInst &M = Inst[J];
          uint64_t Addr =
              opVal(M.Src[0], M.Lane) + static_cast<uint64_t>(M.MemOffset);
          std::byte *P = resolveAddr(Mem, W, M.Space, Addr, M.MemBytes,
                                     M.Lane, false, Err);
          if (!P) [[unlikely]] {
            trap(std::move(Err));
            settleTrap(Inst + J);
            return R;
          }
          if (M.Space == AddressSpace::Global)
            *Bucket += globalAccessExtra(Addr);
          RF[M.DstSlot] = loadBytes(P, M.MemBytes);
        }
        Inst += Len - 1;
        break;
      }
      case ExecShape::FusedStRun: {
        const uint32_t Len = D.FuseLen;
        // Same homogeneous-run fast path as FusedLdRun (stores never target
        // Param, so the bases are Global/Shared only).
        if (D.Kern.RunCheck) {
          uint64_t A[8];
          const bool Global = D.Space == AddressSpace::Global;
          const uint64_t Limit = Global ? Mem.GlobalSize : Mem.SharedSize;
          std::byte *Base = Global ? Mem.Global : Mem.Shared;
          if (D.Kern.RunCheck(A, RF + D.Src[0].Slot,
                              static_cast<uint64_t>(D.MemOffset), Limit,
                              D.MemBytes)) {
            for (uint32_t J = 0; J < Len; ++J) {
              const DecodedInst &M = Inst[J];
              if (Global)
                *Bucket += globalAccessExtra(A[J]);
              storeBytes(Base + A[J], opVal(M.Src[1], M.Lane), D.MemBytes);
            }
            Inst += Len - 1;
            break;
          }
        }
        for (uint32_t J = 0; J < Len; ++J) {
          const DecodedInst &M = Inst[J];
          uint64_t Addr =
              opVal(M.Src[0], M.Lane) + static_cast<uint64_t>(M.MemOffset);
          std::byte *P = resolveAddr(Mem, W, M.Space, Addr, M.MemBytes,
                                     M.Lane, true, Err);
          if (!P) [[unlikely]] {
            trap(std::move(Err));
            settleTrap(Inst + J);
            return R;
          }
          if (M.Space == AddressSpace::Global)
            *Bucket += globalAccessExtra(Addr);
          storeBytes(P, opVal(M.Src[1], M.Lane), M.MemBytes);
        }
        Inst += Len - 1;
        break;
      }
      case ExecShape::FusedSpillRun:
      case ExecShape::FusedRestoreRun: {
        const bool IsSpill = D.Shape == ExecShape::FusedSpillRun;
        const uint32_t Len = D.FuseLen;
        const uint64_t Base = D.SpillAddr;
        // One whole-range bounds check covers every member element (local
        // bounds do not depend on the lane). AuxLane holds the run's total
        // byte length.
        if (D.AuxLane > Mem.LocalSize || Base > Mem.LocalSize - D.AuxLane) {
          // Replay the members one element at a time so the trap lands on
          // the exact record/lane the unfused stream would fault at, with
          // identical partial effects. The bulk check failing implies some
          // element check fails, so the replay always traps.
          for (uint32_t J = 0; J < Len; ++J) {
            const DecodedInst &M = Inst[J];
            uint64_t *Dst = RF + M.DstSlot;
            for (uint32_t L = 0; L < M.N; ++L) {
              uint32_t T = M.IsVector ? L : M.Lane;
              std::byte *P =
                  resolveAddr(Mem, W, AddressSpace::Local, M.SpillAddr,
                              M.MemBytes, T, IsSpill, Err);
              if (!P) [[unlikely]] {
                trap(std::move(Err));
                settleTrap(Inst + J);
                return R;
              }
              if (IsSpill)
                storeBytes(P, opVal(M.Src[0], T), M.MemBytes);
              else
                Dst[L] = loadBytes(P, M.MemBytes);
            }
            (IsSpill ? Counters.SpilledValues : Counters.RestoredValues) +=
                M.N;
          }
          Inst += Len - 1;
          break;
        }
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t T = D.IsVector ? L : D.Lane;
          std::byte *P = W.lane(T).LocalMem + Base;
          if (IsSpill) {
            for (uint32_t J = 0; J < Len; ++J) {
              const DecodedInst &M = Inst[J];
              storeBytes(P + (M.SpillAddr - Base), opVal(M.Src[0], T),
                         M.MemBytes);
            }
          } else {
            for (uint32_t J = 0; J < Len; ++J) {
              const DecodedInst &M = Inst[J];
              RF[M.DstSlot + L] =
                  loadBytes(P + (M.SpillAddr - Base), M.MemBytes);
            }
          }
        }
        (IsSpill ? Counters.SpilledValues : Counters.RestoredValues) +=
            static_cast<uint64_t>(Len) * N;
        Inst += Len - 1;
        break;
      }

      case ExecShape::Ld: {
        uint64_t Addr =
            opVal(D.Src[0], D.Lane) + static_cast<uint64_t>(D.MemOffset);
        std::byte *P = resolveAddr(Mem, W, D.Space, Addr, D.MemBytes, D.Lane,
                                   false, Err);
        if (!P) [[unlikely]] {
          trap(std::move(Err));
          settleTrap(Inst);
          return R;
        }
        if (D.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        RF[D.DstSlot] = loadBytes(P, D.MemBytes);
        break;
      }
      case ExecShape::St: {
        uint64_t Addr =
            opVal(D.Src[0], D.Lane) + static_cast<uint64_t>(D.MemOffset);
        std::byte *P = resolveAddr(Mem, W, D.Space, Addr, D.MemBytes, D.Lane,
                                   true, Err);
        if (!P) [[unlikely]] {
          trap(std::move(Err));
          settleTrap(Inst);
          return R;
        }
        if (D.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        storeBytes(P, opVal(D.Src[1], D.Lane), D.MemBytes);
        break;
      }
      case ExecShape::AtomAdd: {
        uint64_t Addr =
            opVal(D.Src[0], D.Lane) + static_cast<uint64_t>(D.MemOffset);
        std::byte *P = resolveAddr(Mem, W, D.Space, Addr, D.MemBytes, D.Lane,
                                   true, Err);
        if (!P) [[unlikely]] {
          trap(std::move(Err));
          settleTrap(Inst);
          return R;
        }
        if (D.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        std::unique_lock<std::mutex> Lock;
        if (Mem.Atomics)
          Lock = std::unique_lock<std::mutex>(Mem.Atomics->lockFor(Addr));
        uint64_t Old = loadBytes(P, D.MemBytes);
        bool Bad = false;
        uint64_t New = evalBinary(Opcode::Add, D.Kind, Old,
                                  opVal(D.Src[1], D.Lane), Bad);
        storeBytes(P, New, D.MemBytes);
        if (D.DstSlot != InvalidSlot)
          RF[D.DstSlot] = Old;
        break;
      }
      case ExecShape::InsertElement: {
        uint64_t *Dst = RF + D.DstSlot;
        Scratch.assign(N, 0);
        for (uint32_t L = 0; L < N; ++L)
          Scratch[L] = opVal(D.Src[0], L);
        Scratch[D.AuxLane] = opVal(D.Src[1], D.Lane);
        for (uint32_t L = 0; L < N; ++L)
          Dst[L] = Scratch[L];
        break;
      }
      case ExecShape::ExtractElement:
        RF[D.DstSlot] = opVal(D.Src[0], D.AuxLane);
        break;
      case ExecShape::Iota: {
        uint64_t *Dst = RF + D.DstSlot;
        for (uint32_t L = 0; L < N; ++L)
          Dst[L] = L;
        break;
      }
      case ExecShape::VoteSum: {
        uint64_t Sum = 0;
        for (uint32_t L = 0; L < D.SrcN; ++L)
          Sum += opVal(D.Src[0], L) & 1;
        RF[D.DstSlot] = Sum;
        break;
      }
      case ExecShape::Spill: {
        // Scalar spills serve one replicated lane (D.Lane); vector spills
        // scatter each lane's element to that thread's slot.
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = D.IsVector ? L : D.Lane;
          std::byte *P = resolveAddr(Mem, W, AddressSpace::Local, D.SpillAddr,
                                     D.MemBytes, ThreadLane, true, Err);
          if (!P) [[unlikely]] {
            trap(std::move(Err));
            settleTrap(Inst);
            return R;
          }
          storeBytes(P, opVal(D.Src[0], ThreadLane), D.MemBytes);
        }
        Counters.SpilledValues += N; // lane-values spilled
        break;
      }
      case ExecShape::Restore: {
        uint64_t *Dst = RF + D.DstSlot;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = D.IsVector ? L : D.Lane;
          std::byte *P = resolveAddr(Mem, W, AddressSpace::Local, D.SpillAddr,
                                     D.MemBytes, ThreadLane, false, Err);
          if (!P) [[unlikely]] {
            trap(std::move(Err));
            settleTrap(Inst);
            return R;
          }
          Dst[L] = loadBytes(P, D.MemBytes);
        }
        Counters.RestoredValues += N; // lane-values restored
        break;
      }
      case ExecShape::SetRPoint:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).ResumePoint = static_cast<uint32_t>(opVal(D.Src[0], L));
        break;
      case ExecShape::SetRStatus:
        PendingStatus = static_cast<ResumeStatus>(D.Src[0].Imm);
        break;
      case ExecShape::Nop:
        break;
      case ExecShape::BarSync:
        trap("bar.sync executed directly; barriers must be lowered to "
             "yields before execution");
        settleTrap(Inst);
        return R;

      // Terminators.
      case ExecShape::Bra:
        if (D.GuardSlot != InvalidSlot) {
          bool G = (RF[D.GuardSlot] & 1) != 0;
          if (D.GuardNegated)
            G = !G;
          NextBlock = G ? D.Target : D.FalseTarget;
        } else {
          NextBlock = D.Target;
        }
        break;
      case ExecShape::Switch: {
        uint64_t V = opVal(D.Src[0], 0);
        const DecodedSwitch &SW = Exec.switchTable(D.SwitchId);
        NextBlock = SW.Default;
        for (size_t Case = 0; Case < SW.Values.size(); ++Case)
          if (static_cast<uint64_t>(SW.Values[Case]) == V) {
            NextBlock = SW.Targets[Case];
            break;
          }
        break;
      }
      case ExecShape::Ret:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = ResumeStatus::Exit;
        R.Status = ResumeStatus::Exit;
        return R;
      case ExecShape::Yield:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = PendingStatus;
        R.Status = PendingStatus;
        return R;
      case ExecShape::Trap:
        trap("trap instruction executed");
        settleTrap(Inst);
        return R;
      }
      // No per-record trap recheck: every handler that can trap settles and
      // returns at its own site, keeping the dispatch backedge branch-free.
    }

    assert(NextBlock != InvalidBlock && "block fell through its terminator");
    Block = NextBlock;
  }
}

//===----------------------------------------------------------------------===
// Reference engine: direct IR walk (the original implementation), kept as
// the differential-testing oracle for the decoded path. Counter accounting
// mirrors the fast engine's block batching exactly: the same precomputed
// DecodedBlock sums are added on block entry, and traps settle with the
// identically ordered tail fold (Machine.issueCost(I) + Penalty produces the
// same doubles the decoder stored in DecodedInst::Cost), so totals stay
// bit-identical through the floating-point accumulation.
//===----------------------------------------------------------------------===

Interpreter::Result Interpreter::runReference(const KernelExec &Exec,
                                              const Warp &W, ExecMemory &Mem,
                                              CycleCounters &Counters) {
  const Kernel &K = Exec.kernel();
  const uint32_t Width = K.WarpSize ? K.WarpSize : 1;
  assert(W.Size == Width && "warp size must match the specialization");
#ifdef NDEBUG
  (void)Width;
#endif
  for (uint32_t L = 1; L < W.Size; ++L)
    assert(W.lane(L).ResumePoint == W.lane(0).ResumePoint &&
           "warp lanes must share one entry point");

  RegFile.assign(Exec.totalSlots(), 0);
  Result R;
  ResumeStatus PendingStatus = ResumeStatus::Exit;
  std::string Err;

  auto trap = [&](std::string Message) {
    R.Trap = std::move(Message);
    R.Status = ResumeStatus::Exit;
  };

  // --- Operand evaluation --------------------------------------------------
  auto lanesOf = [&](Type Ty) -> uint32_t {
    return std::max<uint16_t>(1, Ty.lanes());
  };

  auto regLanePtr = [&](RegId Reg) -> uint64_t * {
    return RegFile.data() + Exec.regSlot(Reg);
  };

  // Evaluates operand O lane L. For scalar operands, L selects the context
  // used by special registers (the replicated instruction's lane).
  auto evalLane = [&](const Operand &O, uint32_t L) -> uint64_t {
    switch (O.kind()) {
    case Operand::Kind::Reg: {
      const uint64_t *P = regLanePtr(O.regId());
      Type Ty = K.regType(O.regId());
      return Ty.isVector() ? P[L] : P[0];
    }
    case Operand::Kind::Imm:
      return O.immBits();
    case Operand::Kind::Special:
      return evalSpecial(O.specialReg(), W, L);
    case Operand::Kind::Symbol:
      switch (O.symKind()) {
      case SymKind::Param:
        return K.Params[O.symIndex()].Offset;
      case SymKind::Shared:
        return K.SharedVars[O.symIndex()].Offset;
      case SymKind::Local:
        return K.LocalVars[O.symIndex()].Offset;
      }
      return 0;
    case Operand::Kind::None:
      break;
    }
    assert(false && "bad operand");
    return 0;
  };

  // --- Memory access -------------------------------------------------------
  // Resolves (space, address, size, lane) to a host pointer; null on fault.
  auto resolve = [&](AddressSpace Space, uint64_t Addr, size_t Size,
                     uint32_t Lane, bool Write) -> std::byte * {
    std::byte *P = resolveAddr(Mem, W, Space, Addr, Size, Lane, Write, Err);
    if (!P)
      trap(std::move(Err));
    return P;
  };

  // Modeled L1 lookup for global accesses; returns the extra miss cycles.
  ensureL1();
  auto globalAccessExtra = [&](uint64_t Addr) -> double {
    uint64_t Line = Addr / Machine.L1LineBytes;
    size_t Set = static_cast<size_t>(Line % Machine.L1Sets);
    uint64_t *Ways = L1Tags.data() + Set * Machine.L1Ways;
    ++Counters.GlobalAccesses;
    for (unsigned Way = 0; Way < Machine.L1Ways; ++Way)
      if (Ways[Way] == Line)
        return 0;
    Ways[L1NextWay[Set]] = Line;
    L1NextWay[Set] =
        static_cast<uint8_t>((L1NextWay[Set] + 1) % Machine.L1Ways);
    ++Counters.GlobalMisses;
    return Machine.MemMissExtra;
  };

  // --- Main loop -----------------------------------------------------------
  uint32_t Block = 0;
  for (;;) {
    const BasicBlock &B = K.Blocks[Block];
    double *Bucket = B.Kind == BlockKind::Body ? &Counters.SubkernelCycles
                                               : &Counters.YieldCycles;
    const double Penalty = Exec.pressurePenalty(Block);
    uint32_t NextBlock = InvalidBlock;

    // Block-batched counters: the same precomputed sums the fast engine
    // adds (decode lowers instructions 1:1 in order, so the block views
    // agree record-for-record).
    const DecodedBlock &DB = Exec.decodedBlocks()[Block];
    *Bucket += DB.CostSum;
    Counters.InstsExecuted += DB.InstsSum;
    Counters.VectorInsts += DB.VectorSum;
    Counters.Flops += DB.FlopsSum;

    // A trap at instruction TrapIdx refunds the instructions strictly after
    // it; issueCost(TI) + Penalty reproduces DecodedInst::Cost exactly.
    auto settleTrap = [&](size_t TrapIdx) {
      double TailCost = 0;
      uint64_t TailInsts = 0, TailVec = 0, TailFlops = 0;
      for (size_t J = TrapIdx + 1; J < B.Insts.size(); ++J) {
        const Instruction &TI = B.Insts[J];
        TailCost += Machine.issueCost(TI) + Penalty;
        ++TailInsts;
        TailVec += TI.Ty.isVector() ? 1 : 0;
        TailFlops += Machine.flopsFor(TI);
      }
      *Bucket -= TailCost;
      Counters.InstsExecuted -= TailInsts;
      Counters.VectorInsts -= TailVec;
      Counters.Flops -= TailFlops;
    };

    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      const Instruction &I = B.Insts[Idx];

      // Guard check (non-branch): skip the architectural effect; the issue
      // slot is still consumed.
      if (I.Guard.isValid() && I.Op != Opcode::Bra) {
        bool G = (regLanePtr(I.Guard)[0] & 1) != 0;
        if (I.GuardNegated)
          G = !G;
        if (!G)
          continue;
      }

      const uint32_t N = lanesOf(I.Ty);
      switch (I.Op) {
      case Opcode::Mov:
      case Opcode::Broadcast: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = evalLane(I.Srcs[0], I.Op == Opcode::Broadcast ? L
                          : I.Ty.isVector() ? L
                                            : I.Lane);
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalBinary(I.Op, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                            evalLane(I.Srcs[1], CtxLane), Bad);
        }
        if (Bad)
          trap(formatString("invalid %s on %s", opcodeName(I.Op),
                            I.Ty.str().c_str()));
        break;
      }
      case Opcode::Mad: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalMad(I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                         evalLane(I.Srcs[1], CtxLane),
                         evalLane(I.Srcs[2], CtxLane), Bad);
        }
        if (Bad)
          trap("invalid mad type");
        break;
      }
      case Opcode::Neg:
      case Opcode::Abs:
      case Opcode::Not:
      case Opcode::Rcp:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Lg2:
      case Opcode::Ex2: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalUnary(I.Op, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                           Bad);
        }
        if (Bad)
          trap(formatString("invalid %s on %s", opcodeName(I.Op),
                            I.Ty.str().c_str()));
        break;
      }
      case Opcode::Setp: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalCmp(I.Cmp, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                         evalLane(I.Srcs[1], CtxLane));
        }
        break;
      }
      case Opcode::Selp: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          bool P = (evalLane(I.Srcs[2], CtxLane) & 1) != 0;
          D[L] = evalLane(I.Srcs[P ? 0 : 1], CtxLane);
        }
        break;
      }
      case Opcode::Cvt: {
        uint64_t *D = regLanePtr(I.Dst);
        ScalarKind SrcK = I.Srcs[0].isReg()
                              ? K.regType(I.Srcs[0].regId()).kind()
                              : I.Srcs[0].isImm() ? I.Srcs[0].immType().kind()
                                                  : ScalarKind::U32;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalConvert(I.Ty.kind(), SrcK, evalLane(I.Srcs[0], CtxLane));
        }
        break;
      }
      case Opcode::Ld: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, false);
        if (!P) [[unlikely]] {
          settleTrap(Idx);
          return R;
        }
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        regLanePtr(I.Dst)[0] = loadBytes(P, Bytes);
        break;
      }
      case Opcode::St: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, true);
        if (!P) [[unlikely]] {
          settleTrap(Idx);
          return R;
        }
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        storeBytes(P, evalLane(I.Srcs[1], I.Lane), Bytes);
        break;
      }
      case Opcode::AtomAdd: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, true);
        if (!P) [[unlikely]] {
          settleTrap(Idx);
          return R;
        }
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        std::unique_lock<std::mutex> Lock;
        if (Mem.Atomics)
          Lock = std::unique_lock<std::mutex>(Mem.Atomics->lockFor(Addr));
        uint64_t Old = loadBytes(P, Bytes);
        bool Bad = false;
        uint64_t New = evalBinary(Opcode::Add, I.Ty.kind(), Old,
                                  evalLane(I.Srcs[1], I.Lane), Bad);
        storeBytes(P, New, Bytes);
        if (I.Dst.isValid())
          regLanePtr(I.Dst)[0] = Old;
        break;
      }
      case Opcode::InsertElement: {
        uint64_t *D = regLanePtr(I.Dst);
        Scratch.assign(N, 0);
        for (uint32_t L = 0; L < N; ++L)
          Scratch[L] = evalLane(I.Srcs[0], L);
        Scratch[static_cast<uint32_t>(I.Srcs[2].immInt())] =
            evalLane(I.Srcs[1], I.Lane);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = Scratch[L];
        break;
      }
      case Opcode::ExtractElement: {
        uint32_t SrcLane = static_cast<uint32_t>(I.Srcs[1].immInt());
        regLanePtr(I.Dst)[0] = evalLane(I.Srcs[0], SrcLane);
        break;
      }
      case Opcode::Iota: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = L;
        break;
      }
      case Opcode::VoteSum: {
        const Operand &Src = I.Srcs[0];
        uint32_t SrcLanes =
            Src.isReg() ? lanesOf(K.regType(Src.regId())) : 1;
        uint64_t Sum = 0;
        for (uint32_t L = 0; L < SrcLanes; ++L)
          Sum += evalLane(Src, L) & 1;
        regLanePtr(I.Dst)[0] = Sum;
        break;
      }
      case Opcode::Spill: {
        // Scalar spills serve one replicated lane (I.Lane); vector spills
        // scatter each lane's element to that thread's slot.
        unsigned Bytes = spillElemBytes(I.Ty);
        uint64_t Addr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = I.Ty.isVector() ? L : I.Lane;
          std::byte *P =
              resolve(AddressSpace::Local, Addr, Bytes, ThreadLane, true);
          if (!P) [[unlikely]] {
            settleTrap(Idx);
            return R;
          }
          storeBytes(P, evalLane(I.Srcs[0], ThreadLane), Bytes);
        }
        Counters.SpilledValues += N; // lane-values spilled
        break;
      }
      case Opcode::Restore: {
        unsigned Bytes = spillElemBytes(I.Ty);
        uint64_t *D = regLanePtr(I.Dst);
        uint64_t Addr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = I.Ty.isVector() ? L : I.Lane;
          std::byte *P =
              resolve(AddressSpace::Local, Addr, Bytes, ThreadLane, false);
          if (!P) [[unlikely]] {
            settleTrap(Idx);
            return R;
          }
          D[L] = loadBytes(P, Bytes);
        }
        Counters.RestoredValues += N; // lane-values restored
        break;
      }
      case Opcode::SetRPoint: {
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).ResumePoint =
              static_cast<uint32_t>(evalLane(I.Srcs[0], L));
        break;
      }
      case Opcode::SetRStatus:
        PendingStatus = static_cast<ResumeStatus>(I.Srcs[0].immInt());
        break;
      case Opcode::Membar:
        break;
      case Opcode::BarSync:
        trap("bar.sync executed directly; barriers must be lowered to "
             "yields before execution");
        settleTrap(Idx);
        return R;

      // Terminators.
      case Opcode::Bra:
        if (I.Guard.isValid()) {
          bool G = (regLanePtr(I.Guard)[0] & 1) != 0;
          if (I.GuardNegated)
            G = !G;
          NextBlock = G ? I.Target : I.FalseTarget;
        } else {
          NextBlock = I.Target;
        }
        break;
      case Opcode::Switch: {
        uint64_t V = evalLane(I.Srcs[0], 0);
        NextBlock = I.SwitchDefault;
        for (size_t Case = 0; Case < I.SwitchValues.size(); ++Case)
          if (static_cast<uint64_t>(I.SwitchValues[Case]) == V) {
            NextBlock = I.SwitchTargets[Case];
            break;
          }
        break;
      }
      case Opcode::Ret:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = ResumeStatus::Exit;
        R.Status = ResumeStatus::Exit;
        return R;
      case Opcode::Yield:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = PendingStatus;
        R.Status = PendingStatus;
        return R;
      case Opcode::Trap:
        trap("trap instruction executed");
        settleTrap(Idx);
        return R;
      }
      if (R.Trap) [[unlikely]] {
        settleTrap(Idx);
        return R;
      }
    }

    assert(NextBlock != InvalidBlock && "block fell through its terminator");
    Block = NextBlock;
  }
}

//===----------------------------------------------------------------------===
// Native tier: marshal one warp entry across the dlopen ABI and map the
// result back. The host keeps ownership of exactly the state run() uses —
// register file, modeled L1 arrays, counters — so a warp entry can run on
// either tier with bit-identical memory effects and counters.
//===----------------------------------------------------------------------===

namespace {

void nativeAtomLock(void *Atomics, uint64_t Addr) {
  static_cast<AtomicStripes *>(Atomics)->lockFor(Addr).lock();
}

void nativeAtomUnlock(void *Atomics, uint64_t Addr) {
  static_cast<AtomicStripes *>(Atomics)->lockFor(Addr).unlock();
}

} // namespace

Interpreter::Result Interpreter::runNative(SimtvecNativeEntryFn Fn,
                                           const KernelExec &Exec,
                                           const Warp &W, ExecMemory &Mem,
                                           CycleCounters &Counters) {
#ifndef NDEBUG
  const uint32_t Width =
      Exec.kernel().WarpSize ? Exec.kernel().WarpSize : 1;
  assert(W.Size == Width && "warp size must match the specialization");
  assert(W.Size <= NativeMaxWarp && "warp exceeds the native ABI");
  for (uint32_t L = 1; L < W.Size; ++L)
    assert(W.lane(L).ResumePoint == W.lane(0).ResumePoint &&
           "warp lanes must share one entry point");
#endif

  // Register-file preparation identical to run().
  if (RegFile.size() < Exec.totalSlots())
    RegFile.resize(Exec.totalSlots(), 0);
  uint64_t *RF = RegFile.data();
  for (const auto &[First, Len] : Exec.zeroRanges())
    std::memset(RF + First, 0, static_cast<size_t>(Len) * sizeof(uint64_t));
  ensureL1();

  SimtvecNativeArgs A;
  std::memset(&A, 0, sizeof A);
  A.RF = RF;
  for (uint32_t L = 0; L < W.Size; ++L) {
    const ThreadContext &Ctx = W.lane(L);
    A.TidX[L] = Ctx.TidX;
    A.TidY[L] = Ctx.TidY;
    A.TidZ[L] = Ctx.TidZ;
    A.ResumePoint[L] = Ctx.ResumePoint;
    A.LocalMem[L] = reinterpret_cast<unsigned char *>(Ctx.LocalMem);
  }
  const ThreadContext &C0 = W.lane(0);
  A.BlockDimX = C0.BlockDim.X;
  A.BlockDimY = C0.BlockDim.Y;
  A.BlockDimZ = C0.BlockDim.Z;
  A.GridDimX = C0.GridDim.X;
  A.GridDimY = C0.GridDim.Y;
  A.GridDimZ = C0.GridDim.Z;
  A.CtaIdX = C0.CtaId.X;
  A.CtaIdY = C0.CtaId.Y;
  A.CtaIdZ = C0.CtaId.Z;
  A.WarpBaseTid = C0.LinearTid;
  A.Global = reinterpret_cast<unsigned char *>(Mem.Global);
  A.GlobalSize = Mem.GlobalSize;
  A.Shared = reinterpret_cast<unsigned char *>(Mem.Shared);
  A.SharedSize = Mem.SharedSize;
  A.ParamBuf = reinterpret_cast<const unsigned char *>(Mem.ParamBuf);
  A.ParamSize = Mem.ParamSize;
  A.LocalSize = Mem.LocalSize;
  A.Atomics = Mem.Atomics;
  A.AtomLock = nativeAtomLock;
  A.AtomUnlock = nativeAtomUnlock;
  A.EMBody = &Counters.SubkernelCycles;
  A.EMYield = &Counters.YieldCycles;
  A.Flops = &Counters.Flops;
  A.InstsExecuted = &Counters.InstsExecuted;
  A.VectorInsts = &Counters.VectorInsts;
  A.RestoredValues = &Counters.RestoredValues;
  A.SpilledValues = &Counters.SpilledValues;
  A.GlobalAccesses = &Counters.GlobalAccesses;
  A.GlobalMisses = &Counters.GlobalMisses;
  A.L1Tags = L1Tags.data();
  A.L1NextWay = L1NextWay.data();
  A.L1MRU = L1MRU.data();

  const int32_t Code = Fn(&A);

  // SetRPoint writes resume points through the args block; copy them back
  // (a no-op when the kernel never rewrote them).
  for (uint32_t L = 0; L < W.Size; ++L)
    W.lane(L).ResumePoint = A.ResumePoint[L];

  Result R;
  if (Code == NativeRetTrap) {
    A.TrapMsg[sizeof A.TrapMsg - 1] = '\0';
    R.Trap = std::string(A.TrapMsg);
    // Trap paths leave lane Status untouched, exactly like run()'s trap().
    R.Status = ResumeStatus::Exit;
    return R;
  }
  ResumeStatus S = ResumeStatus::Exit;
  if (Code == NativeRetBranch)
    S = ResumeStatus::Branch;
  else if (Code == NativeRetBarrier)
    S = ResumeStatus::Barrier;
  for (uint32_t L = 0; L < W.Size; ++L)
    W.lane(L).Status = S;
  R.Status = S;
  return R;
}
