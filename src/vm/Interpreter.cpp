//===- vm/Interpreter.cpp - The vector virtual machine --------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/Interpreter.h"

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

using namespace simtvec;

namespace {

//===----------------------------------------------------------------------===
// Raw-bits <-> typed value helpers. Lane values are stored as 64-bit words:
// integers zero-extended from their bit pattern, f32 in the low 32 bits,
// predicates as 0/1.
//===----------------------------------------------------------------------===

uint64_t evalSpecial(SReg S, const Warp &W, uint32_t Lane) {
  const ThreadContext &Ctx = W.lane(Lane);
  switch (S) {
  case SReg::TidX:
    return Ctx.TidX;
  case SReg::TidY:
    return Ctx.TidY;
  case SReg::TidZ:
    return Ctx.TidZ;
  case SReg::NTidX:
    return Ctx.BlockDim.X;
  case SReg::NTidY:
    return Ctx.BlockDim.Y;
  case SReg::NTidZ:
    return Ctx.BlockDim.Z;
  case SReg::CTAIdX:
    return Ctx.CtaId.X;
  case SReg::CTAIdY:
    return Ctx.CtaId.Y;
  case SReg::CTAIdZ:
    return Ctx.CtaId.Z;
  case SReg::NCTAIdX:
    return Ctx.GridDim.X;
  case SReg::NCTAIdY:
    return Ctx.GridDim.Y;
  case SReg::NCTAIdZ:
    return Ctx.GridDim.Z;
  case SReg::LaneId:
    return Lane;
  case SReg::WarpBaseTid:
    return W.lane(0).LinearTid;
  case SReg::WarpWidth:
    return W.Size;
  case SReg::EntryId:
    return W.lane(0).ResumePoint;
  }
  assert(false && "unknown special register");
  return 0;
}

/// Byte size of a spill slot element for one lane.
unsigned spillElemBytes(Type Ty) {
  return Ty.isPred() ? 1 : Ty.scalar().byteSize();
}

} // namespace

Interpreter::Result Interpreter::run(const KernelExec &Exec, const Warp &W,
                                     ExecMemory &Mem,
                                     CycleCounters &Counters) {
  const Kernel &K = Exec.kernel();
  const uint32_t Width = K.WarpSize ? K.WarpSize : 1;
  assert(W.Size == Width && "warp size must match the specialization");
#ifdef NDEBUG
  (void)Width;
#endif
  for (uint32_t L = 1; L < W.Size; ++L)
    assert(W.lane(L).ResumePoint == W.lane(0).ResumePoint &&
           "warp lanes must share one entry point");

  RegFile.assign(Exec.totalSlots(), 0);
  Result R;
  ResumeStatus PendingStatus = ResumeStatus::Exit;

  auto trap = [&](std::string Message) {
    R.Trap = std::move(Message);
    R.Status = ResumeStatus::Exit;
  };

  // --- Operand evaluation --------------------------------------------------
  auto lanesOf = [&](Type Ty) -> uint32_t {
    return std::max<uint16_t>(1, Ty.lanes());
  };

  auto regLanePtr = [&](RegId Reg) -> uint64_t * {
    return RegFile.data() + Exec.regSlot(Reg);
  };

  // Evaluates operand O lane L. For scalar operands, L selects the context
  // used by special registers (the replicated instruction's lane).
  auto evalLane = [&](const Operand &O, uint32_t L) -> uint64_t {
    switch (O.kind()) {
    case Operand::Kind::Reg: {
      const uint64_t *P = regLanePtr(O.regId());
      Type Ty = K.regType(O.regId());
      return Ty.isVector() ? P[L] : P[0];
    }
    case Operand::Kind::Imm:
      return O.immBits();
    case Operand::Kind::Special:
      return evalSpecial(O.specialReg(), W, L);
    case Operand::Kind::Symbol:
      switch (O.symKind()) {
      case SymKind::Param:
        return K.Params[O.symIndex()].Offset;
      case SymKind::Shared:
        return K.SharedVars[O.symIndex()].Offset;
      case SymKind::Local:
        return K.LocalVars[O.symIndex()].Offset;
      }
      return 0;
    case Operand::Kind::None:
      break;
    }
    assert(false && "bad operand");
    return 0;
  };

  // --- Memory access -------------------------------------------------------
  // Resolves (space, address, size, lane) to a host pointer; null on fault.
  auto resolve = [&](AddressSpace Space, uint64_t Addr, size_t Size,
                     uint32_t Lane, bool Write) -> std::byte * {
    switch (Space) {
    case AddressSpace::Global:
      if (Addr + Size > Mem.GlobalSize) {
        trap(formatString("out-of-bounds global access at 0x%llx (+%zu)",
                          static_cast<unsigned long long>(Addr), Size));
        return nullptr;
      }
      return Mem.Global + Addr;
    case AddressSpace::Shared:
      if (Addr + Size > Mem.SharedSize) {
        trap(formatString("out-of-bounds shared access at 0x%llx",
                          static_cast<unsigned long long>(Addr)));
        return nullptr;
      }
      return Mem.Shared + Addr;
    case AddressSpace::Local:
      if (Addr + Size > Mem.LocalSize) {
        trap(formatString("out-of-bounds local access at 0x%llx",
                          static_cast<unsigned long long>(Addr)));
        return nullptr;
      }
      return W.lane(Lane).LocalMem + Addr;
    case AddressSpace::Param:
      if (Write) {
        trap("store to the read-only parameter space");
        return nullptr;
      }
      if (Addr + Size > Mem.ParamSize) {
        trap(formatString("out-of-bounds param access at 0x%llx",
                          static_cast<unsigned long long>(Addr)));
        return nullptr;
      }
      return const_cast<std::byte *>(Mem.ParamBuf) + Addr;
    }
    return nullptr;
  };

  // Modeled L1 lookup for global accesses; returns the extra miss cycles.
  if (L1Tags.empty()) {
    L1Tags.assign(static_cast<size_t>(Machine.L1Sets) * Machine.L1Ways,
                  ~0ull);
    L1NextWay.assign(Machine.L1Sets, 0);
  }
  auto globalAccessExtra = [&](uint64_t Addr) -> double {
    uint64_t Line = Addr / Machine.L1LineBytes;
    size_t Set = static_cast<size_t>(Line % Machine.L1Sets);
    uint64_t *Ways = L1Tags.data() + Set * Machine.L1Ways;
    ++Counters.GlobalAccesses;
    for (unsigned Way = 0; Way < Machine.L1Ways; ++Way)
      if (Ways[Way] == Line)
        return 0;
    Ways[L1NextWay[Set]] = Line;
    L1NextWay[Set] =
        static_cast<uint8_t>((L1NextWay[Set] + 1) % Machine.L1Ways);
    ++Counters.GlobalMisses;
    return Machine.MemMissExtra;
  };

  auto loadBytes = [](const std::byte *P, unsigned Bytes) -> uint64_t {
    uint64_t V = 0;
    std::memcpy(&V, P, Bytes);
    return V;
  };
  auto storeBytes = [](std::byte *P, uint64_t V, unsigned Bytes) {
    std::memcpy(P, &V, Bytes);
  };

  // --- Main loop -----------------------------------------------------------
  uint32_t Block = 0;
  for (;;) {
    const BasicBlock &B = K.Blocks[Block];
    double *Bucket = B.Kind == BlockKind::Body ? &Counters.SubkernelCycles
                                               : &Counters.YieldCycles;
    const double Penalty = Exec.pressurePenalty(Block);
    uint32_t NextBlock = InvalidBlock;

    for (const Instruction &I : B.Insts) {
      *Bucket += Machine.issueCost(I) + Penalty;
      ++Counters.InstsExecuted;
      if (I.Ty.isVector())
        ++Counters.VectorInsts;
      Counters.Flops += Machine.flopsFor(I);

      // Guard check (non-branch): skip the architectural effect; the issue
      // slot is still consumed.
      if (I.Guard.isValid() && I.Op != Opcode::Bra) {
        bool G = (regLanePtr(I.Guard)[0] & 1) != 0;
        if (I.GuardNegated)
          G = !G;
        if (!G)
          continue;
      }

      const uint32_t N = lanesOf(I.Ty);
      switch (I.Op) {
      case Opcode::Mov:
      case Opcode::Broadcast: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = evalLane(I.Srcs[0], I.Op == Opcode::Broadcast ? L
                          : I.Ty.isVector() ? L
                                            : I.Lane);
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalBinary(I.Op, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                            evalLane(I.Srcs[1], CtxLane), Bad);
        }
        if (Bad)
          trap(formatString("invalid %s on %s", opcodeName(I.Op),
                            I.Ty.str().c_str()));
        break;
      }
      case Opcode::Mad: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalMad(I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                         evalLane(I.Srcs[1], CtxLane),
                         evalLane(I.Srcs[2], CtxLane), Bad);
        }
        if (Bad)
          trap("invalid mad type");
        break;
      }
      case Opcode::Neg:
      case Opcode::Abs:
      case Opcode::Not:
      case Opcode::Rcp:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Lg2:
      case Opcode::Ex2: {
        uint64_t *D = regLanePtr(I.Dst);
        bool Bad = false;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalUnary(I.Op, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                           Bad);
        }
        if (Bad)
          trap(formatString("invalid %s on %s", opcodeName(I.Op),
                            I.Ty.str().c_str()));
        break;
      }
      case Opcode::Setp: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalCmp(I.Cmp, I.Ty.kind(), evalLane(I.Srcs[0], CtxLane),
                         evalLane(I.Srcs[1], CtxLane));
        }
        break;
      }
      case Opcode::Selp: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          bool P = (evalLane(I.Srcs[2], CtxLane) & 1) != 0;
          D[L] = evalLane(I.Srcs[P ? 0 : 1], CtxLane);
        }
        break;
      }
      case Opcode::Cvt: {
        uint64_t *D = regLanePtr(I.Dst);
        ScalarKind SrcK = I.Srcs[0].isReg()
                              ? K.regType(I.Srcs[0].regId()).kind()
                              : I.Srcs[0].isImm() ? I.Srcs[0].immType().kind()
                                                  : ScalarKind::U32;
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t CtxLane = I.Ty.isVector() ? L : I.Lane;
          D[L] = evalConvert(I.Ty.kind(), SrcK, evalLane(I.Srcs[0], CtxLane));
        }
        break;
      }
      case Opcode::Ld: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, false);
        if (!P)
          return R;
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        regLanePtr(I.Dst)[0] = loadBytes(P, Bytes);
        break;
      }
      case Opcode::St: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, true);
        if (!P)
          return R;
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        storeBytes(P, evalLane(I.Srcs[1], I.Lane), Bytes);
        break;
      }
      case Opcode::AtomAdd: {
        uint64_t Addr = evalLane(I.Srcs[0], I.Lane) +
                        static_cast<uint64_t>(I.MemOffset);
        unsigned Bytes = I.Ty.byteSize();
        std::byte *P = resolve(I.Space, Addr, Bytes, I.Lane, true);
        if (!P)
          return R;
        if (I.Space == AddressSpace::Global)
          *Bucket += globalAccessExtra(Addr);
        std::unique_lock<std::mutex> Lock;
        if (Mem.AtomicMutex)
          Lock = std::unique_lock<std::mutex>(*Mem.AtomicMutex);
        uint64_t Old = loadBytes(P, Bytes);
        bool Bad = false;
        uint64_t New = evalBinary(Opcode::Add, I.Ty.kind(), Old,
                                  evalLane(I.Srcs[1], I.Lane), Bad);
        storeBytes(P, New, Bytes);
        if (I.Dst.isValid())
          regLanePtr(I.Dst)[0] = Old;
        break;
      }
      case Opcode::InsertElement: {
        uint64_t *D = regLanePtr(I.Dst);
        Scratch.assign(N, 0);
        for (uint32_t L = 0; L < N; ++L)
          Scratch[L] = evalLane(I.Srcs[0], L);
        Scratch[static_cast<uint32_t>(I.Srcs[2].immInt())] =
            evalLane(I.Srcs[1], I.Lane);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = Scratch[L];
        break;
      }
      case Opcode::ExtractElement: {
        uint32_t SrcLane = static_cast<uint32_t>(I.Srcs[1].immInt());
        regLanePtr(I.Dst)[0] = evalLane(I.Srcs[0], SrcLane);
        break;
      }
      case Opcode::Iota: {
        uint64_t *D = regLanePtr(I.Dst);
        for (uint32_t L = 0; L < N; ++L)
          D[L] = L;
        break;
      }
      case Opcode::VoteSum: {
        const Operand &Src = I.Srcs[0];
        uint32_t SrcLanes =
            Src.isReg() ? lanesOf(K.regType(Src.regId())) : 1;
        uint64_t Sum = 0;
        for (uint32_t L = 0; L < SrcLanes; ++L)
          Sum += evalLane(Src, L) & 1;
        regLanePtr(I.Dst)[0] = Sum;
        break;
      }
      case Opcode::Spill: {
        // Scalar spills serve one replicated lane (I.Lane); vector spills
        // scatter each lane's element to that thread's slot.
        unsigned Bytes = spillElemBytes(I.Ty);
        uint64_t Addr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = I.Ty.isVector() ? L : I.Lane;
          std::byte *P =
              resolve(AddressSpace::Local, Addr, Bytes, ThreadLane, true);
          if (!P)
            return R;
          storeBytes(P, evalLane(I.Srcs[0], ThreadLane), Bytes);
        }
        Counters.SpilledValues += N; // lane-values spilled
        break;
      }
      case Opcode::Restore: {
        unsigned Bytes = spillElemBytes(I.Ty);
        uint64_t *D = regLanePtr(I.Dst);
        uint64_t Addr = K.LocalBytes + static_cast<uint64_t>(I.MemOffset);
        for (uint32_t L = 0; L < N; ++L) {
          uint32_t ThreadLane = I.Ty.isVector() ? L : I.Lane;
          std::byte *P =
              resolve(AddressSpace::Local, Addr, Bytes, ThreadLane, false);
          if (!P)
            return R;
          D[L] = loadBytes(P, Bytes);
        }
        Counters.RestoredValues += N; // lane-values restored
        break;
      }
      case Opcode::SetRPoint: {
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).ResumePoint =
              static_cast<uint32_t>(evalLane(I.Srcs[0], L));
        break;
      }
      case Opcode::SetRStatus:
        PendingStatus = static_cast<ResumeStatus>(I.Srcs[0].immInt());
        break;
      case Opcode::Membar:
        break;
      case Opcode::BarSync:
        trap("bar.sync executed directly; barriers must be lowered to "
             "yields before execution");
        return R;

      // Terminators.
      case Opcode::Bra:
        if (I.Guard.isValid()) {
          bool G = (regLanePtr(I.Guard)[0] & 1) != 0;
          if (I.GuardNegated)
            G = !G;
          NextBlock = G ? I.Target : I.FalseTarget;
        } else {
          NextBlock = I.Target;
        }
        break;
      case Opcode::Switch: {
        uint64_t V = evalLane(I.Srcs[0], 0);
        NextBlock = I.SwitchDefault;
        for (size_t Case = 0; Case < I.SwitchValues.size(); ++Case)
          if (static_cast<uint64_t>(I.SwitchValues[Case]) == V) {
            NextBlock = I.SwitchTargets[Case];
            break;
          }
        break;
      }
      case Opcode::Ret:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = ResumeStatus::Exit;
        R.Status = ResumeStatus::Exit;
        return R;
      case Opcode::Yield:
        for (uint32_t L = 0; L < W.Size; ++L)
          W.lane(L).Status = PendingStatus;
        R.Status = PendingStatus;
        return R;
      case Opcode::Trap:
        trap("trap instruction executed");
        return R;
      }
      if (R.Trap)
        return R;
    }

    assert(NextBlock != InvalidBlock && "block fell through its terminator");
    Block = NextBlock;
  }
}
