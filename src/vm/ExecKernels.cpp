//===- vm/ExecKernels.cpp - Specialized execution kernels -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Instantiates the fixed-width lane kernels over ScalarOpsImpl.h, in two
// engine paths selected by a bool template parameter V:
//
//  - V = false (SimdPath::Scalar): the original fixed-trip scalar loops.
//    Each kernel stages all W results in locals before storing, which (a)
//    makes the exact-overlap destination alias safe and (b) presents the
//    compiler with a load-compute-store block it can auto-vectorize. This
//    path is the differential oracle.
//  - V = true (SimdPath::Vector): the same semantics expressed on the
//    Simd<T,W> value class, so the u64 lane-word unboxing, the op, and the
//    reboxing are explicit vector code instead of an autovectorization
//    gamble. Ops the vector ISA can't express without changing semantics
//    (integer div/rem zero guards, libm unaries, saturating float->int
//    converts) fall through to the scalar loop *inside* the kernel, which
//    keeps resolver nullability — and therefore fusion decisions and
//    modeled counters — path-independent.
//
// Bit-identity notes for the V = true expressions (kept in lockstep with
// ScalarOpsImpl.h; tests/simd_test.cpp checks every row):
//  - integer + - * << are computed on the unsigned counterpart, exactly
//    intBinary's wrap; >> is arithmetic iff the kind is signed.
//  - min/max compile to compare + bit-blend, reproducing the ternary
//    `X < Y ? X : Y` — for floats a NaN operand fails the compare and
//    selects the second operand, and -0.0/+0.0 keep their bit patterns.
//  - int -> float conversions go through the same double intermediate as
//    evalConvertImpl (double rounding for F32 destinations and all).
//  - setp/selp masks are full-width compare masks reduced with `& 1`,
//    yielding the same canonical 0/1 predicate words.
//
// The resolvers mirror the ScalarOps.cpp thunk resolvers one level deeper
// (width and path added) and reuse the generic resolvers as the validity
// gate, so a combination has a lane kernel exactly when it has a scalar
// thunk — on either path.
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/ExecKernels.h"

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/ir/ScalarOpsImpl.h"
#include "simtvec/support/Simd.h"

#include <type_traits>

using namespace simtvec;
using namespace simtvec::scalarops;

namespace {

//===----------------------------------------------------------------------===
// Kind -> lane element type, and the mapped-op predicates deciding which
// combinations get a hand-written Simd expression (everything else keeps
// the scalar loop inside the vector-path kernel).
//===----------------------------------------------------------------------===

template <ScalarKind K> struct LaneTypeOf;
template <> struct LaneTypeOf<ScalarKind::Pred> { using type = uint64_t; };
template <> struct LaneTypeOf<ScalarKind::U8> { using type = uint8_t; };
template <> struct LaneTypeOf<ScalarKind::S32> { using type = int32_t; };
template <> struct LaneTypeOf<ScalarKind::U32> { using type = uint32_t; };
template <> struct LaneTypeOf<ScalarKind::S64> { using type = int64_t; };
template <> struct LaneTypeOf<ScalarKind::U64> { using type = uint64_t; };
template <> struct LaneTypeOf<ScalarKind::F32> { using type = float; };
template <> struct LaneTypeOf<ScalarKind::F64> { using type = double; };

constexpr bool isFloatKind(ScalarKind K) {
  return K == ScalarKind::F32 || K == ScalarKind::F64;
}

constexpr bool simdBinMapped(Opcode Op, ScalarKind K) {
  if (K == ScalarKind::Pred)
    return Op == Opcode::And || Op == Opcode::Or || Op == Opcode::Xor;
  if (isFloatKind(K)) {
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
    }
  }
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return true;
  default: // Div/Rem keep the zero-divisor guard in the scalar loop
    return false;
  }
}

constexpr bool simdUnMapped(Opcode Op, ScalarKind K) {
  if (K == ScalarKind::Pred)
    return Op == Opcode::Not;
  if (isFloatKind(K))
    return Op == Opcode::Neg || Op == Opcode::Abs || Op == Opcode::Rcp;
  return Op == Opcode::Neg || Op == Opcode::Abs || Op == Opcode::Not;
}

constexpr bool simdMadMapped(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
  case ScalarKind::F64:
  case ScalarKind::S32:
  case ScalarKind::U32:
  case ScalarKind::S64:
  case ScalarKind::U64:
    return true;
  default:
    return false;
  }
}

/// Float sources need evalConvert's saturating floatToInt for non-float
/// destinations; integer/predicate sources map everywhere.
constexpr bool simdCvtMapped(ScalarKind DstK, ScalarKind SrcK) {
  if (isFloatKind(SrcK))
    return isFloatKind(DstK);
  (void)DstK;
  return true;
}

//===----------------------------------------------------------------------===
// Simd expression helpers
//===----------------------------------------------------------------------===

template <CmpOp Cmp, typename T, unsigned W>
typename Simd<T, W>::Mask simdCmp(const Simd<T, W> &X, const Simd<T, W> &Y) {
  if constexpr (Cmp == CmpOp::Eq)
    return X.cmpEq(Y);
  else if constexpr (Cmp == CmpOp::Ne)
    return X.cmpNe(Y);
  else if constexpr (Cmp == CmpOp::Lt)
    return X.cmpLt(Y);
  else if constexpr (Cmp == CmpOp::Le)
    return X.cmpLe(Y);
  else if constexpr (Cmp == CmpOp::Gt)
    return X.cmpGt(Y);
  else
    return X.cmpGe(Y);
}

template <Opcode Op, typename T, unsigned W>
Simd<T, W> simdBin(const Simd<T, W> &X, const Simd<T, W> &Y) {
  using S = Simd<T, W>;
  if constexpr (Op == Opcode::Add)
    return X + Y;
  else if constexpr (Op == Opcode::Sub)
    return X - Y;
  else if constexpr (Op == Opcode::Mul)
    return X * Y;
  else if constexpr (Op == Opcode::Div)
    return X / Y; // floats only (simdBinMapped gates integers out)
  else if constexpr (Op == Opcode::Min)
    return S::select(X.cmpLt(Y), X, Y); // X < Y ? X : Y
  else if constexpr (Op == Opcode::Max)
    return S::select(X.cmpGt(Y), X, Y); // X > Y ? X : Y
  else if constexpr (Op == Opcode::And)
    return X & Y;
  else if constexpr (Op == Opcode::Or)
    return X | Y;
  else if constexpr (Op == Opcode::Xor)
    return X ^ Y;
  else if constexpr (Op == Opcode::Shl)
    return X.shlMasked(Y);
  else if constexpr (Op == Opcode::Shr)
    return X.shrMasked(Y);
}

/// std::fabs as the bit operation it is on x86: clear the sign bit (NaN
/// payloads included).
template <typename T, unsigned W>
Simd<T, W> simdFabs(const Simd<T, W> &X) {
  using UI = std::conditional_t<sizeof(T) == 4, uint32_t, uint64_t>;
  const UI NoSign = static_cast<UI>(~(UI(1) << (sizeof(T) * 8 - 1)));
  return (X.template bitcastTo<UI>() & Simd<UI, W>::splat(NoSign))
      .template bitcastTo<T>();
}

//===----------------------------------------------------------------------===
// Kernel templates. V selects the engine path; the false branch is the
// original scalar loop, byte-for-byte.
//===----------------------------------------------------------------------===

template <Opcode Op, ScalarKind K, unsigned W, bool V>
void binKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
               const uint64_t *) {
  if constexpr (V && simdBinMapped(Op, K)) {
    if constexpr (K == ScalarKind::Pred) {
      using S = Simd<uint64_t, W>;
      const S A = S::load(S0), B = S::load(S1);
      (simdBin<Op>(A, B) & S::splat(1)).store(Dst);
    } else {
      using T = typename LaneTypeOf<K>::type;
      using S = Simd<T, W>;
      const S X = S::loadLaneWords(S0), Y = S::loadLaneWords(S1);
      simdBin<Op>(X, Y).storeLaneWords(Dst);
    }
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L) {
      bool Bad = false;
      R[L] = evalBinaryImpl(Op, K, S0[L], S1[L], Bad);
    }
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <Opcode Op, ScalarKind K, unsigned W, bool V>
void unKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
              const uint64_t *) {
  if constexpr (V && simdUnMapped(Op, K)) {
    if constexpr (K == ScalarKind::Pred) {
      using S = Simd<uint64_t, W>;
      ((~S::load(S0)) & S::splat(1)).store(Dst); // (~A) & 1
    } else {
      using T = typename LaneTypeOf<K>::type;
      using S = Simd<T, W>;
      const S X = S::loadLaneWords(S0);
      S R;
      if constexpr (Op == Opcode::Neg) {
        R = X.negated();
      } else if constexpr (Op == Opcode::Abs) {
        if constexpr (std::is_floating_point_v<T>)
          R = simdFabs(X);
        else
          R = S::select(X.cmpLt(S::splat(T(0))), X.negated(), X);
      } else if constexpr (Op == Opcode::Not) {
        R = ~X;
      } else { // Rcp
        R = S::splat(T(1)) / X;
      }
      R.storeLaneWords(Dst);
    }
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L) {
      bool Bad = false;
      R[L] = evalUnaryImpl(Op, K, S0[L], Bad);
    }
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <ScalarKind K, unsigned W, bool V>
void madKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
               const uint64_t *S2) {
  if constexpr (V && simdMadMapped(K)) {
    // evalMadImpl computes S32 as U32 and S64 as U64 (wrap), so rebind.
    using T = std::conditional_t<
        K == ScalarKind::F32, float,
        std::conditional_t<K == ScalarKind::F64, double,
                           std::conditional_t<K == ScalarKind::S32 ||
                                                  K == ScalarKind::U32,
                                              uint32_t, uint64_t>>>;
    using S = Simd<T, W>;
    const S A = S::loadLaneWords(S0), B = S::loadLaneWords(S1),
            C = S::loadLaneWords(S2);
    (A * B + C).storeLaneWords(Dst); // two rounded ops (no contraction)
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L) {
      bool Bad = false;
      R[L] = evalMadImpl(K, S0[L], S1[L], S2[L], Bad);
    }
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <CmpOp Cmp, ScalarKind K, unsigned W, bool V>
void setpKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
                const uint64_t *) {
  if constexpr (V) {
    using U = Simd<uint64_t, W>;
    if constexpr (K == ScalarKind::Pred) {
      const U A = U::load(S0) & U::splat(1), B = U::load(S1) & U::splat(1);
      const auto M = simdCmp<Cmp>(A, B);
      (M.template bitcastTo<uint64_t>() & U::splat(1)).store(Dst);
    } else {
      using T = typename LaneTypeOf<K>::type;
      using S = Simd<T, W>;
      const S X = S::loadLaneWords(S0), Y = S::loadLaneWords(S1);
      const Simd<int64_t, W> M64 =
          simdCmp<Cmp>(X, Y).template convertTo<int64_t>(); // -1/0 lanes
      (M64.template bitcastTo<uint64_t>() & U::splat(1)).store(Dst);
    }
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L)
      R[L] = evalCmpImpl(Cmp, K, S0[L], S1[L]) ? 1 : 0;
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <unsigned W, bool V>
void selpKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
                const uint64_t *S2) {
  if constexpr (V) {
    using U = Simd<uint64_t, W>;
    const U A = U::load(S0), B = U::load(S1);
    const auto M = (U::load(S2) & U::splat(1)).cmpNe(U::splat(0));
    U::select(M, A, B).store(Dst); // (S2 & 1) != 0 ? S0 : S1
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L)
      R[L] = (S2[L] & 1) != 0 ? S0[L] : S1[L];
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <unsigned W, bool V>
void movKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
               const uint64_t *) {
  if constexpr (V) {
    Simd<uint64_t, W>::load(S0).store(Dst);
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L)
      R[L] = S0[L];
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

/// Vector-path convert. Mirrors evalConvertImpl's structure: widen the
/// source losslessly (s64/u64/double), then narrow to the destination
/// representation. Int -> F32 goes through double exactly like the scalar
/// path, so the double rounding matches.
template <ScalarKind DstK, ScalarKind SrcK, unsigned W>
void cvtSimd(uint64_t *Dst, const uint64_t *S0) {
  using U = Simd<uint64_t, W>;
  const U Raw = U::load(S0);
  if constexpr (isFloatKind(SrcK)) {
    // Float source, float destination (simdCvtMapped gates the rest out).
    Simd<double, W> D;
    if constexpr (SrcK == ScalarKind::F32)
      D = Raw.template convertTo<uint32_t>()
              .template bitcastTo<float>()
              .template convertTo<double>();
    else
      D = Raw.template bitcastTo<double>();
    if constexpr (DstK == ScalarKind::F64)
      D.storeLaneWords(Dst);
    else // F32: float(asDouble()) — F32->F32 keeps the double round trip
      D.template convertTo<float>().storeLaneWords(Dst);
  } else {
    constexpr bool SrcSigned =
        SrcK == ScalarKind::S32 || SrcK == ScalarKind::S64;
    Simd<int64_t, W> SI{};
    U UI{};
    if constexpr (SrcK == ScalarKind::Pred)
      UI = Raw & U::splat(1);
    else if constexpr (SrcK == ScalarKind::U8)
      UI = Raw & U::splat(0xff);
    else if constexpr (SrcK == ScalarKind::U32)
      UI = Raw & U::splat(0xffffffff);
    else if constexpr (SrcK == ScalarKind::U64)
      UI = Raw;
    else if constexpr (SrcK == ScalarKind::S32)
      SI = Raw.template convertTo<uint32_t>()
               .template bitcastTo<int32_t>()
               .template convertTo<int64_t>(); // sign-extend low 32 bits
    else // S64
      SI = Raw.template bitcastTo<int64_t>();

    U AsU64;
    if constexpr (SrcSigned)
      AsU64 = SI.template bitcastTo<uint64_t>();
    else
      AsU64 = UI;

    if constexpr (DstK == ScalarKind::F32 || DstK == ScalarKind::F64) {
      Simd<double, W> D;
      if constexpr (SrcSigned)
        D = SI.template convertTo<double>();
      else
        D = UI.template convertTo<double>();
      if constexpr (DstK == ScalarKind::F64)
        D.storeLaneWords(Dst);
      else
        D.template convertTo<float>().storeLaneWords(Dst);
    } else if constexpr (DstK == ScalarKind::U8) {
      (AsU64 & U::splat(0xff)).store(Dst);
    } else if constexpr (DstK == ScalarKind::S32 ||
                         DstK == ScalarKind::U32) {
      // toBits<int32_t>(int32_t(asU64())) == asU64() & 0xffffffff
      (AsU64 & U::splat(0xffffffff)).store(Dst);
    } else if constexpr (DstK == ScalarKind::Pred) {
      const auto M = AsU64.cmpNe(U::splat(0));
      (M.template bitcastTo<uint64_t>() & U::splat(1)).store(Dst);
    } else { // S64 / U64: asU64()
      AsU64.store(Dst);
    }
  }
}

template <ScalarKind DstK, ScalarKind SrcK, unsigned W, bool V>
void cvtKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
               const uint64_t *) {
  if constexpr (V && simdCvtMapped(DstK, SrcK)) {
    cvtSimd<DstK, SrcK, W>(Dst, S0);
  } else {
    uint64_t R[W];
    for (unsigned L = 0; L < W; ++L)
      R[L] = evalConvertImpl(DstK, SrcK, S0[L]);
    for (unsigned L = 0; L < W; ++L)
      Dst[L] = R[L];
  }
}

template <CmpOp Cmp, ScalarKind K, unsigned W, bool V>
void cmpSelKernel(uint64_t *Pred, uint64_t *Sel, const uint64_t *A,
                  const uint64_t *B, const uint64_t *C, const uint64_t *E) {
  if constexpr (V) {
    using U = Simd<uint64_t, W>;
    Simd<int64_t, W> M64;
    if constexpr (K == ScalarKind::Pred) {
      M64 = simdCmp<Cmp>(U::load(A) & U::splat(1), U::load(B) & U::splat(1));
    } else {
      using T = typename LaneTypeOf<K>::type;
      using S = Simd<T, W>;
      M64 = simdCmp<Cmp>(S::loadLaneWords(A), S::loadLaneWords(B))
                .template convertTo<int64_t>();
    }
    const U P = M64.template bitcastTo<uint64_t>() & U::splat(1);
    const U R = U::select(M64, U::load(C), U::load(E));
    P.store(Pred);
    R.store(Sel);
  } else {
    uint64_t P[W], R[W];
    for (unsigned L = 0; L < W; ++L)
      P[L] = evalCmpImpl(Cmp, K, A[L], B[L]) ? 1 : 0;
    for (unsigned L = 0; L < W; ++L)
      R[L] = P[L] != 0 ? C[L] : E[L];
    for (unsigned L = 0; L < W; ++L)
      Pred[L] = P[L];
    for (unsigned L = 0; L < W; ++L)
      Sel[L] = R[L];
  }
}

/// Whole-run address check for homogeneous fused Ld/St runs: one wrap add
/// and one compare across all members, reproducing resolveAddr's
/// `Size > Limit || Addr > Limit - Size` per lane.
template <unsigned W>
bool runAddrCheck(uint64_t *AddrOut, const uint64_t *AddrLanes,
                  uint64_t Offset, uint64_t Limit, uint64_t Size) {
  using U = Simd<uint64_t, W>;
  const U A = U::load(AddrLanes) + U::splat(Offset);
  A.store(AddrOut);
  if (Size > Limit)
    return false;
  const auto Bad = A.cmpGt(U::splat(Limit - Size));
  uint64_t M[W];
  Bad.template bitcastTo<uint64_t>().store(M);
  uint64_t Any = 0;
  for (unsigned L = 0; L < W; ++L)
    Any |= M[L];
  return Any == 0;
}

//===----------------------------------------------------------------------===
// Dispatch: kind and operation layers mirror ScalarOps.cpp, with the width
// and engine path folded in as the innermost template parameters.
//===----------------------------------------------------------------------===

template <ScalarKind K, unsigned W, bool V> LaneKernelFn binForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_BIN_CASE(OP)                                                   \
  case Opcode::OP:                                                             \
    return binKernel<Opcode::OP, K, W, V>;
    SIMTVEC_BIN_CASE(Add)
    SIMTVEC_BIN_CASE(Sub)
    SIMTVEC_BIN_CASE(Mul)
    SIMTVEC_BIN_CASE(Div)
    SIMTVEC_BIN_CASE(Rem)
    SIMTVEC_BIN_CASE(Min)
    SIMTVEC_BIN_CASE(Max)
    SIMTVEC_BIN_CASE(And)
    SIMTVEC_BIN_CASE(Or)
    SIMTVEC_BIN_CASE(Xor)
    SIMTVEC_BIN_CASE(Shl)
    SIMTVEC_BIN_CASE(Shr)
#undef SIMTVEC_BIN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K, unsigned W, bool V> LaneKernelFn unForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_UN_CASE(OP)                                                    \
  case Opcode::OP:                                                             \
    return unKernel<Opcode::OP, K, W, V>;
    SIMTVEC_UN_CASE(Neg)
    SIMTVEC_UN_CASE(Abs)
    SIMTVEC_UN_CASE(Not)
    SIMTVEC_UN_CASE(Rcp)
    SIMTVEC_UN_CASE(Sqrt)
    SIMTVEC_UN_CASE(Rsqrt)
    SIMTVEC_UN_CASE(Sin)
    SIMTVEC_UN_CASE(Cos)
    SIMTVEC_UN_CASE(Lg2)
    SIMTVEC_UN_CASE(Ex2)
#undef SIMTVEC_UN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K, unsigned W, bool V> LaneKernelFn setpForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return setpKernel<CmpOp::Eq, K, W, V>;
  case CmpOp::Ne:
    return setpKernel<CmpOp::Ne, K, W, V>;
  case CmpOp::Lt:
    return setpKernel<CmpOp::Lt, K, W, V>;
  case CmpOp::Le:
    return setpKernel<CmpOp::Le, K, W, V>;
  case CmpOp::Gt:
    return setpKernel<CmpOp::Gt, K, W, V>;
  case CmpOp::Ge:
    return setpKernel<CmpOp::Ge, K, W, V>;
  }
  return nullptr;
}

template <ScalarKind K, unsigned W, bool V>
CmpSelKernelFn cmpSelForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return cmpSelKernel<CmpOp::Eq, K, W, V>;
  case CmpOp::Ne:
    return cmpSelKernel<CmpOp::Ne, K, W, V>;
  case CmpOp::Lt:
    return cmpSelKernel<CmpOp::Lt, K, W, V>;
  case CmpOp::Le:
    return cmpSelKernel<CmpOp::Le, K, W, V>;
  case CmpOp::Gt:
    return cmpSelKernel<CmpOp::Gt, K, W, V>;
  case CmpOp::Ge:
    return cmpSelKernel<CmpOp::Ge, K, W, V>;
  }
  return nullptr;
}

template <ScalarKind DstK, unsigned W, bool V>
LaneKernelFn cvtForDst(ScalarKind SrcK) {
  switch (SrcK) {
#define SIMTVEC_CVT_CASE(SK)                                                   \
  case ScalarKind::SK:                                                         \
    return cvtKernel<DstK, ScalarKind::SK, W, V>;
    SIMTVEC_CVT_CASE(Pred)
    SIMTVEC_CVT_CASE(U8)
    SIMTVEC_CVT_CASE(S32)
    SIMTVEC_CVT_CASE(U32)
    SIMTVEC_CVT_CASE(S64)
    SIMTVEC_CVT_CASE(U64)
    SIMTVEC_CVT_CASE(F32)
    SIMTVEC_CVT_CASE(F64)
#undef SIMTVEC_CVT_CASE
  }
  return nullptr;
}

/// Expands a switch over every ScalarKind forwarding to FN<Kind, W, V>(ARG).
#define SIMTVEC_DISPATCH_KIND_W(K, FN, ARG)                                    \
  switch (K) {                                                                 \
  case ScalarKind::Pred:                                                       \
    return FN<ScalarKind::Pred, W, V>(ARG);                                    \
  case ScalarKind::U8:                                                         \
    return FN<ScalarKind::U8, W, V>(ARG);                                      \
  case ScalarKind::S32:                                                        \
    return FN<ScalarKind::S32, W, V>(ARG);                                     \
  case ScalarKind::U32:                                                        \
    return FN<ScalarKind::U32, W, V>(ARG);                                     \
  case ScalarKind::S64:                                                        \
    return FN<ScalarKind::S64, W, V>(ARG);                                     \
  case ScalarKind::U64:                                                        \
    return FN<ScalarKind::U64, W, V>(ARG);                                     \
  case ScalarKind::F32:                                                        \
    return FN<ScalarKind::F32, W, V>(ARG);                                     \
  case ScalarKind::F64:                                                        \
    return FN<ScalarKind::F64, W, V>(ARG);                                     \
  }                                                                            \
  return nullptr;

template <unsigned W, bool V> LaneKernelFn binForWidth(Opcode Op, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, binForKind, Op)
}
template <unsigned W, bool V> LaneKernelFn unForWidth(Opcode Op, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, unForKind, Op)
}
template <unsigned W, bool V> LaneKernelFn setpForWidth(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, setpForKind, Cmp)
}
template <unsigned W, bool V>
CmpSelKernelFn cmpSelForWidth(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, cmpSelForKind, Cmp)
}
template <unsigned W, bool V>
LaneKernelFn cvtForWidth(ScalarKind DstK, ScalarKind SrcK) {
  SIMTVEC_DISPATCH_KIND_W(DstK, cvtForDst, SrcK)
}

#undef SIMTVEC_DISPATCH_KIND_W

template <unsigned W, bool V> LaneKernelFn madForWidth(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
    return madKernel<ScalarKind::F32, W, V>;
  case ScalarKind::F64:
    return madKernel<ScalarKind::F64, W, V>;
  case ScalarKind::S32:
    return madKernel<ScalarKind::S32, W, V>;
  case ScalarKind::U32:
    return madKernel<ScalarKind::U32, W, V>;
  case ScalarKind::S64:
    return madKernel<ScalarKind::S64, W, V>;
  case ScalarKind::U64:
    return madKernel<ScalarKind::U64, W, V>;
  default:
    return nullptr;
  }
}

template <unsigned W, bool V> LaneKernelFn selpForWidth() {
  return selpKernel<W, V>;
}
template <unsigned W, bool V> LaneKernelFn movForWidth() {
  return movKernel<W, V>;
}

/// Expands a switch over the specialized widths forwarding to
/// FN<W, VEC>(...).
#define SIMTVEC_DISPATCH_WIDTH(W, VEC, FN, ...)                                \
  switch (W) {                                                                 \
  case 1:                                                                      \
    return FN<1, VEC>(__VA_ARGS__);                                            \
  case 2:                                                                      \
    return FN<2, VEC>(__VA_ARGS__);                                            \
  case 4:                                                                      \
    return FN<4, VEC>(__VA_ARGS__);                                            \
  case 8:                                                                      \
    return FN<8, VEC>(__VA_ARGS__);                                            \
  default:                                                                     \
    return nullptr;                                                            \
  }

} // namespace

LaneKernelFn simtvec::resolveBinaryLanes(Opcode Op, ScalarKind K, unsigned W,
                                         SimdPath Path) {
  if (!resolveBinary(Op, K))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, binForWidth, Op, K)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, binForWidth, Op, K)
}

LaneKernelFn simtvec::resolveUnaryLanes(Opcode Op, ScalarKind K, unsigned W,
                                        SimdPath Path) {
  if (!resolveUnary(Op, K))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, unForWidth, Op, K)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, unForWidth, Op, K)
}

LaneKernelFn simtvec::resolveMadLanes(ScalarKind K, unsigned W,
                                      SimdPath Path) {
  if (!resolveMad(K))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, madForWidth, K)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, madForWidth, K)
}

LaneKernelFn simtvec::resolveSetpLanes(CmpOp Cmp, ScalarKind K, unsigned W,
                                       SimdPath Path) {
  if (!resolveCmp(Cmp, K))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, setpForWidth, Cmp, K)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, setpForWidth, Cmp, K)
}

LaneKernelFn simtvec::resolveSelpLanes(unsigned W, SimdPath Path) {
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, selpForWidth)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, selpForWidth)
}

LaneKernelFn simtvec::resolveMovLanes(unsigned W, SimdPath Path) {
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, movForWidth)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, movForWidth)
}

LaneKernelFn simtvec::resolveConvertLanes(ScalarKind DstK, ScalarKind SrcK,
                                          unsigned W, SimdPath Path) {
  if (!resolveConvert(DstK, SrcK))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, cvtForWidth, DstK, SrcK)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, cvtForWidth, DstK, SrcK)
}

CmpSelKernelFn simtvec::resolveCmpSelLanes(CmpOp Cmp, ScalarKind K, unsigned W,
                                           SimdPath Path) {
  if (!resolveCmp(Cmp, K))
    return nullptr;
  if (Path == SimdPath::Vector) {
    SIMTVEC_DISPATCH_WIDTH(W, true, cmpSelForWidth, Cmp, K)
  }
  SIMTVEC_DISPATCH_WIDTH(W, false, cmpSelForWidth, Cmp, K)
}

RunAddrCheckFn simtvec::resolveRunAddrCheck(unsigned Len, SimdPath Path) {
  if (Path != SimdPath::Vector)
    return nullptr; // the scalar oracle always walks members one at a time
  switch (Len) {
  case 2:
    return runAddrCheck<2>;
  case 4:
    return runAddrCheck<4>;
  case 8:
    return runAddrCheck<8>;
  default:
    return nullptr;
  }
}

#undef SIMTVEC_DISPATCH_WIDTH
