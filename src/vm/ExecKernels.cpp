//===- vm/ExecKernels.cpp - Specialized execution kernels -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Instantiates the fixed-width lane kernels over ScalarOpsImpl.h. Each
// kernel stages all W results in locals before storing, which (a) makes the
// exact-overlap destination alias safe and (b) presents the compiler with a
// load-compute-store block of constant trip count it can vectorize.
//
// The resolvers mirror the ScalarOps.cpp thunk resolvers one level deeper
// (width added as a template parameter) and reuse the generic resolvers as
// the validity gate, so a combination has a lane kernel exactly when it has
// a scalar thunk.
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/ExecKernels.h"

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/ir/ScalarOpsImpl.h"

using namespace simtvec;
using namespace simtvec::scalarops;

namespace {

//===----------------------------------------------------------------------===
// Kernel templates
//===----------------------------------------------------------------------===

template <Opcode Op, ScalarKind K, unsigned W>
void binKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
               const uint64_t *) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L) {
    bool Bad = false;
    R[L] = evalBinaryImpl(Op, K, S0[L], S1[L], Bad);
  }
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <Opcode Op, ScalarKind K, unsigned W>
void unKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
              const uint64_t *) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L) {
    bool Bad = false;
    R[L] = evalUnaryImpl(Op, K, S0[L], Bad);
  }
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <ScalarKind K, unsigned W>
void madKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
               const uint64_t *S2) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L) {
    bool Bad = false;
    R[L] = evalMadImpl(K, S0[L], S1[L], S2[L], Bad);
  }
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <CmpOp Cmp, ScalarKind K, unsigned W>
void setpKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
                const uint64_t *) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L)
    R[L] = evalCmpImpl(Cmp, K, S0[L], S1[L]) ? 1 : 0;
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <unsigned W>
void selpKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *S1,
                const uint64_t *S2) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L)
    R[L] = (S2[L] & 1) != 0 ? S0[L] : S1[L];
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <unsigned W>
void movKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
               const uint64_t *) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L)
    R[L] = S0[L];
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <ScalarKind DstK, ScalarKind SrcK, unsigned W>
void cvtKernel(uint64_t *Dst, const uint64_t *S0, const uint64_t *,
               const uint64_t *) {
  uint64_t R[W];
  for (unsigned L = 0; L < W; ++L)
    R[L] = evalConvertImpl(DstK, SrcK, S0[L]);
  for (unsigned L = 0; L < W; ++L)
    Dst[L] = R[L];
}

template <CmpOp Cmp, ScalarKind K, unsigned W>
void cmpSelKernel(uint64_t *Pred, uint64_t *Sel, const uint64_t *A,
                  const uint64_t *B, const uint64_t *C, const uint64_t *E) {
  uint64_t P[W], R[W];
  for (unsigned L = 0; L < W; ++L)
    P[L] = evalCmpImpl(Cmp, K, A[L], B[L]) ? 1 : 0;
  for (unsigned L = 0; L < W; ++L)
    R[L] = P[L] != 0 ? C[L] : E[L];
  for (unsigned L = 0; L < W; ++L)
    Pred[L] = P[L];
  for (unsigned L = 0; L < W; ++L)
    Sel[L] = R[L];
}

//===----------------------------------------------------------------------===
// Dispatch: kind and operation layers mirror ScalarOps.cpp, with the width
// folded in as the innermost template parameter.
//===----------------------------------------------------------------------===

template <ScalarKind K, unsigned W> LaneKernelFn binForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_BIN_CASE(OP)                                                   \
  case Opcode::OP:                                                             \
    return binKernel<Opcode::OP, K, W>;
    SIMTVEC_BIN_CASE(Add)
    SIMTVEC_BIN_CASE(Sub)
    SIMTVEC_BIN_CASE(Mul)
    SIMTVEC_BIN_CASE(Div)
    SIMTVEC_BIN_CASE(Rem)
    SIMTVEC_BIN_CASE(Min)
    SIMTVEC_BIN_CASE(Max)
    SIMTVEC_BIN_CASE(And)
    SIMTVEC_BIN_CASE(Or)
    SIMTVEC_BIN_CASE(Xor)
    SIMTVEC_BIN_CASE(Shl)
    SIMTVEC_BIN_CASE(Shr)
#undef SIMTVEC_BIN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K, unsigned W> LaneKernelFn unForKind(Opcode Op) {
  switch (Op) {
#define SIMTVEC_UN_CASE(OP)                                                    \
  case Opcode::OP:                                                             \
    return unKernel<Opcode::OP, K, W>;
    SIMTVEC_UN_CASE(Neg)
    SIMTVEC_UN_CASE(Abs)
    SIMTVEC_UN_CASE(Not)
    SIMTVEC_UN_CASE(Rcp)
    SIMTVEC_UN_CASE(Sqrt)
    SIMTVEC_UN_CASE(Rsqrt)
    SIMTVEC_UN_CASE(Sin)
    SIMTVEC_UN_CASE(Cos)
    SIMTVEC_UN_CASE(Lg2)
    SIMTVEC_UN_CASE(Ex2)
#undef SIMTVEC_UN_CASE
  default:
    return nullptr;
  }
}

template <ScalarKind K, unsigned W> LaneKernelFn setpForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return setpKernel<CmpOp::Eq, K, W>;
  case CmpOp::Ne:
    return setpKernel<CmpOp::Ne, K, W>;
  case CmpOp::Lt:
    return setpKernel<CmpOp::Lt, K, W>;
  case CmpOp::Le:
    return setpKernel<CmpOp::Le, K, W>;
  case CmpOp::Gt:
    return setpKernel<CmpOp::Gt, K, W>;
  case CmpOp::Ge:
    return setpKernel<CmpOp::Ge, K, W>;
  }
  return nullptr;
}

template <ScalarKind K, unsigned W> CmpSelKernelFn cmpSelForKind(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return cmpSelKernel<CmpOp::Eq, K, W>;
  case CmpOp::Ne:
    return cmpSelKernel<CmpOp::Ne, K, W>;
  case CmpOp::Lt:
    return cmpSelKernel<CmpOp::Lt, K, W>;
  case CmpOp::Le:
    return cmpSelKernel<CmpOp::Le, K, W>;
  case CmpOp::Gt:
    return cmpSelKernel<CmpOp::Gt, K, W>;
  case CmpOp::Ge:
    return cmpSelKernel<CmpOp::Ge, K, W>;
  }
  return nullptr;
}

template <ScalarKind DstK, unsigned W> LaneKernelFn cvtForDst(ScalarKind SrcK) {
  switch (SrcK) {
#define SIMTVEC_CVT_CASE(SK)                                                   \
  case ScalarKind::SK:                                                         \
    return cvtKernel<DstK, ScalarKind::SK, W>;
    SIMTVEC_CVT_CASE(Pred)
    SIMTVEC_CVT_CASE(U8)
    SIMTVEC_CVT_CASE(S32)
    SIMTVEC_CVT_CASE(U32)
    SIMTVEC_CVT_CASE(S64)
    SIMTVEC_CVT_CASE(U64)
    SIMTVEC_CVT_CASE(F32)
    SIMTVEC_CVT_CASE(F64)
#undef SIMTVEC_CVT_CASE
  }
  return nullptr;
}

/// Expands a switch over every ScalarKind forwarding to FN<Kind, W>(ARG).
#define SIMTVEC_DISPATCH_KIND_W(K, FN, ARG)                                    \
  switch (K) {                                                                 \
  case ScalarKind::Pred:                                                       \
    return FN<ScalarKind::Pred, W>(ARG);                                       \
  case ScalarKind::U8:                                                         \
    return FN<ScalarKind::U8, W>(ARG);                                         \
  case ScalarKind::S32:                                                        \
    return FN<ScalarKind::S32, W>(ARG);                                        \
  case ScalarKind::U32:                                                        \
    return FN<ScalarKind::U32, W>(ARG);                                        \
  case ScalarKind::S64:                                                        \
    return FN<ScalarKind::S64, W>(ARG);                                        \
  case ScalarKind::U64:                                                        \
    return FN<ScalarKind::U64, W>(ARG);                                        \
  case ScalarKind::F32:                                                        \
    return FN<ScalarKind::F32, W>(ARG);                                        \
  case ScalarKind::F64:                                                        \
    return FN<ScalarKind::F64, W>(ARG);                                        \
  }                                                                            \
  return nullptr;

template <unsigned W> LaneKernelFn binForWidth(Opcode Op, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, binForKind, Op)
}
template <unsigned W> LaneKernelFn unForWidth(Opcode Op, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, unForKind, Op)
}
template <unsigned W> LaneKernelFn setpForWidth(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, setpForKind, Cmp)
}
template <unsigned W> CmpSelKernelFn cmpSelForWidth(CmpOp Cmp, ScalarKind K) {
  SIMTVEC_DISPATCH_KIND_W(K, cmpSelForKind, Cmp)
}
template <unsigned W> LaneKernelFn cvtForWidth(ScalarKind DstK,
                                               ScalarKind SrcK) {
  SIMTVEC_DISPATCH_KIND_W(DstK, cvtForDst, SrcK)
}

#undef SIMTVEC_DISPATCH_KIND_W

template <unsigned W> LaneKernelFn madForWidth(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
    return madKernel<ScalarKind::F32, W>;
  case ScalarKind::F64:
    return madKernel<ScalarKind::F64, W>;
  case ScalarKind::S32:
    return madKernel<ScalarKind::S32, W>;
  case ScalarKind::U32:
    return madKernel<ScalarKind::U32, W>;
  case ScalarKind::S64:
    return madKernel<ScalarKind::S64, W>;
  case ScalarKind::U64:
    return madKernel<ScalarKind::U64, W>;
  default:
    return nullptr;
  }
}

/// Expands a switch over the specialized widths forwarding to FN<W>(...).
#define SIMTVEC_DISPATCH_WIDTH(W, FN, ...)                                     \
  switch (W) {                                                                 \
  case 1:                                                                      \
    return FN<1>(__VA_ARGS__);                                                 \
  case 2:                                                                      \
    return FN<2>(__VA_ARGS__);                                                 \
  case 4:                                                                      \
    return FN<4>(__VA_ARGS__);                                                 \
  case 8:                                                                      \
    return FN<8>(__VA_ARGS__);                                                 \
  default:                                                                     \
    return nullptr;                                                            \
  }

} // namespace

LaneKernelFn simtvec::resolveBinaryLanes(Opcode Op, ScalarKind K,
                                         unsigned W) {
  if (!resolveBinary(Op, K))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, binForWidth, Op, K)
}

LaneKernelFn simtvec::resolveUnaryLanes(Opcode Op, ScalarKind K, unsigned W) {
  if (!resolveUnary(Op, K))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, unForWidth, Op, K)
}

LaneKernelFn simtvec::resolveMadLanes(ScalarKind K, unsigned W) {
  if (!resolveMad(K))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, madForWidth, K)
}

LaneKernelFn simtvec::resolveSetpLanes(CmpOp Cmp, ScalarKind K, unsigned W) {
  if (!resolveCmp(Cmp, K))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, setpForWidth, Cmp, K)
}

LaneKernelFn simtvec::resolveSelpLanes(unsigned W) {
  switch (W) {
  case 1:
    return selpKernel<1>;
  case 2:
    return selpKernel<2>;
  case 4:
    return selpKernel<4>;
  case 8:
    return selpKernel<8>;
  default:
    return nullptr;
  }
}

LaneKernelFn simtvec::resolveMovLanes(unsigned W) {
  switch (W) {
  case 1:
    return movKernel<1>;
  case 2:
    return movKernel<2>;
  case 4:
    return movKernel<4>;
  case 8:
    return movKernel<8>;
  default:
    return nullptr;
  }
}

LaneKernelFn simtvec::resolveConvertLanes(ScalarKind DstK, ScalarKind SrcK,
                                          unsigned W) {
  if (!resolveConvert(DstK, SrcK))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, cvtForWidth, DstK, SrcK)
}

CmpSelKernelFn simtvec::resolveCmpSelLanes(CmpOp Cmp, ScalarKind K,
                                           unsigned W) {
  if (!resolveCmp(Cmp, K))
    return nullptr;
  SIMTVEC_DISPATCH_WIDTH(W, cmpSelForWidth, Cmp, K)
}

#undef SIMTVEC_DISPATCH_WIDTH
