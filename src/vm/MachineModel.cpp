//===- vm/MachineModel.cpp - Modeled vector machine -----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/MachineModel.h"

#include <algorithm>

using namespace simtvec;

double MachineModel::issueCost(const Instruction &I) const {
  switch (I.Op) {
  case Opcode::Ld:
  case Opcode::St:
    return I.Space == AddressSpace::Param ? ParamMemCost : MemCost;
  case Opcode::AtomAdd:
    return AtomCost;
  case Opcode::InsertElement:
  case Opcode::ExtractElement:
  case Opcode::Broadcast:
  case Opcode::Iota:
    return PackCost;
  case Opcode::Spill:
  case Opcode::Restore:
    return SpillRestorePerLane * std::max<unsigned>(1, I.Ty.lanes());
  case Opcode::Bra:
  case Opcode::Switch:
  case Opcode::Ret:
  case Opcode::Yield:
  case Opcode::BarSync:
  case Opcode::Membar:
  case Opcode::VoteSum:
  case Opcode::SetRPoint:
  case Opcode::SetRStatus:
  case Opcode::Trap:
    return ControlCost;
  default:
    break;
  }
  double PerChunk = isTranscendental(I.Op) ? TranscCost : ArithCost;
  return PerChunk * issueChunks(I.Ty);
}

unsigned MachineModel::flopsFor(const Instruction &I) const {
  if (!I.Ty.isFloat())
    return 0;
  unsigned Lanes = std::max<unsigned>(1, I.Ty.lanes());
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
    return Lanes;
  case Opcode::Mad:
    return 2 * Lanes;
  default:
    return 0;
  }
}
