//===- vm/NativeModule.cpp - dlopen + verify + hot-swap publish -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Loading side of the native tier: dlopen the generated object, verify its
// exported meta block, and (in KernelExec::publishNative) release-publish
// the entry point so dispatch loops already holding the executable pick the
// native tier up at their next warp entry.
//
//===----------------------------------------------------------------------===//

#include "simtvec/vm/NativeModule.h"

#include "simtvec/vm/Executable.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#define SIMTVEC_HAVE_DLOPEN 1
#else
#define SIMTVEC_HAVE_DLOPEN 0
#endif

using namespace simtvec;

NativeModule::~NativeModule() {
#if SIMTVEC_HAVE_DLOPEN
  if (Handle)
    dlclose(Handle);
#endif
}

std::shared_ptr<NativeModule>
NativeModule::loadAndVerify(const std::string &Path,
                            uint64_t LayoutFingerprint,
                            uint64_t BuildFingerprint, uint32_t WarpSize) {
#if SIMTVEC_HAVE_DLOPEN
  void *Handle = dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return nullptr;

  auto Fail = [&] {
    dlclose(Handle);
    return nullptr;
  };

  const auto *Meta = reinterpret_cast<const SimtvecNativeMeta *>(
      dlsym(Handle, NativeMetaSymbol));
  if (!Meta)
    return Fail();
  if (Meta->AbiVersion != NativeAbiVersion ||
      Meta->ArgsSize != sizeof(SimtvecNativeArgs) ||
      Meta->LayoutFingerprint != LayoutFingerprint ||
      Meta->BuildFingerprint != BuildFingerprint ||
      Meta->WarpSize != WarpSize)
    return Fail();

  auto Entry = reinterpret_cast<SimtvecNativeEntryFn>(
      dlsym(Handle, NativeEntrySymbol));
  if (!Entry)
    return Fail();

  return std::shared_ptr<NativeModule>(
      new NativeModule(Handle, Entry, Path));
#else
  (void)Path;
  (void)LayoutFingerprint;
  (void)BuildFingerprint;
  (void)WarpSize;
  return nullptr;
#endif
}

void KernelExec::publishNative(std::shared_ptr<NativeModule> Module,
                               SimtvecNativeEntryFn Entry) const {
  // Order matters: the module (keeping the .so mapped) must be owned before
  // any thread can observe the entry pointer.
  Native = std::move(Module);
  NativeEntry.store(Entry, std::memory_order_release);
  Jit.store(JitState::Ready, std::memory_order_release);
}
