//===- transforms/LocalCSE.cpp - Block-local CSE + copy propagation -------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Value numbering within a basic block over a non-SSA register IR:
/// registers carry version numbers (bumped at each definition); an
/// expression is available while the versions of all its register operands
/// are unchanged. Recomputations become copies, copies are propagated, and
/// self-copies are deleted (DCE sweeps the rest).
///
/// This is the "common subexpression elimination" stage of the paper's
/// translation cache (§5.1) and the harvester of thread-invariant redundancy
/// under static warp formation (§6.2).
///
//===----------------------------------------------------------------------===//

#include "simtvec/support/Format.h"
#include "simtvec/transforms/Passes.h"

#include <map>
#include <string>
#include <vector>

using namespace simtvec;

namespace {

/// True for instructions safe to value-number.
bool isPureComputation(const Instruction &I) {
  if (!I.hasResult() || I.Guard.isValid() || hasSideEffects(I.Op))
    return false;
  switch (I.Op) {
  case Opcode::Ld:       // memory may change between the two executions
  case Opcode::AtomAdd:
  case Opcode::Restore:
    return false;
  default:
    return true;
  }
}

class BlockCSE {
public:
  BlockCSE(Kernel &K, BasicBlock &B) : K(K), B(B) {}

  bool run() {
    Version.assign(K.Regs.size(), 0);
    bool Changed = false;
    std::vector<Instruction> Kept;
    Kept.reserve(B.Insts.size());

    for (Instruction &I : B.Insts) {
      // 1. Forward copies into the operands.
      for (Operand &O : I.Srcs)
        forwardCopy(O);

      // 2. Value-number pure computations.
      if (isPureComputation(I)) {
        std::string Key = expressionKey(I);
        auto It = Available.find(Key);
        if (It != Available.end() &&
            Version[It->second.Reg.Index] == It->second.Ver &&
            K.regType(It->second.Reg) == K.regType(I.Dst)) {
          RegId Prior = It->second.Reg;
          Changed = true;
          if (Prior == I.Dst)
            continue; // exact recomputation into the same register: drop
          // Rewrite into a copy; downstream uses get forwarded.
          I.Op = Opcode::Mov;
          I.Ty = K.regType(I.Dst);
          I.Srcs = {Operand::reg(Prior)};
          I.SwitchValues.clear();
          I.SwitchTargets.clear();
        }
      }

      // 3. Update versions and maps. The availability key must capture the
      // operand versions *before* the definition (x = x + 1 must not claim
      // the new x holds "new x + 1").
      if (I.hasResult()) {
        std::string InsertKey;
        if (isPureComputation(I))
          InsertKey = expressionKey(I);
        bumpVersion(I.Dst);
        if (!InsertKey.empty()) {
          Available[InsertKey] = {I.Dst, Version[I.Dst.Index]};
          if (I.Op == Opcode::Mov && I.Srcs[0].isReg() &&
              I.Srcs[0].regId() != I.Dst &&
              K.regType(I.Srcs[0].regId()) == K.regType(I.Dst))
            Copies[I.Dst.Index] = {I.Srcs[0].regId(),
                                   Version[I.Srcs[0].regId().Index]};
          else if (I.Op == Opcode::Mov && I.Srcs[0].isImm() &&
                   !I.Ty.isVector())
            Constants[I.Dst.Index] = {I.Srcs[0], Version[I.Dst.Index]};
        }
      }
      Kept.push_back(std::move(I));
    }
    Changed |= Kept.size() != B.Insts.size();
    B.Insts = std::move(Kept);
    return Changed;
  }

private:
  struct ValueAt {
    RegId Reg;
    uint32_t Ver;
  };
  struct ConstAt {
    Operand Imm;
    uint32_t Ver; ///< version of the *destination* when recorded
  };

  void bumpVersion(RegId R) {
    ++Version[R.Index];
    Copies.erase(R.Index);
    Constants.erase(R.Index);
  }

  /// Rewrites a register operand through the copy and constant maps when
  /// still valid (copy and constant propagation).
  void forwardCopy(Operand &O) {
    if (!O.isReg())
      return;
    auto CIt = Constants.find(O.regId().Index);
    if (CIt != Constants.end() &&
        Version[O.regId().Index] == CIt->second.Ver) {
      O = CIt->second.Imm;
      return;
    }
    auto It = Copies.find(O.regId().Index);
    if (It == Copies.end())
      return;
    if (Version[It->second.Reg.Index] != It->second.Ver)
      return;
    O = Operand::reg(It->second.Reg);
  }

  std::string operandKey(const Operand &O) const {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      return formatString("r%u@%u", O.regId().Index,
                          Version[O.regId().Index]);
    case Operand::Kind::Imm:
      return formatString("i%u:%llx", static_cast<unsigned>(
                                          O.immType().kind()),
                          static_cast<unsigned long long>(O.immBits()));
    case Operand::Kind::Special:
      return formatString("s%u", static_cast<unsigned>(O.specialReg()));
    case Operand::Kind::Symbol:
      return formatString("y%u:%u", static_cast<unsigned>(O.symKind()),
                          O.symIndex());
    case Operand::Kind::None:
      break;
    }
    return "?";
  }

  std::string expressionKey(const Instruction &I) const {
    std::string Key = formatString(
        "%u|%u.%u|%u|%u|%lld", static_cast<unsigned>(I.Op),
        static_cast<unsigned>(I.Ty.kind()),
        static_cast<unsigned>(I.Ty.lanes()), static_cast<unsigned>(I.Cmp),
        static_cast<unsigned>(I.Lane),
        static_cast<long long>(I.MemOffset));
    for (const Operand &O : I.Srcs)
      Key += "|" + operandKey(O);
    return Key;
  }

  Kernel &K;
  BasicBlock &B;
  std::vector<uint32_t> Version;
  std::map<std::string, ValueAt> Available;
  std::map<uint32_t, ValueAt> Copies;
  std::map<uint32_t, ConstAt> Constants;
};

} // namespace

bool simtvec::runLocalCSE(Kernel &K) {
  bool Changed = false;
  for (BasicBlock &B : K.Blocks)
    Changed |= BlockCSE(K, B).run();
  return Changed;
}

bool simtvec::runCleanupPipeline(Kernel &K) {
  bool Changed = false;
  for (int Round = 0; Round < 4; ++Round) {
    bool RoundChanged = false;
    RoundChanged |= runConstantFold(K);
    RoundChanged |= runLocalCSE(K);
    RoundChanged |= runDeadCodeElim(K);
    Changed |= RoundChanged;
    if (!RoundChanged)
      break;
  }
  return Changed;
}
