// placeholder
