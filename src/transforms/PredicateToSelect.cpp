//===- transforms/PredicateToSelect.cpp - @p ops -> selp ------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/transforms/Passes.h"

#include <cstddef>

using namespace simtvec;

namespace {

/// True when executing \p I unconditionally could fault on a lane where its
/// guard is false: loads (the address on an inactive lane can point
/// anywhere), integer div/rem (divide-by-zero / T_MIN÷-1 on real vector
/// hardware), and float-to-int conversions (out-of-range is a trap on
/// machines without saturation). These keep their guards; the interpreter
/// and the vectorizer's replicated form both honour them.
bool mayTrapUnguarded(const Kernel &K, const Instruction &I) {
  switch (I.Op) {
  case Opcode::Ld:
    return true;
  case Opcode::Div:
  case Opcode::Rem:
    return I.Ty.isInteger();
  case Opcode::Cvt:
    return I.Ty.isInteger() && !I.Srcs.empty() && I.Srcs[0].isReg() &&
           K.regType(I.Srcs[0].regId()).isFloat();
  default:
    return false;
  }
}

} // namespace

bool simtvec::runPredicateToSelect(Kernel &K) {
  bool Changed = false;
  for (BasicBlock &B : K.Blocks) {
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &I = B.Insts[Idx];
      if (!I.Guard.isValid() || I.Op == Opcode::Bra)
        continue;
      // Side-effecting or result-less guarded instructions must keep their
      // guards; a select cannot suppress a store. Potentially-trapping ops
      // keep theirs too: `d = @p div a, b` must not divide on lanes where
      // p is false.
      if (hasSideEffects(I.Op) || !I.hasResult() || mayTrapUnguarded(K, I))
        continue;
      // d = @p op(...)   becomes   t = op(...); d = selp(t, d, p)
      Type DstTy = K.regType(I.Dst);
      RegId OldDst = I.Dst;
      RegId Temp = K.addReg(K.reg(I.Dst).Name + "_p2s", DstTy);
      RegId Pred = I.Guard;
      bool Negated = I.GuardNegated;
      I.Dst = Temp;
      I.Guard = RegId();
      I.GuardNegated = false;

      Instruction Sel(Opcode::Selp, DstTy);
      Sel.Dst = OldDst;
      if (Negated)
        Sel.Srcs = {Operand::reg(OldDst), Operand::reg(Temp),
                    Operand::reg(Pred)};
      else
        Sel.Srcs = {Operand::reg(Temp), Operand::reg(OldDst),
                    Operand::reg(Pred)};
      B.Insts.insert(B.Insts.begin() + static_cast<ptrdiff_t>(Idx) + 1,
                     std::move(Sel));
      ++Idx; // skip the inserted selp
      Changed = true;
    }
  }
  return Changed;
}
