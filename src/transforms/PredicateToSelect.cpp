//===- transforms/PredicateToSelect.cpp - @p ops -> selp ------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/transforms/Passes.h"

#include <cstddef>

using namespace simtvec;

bool simtvec::runPredicateToSelect(Kernel &K) {
  bool Changed = false;
  for (BasicBlock &B : K.Blocks) {
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &I = B.Insts[Idx];
      if (!I.Guard.isValid() || I.Op == Opcode::Bra)
        continue;
      // Side-effecting or result-less guarded instructions must keep their
      // guards; a select cannot suppress a store.
      if (hasSideEffects(I.Op) || !I.hasResult())
        continue;
      // d = @p op(...)   becomes   t = op(...); d = selp(t, d, p)
      Type DstTy = K.regType(I.Dst);
      RegId OldDst = I.Dst;
      RegId Temp = K.addReg(K.reg(I.Dst).Name + "_p2s", DstTy);
      RegId Pred = I.Guard;
      bool Negated = I.GuardNegated;
      I.Dst = Temp;
      I.Guard = RegId();
      I.GuardNegated = false;

      Instruction Sel(Opcode::Selp, DstTy);
      Sel.Dst = OldDst;
      if (Negated)
        Sel.Srcs = {Operand::reg(OldDst), Operand::reg(Temp),
                    Operand::reg(Pred)};
      else
        Sel.Srcs = {Operand::reg(Temp), Operand::reg(OldDst),
                    Operand::reg(Pred)};
      B.Insts.insert(B.Insts.begin() + static_cast<ptrdiff_t>(Idx) + 1,
                     std::move(Sel));
      ++Idx; // skip the inserted selp
      Changed = true;
    }
  }
  return Changed;
}
