//===- transforms/DeadCodeElim.cpp - Liveness-based DCE -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"
#include "simtvec/transforms/Passes.h"

#include <cstddef>

using namespace simtvec;

bool simtvec::runDeadCodeElim(Kernel &K) {
  bool Changed = false;
  bool Iterate = true;
  // Removing one dead instruction can make its operands dead; iterate to a
  // fixed point (bounded by the instruction count).
  while (Iterate) {
    Iterate = false;
    CFG G(K);
    Liveness Live(K, G);
    for (uint32_t BIdx = 0; BIdx < K.Blocks.size(); ++BIdx) {
      BasicBlock &B = K.Blocks[BIdx];
      BitSet LiveNow = Live.liveOut(BIdx);
      // Backward scan deleting dead pure instructions.
      for (size_t Idx = B.Insts.size(); Idx-- > 0;) {
        Instruction &I = B.Insts[Idx];
        bool Dead = I.hasResult() && !hasSideEffects(I.Op) &&
                    !LiveNow.test(I.Dst.Index);
        if (Dead) {
          B.Insts.erase(B.Insts.begin() + static_cast<ptrdiff_t>(Idx));
          Changed = Iterate = true;
          continue;
        }
        if (I.hasResult() && !I.Guard.isValid())
          LiveNow.reset(I.Dst.Index);
        I.forEachUse([&](RegId R) { LiveNow.set(R.Index); });
      }
    }
  }
  return Changed;
}
