//===- transforms/BarrierSplit.cpp - Split blocks at barriers -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/transforms/Passes.h"

#include <cstddef>
#include <iterator>

using namespace simtvec;

namespace {

/// Finds the first bar.sync of \p B that is not already the last
/// non-terminator; returns its index or SIZE_MAX.
size_t findSplittableBarrier(const BasicBlock &B) {
  assert(B.hasTerminator() && "block must be terminated");
  size_t LastNonTerm = B.Insts.size() - 1; // index of the terminator
  for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx)
    if (B.Insts[Idx].Op == Opcode::BarSync &&
        !(Idx + 1 == LastNonTerm && B.Insts.back().Op == Opcode::Bra &&
          !B.Insts.back().Guard.isValid()))
      return Idx;
  return SIZE_MAX;
}

} // namespace

bool simtvec::runBarrierSplit(Kernel &K) {
  bool Changed = false;
  // Appending blocks never invalidates indices, so iterate by index and
  // revisit new blocks too.
  for (uint32_t BIdx = 0; BIdx < K.Blocks.size(); ++BIdx) {
    size_t BarIdx = findSplittableBarrier(K.Blocks[BIdx]);
    if (BarIdx == SIZE_MAX)
      continue;

    uint32_t ContIdx = K.addBlock(K.Blocks[BIdx].Name + "_postbar");
    BasicBlock &B = K.Blocks[BIdx]; // re-fetch: addBlock may reallocate
    BasicBlock &Cont = K.Blocks[ContIdx];

    // Move everything after the barrier into the continuation.
    Cont.Insts.assign(
        std::make_move_iterator(B.Insts.begin() +
                                static_cast<ptrdiff_t>(BarIdx) + 1),
        std::make_move_iterator(B.Insts.end()));
    B.Insts.resize(BarIdx + 1);
    Instruction Bra(Opcode::Bra);
    Bra.Target = ContIdx;
    B.Insts.push_back(std::move(Bra));
    Changed = true;
    // Revisit this block in case it held several barriers: the remaining
    // ones moved into Cont and will be found when BIdx reaches it.
  }
  return Changed;
}
