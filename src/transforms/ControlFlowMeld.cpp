//===- transforms/ControlFlowMeld.cpp - Divergence-site melding -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// DARM-style control-flow melding over the prepared scalar kernel. The
/// yield-on-diverge lowering (Vectorizer.cpp, Algorithm 2) makes every
/// divergent branch a warp round-trip through the scheduler; this pass
/// removes the branch instead, so both sides execute predicated in one
/// warp:
///
///   - Diamonds/triangles flatten into the branch block: each half's
///     instructions run guarded by a snapshot of the branch condition
///     ('p' and 'm' policies).
///   - Under 'm', structurally identical instructions from the two halves
///     meld into a single unguarded instruction whose differing operands
///     are `selp`-selected by the then-predicate (DARM's alignment) —
///     one load instead of two guarded per-lane loads.
///   - Under 'm', a divergent self-loop becomes a masked loop: a fresh
///     lane mask starts true on entry, every body instruction is guarded
///     by it, and the backedge ANDs the loop condition into it. The warp
///     keeps iterating while any lane is live; finished lanes idle under
///     a false mask instead of yielding the whole warp.
///
/// Everything here preserves single-thread semantics exactly (guarded-off
/// instructions have no architectural effect), so the interpreter and the
/// native tier agree by construction and outputs stay bit-identical across
/// the three policies.
///
//===----------------------------------------------------------------------===//

#include "simtvec/support/Format.h"
#include "simtvec/transforms/Passes.h"

#include <algorithm>
#include <cstddef>

using namespace simtvec;

namespace {

constexpr uint32_t NoSite = ~0u;

/// Structural operand equality (same register, same immediate bits, same
/// special / symbol).
bool sameOperand(const Operand &A, const Operand &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Operand::Kind::Reg:
    return A.regId() == B.regId();
  case Operand::Kind::Imm:
    return A.immType() == B.immType() && A.immBits() == B.immBits();
  case Operand::Kind::Special:
    return A.specialReg() == B.specialReg();
  case Operand::Kind::Symbol:
    return A.symKind() == B.symKind() && A.symIndex() == B.symIndex();
  case Operand::Kind::None:
    return true;
  }
  return false;
}

/// True when guarding \p Op by a lane predicate has defined semantics: any
/// non-terminator except a barrier (a guarded bar.sync would deadlock the
/// unguarded lanes) or the specialization-only scheduler ops.
bool isPredicable(const Instruction &I) {
  switch (I.Op) {
  case Opcode::BarSync:
  case Opcode::Trap:
  case Opcode::Spill:
  case Opcode::Restore:
  case Opcode::SetRPoint:
  case Opcode::SetRStatus:
  case Opcode::Yield:
    return false;
  default:
    return !I.isTerminator();
  }
}

/// Ops worth melding even when the operand selects cost more than the
/// saved instruction: memory traffic and the expensive arithmetic.
bool isExpensive(Opcode Op) {
  switch (Op) {
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Rcp:
  case Opcode::Sqrt:
  case Opcode::Rsqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Lg2:
  case Opcode::Ex2:
  case Opcode::Ld:
  case Opcode::St:
    return true;
  default:
    return false;
  }
}

class Melder {
public:
  Melder(Kernel &K, const std::string &Plan) : K(K), Plan(Plan) {}

  MeldResult run();

private:
  char planChar(uint32_t Site) const {
    if (Plan.empty())
      return 'y';
    char C = Plan.size() == 1 ? Plan[0]
                              : (Site < Plan.size() ? Plan[Site] : 'y');
    return (C == 'p' || C == 'm') ? C : 'y';
  }

  std::vector<std::vector<uint32_t>> predecessors() const;
  bool regionPredicable(const BasicBlock &B) const;

  RegId freshPred(const char *Tag) {
    return K.addReg(formatString("%%_meld_%s%u", Tag, FreshCount++),
                    Type::pred());
  }

  /// Appends a copy of \p I to \p Out with \p Act ANDed into its guard.
  void appendGuarded(std::vector<Instruction> &Out, Instruction I,
                     RegId Act);

  bool flattenOnce(const std::vector<std::vector<uint32_t>> &Preds);
  bool fuseOnce(const std::vector<std::vector<uint32_t>> &Preds);
  bool maskLoop(uint32_t L, const std::vector<std::vector<uint32_t>> &Preds);
  void meldHalves(std::vector<Instruction> &ThenI,
                  std::vector<Instruction> &ElseI, RegId ActT, RegId ActF,
                  std::vector<Instruction> &Out);
  void sweepUnreachable();

  Kernel &K;
  const std::string &Plan;
  std::vector<uint32_t> TermSite; ///< block -> site id of its guarded Bra
  std::vector<char> Policy;      ///< per-site requested (legal-char) policy
  std::string Effective;         ///< per-site effective policy
  std::vector<uint8_t> Masked;   ///< block -> is a masked loop backedge
  unsigned FreshCount = 0;
};

std::vector<std::vector<uint32_t>> Melder::predecessors() const {
  std::vector<std::vector<uint32_t>> Preds(K.Blocks.size());
  for (uint32_t B = 0; B < K.Blocks.size(); ++B)
    for (uint32_t S : K.successors(B))
      if (std::find(Preds[S].begin(), Preds[S].end(), B) == Preds[S].end())
        Preds[S].push_back(B);
  return Preds;
}

bool Melder::regionPredicable(const BasicBlock &B) const {
  if (!B.hasTerminator())
    return false;
  for (size_t I = 0; I + 1 < B.Insts.size(); ++I)
    if (!isPredicable(B.Insts[I]))
      return false;
  return true;
}

void Melder::appendGuarded(std::vector<Instruction> &Out, Instruction I,
                           RegId Act) {
  if (!I.Guard.isValid()) {
    I.Guard = Act;
    I.GuardNegated = false;
    Out.push_back(std::move(I));
    return;
  }
  // Compose: combined = Act && (Guard ^ Negated). The helpers write fresh
  // temporaries, so they can run unguarded on every lane.
  RegId Q = I.Guard;
  if (I.GuardNegated) {
    RegId NQ = freshPred("nq");
    Instruction Inv(Opcode::Xor, Type::pred());
    Inv.Dst = NQ;
    Inv.Srcs = {Operand::reg(Q), Operand::immInt(Type::pred(), 1)};
    Out.push_back(std::move(Inv));
    Q = NQ;
  }
  RegId Comb = freshPred("g");
  Instruction And(Opcode::And, Type::pred());
  And.Dst = Comb;
  And.Srcs = {Operand::reg(Act), Operand::reg(Q)};
  Out.push_back(std::move(And));
  I.Guard = Comb;
  I.GuardNegated = false;
  Out.push_back(std::move(I));
}

/// DARM alignment: greedy in-order matching of structurally identical
/// instructions between the two raw halves, then emission — unmatched
/// then-slots guarded by \p ActT, unmatched else-slots by \p ActF, matched
/// pairs melded into one unguarded instruction at the else position with
/// differing operands `selp`-selected by \p ActT. Originally-guarded
/// instructions never match (they just get their guards composed).
void Melder::meldHalves(std::vector<Instruction> &ThenI,
                        std::vector<Instruction> &ElseI, RegId ActT,
                        RegId ActF, std::vector<Instruction> &Out) {
  const size_t NT = ThenI.size(), NE = ElseI.size();
  std::vector<int> MatchOfElse(NE, -1);
  std::vector<uint8_t> ThenMatched(NT, 0);
  size_t JFloor = 0;
  for (size_t I = 0; I < NT; ++I) {
    const Instruction &A = ThenI[I];
    if (A.Guard.isValid() || !isPredicable(A) || A.Op == Opcode::AtomAdd)
      continue;
    for (size_t J = JFloor; J < NE; ++J) {
      const Instruction &B = ElseI[J];
      if (MatchOfElse[J] >= 0 || B.Guard.isValid())
        continue;
      if (A.Op != B.Op || !(A.Ty == B.Ty) || A.Cmp != B.Cmp ||
          A.Space != B.Space || A.MemOffset != B.MemOffset ||
          A.Srcs.size() != B.Srcs.size() || A.hasResult() != B.hasResult())
        continue;
      // Operand pairs must be identical or selectable (same-typed regs or
      // same-typed immediates).
      bool Selectable = true;
      unsigned Sels = 0;
      for (size_t S = 0; S < A.Srcs.size() && Selectable; ++S) {
        const Operand &X = A.Srcs[S], &Y = B.Srcs[S];
        if (sameOperand(X, Y))
          continue;
        ++Sels;
        if (X.isReg() && Y.isReg())
          Selectable = K.regType(X.regId()) == K.regType(Y.regId());
        else if (X.isImm() && Y.isImm())
          Selectable = X.immType() == Y.immType();
        else
          Selectable = false;
      }
      if (!Selectable)
        continue;
      bool SameDst = !A.hasResult() || A.Dst == B.Dst;
      unsigned Cost = 1 + Sels + (SameDst ? 0 : 2);
      if (Cost > 2 && !isExpensive(A.Op))
        continue;
      // Placement safety: the melded op executes at the else position, so
      // nothing between the two originals may touch A's operands or (when
      // its write is deferred) A's destination.
      auto Touches = [&](const Instruction &M) {
        bool Hit = false;
        M.forEachUse([&](RegId R) {
          if (!SameDst && A.hasResult() && R == A.Dst)
            Hit = true;
        });
        if (M.hasResult()) {
          for (const Operand &O : A.Srcs)
            if (O.isReg() && O.regId() == M.Dst)
              Hit = true;
          if (A.hasResult() && M.Dst == A.Dst)
            Hit = true;
        }
        return Hit;
      };
      bool Safe = true;
      for (size_t T = I + 1; T < NT && Safe; ++T)
        Safe = !Touches(ThenI[T]);
      for (size_t E = 0; E < J && Safe; ++E)
        Safe = !Touches(ElseI[E]);
      if (!Safe)
        continue;
      MatchOfElse[J] = static_cast<int>(I);
      ThenMatched[I] = 1;
      JFloor = J + 1; // keep relative order on both sides
      break;
    }
  }

  // Emit: unmatched then-half guarded by ActT, then the else-half with
  // matched slots melded (operands selected by ActT, which is exactly
  // "came from the then side").
  for (size_t I = 0; I < NT; ++I)
    if (!ThenMatched[I])
      appendGuarded(Out, ThenI[I], ActT);
  for (size_t J = 0; J < NE; ++J) {
    if (MatchOfElse[J] < 0) {
      appendGuarded(Out, ElseI[J], ActF);
      continue;
    }
    Instruction A = ThenI[static_cast<size_t>(MatchOfElse[J])];
    Instruction B = ElseI[J];
    Instruction M = B; // melded op inherits the else slot's shape
    for (size_t S = 0; S < A.Srcs.size(); ++S) {
      if (sameOperand(A.Srcs[S], B.Srcs[S]))
        continue;
      Type OTy = A.Srcs[S].isReg() ? K.regType(A.Srcs[S].regId())
                                   : A.Srcs[S].immType();
      RegId Sel = K.addReg(formatString("%%_meld_o%u", FreshCount++), OTy);
      Instruction SI(Opcode::Selp, OTy);
      SI.Dst = Sel;
      SI.Srcs = {A.Srcs[S], B.Srcs[S], Operand::reg(ActT)};
      Out.push_back(std::move(SI));
      M.Srcs[S] = Operand::reg(Sel);
    }
    M.Guard = RegId();
    M.GuardNegated = false;
    if (A.hasResult() && A.Dst != B.Dst) {
      Type DTy = K.regType(A.Dst);
      RegId DM = K.addReg(formatString("%%_meld_d%u", FreshCount++), DTy);
      M.Dst = DM;
      Out.push_back(M);
      Instruction SA(Opcode::Selp, DTy);
      SA.Dst = A.Dst;
      SA.Srcs = {Operand::reg(DM), Operand::reg(A.Dst), Operand::reg(ActT)};
      Out.push_back(std::move(SA));
      Instruction SB(Opcode::Selp, DTy);
      SB.Dst = B.Dst;
      SB.Srcs = {Operand::reg(B.Dst), Operand::reg(DM), Operand::reg(ActT)};
      Out.push_back(std::move(SB));
    } else {
      Out.push_back(std::move(M));
    }
  }
}

bool Melder::flattenOnce(const std::vector<std::vector<uint32_t>> &Preds) {
  for (uint32_t BI = 0; BI < K.Blocks.size(); ++BI) {
    if (TermSite[BI] == NoSite)
      continue;
    char C = Policy[TermSite[BI]];
    if (C == 'y')
      continue;
    BasicBlock &B = K.Blocks[BI];
    const Instruction &T = B.terminator();
    uint32_t TB = T.Target, FB = T.FalseTarget;
    if (TB == BI || FB == BI || TB == FB)
      continue; // self-loops are maskLoop's job
    auto SoleArm = [&](uint32_t Arm) {
      return Arm != 0 && Preds[Arm].size() == 1 && Preds[Arm][0] == BI &&
             TermSite[Arm] == NoSite && regionPredicable(K.Blocks[Arm]) &&
             K.Blocks[Arm].terminator().Op == Opcode::Bra &&
             !K.Blocks[Arm].terminator().Guard.isValid();
    };
    uint32_t Join = InvalidBlock;
    bool HasThen = false, HasElse = false;
    if (SoleArm(TB) && SoleArm(FB) &&
        K.Blocks[TB].terminator().Target ==
            K.Blocks[FB].terminator().Target) {
      Join = K.Blocks[TB].terminator().Target;
      HasThen = HasElse = true;
    } else if (SoleArm(TB) && K.Blocks[TB].terminator().Target == FB) {
      Join = FB; // then-triangle
      HasThen = true;
    } else if (SoleArm(FB) && K.Blocks[FB].terminator().Target == TB) {
      Join = TB; // else-triangle
      HasElse = true;
    }
    // Reject degenerate overlaps: the join must be distinct from the
    // branch block and from every *consumed* arm (in a triangle the join
    // legitimately IS the untaken successor).
    if (Join == InvalidBlock || Join == BI || (HasThen && Join == TB) ||
        (HasElse && Join == FB))
      continue;

    // Materialize the per-side activity predicates before dropping the
    // branch. actT is true exactly when this thread would have taken the
    // branch; both are immune to redefinition inside the halves.
    RegId P = T.Guard;
    bool Neg = T.GuardNegated;
    B.Insts.pop_back();
    RegId ActT, ActF;
    auto Materialize = [&](bool Negate, const char *Tag) {
      RegId R = freshPred(Tag);
      Instruction I(Negate ? Opcode::Xor : Opcode::Mov, Type::pred());
      I.Dst = R;
      I.Srcs = Negate ? std::vector<Operand>{Operand::reg(P),
                                             Operand::immInt(Type::pred(), 1)}
                      : std::vector<Operand>{Operand::reg(P)};
      B.Insts.push_back(std::move(I));
      return R;
    };
    if (HasThen)
      ActT = Materialize(Neg, "t");
    if (HasElse)
      ActF = Materialize(!Neg, "f");

    auto Half = [&](uint32_t Arm) {
      std::vector<Instruction> V(K.Blocks[Arm].Insts.begin(),
                                 K.Blocks[Arm].Insts.end() - 1);
      return V;
    };
    if (HasThen && HasElse && C == 'm') {
      std::vector<Instruction> ThenI = Half(TB), ElseI = Half(FB);
      meldHalves(ThenI, ElseI, ActT, ActF, B.Insts);
    } else {
      if (HasThen)
        for (Instruction &I : Half(TB))
          appendGuarded(B.Insts, std::move(I), ActT);
      if (HasElse)
        for (Instruction &I : Half(FB))
          appendGuarded(B.Insts, std::move(I), ActF);
    }
    // The consumed arms are unreachable now; clear them so predecessor
    // recomputation no longer sees their stale edges into the join (block
    // fusion depends on the join dropping to a single predecessor).
    if (HasThen)
      K.Blocks[TB].Insts.clear();
    if (HasElse)
      K.Blocks[FB].Insts.clear();
    Instruction Br(Opcode::Bra);
    Br.Target = Join;
    B.Insts.push_back(std::move(Br));
    Effective[TermSite[BI]] = C;
    TermSite[BI] = NoSite;
    return true; // predecessor sets changed; caller recomputes
  }
  return false;
}

/// Merges single-predecessor straight-line successors into their
/// predecessor ("basic block fusion", paper §5.1). This is what collapses
/// a flattened loop body + latch into a single block so the masked-loop
/// transform can see the self-loop.
bool Melder::fuseOnce(const std::vector<std::vector<uint32_t>> &Preds) {
  for (uint32_t HI = 0; HI < K.Blocks.size(); ++HI) {
    BasicBlock &H = K.Blocks[HI];
    if (!H.hasTerminator())
      continue;
    const Instruction &T = H.terminator();
    if (T.Op != Opcode::Bra || T.Guard.isValid())
      continue;
    uint32_t JI = T.Target;
    if (JI == HI || JI == 0 || Preds[JI].size() != 1)
      continue;
    // Barrier continuations must stay distinct blocks: the bar.sync +
    // unconditional-bra shape is what the divergence lowering keys on.
    if (H.Insts.size() >= 2 &&
        H.Insts[H.Insts.size() - 2].Op == Opcode::BarSync)
      continue;
    BasicBlock &J = K.Blocks[JI];
    if (!J.hasTerminator())
      continue;
    H.Insts.pop_back();
    for (Instruction &I : J.Insts)
      H.Insts.push_back(std::move(I));
    J.Insts.clear(); // unreachable; the sweep removes it
    TermSite[HI] = TermSite[JI];
    TermSite[JI] = NoSite;
    return true;
  }
  return false;
}

/// Masked-loop conversion of a divergent self-loop: a fresh lane mask is
/// set true in every external predecessor, every body instruction runs
/// guarded by it, and the backedge ANDs the stay condition into it before
/// branching on the mask. First iteration: external entry wrote true, the
/// body runs. Later iterations: exactly the lanes whose condition held.
/// Finished lanes idle under a false mask — annihilated by the AND — until
/// the whole warp's vote drops to zero and control falls through, so the
/// vectorizer never needs to yield at this site.
bool Melder::maskLoop(uint32_t L,
                      const std::vector<std::vector<uint32_t>> &Preds) {
  BasicBlock &B = K.Blocks[L];
  const Instruction T = B.terminator(); // copy: B.Insts is rebuilt below
  uint32_t Cont = T.Target == L ? T.FalseTarget : T.Target;
  // The thread stays in the loop iff the branch condition selects the L
  // side: (guard ^ negated) when Target == L, its complement otherwise.
  bool StayWhenTrue = (T.Target == L) != T.GuardNegated;
  std::vector<uint32_t> Ext;
  for (uint32_t P : Preds[L])
    if (P != L)
      Ext.push_back(P);
  if (L == 0 || Ext.empty())
    return false;
  for (size_t I = 0; I + 1 < B.Insts.size(); ++I)
    if (!isPredicable(B.Insts[I]))
      return false;

  RegId Mask = freshPred("mask");
  for (uint32_t PI : Ext) {
    BasicBlock &PB = K.Blocks[PI];
    size_t Pos = PB.Insts.size() - 1; // before the terminator...
    if (Pos > 0 && PB.Insts[Pos - 1].Op == Opcode::BarSync)
      --Pos; // ...and before a block-ending bar.sync, which must stay one
    Instruction MI(Opcode::Mov, Type::pred());
    MI.Dst = Mask;
    MI.Srcs = {Operand::immInt(Type::pred(), 1)};
    PB.Insts.insert(PB.Insts.begin() + static_cast<ptrdiff_t>(Pos),
                    std::move(MI));
  }

  std::vector<Instruction> Body(B.Insts.begin(), B.Insts.end() - 1);
  std::vector<Instruction> Out;
  for (Instruction &I : Body)
    appendGuarded(Out, std::move(I), Mask);
  // mask &= stay; computed after the body so a redefined condition counts,
  // and unguarded — dead lanes' stale condition is annihilated by mask=0.
  RegId Stay = T.Guard;
  if (!StayWhenTrue) {
    RegId NP = freshPred("stay");
    Instruction Inv(Opcode::Xor, Type::pred());
    Inv.Dst = NP;
    Inv.Srcs = {Operand::reg(T.Guard), Operand::immInt(Type::pred(), 1)};
    Out.push_back(std::move(Inv));
    Stay = NP;
  }
  Instruction And(Opcode::And, Type::pred());
  And.Dst = Mask;
  And.Srcs = {Operand::reg(Mask), Operand::reg(Stay)};
  Out.push_back(std::move(And));
  Instruction Br(Opcode::Bra);
  Br.Guard = Mask;
  Br.GuardNegated = false;
  Br.Target = L;
  Br.FalseTarget = Cont;
  Out.push_back(std::move(Br));
  B.Insts = std::move(Out);
  Masked[L] = 1;
  Effective[TermSite[L]] = 'm';
  return true;
}

void Melder::sweepUnreachable() {
  const uint32_t NB = static_cast<uint32_t>(K.Blocks.size());
  std::vector<uint8_t> Reach(NB, 0);
  std::vector<uint32_t> Work{0};
  Reach[0] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : K.successors(B))
      if (!Reach[S]) {
        Reach[S] = 1;
        Work.push_back(S);
      }
  }
  std::vector<uint32_t> Remap(NB, InvalidBlock);
  uint32_t Next = 0;
  for (uint32_t B = 0; B < NB; ++B)
    if (Reach[B])
      Remap[B] = Next++;
  if (Next == NB)
    return;
  std::vector<BasicBlock> NewBlocks;
  NewBlocks.reserve(Next);
  std::vector<uint32_t> NewSite(Next, NoSite);
  std::vector<uint8_t> NewMasked(Next, 0);
  for (uint32_t B = 0; B < NB; ++B) {
    if (!Reach[B])
      continue;
    NewSite[Remap[B]] = TermSite[B];
    NewMasked[Remap[B]] = Masked[B];
    NewBlocks.push_back(std::move(K.Blocks[B]));
  }
  for (BasicBlock &B : NewBlocks)
    for (Instruction &I : B.Insts) {
      if (I.Target != InvalidBlock)
        I.Target = Remap[I.Target];
      if (I.FalseTarget != InvalidBlock)
        I.FalseTarget = Remap[I.FalseTarget];
      for (uint32_t &Tgt : I.SwitchTargets)
        Tgt = Remap[Tgt];
      if (I.SwitchDefault != InvalidBlock)
        I.SwitchDefault = Remap[I.SwitchDefault];
    }
  K.Blocks = std::move(NewBlocks);
  TermSite = std::move(NewSite);
  Masked = std::move(NewMasked);
}

MeldResult Melder::run() {
  TermSite.assign(K.Blocks.size(), NoSite);
  uint32_t N = 0;
  for (uint32_t B = 0; B < K.Blocks.size(); ++B)
    if (K.Blocks[B].hasTerminator() &&
        K.Blocks[B].terminator().isConditionalBranch())
      TermSite[B] = N++;
  Policy.resize(N);
  Effective.assign(N, 'y');
  Masked.assign(K.Blocks.size(), 0);
  bool Any = false;
  for (uint32_t S = 0; S < N; ++S) {
    Policy[S] = planChar(S);
    Any |= Policy[S] != 'y';
  }
  if (Any) {
    // Flatten + fuse to a fixed point: a nested diamond's outer site only
    // becomes a diamond once the inner one has flattened and fused into a
    // straight line.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      while (flattenOnce(predecessors()))
        Changed = true;
      while (fuseOnce(predecessors()))
        Changed = true;
    }
    // Masked loops on the fused CFG: 'm' sites whose surviving branch is a
    // divergent self-loop backedge.
    auto Preds = predecessors();
    for (uint32_t B = 0; B < K.Blocks.size(); ++B) {
      if (TermSite[B] == NoSite || Policy[TermSite[B]] != 'm')
        continue;
      const Instruction &T = K.Blocks[B].terminator();
      if ((T.Target == B) != (T.FalseTarget == B))
        maskLoop(B, Preds);
    }
    sweepUnreachable();
  }

  MeldResult R;
  R.NumSites = N;
  R.EffectivePlan = Effective;
  R.SiteOfBlockTerm = TermSite;
  for (uint32_t B = 0; B < K.Blocks.size(); ++B)
    if (Masked[B])
      R.MaskedBlocks.push_back(B);
  return R;
}

} // namespace

MeldResult simtvec::runControlFlowMeld(Kernel &K, const std::string &Plan) {
  return Melder(K, Plan).run();
}
