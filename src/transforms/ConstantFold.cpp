//===- transforms/ConstantFold.cpp - Immediate folding --------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/transforms/Passes.h"

using namespace simtvec;

namespace {

bool allImmediates(const Instruction &I) {
  if (I.Srcs.empty())
    return false;
  for (const Operand &O : I.Srcs)
    if (!O.isImm())
      return false;
  return true;
}

/// Folds \p I into an immediate when possible.
bool foldInstruction(Instruction &I) {
  if (I.Ty.isVector() || I.Guard.isValid() || !allImmediates(I))
    return false;

  ScalarKind K = I.Ty.kind();
  bool Bad = false;
  uint64_t Result;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    Result = evalBinary(I.Op, K, I.Srcs[0].immBits(), I.Srcs[1].immBits(),
                        Bad);
    break;
  case Opcode::Mad:
    Result = evalMad(K, I.Srcs[0].immBits(), I.Srcs[1].immBits(),
                     I.Srcs[2].immBits(), Bad);
    break;
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Not:
    Result = evalUnary(I.Op, K, I.Srcs[0].immBits(), Bad);
    break;
  case Opcode::Setp:
    Result = evalCmp(I.Cmp, K, I.Srcs[0].immBits(), I.Srcs[1].immBits());
    break;
  case Opcode::Selp:
    Result = (I.Srcs[2].immBits() & 1) ? I.Srcs[0].immBits()
                                       : I.Srcs[1].immBits();
    break;
  case Opcode::Cvt:
    Result = evalConvert(K, I.Srcs[0].immType().kind(), I.Srcs[0].immBits());
    break;
  default:
    return false;
  }
  if (Bad)
    return false;

  Type ResultTy = I.Op == Opcode::Setp ? Type::pred() : I.Ty;
  I.Op = Opcode::Mov;
  I.Ty = ResultTy;
  I.Cmp = CmpOp::Eq;
  I.Srcs = {Operand::immBits(ResultTy, Result)};
  return true;
}

} // namespace

bool simtvec::runConstantFold(Kernel &K) {
  bool Changed = false;
  for (BasicBlock &B : K.Blocks)
    for (Instruction &I : B.Insts)
      Changed |= foldInstruction(I);
  return Changed;
}
