//===- parser/Lexer.cpp - SVIR token stream -------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "Lexer.h"

#include "simtvec/support/Format.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace simtvec;

Lexer::Lexer(const std::string &Text) : Text(Text) {}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}
static bool isIdentChar(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

bool Lexer::lexNumber(std::string &ErrorMessage) {
  Token T;
  T.Line = Line;
  T.Col = Col;
  size_t Start = Pos;

  auto takeWhile = [&](auto Pred) {
    while (Pos < Text.size() && Pred(Text[Pos])) {
      ++Pos;
      ++Col;
    }
  };
  auto isHex = [](char C) {
    return std::isxdigit(static_cast<unsigned char>(C));
  };
  auto isDigit = [](char C) {
    return std::isdigit(static_cast<unsigned char>(C));
  };

  // PTX-style hex float immediates: 0fXXXXXXXX / 0dXXXXXXXXXXXXXXXX.
  if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
      (Text[Pos + 1] == 'f' || Text[Pos + 1] == 'd') &&
      Pos + 2 < Text.size() && isHex(Text[Pos + 2])) {
    bool IsF32 = Text[Pos + 1] == 'f';
    Pos += 2;
    Col += 2;
    size_t DigitsStart = Pos;
    takeWhile(isHex);
    size_t Digits = Pos - DigitsStart;
    if ((IsF32 && Digits != 8) || (!IsF32 && Digits != 16)) {
      ErrorMessage = formatString("%u:%u: malformed hex float literal", T.Line,
                                  T.Col);
      return false;
    }
    T.Kind = IsF32 ? TokKind::HexF32 : TokKind::HexF64;
    T.IntBits = std::strtoull(Text.substr(DigitsStart, Digits).c_str(),
                              nullptr, 16);
    Tokens.push_back(std::move(T));
    return true;
  }

  // 0x hex integer.
  if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
      (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
    Pos += 2;
    Col += 2;
    size_t DigitsStart = Pos;
    takeWhile(isHex);
    if (Pos == DigitsStart) {
      ErrorMessage =
          formatString("%u:%u: malformed hex integer", T.Line, T.Col);
      return false;
    }
    T.Kind = TokKind::Int;
    errno = 0;
    T.IntBits = std::strtoull(Text.substr(DigitsStart, Pos - DigitsStart)
                                  .c_str(),
                              nullptr, 16);
    if (errno == ERANGE) {
      // strtoull silently saturates to ULLONG_MAX; a 17+-digit hex literal
      // would otherwise parse as 0xffffffffffffffff.
      ErrorMessage = formatString(
          "%u:%u: hex integer literal does not fit in 64 bits", T.Line,
          T.Col);
      return false;
    }
    Tokens.push_back(std::move(T));
    return true;
  }

  // Decimal integer or float.
  takeWhile(isDigit);
  bool IsFloat = false;
  if (Pos < Text.size() && Text[Pos] == '.' && Pos + 1 < Text.size() &&
      isDigit(Text[Pos + 1])) {
    IsFloat = true;
    ++Pos;
    ++Col;
    takeWhile(isDigit);
  }
  if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
    size_t Save = Pos;
    unsigned SaveCol = Col;
    ++Pos;
    ++Col;
    if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-')) {
      ++Pos;
      ++Col;
    }
    if (Pos < Text.size() && isDigit(Text[Pos])) {
      IsFloat = true;
      takeWhile(isDigit);
    } else {
      Pos = Save;
      Col = SaveCol;
    }
  }

  std::string Spelling = Text.substr(Start, Pos - Start);
  if (IsFloat) {
    T.Kind = TokKind::Float;
    errno = 0;
    T.FloatValue = std::strtod(Spelling.c_str(), nullptr);
    // ERANGE covers both directions; only overflow (±HUGE_VAL) is an error —
    // underflow to a denormal or 0.0 is the closest representable value.
    if (errno == ERANGE && std::abs(T.FloatValue) == HUGE_VAL) {
      ErrorMessage = formatString(
          "%u:%u: float literal '%s' overflows a double", T.Line, T.Col,
          Spelling.c_str());
      return false;
    }
  } else {
    T.Kind = TokKind::Int;
    errno = 0;
    T.IntBits = std::strtoull(Spelling.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      ErrorMessage = formatString(
          "%u:%u: integer literal '%s' does not fit in 64 bits", T.Line,
          T.Col, Spelling.c_str());
      return false;
    }
  }
  Tokens.push_back(std::move(T));
  return true;
}

bool Lexer::run(std::string &ErrorMessage) {
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (C == '\n') {
      ++Pos;
      ++Line;
      Col = 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      ++Col;
      continue;
    }
    if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      if (!lexNumber(ErrorMessage))
        return false;
      continue;
    }
    if (isIdentStart(C)) {
      Token T;
      T.Kind = TokKind::Ident;
      T.Line = Line;
      T.Col = Col;
      size_t Start = Pos;
      while (Pos < Text.size() && isIdentChar(Text[Pos])) {
        ++Pos;
        ++Col;
      }
      T.Text = Text.substr(Start, Pos - Start);
      Tokens.push_back(std::move(T));
      continue;
    }

    TokKind Kind;
    switch (C) {
    case '.':
      Kind = TokKind::Dot;
      break;
    case '%':
      Kind = TokKind::Percent;
      break;
    case '@':
      Kind = TokKind::At;
      break;
    case '!':
      Kind = TokKind::Bang;
      break;
    case ',':
      Kind = TokKind::Comma;
      break;
    case ';':
      Kind = TokKind::Semi;
      break;
    case ':':
      Kind = TokKind::Colon;
      break;
    case '(':
      Kind = TokKind::LParen;
      break;
    case ')':
      Kind = TokKind::RParen;
      break;
    case '{':
      Kind = TokKind::LBrace;
      break;
    case '}':
      Kind = TokKind::RBrace;
      break;
    case '[':
      Kind = TokKind::LBracket;
      break;
    case ']':
      Kind = TokKind::RBracket;
      break;
    case '+':
      Kind = TokKind::Plus;
      break;
    case '-':
      Kind = TokKind::Minus;
      break;
    case '<':
      Kind = TokKind::Less;
      break;
    case '>':
      Kind = TokKind::Greater;
      break;
    default:
      ErrorMessage =
          formatString("%u:%u: unexpected character '%c'", Line, Col, C);
      return false;
    }
    Token T;
    T.Kind = Kind;
    T.Line = Line;
    T.Col = Col;
    Tokens.push_back(std::move(T));
    ++Pos;
    ++Col;
  }
  Token End;
  End.Kind = TokKind::End;
  End.Line = Line;
  End.Col = Col;
  Tokens.push_back(std::move(End));
  return true;
}
