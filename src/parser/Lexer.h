//===- parser/Lexer.h - SVIR token stream (private header) ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_LIB_PARSER_LEXER_H
#define SIMTVEC_LIB_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace simtvec {

enum class TokKind : uint8_t {
  End,
  Ident,    ///< [A-Za-z_$][A-Za-z0-9_$]*
  Int,      ///< decimal or 0x hex integer
  Float,    ///< decimal literal with '.' or exponent
  HexF32,   ///< 0fXXXXXXXX
  HexF64,   ///< 0dXXXXXXXXXXXXXXXX
  Dot,
  Percent,
  At,
  Bang,
  Comma,
  Semi,
  Colon,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Plus,
  Minus,
  Less,
  Greater,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;    ///< identifier spelling
  uint64_t IntBits = 0; ///< Int / HexF32 / HexF64 raw bits
  double FloatValue = 0;
  unsigned Line = 0, Col = 0;
};

/// Tokenizes SVIR text. Lexical errors surface as a diagnostic string.
class Lexer {
public:
  explicit Lexer(const std::string &Text);

  /// Tokenizes the whole input; returns false and sets \p ErrorMessage on a
  /// lexical error.
  bool run(std::string &ErrorMessage);

  const std::vector<Token> &tokens() const { return Tokens; }

private:
  bool lexNumber(std::string &ErrorMessage);

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  std::vector<Token> Tokens;
};

} // namespace simtvec

#endif // SIMTVEC_LIB_PARSER_LEXER_H
