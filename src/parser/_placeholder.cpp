// placeholder
