//===- parser/Parser.cpp - SVIR textual parser ----------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/parser/Parser.h"

#include "Lexer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace simtvec;

namespace {

/// Opcodes parsed by the generic "mnemonic.type dst, srcs..." rule.
struct GenericOp {
  Opcode Op;
  unsigned Arity; ///< number of source operands
};

const std::map<std::string, GenericOp> &genericOps() {
  static const std::map<std::string, GenericOp> Map = {
      {"mov", {Opcode::Mov, 1}},
      {"add", {Opcode::Add, 2}},
      {"sub", {Opcode::Sub, 2}},
      {"mul", {Opcode::Mul, 2}},
      {"mad", {Opcode::Mad, 3}},
      {"div", {Opcode::Div, 2}},
      {"rem", {Opcode::Rem, 2}},
      {"min", {Opcode::Min, 2}},
      {"max", {Opcode::Max, 2}},
      {"neg", {Opcode::Neg, 1}},
      {"abs", {Opcode::Abs, 1}},
      {"and", {Opcode::And, 2}},
      {"or", {Opcode::Or, 2}},
      {"xor", {Opcode::Xor, 2}},
      {"not", {Opcode::Not, 1}},
      {"shl", {Opcode::Shl, 2}},
      {"shr", {Opcode::Shr, 2}},
      {"selp", {Opcode::Selp, 3}},
      {"rcp", {Opcode::Rcp, 1}},
      {"sqrt", {Opcode::Sqrt, 1}},
      {"rsqrt", {Opcode::Rsqrt, 1}},
      {"sin", {Opcode::Sin, 1}},
      {"cos", {Opcode::Cos, 1}},
      {"lg2", {Opcode::Lg2, 1}},
      {"ex2", {Opcode::Ex2, 1}},
      {"broadcast", {Opcode::Broadcast, 1}},
      {"iota", {Opcode::Iota, 0}},
      {"insertelement", {Opcode::InsertElement, 3}},
      {"extractelement", {Opcode::ExtractElement, 2}},
  };
  return Map;
}

bool parseScalarKind(const std::string &Name, ScalarKind &Kind) {
  if (Name == "pred")
    Kind = ScalarKind::Pred;
  else if (Name == "u8" || Name == "b8")
    Kind = ScalarKind::U8;
  else if (Name == "s32")
    Kind = ScalarKind::S32;
  else if (Name == "u32" || Name == "b32")
    Kind = ScalarKind::U32;
  else if (Name == "s64")
    Kind = ScalarKind::S64;
  else if (Name == "u64" || Name == "b64")
    Kind = ScalarKind::U64;
  else if (Name == "f32")
    Kind = ScalarKind::F32;
  else if (Name == "f64")
    Kind = ScalarKind::F64;
  else
    return false;
  return true;
}

bool parseCmpName(const std::string &Name, CmpOp &Cmp) {
  if (Name == "eq")
    Cmp = CmpOp::Eq;
  else if (Name == "ne")
    Cmp = CmpOp::Ne;
  else if (Name == "lt")
    Cmp = CmpOp::Lt;
  else if (Name == "le")
    Cmp = CmpOp::Le;
  else if (Name == "gt")
    Cmp = CmpOp::Gt;
  else if (Name == "ge")
    Cmp = CmpOp::Ge;
  else
    return false;
  return true;
}

/// Recursive-descent parser over the token stream.
class Parser {
public:
  Parser(const std::vector<Token> &Toks, Module &M) : Toks(Toks), M(M) {}

  bool run();
  const std::string &error() const { return Err; }

private:
  // Token stream helpers -------------------------------------------------
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Idx + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &take() { return Toks[Idx < Toks.size() - 1 ? Idx++ : Idx]; }
  bool at(TokKind Kind) const { return peek().Kind == Kind; }
  bool accept(TokKind Kind) {
    if (!at(Kind))
      return false;
    take();
    return true;
  }
  bool fail(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    std::string Detail = formatStringV(Fmt, Args);
    va_end(Args);
    Err = formatString("%u:%u: %s", peek().Line, peek().Col, Detail.c_str());
    return false;
  }
  bool expect(TokKind Kind, const char *What) {
    if (accept(Kind))
      return true;
    return fail("expected %s", What);
  }
  bool expectIdent(std::string &Out) {
    if (!at(TokKind::Ident))
      return fail("expected an identifier");
    Out = take().Text;
    return true;
  }
  bool expectInt(uint64_t &Out) {
    bool Negative = accept(TokKind::Minus);
    if (!at(TokKind::Int))
      return fail("expected an integer");
    Out = take().IntBits;
    if (Negative)
      Out = static_cast<uint64_t>(-static_cast<int64_t>(Out));
    return true;
  }

  // Grammar --------------------------------------------------------------
  bool parseKernel();
  bool parseType(Type &Ty);
  bool parseDirective();
  bool parseLabel(const std::string &Name);
  bool parseInstruction();
  bool parseMnemonicParts(std::vector<std::string> &Parts);
  bool parseTypeSuffix(const std::vector<std::string> &Parts, size_t &Cursor,
                       Type &Ty);
  bool parseOperand(Type ExpectedTy, Operand &Out);
  bool parseRegOperand(RegId &Out);
  bool parseAddress(Operand &Base, int64_t &Offset);
  bool parseLaneSuffixAndSemi(Instruction &I);
  bool resolveFixups();

  uint32_t currentBlock();
  Instruction &append(Instruction I) {
    BasicBlock &B = K->Blocks[currentBlock()];
    B.Insts.push_back(std::move(I));
    return B.Insts.back();
  }

  // Branch-target fixups: targets may reference labels defined later.
  enum class Slot { Taken, FalseTaken, SwitchCase, SwitchDefault };
  struct Fixup {
    uint32_t Block, Inst;
    Slot Which;
    size_t CaseIdx = 0;
    std::string Label;
    unsigned Line = 0, Col = 0;
    bool FallThroughNext = false; ///< resolve to the next block in layout
  };

  const std::vector<Token> &Toks;
  size_t Idx = 0;
  Module &M;
  Kernel *K = nullptr;
  uint32_t Block = InvalidBlock;
  std::string Err;
  std::vector<Fixup> Fixups;
  std::vector<std::pair<uint64_t, std::string>> PendingEntries;
};

} // namespace

uint32_t Parser::currentBlock() {
  if (Block == InvalidBlock)
    Block = K->addBlock("$B0");
  return Block;
}

bool Parser::parseType(Type &Ty) {
  if (accept(TokKind::Less)) {
    uint64_t Lanes = 0;
    if (!expectInt(Lanes))
      return false;
    std::string X;
    if (!expectIdent(X) || X != "x")
      return fail("expected 'x' in vector type");
    if (!expect(TokKind::Dot, "'.' before the element kind"))
      return false;
    std::string KindName;
    if (!expectIdent(KindName))
      return false;
    ScalarKind Kind;
    if (!parseScalarKind(KindName, Kind))
      return fail("unknown scalar kind '%s'", KindName.c_str());
    if (!expect(TokKind::Greater, "'>' closing the vector type"))
      return false;
    if (Lanes < 2 || Lanes > 64)
      return fail("vector lane count out of range");
    Ty = Type(Kind, static_cast<uint16_t>(Lanes));
    return true;
  }
  if (!expect(TokKind::Dot, "a type"))
    return false;
  std::string KindName;
  if (!expectIdent(KindName))
    return false;
  ScalarKind Kind;
  if (!parseScalarKind(KindName, Kind))
    return fail("unknown scalar kind '%s'", KindName.c_str());
  Ty = Type(Kind);
  return true;
}

bool Parser::parseDirective() {
  // The '.' has been consumed by the caller.
  std::string Name;
  if (!expectIdent(Name))
    return false;

  if (Name == "reg") {
    Type Ty;
    if (!parseType(Ty))
      return false;
    do {
      if (!expect(TokKind::Percent, "'%' beginning a register name"))
        return false;
      std::string RegName;
      if (!expectIdent(RegName))
        return false;
      if (accept(TokKind::Less)) {
        uint64_t Count = 0;
        if (!expectInt(Count) ||
            !expect(TokKind::Greater, "'>' closing a register range"))
          return false;
        for (uint64_t N = 0; N < Count; ++N)
          K->addReg(RegName + std::to_string(N), Ty);
      } else {
        if (K->findReg(RegName).isValid())
          return fail("register '%%%s' redeclared", RegName.c_str());
        K->addReg(RegName, Ty);
      }
    } while (accept(TokKind::Comma));
    return expect(TokKind::Semi, "';'");
  }

  if (Name == "shared" || Name == "local") {
    Type Ty;
    if (!parseType(Ty)) // element type; only used for documentation
      return false;
    (void)Ty;
    std::string VarName;
    if (!expectIdent(VarName))
      return false;
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    uint64_t Bytes = 0;
    if (!expectInt(Bytes))
      return false;
    if (!expect(TokKind::RBracket, "']'") || !expect(TokKind::Semi, "';'"))
      return false;
    if (Name == "shared")
      K->addSharedVar(VarName, static_cast<uint32_t>(Bytes));
    else
      K->addLocalVar(VarName, static_cast<uint32_t>(Bytes));
    return true;
  }

  if (Name == "warpsize") {
    uint64_t WS = 0;
    if (!expectInt(WS) || !expect(TokKind::Semi, "';'"))
      return false;
    K->WarpSize = static_cast<uint32_t>(WS);
    return true;
  }
  if (Name == "spillbytes") {
    uint64_t Bytes = 0;
    if (!expectInt(Bytes) || !expect(TokKind::Semi, "';'"))
      return false;
    K->SpillBytes = static_cast<uint32_t>(Bytes);
    return true;
  }
  if (Name == "entry") {
    uint64_t Id = 0;
    std::string Label;
    if (!expectInt(Id) || !expectIdent(Label) ||
        !expect(TokKind::Semi, "';'"))
      return false;
    PendingEntries.emplace_back(Id, Label);
    return true;
  }
  return fail("unknown directive '.%s'", Name.c_str());
}

bool Parser::parseLabel(const std::string &Name) {
  // The identifier and ':' have been consumed by the caller.
  if (K->findBlock(Name) != InvalidBlock)
    return fail("duplicate label '%s'", Name.c_str());

  // Implicit fall-through from an unterminated predecessor block.
  bool NeedFallThrough =
      Block != InvalidBlock && !K->Blocks[Block].hasTerminator() &&
      !K->Blocks[Block].Insts.empty();
  if (Block != InvalidBlock && K->Blocks[Block].Insts.empty())
    NeedFallThrough = true; // empty block falls through too

  uint32_t NewBlock = K->addBlock(Name);
  if (NeedFallThrough) {
    Instruction Bra(Opcode::Bra);
    Bra.Target = NewBlock;
    K->Blocks[Block].Insts.push_back(std::move(Bra));
  }
  Block = NewBlock;

  if (accept(TokKind::Bang)) {
    std::string Kind;
    if (!expectIdent(Kind))
      return false;
    if (Kind == "scheduler")
      K->Blocks[Block].Kind = BlockKind::Scheduler;
    else if (Kind == "entry")
      K->Blocks[Block].Kind = BlockKind::EntryHandler;
    else if (Kind == "exit")
      K->Blocks[Block].Kind = BlockKind::ExitHandler;
    else if (Kind == "body")
      K->Blocks[Block].Kind = BlockKind::Body;
    else
      return fail("unknown block kind '!%s'", Kind.c_str());
  }
  return true;
}

bool Parser::parseMnemonicParts(std::vector<std::string> &Parts) {
  std::string First;
  if (!expectIdent(First))
    return false;
  Parts.push_back(std::move(First));
  while (at(TokKind::Dot) && peek(1).Kind == TokKind::Ident) {
    take(); // '.'
    Parts.push_back(take().Text);
  }
  return true;
}

bool Parser::parseTypeSuffix(const std::vector<std::string> &Parts,
                             size_t &Cursor, Type &Ty) {
  if (Cursor >= Parts.size())
    return fail("missing type suffix in mnemonic");
  uint16_t Lanes = 1;
  const std::string &P = Parts[Cursor];
  if (P.size() >= 2 && P[0] == 'v' &&
      std::isdigit(static_cast<unsigned char>(P[1]))) {
    Lanes = static_cast<uint16_t>(std::strtoul(P.c_str() + 1, nullptr, 10));
    ++Cursor;
    if (Cursor >= Parts.size())
      return fail("missing element kind after vector width");
  }
  ScalarKind Kind;
  if (!parseScalarKind(Parts[Cursor], Kind))
    return fail("unknown type suffix '.%s'", Parts[Cursor].c_str());
  ++Cursor;
  Ty = Type(Kind, Lanes);
  return true;
}

bool Parser::parseRegOperand(RegId &Out) {
  if (!expect(TokKind::Percent, "'%' beginning a register"))
    return false;
  std::string Name;
  if (!expectIdent(Name))
    return false;
  Out = K->findReg(Name);
  if (!Out.isValid())
    return fail("unknown register '%%%s'", Name.c_str());
  return true;
}

bool Parser::parseOperand(Type ExpectedTy, Operand &Out) {
  if (at(TokKind::Percent)) {
    take();
    std::string Name;
    if (!expectIdent(Name))
      return false;
    // Special registers: %tid.x etc.
    auto axisSpecial = [&](SReg X, SReg Y, SReg Z, bool &Matched) -> bool {
      Matched = true;
      if (!expect(TokKind::Dot, "'.' in a special register") )
        return false;
      std::string Axis;
      if (!expectIdent(Axis))
        return false;
      if (Axis == "x")
        Out = Operand::special(X);
      else if (Axis == "y")
        Out = Operand::special(Y);
      else if (Axis == "z")
        Out = Operand::special(Z);
      else
        return fail("unknown special register axis '%s'", Axis.c_str());
      return true;
    };
    bool Matched = false;
    if (Name == "tid")
      return axisSpecial(SReg::TidX, SReg::TidY, SReg::TidZ, Matched);
    if (Name == "ntid")
      return axisSpecial(SReg::NTidX, SReg::NTidY, SReg::NTidZ, Matched);
    if (Name == "ctaid")
      return axisSpecial(SReg::CTAIdX, SReg::CTAIdY, SReg::CTAIdZ, Matched);
    if (Name == "nctaid")
      return axisSpecial(SReg::NCTAIdX, SReg::NCTAIdY, SReg::NCTAIdZ,
                         Matched);
    if (Name == "laneid") {
      Out = Operand::special(SReg::LaneId);
      return true;
    }
    if (Name == "warpbase") {
      Out = Operand::special(SReg::WarpBaseTid);
      return true;
    }
    if (Name == "warpwidth") {
      Out = Operand::special(SReg::WarpWidth);
      return true;
    }
    if (Name == "entryid") {
      Out = Operand::special(SReg::EntryId);
      return true;
    }
    RegId Reg = K->findReg(Name);
    if (!Reg.isValid())
      return fail("unknown register '%%%s'", Name.c_str());
    Out = Operand::reg(Reg);
    return true;
  }

  // Immediates.
  bool Negative = accept(TokKind::Minus);
  if (at(TokKind::Int)) {
    uint64_t Bits = take().IntBits;
    int64_t Value = static_cast<int64_t>(Bits);
    if (Negative)
      Value = -Value;
    Type ImmTy = ExpectedTy.scalar();
    if (ImmTy.isFloat()) {
      if (ImmTy.kind() == ScalarKind::F32)
        Out = Operand::immF32(static_cast<float>(Value));
      else
        Out = Operand::immF64(static_cast<double>(Value));
    } else if (ImmTy.isPred()) {
      Out = Operand::immInt(Type::pred(), Value != 0);
    } else {
      Out = Operand::immInt(ImmTy, Value);
    }
    return true;
  }
  if (at(TokKind::Float)) {
    double Value = take().FloatValue;
    if (Negative)
      Value = -Value;
    if (ExpectedTy.kind() == ScalarKind::F64)
      Out = Operand::immF64(Value);
    else
      Out = Operand::immF32(static_cast<float>(Value));
    return true;
  }
  if (at(TokKind::HexF32)) {
    Out = Operand::immBits(Type::f32(), take().IntBits);
    if (Negative)
      return fail("negative sign on a hex float literal");
    return true;
  }
  if (at(TokKind::HexF64)) {
    Out = Operand::immBits(Type::f64(), take().IntBits);
    if (Negative)
      return fail("negative sign on a hex float literal");
    return true;
  }
  if (Negative)
    return fail("expected a numeric literal after '-'");

  // Bare identifier: a param/shared/local symbol.
  if (at(TokKind::Ident)) {
    std::string Name = take().Text;
    uint32_t PIdx = K->findParam(Name);
    if (PIdx != ~0u) {
      Out = Operand::symbol(SymKind::Param, PIdx);
      return true;
    }
    for (uint32_t I = 0; I < K->SharedVars.size(); ++I)
      if (K->SharedVars[I].Name == Name) {
        Out = Operand::symbol(SymKind::Shared, I);
        return true;
      }
    for (uint32_t I = 0; I < K->LocalVars.size(); ++I)
      if (K->LocalVars[I].Name == Name) {
        Out = Operand::symbol(SymKind::Local, I);
        return true;
      }
    return fail("unknown symbol '%s'", Name.c_str());
  }
  return fail("expected an operand");
}

bool Parser::parseAddress(Operand &Base, int64_t &Offset) {
  if (!expect(TokKind::LBracket, "'[' beginning an address"))
    return false;
  if (!parseOperand(Type::u64(), Base))
    return false;
  Offset = 0;
  if (at(TokKind::Plus) || at(TokKind::Minus)) {
    bool Negative = take().Kind == TokKind::Minus;
    if (!at(TokKind::Int))
      return fail("expected an address offset");
    Offset = static_cast<int64_t>(take().IntBits);
    if (Negative)
      Offset = -Offset;
  }
  return expect(TokKind::RBracket, "']' closing an address");
}

bool Parser::parseLaneSuffixAndSemi(Instruction &I) {
  if (accept(TokKind::Bang)) {
    std::string Word;
    if (!expectIdent(Word) || Word != "lane")
      return fail("expected '!lane N'");
    uint64_t Lane = 0;
    if (!expectInt(Lane))
      return false;
    I.Lane = static_cast<uint16_t>(Lane);
  }
  return expect(TokKind::Semi, "';'");
}

bool Parser::parseInstruction() {
  // Optional guard.
  RegId Guard;
  bool GuardNegated = false;
  if (accept(TokKind::At)) {
    GuardNegated = accept(TokKind::Bang);
    if (!parseRegOperand(Guard))
      return false;
  }

  std::vector<std::string> Parts;
  unsigned Line = peek().Line, Col = peek().Col;
  if (!parseMnemonicParts(Parts))
    return false;
  const std::string &Head = Parts[0];

  // Control flow -----------------------------------------------------------
  if (Head == "bra") {
    std::string Taken;
    if (!expectIdent(Taken))
      return false;
    Instruction I(Opcode::Bra);
    I.Guard = Guard;
    I.GuardNegated = GuardNegated;
    uint32_t B = currentBlock();
    bool HasFalse = false;
    std::string FalseLabel;
    if (accept(TokKind::Comma)) {
      if (!expectIdent(FalseLabel))
        return false;
      HasFalse = true;
    }
    if (!Guard.isValid() && HasFalse)
      return fail("unconditional branch with two targets");
    Instruction &Placed = append(std::move(I));
    (void)Placed;
    uint32_t InstIdx = static_cast<uint32_t>(K->Blocks[B].Insts.size() - 1);
    Fixups.push_back({B, InstIdx, Slot::Taken, 0, Taken, Line, Col, false});
    if (Guard.isValid()) {
      Fixup F{B, InstIdx, Slot::FalseTaken, 0, FalseLabel, Line, Col,
              !HasFalse};
      Fixups.push_back(std::move(F));
    }
    return parseLaneSuffixAndSemi(K->Blocks[B].Insts[InstIdx]);
  }

  if (Head == "switch") {
    Instruction I(Opcode::Switch, Type::u32());
    Operand Value;
    if (!parseOperand(Type::u32(), Value))
      return false;
    I.Srcs = {Value};
    if (!expect(TokKind::Comma, "','") ||
        !expect(TokKind::LBracket, "'[' beginning switch cases"))
      return false;
    std::vector<std::string> CaseLabels;
    if (!at(TokKind::RBracket)) {
      do {
        bool Negative = accept(TokKind::Minus);
        if (!at(TokKind::Int))
          return fail("expected a switch case value");
        int64_t CaseValue = static_cast<int64_t>(take().IntBits);
        if (Negative)
          CaseValue = -CaseValue;
        if (!expect(TokKind::Colon, "':' after a case value"))
          return false;
        std::string Label;
        if (!expectIdent(Label))
          return false;
        I.SwitchValues.push_back(CaseValue);
        I.SwitchTargets.push_back(InvalidBlock);
        CaseLabels.push_back(std::move(Label));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RBracket, "']' closing switch cases") ||
        !expect(TokKind::Comma, "','"))
      return false;
    std::string DefaultWord;
    if (!expectIdent(DefaultWord) || DefaultWord != "default")
      return fail("expected 'default'");
    if (!expect(TokKind::Colon, "':' after 'default'"))
      return false;
    std::string DefaultLabel;
    if (!expectIdent(DefaultLabel))
      return false;
    uint32_t B = currentBlock();
    append(std::move(I));
    uint32_t InstIdx = static_cast<uint32_t>(K->Blocks[B].Insts.size() - 1);
    for (size_t C = 0; C < CaseLabels.size(); ++C)
      Fixups.push_back(
          {B, InstIdx, Slot::SwitchCase, C, CaseLabels[C], Line, Col, false});
    Fixups.push_back({B, InstIdx, Slot::SwitchDefault, 0, DefaultLabel, Line,
                      Col, false});
    return parseLaneSuffixAndSemi(K->Blocks[B].Insts[InstIdx]);
  }

  Instruction I;
  I.Guard = Guard;
  I.GuardNegated = GuardNegated;

  if (Head == "ret" || Head == "yield" || Head == "trap" ||
      Head == "membar") {
    I.Op = Head == "ret"      ? Opcode::Ret
           : Head == "yield"  ? Opcode::Yield
           : Head == "trap"   ? Opcode::Trap
                              : Opcode::Membar;
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "bar") {
    if (Parts.size() != 2 || Parts[1] != "sync")
      return fail("expected 'bar.sync'");
    I.Op = Opcode::BarSync;
    if (at(TokKind::Int))
      take(); // optional PTX barrier id, always 0
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "vote") {
    if (Parts.size() < 3 || Parts[1] != "sum")
      return fail("expected 'vote.sum.u32'");
    I.Op = Opcode::VoteSum;
    size_t Cursor = 2;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    if (!parseRegOperand(I.Dst) || !expect(TokKind::Comma, "','"))
      return false;
    Operand Src;
    if (!parseOperand(Type::pred(), Src))
      return false;
    I.Srcs = {Src};
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "set") {
    if (Parts.size() != 2)
      return fail("expected 'set.rpoint' or 'set.rstatus'");
    if (Parts[1] == "rpoint") {
      I.Op = Opcode::SetRPoint;
      I.Ty = Type::u32();
      Operand Src;
      if (!parseOperand(Type::u32(), Src))
        return false;
      I.Srcs = {Src};
      return parseLaneSuffixAndSemi(append(std::move(I)));
    }
    if (Parts[1] == "rstatus") {
      I.Op = Opcode::SetRStatus;
      I.Ty = Type::u32();
      std::string StatusName;
      if (!expectIdent(StatusName))
        return false;
      int64_t Status;
      if (StatusName == "branch")
        Status = static_cast<int64_t>(ResumeStatus::Branch);
      else if (StatusName == "barrier")
        Status = static_cast<int64_t>(ResumeStatus::Barrier);
      else if (StatusName == "exit")
        Status = static_cast<int64_t>(ResumeStatus::Exit);
      else
        return fail("unknown resume status '%s'", StatusName.c_str());
      I.Srcs = {Operand::immInt(Type::u32(), Status)};
      return parseLaneSuffixAndSemi(append(std::move(I)));
    }
    return fail("unknown 'set.%s'", Parts[1].c_str());
  }

  if (Head == "spill" || Head == "restore") {
    I.Op = Head == "spill" ? Opcode::Spill : Opcode::Restore;
    size_t Cursor = 1;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    if (I.Op == Opcode::Spill) {
      Operand Src;
      if (!parseOperand(I.Ty, Src))
        return false;
      I.Srcs = {Src};
    } else {
      if (!parseRegOperand(I.Dst))
        return false;
    }
    if (!expect(TokKind::Comma, "','"))
      return false;
    uint64_t Slot = 0;
    if (!expectInt(Slot))
      return false;
    I.MemOffset = static_cast<int64_t>(Slot);
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "ld" || Head == "st") {
    if (Parts.size() < 3)
      return fail("expected '%s.space.type'", Head.c_str());
    I.Op = Head == "ld" ? Opcode::Ld : Opcode::St;
    const std::string &SpaceName = Parts[1];
    if (SpaceName == "global")
      I.Space = AddressSpace::Global;
    else if (SpaceName == "shared")
      I.Space = AddressSpace::Shared;
    else if (SpaceName == "local")
      I.Space = AddressSpace::Local;
    else if (SpaceName == "param")
      I.Space = AddressSpace::Param;
    else
      return fail("unknown address space '%s'", SpaceName.c_str());
    size_t Cursor = 2;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    Operand Addr;
    int64_t Offset;
    if (I.Op == Opcode::Ld) {
      if (!parseRegOperand(I.Dst) || !expect(TokKind::Comma, "','"))
        return false;
      if (!parseAddress(Addr, Offset))
        return false;
      I.Srcs = {Addr};
    } else {
      if (!parseAddress(Addr, Offset) || !expect(TokKind::Comma, "','"))
        return false;
      Operand Value;
      if (!parseOperand(I.Ty, Value))
        return false;
      I.Srcs = {Addr, Value};
    }
    I.MemOffset = Offset;
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "atom") {
    if (Parts.size() < 4 || Parts[2] != "add")
      return fail("expected 'atom.space.add.type'");
    I.Op = Opcode::AtomAdd;
    if (Parts[1] == "global")
      I.Space = AddressSpace::Global;
    else if (Parts[1] == "shared")
      I.Space = AddressSpace::Shared;
    else
      return fail("atomics require the global or shared space");
    size_t Cursor = 3;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    if (!parseRegOperand(I.Dst) || !expect(TokKind::Comma, "','"))
      return false;
    Operand Addr;
    int64_t Offset;
    if (!parseAddress(Addr, Offset) || !expect(TokKind::Comma, "','"))
      return false;
    Operand Value;
    if (!parseOperand(I.Ty, Value))
      return false;
    I.Srcs = {Addr, Value};
    I.MemOffset = Offset;
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "setp") {
    if (Parts.size() < 3)
      return fail("expected 'setp.cmp.type'");
    I.Op = Opcode::Setp;
    if (!parseCmpName(Parts[1], I.Cmp))
      return fail("unknown comparison '%s'", Parts[1].c_str());
    size_t Cursor = 2;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    if (!parseRegOperand(I.Dst) || !expect(TokKind::Comma, "','"))
      return false;
    Operand A, B;
    if (!parseOperand(I.Ty, A) || !expect(TokKind::Comma, "','") ||
        !parseOperand(I.Ty, B))
      return false;
    I.Srcs = {A, B};
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  if (Head == "cvt") {
    I.Op = Opcode::Cvt;
    size_t Cursor = 1;
    if (!parseTypeSuffix(Parts, Cursor, I.Ty))
      return false;
    // Trailing source kind (informational; the source register's type is
    // authoritative).
    if (Cursor < Parts.size()) {
      ScalarKind SrcKind;
      if (!parseScalarKind(Parts[Cursor], SrcKind))
        return fail("unknown cvt source kind '.%s'", Parts[Cursor].c_str());
      ++Cursor;
    }
    if (!parseRegOperand(I.Dst) || !expect(TokKind::Comma, "','"))
      return false;
    Operand Src;
    if (!parseOperand(I.Ty, Src))
      return false;
    I.Srcs = {Src};
    return parseLaneSuffixAndSemi(append(std::move(I)));
  }

  // Generic arithmetic / vector ops.
  auto It = genericOps().find(Head);
  if (It == genericOps().end())
    return fail("unknown instruction '%s'", Head.c_str());
  I.Op = It->second.Op;
  size_t Cursor = 1;
  if (!parseTypeSuffix(Parts, Cursor, I.Ty))
    return false;
  if (Cursor != Parts.size())
    return fail("trailing mnemonic parts after the type suffix");

  if (simtvec::hasResult(I.Op) && !parseRegOperand(I.Dst))
    return false;

  unsigned Arity = It->second.Arity;
  for (unsigned OpIdx = 0; OpIdx < Arity; ++OpIdx) {
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type Expected = I.Ty;
    if (I.Op == Opcode::Selp && OpIdx == 2)
      Expected = Type::pred().withLanes(I.Ty.lanes());
    if (I.Op == Opcode::InsertElement) {
      if (OpIdx == 1)
        Expected = I.Ty.scalar();
      else if (OpIdx == 2)
        Expected = Type::u32();
    }
    if (I.Op == Opcode::ExtractElement && OpIdx == 1)
      Expected = Type::u32();
    if (I.Op == Opcode::Broadcast)
      Expected = I.Ty.scalar();
    Operand O;
    if (!parseOperand(Expected, O))
      return false;
    I.Srcs.push_back(O);
  }
  return parseLaneSuffixAndSemi(append(std::move(I)));
}

bool Parser::resolveFixups() {
  for (const Fixup &F : Fixups) {
    uint32_t Target;
    if (F.FallThroughNext) {
      Target = F.Block + 1;
      if (Target >= K->Blocks.size()) {
        Err = formatString(
            "%u:%u: conditional branch falls through past the last block",
            F.Line, F.Col);
        return false;
      }
    } else {
      Target = K->findBlock(F.Label);
      if (Target == InvalidBlock) {
        Err = formatString("%u:%u: undefined label '%s'", F.Line, F.Col,
                           F.Label.c_str());
        return false;
      }
    }
    Instruction &I = K->Blocks[F.Block].Insts[F.Inst];
    switch (F.Which) {
    case Slot::Taken:
      I.Target = Target;
      break;
    case Slot::FalseTaken:
      I.FalseTarget = Target;
      break;
    case Slot::SwitchCase:
      I.SwitchTargets[F.CaseIdx] = Target;
      break;
    case Slot::SwitchDefault:
      I.SwitchDefault = Target;
      break;
    }
  }
  Fixups.clear();

  if (!PendingEntries.empty()) {
    uint64_t MaxId = 0;
    for (const auto &[Id, Label] : PendingEntries)
      MaxId = std::max(MaxId, Id);
    K->EntryBlocks.assign(MaxId + 1, InvalidBlock);
    for (const auto &[Id, Label] : PendingEntries) {
      uint32_t Target = K->findBlock(Label);
      if (Target == InvalidBlock) {
        Err = formatString("undefined entry label '%s'", Label.c_str());
        return false;
      }
      K->EntryBlocks[Id] = Target;
    }
    for (uint32_t Entry : K->EntryBlocks)
      if (Entry == InvalidBlock) {
        Err = "entry table has holes";
        return false;
      }
    PendingEntries.clear();
  }
  return true;
}

bool Parser::parseKernel() {
  // '.kernel' has been recognized by the caller; 'kernel' consumed.
  std::string Name;
  if (!expectIdent(Name))
    return false;
  K = &M.addKernel(Name);
  Block = InvalidBlock;

  if (!expect(TokKind::LParen, "'(' beginning the parameter list"))
    return false;
  if (!at(TokKind::RParen)) {
    do {
      if (!expect(TokKind::Dot, "'.param'"))
        return false;
      std::string ParamWord;
      if (!expectIdent(ParamWord) || ParamWord != "param")
        return fail("expected '.param'");
      Type Ty;
      if (!parseType(Ty))
        return false;
      std::string ParamName;
      if (!expectIdent(ParamName))
        return false;
      K->addParam(ParamName, Ty);
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RParen, "')' closing the parameter list") ||
      !expect(TokKind::LBrace, "'{' beginning the kernel body"))
    return false;

  while (!at(TokKind::RBrace)) {
    if (at(TokKind::End))
      return fail("unexpected end of input inside a kernel");
    if (accept(TokKind::Dot)) {
      if (!parseDirective())
        return false;
      continue;
    }
    if (at(TokKind::Ident) && peek(1).Kind == TokKind::Colon) {
      std::string Label = take().Text;
      take(); // ':'
      if (!parseLabel(Label))
        return false;
      continue;
    }
    if (!parseInstruction())
      return false;
  }
  take(); // '}'
  return resolveFixups();
}

bool Parser::run() {
  while (!at(TokKind::End)) {
    if (!expect(TokKind::Dot, "'.kernel'"))
      return false;
    std::string Word;
    if (!expectIdent(Word))
      return false;
    if (Word == "version") {
      if (at(TokKind::Float) || at(TokKind::Int))
        take();
      continue;
    }
    if (Word != "kernel")
      return fail("expected '.kernel', found '.%s'", Word.c_str());
    if (!parseKernel())
      return false;
  }
  return true;
}

Expected<std::unique_ptr<Module>>
simtvec::parseModule(const std::string &Text) {
  Lexer Lex(Text);
  std::string LexError;
  if (!Lex.run(LexError))
    return Status::error(LexError);
  auto M = std::make_unique<Module>();
  Parser P(Lex.tokens(), *M);
  if (!P.run())
    return Status::error(P.error());
  return M;
}

std::unique_ptr<Module> simtvec::parseModuleOrDie(const std::string &Text) {
  auto MOrErr = parseModule(Text);
  if (!MOrErr) {
    std::fprintf(stderr, "SVIR parse error: %s\n",
                 MOrErr.status().message().c_str());
    std::abort();
  }
  std::unique_ptr<Module> M = MOrErr.take();
  if (Status E = verifyModule(*M)) {
    std::fprintf(stderr, "SVIR verifier error: %s\n", E.message().c_str());
    std::abort();
  }
  return M;
}
