//===- support/Simd.cpp - SIMD engine-path selection ----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// SIMTVEC_SIMD parsing and SimdMode -> SimdPath resolution, on the shared
// support/Env.h knob parser (full-string match, one stderr warning for a
// rejected value, then the default behaviour).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Simd.h"

#include "simtvec/support/Env.h"

using namespace simtvec;

SimdMode simtvec::simdModeFromEnv() {
  static const SimdMode Cached = [] {
    static constexpr SimdMode Modes[] = {SimdMode::Auto, SimdMode::Vector,
                                         SimdMode::Scalar};
    if (auto I = env::choiceKnob("SIMTVEC_SIMD",
                                 {"auto", "vector", "scalar"}, "auto"))
      return Modes[*I];
    return SimdMode::Auto;
  }();
  return Cached;
}

SimdPath simtvec::resolveSimdPath(SimdMode Mode) {
  if (Mode == SimdMode::Auto)
    Mode = simdModeFromEnv();
  switch (Mode) {
  case SimdMode::Vector:
    return SimdPath::Vector;
  case SimdMode::Scalar:
    return SimdPath::Scalar;
  case SimdMode::Auto:
    break;
  }
  // Auto default: the Simd kernels only pay off when they compile to real
  // vector instructions; without the native backend the old loops are the
  // better-known quantity.
  return simdNativeAvailable() ? SimdPath::Vector : SimdPath::Scalar;
}

const char *simtvec::simdPathName(SimdPath Path) {
  return Path == SimdPath::Vector ? "vector" : "scalar";
}

const char *simtvec::simdModeName(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Vector:
    return "vector";
  case SimdMode::Scalar:
    return "scalar";
  case SimdMode::Auto:
    break;
  }
  return "auto";
}
