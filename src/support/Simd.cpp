//===- support/Simd.cpp - SIMD engine-path selection ----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// SIMTVEC_SIMD env parsing and SimdMode -> SimdPath resolution. The env var
// follows the SIMTVEC_POOL_THREADS convention: full-string match only, one
// stderr warning for a rejected value, then the default behaviour.
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace simtvec;

SimdMode simtvec::simdModeFromEnv() {
  static const SimdMode Cached = [] {
    const char *Env = std::getenv("SIMTVEC_SIMD");
    if (!Env || !*Env)
      return SimdMode::Auto;
    if (std::strcmp(Env, "auto") == 0)
      return SimdMode::Auto;
    if (std::strcmp(Env, "vector") == 0)
      return SimdMode::Vector;
    if (std::strcmp(Env, "scalar") == 0)
      return SimdMode::Scalar;
    std::fprintf(stderr,
                 "simtvec: ignoring invalid SIMTVEC_SIMD='%s' (expected "
                 "auto|vector|scalar); using auto\n",
                 Env);
    return SimdMode::Auto;
  }();
  return Cached;
}

SimdPath simtvec::resolveSimdPath(SimdMode Mode) {
  if (Mode == SimdMode::Auto)
    Mode = simdModeFromEnv();
  switch (Mode) {
  case SimdMode::Vector:
    return SimdPath::Vector;
  case SimdMode::Scalar:
    return SimdPath::Scalar;
  case SimdMode::Auto:
    break;
  }
  // Auto default: the Simd kernels only pay off when they compile to real
  // vector instructions; without the native backend the old loops are the
  // better-known quantity.
  return simdNativeAvailable() ? SimdPath::Vector : SimdPath::Scalar;
}

const char *simtvec::simdPathName(SimdPath Path) {
  return Path == SimdPath::Vector ? "vector" : "scalar";
}

const char *simtvec::simdModeName(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Vector:
    return "vector";
  case SimdMode::Scalar:
    return "scalar";
  case SimdMode::Auto:
    break;
  }
  return "auto";
}
