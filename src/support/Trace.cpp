//===- support/Trace.cpp - Structured tracing & metrics -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Buffer protocol (the part TSan cares about): each thread owns one
// ThreadBuffer. Slots are written only by the owner and only once per
// session (overflow drops the new event rather than recycling a slot), and
// each write is published by a release-store of the write index; readers
// acquire the index and touch only slots below it. Session reuse is
// owner-side: a thread notices the bumped session epoch at its next record
// and resets its own indices — no foreign thread ever writes a buffer.
// Buffers are leaked on thread exit (they are few: pool workers persist,
// and a collector may still read them after the thread died).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Trace.h"

#include "simtvec/support/Env.h"
#include "simtvec/support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

using namespace simtvec;

namespace {

uint64_t steadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's event buffer. Single producer (the owning thread); any
/// thread may read the published prefix.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t Tid, size_t Cap)
      : Tid(Tid), Cap(Cap), Slots(new trace::Event[Cap]) {}

  const uint32_t Tid;
  const size_t Cap;
  std::unique_ptr<trace::Event[]> Slots;
  std::atomic<uint64_t> Write{0};   ///< published events this session
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> Epoch{0};   ///< session the contents belong to
};

struct TraceGlobals {
  std::mutex M; ///< guards Buffers, NextTid, Interned
  std::vector<ThreadBuffer *> Buffers;
  uint32_t NextTid = 1;
  std::set<std::string> Interned;

  std::atomic<uint64_t> SessionEpoch{0};
  std::atomic<uint64_t> SessionStartNs{0};
  std::atomic<size_t> Capacity{size_t{1} << 15};
};

TraceGlobals &globals() {
  // Leaked: collectors and late pool-thread records may run during static
  // destruction otherwise.
  static TraceGlobals *G = new TraceGlobals();
  return *G;
}

ThreadBuffer &localBuffer() {
  thread_local ThreadBuffer *TLB = nullptr;
  if (!TLB) {
    TraceGlobals &G = globals();
    std::lock_guard<std::mutex> Lock(G.M);
    TLB = new ThreadBuffer(G.NextTid++, G.Capacity.load());
    G.Buffers.push_back(TLB);
  }
  return *TLB;
}

/// Reads SIMTVEC_TRACE / SIMTVEC_TRACE_BUFFER once at process start, via
/// the shared support/Env.h knob parser.
struct EnvInit {
  EnvInit() {
    if (auto V = env::intKnob("SIMTVEC_TRACE_BUFFER", 64, 1ll << 24,
                              "the default capacity"))
      globals().Capacity.store(static_cast<size_t>(*V));
    if (env::boolKnob("SIMTVEC_TRACE"))
      trace::startSession();
  }
} TheEnvInit;

void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
    } else {
      Out += C;
    }
  }
}

} // namespace

namespace simtvec {
namespace trace {
namespace detail {

std::atomic<bool> EnabledFlag{false};

uint64_t sessionNanos() {
  return steadyNanos() - globals().SessionStartNs.load(std::memory_order_relaxed);
}

void record(const Event &E) {
  ThreadBuffer &B = localBuffer();
  TraceGlobals &G = globals();
  uint64_t Epoch = G.SessionEpoch.load(std::memory_order_acquire);
  if (B.Epoch.load(std::memory_order_relaxed) != Epoch) {
    // New session since this thread last recorded: owner-side reset. The
    // previous session's collect() has completed (sessions are sequential),
    // so recycling the slots races with nobody.
    B.Write.store(0, std::memory_order_relaxed);
    B.Dropped.store(0, std::memory_order_relaxed);
    B.Epoch.store(Epoch, std::memory_order_release);
  }
  uint64_t Idx = B.Write.load(std::memory_order_relaxed);
  if (Idx >= B.Cap) {
    B.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B.Slots[Idx] = E;
  B.Write.store(Idx + 1, std::memory_order_release);
}

} // namespace detail

void startSession() {
  TraceGlobals &G = globals();
  G.SessionStartNs.store(steadyNanos(), std::memory_order_relaxed);
  G.SessionEpoch.fetch_add(1, std::memory_order_release);
  detail::EnabledFlag.store(true, std::memory_order_release);
}

void endSession() {
  detail::EnabledFlag.store(false, std::memory_order_release);
}

const char *intern(const std::string &S) {
  TraceGlobals &G = globals();
  std::lock_guard<std::mutex> Lock(G.M);
  return G.Interned.insert(S).first->c_str();
}

size_t bufferCapacity() { return globals().Capacity.load(); }

void Span::finish() {
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = Start - 1;
  uint64_t End = detail::sessionNanos();
  E.Dur = End > E.Ts ? End - E.Ts : 0;
  E.Ph = Kind::Span;
  E.A0 = A0;
  E.A1 = A1;
  E.K0 = K0;
  E.K1 = K1;
  E.SK = SK;
  E.SV = SV;
  detail::record(E);
}

std::vector<ThreadEvents> collect() {
  TraceGlobals &G = globals();
  std::vector<ThreadBuffer *> Buffers;
  {
    std::lock_guard<std::mutex> Lock(G.M);
    Buffers = G.Buffers;
  }
  uint64_t Epoch = G.SessionEpoch.load(std::memory_order_acquire);
  std::vector<ThreadEvents> Out;
  for (ThreadBuffer *B : Buffers) {
    if (B->Epoch.load(std::memory_order_acquire) != Epoch)
      continue; // never recorded in this session
    uint64_t N = B->Write.load(std::memory_order_acquire);
    ThreadEvents TE;
    TE.Tid = B->Tid;
    TE.Dropped = B->Dropped.load(std::memory_order_relaxed);
    TE.Events.assign(B->Slots.get(), B->Slots.get() + N);
    Out.push_back(std::move(TE));
  }
  return Out;
}

std::string toJson() {
  std::vector<ThreadEvents> All = collect();
  std::string Out;
  Out.reserve(1 << 16);
  Out += "{\"traceEvents\":[\n";
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"simtvec\"}}";
  uint64_t TotalDropped = 0;
  for (const ThreadEvents &TE : All) {
    TotalDropped += TE.Dropped;
    for (const Event &E : TE.Events) {
      Out += ",\n{\"name\":\"";
      appendEscaped(Out, E.Name);
      Out += "\",\"cat\":\"";
      appendEscaped(Out, E.Cat ? E.Cat : "default");
      const char *Ph = E.Ph == Kind::Span      ? "X"
                       : E.Ph == Kind::Counter ? "C"
                                               : "i";
      Out += formatString("\",\"ph\":\"%s\",\"ts\":%.3f", Ph,
                          static_cast<double>(E.Ts) / 1e3);
      if (E.Ph == Kind::Span)
        Out += formatString(",\"dur\":%.3f", static_cast<double>(E.Dur) / 1e3);
      if (E.Ph == Kind::Instant)
        Out += ",\"s\":\"t\"";
      Out += formatString(",\"pid\":1,\"tid\":%u", TE.Tid);
      if (E.K0 || E.SK) {
        Out += ",\"args\":{";
        bool First = true;
        if (E.K0) {
          Out += formatString("\"%s\":%llu", E.K0,
                              static_cast<unsigned long long>(E.A0));
          First = false;
        }
        if (E.K1) {
          if (!First)
            Out += ",";
          Out += formatString("\"%s\":%llu", E.K1,
                              static_cast<unsigned long long>(E.A1));
          First = false;
        }
        if (E.SK) {
          if (!First)
            Out += ",";
          Out += formatString("\"%s\":\"", E.SK);
          appendEscaped(Out, E.SV ? E.SV : "");
          Out += "\"";
        }
        Out += "}";
      }
      Out += "}";
    }
  }
  Out += formatString("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                      "\"tool\":\"simtvec\",\"droppedEvents\":%llu}}\n",
                      static_cast<unsigned long long>(TotalDropped));
  return Out;
}

Status writeJson(const std::string &Path) {
  std::string Json = toJson();
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Status::error(
        formatString("cannot open trace file '%s'", Path.c_str()));
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), Out);
  if (std::fclose(Out) != 0 || Written != Json.size())
    return Status::error(
        formatString("short write to trace file '%s'", Path.c_str()));
  return Status::success();
}

} // namespace trace

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

struct MetricsRegistry::Impl {
  mutable std::mutex M;
  // Node-based maps: counter addresses stay valid across inserts.
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> Counters;
  std::map<std::string, double> Gauges;
};

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  static Impl *I = new Impl(); // leaked, like the trace globals
  return *I;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

MetricsRegistry::Counter &MetricsRegistry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Counters.find(Name);
  if (It == I.Counters.end())
    It = I.Counters
             .emplace(Name, std::make_unique<std::atomic<uint64_t>>(0))
             .first;
  return *It->second;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  I.Gauges[Name] = Value;
}

uint64_t MetricsRegistry::Snapshot::counterValue(
    const std::string &Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return 0;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  Snapshot S;
  S.Counters.reserve(I.Counters.size());
  for (const auto &[Name, C] : I.Counters)
    S.Counters.emplace_back(Name, C->load(std::memory_order_relaxed));
  S.Gauges.assign(I.Gauges.begin(), I.Gauges.end());
  return S;
}

void MetricsRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  for (auto &[Name, C] : I.Counters)
    C->store(0, std::memory_order_relaxed);
  I.Gauges.clear();
}

} // namespace simtvec
