//===- support/Serialize.cpp - Binary serialization -----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Serialize.h"

#include "simtvec/support/Format.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <system_error>
#include <thread>

using namespace simtvec;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t simtvec::crc32(const void *Data, size_t Size) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = 0xFFFFFFFFu;
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

uint64_t simtvec::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  uint64_t H = Seed;
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

Expected<std::vector<uint8_t>>
simtvec::readFileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::error(formatString("cannot open '%s'", Path.c_str()));
  std::vector<uint8_t> Data;
  uint8_t Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Data.insert(Data.end(), Chunk, Chunk + N);
  bool Bad = std::ferror(F) != 0;
  std::fclose(F);
  if (Bad)
    return Status::error(formatString("read error on '%s'", Path.c_str()));
  return Data;
}

Status simtvec::writeFileAtomic(const std::string &Path, const void *Data,
                                size_t Size) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::path Target(Path);
  if (Target.has_parent_path()) {
    fs::create_directories(Target.parent_path(), EC);
    if (EC)
      return Status::error(formatString("cannot create directory '%s': %s",
                                        Target.parent_path().c_str(),
                                        EC.message().c_str()));
  }

  // Unique within the process and across processes sharing the directory:
  // pid + a process-wide counter.
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = formatString(
      "%s.tmp.%llu.%llu", Path.c_str(),
      static_cast<unsigned long long>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFFFF),
      static_cast<unsigned long long>(
          Counter.fetch_add(1, std::memory_order_relaxed)));

  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Status::error(formatString("cannot create '%s'", Tmp.c_str()));
  size_t Written = Size ? std::fwrite(Data, 1, Size, F) : 0;
  bool Bad = Written != Size || std::fflush(F) != 0;
  std::fclose(F);
  if (Bad) {
    std::remove(Tmp.c_str());
    return Status::error(formatString("write error on '%s'", Tmp.c_str()));
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::error(formatString("cannot publish '%s'", Path.c_str()));
  }
  return Status::success();
}
