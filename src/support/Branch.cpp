//===- support/Branch.cpp - Divergent-branch policy selection -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// SIMTVEC_BRANCH parsing and BranchMode resolution, on the shared
// support/Env.h knob parser (full-string match, one stderr warning for a
// rejected value, then the default behaviour).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Branch.h"

#include "simtvec/support/Env.h"

using namespace simtvec;

BranchMode simtvec::branchModeFromEnv() {
  static const BranchMode Cached = [] {
    static constexpr BranchMode Modes[] = {BranchMode::Pgo, BranchMode::Meld,
                                           BranchMode::Predicate,
                                           BranchMode::Yield};
    if (auto I = env::choiceKnob("SIMTVEC_BRANCH",
                                 {"auto", "meld", "predicate", "yield"},
                                 "yield"))
      return Modes[*I];
    return BranchMode::Yield;
  }();
  return Cached;
}

BranchMode simtvec::resolveBranchMode(BranchMode Mode) {
  if (Mode == BranchMode::Auto)
    Mode = branchModeFromEnv();
  return Mode;
}

const char *simtvec::branchModeName(BranchMode Mode) {
  switch (Mode) {
  case BranchMode::Pgo:
    return "auto";
  case BranchMode::Meld:
    return "meld";
  case BranchMode::Predicate:
    return "predicate";
  case BranchMode::Yield:
    return "yield";
  case BranchMode::Auto:
    break;
  }
  return "auto";
}
