//===- support/Jit.cpp - Execution-tier selection -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// SIMTVEC_JIT env parsing and JitMode resolution. The env var follows the
// SIMTVEC_SIMD convention: full-string match only, one stderr warning for a
// rejected value, then the default behaviour.
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Jit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace simtvec;

JitMode simtvec::jitModeFromEnv() {
  static const JitMode Cached = [] {
    const char *Env = std::getenv("SIMTVEC_JIT");
    if (!Env || !*Env)
      return JitMode::Auto;
    if (std::strcmp(Env, "auto") == 0)
      return JitMode::Auto;
    if (std::strcmp(Env, "native") == 0)
      return JitMode::Native;
    if (std::strcmp(Env, "interp") == 0)
      return JitMode::Interp;
    std::fprintf(stderr,
                 "simtvec: ignoring invalid SIMTVEC_JIT='%s' (expected "
                 "auto|native|interp); using auto\n",
                 Env);
    return JitMode::Auto;
  }();
  return Cached;
}

JitMode simtvec::resolveJitMode(JitMode Mode) {
  if (Mode == JitMode::Auto)
    Mode = jitModeFromEnv();
  return Mode;
}

const char *simtvec::jitModeName(JitMode Mode) {
  switch (Mode) {
  case JitMode::Native:
    return "native";
  case JitMode::Interp:
    return "interp";
  case JitMode::Auto:
    break;
  }
  return "auto";
}
