//===- support/Jit.cpp - Execution-tier selection -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// SIMTVEC_JIT parsing and JitMode resolution, on the shared support/Env.h
// knob parser (full-string match, one stderr warning for a rejected value,
// then the default behaviour).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Jit.h"

#include "simtvec/support/Env.h"

using namespace simtvec;

JitMode simtvec::jitModeFromEnv() {
  static const JitMode Cached = [] {
    static constexpr JitMode Modes[] = {JitMode::Auto, JitMode::Native,
                                        JitMode::Interp};
    if (auto I = env::choiceKnob("SIMTVEC_JIT", {"auto", "native", "interp"},
                                 "auto"))
      return Modes[*I];
    return JitMode::Auto;
  }();
  return Cached;
}

JitMode simtvec::resolveJitMode(JitMode Mode) {
  if (Mode == JitMode::Auto)
    Mode = jitModeFromEnv();
  return Mode;
}

const char *simtvec::jitModeName(JitMode Mode) {
  switch (Mode) {
  case JitMode::Native:
    return "native";
  case JitMode::Interp:
    return "interp";
  case JitMode::Auto:
    break;
  }
  return "auto";
}
