//===- support/Env.cpp - Environment knob parsing -------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/Env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace simtvec;

std::optional<long long> env::intKnob(const char *Name, long long Min,
                                      long long Max,
                                      const char *FallbackDesc) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  long long X = std::strtoll(V, &End, 10);
  if (End != V && *End == '\0' && errno != ERANGE && X >= Min && X <= Max)
    return X;
  std::fprintf(stderr,
               "simtvec: ignoring invalid %s='%s' (expected an integer in "
               "[%lld, %lld]); using %s\n",
               Name, V, Min, Max, FallbackDesc);
  return std::nullopt;
}

std::optional<size_t> env::choiceKnob(const char *Name,
                                      const std::vector<const char *> &Choices,
                                      const char *FallbackDesc) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return std::nullopt;
  for (size_t I = 0; I < Choices.size(); ++I)
    if (std::strcmp(V, Choices[I]) == 0)
      return I;
  std::string Expected;
  for (size_t I = 0; I < Choices.size(); ++I) {
    if (I)
      Expected += '|';
    Expected += Choices[I];
  }
  std::fprintf(stderr,
               "simtvec: ignoring invalid %s='%s' (expected %s); using %s\n",
               Name, V, Expected.c_str(), FallbackDesc);
  return std::nullopt;
}

bool env::boolKnob(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V && std::strcmp(V, "0") != 0;
}
