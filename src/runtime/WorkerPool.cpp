//===- WorkerPool.cpp - Persistent host worker pool -----------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/WorkerPool.h"

#include "simtvec/support/Env.h"
#include "simtvec/support/Trace.h"

#include <atomic>

namespace simtvec {

/// One in-flight parallelFor. Lives on the calling thread's stack; the pool
/// only holds a raw pointer while the job is listed. `Entered`/`Exited`
/// track how many threads are *inside* `Fn` or about to be, so the owner can
/// wait until no pool thread can still touch the job before returning (a
/// late worker may pick the job pointer, find it exhausted, and must finish
/// unregistering before the stack frame dies).
struct WorkerPool::Job {
  const std::function<void(unsigned)> &Fn;
  const unsigned N;
  std::atomic<unsigned> Next{0}; ///< next unclaimed index
  unsigned Done = 0;             ///< completed indices (pool mutex)
  unsigned Active = 0;           ///< threads currently working on the job
  bool Listed = true;            ///< still in WorkerPool::Jobs
  std::condition_variable DoneCV;

  Job(const std::function<void(unsigned)> &Fn, unsigned N) : Fn(Fn), N(N) {}
};

WorkerPool::WorkerPool(unsigned ThreadCount) {
  if (ThreadCount == 0) {
    ThreadCount = std::thread::hardware_concurrency();
    if (ThreadCount < 2)
      ThreadCount = 2;
  }
  NumThreads = ThreadCount;
  Threads.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
  // Any tasks still queued at shutdown are dropped; parallel jobs cannot
  // outlive their callers, and callers must not outlive the pool.
}

WorkerPool &WorkerPool::global() {
  static WorkerPool *Pool = [] {
    unsigned Count = 0;
    if (auto V = env::intKnob("SIMTVEC_POOL_THREADS", 1, 1024,
                              "hardware concurrency"))
      Count = static_cast<unsigned>(*V);
    // Leaked intentionally: worker threads may still be parked when static
    // destructors run; tearing the pool down then would race with any
    // thread_local arenas being destroyed on those workers.
    return new WorkerPool(Count);
  }();
  return *Pool;
}

WorkerPool::Job *WorkerPool::pickJobLocked() {
  for (Job *J : Jobs)
    if (J->Next.load(std::memory_order_relaxed) < J->N)
      return J;
  return nullptr;
}

void WorkerPool::unlistIfExhausted(Job *J) {
  if (!J->Listed)
    return;
  if (J->Next.load(std::memory_order_relaxed) < J->N)
    return;
  J->Listed = false;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (Jobs[I] == J) {
      Jobs[I] = Jobs.back();
      Jobs.pop_back();
      break;
    }
  }
}

void WorkerPool::parallelFor(unsigned N,
                             const std::function<void(unsigned)> &Fn) {
  if (N == 0)
    return;
  if (N == 1) {
    Fn(0);
    return;
  }

  trace::Span JobSpan("pool.parallel_for", "pool");
  JobSpan.arg("n", N);
  static MetricsRegistry::Counter &JobMetric =
      MetricsRegistry::global().counter("pool.jobs");
  JobMetric.fetch_add(1, std::memory_order_relaxed);

  Job J(Fn, N);
  {
    std::lock_guard<std::mutex> Lock(M);
    Jobs.push_back(&J);
    ++JobCount;
    J.Active = 1; // the caller
  }
  // Wake enough workers to cover the remaining indices.
  WorkCV.notify_all();

  // The caller claims indices too: the job completes even if every pool
  // thread is occupied (including by the code that called us).
  unsigned Claimed = 0;
  for (unsigned I = J.Next.fetch_add(1, std::memory_order_relaxed); I < N;
       I = J.Next.fetch_add(1, std::memory_order_relaxed)) {
    Fn(I);
    ++Claimed;
  }

  std::unique_lock<std::mutex> Lock(M);
  J.Done += Claimed;
  --J.Active;
  unlistIfExhausted(&J);
  J.DoneCV.wait(Lock, [&J] { return J.Done == J.N && J.Active == 0; });
}

void WorkerPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Tasks.push_back(std::move(Task));
    ++TaskCount;
  }
  static MetricsRegistry::Counter &TaskMetric =
      MetricsRegistry::global().counter("pool.tasks");
  TaskMetric.fetch_add(1, std::memory_order_relaxed);
  WorkCV.notify_one();
}

bool WorkerPool::idleLocked() const {
  return Jobs.empty() && Tasks.empty() && Parked == NumThreads;
}

void WorkerPool::drain() {
  trace::Span DrainSpan("pool.drain", "pool");
  std::unique_lock<std::mutex> Lock(M);
  IdleCV.wait(Lock, [this] { return idleLocked(); });
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return {JobCount, TaskCount, ParkCount, NumThreads - Parked};
}

void WorkerPool::workerMain() {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    Job *J = pickJobLocked();
    if (J) {
      ++J->Active;
      Lock.unlock();
      unsigned Claimed = 0;
      for (unsigned I = J->Next.fetch_add(1, std::memory_order_relaxed);
           I < J->N; I = J->Next.fetch_add(1, std::memory_order_relaxed)) {
        J->Fn(I);
        ++Claimed;
      }
      Lock.lock();
      J->Done += Claimed;
      --J->Active;
      unlistIfExhausted(J);
      if (J->Done == J->N && J->Active == 0)
        J->DoneCV.notify_all();
      continue;
    }
    if (!Tasks.empty()) {
      std::function<void()> Task = std::move(Tasks.front());
      Tasks.pop_front();
      Lock.unlock();
      {
        trace::Span TaskSpan("pool.task", "pool");
        Task();
      }
      Lock.lock();
      continue;
    }
    if (ShuttingDown)
      return;
    // Transition to parked. Park/wake are the pool's occupancy edges, so
    // this (already-idle) path also maintains the occupancy gauge and the
    // park/wake counters; none of it runs while the pool is saturated.
    ++Parked;
    ++ParkCount;
    noteOccupancy();
    if (idleLocked())
      IdleCV.notify_all(); // a drain() may be waiting for full quiescence
    trace::instant("pool.park", "pool", NumThreads - Parked, "busy");
    WorkCV.wait(Lock);
    --Parked;
    noteOccupancy();
    trace::instant("pool.wake", "pool", NumThreads - Parked, "busy");
  }
}

void WorkerPool::noteOccupancy() {
  static MetricsRegistry::Counter &ParkMetric =
      MetricsRegistry::global().counter("pool.parks");
  // Called on every park *and* wake; parks alone are half the calls.
  ParkMetric.store(ParkCount, std::memory_order_relaxed);
  MetricsRegistry::global().setGauge(
      "pool.occupancy", static_cast<double>(NumThreads - Parked));
}

} // namespace simtvec
