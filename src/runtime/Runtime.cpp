//===- runtime/Runtime.cpp - Host-side API --------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/support/Format.h"

using namespace simtvec;

Device::Device(size_t GlobalBytes) : Arena(GlobalBytes) {}

uint64_t Device::alloc(size_t Bytes) {
  size_t Offset = (Break + 15) / 16 * 16;
  assert(Offset + Bytes <= Arena.size() && "device out of memory");
  Break = Offset + Bytes;
  return Offset;
}

void Device::copyToDevice(uint64_t Dst, const void *Src, size_t Bytes) {
  assert(Dst + Bytes <= Arena.size() && "copyToDevice out of range");
  std::memcpy(Arena.data() + Dst, Src, Bytes);
}

void Device::copyFromDevice(void *Dst, uint64_t Src, size_t Bytes) const {
  assert(Src + Bytes <= Arena.size() && "copyFromDevice out of range");
  std::memcpy(Dst, Arena.data() + Src, Bytes);
}

void Device::memset(uint64_t Dst, int Value, size_t Bytes) {
  assert(Dst + Bytes <= Arena.size() && "memset out of range");
  std::memset(Arena.data() + Dst, Value, Bytes);
}

Expected<std::unique_ptr<Program>>
Program::compile(const std::string &SvirText, const MachineModel &Machine) {
  auto MOrErr = parseModule(SvirText);
  if (!MOrErr)
    return MOrErr.status();
  std::unique_ptr<Module> M = MOrErr.take();
  if (Status E = verifyModule(*M))
    return E;

  auto P = std::unique_ptr<Program>(new Program());
  P->Machine = Machine;
  P->M = std::move(M);
  P->TC = std::make_unique<TranslationCache>(*P->M, Machine);
  return P;
}

Expected<LaunchStats> Program::launch(Device &Dev,
                                      const std::string &KernelName,
                                      Dim3 Grid, Dim3 Block,
                                      const ParamBuilder &Params,
                                      const LaunchOptions &Options) {
  LaunchConfig Config;
  Config.Machine = Machine;
  Config.MaxWarpSize = Options.MaxWarpSize;
  Config.Formation = Options.Formation;
  Config.ThreadInvariantElim = Options.ThreadInvariantElim;
  Config.UniformBranchOpt = Options.UniformBranchOpt;
  Config.UniformLoadOpt = Options.UniformLoadOpt;
  Config.Superinstructions = Options.Superinstructions;
  Config.Workers = Options.Workers;
  Config.UseOsThreads = Options.UseOsThreads;
  Config.UseReferenceInterp = Options.UseReferenceInterp;
  return launchKernel(*TC, KernelName, Grid, Block, Params.bytes(),
                      Dev.data(), Dev.size(), Dev.atomics(), Config);
}
