//===- runtime/Runtime.cpp - Host-side API --------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/runtime/Graph.h"
#include "simtvec/runtime/WorkerPool.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace simtvec;

Device::Device(size_t GlobalBytes) : Arena(GlobalBytes) {}

Expected<uint64_t> Device::tryAlloc(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(AllocM);
  size_t Offset = (Break + 15) / 16 * 16;
  if (Bytes > Arena.size() || Offset > Arena.size() - Bytes)
    return Status::error(formatString(
        "device out of memory: alloc of %zu bytes at break %zu exceeds the "
        "%zu-byte arena (%zu live allocations; Device::reset() releases "
        "them)",
        Bytes, Offset, Arena.size(), AllocCount));
  Break = Offset + Bytes;
  ++AllocCount;
  return static_cast<uint64_t>(Offset);
}

size_t Device::used() const {
  std::lock_guard<std::mutex> Lock(AllocM);
  return Break;
}

void Device::reset() {
  std::lock_guard<std::mutex> Lock(AllocM);
  Break = 16; // address 0..15 stays reserved
  AllocCount = 0;
}

Status Device::tryCopyToDevice(uint64_t Dst, const void *Src, size_t Bytes) {
  if (Dst > Arena.size() || Bytes > Arena.size() - Dst)
    return Status::error(formatString(
        "copyToDevice out of range: offset %llu + %zu bytes exceeds the "
        "%zu-byte arena",
        static_cast<unsigned long long>(Dst), Bytes, Arena.size()));
  std::memcpy(Arena.data() + Dst, Src, Bytes);
  return Status::success();
}

Status Device::tryCopyFromDevice(void *Dst, uint64_t Src,
                                 size_t Bytes) const {
  if (Src > Arena.size() || Bytes > Arena.size() - Src)
    return Status::error(formatString(
        "copyFromDevice out of range: offset %llu + %zu bytes exceeds the "
        "%zu-byte arena",
        static_cast<unsigned long long>(Src), Bytes, Arena.size()));
  std::memcpy(Dst, Arena.data() + Src, Bytes);
  return Status::success();
}

Status Device::tryMemset(uint64_t Dst, int Value, size_t Bytes) {
  if (Dst > Arena.size() || Bytes > Arena.size() - Dst)
    return Status::error(formatString(
        "memset out of range: offset %llu + %zu bytes exceeds the %zu-byte "
        "arena",
        static_cast<unsigned long long>(Dst), Bytes, Arena.size()));
  std::memset(Arena.data() + Dst, Value, Bytes);
  return Status::success();
}

namespace {
[[noreturn]] void dieOnDeviceError(const Status &E) {
  std::fprintf(stderr, "simtvec: %s\n", E.message().c_str());
  std::abort();
}
} // namespace

uint64_t Device::alloc(size_t Bytes) {
  auto R = tryAlloc(Bytes);
  if (!R)
    dieOnDeviceError(R.status());
  return *R;
}

void Device::copyToDevice(uint64_t Dst, const void *Src, size_t Bytes) {
  if (Status E = tryCopyToDevice(Dst, Src, Bytes); E.isError())
    dieOnDeviceError(E);
}

void Device::copyFromDevice(void *Dst, uint64_t Src, size_t Bytes) const {
  if (Status E = tryCopyFromDevice(Dst, Src, Bytes); E.isError())
    dieOnDeviceError(E);
}

void Device::memset(uint64_t Dst, int Value, size_t Bytes) {
  if (Status E = tryMemset(Dst, Value, Bytes); E.isError())
    dieOnDeviceError(E);
}

Expected<std::unique_ptr<Program>>
Program::compile(const std::string &SvirText, const MachineModel &Machine) {
  return compile(SvirText, Machine, SpecializationOptions::fromEnv());
}

Expected<std::unique_ptr<Program>>
Program::compile(const std::string &SvirText, const MachineModel &Machine,
                 SpecializationOptions Spec) {
  auto MOrErr = parseModule(SvirText);
  if (!MOrErr)
    return MOrErr.status();
  std::unique_ptr<Module> M = MOrErr.take();
  if (Status E = verifyModule(*M))
    return E;

  auto P = std::unique_ptr<Program>(new Program());
  P->Machine = Machine;
  P->M = std::move(M);
  P->Svc = std::make_unique<SpecializationService>(*P->M, Machine,
                                                   std::move(Spec));
  P->TC = std::make_unique<TranslationCache>(*P->M, Machine);
  P->TC->setSpecializationService(P->Svc.get());
  // Background JIT compiles run detached on the process worker pool, off
  // every launch's critical path (forced SIMTVEC_JIT=native bypasses this
  // and compiles synchronously in the service).
  P->Svc->setAsyncSubmit([](std::function<void()> F) {
    WorkerPool::global().submit(std::move(F));
  });
  return P;
}

Status Program::validateParams(const std::string &KernelName,
                               const Params &P) const {
  // rt.param_validate counts validation passes so graph tests can assert
  // that replays skip re-validation entirely (it runs once at instantiate).
  static MetricsRegistry::Counter &ValidateMetric =
      MetricsRegistry::global().counter("rt.param_validate");
  ValidateMetric.fetch_add(1, std::memory_order_relaxed);
  const Kernel *K = M->findKernel(KernelName);
  if (!K)
    return Status::success(); // the launch itself reports unknown kernels
  // The .param space doubles as constant memory: elements beyond the
  // declared signature are a legal trailing payload (atom tables, filter
  // taps) addressed via ld.param — only the declared prefix is validated.
  const std::vector<Param> &Sig = K->Params;
  const std::vector<Params::Element> &Got = P.elements();
  if (Got.size() < Sig.size())
    return Status::error(formatString(
        "kernel '%s' expects %zu parameters (%u parameter bytes), launch "
        "provided %zu (%zu bytes)",
        KernelName.c_str(), Sig.size(), K->ParamBytes, Got.size(),
        P.bytes().size()));
  for (size_t I = 0; I < Sig.size(); ++I) {
    const Param &Want = Sig[I];
    const Params::Element &Have = Got[I];
    // Same size and numeric family; signedness is interchangeable (SVIR
    // registers are bit patterns — u64 carries pointers, u32/s32 alias).
    if (Want.Ty.byteSize() != Have.Ty.byteSize() ||
        Want.Ty.isFloat() != Have.Ty.isFloat())
      return Status::error(formatString(
          "parameter %zu ('%s') of kernel '%s' has type %s, launch provided "
          "%s",
          I, Want.Name.c_str(), KernelName.c_str(), Want.Ty.str().c_str(),
          Have.Ty.str().c_str()));
    if (Want.Offset != Have.Offset)
      return Status::error(formatString(
          "parameter %zu ('%s') of kernel '%s' lives at offset %u, launch "
          "serialized it at offset %u (alignment mismatch)",
          I, Want.Name.c_str(), KernelName.c_str(), Want.Offset,
          Have.Offset));
  }
  return Status::success();
}

LaunchConfig Program::makeConfig(const LaunchOptions &Options) const {
  LaunchConfig Config;
  Config.Machine = Machine;
  Config.MaxWarpSize = Options.MaxWarpSize;
  Config.Formation = Options.Formation;
  Config.ThreadInvariantElim = Options.ThreadInvariantElim;
  Config.UniformBranchOpt = Options.UniformBranchOpt;
  Config.UniformLoadOpt = Options.UniformLoadOpt;
  Config.Superinstructions = Options.Superinstructions;
  Config.Workers = Options.Workers;
  Config.UseOsThreads = Options.UseOsThreads;
  Config.UseReferenceInterp = Options.UseReferenceInterp;
  Config.Simd = Options.Simd;
  Config.Jit = Options.Jit;
  if (Options.UsePersistentPool && Options.UseOsThreads)
    Config.ParallelFor = [](unsigned N,
                            const std::function<void(unsigned)> &Fn) {
      WorkerPool::global().parallelFor(N, Fn);
    };
  return Config;
}

LaunchFuture Program::launchAsync(Stream &S, Device &Dev,
                                  const std::string &KernelName, Dim3 Grid,
                                  Dim3 Block, const Params &P,
                                  const LaunchOptions &Options) {
  {
    // Stream capture: record the launch as a graph node instead of
    // executing it. Validation (and the width decision) happen at
    // Graph::instantiate; the returned future is empty — the launch's
    // result belongs to the replays, not the capture.
    detail::GraphNode N;
    N.K = detail::GraphNode::Kind::Launch;
    N.Dev = &Dev;
    N.KernelName = KernelName;
    N.Grid = Grid;
    N.Block = Block;
    N.P = P;
    N.Options = Options;
    if (detail::captureAppend(*S.S, std::move(N)))
      return LaunchFuture();
  }
  auto LS = std::make_shared<detail::LaunchState>();
  LaunchFuture F(LS);
  if (Options.Trace && !trace::enabled())
    trace::startSession();
  auto submitError = [&](Status E) {
    // Submission-time failure: never enqueued; reported through both the
    // future and the stream's deferred error.
    S.S->noteError(E);
    LS->fulfill(E);
    return F;
  };
  if (Status E = validateParams(KernelName, P); E.isError())
    return submitError(E);
  // Reject bad widths here, at submission, rather than as a deferred
  // stream error from the engine (which re-checks as defense in depth).
  // Auto ignores MaxWarpSize: the service only ever picks valid widths.
  bool Auto = Options.Policy == LaunchOptions::WidthPolicy::Auto;
  if (!Auto && (Options.MaxWarpSize < 1 || Options.MaxWarpSize > 8 ||
                (Options.MaxWarpSize & (Options.MaxWarpSize - 1)) != 0))
    return submitError(Status::error(formatString(
        "MaxWarpSize must be a power of two in {1,2,4,8}, got %u",
        Options.MaxWarpSize)));
  detail::StreamState *SS = S.S.get();
  // The op owns copies of everything whose lifetime ends at submission
  // (the param bytes, the kernel name, the config); the Device and this
  // Program must outlive the stream's pending work.
  S.S->enqueue([this, SS, LS, &Dev, KernelName, Grid, Block, Auto,
                BM = resolveBranchMode(Options.Branch), Bytes = P.bytes(),
                Config = makeConfig(Options)]() mutable -> detail::OpOutcome {
    // Width resolution happens at execution time, not submission: the
    // autotuner sees feedback from every launch ahead of this one in
    // stream order, so a burst of queued Auto launches still converges.
    if (Auto)
      Config.MaxWarpSize = Svc->chooseWidth(KernelName);
    // Branch-plan resolution mirrors the width decision: forced modes pin
    // every site, Pgo asks the service (explore under "" until committed).
    switch (BM) {
    case BranchMode::Meld:
      Config.BranchPlan = "m";
      break;
    case BranchMode::Predicate:
      Config.BranchPlan = "p";
      break;
    case BranchMode::Pgo:
      Config.BranchPlan =
          Svc->chooseBranchPlan(KernelName, Config.MaxWarpSize);
      break;
    default:
      break; // Yield: the legacy "" plan
    }
    // The PGO trial scores candidate plans on measured wall seconds, not
    // modeled cycles: melding trades modeled yield round-trips for real
    // guarded over-execution, and the two disagree on irregular kernels.
    const auto T0 = std::chrono::steady_clock::now();
    Expected<LaunchStats> R =
        launchKernel(*TC, KernelName, Grid, Block, Bytes, Dev.data(),
                     Dev.size(), Dev.atomics(), Config);
    const double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (R && Auto)
      Svc->recordSample(KernelName, Config.MaxWarpSize, R->MaxWorkerCycles,
                        static_cast<uint64_t>(Grid.count()) * Block.count());
    // Width-1 warps cannot diverge, so their launches carry no evidence
    // about branch behaviour; feeding them to the profile would burn
    // trial launches on blind samples and commit an all-yield plan for
    // kernels that diverge at every real width (the service re-checks).
    if (R && BM == BranchMode::Pgo && Config.MaxWarpSize > 1)
      Svc->recordBranchSample(KernelName, Config.MaxWarpSize,
                              Config.BranchPlan, R->SiteBranchYields, Secs);
    if (!R)
      SS->noteError(R.status());
    LS->fulfill(std::move(R));
    return detail::OpOutcome::Done;
  });
  return F;
}

Expected<LaunchStats> Program::launch(Device &Dev,
                                      const std::string &KernelName,
                                      Dim3 Grid, Dim3 Block, const Params &P,
                                      const LaunchOptions &Options) {
  // A thin wrapper over the asynchronous path: one ephemeral stream, one
  // launch op, one synchronize. The synchronizing thread claims the drain
  // and runs the launch inline (see Stream::synchronize), so this costs a
  // queue round-trip, not a thread hand-off, over calling the engine
  // directly — and the LaunchStats are bit-identical to a direct call.
  Stream S;
  LaunchFuture F = launchAsync(S, Dev, KernelName, Grid, Block, P, Options);
  S.synchronize();
  return F.get();
}

Expected<LaunchStats> Program::launchTraced(const std::string &TracePath,
                                            Device &Dev,
                                            const std::string &KernelName,
                                            Dim3 Grid, Dim3 Block,
                                            const Params &P,
                                            LaunchOptions Options) {
  Options.Trace = true;
  trace::startSession();
  Expected<LaunchStats> R = launch(Dev, KernelName, Grid, Block, P, Options);
  // End before export: late stream/pool events can no longer record, so the
  // write-out races with nothing.
  trace::endSession();
  if (Status E = trace::writeJson(TracePath); E.isError() && R)
    return E;
  return R;
}
