//===- runtime/Graph.cpp - Kernel launch graphs ---------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Instantiation is where every per-launch cost a stream pays on each
// submission is paid exactly once: parameter validation, width commitment,
// geometry checks, layout lookup, translation-cache gets, native-tier
// compile requests, and the topological schedule. Replay then walks the
// precomputed schedule inside a single stream op; the only per-node
// bookkeeping left is an atomic dependency countdown.
//
// Locking: the graph mutex is taken only after any stream mutex is
// released (mirroring the stream/event discipline in Stream.cpp); a stream
// mutex and an event mutex are still never held together.
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Graph.h"

#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"

#include <algorithm>
#include <atomic>
#include <bit>

using namespace simtvec;
using namespace simtvec::detail;

//===----------------------------------------------------------------------===//
// Capture hooks (called from Stream.cpp / Runtime.cpp submission paths)
//===----------------------------------------------------------------------===//

bool simtvec::detail::captureAppend(StreamState &SS, GraphNode N) {
  std::shared_ptr<GraphState> G;
  size_t Tail;
  std::vector<size_t> Waits;
  {
    std::lock_guard<std::mutex> Lock(SS.M);
    if (!SS.Capture)
      return false;
    G = SS.Capture;
    Tail = SS.CaptureTail;
    Waits.swap(SS.PendingWaits);
  }
  if (Tail != static_cast<size_t>(-1))
    N.Deps.push_back(Tail);
  for (size_t W : Waits)
    N.Deps.push_back(W);
  size_t Id;
  {
    std::lock_guard<std::mutex> Lock(G->M);
    Id = G->Nodes.size();
    G->Nodes.push_back(std::move(N));
  }
  std::lock_guard<std::mutex> Lock(SS.M);
  SS.CaptureTail = Id;
  return true;
}

bool simtvec::detail::captureMarkEvent(StreamState &SS, EventState &ES) {
  std::shared_ptr<GraphState> G;
  size_t Tail;
  {
    std::lock_guard<std::mutex> Lock(SS.M);
    if (!SS.Capture)
      return false;
    G = SS.Capture;
    Tail = SS.CaptureTail;
  }
  std::lock_guard<std::mutex> Lock(ES.M);
  ES.CaptureGraph = G;
  ES.CaptureNode = Tail;
  return true;
}

bool simtvec::detail::captureWaitEvent(StreamState &SS, EventState &ES) {
  std::shared_ptr<GraphState> G;
  {
    std::lock_guard<std::mutex> Lock(SS.M);
    if (!SS.Capture)
      return false;
    G = SS.Capture;
  }
  std::shared_ptr<GraphState> EvGraph;
  size_t EvNode;
  {
    std::lock_guard<std::mutex> Lock(ES.M);
    EvGraph = ES.CaptureGraph.lock();
    EvNode = ES.CaptureNode;
  }
  if (EvGraph != G) {
    // A captured stream may only join on points recorded in the same
    // capture; anything else has no meaning inside a graph.
    std::lock_guard<std::mutex> Lock(G->M);
    if (!G->Err.isError())
      G->Err = Status::error(
          "waitEvent during capture on an event not recorded in this "
          "capture");
    return true;
  }
  if (EvNode != static_cast<size_t>(-1)) {
    std::lock_guard<std::mutex> Lock(SS.M);
    SS.PendingWaits.push_back(EvNode);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Stream capture entry points
//===----------------------------------------------------------------------===//

Status Stream::beginCapture(Graph &G) {
  {
    std::lock_guard<std::mutex> Lock(S->M);
    if (S->Capture)
      return Status::error("stream is already capturing");
    S->Capture = G.G;
    S->CaptureTail = static_cast<size_t>(-1);
    S->PendingWaits.clear();
  }
  std::lock_guard<std::mutex> Lock(G.G->M);
  ++G.G->ActiveCaptures;
  return Status::success();
}

Status Stream::endCapture() {
  std::shared_ptr<GraphState> G;
  {
    std::lock_guard<std::mutex> Lock(S->M);
    if (!S->Capture)
      return Status::error("endCapture without an active capture");
    G = std::move(S->Capture);
    S->Capture = nullptr;
    S->CaptureTail = static_cast<size_t>(-1);
    S->PendingWaits.clear();
  }
  std::lock_guard<std::mutex> Lock(G->M);
  --G->ActiveCaptures;
  return G->Err;
}

bool Stream::capturing() const {
  std::lock_guard<std::mutex> Lock(S->M);
  return S->Capture != nullptr;
}

//===----------------------------------------------------------------------===//
// Graph builder
//===----------------------------------------------------------------------===//

Graph::Graph() : G(std::make_shared<GraphState>()) {}

Graph::NodeId Graph::addLaunch(Device &Dev, std::string KernelName, Dim3 Grid,
                               Dim3 Block, Params P, LaunchOptions Options) {
  GraphNode N;
  N.K = GraphNode::Kind::Launch;
  N.Dev = &Dev;
  N.KernelName = std::move(KernelName);
  N.Grid = Grid;
  N.Block = Block;
  N.P = std::move(P);
  N.Options = Options;
  std::lock_guard<std::mutex> Lock(G->M);
  G->Nodes.push_back(std::move(N));
  return G->Nodes.size() - 1;
}

Graph::NodeId Graph::addCopyToDevice(Device &Dev, uint64_t Dst,
                                     const void *Src, size_t Bytes) {
  GraphNode N;
  N.K = GraphNode::Kind::CopyToDevice;
  N.Dev = &Dev;
  N.DevAddr = Dst;
  N.HostSrc = Src;
  N.Bytes = Bytes;
  std::lock_guard<std::mutex> Lock(G->M);
  G->Nodes.push_back(std::move(N));
  return G->Nodes.size() - 1;
}

Graph::NodeId Graph::addCopyFromDevice(Device &Dev, void *Dst, uint64_t Src,
                                       size_t Bytes) {
  GraphNode N;
  N.K = GraphNode::Kind::CopyFromDevice;
  N.Dev = &Dev;
  N.DevAddr = Src;
  N.HostDst = Dst;
  N.Bytes = Bytes;
  std::lock_guard<std::mutex> Lock(G->M);
  G->Nodes.push_back(std::move(N));
  return G->Nodes.size() - 1;
}

Status Graph::addDependency(NodeId Before, NodeId After) {
  std::lock_guard<std::mutex> Lock(G->M);
  if (Before >= G->Nodes.size() || After >= G->Nodes.size())
    return Status::error(formatString(
        "addDependency(%zu, %zu): graph has %zu nodes", Before, After,
        G->Nodes.size()));
  if (Before == After)
    return Status::error(
        formatString("addDependency(%zu, %zu): a node cannot depend on "
                     "itself",
                     Before, After));
  G->Nodes[After].Deps.push_back(Before);
  return Status::success();
}

size_t Graph::size() const {
  std::lock_guard<std::mutex> Lock(G->M);
  return G->Nodes.size();
}

//===----------------------------------------------------------------------===//
// Instantiation
//===----------------------------------------------------------------------===//

namespace simtvec {
namespace detail {

/// One fully resolved node of an instantiated graph.
struct GraphExecNode {
  GraphNode::Kind K = GraphNode::Kind::Launch;
  Device *Dev = nullptr;

  PreparedLaunch PL; ///< launch nodes only

  uint64_t DevAddr = 0;
  const void *HostSrc = nullptr;
  void *HostDst = nullptr;
  size_t Bytes = 0;

  std::vector<uint32_t> Succs;
  uint32_t InitialDeps = 0;
  /// Index into the per-replay futures vector (launch nodes only).
  size_t LaunchIndex = static_cast<size_t>(-1);
};

struct GraphExecImpl {
  Program *Prog = nullptr;
  std::vector<GraphExecNode> Nodes;
  std::vector<uint32_t> Roots; ///< InitialDeps == 0, ascending
  size_t NumLaunches = 0;
  MetricsRegistry::Counter *Replays = nullptr;
};

} // namespace detail
} // namespace simtvec

Expected<GraphExec> Graph::instantiate(Program &Prog,
                                       const GraphInstantiateOptions &O) const {
  trace::Span InstSpan("graph.instantiate", "graph");

  std::vector<GraphNode> Nodes;
  {
    std::lock_guard<std::mutex> Lock(G->M);
    if (G->ActiveCaptures > 0)
      return Status::error(
          "cannot instantiate a graph while a stream capture into it is "
          "active");
    if (G->Err.isError())
      return G->Err;
    Nodes = G->Nodes;
  }
  InstSpan.arg("nodes", Nodes.size());

  auto Impl = std::make_shared<GraphExecImpl>();
  Impl->Prog = &Prog;
  Impl->Nodes.resize(Nodes.size());

  for (size_t Id = 0; Id < Nodes.size(); ++Id) {
    const GraphNode &N = Nodes[Id];
    GraphExecNode &E = Impl->Nodes[Id];
    E.K = N.K;
    E.Dev = N.Dev;
    if (N.K != GraphNode::Kind::Launch) {
      E.DevAddr = N.DevAddr;
      E.HostSrc = N.HostSrc;
      E.HostDst = N.HostDst;
      E.Bytes = N.Bytes;
      continue;
    }

    // Everything an eager submission checks, checked here — with the same
    // diagnostics — so a graph never accepts a launch a stream would
    // reject.
    if (Status S = Prog.validateParams(N.KernelName, N.P); S.isError())
      return S;
    LaunchOptions Opt = N.Options;
    bool Auto = Opt.Policy == LaunchOptions::WidthPolicy::Auto;
    if (Auto) {
      // WidthPolicy::Auto commitment: the autotuner's current answer is
      // frozen into the executable. Replays are deliberately not fed back
      // as samples — a replayed graph must stay bit-identical run over
      // run, and exploration belongs to eager launches.
      Opt.MaxWarpSize = Prog.specialization().chooseWidth(N.KernelName);
      Opt.Policy = LaunchOptions::WidthPolicy::Fixed;
    } else if (Opt.MaxWarpSize < 1 || Opt.MaxWarpSize > 8 ||
               (Opt.MaxWarpSize & (Opt.MaxWarpSize - 1)) != 0) {
      return Status::error(formatString(
          "MaxWarpSize must be a power of two in {1,2,4,8}, got %u",
          Opt.MaxWarpSize));
    }
    LaunchConfig Config = Prog.makeConfig(Opt);
    // Branch-plan commitment mirrors the width commitment above: the
    // resolved plan freezes into the prepared launch, and replays are
    // never fed back into the divergence profile (a Pgo node still
    // exploring instantiates the legacy plan — its commitment belongs to
    // eager launches).
    switch (resolveBranchMode(Opt.Branch)) {
    case BranchMode::Meld:
      Config.BranchPlan = "m";
      break;
    case BranchMode::Predicate:
      Config.BranchPlan = "p";
      break;
    case BranchMode::Pgo:
      Config.BranchPlan = Prog.specialization().committedBranchPlan(
          N.KernelName, Config.MaxWarpSize);
      break;
    default:
      break; // Yield: the legacy "" plan
    }
    if (Status S = validateLaunchGeometry(Config, N.Grid, N.Block);
        S.isError())
      return S;

    TranslationCache &TC = Prog.translationCache();
    auto LayoutOrErr = TC.layoutFor(N.KernelName, Config.BranchPlan);
    if (!LayoutOrErr)
      return LayoutOrErr.status();
    if (LayoutOrErr->ParamBytes > N.P.bytes().size())
      return Status::error(formatString(
          "kernel '%s' expects %u parameter bytes, launch provided %zu",
          N.KernelName.c_str(), LayoutOrErr->ParamBytes, N.P.bytes().size()));

    PreparedLaunch &PL = E.PL;
    PL.KernelName = N.KernelName;
    PL.Grid = N.Grid;
    PL.Block = N.Block;
    PL.ParamBuf = N.P.bytes();
    PL.Config = Config;
    PL.Layout = *LayoutOrErr;
    PL.Workers = Config.Workers ? Config.Workers : Config.Machine.Cores;
    PL.Workers = static_cast<unsigned>(
        std::min<uint64_t>(PL.Workers, N.Grid.count()));

    // Resolve one executable per warp width now; replay's worker memos are
    // seeded from these, so a replay performs zero translation-cache
    // misses. The native tier is requested here too — forced-Native
    // compiles synchronously (as the eager memo miss would), Auto/tiered
    // warms in the background unless the instantiation asks for
    // synchronous warmup.
    const JitMode JitTier = Config.UseReferenceInterp
                                ? JitMode::Interp
                                : resolveJitMode(Config.Jit);
    PL.Execs.resize(
        static_cast<size_t>(std::countr_zero(Config.MaxWarpSize)) + 1);
    for (uint32_t W = 1; W <= Config.MaxWarpSize; W *= 2) {
      TranslationCache::Key Key{N.KernelName, W,
                                Config.ThreadInvariantElim,
                                Config.UniformBranchOpt,
                                Config.UniformLoadOpt,
                                Config.Superinstructions,
                                resolveSimdPath(Config.Simd),
                                Config.BranchPlan};
      auto ExecOrErr = TC.get(Key);
      if (!ExecOrErr)
        return ExecOrErr.status();
      PL.Execs[std::countr_zero(W)] = *ExecOrErr;
      if (JitTier != JitMode::Interp)
        if (SpecializationService *Svc = TC.specializationService())
          Svc->requestNative(Key, *ExecOrErr,
                             /*Sync=*/JitTier == JitMode::Native ||
                                 O.SyncNative);
    }
    E.LaunchIndex = Impl->NumLaunches++;
  }

  // Dependency edges: dedup, then build successor lists and ready counts.
  for (size_t Id = 0; Id < Nodes.size(); ++Id) {
    std::vector<size_t> &Deps = Nodes[Id].Deps;
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
    for (size_t D : Deps) {
      if (D >= Nodes.size())
        return Status::error(
            formatString("node %zu depends on unknown node %zu", Id, D));
      Impl->Nodes[D].Succs.push_back(static_cast<uint32_t>(Id));
    }
    Impl->Nodes[Id].InitialDeps = static_cast<uint32_t>(Deps.size());
  }

  // Kahn's algorithm: schedulability check (captured graphs are acyclic by
  // construction; builder graphs can express cycles via addDependency).
  {
    std::vector<uint32_t> Pending(Impl->Nodes.size());
    std::vector<uint32_t> Ready;
    for (size_t Id = 0; Id < Impl->Nodes.size(); ++Id) {
      Pending[Id] = Impl->Nodes[Id].InitialDeps;
      if (Pending[Id] == 0)
        Ready.push_back(static_cast<uint32_t>(Id));
    }
    Impl->Roots = Ready;
    size_t Seen = 0;
    for (size_t Head = 0; Head < Ready.size(); ++Head) {
      ++Seen;
      for (uint32_t Succ : Impl->Nodes[Ready[Head]].Succs)
        if (--Pending[Succ] == 0)
          Ready.push_back(Succ);
    }
    if (Seen != Impl->Nodes.size())
      return Status::error(formatString(
          "graph contains a dependency cycle (%zu of %zu nodes "
          "schedulable)",
          Seen, Impl->Nodes.size()));
  }

  Impl->Replays = &MetricsRegistry::global().counter("graph.replays");
  return GraphExec(std::move(Impl));
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

size_t GraphExec::size() const { return I ? I->Nodes.size() : 0; }

namespace {

/// Executes the whole DAG inside one stream op. Single-threaded walk of the
/// precomputed schedule: a FIFO ready queue seeded with the roots, each
/// completed node decrementing its successors' pending counts. Node errors
/// defer exactly like eager stream ops — noted on the stream, delivered
/// through the node's future, and the remaining nodes still run.
void replayGraph(const GraphExecImpl &Impl, StreamState &SS,
                 const std::vector<std::shared_ptr<LaunchState>> &States) {
  trace::Span ReplaySpan("graph.replay", "graph");
  ReplaySpan.arg("nodes", Impl.Nodes.size());
  Impl.Replays->fetch_add(1, std::memory_order_relaxed);

  const size_t N = Impl.Nodes.size();
  auto Pending = std::make_unique<std::atomic<uint32_t>[]>(N);
  for (size_t Id = 0; Id < N; ++Id)
    Pending[Id].store(Impl.Nodes[Id].InitialDeps, std::memory_order_relaxed);

  std::vector<uint32_t> Ready;
  Ready.reserve(N);
  Ready.assign(Impl.Roots.begin(), Impl.Roots.end());
  for (size_t Head = 0; Head < Ready.size(); ++Head) {
    const GraphExecNode &Node = Impl.Nodes[Ready[Head]];
    switch (Node.K) {
    case GraphNode::Kind::Launch: {
      Expected<LaunchStats> R =
          launchPrepared(Impl.Prog->translationCache(), Node.PL,
                         Node.Dev->data(), Node.Dev->size(),
                         Node.Dev->atomics());
      if (!R)
        SS.noteError(R.status());
      States[Node.LaunchIndex]->fulfill(std::move(R));
      break;
    }
    case GraphNode::Kind::CopyToDevice:
      if (Status E =
              Node.Dev->tryCopyToDevice(Node.DevAddr, Node.HostSrc,
                                        Node.Bytes);
          E.isError())
        SS.noteError(E);
      break;
    case GraphNode::Kind::CopyFromDevice:
      if (Status E = static_cast<const Device *>(Node.Dev)
                         ->tryCopyFromDevice(Node.HostDst, Node.DevAddr,
                                             Node.Bytes);
          E.isError())
        SS.noteError(E);
      break;
    }
    for (uint32_t Succ : Node.Succs)
      if (Pending[Succ].fetch_sub(1, std::memory_order_acq_rel) == 1)
        Ready.push_back(Succ);
  }
}

} // namespace

std::vector<LaunchFuture> GraphExec::launch(Stream &St) const {
  std::vector<LaunchFuture> Futures;
  if (!I)
    return Futures;
  // Replaying into a capture is not supported (a graph is already the
  // captured form); invalidate the capture rather than silently nesting.
  {
    std::lock_guard<std::mutex> Lock(St.S->M);
    if (St.S->Capture) {
      std::shared_ptr<GraphState> G = St.S->Capture;
      std::lock_guard<std::mutex> GLock(G->M);
      if (!G->Err.isError())
        G->Err = Status::error(
            "GraphExec::launch on a capturing stream is not supported");
      return Futures;
    }
  }
  auto States =
      std::make_shared<std::vector<std::shared_ptr<detail::LaunchState>>>();
  States->reserve(I->NumLaunches);
  Futures.reserve(I->NumLaunches);
  for (size_t K = 0; K < I->NumLaunches; ++K) {
    auto LS = std::make_shared<detail::LaunchState>();
    States->push_back(LS);
    Futures.push_back(LaunchFuture(LS));
  }
  detail::StreamState *SS = St.S.get();
  St.S->enqueue([Impl = I, SS, States]() -> detail::OpOutcome {
    replayGraph(*Impl, *SS, *States);
    return detail::OpOutcome::Done;
  });
  return Futures;
}
