//===- runtime/Stream.cpp - Asynchronous streams & events -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Locking discipline: a stream's mutex and an event's mutex are never held
// at the same time. The event-wait op registers its continuation under the
// event mutex, releases it, then takes the stream mutex to park; the
// firing-vs-parking race is resolved by StreamState::ResumeSignal (see
// resume()). Ops themselves run with no stream lock held; the drain loop's
// lock/unlock around each op gives consecutive ops of one stream a
// release/acquire chain, so in-order streams are data-race-free even when
// every op runs on a different pool thread.
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Stream.h"

#include "simtvec/runtime/Graph.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/runtime/WorkerPool.h"
#include "simtvec/support/Trace.h"

using namespace simtvec;
using namespace simtvec::detail;

namespace {
/// Stable-ish id for trace events: the state object's address. Good enough
/// to correlate one stream's submit/run/complete events within a session.
uint64_t streamId(const StreamState *S) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(S));
}
} // namespace

//===----------------------------------------------------------------------===//
// StreamState
//===----------------------------------------------------------------------===//

void StreamState::enqueue(std::function<OpOutcome()> Op) {
  bool Submit = false;
  size_t Depth = 0;
  {
    std::lock_guard<std::mutex> Lock(M);
    Ops.push_back(std::move(Op));
    Depth = Ops.size();
    if (State == Drain::Idle) {
      State = Drain::Scheduled;
      Submit = true;
    }
  }
  trace::instant("stream.submit", "stream", streamId(this), "stream", Depth,
                 "depth");
  if (Submit) {
    auto Self = shared_from_this();
    WorkerPool::global().submit([Self] { Self->tryClaimAndDrain(); });
  }
}

void StreamState::tryClaimAndDrain() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (State != Drain::Scheduled)
      return; // someone else (a helping synchronizer) already claimed it
    State = Drain::Running;
  }
  // Scheduled -> Running: this pool task took the drain token. (The no-op
  // path above stays trace-free: a late task must not record into a
  // session that may have been reset after the stream went idle.)
  trace::instant("stream.claim", "stream", streamId(this), "stream");
  drainLoop();
}

void StreamState::drainLoop() {
  for (;;) {
    std::function<OpOutcome()> Op;
    {
      std::lock_guard<std::mutex> Lock(M);
      assert(State == Drain::Running && "drainLoop without the token");
      if (Ops.empty()) {
        State = Drain::Idle;
        CV.notify_all();
        trace::instant("stream.idle", "stream", streamId(this), "stream");
        return;
      }
      // Copied, not popped: a Blocked op stays at the front and re-runs
      // (now trivially satisfied) when the event re-arms the stream.
      Op = Ops.front();
    }
    OpOutcome R;
    {
      trace::Span OpSpan("stream.op", "stream");
      OpSpan.arg("stream", streamId(this));
      R = Op();
      OpSpan.arg("outcome", static_cast<uint64_t>(R));
    }
    if (R == OpOutcome::Blocked) {
      trace::instant("stream.blocked", "stream", streamId(this), "stream");
      return; // the op parked the stream (State == Blocked)
    }
    if (R == OpOutcome::Done) {
      std::lock_guard<std::mutex> Lock(M);
      Ops.pop_front();
    }
    // Retry: re-run the same op.
  }
}

void StreamState::resume() {
  std::unique_lock<std::mutex> Lock(M);
  if (State == Drain::Blocked) {
    State = Drain::Scheduled;
    CV.notify_all(); // a synchronizer may claim instead of the pool task
    Lock.unlock();
    trace::instant("stream.resume", "stream", streamId(this), "stream");
    auto Self = shared_from_this();
    WorkerPool::global().submit([Self] { Self->tryClaimAndDrain(); });
    return;
  }
  if (State == Drain::Running) {
    // The waiting op registered its continuation but has not parked yet:
    // tell it the event already fired.
    ResumeSignal = true;
  }
  // Idle / Scheduled: the next drain will re-run the wait op and observe
  // the event as fired.
}

void StreamState::noteError(const Status &E) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Deferred.isError())
    Deferred = E;
}

//===----------------------------------------------------------------------===//
// EventState / LaunchState
//===----------------------------------------------------------------------===//

void EventState::fire(Status StreamErr) {
  std::vector<std::function<void()>> Ready;
  {
    std::lock_guard<std::mutex> Lock(M);
    Fired = true;
    Err = std::move(StreamErr);
    Ready.swap(Continuations);
    CV.notify_all();
  }
  for (auto &C : Ready)
    C(); // takes stream mutexes; the event mutex is already released
}

void LaunchState::fulfill(Expected<LaunchStats> R) {
  std::lock_guard<std::mutex> Lock(M);
  assert(!Result && "launch fulfilled twice");
  Result.emplace(std::move(R));
  CV.notify_all();
}

//===----------------------------------------------------------------------===//
// LaunchFuture
//===----------------------------------------------------------------------===//

bool LaunchFuture::ready() const {
  if (!S)
    return true;
  std::lock_guard<std::mutex> Lock(S->M);
  return S->Result.has_value();
}

Status LaunchFuture::wait() const {
  auto R = get();
  return R ? Status::success() : R.status();
}

Expected<LaunchStats> LaunchFuture::get() const {
  if (!S)
    return Status::error("waiting on an empty LaunchFuture");
  std::unique_lock<std::mutex> Lock(S->M);
  S->CV.wait(Lock, [this] { return S->Result.has_value(); });
  return *S->Result;
}

//===----------------------------------------------------------------------===//
// Stream
//===----------------------------------------------------------------------===//

Stream::Stream() : S(std::make_shared<StreamState>()) {}

Stream::~Stream() { synchronize(); }

Status Stream::synchronize() {
  StreamState &SS = *S;
  std::unique_lock<std::mutex> Lock(SS.M);
  if (SS.Capture) {
    // Synchronizing a capturing stream is a capture error (there is
    // nothing to wait for — nothing was enqueued); it invalidates the
    // capture so a later instantiate fails rather than silently missing
    // the ops submitted so far.
    std::shared_ptr<GraphState> G = std::move(SS.Capture);
    SS.Capture = nullptr;
    SS.CaptureTail = static_cast<size_t>(-1);
    SS.PendingWaits.clear();
    Lock.unlock();
    Status E = Status::error("synchronize on a capturing stream "
                             "invalidates the capture");
    {
      std::lock_guard<std::mutex> GLock(G->M);
      --G->ActiveCaptures;
      if (!G->Err.isError())
        G->Err = E;
    }
    return E;
  }
  for (;;) {
    if (SS.State == StreamState::Drain::Idle && SS.Ops.empty()) {
      Status E = SS.Deferred;
      SS.Deferred = Status::success();
      return E;
    }
    if (SS.State == StreamState::Drain::Scheduled) {
      // Help: claim the drain and run the ops on this thread instead of
      // waiting for a pool worker (makes blocking launches ~free).
      SS.State = StreamState::Drain::Running;
      Lock.unlock();
      trace::instant("stream.claim", "stream", streamId(&SS), "stream");
      SS.drainLoop();
      Lock.lock();
      continue;
    }
    // Running on another thread, or Blocked on an event: wait for an Idle
    // or Blocked→Scheduled transition.
    SS.CV.wait(Lock);
  }
}

bool Stream::idle() const {
  std::lock_guard<std::mutex> Lock(S->M);
  return S->State == StreamState::Drain::Idle && S->Ops.empty();
}

void Stream::addCallback(std::function<void(const Status &)> Fn) {
  StreamState &SS = *S;
  {
    std::unique_lock<std::mutex> Lock(SS.M);
    if (SS.Capture) {
      // Host callbacks have no graph-node representation; trying to record
      // one is a capture error. Mirror synchronize(): detach and poison the
      // capture, then run the callback immediately so completion accounting
      // built on it can never hang on a misused stream.
      std::shared_ptr<GraphState> G = std::move(SS.Capture);
      SS.Capture = nullptr;
      SS.CaptureTail = static_cast<size_t>(-1);
      SS.PendingWaits.clear();
      Lock.unlock();
      Status E = Status::error("addCallback on a capturing stream "
                               "invalidates the capture");
      {
        std::lock_guard<std::mutex> GLock(G->M);
        --G->ActiveCaptures;
        if (!G->Err.isError())
          G->Err = E;
      }
      Fn(E);
      return;
    }
  }
  StreamState *SP = S.get();
  S->enqueue([SP, Fn = std::move(Fn)]() -> OpOutcome {
    Status Err = Status::success();
    {
      std::lock_guard<std::mutex> Lock(SP->M);
      Err = SP->Deferred; // snapshot, not cleared: synchronize() owns it
    }
    Fn(Err);
    return OpOutcome::Done;
  });
}

void Stream::waitEvent(Event &Ev) {
  if (captureWaitEvent(*S, *Ev.E))
    return; // recorded as a graph edge (or a sticky capture error)
  StreamState *SS = S.get();
  std::shared_ptr<EventState> ES = Ev.E;
  S->enqueue([SS, ES]() -> OpOutcome {
    {
      std::lock_guard<std::mutex> Lock(ES->M);
      if (ES->Fired)
        return OpOutcome::Done;
      std::weak_ptr<StreamState> W = SS->weak_from_this();
      ES->Continuations.push_back([W] {
        if (auto P = W.lock())
          P->resume();
      });
    }
    std::lock_guard<std::mutex> Lock(SS->M);
    if (SS->ResumeSignal) {
      // The event fired between registration and parking; the queued
      // continuation already ran against the Running state.
      SS->ResumeSignal = false;
      return OpOutcome::Retry;
    }
    SS->State = StreamState::Drain::Blocked;
    return OpOutcome::Blocked;
  });
}

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

Event::Event() : E(std::make_shared<EventState>()) {}

void Event::record(Stream &St) {
  if (captureMarkEvent(*St.S, *E))
    return; // the event marks a capture point; nothing is enqueued
  {
    std::lock_guard<std::mutex> Lock(E->M);
    E->Fired = false; // re-arm at submission, like cudaEventRecord
  }
  StreamState *SS = St.S.get();
  std::shared_ptr<EventState> ES = E;
  St.S->enqueue([SS, ES]() -> OpOutcome {
    Status Err = Status::success();
    {
      std::lock_guard<std::mutex> Lock(SS->M);
      Err = SS->Deferred; // snapshot, not cleared: synchronize() owns it
    }
    ES->fire(std::move(Err));
    return OpOutcome::Done;
  });
}

bool Event::query() const {
  std::lock_guard<std::mutex> Lock(E->M);
  return E->Fired;
}

Status Event::wait() const {
  std::unique_lock<std::mutex> Lock(E->M);
  E->CV.wait(Lock, [this] { return E->Fired; });
  return E->Err;
}

//===----------------------------------------------------------------------===//
// Device async copies (live here: they need StreamState's definition)
//===----------------------------------------------------------------------===//

void Device::copyToDeviceAsync(Stream &St, uint64_t Dst, const void *Src,
                               size_t Bytes) {
  {
    GraphNode N;
    N.K = GraphNode::Kind::CopyToDevice;
    N.Dev = this;
    N.DevAddr = Dst;
    N.HostSrc = Src;
    N.Bytes = Bytes;
    if (captureAppend(*St.S, std::move(N)))
      return;
  }
  StreamState *SS = St.S.get();
  St.S->enqueue([this, SS, Dst, Src, Bytes]() -> OpOutcome {
    if (Status E = tryCopyToDevice(Dst, Src, Bytes); E.isError())
      SS->noteError(E);
    return OpOutcome::Done;
  });
}

void Device::copyFromDeviceAsync(Stream &St, void *Dst, uint64_t Src,
                                 size_t Bytes) const {
  {
    GraphNode N;
    N.K = GraphNode::Kind::CopyFromDevice;
    // Replay only ever calls the const tryCopyFromDevice through this
    // pointer; GraphNode stores one Device* for all node kinds.
    N.Dev = const_cast<Device *>(this);
    N.DevAddr = Src;
    N.HostDst = Dst;
    N.Bytes = Bytes;
    if (captureAppend(*St.S, std::move(N)))
      return;
  }
  StreamState *SS = St.S.get();
  St.S->enqueue([this, SS, Dst, Src, Bytes]() -> OpOutcome {
    if (Status E = tryCopyFromDevice(Dst, Src, Bytes); E.isError())
      SS->noteError(E);
    return OpOutcome::Done;
  });
}
