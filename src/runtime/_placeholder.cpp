// placeholder
