//===- examples/divergence_explorer.cpp - Divergence sensitivity study ----===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Sweeps the branch-divergence probability of a synthetic kernel and
/// reports, for each probability, the speedup of dynamic vectorization
/// over scalar execution, the average warp size, and the cycle breakdown.
/// This makes the paper's central trade-off tangible: yield-on-diverge
/// keeps vector units busy on convergent code, while heavily divergent
/// code pays context-switch round-trips ("This observation motivates
/// future work to detect cases when diverging branches are so frequent
/// that scalar execution is optimal", §6.1).
///
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/RNG.h"

#include <cstdio>
#include <vector>

using namespace simtvec;

// Each thread walks a per-thread random sequence; when the draw is below
// the threshold it takes a heavy path, otherwise a light one. The taken
// path is data-dependent and uncorrelated across threads, so the fraction
// of divergent branches tracks the threshold.
static const char *KernelSrc = R"(
.kernel diverge (.param .u64 seeds, .param .u64 out, .param .u32 rounds,
                 .param .u32 threshold)
{
  .reg .u32 %gid, %state, %acc, %i, %nr, %np, %thr, %draw;
  .reg .u64 %addr, %base, %off;
  .reg .pred %pheavy, %p;

entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [rounds];
  mov.u32 %nr, %np;
  ld.param.u32 %np, [threshold];
  mov.u32 %thr, %np;
  ld.param.u64 %base, [seeds];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.u32 %state, [%addr];
  mov.u32 %acc, 0;
  mov.u32 %i, 0;
  bra loop;

loop:
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %draw, %state, 16;
  and.u32 %draw, %draw, 0xFFFF;
  setp.lt.u32 %pheavy, %draw, %thr;
  @%pheavy bra heavy, light;
heavy:
  xor.u32 %acc, %acc, %state;
  shl.u32 %draw, %acc, 3;
  add.u32 %acc, %acc, %draw;
  shr.u32 %draw, %acc, 7;
  xor.u32 %acc, %acc, %draw;
  bra join;
light:
  add.u32 %acc, %acc, %state;
  bra join;
join:
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %nr;
  @%p bra loop, store;

store:
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  ret;
}
)";

int main() {
  auto Prog = Program::compile(KernelSrc).take();
  const uint32_t Threads = 2048, Rounds = 32;

  std::printf("Divergence sweep: dynamic vectorization (ws<=4) vs scalar\n");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "P(divergent)",
              "speedup", "avg warp", "subkernel", "yield", "EM");

  for (int Percent : {0, 5, 10, 25, 50, 75, 100}) {
    uint32_t Threshold =
        static_cast<uint32_t>(65536.0 * (Percent / 100.0) + 0.5);

    auto RunConfig = [&](uint32_t MaxWarp) {
      Device Dev;
      RNG Rng(0xd1f);
      std::vector<uint32_t> Seeds(Threads);
      for (auto &S : Seeds)
        S = static_cast<uint32_t>(Rng.next());
      uint64_t DSeeds = Dev.allocArray<uint32_t>(Threads);
      uint64_t DOut = Dev.allocArray<uint32_t>(Threads);
      Dev.upload(DSeeds, Seeds);
      ParamBuilder Params;
      Params.u64(DSeeds).u64(DOut).u32(Rounds).u32(Threshold);
      LaunchOptions Options;
      Options.MaxWarpSize = MaxWarp;
      return Prog
          ->launch(Dev, "diverge", {Threads / 64, 1, 1}, {64, 1, 1},
                   Params, Options)
          .take();
    };

    LaunchStats Scalar = RunConfig(1);
    LaunchStats Vector = RunConfig(4);
    std::printf("%10d%% %9.2fx %10.2f %9.1f%% %9.1f%% %9.1f%%\n", Percent,
                Scalar.MaxWorkerCycles / Vector.MaxWorkerCycles,
                Vector.avgWarpSize(), 100 * Vector.subkernelFraction(),
                100 * Vector.yieldFraction(), 100 * Vector.emFraction());
  }
  std::printf("\nAt low divergence warps stay wide and vectorization wins; "
              "past the crossover the\nyield round-trips dominate and "
              "scalar execution is optimal, as §6.1 observes.\n");
  return 0;
}
