//===- examples/quickstart.cpp - Minimal end-to-end use of the API --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The smallest complete program: write a data-parallel kernel in SVIR,
/// compile it, allocate device memory with the checked API, queue the
/// copies and the launch asynchronously on a stream, synchronize, and read
/// back both the results and the launch statistics.
///
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include <cstdio>
#include <vector>

using namespace simtvec;

// SAXPY: y[i] = a * x[i] + y[i], one element per thread.
static const char *SaxpySrc = R"(
.kernel saxpy (.param .u64 x, .param .u64 y, .param .f32 a, .param .u32 n)
{
  .reg .u32 %i, %np, %n;
  .reg .u64 %off, %px, %py, %bx, %by;
  .reg .f32 %xv, %yv, %av;
  .reg .pred %p;

entry:
  mov.u32 %i, %tid.x;
  mad.u32 %i, %ntid.x, %ctaid.x, %i;
  ld.param.u32 %np, [n];
  mov.u32 %n, %np;
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %bx, [x];
  ld.param.u64 %by, [y];
  add.u64 %px, %bx, %off;
  add.u64 %py, %by, %off;
  ld.global.f32 %xv, [%px];
  ld.global.f32 %yv, [%py];
  ld.param.f32 %av, [a];
  mad.f32 %yv, %av, %xv, %yv;
  st.global.f32 [%py], %yv;
  bra done;
done:
  ret;
}
)";

int main() {
  // 1. Compile the module; specializations are produced lazily per warp
  //    size by the translation cache when the kernel first runs.
  auto ProgOrErr = Program::compile(SaxpySrc);
  if (!ProgOrErr) {
    std::fprintf(stderr, "compile error: %s\n",
                 ProgOrErr.status().message().c_str());
    return 1;
  }
  auto &Prog = *ProgOrErr;

  // 2. Set up device memory. tryAlloc returns Expected<uint64_t> so
  //    exhaustion is reportable; the unchecked alloc()/upload() forms abort
  //    with the same diagnostic instead.
  const uint32_t N = 10000;
  Device Dev;
  std::vector<float> X(N), Y(N);
  for (uint32_t I = 0; I < N; ++I) {
    X[I] = static_cast<float>(I);
    Y[I] = 1.0f;
  }
  auto DX = Dev.tryAlloc(N * sizeof(float));
  auto DY = Dev.tryAlloc(N * sizeof(float));
  if (!DX || !DY) {
    std::fprintf(stderr, "alloc error: %s\n",
                 (!DX ? DX : DY).status().message().c_str());
    return 1;
  }

  // 3. Queue the copies and the launch on a stream: they run in submission
  //    order, asynchronously to this thread, over ceil(N/128) CTAs of 128
  //    threads, vectorized up to warp size 4 with dynamic warp formation.
  //    Params records each element's SVIR type, so the launch validates the
  //    buffer against the kernel's .param signature before running.
  Params P;
  P.u64(*DX).u64(*DY).f32(2.5f).u32(N);
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  std::vector<float> Result(N);
  Stream Strm;
  Dev.copyToDeviceAsync(Strm, *DX, X.data(), N * sizeof(float));
  Dev.copyToDeviceAsync(Strm, *DY, Y.data(), N * sizeof(float));
  LaunchFuture F = Prog->launchAsync(Strm, Dev, "saxpy", {(N + 127) / 128, 1, 1},
                                     {128, 1, 1}, P, Options);
  Dev.copyFromDeviceAsync(Strm, Result.data(), *DY, N * sizeof(float));
  if (Status E = Strm.synchronize(); E.isError()) {
    std::fprintf(stderr, "stream error: %s\n", E.message().c_str());
    return 1;
  }
  auto StatsOrErr = F.get();
  if (!StatsOrErr) {
    std::fprintf(stderr, "launch error: %s\n",
                 StatsOrErr.status().message().c_str());
    return 1;
  }

  // 4. Validate and report.
  for (uint32_t I = 0; I < N; ++I) {
    float Want = 2.5f * X[I] + 1.0f;
    if (Result[I] != Want) {
      std::fprintf(stderr, "mismatch at %u: %f != %f\n", I, Result[I],
                   Want);
      return 1;
    }
  }

  const LaunchStats &S = *StatsOrErr;
  std::printf("saxpy over %u elements: OK\n", N);
  std::printf("  warp entries:        %llu (avg warp size %.2f)\n",
              static_cast<unsigned long long>(S.WarpEntries),
              S.avgWarpSize());
  std::printf("  modeled time:        %.1f us (%.2f Mcycles on the "
              "slowest worker)\n",
              S.ModeledSeconds * 1e6, S.MaxWorkerCycles / 1e6);
  std::printf("  cycle breakdown:     %.1f%% subkernel, %.1f%% yield, "
              "%.1f%% execution manager\n",
              100 * S.subkernelFraction(), 100 * S.yieldFraction(),
              100 * S.emFraction());
  return 0;
}
