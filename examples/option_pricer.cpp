//===- examples/option_pricer.cpp - Domain example: option pricing --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A small financial-pricing application built on the suite's
/// BlackScholes kernel: prices a book of European options under every
/// execution configuration and compares modeled throughput, demonstrating
/// how a downstream user evaluates warp sizes and formation policies for
/// their own kernels.
///
//===----------------------------------------------------------------------===//

#include "simtvec/workloads/Workloads.h"

#include <cstdio>

using namespace simtvec;

int main() {
  const Workload &W = *findWorkload("BlackScholes");

  struct Config {
    const char *Name;
    LaunchOptions Options;
  };
  std::vector<Config> Configs;
  {
    LaunchOptions O;
    O.MaxWarpSize = 1;
    Configs.push_back({"scalar baseline", O});
  }
  for (uint32_t WS : {2u, 4u}) {
    LaunchOptions O;
    O.MaxWarpSize = WS;
    Configs.push_back({WS == 2 ? "dynamic, warps of 2" : "dynamic, warps of 4",
                       O});
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.Formation = WarpFormation::Static;
    O.ThreadInvariantElim = true;
    Configs.push_back({"static + TIE, warps of 4", O});
  }

  std::printf("Pricing a book of 8192 European options (Black-Scholes)\n\n");
  std::printf("%-26s %14s %14s %12s\n", "configuration", "modeled us",
              "options/ms", "GFLOP/s");

  double Baseline = 0;
  for (const Config &C : Configs) {
    auto StatsOrErr = runWorkload(W, /*Scale=*/1, C.Options);
    if (!StatsOrErr) {
      std::fprintf(stderr, "%s failed: %s\n", C.Name,
                   StatsOrErr.status().message().c_str());
      return 1;
    }
    const LaunchStats &S = *StatsOrErr;
    double Us = S.ModeledSeconds * 1e6;
    if (Baseline == 0)
      Baseline = Us;
    std::printf("%-26s %14.1f %14.0f %12.1f   (%.2fx)\n", C.Name, Us,
                8192.0 / (S.ModeledSeconds * 1e3), S.gflops(),
                Baseline / Us);
  }
  std::printf("\nEvery configuration validated against the host reference; "
              "the kernel is written\nonce in SVIR and specialized per warp "
              "size by the translation cache at launch.\n");
  return 0;
}
