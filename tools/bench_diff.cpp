//===- tools/bench_diff.cpp - Compare two wallclock trajectories ----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Compares two BENCH_wallclock.json files (as emitted by
/// bench/wallclock_throughput) and reports the per-(workload, width,
/// workers, simd-path, jit-tier) wall-time delta plus the geometric-mean
/// speedup of NEW over OLD. Results emitted before the simd field existed
/// key as "scalar" (the pre-SIMD engine ran the scalar lane loops);
/// results from before the native tier key as "interp". Launch-overhead
/// trajectories (BENCH_wallclock_launches.json) key their dispatch mode
/// into the workload string — "VectorAdd+spawn", "+pool", "+stream",
/// "+cold", "+jitwarm", and "+graph" (pre-instantiated kernel-graph
/// replay) — so every mode column diffs as its own cell.
///
/// Results carry a sixth dimension since the divergence-reduction work:
/// the branch policy ("yield"/"predicate"/"meld"/"auto"); trajectories
/// from before that knob key as "yield" (the only behaviour the engine
/// had). `--strip-branch` collapses the dimension on both sides — useful
/// for diffing a forced-policy file against an older trajectory, where the
/// policy is the experiment rather than a configuration to hold fixed.
///
/// Serving trajectories (BENCH_wallclock_serve.json, from bench/
/// serve_soak) key their mode as "Scale+serve" / "Scale+isolated" and
/// carry tail-latency fields; when either file has "p99_seconds" cells a
/// second table diffs the p99 per-launch latency alongside the mean.
///
/// Usage: bench_diff [--force] [--strip-branch] OLD.json NEW.json
///
/// The two files must have been measured under the same configuration:
/// when the headers disagree on "compiler", "flags" or "native" the
/// comparison is apples-to-oranges and bench_diff refuses (exit 1).
/// `--force` downgrades the refusal to a loud warning.
///
/// Speedup is OLD seconds / NEW seconds, so values above 1.0 mean NEW is
/// faster. Cells present in only one file are listed and excluded from the
/// geomean.
///
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

using CellKey = std::tuple<std::string, unsigned, unsigned, std::string,
                           std::string, std::string>;

/// Header fields that pin the measurement configuration. Two trajectories
/// are only comparable when all three match.
struct Header {
  std::string Compiler;
  std::string Flags;
  std::string Native;
};

/// Pulls the value of `"Key": <...>` out of one result object. Returns the
/// raw token text (string values without quotes), or an empty string when
/// the key is absent.
std::string fieldValue(const std::string &Obj, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\"";
  size_t P = Obj.find(Needle);
  if (P == std::string::npos)
    return "";
  P = Obj.find(':', P + Needle.size());
  if (P == std::string::npos)
    return "";
  ++P;
  while (P < Obj.size() && (Obj[P] == ' ' || Obj[P] == '\t'))
    ++P;
  if (P < Obj.size() && Obj[P] == '"') {
    size_t E = Obj.find('"', P + 1);
    return E == std::string::npos ? "" : Obj.substr(P + 1, E - P - 1);
  }
  size_t E = P;
  while (E < Obj.size() && Obj[E] != ',' && Obj[E] != '}' && Obj[E] != '\n')
    ++E;
  return Obj.substr(P, E - P);
}

/// Parses the `results` array of a wallclock_throughput JSON file into
/// (workload, width, workers, simd, jit, branch) -> seconds, and the
/// provenance header into \p H. The format is the harness's own fixed
/// emission, so a keyed scan over the result objects suffices. With
/// \p StripBranch the branch dimension is collapsed to "-" on every cell.
bool parseTrajectory(const char *Path, std::map<CellKey, double> &Cells,
                     std::map<CellKey, double> &P99, Header &H,
                     bool StripBranch) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", Path);
    return false;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();

  size_t Results = Text.find("\"results\"");
  if (Results == std::string::npos) {
    std::fprintf(stderr, "bench_diff: %s has no \"results\" array\n", Path);
    return false;
  }
  const std::string Head = Text.substr(0, Results);
  H.Compiler = fieldValue(Head, "compiler");
  H.Flags = fieldValue(Head, "flags");
  H.Native = fieldValue(Head, "native");
  for (size_t P = Text.find('{', Results); P != std::string::npos;
       P = Text.find('{', P + 1)) {
    size_t E = Text.find('}', P);
    if (E == std::string::npos)
      break;
    const std::string Obj = Text.substr(P, E - P + 1);
    P = E;
    const std::string Workload = fieldValue(Obj, "workload");
    const std::string Width = fieldValue(Obj, "width");
    const std::string Workers = fieldValue(Obj, "workers");
    const std::string Seconds = fieldValue(Obj, "seconds");
    std::string Simd = fieldValue(Obj, "simd");
    if (Simd.empty())
      Simd = "scalar"; // trajectories from before the SIMD lane kernels
    std::string Jit = fieldValue(Obj, "jit");
    if (Jit.empty())
      Jit = "interp"; // trajectories from before the native tier
    std::string Branch = fieldValue(Obj, "branch");
    if (Branch.empty())
      Branch = "yield"; // trajectories from before divergence reduction
    if (StripBranch)
      Branch = "-";
    if (Workload.empty() || Width.empty() || Workers.empty() ||
        Seconds.empty())
      continue;
    CellKey Key{Workload,
                static_cast<unsigned>(std::strtoul(Width.c_str(), nullptr,
                                                   10)),
                static_cast<unsigned>(std::strtoul(Workers.c_str(), nullptr,
                                                   10)),
                Simd, Jit, Branch};
    Cells[Key] = std::strtod(Seconds.c_str(), nullptr);
    // Serving cells carry tail latency; diffed in their own table.
    if (std::string P99S = fieldValue(Obj, "p99_seconds"); !P99S.empty())
      P99[Key] = std::strtod(P99S.c_str(), nullptr);
  }
  if (Cells.empty()) {
    std::fprintf(stderr, "bench_diff: %s has no result cells\n", Path);
    return false;
  }
  return true;
}

/// Compares the provenance headers; returns the list of mismatched fields
/// as "name (old vs new)" strings.
std::vector<std::string> headerMismatches(const Header &A, const Header &B) {
  std::vector<std::string> Out;
  auto Check = [&](const char *Name, const std::string &X,
                   const std::string &Y) {
    if (X != Y)
      Out.push_back(std::string(Name) + " ('" + X + "' vs '" + Y + "')");
  };
  Check("compiler", A.Compiler, B.Compiler);
  Check("flags", A.Flags, B.Flags);
  Check("native", A.Native, B.Native);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool Force = false;
  bool StripBranch = false;
  int ArgI = 1;
  while (ArgI < argc) {
    if (std::strcmp(argv[ArgI], "--force") == 0) {
      Force = true;
      ++ArgI;
    } else if (std::strcmp(argv[ArgI], "--strip-branch") == 0) {
      StripBranch = true;
      ++ArgI;
    } else {
      break;
    }
  }
  if (argc - ArgI != 2) {
    std::fprintf(
        stderr,
        "usage: bench_diff [--force] [--strip-branch] OLD.json NEW.json\n");
    return 1;
  }
  const char *OldPath = argv[ArgI];
  const char *NewPath = argv[ArgI + 1];
  std::map<CellKey, double> Old, New, OldP99, NewP99;
  Header OldH, NewH;
  if (!parseTrajectory(OldPath, Old, OldP99, OldH, StripBranch) ||
      !parseTrajectory(NewPath, New, NewP99, NewH, StripBranch))
    return 1;

  // Refuse apples-to-oranges comparisons: a trajectory measured under a
  // different compiler, flag set, or -march=native setting moves every
  // cell for reasons that have nothing to do with the code under test.
  if (auto Bad = headerMismatches(OldH, NewH); !Bad.empty()) {
    FILE *Sink = Force ? stdout : stderr;
    std::fprintf(Sink,
                 "bench_diff: %s and %s were measured under different "
                 "configurations:\n",
                 OldPath, NewPath);
    for (const std::string &B : Bad)
      std::fprintf(Sink, "bench_diff:   mismatched %s\n", B.c_str());
    if (!Force) {
      std::fprintf(stderr,
                   "bench_diff: refusing to compare; rerun with --force to "
                   "override\n");
      return 1;
    }
    std::fprintf(Sink, "bench_diff: WARNING: --force given, comparing "
                       "anyway — speedups below conflate configuration and "
                       "code changes\n");
  }

  std::printf("%-16s %5s %7s %7s %7s %9s  %10s  %10s  %8s\n", "workload",
              "width", "workers", "simd", "jit", "branch", "old ms",
              "new ms", "speedup");
  double LogSum = 0;
  unsigned Compared = 0;
  for (const auto &[Key, OldSec] : Old) {
    auto It = New.find(Key);
    if (It == New.end()) {
      std::printf("%-16s %5u %7u %7s %7s %9s  %10.3f  %10s  %8s\n",
                  std::get<0>(Key).c_str(), std::get<1>(Key),
                  std::get<2>(Key), std::get<3>(Key).c_str(),
                  std::get<4>(Key).c_str(), std::get<5>(Key).c_str(),
                  OldSec * 1e3, "-", "-");
      continue;
    }
    const double Speedup = OldSec / It->second;
    std::printf("%-16s %5u %7u %7s %7s %9s  %10.3f  %10.3f  %7.3fx\n",
                std::get<0>(Key).c_str(), std::get<1>(Key), std::get<2>(Key),
                std::get<3>(Key).c_str(), std::get<4>(Key).c_str(),
                std::get<5>(Key).c_str(), OldSec * 1e3, It->second * 1e3,
                Speedup);
    LogSum += std::log(Speedup);
    ++Compared;
  }
  for (const auto &[Key, NewSec] : New)
    if (!Old.count(Key))
      std::printf("%-16s %5u %7u %7s %7s %9s  %10s  %10.3f  %8s\n",
                  std::get<0>(Key).c_str(), std::get<1>(Key),
                  std::get<2>(Key), std::get<3>(Key).c_str(),
                  std::get<4>(Key).c_str(), std::get<5>(Key).c_str(), "-",
                  NewSec * 1e3, "-");

  if (!Compared) {
    std::fprintf(stderr, "bench_diff: no common cells to compare\n");
    return 1;
  }
  std::printf("geomean speedup over %u cells: %.3fx\n", Compared,
              std::exp(LogSum / Compared));

  // Tail-latency table for serving trajectories: any cell with a
  // p99_seconds field diffs its p99 alongside the mean above.
  if (!OldP99.empty() || !NewP99.empty()) {
    std::printf("\n%-16s %5s %7s  %12s  %12s  %8s\n", "workload", "width",
                "workers", "old p99 ms", "new p99 ms", "speedup");
    for (const auto &[Key, OldMs] : OldP99) {
      auto It = NewP99.find(Key);
      if (It == NewP99.end()) {
        std::printf("%-16s %5u %7u  %12.3f  %12s  %8s\n",
                    std::get<0>(Key).c_str(), std::get<1>(Key),
                    std::get<2>(Key), OldMs * 1e3, "-", "-");
        continue;
      }
      std::printf("%-16s %5u %7u  %12.3f  %12.3f  %7.3fx\n",
                  std::get<0>(Key).c_str(), std::get<1>(Key),
                  std::get<2>(Key), OldMs * 1e3, It->second * 1e3,
                  OldMs / It->second);
    }
    for (const auto &[Key, NewMs] : NewP99)
      if (!OldP99.count(Key))
        std::printf("%-16s %5u %7u  %12s  %12.3f  %8s\n",
                    std::get<0>(Key).c_str(), std::get<1>(Key),
                    std::get<2>(Key), "-", NewMs * 1e3, "-");
  }
  return 0;
}
