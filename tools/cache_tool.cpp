//===- tools/cache_tool.cpp - Inspect the specialization artifact store ---===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Command-line front-end to the on-disk store the SpecializationService
/// maintains under SIMTVEC_CACHE_DIR (.svca kernel artifacts, .svcp
/// autotune profiles, and .so native-tier objects):
///
///   cache_tool [--dir DIR] ls       list entries with header metadata
///   cache_tool [--dir DIR] verify   validate every entry (header, CRC,
///                                   payload decode + re-verification);
///                                   exit 1 if any entry is corrupt
///   cache_tool [--dir DIR] prune [--max-bytes N]
///                                   delete corrupt/stale-version entries;
///                                   with --max-bytes, additionally evict
///                                   least-recently-used entries (by file
///                                   atime, oldest first; falls back to
///                                   mtime on mounts that never update
///                                   atimes) until the store fits in N
///                                   bytes
///   cache_tool [--dir DIR] stats    entry/byte totals per artifact kind,
///                                   plus the configured governor cap
///                                   (SIMTVEC_CACHE_MAX_BYTES) and current
///                                   utilization against it
///
/// DIR defaults to $SIMTVEC_CACHE_DIR. The runtime itself never needs this
/// tool — corrupt entries degrade to cache misses — but CI uses `verify`
/// to assert a populated store is clean, and long-lived hosts use `prune`
/// to drop entries a format bump or kernel edit stranded.
///
//===----------------------------------------------------------------------===//

#include "simtvec/core/SpecializationService.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>

using namespace simtvec;
namespace fs = std::filesystem;

namespace {

enum class EntryKind { Artifact, Profile, Native };

const char *kindName(EntryKind K) {
  switch (K) {
  case EntryKind::Artifact:
    return "artifact";
  case EntryKind::Profile:
    return "profile";
  case EntryKind::Native:
    return "native";
  }
  return "?";
}

/// (seconds, nanoseconds) timestamp; ordered lexicographically.
using FileTime = std::pair<int64_t, int64_t>;

struct Entry {
  std::string Path;
  std::string Name; // filename only
  uint64_t Bytes = 0;
  EntryKind Kind = EntryKind::Artifact;
  /// LRU inputs for the size-cap policy. Captured at listing time — BEFORE
  /// the health checks read every artifact, which would bump each atime to
  /// "now" and erase the very recency signal eviction needs.
  FileTime ATime{};
  FileTime MTime{};
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR] {ls|verify|prune [--max-bytes N]|"
               "stats}\n"
               "DIR defaults to $SIMTVEC_CACHE_DIR\n",
               Argv0);
  return 2;
}

std::vector<Entry> listStore(const std::string &Dir) {
  std::vector<Entry> Entries;
  std::error_code EC;
  for (const auto &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    std::string Ext = DE.path().extension().string();
    Entry E;
    if (Ext == SpecializationService::ArtifactExt)
      E.Kind = EntryKind::Artifact;
    else if (Ext == SpecializationService::ProfileExt)
      E.Kind = EntryKind::Profile;
    else if (Ext == SpecializationService::NativeExt)
      E.Kind = EntryKind::Native;
    else
      continue;
    E.Path = DE.path().string();
    E.Name = DE.path().filename().string();
    E.Bytes = DE.file_size(EC);
    struct stat St;
    if (::stat(E.Path.c_str(), &St) == 0) {
      E.ATime = {static_cast<int64_t>(St.st_atim.tv_sec),
                 static_cast<int64_t>(St.st_atim.tv_nsec)};
      E.MTime = {static_cast<int64_t>(St.st_mtim.tv_sec),
                 static_cast<int64_t>(St.st_mtim.tv_nsec)};
    }
    Entries.push_back(std::move(E));
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Name < B.Name; });
  return Entries;
}

/// One artifact's health, as `verify`/`prune` judge it.
enum class Health { Ok, Stale, Corrupt };

Health artifactHealth(const Entry &E, std::string &Detail) {
  auto Info = SpecializationService::inspectArtifact(E.Path);
  if (!Info) {
    Detail = Info.status().message();
    return Health::Corrupt;
  }
  if (!Info->CrcValid) {
    Detail = "payload CRC mismatch (truncated or bit-flipped)";
    return Health::Corrupt;
  }
  if (Info->Version != SpecializationService::FormatVersion) {
    Detail = "format version " + std::to_string(Info->Version) +
             " (current " +
             std::to_string(SpecializationService::FormatVersion) + ")";
    return Health::Stale;
  }
  if (!Info->Decodes) {
    Detail = "payload does not decode to a valid kernel";
    return Health::Corrupt;
  }
  Detail.clear();
  return Health::Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::string Dir;
  if (const char *Env = std::getenv("SIMTVEC_CACHE_DIR"))
    Dir = Env;
  int ArgI = 1;
  if (ArgI + 1 < argc && std::strcmp(argv[ArgI], "--dir") == 0) {
    Dir = argv[ArgI + 1];
    ArgI += 2;
  }
  if (ArgI >= argc)
    return usage(argv[0]);
  std::string Cmd = argv[ArgI];
  if (Dir.empty()) {
    std::fprintf(stderr,
                 "no cache directory: pass --dir or set SIMTVEC_CACHE_DIR\n");
    return 2;
  }

  std::vector<Entry> Entries = listStore(Dir);

  if (Cmd == "ls") {
    for (const Entry &E : Entries) {
      if (E.Kind != EntryKind::Artifact) {
        std::printf("%-48s %-8s %8llu bytes\n", E.Name.c_str(),
                    kindName(E.Kind),
                    static_cast<unsigned long long>(E.Bytes));
        continue;
      }
      auto Info = SpecializationService::inspectArtifact(E.Path);
      if (Info && Info->Decodes)
        std::printf("%-48s kernel=%s width=%u v%u  %8llu bytes\n",
                    E.Name.c_str(), Info->KernelName.c_str(), Info->WarpSize,
                    Info->Version,
                    static_cast<unsigned long long>(E.Bytes));
      else
        std::printf("%-48s (unreadable)      %8llu bytes\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Bytes));
    }
    std::printf("%zu entries in %s\n", Entries.size(), Dir.c_str());
    return 0;
  }

  if (Cmd == "verify") {
    int Bad = 0;
    unsigned Checked = 0;
    for (const Entry &E : Entries) {
      if (E.Kind != EntryKind::Artifact)
        continue; // profiles are advisory, native objects verify at dlopen
      ++Checked;
      std::string Detail;
      switch (artifactHealth(E, Detail)) {
      case Health::Ok:
        break;
      case Health::Stale:
        std::printf("STALE   %s: %s\n", E.Name.c_str(), Detail.c_str());
        break;
      case Health::Corrupt:
        std::printf("CORRUPT %s: %s\n", E.Name.c_str(), Detail.c_str());
        ++Bad;
        break;
      }
    }
    std::printf("verified %u artifacts, %d corrupt\n", Checked, Bad);
    return Bad ? 1 : 0;
  }

  if (Cmd == "prune") {
    // Optional size cap: prune [--max-bytes N].
    bool HaveCap = false;
    uint64_t MaxBytes = 0;
    if (ArgI + 1 < argc && std::strcmp(argv[ArgI + 1], "--max-bytes") == 0) {
      if (ArgI + 2 >= argc)
        return usage(argv[0]);
      char *End = nullptr;
      MaxBytes = std::strtoull(argv[ArgI + 2], &End, 10);
      if (!End || *End != '\0') {
        std::fprintf(stderr, "prune: --max-bytes takes a byte count, got "
                             "'%s'\n",
                     argv[ArgI + 2]);
        return 2;
      }
      HaveCap = true;
    }

    unsigned Removed = 0;
    std::vector<Entry> Kept;
    for (const Entry &E : Entries) {
      if (E.Kind != EntryKind::Artifact) {
        Kept.push_back(E);
        continue;
      }
      std::string Detail;
      if (artifactHealth(E, Detail) == Health::Ok) {
        Kept.push_back(E);
        continue;
      }
      std::error_code EC;
      if (fs::remove(E.Path, EC)) {
        std::printf("removed %s: %s\n", E.Name.c_str(), Detail.c_str());
        ++Removed;
      }
    }

    // Size-cap policy: evict least-recently-used entries until the store
    // fits. The policy itself (atime-LRU with the mtime fallback on
    // noatime mounts, name tie-break) lives in
    // SpecializationService::pruneStoreToBytes, shared with the in-process
    // CacheGovernor so the CLI and the runtime can never drift. It rescans
    // the directory, so the health removals above are already reflected.
    if (HaveCap) {
      auto R = SpecializationService::pruneStoreToBytes(
          Dir, MaxBytes, [](const std::string &Name, uint64_t Bytes) {
            std::printf("evicted %s (%llu bytes, LRU)\n", Name.c_str(),
                        static_cast<unsigned long long>(Bytes));
          });
      Removed += R.Evicted;
      std::printf("store now %llu bytes (cap %llu)\n",
                  static_cast<unsigned long long>(R.StoreBytes),
                  static_cast<unsigned long long>(MaxBytes));
    }
    std::printf("pruned %u entries\n", Removed);
    return 0;
  }

  if (Cmd == "stats") {
    uint64_t Bytes[3] = {0, 0, 0};
    unsigned Count[3] = {0, 0, 0};
    unsigned Ok = 0, Bad = 0;
    for (const Entry &E : Entries) {
      const size_t K = static_cast<size_t>(E.Kind);
      ++Count[K];
      Bytes[K] += E.Bytes;
      if (E.Kind == EntryKind::Artifact) {
        std::string Detail;
        (artifactHealth(E, Detail) == Health::Ok ? Ok : Bad) += 1;
      }
    }
    uint64_t Total = Bytes[0] + Bytes[1] + Bytes[2];
    std::printf("artifacts (%s): %u (%llu bytes), %u valid, "
                "%u stale/corrupt\n",
                SpecializationService::ArtifactExt,
                Count[0], static_cast<unsigned long long>(Bytes[0]), Ok, Bad);
    std::printf("profiles  (%s): %u (%llu bytes)\n",
                SpecializationService::ProfileExt, Count[1],
                static_cast<unsigned long long>(Bytes[1]));
    std::printf("native    (%s):   %u (%llu bytes)\n",
                SpecializationService::NativeExt, Count[2],
                static_cast<unsigned long long>(Bytes[2]));
    std::printf("total: %u entries, %llu bytes\n",
                Count[0] + Count[1] + Count[2],
                static_cast<unsigned long long>(Total));
    // Configured governor cap (SIMTVEC_CACHE_MAX_BYTES) and how full the
    // store is against it — the operator-facing view of the policy the
    // runtime's CacheGovernor enforces on its own.
    uint64_t Cap = SpecializationOptions::fromEnv().CacheMaxBytes;
    if (Cap) {
      double Pct = 100.0 * static_cast<double>(Total) /
                   static_cast<double>(Cap);
      std::printf("cap: %llu bytes (SIMTVEC_CACHE_MAX_BYTES), "
                  "utilization %.1f%%%s\n",
                  static_cast<unsigned long long>(Cap), Pct,
                  Total > Cap ? " OVER CAP" : "");
    } else {
      std::printf("cap: none (SIMTVEC_CACHE_MAX_BYTES unset)\n");
    }
    return 0;
  }

  return usage(argv[0]);
}
