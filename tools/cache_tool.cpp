//===- tools/cache_tool.cpp - Inspect the specialization artifact store ---===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Command-line front-end to the on-disk store the SpecializationService
/// maintains under SIMTVEC_CACHE_DIR (.svca kernel artifacts plus .svcp
/// autotune profiles):
///
///   cache_tool [--dir DIR] ls       list entries with header metadata
///   cache_tool [--dir DIR] verify   validate every entry (header, CRC,
///                                   payload decode + re-verification);
///                                   exit 1 if any entry is corrupt
///   cache_tool [--dir DIR] prune    delete corrupt/stale-version entries
///   cache_tool [--dir DIR] stats    entry/byte totals per kind
///
/// DIR defaults to $SIMTVEC_CACHE_DIR. The runtime itself never needs this
/// tool — corrupt entries degrade to cache misses — but CI uses `verify`
/// to assert a populated store is clean, and long-lived hosts use `prune`
/// to drop entries a format bump or kernel edit stranded.
///
//===----------------------------------------------------------------------===//

#include "simtvec/core/SpecializationService.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace simtvec;
namespace fs = std::filesystem;

namespace {

struct Entry {
  std::string Path;
  std::string Name; // filename only
  uint64_t Bytes = 0;
  bool IsProfile = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR] {ls|verify|prune|stats}\n"
               "DIR defaults to $SIMTVEC_CACHE_DIR\n",
               Argv0);
  return 2;
}

std::vector<Entry> listStore(const std::string &Dir) {
  std::vector<Entry> Entries;
  std::error_code EC;
  for (const auto &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    std::string Ext = DE.path().extension().string();
    if (Ext != SpecializationService::ArtifactExt &&
        Ext != SpecializationService::ProfileExt)
      continue;
    Entry E;
    E.Path = DE.path().string();
    E.Name = DE.path().filename().string();
    E.Bytes = DE.file_size(EC);
    E.IsProfile = Ext == SpecializationService::ProfileExt;
    Entries.push_back(std::move(E));
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Name < B.Name; });
  return Entries;
}

/// One artifact's health, as `verify`/`prune` judge it.
enum class Health { Ok, Stale, Corrupt };

Health artifactHealth(const Entry &E, std::string &Detail) {
  auto Info = SpecializationService::inspectArtifact(E.Path);
  if (!Info) {
    Detail = Info.status().message();
    return Health::Corrupt;
  }
  if (!Info->CrcValid) {
    Detail = "payload CRC mismatch (truncated or bit-flipped)";
    return Health::Corrupt;
  }
  if (Info->Version != SpecializationService::FormatVersion) {
    Detail = "format version " + std::to_string(Info->Version) +
             " (current " +
             std::to_string(SpecializationService::FormatVersion) + ")";
    return Health::Stale;
  }
  if (!Info->Decodes) {
    Detail = "payload does not decode to a valid kernel";
    return Health::Corrupt;
  }
  Detail.clear();
  return Health::Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::string Dir;
  if (const char *Env = std::getenv("SIMTVEC_CACHE_DIR"))
    Dir = Env;
  int ArgI = 1;
  if (ArgI + 1 < argc && std::strcmp(argv[ArgI], "--dir") == 0) {
    Dir = argv[ArgI + 1];
    ArgI += 2;
  }
  if (ArgI >= argc)
    return usage(argv[0]);
  std::string Cmd = argv[ArgI];
  if (Dir.empty()) {
    std::fprintf(stderr,
                 "no cache directory: pass --dir or set SIMTVEC_CACHE_DIR\n");
    return 2;
  }

  std::vector<Entry> Entries = listStore(Dir);

  if (Cmd == "ls") {
    for (const Entry &E : Entries) {
      if (E.IsProfile) {
        std::printf("%-48s profile  %8llu bytes\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Bytes));
        continue;
      }
      auto Info = SpecializationService::inspectArtifact(E.Path);
      if (Info && Info->Decodes)
        std::printf("%-48s kernel=%s width=%u v%u  %8llu bytes\n",
                    E.Name.c_str(), Info->KernelName.c_str(), Info->WarpSize,
                    Info->Version,
                    static_cast<unsigned long long>(E.Bytes));
      else
        std::printf("%-48s (unreadable)      %8llu bytes\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Bytes));
    }
    std::printf("%zu entries in %s\n", Entries.size(), Dir.c_str());
    return 0;
  }

  if (Cmd == "verify") {
    int Bad = 0;
    unsigned Checked = 0;
    for (const Entry &E : Entries) {
      if (E.IsProfile)
        continue; // profiles are advisory; the loader re-validates them
      ++Checked;
      std::string Detail;
      switch (artifactHealth(E, Detail)) {
      case Health::Ok:
        break;
      case Health::Stale:
        std::printf("STALE   %s: %s\n", E.Name.c_str(), Detail.c_str());
        break;
      case Health::Corrupt:
        std::printf("CORRUPT %s: %s\n", E.Name.c_str(), Detail.c_str());
        ++Bad;
        break;
      }
    }
    std::printf("verified %u artifacts, %d corrupt\n", Checked, Bad);
    return Bad ? 1 : 0;
  }

  if (Cmd == "prune") {
    unsigned Removed = 0;
    for (const Entry &E : Entries) {
      if (E.IsProfile)
        continue;
      std::string Detail;
      if (artifactHealth(E, Detail) == Health::Ok)
        continue;
      std::error_code EC;
      if (fs::remove(E.Path, EC)) {
        std::printf("removed %s: %s\n", E.Name.c_str(), Detail.c_str());
        ++Removed;
      }
    }
    std::printf("pruned %u entries\n", Removed);
    return 0;
  }

  if (Cmd == "stats") {
    uint64_t ArtBytes = 0, ProfBytes = 0;
    unsigned Arts = 0, Profs = 0, Ok = 0, Bad = 0;
    for (const Entry &E : Entries) {
      if (E.IsProfile) {
        ++Profs;
        ProfBytes += E.Bytes;
        continue;
      }
      ++Arts;
      ArtBytes += E.Bytes;
      std::string Detail;
      (artifactHealth(E, Detail) == Health::Ok ? Ok : Bad) += 1;
    }
    std::printf("artifacts: %u (%llu bytes), %u valid, %u stale/corrupt\n",
                Arts, static_cast<unsigned long long>(ArtBytes), Ok, Bad);
    std::printf("profiles:  %u (%llu bytes)\n", Profs,
                static_cast<unsigned long long>(ProfBytes));
    return 0;
  }

  return usage(argv[0]);
}
