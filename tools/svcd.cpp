//===- tools/svcd.cpp - SIMTVec serving daemon ------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The multi-tenant serving daemon: binds a Unix-domain socket, serves
/// `ServeClient` sessions (see simtvec/serve/Server.h), and drains
/// gracefully on SIGTERM/SIGINT — in-flight launches finish, session
/// streams synchronize, the WorkerPool quiesces, and only then does the
/// process exit.
///
///   svcd --socket PATH [--max-inflight N] [--max-queued N]
///        [--device-bytes N] [--metrics]
///
///   --socket PATH       Unix-domain socket to bind (required).
///   --max-inflight N    per-session launch admission window (default 8).
///   --max-queued N      per-session scheduler backlog (default 64).
///   --device-bytes N    per-session arena size in bytes (default 64 MiB).
///   --metrics           on shutdown, dump the global MetricsRegistry
///                       snapshot to stdout (name/value per line) — the
///                       operator view of tc.compile, cache.prune_*, and
///                       the serve.* counters.
///
/// The artifact store is configured from the environment exactly like any
/// SIMTVec process: SIMTVEC_CACHE_DIR enables persistence, and
/// SIMTVEC_CACHE_MAX_BYTES arms the in-process CacheGovernor.
///
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Server.h"
#include "simtvec/support/Trace.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

using namespace simtvec;
using namespace simtvec::serve;

namespace {

// Self-pipe: the signal handler writes one byte, main blocks in read().
// This keeps the handler async-signal-safe while the actual shutdown (a
// multi-thread drain) runs on the main thread.
int StopPipe[2] = {-1, -1};

void onSignal(int) {
  uint8_t B = 1;
  ssize_t N = ::write(StopPipe[1], &B, 1);
  (void)N;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--max-inflight N] [--max-queued N]"
               " [--device-bytes N] [--metrics]\n",
               Argv0);
  return 2;
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

} // namespace

int main(int argc, char **argv) {
  ServeOptions Opts;
  bool DumpMetrics = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextU64 = [&](uint64_t &Out) {
      return I + 1 < argc && parseU64(argv[++I], Out);
    };
    uint64_t V = 0;
    if (Arg == "--socket" && I + 1 < argc) {
      Opts.SocketPath = argv[++I];
    } else if (Arg == "--max-inflight" && NextU64(V) && V) {
      Opts.MaxInFlight = static_cast<unsigned>(V);
    } else if (Arg == "--max-queued" && NextU64(V) && V) {
      Opts.MaxQueued = static_cast<unsigned>(V);
    } else if (Arg == "--device-bytes" && NextU64(V) && V) {
      Opts.DeviceBytes = static_cast<size_t>(V);
    } else if (Arg == "--metrics") {
      DumpMetrics = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (Opts.SocketPath.empty())
    return usage(argv[0]);

  if (::pipe(StopPipe) != 0) {
    std::fprintf(stderr, "svcd: pipe(): %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction SA{};
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  ServeDaemon Daemon(Opts);
  if (Status E = Daemon.start(); E.isError()) {
    std::fprintf(stderr, "svcd: %s\n", E.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "svcd: serving on %s (pid %d)\n",
               Opts.SocketPath.c_str(), static_cast<int>(::getpid()));

  // Park until a signal arrives, riding out EINTR.
  uint8_t B;
  while (::read(StopPipe[0], &B, 1) < 0 && errno == EINTR)
    ;

  std::fprintf(stderr, "svcd: draining...\n");
  Daemon.requestStop();

  ServeDaemon::Counters C = Daemon.counters();
  std::fprintf(stderr,
               "svcd: stopped (%llu sessions, %llu frames, %llu launches, "
               "%llu protocol errors)\n",
               static_cast<unsigned long long>(C.SessionsAccepted),
               static_cast<unsigned long long>(C.FramesServed),
               static_cast<unsigned long long>(C.Launches),
               static_cast<unsigned long long>(C.ProtocolErrors));

  if (DumpMetrics) {
    auto Snap = MetricsRegistry::global().snapshot();
    for (const auto &KV : Snap.Counters)
      std::printf("%-24s %20llu\n", KV.first.c_str(),
                  static_cast<unsigned long long>(KV.second));
  }
  return 0;
}
