//===- tools/svc.cpp - SVIR compiler driver -------------------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver over the library: parse/verify an SVIR module, dump
/// specializations at chosen warp sizes, and report per-kernel analyses.
///
///   svc FILE                         parse + verify, print the module
///   svc --emit-ws N [--tie] FILE     print the width-N specialization
///   svc --analyze FILE               entry table, liveness, variance stats
///
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Liveness.h"
#include "simtvec/analysis/Variance.h"
#include "simtvec/core/TranslationCache.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/transforms/Passes.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace simtvec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: svc [--emit-ws N] [--tie] [--analyze] FILE.svir\n");
  return 2;
}

void analyzeKernel(const Kernel &Source) {
  // Run the same preparation pipeline the translation cache uses.
  Kernel K = Source;
  runPredicateToSelect(K);
  runBarrierSplit(K);
  SpecializationPlan Plan = SpecializationPlan::build(K);
  CFG G(K);
  Liveness Live(K, G);
  VarianceAnalysis Var(K);

  std::printf("kernel %s:\n", K.Name.c_str());
  std::printf("  blocks: %zu, registers: %zu, instructions: %zu\n",
              K.Blocks.size(), K.Regs.size(), K.instructionCount());
  std::printf("  entry points: %zu, spill bytes/thread: %u\n",
              Plan.EntryScalarBlocks.size(), Plan.SpillBytes);
  size_t Variant = Var.variantCount();
  std::printf("  thread-variant registers: %zu of %zu (%.0f%%)\n", Variant,
              K.Regs.size(),
              K.Regs.empty() ? 0.0 : 100.0 * Variant / K.Regs.size());
  for (uint32_t E = 0; E < Plan.EntryScalarBlocks.size(); ++E) {
    uint32_t B = Plan.EntryScalarBlocks[E];
    std::printf("  entry %u -> %s (restores %zu values)\n", E,
                K.Blocks[B].Name.c_str(),
                E == 0 ? 0 : Live.liveIn(B).count());
  }
}

} // namespace

int main(int argc, char **argv) {
  uint32_t EmitWs = 0;
  bool Tie = false, Analyze = false;
  const char *Path = nullptr;

  for (int A = 1; A < argc; ++A) {
    if (std::strcmp(argv[A], "--emit-ws") == 0 && A + 1 < argc) {
      EmitWs = static_cast<uint32_t>(std::atoi(argv[++A]));
    } else if (std::strcmp(argv[A], "--tie") == 0) {
      Tie = true;
    } else if (std::strcmp(argv[A], "--analyze") == 0) {
      Analyze = true;
    } else if (argv[A][0] == '-') {
      return usage();
    } else {
      Path = argv[A];
    }
  }
  if (!Path)
    return usage();

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "svc: cannot open '%s'\n", Path);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  auto MOrErr = parseModule(Buffer.str());
  if (!MOrErr) {
    std::fprintf(stderr, "%s:%s\n", Path, MOrErr.status().message().c_str());
    return 1;
  }
  Module &M = **MOrErr;
  if (Status E = verifyModule(M)) {
    std::fprintf(stderr, "%s: verifier: %s\n", Path, E.message().c_str());
    return 1;
  }

  if (Analyze) {
    for (const auto &K : M.kernels())
      analyzeKernel(*K);
    return 0;
  }

  if (EmitWs == 0) {
    std::fputs(printModule(M).c_str(), stdout);
    return 0;
  }

  MachineModel Machine;
  TranslationCache TC(M, Machine);
  for (const auto &K : M.kernels()) {
    auto ExecOrErr =
        TC.get({K->Name, EmitWs, Tie, /*UniformBranchOpt=*/false,
                /*UniformLoadOpt=*/false});
    if (!ExecOrErr) {
      std::fprintf(stderr, "%s: %s\n", K->Name.c_str(),
                   ExecOrErr.status().message().c_str());
      return 1;
    }
    std::fputs(printKernel((*ExecOrErr)->kernel()).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}
