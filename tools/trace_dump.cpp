//===- tools/trace_dump.cpp - Inspect / validate simtvec trace files ------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reads a Chrome trace-event JSON file (as written by `trace::writeJson` /
/// `Program::launchTraced` / `wallclock_throughput --trace`) and either
/// prints a per-category event summary (default) or validates the file
/// (`--check`):
///
///   - the file is structurally parseable JSON with a `traceEvents` array
///   - every event carries the required keys (name, ph, ts, pid, tid)
///   - record times are monotonically nondecreasing per tid (events are
///     emitted in per-thread record order; a span records at its *end*, so
///     its record time is ts+dur while every other phase records at ts)
///   - spans (`ph:"X"`) have a nonnegative duration, and no unmatched
///     begin/end (`ph:"B"`/`"E"`) pairs exist per tid
///   - kernel-graph spans nest correctly: every `graph.replay` span is
///     contained within a `stream.op` span on the same tid (a replay only
///     ever runs as a stream op; a bare replay span means the graph
///     bypassed the stream drain loop)
///
/// Exit code 0 on success, 1 on any violation. Usage:
///
///   trace_dump [--check] TRACE.json
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Pulls the raw token text of `"Key": <...>` out of one event object
/// (string values without quotes); empty when the key is absent.
std::string fieldValue(const std::string &Obj, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\"";
  size_t P = 0;
  while (true) {
    P = Obj.find(Needle, P);
    if (P == std::string::npos)
      return "";
    // Reject matches inside a *value* (e.g. an args string); keys are
    // always followed by a colon.
    size_t Q = P + Needle.size();
    while (Q < Obj.size() && (Obj[Q] == ' ' || Obj[Q] == '\t'))
      ++Q;
    if (Q < Obj.size() && Obj[Q] == ':') {
      P = Q + 1;
      break;
    }
    P += Needle.size();
  }
  while (P < Obj.size() && (Obj[P] == ' ' || Obj[P] == '\t'))
    ++P;
  if (P < Obj.size() && Obj[P] == '"') {
    std::string Out;
    for (size_t I = P + 1; I < Obj.size(); ++I) {
      if (Obj[I] == '\\' && I + 1 < Obj.size()) {
        Out += Obj[++I];
        continue;
      }
      if (Obj[I] == '"')
        return Out;
      Out += Obj[I];
    }
    return "";
  }
  size_t E = P;
  while (E < Obj.size() && Obj[E] != ',' && Obj[E] != '}' && Obj[E] != '\n')
    ++E;
  return Obj.substr(P, E - P);
}

/// Splits the `traceEvents` array into per-event object strings, respecting
/// nested braces (the `args` object) and quoted strings. Returns false on a
/// structural error (unbalanced braces, unterminated string, missing array).
bool splitEvents(const std::string &Text, std::vector<std::string> &Events,
                 std::string &Error) {
  size_t Arr = Text.find("\"traceEvents\"");
  if (Arr == std::string::npos) {
    Error = "no \"traceEvents\" key";
    return false;
  }
  Arr = Text.find('[', Arr);
  if (Arr == std::string::npos) {
    Error = "\"traceEvents\" is not an array";
    return false;
  }
  size_t I = Arr + 1;
  while (I < Text.size()) {
    while (I < Text.size() &&
           (Text[I] == ',' || Text[I] == '\n' || Text[I] == ' ' ||
            Text[I] == '\t' || Text[I] == '\r'))
      ++I;
    if (I >= Text.size()) {
      Error = "unterminated traceEvents array";
      return false;
    }
    if (Text[I] == ']')
      return true;
    if (Text[I] != '{') {
      Error = "expected '{' in traceEvents array";
      return false;
    }
    size_t Start = I;
    int Depth = 0;
    bool InString = false;
    for (; I < Text.size(); ++I) {
      char C = Text[I];
      if (InString) {
        if (C == '\\')
          ++I;
        else if (C == '"')
          InString = false;
        continue;
      }
      if (C == '"')
        InString = true;
      else if (C == '{')
        ++Depth;
      else if (C == '}') {
        if (--Depth == 0) {
          Events.push_back(Text.substr(Start, ++I - Start));
          break;
        }
      }
    }
    if (Depth != 0 || InString) {
      Error = "unbalanced event object";
      return false;
    }
  }
  Error = "unterminated traceEvents array";
  return false;
}

int fail(const char *Path, size_t EventIdx, const std::string &Why) {
  std::fprintf(stderr, "trace_dump: %s: event %zu: %s\n", Path, EventIdx,
               Why.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--check") == 0)
      Check = true;
    else if (!Path)
      Path = Argv[I];
    else {
      std::fprintf(stderr, "usage: trace_dump [--check] TRACE.json\n");
      return 2;
    }
  }
  if (!Path) {
    std::fprintf(stderr, "usage: trace_dump [--check] TRACE.json\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "trace_dump: cannot open %s\n", Path);
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();

  std::vector<std::string> Events;
  std::string Error;
  if (!splitEvents(Text, Events, Error)) {
    std::fprintf(stderr, "trace_dump: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  // Validation state: per-tid last timestamp and open B/E depth.
  std::map<std::string, double> LastTs;
  std::map<std::string, long> OpenBegins;
  // Kernel-graph nesting state: complete spans per tid, by [start, end].
  struct SpanRec {
    double B, E;
    size_t Idx;
  };
  std::map<std::string, std::vector<SpanRec>> GraphReplaySpans;
  std::map<std::string, std::vector<SpanRec>> StreamOpSpans;
  unsigned long long GraphSpans = 0;
  // Summary state: per (category, phase) event count, per-category span ns.
  std::map<std::string, unsigned long long> CatCount;
  std::map<std::string, double> CatSpanUs;
  unsigned long long Spans = 0, Instants = 0, Counters = 0, Meta = 0;

  for (size_t I = 0; I < Events.size(); ++I) {
    const std::string &E = Events[I];
    std::string Name = fieldValue(E, "name");
    std::string Ph = fieldValue(E, "ph");
    std::string Ts = fieldValue(E, "ts");
    std::string Pid = fieldValue(E, "pid");
    std::string Tid = fieldValue(E, "tid");
    if (Name.empty() || Ph.empty() || Pid.empty() || Tid.empty())
      return fail(Path, I, "missing required key (name/ph/pid/tid)");
    if (Ph == "M") { // metadata events carry no timestamp requirements
      ++Meta;
      continue;
    }
    if (Ts.empty())
      return fail(Path, I, "missing ts");
    char *End = nullptr;
    double TsV = std::strtod(Ts.c_str(), &End);
    if (End == Ts.c_str() || *End != '\0')
      return fail(Path, I, "ts is not a number: '" + Ts + "'");
    if (TsV < 0)
      return fail(Path, I, "negative ts");

    std::string Cat = fieldValue(E, "cat");
    if (Cat.empty())
      Cat = "default";
    ++CatCount[Cat + "/" + Ph];
    double RecordTs = TsV; // when the event hit the buffer
    if (Ph == "X") {
      ++Spans;
      std::string Dur = fieldValue(E, "dur");
      if (Dur.empty())
        return fail(Path, I, "span (ph:X) without dur");
      double DurV = std::strtod(Dur.c_str(), nullptr);
      if (DurV < 0)
        return fail(Path, I, "span with negative dur");
      CatSpanUs[Cat] += DurV;
      RecordTs = TsV + DurV; // spans record at scope exit
      if (Name.rfind("graph.", 0) == 0)
        ++GraphSpans;
      if (Name == "graph.replay")
        GraphReplaySpans[Tid].push_back({TsV, TsV + DurV, I});
      else if (Name == "stream.op")
        StreamOpSpans[Tid].push_back({TsV, TsV + DurV, I});
    }

    auto [It, New] = LastTs.emplace(Tid, RecordTs);
    if (!New) {
      if (RecordTs < It->second)
        return fail(Path, I,
                    "record times not monotonic for tid " + Tid + ": " + Ts +
                        " after a later earlier-recorded event");
      It->second = RecordTs;
    }

    if (Ph == "X") {
      // counted above
    } else if (Ph == "B") {
      ++OpenBegins[Tid];
    } else if (Ph == "E") {
      if (--OpenBegins[Tid] < 0)
        return fail(Path, I, "ph:E without matching ph:B on tid " + Tid);
    } else if (Ph == "i" || Ph == "I") {
      ++Instants;
    } else if (Ph == "C") {
      ++Counters;
    } else {
      return fail(Path, I, "unknown phase '" + Ph + "'");
    }
  }
  for (const auto &[Tid, Open] : OpenBegins)
    if (Open != 0) {
      std::fprintf(stderr,
                   "trace_dump: %s: %ld unclosed ph:B event(s) on tid %s\n",
                   Path, Open, Tid.c_str());
      return 1;
    }
  for (const auto &[Tid, Replays] : GraphReplaySpans) {
    auto It = StreamOpSpans.find(Tid);
    for (const SpanRec &R : Replays) {
      bool Contained = false;
      if (It != StreamOpSpans.end())
        for (const SpanRec &O : It->second)
          if (O.B <= R.B && R.E <= O.E) {
            Contained = true;
            break;
          }
      if (!Contained)
        return fail(Path, R.Idx,
                    "graph.replay span not nested inside a stream.op span "
                    "on tid " +
                        Tid);
    }
  }

  std::string Dropped = fieldValue(Text, "droppedEvents");

  if (Check) {
    std::printf("trace_dump: %s: OK (%zu events, %llu spans, %llu instants, "
                "%llu counters, %llu graph spans, dropped=%s)\n",
                Path, Events.size(), Spans, Instants, Counters, GraphSpans,
                Dropped.empty() ? "?" : Dropped.c_str());
    return 0;
  }

  std::printf("%s: %zu events (%llu spans, %llu instants, %llu counters, "
              "%llu metadata), dropped=%s\n",
              Path, Events.size(), Spans, Instants, Counters, Meta,
              Dropped.empty() ? "?" : Dropped.c_str());
  std::printf("%-24s %10s\n", "category/phase", "events");
  for (const auto &[Key, N] : CatCount)
    std::printf("%-24s %10llu\n", Key.c_str(), N);
  if (!CatSpanUs.empty()) {
    std::printf("%-24s %12s\n", "category", "span-us");
    for (const auto &[Cat, Us] : CatSpanUs)
      std::printf("%-24s %12.1f\n", Cat.c_str(), Us);
  }
  return 0;
}
