#!/usr/bin/env bash
#===- tools/tsan_check.sh - ThreadSanitizer gate for concurrency paths ----===#
#
# Part of SIMTVec (CGO 2012 reproduction).
#
#===----------------------------------------------------------------------===#
#
# Configures a ThreadSanitizer build in <repo>/build-tsan and runs the
# concurrency-sensitive suites under it: the stream/event subsystem and the
# worker pool (Streams.*), the sharded translation cache fast path
# (FastPathTest.*), the engine-differential shape runs (ShapeExec.*), the
# end-to-end launch smoke tests (RuntimeSmoke.*), and the lock-free tracing
# buffers with tracing on (TraceTest.*). Also registrable as a ctest job
# via -DSIMTVEC_TSAN_CHECK=ON at configure time.
#
# Usage: tools/tsan_check.sh [ctest-name-regex]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-tsan"
FILTER="${1:-Streams|FastPathTest|ShapeExec|RuntimeSmoke|Trace}"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMTVEC_SANITIZE=thread
cmake --build "$BUILD" -j"$(nproc)" --target simtvec_tests
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD" -R "$FILTER" --output-on-failure
