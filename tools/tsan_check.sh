#!/usr/bin/env bash
#===- tools/tsan_check.sh - ThreadSanitizer gate for concurrency paths ----===#
#
# Part of SIMTVec (CGO 2012 reproduction).
#
#===----------------------------------------------------------------------===#
#
# Configures a ThreadSanitizer build in <repo>/build-tsan and runs the
# concurrency-sensitive suites under it: the stream/event subsystem and the
# worker pool (Streams.*), the sharded translation cache fast path
# (FastPathTest.*), the engine-differential shape runs (ShapeExec.*), the
# end-to-end launch smoke tests (RuntimeSmoke.*), the lock-free tracing
# buffers with tracing on (TraceTest.*), the specialization service —
# persistent artifact store plus warp-width autotuner (SpecCache.*) — and
# the SIMD lane-kernel suites: the Simd<T,W> value class plus the
# vector-vs-scalar kernel differentials and resolver audit (SimdClass.*,
# SimdKernelDiff.*, SimdKernelAudit.*, SimdKnobs.*) — and the native-JIT
# hot-swap race, where the background compile publishes entry pointers
# into four concurrently dispatching streams (JitHotSwap.*) — and the
# kernel-graph suites (Graph.*), whose concurrent-replay test replays one
# immutable GraphExec from four host threads on four streams — and the
# divergence-reduction suites (MeldTransform/MeldGuard/MeldDiff/MeldEffect/
# MeldPgo), whose PGO tests race branch-plan commits from the worker pool
# against concurrent chooseBranchPlan readers — and the serving-daemon
# suites (Serve/ServeProtocol/ServeFuzz/ServeSched/ServeGovernor/
# ServePool), whose sessions run concurrent client threads against one
# in-process daemon sharing a WorkerPool, scheduler, and artifact store,
# including the drain-vs-traffic quiescence race. After
# the suites pass, a burst of concurrent bench processes is aimed at one
# shared SIMTVEC_CACHE_DIR (atomic rename-on-publish under contention) and
# the resulting store must survive `cache_tool verify`. Also registrable as
# a ctest job via -DSIMTVEC_TSAN_CHECK=ON at configure time.
#
# Usage: tools/tsan_check.sh [ctest-name-regex]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-tsan"
FILTER="${1:-Streams|FastPathTest|ShapeExec|RuntimeSmoke|Trace|SpecCache|Simd|Jit|Graph|Meld|Serve}"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMTVEC_SANITIZE=thread
cmake --build "$BUILD" -j"$(nproc)" --target simtvec_tests wallclock_throughput cache_tool
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD" -R "$FILTER" --output-on-failure

# Concurrent processes racing to populate one artifact store: every publish
# goes through write-to-temp + rename, so the store must come out clean no
# matter how the processes interleave.
CACHE_DIR="$BUILD/tsan-cache"
rm -rf "$CACHE_DIR"
mkdir -p "$CACHE_DIR"
pids=()
for i in 1 2 3 4; do
  SIMTVEC_CACHE_DIR="$CACHE_DIR" \
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD/bench/wallclock_throughput" "$CACHE_DIR/run$i.json" 1 1 \
    >/dev/null &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
"$BUILD/tools/cache_tool" --dir "$CACHE_DIR" verify
