//===- bench/ablation_uniform_branch.cpp - Uniform-branch lowering --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablation A: lowering provably warp-uniform branches as direct branches
/// instead of predicate-sum switches. This implements the refinement the
/// paper defers to divergence analysis [11] ("we envision divergence
/// analysis ... to identify opportunities"): branches whose conditions the
/// variance analysis proves uniform never need the vote+switch sequence.
///
/// Expected: small wins on kernels with uniform loops (fewer vote.sum /
/// switch executions); no effect on data-divergent branches.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace simtvec;

int main() {
  std::printf("Ablation: uniform-branch direct lowering (ws<=4, dynamic "
              "formation)\n");
  std::printf("%-20s %12s %12s %10s\n", "application", "base Mcyc",
              "ubo Mcyc", "speedup");
  double GeoSum = 0;
  unsigned Count = 0;
  for (const Workload &W : allWorkloads()) {
    LaunchStats Base = runOrDie(W, 1, dynamicFormation(4));
    LaunchOptions UboOptions = dynamicFormation(4);
    UboOptions.UniformBranchOpt = true;
    LaunchStats Ubo = runOrDie(W, 1, UboOptions);
    double Speedup = modeledCycles(Base) / modeledCycles(Ubo);
    std::printf("%-20s %12.3f %12.3f %9.2fx\n", W.Name,
                modeledCycles(Base) / 1e6, modeledCycles(Ubo) / 1e6,
                Speedup);
    GeoSum += std::log(Speedup);
    ++Count;
  }
  std::printf("\ngeomean: %.3fx (the paper's future-work refinement; "
              "uniform loops avoid vote+switch)\n",
              std::exp(GeoSum / Count));
  return 0;
}
