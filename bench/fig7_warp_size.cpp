//===- bench/fig7_warp_size.cpp - Figure 7: average warp size -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 7: the distribution of kernel entries by warp size
/// (1, 2, 4) with maximum warp size 4, plus the average warp size.
///
/// Paper shape: most kernel entries run at warp size 4 for almost every
/// application; divergent applications mix in smaller warps; "many
/// applications are not entirely convergent, which justifies ... dynamic
/// warp formation".
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace simtvec;

int main() {
  std::printf("Figure 7: kernel entries by warp size (max warp size 4, "
              "dynamic formation)\n");
  std::printf("%-20s %8s %8s %8s %10s\n", "application", "ws=1", "ws=2",
              "ws=4", "avg size");
  for (const Workload &W : allWorkloads()) {
    LaunchStats S = runOrDie(W, 1, dynamicFormation(4));
    double Total = static_cast<double>(S.WarpEntries);
    auto Frac = [&](uint32_t Width) {
      auto It = S.EntriesByWidth.find(Width);
      return It == S.EntriesByWidth.end() ? 0.0 : It->second / Total;
    };
    std::printf("%-20s %7.1f%% %7.1f%% %7.1f%% %10.2f\n", W.Name,
                100 * Frac(1), 100 * Frac(2), 100 * Frac(4),
                S.avgWarpSize());
  }
  std::printf("\npaper: warp size 4 dominates for nearly all applications; "
              "divergent apps show mixed sizes\n");
  return 0;
}
