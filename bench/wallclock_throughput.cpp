//===- bench/wallclock_throughput.cpp - Host wall-clock trajectory --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Host-side wall-clock throughput harness. Unlike the figure benches,
/// which report *modeled* cycles, this measures how fast the runtime itself
/// executes: warm launches of representative workloads across warp widths
/// {1,2,4,8} x workers {1,N}, reported as threads/second and emitted as
/// machine-readable `BENCH_wallclock.json` so future PRs have a host-perf
/// trajectory to regress against.
///
/// Usage: wallclock_throughput [--metrics] [--trace TRACE.json]
///        [--simd auto|vector|scalar|both] [--jit auto|native|interp|both]
///        [--branch auto|meld|predicate|yield|both]
///        [output.json] [scale] [reps]
///
/// `--metrics` prints the process MetricsRegistry snapshot (cache hit/miss
/// totals, warps formed per width, pool occupancy, ...) after the run;
/// `--trace` records the whole run as a trace session and writes Chrome
/// trace-event JSON (validate with tools/trace_dump --check);
/// `--simd` pins the lane-kernel path: `vector` and `scalar` force one
/// path, `both` measures every cell under each path (keyed by the result
/// objects' "simd" field — tools/bench_diff compares them cell-by-cell),
/// and the default `auto` follows SIMTVEC_SIMD / host capability;
/// `--jit` picks the execution tier the same way: `native` forces the
/// synchronously compiled native tier, `interp` pins the interpreter,
/// `both` measures each cell under both tiers (keyed by the "jit" field),
/// and `auto` follows SIMTVEC_JIT / the default tiered behaviour;
/// `--branch` pins the divergent-branch policy: `meld`/`predicate`/`yield`
/// force one policy, `both` measures every cell under forced-meld and
/// forced-yield (keyed by the "branch" field — the outputs must agree
/// bit-for-bit, only the wall time moves), and `auto` follows
/// SIMTVEC_BRANCH, whose unset default is the historical yield policy.
///
/// Repeated-launch mode: wallclock_throughput --launches N [output.json]
/// [scale]. Measures launch *overhead* rather than kernel throughput: N
/// back-to-back launches of each workload on a tiny serving shape (one
/// CTA of at most 4 threads, so per-launch cost dominates per-thread
/// work), under several dispatch modes — per-launch OS-thread spawn
/// (`spawn`, the pre-pool engine), blocking launches on the persistent
/// worker pool (`pool`), pipelined asynchronous launches on one stream
/// (`stream`), and replay of a pre-instantiated kernel graph (`graph`: an
/// 8-launch chain captured once, instantiated once, then replayed N/8
/// times — the amortized dispatch path graphs exist for). The emitted
/// JSON keys each (workload, mode) pair as "Workload+mode" so tools/
/// bench_diff can compare trajectories cell-by-cell.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "simtvec/runtime/Graph.h"
#include "simtvec/support/Branch.h"
#include "simtvec/support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace simtvec;

namespace {

struct Sample {
  const char *Workload;
  uint32_t Width;
  unsigned Workers;
  const char *Simd;     // resolved lane-kernel path ("vector" / "scalar")
  const char *Jit;      // resolved execution tier ("auto"/"native"/"interp")
  const char *Branch;   // resolved branch policy ("yield"/"predicate"/...)
  double Seconds;       // best-of-reps wall time of one warm launch
  uint64_t Threads;     // logical threads per launch
  double ThreadsPerSec;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Host/build provenance for the JSON header, so a committed trajectory
/// file identifies the configuration it was measured under. \p SimdStr is
/// the active lane-kernel path ("vector"/"scalar", or "both" when the run
/// measures each cell under each path).
void printHostHeader(FILE *Out, const char *SimdStr, const char *JitStr,
                     const char *BranchStr) {
#if defined(__clang__)
  std::fprintf(Out, "  \"compiler\": \"clang %d.%d.%d\",\n", __clang_major__,
               __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::fprintf(Out, "  \"compiler\": \"gcc %d.%d.%d\",\n", __GNUC__,
               __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::fprintf(Out, "  \"compiler\": \"unknown\",\n");
#endif
#ifdef SIMTVEC_BENCH_FLAGS
  std::fprintf(Out, "  \"flags\": \"%s\",\n", SIMTVEC_BENCH_FLAGS);
#else
  std::fprintf(Out, "  \"flags\": \"\",\n");
#endif
#ifdef SIMTVEC_NATIVE_BUILD
  std::fprintf(Out, "  \"native\": true,\n");
#else
  std::fprintf(Out, "  \"native\": false,\n");
#endif
  std::fprintf(Out, "  \"simd\": \"%s\",\n", SimdStr);
  std::fprintf(Out, "  \"jit\": \"%s\",\n", JitStr);
  std::fprintf(Out, "  \"branch\": \"%s\",\n", BranchStr);
  std::fprintf(Out, "  \"nproc\": %u,\n",
               std::thread::hardware_concurrency());
}

/// Measures N back-to-back launches; returns total wall seconds (best of
/// 3 batches).
template <typename LaunchBatch>
double timeBatches(int Launches, LaunchBatch &&Batch) {
  double Best = 1e100;
  for (int Rep = 0; Rep < 3; ++Rep) {
    double T0 = now();
    Batch(Launches);
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

int runLaunchesMode(int Launches, const char *OutPath, uint32_t Scale,
                    SimdMode Simd, JitMode Jit, BranchMode Branch) {
  const char *SimdStr = simdPathName(resolveSimdPath(Simd));
  const char *JitStr = jitModeName(resolveJitMode(Jit));
  const char *BranchStr = branchModeName(resolveBranchMode(Branch));
  const char *Names[] = {"VectorAdd", "Mandelbrot", "Histogram64",
                         "BinomialOptions"};
  MachineModel Machine;

  struct ModeSample {
    std::string Cell; // "Workload+mode"
    unsigned Workers;
    double SecondsPerLaunch;
    uint64_t Threads;
  };
  std::vector<ModeSample> Samples;
  double BestPoolSpeedup = 0;
  double BestGraphSpeedup = 0;

  for (const char *Name : Names) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "unknown workload '%s'\n", Name);
      return 1;
    }
    std::unique_ptr<Program> Prog = compileWorkload(*W);
    auto Inst = W->Make(Scale);
    // Tiny serving shape: launch overhead is the quantity under test, so
    // keep per-launch work small enough that it does not drown the
    // overhead (one CTA, one warp-width of threads).
    Dim3 Grid = {1, 1, 1};
    Dim3 Block = Inst->Block;
    Block.X = std::min(Block.X, 4u);
    Block.Y = 1;
    Block.Z = 1;
    uint64_t Threads = Grid.count() * Block.count();

    auto BlockingBatch = [&](const LaunchOptions &O) {
      return [&, O](int N) {
        for (int I = 0; I < N; ++I)
          launchOrDie(*Prog, *Inst->Dev, W->KernelName, Grid, Block,
                      Inst->Params, O);
      };
    };

    LaunchOptions Spawn = dynamicFormation(4);
    Spawn.Workers = Machine.Cores;
    Spawn.UsePersistentPool = false;
    Spawn.Simd = Simd;
    Spawn.Jit = Jit;
    Spawn.Branch = Branch;
    LaunchOptions Pool = Spawn;
    Pool.UsePersistentPool = true;
    // Native-tier launch overhead: the first forced-native launch compiles
    // synchronously and publishes the entry point; the timed batches then
    // measure warm launches that dispatch straight into the native tier.
    LaunchOptions JitWarm = Pool;
    JitWarm.Jit = JitMode::Native;

    // Cold-launch latency: a fresh Program's first launch, which includes
    // the specialization. With SIMTVEC_CACHE_DIR set this is the disk-warm
    // path (artifact load + rebuild instead of a compile) — comparing the
    // "+cold" cell across cache-off/cache-on runs is the cold-vs-warm
    // number the specialization service is after.
    double ColdSec;
    {
      std::unique_ptr<Program> ColdProg = compileWorkload(*W);
      double T0 = now();
      launchOrDie(*ColdProg, *Inst->Dev, W->KernelName, Grid, Block,
                  Inst->Params, Pool);
      ColdSec = now() - T0;
    }

    BlockingBatch(Pool)(1); // warm the translation cache once
    double SpawnSec = timeBatches(Launches, BlockingBatch(Spawn)) / Launches;
    double PoolSec = timeBatches(Launches, BlockingBatch(Pool)) / Launches;
    BlockingBatch(JitWarm)(1); // claim + compile + publish the native tier
    double JitWarmSec =
        timeBatches(Launches, BlockingBatch(JitWarm)) / Launches;
    double StreamSec = timeBatches(Launches, [&](int N) {
      Stream S;
      for (int I = 0; I < N; ++I)
        Prog->launchAsync(S, *Inst->Dev, W->KernelName, Grid, Block,
                          Inst->Params, Pool);
      if (Status E = S.synchronize(); E.isError()) {
        std::fprintf(stderr, "%s: %s\n", W->Name, E.message().c_str());
        std::exit(1);
      }
    }) / Launches;

    // Graph replay: capture an 8-launch chain once, instantiate once
    // (resolving every specialization eagerly, native tier included), then
    // replay the whole chain per submission. Per-launch cost drops to an
    // atomic dependency countdown plus the prepared dispatch.
    constexpr int GraphChain = 8;
    Graph G;
    {
      Stream Cap;
      if (Status E = Cap.beginCapture(G); E.isError()) {
        std::fprintf(stderr, "%s: %s\n", W->Name, E.message().c_str());
        return 1;
      }
      for (int I = 0; I < GraphChain; ++I)
        Prog->launchAsync(Cap, *Inst->Dev, W->KernelName, Grid, Block,
                          Inst->Params, Pool);
      if (Status E = Cap.endCapture(); E.isError()) {
        std::fprintf(stderr, "%s: %s\n", W->Name, E.message().c_str());
        return 1;
      }
    }
    GraphInstantiateOptions IO;
    IO.SyncNative = true; // replays must measure the settled tier
    auto ExecOrErr = G.instantiate(*Prog, IO);
    if (!ExecOrErr) {
      std::fprintf(stderr, "%s: %s\n", W->Name,
                   ExecOrErr.status().message().c_str());
      return 1;
    }
    GraphExec Exec = *ExecOrErr;
    const int Replays = (Launches + GraphChain - 1) / GraphChain;
    double GraphSec = timeBatches(Replays, [&](int N) {
      Stream S;
      for (int I = 0; I < N; ++I)
        Exec.launch(S);
      if (Status E = S.synchronize(); E.isError()) {
        std::fprintf(stderr, "%s: %s\n", W->Name, E.message().c_str());
        std::exit(1);
      }
    }) / (static_cast<double>(Replays) * GraphChain);

    Samples.push_back({std::string(W->Name) + "+spawn", Machine.Cores,
                       SpawnSec, Threads});
    Samples.push_back(
        {std::string(W->Name) + "+pool", Machine.Cores, PoolSec, Threads});
    Samples.push_back({std::string(W->Name) + "+stream", Machine.Cores,
                       StreamSec, Threads});
    Samples.push_back(
        {std::string(W->Name) + "+cold", Machine.Cores, ColdSec, Threads});
    Samples.push_back({std::string(W->Name) + "+jitwarm", Machine.Cores,
                       JitWarmSec, Threads});
    Samples.push_back(
        {std::string(W->Name) + "+graph", Machine.Cores, GraphSec, Threads});
    double Speedup = SpawnSec / PoolSec;
    BestPoolSpeedup = std::max(BestPoolSpeedup, Speedup);
    double GraphSpeedup = StreamSec / GraphSec;
    BestGraphSpeedup = std::max(BestGraphSpeedup, GraphSpeedup);
    std::printf("%-16s cold %8.1f us  spawn %8.1f us  pool %8.1f us  "
                "stream %8.1f us  jit-warm %8.1f us  graph %8.1f us  "
                "pool-speedup %.2fx  graph-speedup %.2fx\n",
                W->Name, ColdSec * 1e6, SpawnSec * 1e6, PoolSec * 1e6,
                StreamSec * 1e6, JitWarmSec * 1e6, GraphSec * 1e6, Speedup,
                GraphSpeedup);
  }
  std::printf("best pool-vs-spawn launch speedup: %.2fx\n", BestPoolSpeedup);
  std::printf("best graph-vs-stream replay speedup: %.2fx\n",
              BestGraphSpeedup);

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", OutPath);
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"wallclock_launches\",\n");
  printHostHeader(Out, SimdStr, JitStr, BranchStr);
  std::fprintf(Out, "  \"scale\": %u,\n  \"launches\": %d,\n  \"results\": [\n",
               Scale, Launches);
  for (size_t I = 0; I < Samples.size(); ++I) {
    const ModeSample &S = Samples[I];
    std::fprintf(Out,
                 "    {\"workload\": \"%s\", \"width\": 4, \"workers\": %u, "
                 "\"simd\": \"%s\", \"jit\": \"%s\", \"branch\": \"%s\", "
                 "\"seconds\": %.6e, "
                 "\"threads\": %llu, \"threads_per_sec\": %.6e}%s\n",
                 S.Cell.c_str(), S.Workers, SimdStr, JitStr, BranchStr,
                 S.SecondsPerLaunch,
                 static_cast<unsigned long long>(S.Threads),
                 static_cast<double>(S.Threads) / S.SecondsPerLaunch,
                 I + 1 < Samples.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}

} // namespace

namespace {

/// Prints the process-wide metrics snapshot (the `--metrics` report).
void printMetrics() {
  MetricsRegistry::Snapshot S = MetricsRegistry::global().snapshot();
  std::printf("-- metrics --\n");
  for (const auto &[Name, V] : S.Counters)
    std::printf("%-24s %20llu\n", Name.c_str(),
                static_cast<unsigned long long>(V));
  for (const auto &[Name, V] : S.Gauges)
    std::printf("%-24s %20.1f\n", Name.c_str(), V);
  uint64_t Hits = S.counterValue("tc.hits");
  uint64_t Misses = S.counterValue("tc.misses");
  if (Hits + Misses)
    std::printf("%-24s %19.1f%%\n", "tc.hit_rate",
                100.0 * static_cast<double>(Hits) /
                    static_cast<double>(Hits + Misses));
}

/// Ends the trace session and writes it to \p TracePath; returns 1 on a
/// write failure.
int finishTrace(const char *TracePath) {
  trace::endSession();
  if (Status E = trace::writeJson(TracePath); E.isError()) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 1;
  }
  std::printf("wrote trace %s\n", TracePath);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // Leading flags; everything after them keeps the historical positional
  // meaning (bench_smoke and committed trajectories depend on it).
  bool Metrics = false;
  const char *TracePath = nullptr;
  const char *SimdArg = "auto";
  const char *JitArg = "auto";
  const char *BranchArg = "auto";
  int ArgI = 1;
  while (ArgI < argc) {
    if (std::strcmp(argv[ArgI], "--metrics") == 0) {
      Metrics = true;
      ++ArgI;
    } else if (std::strcmp(argv[ArgI], "--trace") == 0 && ArgI + 1 < argc) {
      TracePath = argv[ArgI + 1];
      ArgI += 2;
    } else if (std::strcmp(argv[ArgI], "--simd") == 0 && ArgI + 1 < argc) {
      SimdArg = argv[ArgI + 1];
      ArgI += 2;
    } else if (std::strcmp(argv[ArgI], "--jit") == 0 && ArgI + 1 < argc) {
      JitArg = argv[ArgI + 1];
      ArgI += 2;
    } else if (std::strcmp(argv[ArgI], "--branch") == 0 && ArgI + 1 < argc) {
      BranchArg = argv[ArgI + 1];
      ArgI += 2;
    } else {
      break;
    }
  }
  // The lane-kernel paths to measure. "both" runs every cell under the
  // forced-vector and forced-scalar paths so one file carries the
  // apples-to-apples comparison; otherwise one path per run.
  std::vector<SimdMode> SimdModes;
  if (std::strcmp(SimdArg, "auto") == 0)
    SimdModes = {SimdMode::Auto};
  else if (std::strcmp(SimdArg, "vector") == 0)
    SimdModes = {SimdMode::Vector};
  else if (std::strcmp(SimdArg, "scalar") == 0)
    SimdModes = {SimdMode::Scalar};
  else if (std::strcmp(SimdArg, "both") == 0)
    SimdModes = {SimdMode::Vector, SimdMode::Scalar};
  else {
    std::fprintf(stderr,
                 "--simd takes auto|vector|scalar|both, got '%s'\n", SimdArg);
    return 1;
  }
  const char *HeaderSimd = SimdModes.size() > 1
                               ? "both"
                               : simdPathName(resolveSimdPath(SimdModes[0]));
  // The execution tiers to measure, mirroring --simd: "both" runs every
  // cell under the forced-native tier and the pinned interpreter so one
  // file carries the tier comparison.
  std::vector<JitMode> JitModes;
  if (std::strcmp(JitArg, "auto") == 0)
    JitModes = {JitMode::Auto};
  else if (std::strcmp(JitArg, "native") == 0)
    JitModes = {JitMode::Native};
  else if (std::strcmp(JitArg, "interp") == 0)
    JitModes = {JitMode::Interp};
  else if (std::strcmp(JitArg, "both") == 0)
    JitModes = {JitMode::Native, JitMode::Interp};
  else {
    std::fprintf(stderr,
                 "--jit takes auto|native|interp|both, got '%s'\n", JitArg);
    return 1;
  }
  const char *HeaderJit = JitModes.size() > 1
                              ? "both"
                              : jitModeName(resolveJitMode(JitModes[0]));
  // The divergent-branch policies to measure. "both" runs every cell under
  // forced-meld and forced-yield so one file carries the policy comparison
  // (the outputs are bit-identical by contract; the wall time is the
  // experiment). "auto" follows SIMTVEC_BRANCH, defaulting to yield.
  std::vector<BranchMode> BranchModes;
  if (std::strcmp(BranchArg, "auto") == 0)
    BranchModes = {BranchMode::Auto};
  else if (std::strcmp(BranchArg, "meld") == 0)
    BranchModes = {BranchMode::Meld};
  else if (std::strcmp(BranchArg, "predicate") == 0)
    BranchModes = {BranchMode::Predicate};
  else if (std::strcmp(BranchArg, "yield") == 0)
    BranchModes = {BranchMode::Yield};
  else if (std::strcmp(BranchArg, "both") == 0)
    BranchModes = {BranchMode::Meld, BranchMode::Yield};
  else {
    std::fprintf(
        stderr, "--branch takes auto|meld|predicate|yield|both, got '%s'\n",
        BranchArg);
    return 1;
  }
  const char *HeaderBranch =
      BranchModes.size() > 1
          ? "both"
          : branchModeName(resolveBranchMode(BranchModes[0]));
  argv += ArgI - 1;
  argc -= ArgI - 1;
  if (TracePath)
    trace::startSession();

  if (argc > 1 && std::strcmp(argv[1], "--launches") == 0) {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: %s --launches N [output.json] [scale]\n", argv[0]);
      return 1;
    }
    int Launches = std::atoi(argv[2]);
    const char *LaunchOut =
        argc > 3 ? argv[3] : "BENCH_wallclock_launches.json";
    uint32_t LaunchScale =
        argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 1;
    int RC = runLaunchesMode(Launches, LaunchOut, LaunchScale, SimdModes[0],
                             JitModes[0], BranchModes[0]);
    if (TracePath && RC == 0)
      RC = finishTrace(TracePath);
    if (Metrics)
      printMetrics();
    return RC;
  }

  const char *OutPath = argc > 1 ? argv[1] : "BENCH_wallclock.json";
  const uint32_t Scale =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 1;
  const int Reps = argc > 3 ? std::atoi(argv[3]) : 5;

  const char *Names[] = {"VectorAdd", "Mandelbrot", "Histogram64",
                         "BinomialOptions", "LoopTrip", "Bfs", "Spmv"};
  const uint32_t Widths[] = {1, 2, 4, 8};
  MachineModel Machine;
  const unsigned WorkerCounts[] = {1, Machine.Cores};

  std::vector<Sample> Samples;
  for (const char *Name : Names) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "unknown workload '%s'\n", Name);
      return 1;
    }
    // Validate once at this scale before timing anything.
    if (auto Checked = runWorkload(*W, Scale, dynamicFormation(4)); !Checked) {
      std::fprintf(stderr, "%s failed validation: %s\n", Name,
                   Checked.status().message().c_str());
      return 1;
    }
    for (uint32_t Width : Widths) {
      for (unsigned Workers : WorkerCounts) {
        for (SimdMode Simd : SimdModes) {
         for (JitMode Jit : JitModes) {
          for (BranchMode Branch : BranchModes) {
          const char *SimdStr = simdPathName(resolveSimdPath(Simd));
          const char *JitStr = jitModeName(resolveJitMode(Jit));
          const char *BranchStr = branchModeName(resolveBranchMode(Branch));
          std::unique_ptr<Program> Prog = compileWorkload(*W);
          auto Inst = W->Make(Scale);
          LaunchOptions O = dynamicFormation(Width);
          O.Workers = Workers;
          O.Simd = Simd;
          O.Jit = Jit;
          O.Branch = Branch;
          auto Launch = [&]() {
            auto S = Prog->launch(*Inst->Dev, W->KernelName, Inst->Grid,
                                  Inst->Block, Inst->Params, O);
            if (!S) {
              std::fprintf(
                  stderr,
                  "%s (w=%u, workers=%u, simd=%s, jit=%s, branch=%s): %s\n",
                  Name, Width, Workers, SimdStr, JitStr, BranchStr,
                  S.status().message().c_str());
              std::exit(1);
            }
          };
          // Warm the translation cache; a forced-native warm launch also
          // compiles synchronously, so the timed reps below run the tier
          // the cell claims to measure.
          Launch();
          double Best = 1e100;
          for (int Rep = 0; Rep < Reps; ++Rep) {
            double T0 = now();
            Launch();
            Best = std::min(Best, now() - T0);
          }
          uint64_t Threads = Inst->Grid.count() * Inst->Block.count();
          Samples.push_back({W->Name, Width, Workers, SimdStr, JitStr,
                             BranchStr, Best, Threads,
                             static_cast<double>(Threads) / Best});
          std::printf(
              "%-16s width=%u workers=%u simd=%-6s jit=%-6s branch=%-9s "
              "%9.3f ms  %12.0f threads/s\n",
              W->Name, Width, Workers, SimdStr, JitStr, BranchStr, Best * 1e3,
              static_cast<double>(Threads) / Best);
          }
         }
        }
      }
    }
  }

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", OutPath);
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"wallclock_throughput\",\n");
  printHostHeader(Out, HeaderSimd, HeaderJit, HeaderBranch);
  std::fprintf(Out, "  \"scale\": %u,\n  \"reps\": %d,\n  \"results\": [\n",
               Scale, Reps);
  for (size_t I = 0; I < Samples.size(); ++I) {
    const Sample &S = Samples[I];
    std::fprintf(Out,
                 "    {\"workload\": \"%s\", \"width\": %u, \"workers\": %u, "
                 "\"simd\": \"%s\", \"jit\": \"%s\", \"branch\": \"%s\", "
                 "\"seconds\": %.6e, "
                 "\"threads\": %llu, \"threads_per_sec\": %.6e}%s\n",
                 S.Workload, S.Width, S.Workers, S.Simd, S.Jit, S.Branch,
                 S.Seconds, static_cast<unsigned long long>(S.Threads),
                 S.ThreadsPerSec, I + 1 < Samples.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  if (TracePath)
    if (int RC = finishTrace(TracePath))
      return RC;
  if (Metrics)
    printMetrics();
  return 0;
}
