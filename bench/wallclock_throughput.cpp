//===- bench/wallclock_throughput.cpp - Host wall-clock trajectory --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Host-side wall-clock throughput harness. Unlike the figure benches,
/// which report *modeled* cycles, this measures how fast the runtime itself
/// executes: warm launches of representative workloads across warp widths
/// {1,2,4} x workers {1,N}, reported as threads/second and emitted as
/// machine-readable `BENCH_wallclock.json` so future PRs have a host-perf
/// trajectory to regress against.
///
/// Usage: wallclock_throughput [output.json] [scale] [reps]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace simtvec;

namespace {

struct Sample {
  const char *Workload;
  uint32_t Width;
  unsigned Workers;
  double Seconds;       // best-of-reps wall time of one warm launch
  uint64_t Threads;     // logical threads per launch
  double ThreadsPerSec;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Host/build provenance for the JSON header, so a committed trajectory
/// file identifies the configuration it was measured under.
void printHostHeader(FILE *Out) {
#if defined(__clang__)
  std::fprintf(Out, "  \"compiler\": \"clang %d.%d.%d\",\n", __clang_major__,
               __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::fprintf(Out, "  \"compiler\": \"gcc %d.%d.%d\",\n", __GNUC__,
               __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::fprintf(Out, "  \"compiler\": \"unknown\",\n");
#endif
#ifdef SIMTVEC_BENCH_FLAGS
  std::fprintf(Out, "  \"flags\": \"%s\",\n", SIMTVEC_BENCH_FLAGS);
#else
  std::fprintf(Out, "  \"flags\": \"\",\n");
#endif
#ifdef SIMTVEC_NATIVE_BUILD
  std::fprintf(Out, "  \"native\": true,\n");
#else
  std::fprintf(Out, "  \"native\": false,\n");
#endif
  std::fprintf(Out, "  \"nproc\": %u,\n",
               std::thread::hardware_concurrency());
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_wallclock.json";
  const uint32_t Scale =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 1;
  const int Reps = argc > 3 ? std::atoi(argv[3]) : 5;

  const char *Names[] = {"VectorAdd", "Mandelbrot", "Histogram64",
                         "BinomialOptions"};
  const uint32_t Widths[] = {1, 2, 4};
  MachineModel Machine;
  const unsigned WorkerCounts[] = {1, Machine.Cores};

  std::vector<Sample> Samples;
  for (const char *Name : Names) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "unknown workload '%s'\n", Name);
      return 1;
    }
    // Validate once at this scale before timing anything.
    if (auto Checked = runWorkload(*W, Scale, dynamicFormation(4)); !Checked) {
      std::fprintf(stderr, "%s failed validation: %s\n", Name,
                   Checked.status().message().c_str());
      return 1;
    }
    for (uint32_t Width : Widths) {
      for (unsigned Workers : WorkerCounts) {
        std::unique_ptr<Program> Prog = compileWorkload(*W);
        auto Inst = W->Make(Scale);
        LaunchOptions O = dynamicFormation(Width);
        O.Workers = Workers;
        auto Launch = [&]() {
          auto S = Prog->launch(*Inst->Dev, W->KernelName, Inst->Grid,
                                Inst->Block, Inst->Params, O);
          if (!S) {
            std::fprintf(stderr, "%s (w=%u, workers=%u): %s\n", Name, Width,
                         Workers, S.status().message().c_str());
            std::exit(1);
          }
        };
        Launch(); // warm the translation cache
        double Best = 1e100;
        for (int Rep = 0; Rep < Reps; ++Rep) {
          double T0 = now();
          Launch();
          Best = std::min(Best, now() - T0);
        }
        uint64_t Threads = Inst->Grid.count() * Inst->Block.count();
        Samples.push_back({W->Name, Width, Workers, Best, Threads,
                           static_cast<double>(Threads) / Best});
        std::printf("%-16s width=%u workers=%u  %9.3f ms  %12.0f threads/s\n",
                    W->Name, Width, Workers, Best * 1e3,
                    static_cast<double>(Threads) / Best);
      }
    }
  }

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", OutPath);
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"wallclock_throughput\",\n");
  printHostHeader(Out);
  std::fprintf(Out, "  \"scale\": %u,\n  \"reps\": %d,\n  \"results\": [\n",
               Scale, Reps);
  for (size_t I = 0; I < Samples.size(); ++I) {
    const Sample &S = Samples[I];
    std::fprintf(Out,
                 "    {\"workload\": \"%s\", \"width\": %u, \"workers\": %u, "
                 "\"seconds\": %.6e, \"threads\": %llu, "
                 "\"threads_per_sec\": %.6e}%s\n",
                 S.Workload, S.Width, S.Workers, S.Seconds,
                 static_cast<unsigned long long>(S.Threads), S.ThreadsPerSec,
                 I + 1 < Samples.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
