//===- bench/fig6_speedup.cpp - Figure 6: vectorization speedups ----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 6: speedup of dynamic vectorization (max warp size 4,
/// dynamic warp formation) over the scalar baseline, per application.
///
/// Paper shape to reproduce: average ~1.45x; ~1.0x for memory-bound
/// sync-heavy apps (BoxFilter, ScalarProd, SobolQRNG); 2.25x
/// BinomialOptions; 3.9x for cp (the suite maximum); slowdowns (<1.0x) for
/// irregular control flow (MersenneTwister, mri-q).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace simtvec;

int main() {
  std::printf("Figure 6: speedup of dynamic vectorization (ws<=4) over "
              "scalar execution\n");
  std::printf("%-20s %-16s %14s %14s %9s\n", "application", "class",
              "scalar Mcyc", "vector Mcyc", "speedup");

  double GeoSum = 0, Sum = 0;
  unsigned Count = 0;
  double Best = 0;
  const char *BestName = "";
  for (const Workload &W : allWorkloads()) {
    LaunchStats Scalar = runOrDie(W, 1, scalarBaseline());
    LaunchStats Vector = runOrDie(W, 1, dynamicFormation(4));
    double Speedup = modeledCycles(Scalar) / modeledCycles(Vector);
    std::printf("%-20s %-16s %14.3f %14.3f %8.2fx\n", W.Name,
                workloadClassName(W.Class), modeledCycles(Scalar) / 1e6,
                modeledCycles(Vector) / 1e6, Speedup);
    Sum += Speedup;
    GeoSum += std::log(Speedup);
    ++Count;
    if (Speedup > Best) {
      Best = Speedup;
      BestName = W.Name;
    }
  }
  std::printf("\naverage speedup: %.2fx (geomean %.2fx); best: %s at "
              "%.2fx\n",
              Sum / Count, std::exp(GeoSum / Count), BestName, Best);
  std::printf("paper: average 1.45x; cp best at 3.9x; BinomialOptions "
              "2.25x; memory-bound apps ~1.0x; MersenneTwister/mri-q < "
              "1.0x\n");
  return 0;
}
