//===- bench/sec62_tie_reduction.cpp - §6.2: TIE instruction reduction ----===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the §6.2 statistic: the static instruction-count reduction
/// from thread-invariant expression elimination under static warp
/// formation, relative to the plain (dynamic-formation) specialization, at
/// warp sizes 2 and 4.
///
/// Paper: 9.5% fewer instructions at warp size 2, 11.5% at warp size 4;
/// "larger warps imply a larger fraction of thread-invariant
/// instructions". (Collange et al. [12] report ~15% of PTX operands
/// thread-invariant, the upper bound for this optimization.)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace simtvec;

int main() {
  std::printf("Section 6.2: static instruction reduction from "
              "thread-invariant elimination\n");
  std::printf("%-20s %10s %10s %8s %10s %10s %8s\n", "application",
              "dyn(ws2)", "tie(ws2)", "red%", "dyn(ws4)", "tie(ws4)", "red%");

  double Sum2 = 0, Sum4 = 0;
  unsigned Count = 0;
  for (const Workload &W : allWorkloads()) {
    std::unique_ptr<Program> Prog = compileWorkload(W);
    TranslationCache &TC = Prog->translationCache();

    size_t Counts[2][2] = {};
    for (int WsIdx = 0; WsIdx < 2; ++WsIdx) {
      uint32_t WS = WsIdx == 0 ? 2 : 4;
      for (int Tie = 0; Tie < 2; ++Tie) {
        auto ExecOrErr =
            TC.get({W.KernelName, WS, /*TIE=*/Tie == 1, false});
        if (!ExecOrErr) {
          std::fprintf(stderr, "%s: %s\n", W.Name,
                       ExecOrErr.status().message().c_str());
          return 1;
        }
        Counts[WsIdx][Tie] = (*ExecOrErr)->kernel().instructionCount();
      }
    }
    double Red2 = 100.0 * (1.0 - static_cast<double>(Counts[0][1]) /
                                     static_cast<double>(Counts[0][0]));
    double Red4 = 100.0 * (1.0 - static_cast<double>(Counts[1][1]) /
                                     static_cast<double>(Counts[1][0]));
    std::printf("%-20s %10zu %10zu %7.1f%% %10zu %10zu %7.1f%%\n", W.Name,
                Counts[0][0], Counts[0][1], Red2, Counts[1][0],
                Counts[1][1], Red4);
    Sum2 += Red2;
    Sum4 += Red4;
    ++Count;
  }
  std::printf("\naverage reduction: ws2 %.1f%%, ws4 %.1f%% "
              "(paper: 9.5%% and 11.5%%)\n",
              Sum2 / Count, Sum4 / Count);
  return 0;
}
