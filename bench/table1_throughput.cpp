//===- bench/table1_throughput.cpp - Table 1: peak f32 throughput ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 1: sustained single-precision throughput of the
/// throughput microbenchmark (576 threads, heavily unrolled independent
/// multiply-adds) at warp sizes 1, 2, 4 and 8.
///
/// Paper: 25.0 / 47.9 / 97.1 / 37.0 GFLOP/s on a machine with ~108 GFLOP/s
/// peak. Warp size 4 reaches ~90% of peak; warp size 8 collapses because
/// double-pumped SSE operations extend live ranges past the register file.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace simtvec;

int main() {
  MachineModel Machine;
  double Peak = Machine.Cores * Machine.ClockGHz *
                (Machine.VectorWidthBytes / 4) * 2;
  std::printf("Table 1: peak single-precision throughput "
              "(modeled machine peak %.1f GFLOP/s)\n",
              Peak);
  std::printf("%-10s %12s %10s\n", "warp size", "GFLOP/s", "% of peak");

  const Workload &W = *findWorkload("Throughput");
  for (uint32_t WS : {1u, 2u, 4u, 8u}) {
    LaunchOptions O;
    O.MaxWarpSize = WS;
    LaunchStats S = runOrDie(W, /*Scale=*/4, O, Machine);
    std::printf("%-10u %12.1f %9.1f%%\n", WS, S.gflops(),
                100 * S.gflops() / Peak);
  }
  std::printf("\npaper (i7-2600, est. 108 GFLOP/s peak): ws1 25.0, ws2 "
              "47.9, ws4 97.1 (90%% of peak), ws8 37.0\n");
  return 0;
}
