//===- bench/fig10_static_tie.cpp - Figure 10: static formation + TIE -----===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 10: speedup of static warp formation with
/// thread-invariant elimination over dynamic warp formation (both at max
/// warp size 4).
///
/// Paper shape: average ~11.3% improvement; MersenneTwister improves ~6.4x
/// (its 4.9x slowdown under dynamic formation becomes a 1.30x speedup over
/// scalar) because constrained warp formation stops re-merging threads
/// with uncorrelated control flow.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace simtvec;

int main() {
  std::printf("Figure 10: static warp formation + thread-invariant "
              "elimination vs dynamic formation (ws<=4)\n");
  std::printf("%-20s %12s %12s %10s %14s\n", "application", "dyn Mcyc",
              "static Mcyc", "speedup", "vs scalar");
  double GeoSum = 0;
  unsigned Count = 0;
  for (const Workload &W : allWorkloads()) {
    LaunchStats Scalar = runOrDie(W, 1, scalarBaseline());
    LaunchStats Dyn = runOrDie(W, 1, dynamicFormation(4));
    LaunchStats Static = runOrDie(W, 1, staticTie(4));
    double Speedup = modeledCycles(Dyn) / modeledCycles(Static);
    double VsScalar = modeledCycles(Scalar) / modeledCycles(Static);
    std::printf("%-20s %12.3f %12.3f %9.2fx %13.2fx\n", W.Name,
                modeledCycles(Dyn) / 1e6, modeledCycles(Static) / 1e6,
                Speedup, VsScalar);
    GeoSum += std::log(Speedup);
    ++Count;
  }
  std::printf("\ngeomean speedup of static+TIE over dynamic: %.2fx\n",
              std::exp(GeoSum / Count));
  std::printf("paper: average +11.3%%; MersenneTwister 6.4x over dynamic "
              "(1.30x over scalar)\n");
  return 0;
}
