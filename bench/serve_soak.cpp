//===- bench/serve_soak.cpp - Multi-tenant serving soak bench --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Soak-tests the serving daemon under multi-process tenant load and
/// measures what serving buys: N real client *processes* run M
/// launch+synchronize round-trips each against one warm in-process daemon,
/// then the same N processes run the same M launches each as isolated
/// cold processes (own compile, own cache-less runtime). Reported per
/// mode: p50/p95/p99 completed-launch latency, mean latency, and the
/// aggregate launch throughput of the whole process group (wall clock from
/// first spawn to last exit — the isolated group pays its N cold compiles,
/// the served group shares the daemon's single warm Program).
///
/// Usage: serve_soak [--clients N] [--launches M] [--elems E]
///                   [--out PATH] [--require-warm]
///
///   --clients N       tenant processes per mode (default 4)
///   --launches M      measured launches per tenant (default 64)
///   --elems E         elements the kernel scales per launch (default 8192
///                     — heavy enough that the daemon's warm native tier,
///                     not socket round-trips, dominates the comparison)
///   --out PATH        JSON trajectory (default BENCH_wallclock_serve.json)
///   --require-warm    exit 1 unless the daemon served the entire measured
///                     phase with zero compiles (tc.compile and
///                     tc.jit_compile deltas both 0)
///
/// The daemon is warmed before measurement: the parent drives launches and
/// drains the WorkerPool until the compile counters stop moving, so the
/// measured phase exercises the steady serving state the daemon exists
/// for. Children are this same binary re-exec'd with a hidden mode flag
/// (--client-child / --isolated-child); each writes its raw per-launch
/// latencies to a file the parent aggregates.
///
/// JSON cells keep the standard wallclock shape — "seconds" is the mean
/// per-launch completed latency, keyed "Scale+serve" / "Scale+isolated" —
/// plus p50/p95/p99 and the aggregate group throughput, which
/// tools/bench_diff reports when present.
///
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Client.h"
#include "simtvec/serve/Server.h"

#include "simtvec/runtime/WorkerPool.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace simtvec;
using namespace simtvec::serve;

namespace {

const char *ScaleSrc = R"(
.kernel scale (.param .u64 buf, .param .u32 n, .param .u32 k)
{
  .reg .u32 %i, %n, %v, %k;
  .reg .u64 %p, %off;
  .reg .pred %q;
entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %q, %i, %n;
  @%q bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %p, [buf];
  add.u64 %p, %p, %off;
  ld.param.u32 %k, [k];
  ld.global.u32 %v, [%p];
  mad.u32 %v, %v, %k, 1;
  st.global.u32 [%p], %v;
  bra done;
done:
  ret;
}
)";

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Dim3 gridFor(uint32_t Elems) { return {(Elems + 63) / 64, 1, 1}; }

void writeLatencies(const char *Path, const std::vector<double> &L) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "serve_soak: cannot write %s\n", Path);
    std::exit(1);
  }
  for (double S : L)
    std::fprintf(F, "%.9e\n", S);
  std::fclose(F);
}

/// Tenant process body: M measured launch+synchronize round-trips against
/// the daemon at \p Socket.
int clientChild(const char *Socket, unsigned Launches, uint32_t Elems,
                const char *LatFile) {
  ServeClient C;
  if (Status E = C.connect(Socket, "soak"); E.isError()) {
    std::fprintf(stderr, "serve_soak client: %s\n", E.message().c_str());
    return 1;
  }
  auto Prog = C.loadProgram(ScaleSrc);
  if (!Prog) {
    std::fprintf(stderr, "serve_soak client: %s\n",
                 Prog.status().message().c_str());
    return 1;
  }
  auto Addr = C.alloc(Elems * sizeof(uint32_t));
  if (!Addr)
    return 1;
  std::vector<uint32_t> Host(Elems, 3);
  if (C.copyIn(*Addr, Host.data(), Elems * sizeof(uint32_t)).isError())
    return 1;
  Params P;
  P.u64(*Addr).u32(Elems).u32(2);

  std::vector<double> Lat;
  Lat.reserve(Launches);
  for (unsigned I = 0; I < Launches; ++I) {
    double T0 = now();
    if (!C.launch(*Prog, "scale", gridFor(Elems), {64, 1, 1}, P))
      return 1;
    if (C.synchronize().isError())
      return 1;
    Lat.push_back(now() - T0);
  }
  writeLatencies(LatFile, Lat);
  return 0;
}

/// The isolated baseline: a cold process that compiles its own Program
/// (no shared daemon, no artifact store) and runs the same M launches.
int isolatedChild(unsigned Launches, uint32_t Elems, const char *LatFile) {
  auto Compiled =
      Program::compile(ScaleSrc, MachineModel{}, SpecializationOptions());
  if (!Compiled) {
    std::fprintf(stderr, "serve_soak isolated: %s\n",
                 Compiled.status().message().c_str());
    return 1;
  }
  auto Prog = Compiled.take();
  Device Dev(1 << 20);
  uint64_t Addr = Dev.allocArray<uint32_t>(Elems);
  std::vector<uint32_t> Host(Elems, 3);
  Stream S;
  Dev.copyToDeviceAsync(S, Addr, Host.data(), Elems * sizeof(uint32_t));
  if (S.synchronize().isError())
    return 1;
  Params P;
  P.u64(Addr).u32(Elems).u32(2);

  std::vector<double> Lat;
  Lat.reserve(Launches);
  for (unsigned I = 0; I < Launches; ++I) {
    double T0 = now();
    Prog->launchAsync(S, Dev, "scale", gridFor(Elems), {64, 1, 1}, P);
    if (S.synchronize().isError())
      return 1;
    Lat.push_back(now() - T0);
  }
  writeLatencies(LatFile, Lat);
  return 0;
}

/// One measured process group: spawns \p Argvs children, waits for all,
/// returns the group wall time. Any child failure is fatal.
double runGroup(const std::vector<std::vector<std::string>> &Argvs) {
  double T0 = now();
  std::vector<pid_t> Pids;
  for (const auto &Args : Argvs) {
    std::vector<char *> Argv;
    Argv.reserve(Args.size() + 1);
    for (const auto &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    pid_t Pid = 0;
    int RC = ::posix_spawn(&Pid, Argv[0], nullptr, nullptr, Argv.data(),
                           environ);
    if (RC != 0) {
      std::fprintf(stderr, "serve_soak: posix_spawn: %s\n",
                   std::strerror(RC));
      std::exit(1);
    }
    Pids.push_back(Pid);
  }
  for (pid_t Pid : Pids) {
    int St = 0;
    if (::waitpid(Pid, &St, 0) != Pid || !WIFEXITED(St) ||
        WEXITSTATUS(St) != 0) {
      std::fprintf(stderr, "serve_soak: child %d failed\n",
                   static_cast<int>(Pid));
      std::exit(1);
    }
  }
  return now() - T0;
}

struct LatSummary {
  double Mean = 0, P50 = 0, P95 = 0, P99 = 0;
  size_t Count = 0;
};

LatSummary summarize(std::vector<double> &L) {
  LatSummary S;
  S.Count = L.size();
  if (L.empty())
    return S;
  std::sort(L.begin(), L.end());
  double Sum = 0;
  for (double V : L)
    Sum += V;
  S.Mean = Sum / static_cast<double>(L.size());
  auto Pct = [&](double P) {
    size_t I = static_cast<size_t>(P * static_cast<double>(L.size() - 1));
    return L[I];
  };
  S.P50 = Pct(0.50);
  S.P95 = Pct(0.95);
  S.P99 = Pct(0.99);
  return S;
}

std::vector<double> readLatencies(const std::vector<std::string> &Files) {
  std::vector<double> All;
  for (const auto &Path : Files) {
    FILE *F = std::fopen(Path.c_str(), "r");
    if (!F) {
      std::fprintf(stderr, "serve_soak: missing %s\n", Path.c_str());
      std::exit(1);
    }
    double V;
    while (std::fscanf(F, "%lf", &V) == 1)
      All.push_back(V);
    std::fclose(F);
    ::unlink(Path.c_str());
  }
  return All;
}

std::string selfExe() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0) {
    std::fprintf(stderr, "serve_soak: cannot resolve /proc/self/exe\n");
    std::exit(1);
  }
  Buf[N] = '\0';
  return Buf;
}

void printHostHeader(FILE *Out) {
#if defined(__clang__)
  std::fprintf(Out, "  \"compiler\": \"clang %d.%d.%d\",\n", __clang_major__,
               __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::fprintf(Out, "  \"compiler\": \"gcc %d.%d.%d\",\n", __GNUC__,
               __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::fprintf(Out, "  \"compiler\": \"unknown\",\n");
#endif
#ifdef SIMTVEC_BENCH_FLAGS
  std::fprintf(Out, "  \"flags\": \"%s\",\n", SIMTVEC_BENCH_FLAGS);
#else
  std::fprintf(Out, "  \"flags\": \"\",\n");
#endif
#ifdef SIMTVEC_NATIVE_BUILD
  std::fprintf(Out, "  \"native\": true,\n");
#else
  std::fprintf(Out, "  \"native\": false,\n");
#endif
  std::fprintf(Out, "  \"simd\": \"auto\",\n  \"jit\": \"auto\",\n");
  std::fprintf(Out, "  \"branch\": \"auto\",\n");
  std::fprintf(Out, "  \"nproc\": %u,\n",
               std::thread::hardware_concurrency());
}

} // namespace

int main(int argc, char **argv) {
  // Hidden child modes (the self-exec targets) come first.
  if (argc >= 6 && std::strcmp(argv[1], "--client-child") == 0)
    return clientChild(argv[2],
                       static_cast<unsigned>(std::strtoul(argv[3], nullptr,
                                                          10)),
                       static_cast<uint32_t>(std::strtoul(argv[4], nullptr,
                                                          10)),
                       argv[5]);
  if (argc >= 5 && std::strcmp(argv[1], "--isolated-child") == 0)
    return isolatedChild(
        static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)),
        static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10)), argv[4]);

  unsigned Clients = 4;
  unsigned Launches = 64;
  uint32_t Elems = 8192;
  std::string OutPath = "BENCH_wallclock_serve.json";
  bool RequireWarm = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--clients" && I + 1 < argc)
      Clients = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (Arg == "--launches" && I + 1 < argc)
      Launches =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (Arg == "--elems" && I + 1 < argc)
      Elems = static_cast<uint32_t>(std::strtoul(argv[++I], nullptr, 10));
    else if (Arg == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else if (Arg == "--require-warm")
      RequireWarm = true;
    else {
      std::fprintf(stderr,
                   "usage: serve_soak [--clients N] [--launches M] "
                   "[--elems E] [--out PATH] [--require-warm]\n");
      return 2;
    }
  }
  if (!Clients || !Launches || !Elems)
    return 2;

  const std::string Exe = selfExe();
  const std::string Sock =
      formatString("/tmp/serve_soak_%d.sock", static_cast<int>(::getpid()));
  const std::string CacheDir =
      formatString("/tmp/serve_soak_%d.cache", static_cast<int>(::getpid()));
  (void)::mkdir(CacheDir.c_str(), 0755);

  ServeOptions Opts;
  Opts.SocketPath = Sock;
  Opts.DeviceBytes = 8ull << 20;
  Opts.Spec = SpecializationOptions();
  Opts.Spec.CacheDir = CacheDir; // warm JIT/artifact store for the daemon
  // The governor cap rides the environment like any SIMTVec process, so a
  // capped soak (SIMTVEC_CACHE_MAX_BYTES=N serve_soak ...) exercises the
  // CacheGovernor under real multi-tenant load while keeping the scratch
  // store hermetic. The post-drain cap check below enforces it.
  Opts.Spec.CacheMaxBytes = SpecializationOptions::fromEnv().CacheMaxBytes;
  ServeDaemon Daemon(Opts);
  if (Status E = Daemon.start(); E.isError()) {
    std::fprintf(stderr, "serve_soak: %s\n", E.message().c_str());
    return 1;
  }

  // Warm the daemon until its compile counters stop moving: the measured
  // phase must run entirely from the shared warm Program and native tier.
  {
    ServeClient C;
    if (Status E = C.connect(Sock, "warmup"); E.isError()) {
      std::fprintf(stderr, "serve_soak: %s\n", E.message().c_str());
      return 1;
    }
    auto Prog = C.loadProgram(ScaleSrc);
    if (!Prog)
      return 1;
    auto Addr = C.alloc(Elems * sizeof(uint32_t));
    if (!Addr)
      return 1;
    std::vector<uint32_t> Host(Elems, 3);
    (void)C.copyIn(*Addr, Host.data(), Elems * sizeof(uint32_t));
    Params P;
    P.u64(*Addr).u32(Elems).u32(2);
    uint64_t PrevCompile = ~0ull, PrevJit = ~0ull;
    for (int Round = 0; Round < 50; ++Round) {
      for (int I = 0; I < 8; ++I)
        (void)C.launch(*Prog, "scale", gridFor(Elems), {64, 1, 1}, P);
      if (C.synchronize().isError())
        return 1;
      // Background JIT compiles and governor passes are pool tasks; wait
      // them out before sampling the counters.
      WorkerPool::global().drain();
      auto Snap = MetricsRegistry::global().snapshot();
      uint64_t Compile = Snap.counterValue("tc.compile");
      uint64_t Jit = Snap.counterValue("tc.jit_compile");
      if (Compile == PrevCompile && Jit == PrevJit)
        break;
      PrevCompile = Compile;
      PrevJit = Jit;
    }
  }

  auto Baseline = MetricsRegistry::global().snapshot();
  const uint64_t Compile0 = Baseline.counterValue("tc.compile");
  const uint64_t Jit0 = Baseline.counterValue("tc.jit_compile");

  // Served group: N tenant processes against the warm daemon.
  std::vector<std::vector<std::string>> ServeArgs;
  std::vector<std::string> ServeLatFiles;
  for (unsigned I = 0; I < Clients; ++I) {
    ServeLatFiles.push_back(formatString(
        "/tmp/serve_soak_%d_s%u.lat", static_cast<int>(::getpid()), I));
    ServeArgs.push_back({Exe, "--client-child", Sock,
                         std::to_string(Launches), std::to_string(Elems),
                         ServeLatFiles.back()});
  }
  double ServeWall = runGroup(ServeArgs);
  std::vector<double> ServeLat = readLatencies(ServeLatFiles);
  LatSummary ServeSum = summarize(ServeLat);

  auto After = MetricsRegistry::global().snapshot();
  const uint64_t CompileDelta = After.counterValue("tc.compile") - Compile0;
  const uint64_t JitDelta = After.counterValue("tc.jit_compile") - Jit0;

  Daemon.requestStop();
  ::unlink(Sock.c_str());

  // Governor evidence for capped soaks: after the drain every prune pass
  // has retired, so the store must fit the cap and the prune counters show
  // the work. (pruneStoreToBytes with an unreachable cap is the shared
  // store-size accounting — it evicts nothing.)
  bool OverCap = false;
  if (Opts.Spec.CacheMaxBytes) {
    auto Gov = MetricsRegistry::global().snapshot();
    const uint64_t StoreBytes =
        SpecializationService::pruneStoreToBytes(CacheDir, ~0ull).StoreBytes;
    OverCap = StoreBytes > Opts.Spec.CacheMaxBytes;
    std::printf("  governor: store %llu bytes / cap %llu bytes%s  "
                "(cache.prune_runs %llu, evicted %llu, freed %llu bytes)\n",
                static_cast<unsigned long long>(StoreBytes),
                static_cast<unsigned long long>(Opts.Spec.CacheMaxBytes),
                OverCap ? "  OVER CAP" : "",
                static_cast<unsigned long long>(
                    Gov.counterValue("cache.prune_runs")),
                static_cast<unsigned long long>(
                    Gov.counterValue("cache.prune_evicted")),
                static_cast<unsigned long long>(
                    Gov.counterValue("cache.prune_bytes")));
  }

  // Isolated baseline: the same N processes, each cold (own compile, no
  // store) — what tenants pay without a daemon.
  std::vector<std::vector<std::string>> IsoArgs;
  std::vector<std::string> IsoLatFiles;
  for (unsigned I = 0; I < Clients; ++I) {
    IsoLatFiles.push_back(formatString(
        "/tmp/serve_soak_%d_i%u.lat", static_cast<int>(::getpid()), I));
    IsoArgs.push_back({Exe, "--isolated-child", std::to_string(Launches),
                       std::to_string(Elems), IsoLatFiles.back()});
  }
  double IsoWall = runGroup(IsoArgs);
  std::vector<double> IsoLat = readLatencies(IsoLatFiles);
  LatSummary IsoSum = summarize(IsoLat);

  const double TotalLaunches =
      static_cast<double>(Clients) * static_cast<double>(Launches);
  const double ServeTput = TotalLaunches / ServeWall;
  const double IsoTput = TotalLaunches / IsoWall;
  const uint64_t ThreadsPerLaunch = gridFor(Elems).count() * 64;

  std::printf("serve_soak: %u clients x %u launches (%u elems)\n", Clients,
              Launches, Elems);
  std::printf("  serve:    p50 %8.1fus  p95 %8.1fus  p99 %8.1fus  "
              "mean %8.1fus  aggregate %9.0f launches/s\n",
              ServeSum.P50 * 1e6, ServeSum.P95 * 1e6, ServeSum.P99 * 1e6,
              ServeSum.Mean * 1e6, ServeTput);
  std::printf("  isolated: p50 %8.1fus  p95 %8.1fus  p99 %8.1fus  "
              "mean %8.1fus  aggregate %9.0f launches/s\n",
              IsoSum.P50 * 1e6, IsoSum.P95 * 1e6, IsoSum.P99 * 1e6,
              IsoSum.Mean * 1e6, IsoTput);
  std::printf("  aggregate speedup (serve/isolated): %.2fx\n",
              ServeTput / IsoTput);
  std::printf("  measured-phase compiles: tc.compile +%llu, "
              "tc.jit_compile +%llu%s\n",
              static_cast<unsigned long long>(CompileDelta),
              static_cast<unsigned long long>(JitDelta),
              (CompileDelta || JitDelta) ? "  (NOT WARM)" : "  (warm)");

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "serve_soak: cannot open %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"wallclock_serve\",\n");
  printHostHeader(Out);
  std::fprintf(Out, "  \"clients\": %u,\n  \"launches\": %u,\n", Clients,
               Launches);
  auto EmitCell = [&](const char *Mode, const LatSummary &S, double Tput,
                      bool Last) {
    std::fprintf(
        Out,
        "    {\"workload\": \"Scale+%s\", \"width\": 4, \"workers\": %u, "
        "\"simd\": \"auto\", \"jit\": \"auto\", \"branch\": \"auto\", "
        "\"seconds\": %.6e, \"threads\": %llu, \"threads_per_sec\": %.6e, "
        "\"p50_seconds\": %.6e, \"p95_seconds\": %.6e, "
        "\"p99_seconds\": %.6e, \"aggregate_launches_per_sec\": %.6e}%s\n",
        Mode, Clients, S.Mean,
        static_cast<unsigned long long>(ThreadsPerLaunch),
        static_cast<double>(ThreadsPerLaunch) / S.Mean, S.P50, S.P95, S.P99,
        Tput, Last ? "" : ",");
  };
  std::fprintf(Out, "  \"results\": [\n");
  EmitCell("serve", ServeSum, ServeTput, false);
  EmitCell("isolated", IsoSum, IsoTput, true);
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());

  // Scrub the scratch store.
  (void)std::system(("rm -rf " + CacheDir).c_str());

  if (RequireWarm && (CompileDelta || JitDelta)) {
    std::fprintf(stderr,
                 "serve_soak: --require-warm: daemon compiled during the "
                 "measured phase\n");
    return 1;
  }
  if (OverCap) {
    std::fprintf(stderr, "serve_soak: store exceeds SIMTVEC_CACHE_MAX_BYTES "
                         "after the drain\n");
    return 1;
  }
  return 0;
}
