//===- bench/fig9_cycles.cpp - Figure 9: cycle breakdown ------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 9: the fraction of cycles spent in the execution
/// manager (EM), in yields to and from the EM (scheduler dispatch plus live
/// state save/restore), and executing the vectorized subkernel, under
/// dynamic warp formation at max warp size 4.
///
/// Paper shape: synchronization-intensive applications (BinomialOptions,
/// MatrixMul) spend a large fraction in the EM; compute-bound kernels
/// (Nbody, cp, MersenneTwister subkernels) spend nearly all cycles in the
/// vectorized subkernel.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace simtvec;

int main() {
  std::printf("Figure 9: fraction of cycles in EM / yield handling / "
              "subkernel (ws<=4, dynamic)\n");
  std::printf("%-20s %8s %8s %10s %12s\n", "application", "EM", "yield",
              "subkernel", "total Mcyc");
  for (const Workload &W : allWorkloads()) {
    LaunchStats S = runOrDie(W, 1, dynamicFormation(4));
    std::printf("%-20s %7.1f%% %7.1f%% %9.1f%% %12.3f\n", W.Name,
                100 * S.emFraction(), 100 * S.yieldFraction(),
                100 * S.subkernelFraction(),
                S.Counters.totalCycles() / 1e6);
  }
  std::printf("\npaper: BinomialOptions/MatrixMul EM-heavy; "
              "Nbody/cp/MersenneTwister nearly all subkernel\n");
  return 0;
}
