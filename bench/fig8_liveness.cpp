//===- bench/fig8_liveness.cpp - Figure 8: values restored per entry ------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8: the average number of live values restored per
/// thread at kernel entry points from the execution manager.
///
/// Paper shape: on average 4.54 values per thread per entry — fewer than
/// the architectural register count, so compiler-inserted context save and
/// restore is competitive with cooperative threading libraries.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace simtvec;

int main() {
  std::printf("Figure 8: average values restored per thread at entry "
              "points (ws<=4, dynamic)\n");
  std::printf("%-20s %14s %14s %12s\n", "application", "thread entries",
              "restored vals", "avg/thread");
  double WeightedSum = 0;
  uint64_t TotalEntries = 0;
  for (const Workload &W : allWorkloads()) {
    LaunchStats S = runOrDie(W, 1, dynamicFormation(4));
    std::printf("%-20s %14llu %14llu %12.2f\n", W.Name,
                static_cast<unsigned long long>(S.ThreadEntries),
                static_cast<unsigned long long>(S.Counters.RestoredValues),
                S.restoredPerThreadEntry());
    WeightedSum += static_cast<double>(S.Counters.RestoredValues);
    TotalEntries += S.ThreadEntries;
  }
  std::printf("\nsuite average: %.2f values per thread per entry "
              "(paper: 4.54)\n",
              WeightedSum / static_cast<double>(TotalEntries));
  return 0;
}
