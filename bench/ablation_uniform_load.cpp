//===- bench/ablation_uniform_load.cpp - Uniform-value collapsing ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablation C: collapsing provably warp-uniform computations — in
/// particular .param (constant-memory) loads — to one scalar copy under
/// *dynamic* warp formation. This is the uniform half of the paper's
/// future-work item ("we envision divergence analysis [11] and affine
/// analysis [12] to identify opportunities in which multiple threads are
/// guaranteed to access contiguous data", §4): instead of replicating a
/// constant load per lane, the specialization issues it once.
///
/// Expected: the biggest win on cp (atoms live in the constant space and
/// are re-loaded every inner iteration); no effect on kernels without
/// uniform loads in hot loops.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace simtvec;

int main() {
  std::printf("Ablation: uniform-load collapsing under dynamic formation "
              "(ws<=4)\n");
  std::printf("%-20s %12s %12s %10s\n", "application", "base Mcyc",
              "ulo Mcyc", "speedup");
  double GeoSum = 0;
  unsigned Count = 0;
  for (const Workload &W : allWorkloads()) {
    LaunchStats Base = runOrDie(W, 1, dynamicFormation(4));
    LaunchOptions UloOptions = dynamicFormation(4);
    UloOptions.UniformLoadOpt = true;
    LaunchStats Ulo = runOrDie(W, 1, UloOptions);
    double Speedup = modeledCycles(Base) / modeledCycles(Ulo);
    std::printf("%-20s %12.3f %12.3f %9.2fx\n", W.Name,
                modeledCycles(Base) / 1e6, modeledCycles(Ulo) / 1e6,
                Speedup);
    GeoSum += std::log(Speedup);
    ++Count;
  }
  std::printf("\ngeomean: %.3fx (largest win expected on cp: "
              "constant-space atom loads issue once per warp)\n",
              std::exp(GeoSum / Count));
  return 0;
}
