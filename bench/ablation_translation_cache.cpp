//===- bench/ablation_translation_cache.cpp - Cache behaviour -------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablation B: dynamic translation cache behaviour (paper §5.1). Reports
/// per-workload specialization counts, hit rates over a launch, and the
/// host-side compile time of cold vs warm launches (google-benchmark wall
/// clock). The paper compiles lazily per (kernel, warp size) and leaves
/// concurrent compilation as future work; this bench quantifies how much
/// the cache amortizes.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace simtvec;

namespace {

void BM_ColdLaunch(benchmark::State &State) {
  const Workload &W = *findWorkload("Mandelbrot");
  for (auto _ : State) {
    // Fresh program: every specialization recompiles.
    std::unique_ptr<Program> Prog = compileWorkload(W);
    auto Inst = W.Make(1);
    auto S = Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid, Inst->Block,
                          Inst->Params, dynamicFormation(4));
    if (!S) {
      State.SkipWithError(S.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(S->WarpEntries);
  }
}
BENCHMARK(BM_ColdLaunch)->Unit(benchmark::kMillisecond);

void BM_WarmLaunch(benchmark::State &State) {
  const Workload &W = *findWorkload("Mandelbrot");
  std::unique_ptr<Program> Prog = compileWorkload(W);
  {
    auto Inst = W.Make(1);
    (void)Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid, Inst->Block,
                       Inst->Params, dynamicFormation(4));
  }
  for (auto _ : State) {
    auto Inst = W.Make(1);
    auto S = Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid, Inst->Block,
                          Inst->Params, dynamicFormation(4));
    if (!S) {
      State.SkipWithError(S.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(S->WarpEntries);
  }
}
BENCHMARK(BM_WarmLaunch)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("Ablation: dynamic translation cache (paper section 5.1)\n");
  std::printf("%-20s %8s %8s %10s %12s\n", "application", "hits", "misses",
              "hit rate", "compile ms");
  for (const Workload &W : allWorkloads()) {
    std::unique_ptr<Program> Prog = compileWorkload(W);
    auto Inst = W.Make(1);
    auto S = Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid, Inst->Block,
                          Inst->Params, dynamicFormation(4));
    if (!S) {
      std::fprintf(stderr, "%s: %s\n", W.Name, S.status().message().c_str());
      return 1;
    }
    TranslationCache::Stats CS = Prog->translationCache().stats();
    double Rate = CS.Hits + CS.Misses
                      ? 100.0 * static_cast<double>(CS.Hits) /
                            static_cast<double>(CS.Hits + CS.Misses)
                      : 0;
    std::printf("%-20s %8llu %8llu %9.1f%% %12.3f\n", W.Name,
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses), Rate,
                CS.CompileSeconds * 1e3);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
