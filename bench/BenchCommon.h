//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_BENCH_BENCHCOMMON_H
#define SIMTVEC_BENCH_BENCHCOMMON_H

#include "simtvec/workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

namespace simtvec {

/// The scalar baseline: the serializing translator/scheduler of [16].
inline LaunchOptions scalarBaseline() {
  LaunchOptions O;
  O.MaxWarpSize = 1;
  return O;
}

/// Dynamic warp formation at the machine vector width (paper default).
inline LaunchOptions dynamicFormation(uint32_t MaxWarp = 4) {
  LaunchOptions O;
  O.MaxWarpSize = MaxWarp;
  return O;
}

/// Static warp formation with thread-invariant elimination (paper §6.2).
inline LaunchOptions staticTie(uint32_t MaxWarp = 4) {
  LaunchOptions O;
  O.MaxWarpSize = MaxWarp;
  O.Formation = WarpFormation::Static;
  O.ThreadInvariantElim = true;
  return O;
}

/// Runs one workload, aborting with a message on any error (benches must
/// never report unvalidated numbers).
inline LaunchStats runOrDie(const Workload &W, uint32_t Scale,
                            const LaunchOptions &Options,
                            const MachineModel &Machine = {}) {
  auto StatsOrErr = runWorkload(W, Scale, Options, Machine);
  if (!StatsOrErr) {
    std::fprintf(stderr, "bench error (%s): %s\n", W.Name,
                 StatsOrErr.status().message().c_str());
    std::exit(1);
  }
  return StatsOrErr.take();
}

/// Launches one already-compiled kernel, aborting with a message on any
/// error. Typed-parameter validation failures surface here too, so a bench
/// that serializes its Params wrong dies loudly instead of measuring a
/// misconfigured launch.
inline LaunchStats launchOrDie(Program &Prog, Device &Dev, const char *Kernel,
                               Dim3 Grid, Dim3 Block, const Params &P,
                               const LaunchOptions &Options) {
  auto StatsOrErr = Prog.launch(Dev, Kernel, Grid, Block, P, Options);
  if (!StatsOrErr) {
    std::fprintf(stderr, "bench error (%s): %s\n", Kernel,
                 StatsOrErr.status().message().c_str());
    std::exit(1);
  }
  return StatsOrErr.take();
}

/// Modeled runtime used for speedups (the slowest worker's cycles).
inline double modeledCycles(const LaunchStats &S) {
  return S.MaxWorkerCycles;
}

} // namespace simtvec

#endif // SIMTVEC_BENCH_BENCHCOMMON_H
