//===- simtvec/vm/Executable.h - Prepared kernel for the VM -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A KernelExec is the VM-side artifact the translation cache produces: the
/// (specialized) kernel plus precomputed register-file layout, per-block
/// register-pressure penalties, and a pre-decoded instruction stream. It
/// stands in for the paper's JIT-compiled native binary: all per-instruction
/// decisions that do not depend on runtime state — operand register-file
/// slots, immediate bits, address-symbol offsets, issue costs, flop counts,
/// dispatch shapes — are resolved once at translation time so warp entries
/// pay only for architectural effects.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_EXECUTABLE_H
#define SIMTVEC_VM_EXECUTABLE_H

#include "simtvec/ir/Kernel.h"
#include "simtvec/ir/ScalarOps.h"
#include "simtvec/vm/ExecKernels.h"
#include "simtvec/vm/MachineModel.h"
#include "simtvec/vm/NativeABI.h"

#include <atomic>
#include <memory>
#include <vector>

namespace simtvec {

class NativeModule; // RAII owner of one dlopen'd specialization (NativeModule.h)

/// Native-tier progress of one executable. None -> Queued is claimed with a
/// CAS so exactly one compile runs per executable; Ready/Failed are
/// terminal.
enum class JitState : uint8_t { None = 0, Queued = 1, Ready = 2, Failed = 3 };

/// One pre-decoded operand. Register operands carry their resolved
/// register-file slot; immediates and address symbols are folded to raw
/// bits; only special (context) registers still require per-lane runtime
/// evaluation.
struct DecodedOp {
  enum class Kind : uint8_t {
    None,
    RegVec,  ///< vector register: lane L reads slot Slot + L
    RegScal, ///< scalar register: every lane reads slot Slot
    Imm,     ///< immediate or address-symbol offset, folded to bits
    Special, ///< special register, evaluated against the lane's context
  };
  Kind K = Kind::None;
  SReg S = SReg::TidX; ///< valid when K == Special
  uint32_t Slot = 0;   ///< valid when K == RegVec / RegScal
  uint64_t Imm = 0;    ///< valid when K == Imm
};

/// Dense dispatch index: opcodes sharing one execution shape collapse to a
/// single case of the interpreter's dispatch switch (the original Opcode is
/// retained for the scalar-semantics callbacks and diagnostics).
enum class ExecShape : uint8_t {
  Mov, ///< Mov and Broadcast
  Binary,
  Mad,
  Unary,
  Setp,
  Selp,
  Cvt,
  Ld,
  St,
  AtomAdd,
  InsertElement,
  ExtractElement,
  Iota,
  VoteSum,
  Spill,
  Restore,
  SetRPoint,
  SetRStatus,
  Nop, ///< Membar
  BarSync,
  Bra,
  Switch,
  Ret,
  Yield,
  Trap,
  // Superinstructions (decode-time fusion; only present when the
  // translation was built with Superinstructions enabled). The fused head
  // record absorbs FuseLen - 1 following member records, which stay in the
  // stream untouched (block bounds and counter sums are unchanged); the
  // interpreter advances past them with Inst += FuseLen.
  FusedCmpSel,     ///< setp + selp on the same guard/widths
  FusedIotaBin,    ///< iota + binary consuming it (affine tid-address compute)
  FusedSpillRun,   ///< contiguous run of Spill records → one bulk block move
  FusedRestoreRun, ///< contiguous run of Restore records → bulk block move
  FusedKernelRun,  ///< strip of kernel-bearing records under one dispatch;
                   ///< each member runs its own pre-resolved lane kernel
  FusedLdRun,      ///< strip of scalar Ld records under one dispatch (the
                   ///< vectorizer replicates a warp load into WS of them)
  FusedStRun,      ///< strip of scalar St records under one dispatch
};

/// Sentinel slot for "no register".
inline constexpr uint32_t InvalidSlot = ~0u;

/// One pre-decoded instruction: a fixed-size, cache-friendly record the
/// interpreter executes without consulting the IR.
struct DecodedInst {
  ExecShape Shape = ExecShape::Trap;
  Opcode Op = Opcode::Trap; ///< original opcode (Binary/Unary sub-operation)
  ScalarKind Kind = ScalarKind::U32;    ///< Ty.kind()
  ScalarKind CvtSrcKind = ScalarKind::U32; ///< Cvt source kind
  CmpOp Cmp = CmpOp::Eq; ///< Setp comparison
  AddressSpace Space = AddressSpace::Global;
  bool IsVector = false;
  bool GuardNegated = false;
  uint8_t MemBytes = 0;  ///< Ld/St/AtomAdd/Spill/Restore element bytes
  uint16_t N = 1;        ///< max(1, Ty.lanes())
  uint16_t Lane = 0;     ///< replicated-instruction lane tag
  uint16_t SrcN = 1;     ///< VoteSum: lanes of the source operand
  /// Superinstruction length: number of stream records this head absorbs
  /// (head included). 0 for ordinary records; >= 2 for Fused* heads. Member
  /// records keep their original decoding — the interpreter reads their
  /// operands but never dispatches on them (it advances by FuseLen).
  uint16_t FuseLen = 0;
  uint32_t AuxLane = 0;  ///< ExtractElement src lane / InsertElement index
  uint32_t DstSlot = InvalidSlot;
  uint32_t GuardSlot = InvalidSlot;
  double Cost = 0;   ///< issue cost + the block's pressure penalty
  uint32_t Flops = 0;
  DecodedOp Src[3];
  int64_t MemOffset = 0;   ///< Ld/St/AtomAdd address offset
  uint64_t SpillAddr = 0;  ///< Spill/Restore: LocalBytes + slot offset
  uint32_t Target = InvalidBlock;      ///< Bra taken target
  uint32_t FalseTarget = InvalidBlock; ///< Bra fall-through target
  uint32_t SwitchId = ~0u; ///< index into KernelExec's switch tables
  Type Ty; ///< operation type (diagnostics only on the hot path)
  /// Decode-time-resolved lane operation (ScalarOps.h resolvers); the member
  /// matching Shape is set. Null when the opcode/kind combination is invalid
  /// — the interpreter then raises the same trap the generic path would.
  union {
    BinaryFn Bin;  ///< Binary
    UnaryFn Un;    ///< Unary
    MadFn MadF;    ///< Mad
    CmpFn CmpF;    ///< Setp
    ConvertFn Cvt; ///< Cvt
  } Fn = {nullptr};
  /// Decode-time-selected specialized lane kernel for this record's exact
  /// (shape, opcode, kind, width) under the build's SimdPath. Null when the
  /// combination or width is not specialized — the interpreter then falls
  /// back to the generic per-lane path above (results are bit-identical
  /// either way). Like Fn, this is derived state: it never enters the
  /// layout fingerprint, and resolution succeeds for the same combinations
  /// on both engine paths, so the path choice cannot change fusion
  /// decisions or modeled counters.
  union {
    LaneKernelFn Lanes;   ///< Mov/Binary/Mad/Unary/Setp/Selp/Cvt/FusedIotaBin
    CmpSelKernelFn CmpSel; ///< FusedCmpSel
    RunAddrCheckFn RunCheck; ///< FusedLd/StRun heads: homogeneous-run
                             ///< address check (vector path only; null
                             ///< keeps the plain member loop)
  } Kern = {nullptr};
};

/// Switch side table (case values/targets are too variable for the fixed
/// DecodedInst record).
struct DecodedSwitch {
  std::vector<int64_t> Values;
  std::vector<uint32_t> Targets;
  uint32_t Default = InvalidBlock;
};

/// Per-block view into the flat decoded stream.
struct DecodedBlock {
  uint32_t First = 0; ///< index of the block's first DecodedInst
  uint32_t Count = 0;
  bool IsBody = false; ///< BlockKind::Body (Figure 9 cycle attribution)
  /// Block-batched counter sums: straight-line blocks charge cost/instruction
  /// counts unconditionally (cost is charged before guard checks), so both
  /// engines add these precomputed whole-block sums once per block entry
  /// instead of per record. CostSum is folded left-to-right from 0.0 in
  /// stream order — the trap path subtracts an identically ordered tail fold
  /// so settled totals stay bit-identical between engines.
  double CostSum = 0;       ///< Σ Cost over the block's records
  uint64_t FlopsSum = 0;    ///< Σ Flops
  uint64_t InstsSum = 0;    ///< records in the block (fused members included)
  uint64_t VectorSum = 0;   ///< records with IsVector
};

/// A kernel prepared for execution.
class KernelExec {
public:
  /// Prepares \p K (which must verify) for execution under \p Machine.
  /// Takes ownership of the kernel. \p Superinstructions enables the
  /// decode-time fusion pass (setp+selp, iota+binary, spill/restore runs);
  /// disabling it yields a stream with no Fused* shapes but identical
  /// semantics and counters. \p Simd selects the lane-kernel engine path
  /// (vector = Simd<T,W> kernels, scalar = the pre-SIMD loops); the path
  /// changes only which function pointers are resolved, never the decoded
  /// layout, fusion, or modeled counters.
  static std::shared_ptr<const KernelExec>
  build(std::unique_ptr<Kernel> K, const MachineModel &Machine,
        bool Superinstructions = true,
        SimdPath Simd = resolveSimdPath(SimdMode::Auto));

  const Kernel &kernel() const { return *K; }

  /// First register-file slot of register \p R (one slot per lane).
  uint32_t regSlot(RegId R) const { return RegOffset[R.Index]; }

  /// Total register-file slots.
  uint32_t totalSlots() const { return TotalSlots; }

  /// Extra cycles added to every instruction executed in \p Block due to
  /// register pressure beyond the machine's register file.
  double pressurePenalty(uint32_t Block) const {
    return BlockPenalty[Block];
  }

  /// Maximum modeled physical-register demand over all blocks (statistic).
  unsigned maxPressure() const { return MaxPressure; }

  //===--------------------------------------------------------------------===
  // Pre-decoded stream.
  //===--------------------------------------------------------------------===

  const std::vector<DecodedInst> &code() const { return Code; }
  const std::vector<DecodedBlock> &decodedBlocks() const { return DBlocks; }
  const DecodedSwitch &switchTable(uint32_t Id) const {
    return Switches[Id];
  }

  /// Register-file slot ranges (offset, length) that must be zeroed on warp
  /// entry: the slots of registers live-in at the kernel's entry block
  /// (i.e. possibly read before written). All other slots are proven
  /// written-before-read on every path and need no initialization.
  const std::vector<std::pair<uint32_t, uint32_t>> &zeroRanges() const {
    return ZeroRanges;
  }

  /// Structural fingerprint of the built executable: register layout, the
  /// full decoded stream (shapes, resolved slots, folded immediates, fusion
  /// lengths, costs — everything except the process-local function
  /// pointers), block summaries, switch tables and zero ranges. Two builds
  /// of the same kernel under the same machine model and decoder version
  /// produce the same value; the persistent artifact cache records it at
  /// store time and cross-checks it after rebuilding from a deserialized
  /// kernel, so decoder drift degrades to a cache miss instead of silently
  /// changing execution.
  uint64_t layoutFingerprint() const;

  /// The lane-kernel engine path this executable was built with.
  SimdPath simdPath() const { return Simd; }

  //===--------------------------------------------------------------------===
  // Native tier (mutable derived state). The hot-swap is published in
  // place — per-worker memos hold shared_ptrs to this executable, so a new
  // cache entry would never reach warps already dispatching — with a
  // release store the dispatch loop pairs with an acquire load. Both tiers
  // are bit-identical in outputs and modeled counters, so a swap at any
  // warp-entry boundary is invisible.
  //===--------------------------------------------------------------------===

  /// The native entry point, or null while (or for as long as) this
  /// executable runs on the interpreter tier.
  SimtvecNativeEntryFn nativeEntry() const {
    return NativeEntry.load(std::memory_order_acquire);
  }

  JitState jitState() const { return Jit.load(std::memory_order_acquire); }

  /// Claims the (single) native compile for this executable. Returns true
  /// exactly once.
  bool claimJit() const {
    JitState Expected = JitState::None;
    return Jit.compare_exchange_strong(Expected, JitState::Queued,
                                       std::memory_order_acq_rel);
  }

  /// Publishes a verified native module: the executable keeps the module
  /// (and thus the dlopen handle) alive, then release-stores the entry
  /// point so in-flight dispatch loops pick it up. Claimant-only.
  void publishNative(std::shared_ptr<NativeModule> Module,
                     SimtvecNativeEntryFn Entry) const;

  /// Marks the native compile failed (terminal; the executable stays on
  /// the interpreter tier). Claimant-only.
  void failJit() const {
    Jit.store(JitState::Failed, std::memory_order_release);
  }

private:
  friend struct KernelExecBuilder;

  std::unique_ptr<Kernel> K;
  SimdPath Simd = SimdPath::Scalar;
  std::vector<uint32_t> RegOffset;
  uint32_t TotalSlots = 0;
  std::vector<double> BlockPenalty;
  unsigned MaxPressure = 0;

  std::vector<DecodedInst> Code;
  std::vector<DecodedBlock> DBlocks;
  std::vector<DecodedSwitch> Switches;
  std::vector<std::pair<uint32_t, uint32_t>> ZeroRanges;

  // Native tier. Only the claimant thread writes Native / stores into
  // NativeEntry; readers touch nothing but the atomics.
  mutable std::atomic<SimtvecNativeEntryFn> NativeEntry{nullptr};
  mutable std::shared_ptr<NativeModule> Native;
  mutable std::atomic<JitState> Jit{JitState::None};
};

} // namespace simtvec

#endif // SIMTVEC_VM_EXECUTABLE_H
