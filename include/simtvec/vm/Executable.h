//===- simtvec/vm/Executable.h - Prepared kernel for the VM -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A KernelExec is the VM-side artifact the translation cache produces: the
/// (specialized) kernel plus precomputed register-file layout and per-block
/// register-pressure penalties. It stands in for the paper's JIT-compiled
/// native binary.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_EXECUTABLE_H
#define SIMTVEC_VM_EXECUTABLE_H

#include "simtvec/ir/Kernel.h"
#include "simtvec/vm/MachineModel.h"

#include <memory>
#include <vector>

namespace simtvec {

/// A kernel prepared for execution.
class KernelExec {
public:
  /// Prepares \p K (which must verify) for execution under \p Machine.
  /// Takes ownership of the kernel.
  static std::shared_ptr<const KernelExec> build(std::unique_ptr<Kernel> K,
                                                 const MachineModel &Machine);

  const Kernel &kernel() const { return *K; }

  /// First register-file slot of register \p R (one slot per lane).
  uint32_t regSlot(RegId R) const { return RegOffset[R.Index]; }

  /// Total register-file slots.
  uint32_t totalSlots() const { return TotalSlots; }

  /// Extra cycles added to every instruction executed in \p Block due to
  /// register pressure beyond the machine's register file.
  double pressurePenalty(uint32_t Block) const {
    return BlockPenalty[Block];
  }

  /// Maximum modeled physical-register demand over all blocks (statistic).
  unsigned maxPressure() const { return MaxPressure; }

private:
  std::unique_ptr<Kernel> K;
  std::vector<uint32_t> RegOffset;
  uint32_t TotalSlots = 0;
  std::vector<double> BlockPenalty;
  unsigned MaxPressure = 0;
};

} // namespace simtvec

#endif // SIMTVEC_VM_EXECUTABLE_H
