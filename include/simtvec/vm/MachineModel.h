//===- simtvec/vm/MachineModel.h - Modeled vector machine -------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost model of a Sandybridge-class core with an SSE4-style vector unit
/// (the paper's i7-2600 evaluation platform). The VM executes the real
/// transformed IR; this model assigns issue cycles to each executed
/// instruction so the evaluation's *shape* reproduces:
///
///  - vector operations issue once per machine-width chunk (a width-8
///    operation on a 4-lane machine double-pumps, paper Table 1);
///  - loads/stores are replicated per lane and each costs a memory slot
///    (vectorization does not speed up memory-bound kernels, Fig. 6);
///  - live vector values beyond the register file incur a spill penalty per
///    executed instruction (the warp-size-8 collapse of Table 1);
///  - yield save/restore, scheduler dispatch and execution-manager actions
///    have explicit costs (Fig. 9's cycle breakdown).
///
/// Calibration targets are recorded in EXPERIMENTS.md. Peak modeled f32
/// throughput = Cores * ClockGHz * (VectorWidthBytes/4) * 2 (mul+add per
/// cycle via mad) = 4 * 3.4 * 4 * 2 = 108.8 GFLOP/s, matching the paper's
/// ~108 GFLOP/s estimate.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_MACHINEMODEL_H
#define SIMTVEC_VM_MACHINEMODEL_H

#include "simtvec/ir/Instruction.h"

namespace simtvec {

/// Cost-model constants of the modeled CPU.
struct MachineModel {
  /// SIMD register width in bytes (SSE = 16).
  unsigned VectorWidthBytes = 16;
  /// Number of architectural vector registers (SSE = 16 XMM).
  unsigned NumVecRegs = 16;
  /// Core clock in GHz.
  double ClockGHz = 3.4;
  /// Worker threads / cores used by a launch.
  unsigned Cores = 4;

  // Issue costs in cycles per machine-width chunk.
  double ArithCost = 1.0;
  double TranscCost = 8.0;
  /// Global accesses that hit the modeled L1 (see L1Lines); .shared and
  /// .local spaces are always cache-hot.
  double MemCost = 1.0;
  /// Extra cycles for a global access that misses the modeled L1
  /// (streaming workloads are bandwidth-bound on both the scalar and the
  /// vectorized binary, which is what pins them near 1.0x in Fig. 6).
  double MemMissExtra = 14.0;
  /// .param loads model CUDA constant memory: broadcast-cached, cheaper
  /// than a global access.
  double ParamMemCost = 1.0;

  // Modeled per-core L1 for global memory (set-associative, FIFO
  // replacement): 64 sets x 8 ways x 64 B = 32 KiB, like Sandybridge's L1D.
  unsigned L1LineBytes = 64;
  unsigned L1Sets = 64;
  unsigned L1Ways = 8;
  double AtomCost = 10.0;
  double PackCost = 0.5; ///< insert/extract/broadcast/iota (pinsr/pextr)
  double ControlCost = 1.0;
  double SpillRestorePerLane = 0.5; ///< thread-local, cache-hot

  /// Live vector registers beyond the file are tolerated up to this slack
  /// (register renaming plus store-forwarded L1 spill slots) before the
  /// penalty applies.
  unsigned PressureSlackRegs = 8;
  /// Extra cycles per executed instruction per live vector register beyond
  /// NumVecRegs + PressureSlackRegs (models spill/fill traffic at high warp
  /// sizes; the warp-size-8 collapse of Table 1).
  double SpillPenaltyPerExcessReg = 0.6;

  // Execution-manager action costs (consumed by the core module).
  double EMWarpFormBase = 6.0;      ///< per kernel entry
  double EMPerThreadScan = 1.0;     ///< per ready-pool slot inspected
  unsigned EMScanWindow = 16;       ///< ready-pool slots inspected per entry
  double EMYieldUpdatePerThread = 2.0; ///< status bookkeeping per thread
  double EMBarrierRelease = 4.0;    ///< per thread released from a barrier

  /// Machine lanes available for one element kind.
  unsigned machineLanes(Type Ty) const {
    return VectorWidthBytes / Ty.scalar().byteSize();
  }

  /// Number of physical vector registers a value of type \p Ty occupies
  /// (0 for scalars and predicates, which live in GPRs / flags).
  unsigned physRegsFor(Type Ty) const {
    if (!Ty.isVector() || Ty.isPred())
      return 0;
    unsigned Bytes = Ty.lanes() * Ty.scalar().byteSize();
    return (Bytes + VectorWidthBytes - 1) / VectorWidthBytes;
  }

  /// Issue chunks for one operation of type \p Ty (double-pumping beyond
  /// the machine width).
  unsigned issueChunks(Type Ty) const {
    if (!Ty.isVector())
      return 1;
    if (Ty.isPred())
      return 1; // predicate vectors live in a mask register
    unsigned PerReg = machineLanes(Ty);
    return (Ty.lanes() + PerReg - 1) / PerReg;
  }

  /// Issue cost in cycles of executing \p I once (excluding per-block
  /// register-pressure penalties).
  double issueCost(const Instruction &I) const;

  /// Floating-point operations contributed by one execution of \p I.
  unsigned flopsFor(const Instruction &I) const;
};

} // namespace simtvec

#endif // SIMTVEC_VM_MACHINEMODEL_H
