//===- simtvec/vm/Interpreter.h - The vector virtual machine ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes (scalar or vectorized) SVIR directly, with vector-typed
/// registers, per-lane replicated memory operations, and the runtime
/// intrinsics inserted by yield-on-diverge lowering. It substitutes for the
/// paper's LLVM JIT + native SSE execution: the transformed IR really runs,
/// and the MachineModel attributes deterministic modeled cycles to each
/// executed instruction.
///
/// Two execution engines share one semantics:
///  - run() executes the pre-decoded stream built by KernelExec (the fast
///    path: operands resolved to register-file slots at translation time,
///    issue costs precomputed, register file zeroed selectively);
///  - runReference() walks the IR instruction objects directly (the
///    original engine, kept as the differential-testing oracle).
/// Both produce bit-identical memory effects and modeled cycle counters.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_INTERPRETER_H
#define SIMTVEC_VM_INTERPRETER_H

#include "simtvec/vm/Counters.h"
#include "simtvec/vm/Executable.h"
#include "simtvec/vm/ThreadContext.h"

#include <optional>
#include <string>
#include <vector>

namespace simtvec {

/// Executes kernels one warp-entry at a time.
class Interpreter {
public:
  explicit Interpreter(const MachineModel &Machine) : Machine(Machine) {}

  /// Outcome of one warp execution (entry to yield).
  struct Result {
    ResumeStatus Status = ResumeStatus::Exit;
    /// Set when execution faulted (out-of-bounds access, invalid
    /// operation); the kernel state is then unspecified.
    std::optional<std::string> Trap;
  };

  /// Runs \p Exec for warp \p W from its current resume point until the
  /// next yield (or ret), executing the pre-decoded stream. All lanes must
  /// share the same resume point. Modeled cycles and events accumulate into
  /// \p Counters.
  Result run(const KernelExec &Exec, const Warp &W, ExecMemory &Mem,
             CycleCounters &Counters);

  /// Reference engine: same contract as run(), interpreting the IR
  /// instruction objects directly. Kept for differential testing.
  Result runReference(const KernelExec &Exec, const Warp &W, ExecMemory &Mem,
                      CycleCounters &Counters);

  /// Native tier: same contract as run(), executing \p Exec's dlopen'd
  /// entry point \p Fn. The host side owns the register file, the modeled
  /// L1 arrays and the counters — exactly the state run() uses — so warp
  /// entries may alternate freely between tiers with bit-identical memory
  /// effects and counters.
  Result runNative(SimtvecNativeEntryFn Fn, const KernelExec &Exec,
                   const Warp &W, ExecMemory &Mem, CycleCounters &Counters);

private:
  void ensureL1();

  const MachineModel &Machine;
  std::vector<uint64_t> RegFile;
  std::vector<uint64_t> Scratch; // lane staging buffer

  /// Modeled per-core L1 for the global space (set-associative tag array
  /// with FIFO replacement); persists across warps and CTAs of this
  /// worker.
  std::vector<uint64_t> L1Tags;      // L1Sets * L1Ways entries
  std::vector<uint8_t> L1NextWay;    // per-set FIFO cursor
  std::vector<uint8_t> L1MRU;        // per-set last-hit way, probed first

  /// Shift/mask forms of the L1 line/set computation, valid when both
  /// geometry parameters are powers of two (L1Pow2).
  bool L1Pow2 = false;
  unsigned L1LineShift = 0;
  uint64_t L1SetMask = 0;
};

} // namespace simtvec

#endif // SIMTVEC_VM_INTERPRETER_H
