//===- simtvec/vm/NativeABI.h - dlopen boundary for the native tier -*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plain-C ABI between the host VM and a natively compiled kernel
/// specialization (a `.so` produced by the SpecializationService's JIT
/// tier). Nothing from the repo's C++ object model crosses the dlopen
/// boundary: the host marshals one POD argument block per warp entry, the
/// generated code reads/writes it, and a meta symbol lets the host verify
/// at load time that the object was built against the same ABI revision,
/// argument-block layout, kernel layout fingerprint and warp size before a
/// single instruction runs. Any mismatch degrades silently to the
/// interpreter tier.
///
/// This header is included both by the host VM and by every generated
/// translation unit, so it must stay self-contained (C++ standard headers
/// only).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_NATIVEABI_H
#define SIMTVEC_VM_NATIVEABI_H

#include <cstdint>

namespace simtvec {

/// Bumped whenever SimtvecNativeArgs / SimtvecNativeMeta / the entry-point
/// contract changes. Stale on-disk `.so` artifacts fail the load-time meta
/// check and are recompiled.
inline constexpr uint32_t NativeAbiVersion = 1;

/// Maximum warp width the VM specializes for (launchKernel validates
/// widths in {1,2,4,8}).
inline constexpr uint32_t NativeMaxWarp = 8;

/// Return codes of the generated entry point. 0..2 mirror ResumeStatus
/// (Branch/Barrier/Exit); 3 reports a trap whose message is in TrapMsg.
inline constexpr int32_t NativeRetBranch = 0;
inline constexpr int32_t NativeRetBarrier = 1;
inline constexpr int32_t NativeRetExit = 2;
inline constexpr int32_t NativeRetTrap = 3;

/// One warp entry's worth of state, marshalled by Interpreter::runNative.
/// Lanes beyond the warp size are unspecified. CTA/grid/block geometry is
/// warp-uniform by construction (the execution manager forms warps within
/// one CTA), so those fields are scalars.
struct SimtvecNativeArgs {
  /// The interpreter's register file for this warp (totalSlots u64 words,
  /// zero ranges already cleared by the host).
  uint64_t *RF;

  // Per-lane thread identity.
  uint32_t TidX[NativeMaxWarp];
  uint32_t TidY[NativeMaxWarp];
  uint32_t TidZ[NativeMaxWarp];

  // Warp-uniform geometry.
  uint32_t BlockDimX, BlockDimY, BlockDimZ;
  uint32_t GridDimX, GridDimY, GridDimZ;
  uint32_t CtaIdX, CtaIdY, CtaIdZ;
  /// Linear tid of lane 0 (SReg::WarpBaseTid).
  uint32_t WarpBaseTid;

  /// Per-lane resume points: read live by SReg::EntryId (lane 0), written
  /// by SetRPoint, copied back by the host after the entry returns.
  uint32_t ResumePoint[NativeMaxWarp];

  /// Per-lane thread-local memory bases (user .local vars + spill area).
  unsigned char *LocalMem[NativeMaxWarp];

  // Memory spaces (byte pointers + sizes, mirroring ExecMemory).
  unsigned char *Global;
  uint64_t GlobalSize;
  unsigned char *Shared;
  uint64_t SharedSize;
  const unsigned char *ParamBuf;
  uint64_t ParamSize;
  uint64_t LocalSize;

  /// Opaque AtomicStripes (may be null). When non-null the generated code
  /// brackets each AtomAdd with AtomLock/AtomUnlock on the access address.
  void *Atomics;
  void (*AtomLock)(void *Atomics, uint64_t Addr);
  void (*AtomUnlock)(void *Atomics, uint64_t Addr);

  // Modeled-counter sinks (the worker's CycleCounters fields).
  double *EMBody;  ///< &CycleCounters::SubkernelCycles
  double *EMYield; ///< &CycleCounters::YieldCycles
  uint64_t *Flops;
  uint64_t *InstsExecuted;
  uint64_t *VectorInsts;
  uint64_t *RestoredValues;
  uint64_t *SpilledValues;
  uint64_t *GlobalAccesses;
  uint64_t *GlobalMisses;

  // Modeled L1 state (the interpreter's arrays, sized Sets*Ways / Sets).
  uint64_t *L1Tags;
  uint8_t *L1NextWay;
  uint8_t *L1MRU;

  /// Trap message written by the generated code before returning
  /// NativeRetTrap (always NUL-terminated).
  char TrapMsg[256];
};

/// Load-time identification exported by every generated object as the
/// symbol "simtvec_native_meta". The host refuses (silently, degrading to
/// the interpreter) any object whose meta does not match exactly.
struct SimtvecNativeMeta {
  uint32_t AbiVersion;        ///< NativeAbiVersion at build time
  uint32_t ArgsSize;          ///< sizeof(SimtvecNativeArgs) at build time
  uint64_t LayoutFingerprint; ///< KernelExec::layoutFingerprint()
  uint64_t BuildFingerprint;  ///< SpecializationService build fingerprint
  uint32_t WarpSize;          ///< specialized warp width
  uint32_t Reserved = 0;
};

/// Entry-point signature: the symbol "simtvec_native_entry" in every
/// generated object. Runs the warp from ResumePoint[0] to the next yield
/// and returns a NativeRet* code.
using SimtvecNativeEntryFn = int32_t (*)(SimtvecNativeArgs *);

inline constexpr const char *NativeEntrySymbol = "simtvec_native_entry";
inline constexpr const char *NativeMetaSymbol = "simtvec_native_meta";

} // namespace simtvec

#endif // SIMTVEC_VM_NATIVEABI_H
