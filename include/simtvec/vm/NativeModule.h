//===- simtvec/vm/NativeModule.h - dlopen'd specialization ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII ownership of one dlopen'd native kernel specialization plus the
/// load-time verification gate: before an object's entry point is ever
/// published, its exported meta symbol must match the host's ABI revision,
/// argument-block size, the executable's layout fingerprint, the expected
/// build fingerprint and warp size. Any mismatch — or a platform without
/// dlopen — returns null and the caller degrades to the interpreter tier.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_NATIVEMODULE_H
#define SIMTVEC_VM_NATIVEMODULE_H

#include "simtvec/vm/NativeABI.h"

#include <memory>
#include <string>

namespace simtvec {

/// One loaded `.so`. The handle is dlclose'd on destruction, so whoever
/// publishes an entry point must keep the module alive for as long as the
/// entry may run (KernelExec::publishNative does).
class NativeModule {
public:
  ~NativeModule();
  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;

  /// dlopens \p Path (RTLD_NOW | RTLD_LOCAL), resolves the entry and meta
  /// symbols, and verifies the meta block against the expectations. Returns
  /// null on any failure — unresolvable symbols, ABI/layout/fingerprint/
  /// warp-size mismatch, or no dlopen support.
  static std::shared_ptr<NativeModule>
  loadAndVerify(const std::string &Path, uint64_t LayoutFingerprint,
                uint64_t BuildFingerprint, uint32_t WarpSize);

  SimtvecNativeEntryFn entry() const { return Entry; }
  const std::string &path() const { return Path; }

private:
  NativeModule(void *Handle, SimtvecNativeEntryFn Entry, std::string Path)
      : Handle(Handle), Entry(Entry), Path(std::move(Path)) {}

  void *Handle = nullptr;
  SimtvecNativeEntryFn Entry = nullptr;
  std::string Path;
};

} // namespace simtvec

#endif // SIMTVEC_VM_NATIVEMODULE_H
