//===- simtvec/vm/ExecKernels.h - Specialized execution kernels -*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decode-time-selected specialized execution kernels: for each (operation,
/// scalar kind, warp width in {1,2,4,8}) a dedicated function executes the
/// whole lane loop as a fixed trip count over typed values, with the opcode
/// and kind folded at compile time. This is the stand-in for the paper's
/// JIT emitting native SSE: the host compiler sees a constant-length loop
/// of inlined arithmetic (no per-lane indirect calls on boxed words) and
/// auto-vectorizes it — under the SIMTVEC_NATIVE build, to the full host
/// SIMD width.
///
/// Contract shared by every kernel:
///  - all operand arrays are stride-1 and hold exactly W lane words; the
///    interpreter materializes scalar/immediate/special operands into
///    stack buffers (splat / per-lane evaluation) before the call;
///  - inputs are fully read before any output is written, so a destination
///    may alias any source array exactly (register slots either coincide
///    or are disjoint — partial overlap cannot occur);
///  - results are bit-identical to the generic eval* path: both instantiate
///    the same ScalarOpsImpl.h expressions.
///
/// Resolvers return null when the combination is invalid or the width is
/// not specialized; the interpreter then uses the generic path.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_EXECKERNELS_H
#define SIMTVEC_VM_EXECKERNELS_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Type.h"

#include <cstdint>

namespace simtvec {

/// Fixed-width lane kernel: Dst[0..W) = op(S0[.], S1[.], S2[.]). Unused
/// source pointers may be null (mov/unary/cvt ignore S1/S2, binary/setp
/// ignore S2).
using LaneKernelFn = void (*)(uint64_t *Dst, const uint64_t *S0,
                              const uint64_t *S1, const uint64_t *S2);

/// Fused compare-select superinstruction (setp feeding selp):
///   Pred[L] = cmp(A[L], B[L]);  Sel[L] = Pred[L] ? C[L] : E[L]
/// Pred is written before Sel (matching the unfused record order when the
/// two destinations coincide); C/E must not alias Pred (the fusion pass
/// rejects that shape).
using CmpSelKernelFn = void (*)(uint64_t *Pred, uint64_t *Sel,
                                const uint64_t *A, const uint64_t *B,
                                const uint64_t *C, const uint64_t *E);

LaneKernelFn resolveBinaryLanes(Opcode Op, ScalarKind K, unsigned W);
LaneKernelFn resolveUnaryLanes(Opcode Op, ScalarKind K, unsigned W);
LaneKernelFn resolveMadLanes(ScalarKind K, unsigned W);
LaneKernelFn resolveSetpLanes(CmpOp Cmp, ScalarKind K, unsigned W);
LaneKernelFn resolveSelpLanes(unsigned W);
LaneKernelFn resolveMovLanes(unsigned W);
LaneKernelFn resolveConvertLanes(ScalarKind DstK, ScalarKind SrcK,
                                 unsigned W);
CmpSelKernelFn resolveCmpSelLanes(CmpOp Cmp, ScalarKind K, unsigned W);

} // namespace simtvec

#endif // SIMTVEC_VM_EXECKERNELS_H
