//===- simtvec/vm/ExecKernels.h - Specialized execution kernels -*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decode-time-selected specialized execution kernels: for each (operation,
/// scalar kind, warp width in {1,2,4,8}) a dedicated function executes the
/// whole lane loop as a fixed trip count over typed values, with the opcode
/// and kind folded at compile time. This is the stand-in for the paper's
/// JIT emitting native SSE, and since PR 6 it comes in two engine paths:
///
///  - SimdPath::Vector — kernels written on the Simd<T,W> value class
///    (support/Simd.h), so the op is expressed directly on vector
///    registers. Ops whose scalar semantics don't map cleanly (integer
///    div/rem zero guards, libm unaries, saturating float->int converts)
///    keep the scalar loop inside the same kernel, so the resolver surface
///    is path-independent.
///  - SimdPath::Scalar — the pre-SIMD fixed-trip scalar loops, kept intact
///    as the differential oracle for the vector path.
///
/// Contract shared by every kernel (both paths):
///  - all operand arrays are stride-1 and hold exactly W lane words; the
///    interpreter materializes scalar/immediate/special operands into
///    stack buffers (splat / per-lane evaluation) before the call;
///  - inputs are fully read before any output is written, so a destination
///    may alias any source array exactly (register slots either coincide
///    or are disjoint — partial overlap cannot occur);
///  - results are bit-identical to the generic eval* path: the scalar path
///    instantiates the same ScalarOpsImpl.h expressions, and the vector
///    path reproduces them op for op (wrap arithmetic on the unsigned
///    counterpart, compare-plus-bit-blend for min/max/select so NaN and
///    signed-zero bits survive, int->float via the same double
///    intermediate). Modeled counters cannot differ between paths: kernel
///    resolution succeeds for exactly the same combinations.
///
/// Resolver nullability (the audited policy — see SimdKernelAudit in
/// tests/simd_test.cpp):
///  - a combination has a lane kernel exactly when ScalarOps.cpp has a
///    scalar thunk for it; every resolver delegates validity to the
///    generic resolveBinary/resolveUnary/resolveMad/resolveCmp/
///    resolveConvert gate, on both paths. resolveConvert covers all 8x8
///    (dst, src) kind pairs, so resolveConvertLanes never yields a null
///    for a verifier-legal convert at a specialized width; resolveUnary
///    nulls (e.g. Rcp on an integer kind, Not on a float kind) are
///    semantically invalid combinations that trap in the generic path too.
///  - widths outside {1,2,4,8} return null by design: the interpreter
///    accepts warps up to its 64-lane operand staging, but non-power-of-2
///    and >8 widths are formation-tail shapes with no steady-state
///    traffic, so they intentionally ride the generic per-lane path.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_EXECKERNELS_H
#define SIMTVEC_VM_EXECKERNELS_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Type.h"
#include "simtvec/support/Simd.h"

#include <cstdint>

namespace simtvec {

/// Fixed-width lane kernel: Dst[0..W) = op(S0[.], S1[.], S2[.]). Unused
/// source pointers may be null (mov/unary/cvt ignore S1/S2, binary/setp
/// ignore S2).
using LaneKernelFn = void (*)(uint64_t *Dst, const uint64_t *S0,
                              const uint64_t *S1, const uint64_t *S2);

/// Fused compare-select superinstruction (setp feeding selp):
///   Pred[L] = cmp(A[L], B[L]);  Sel[L] = Pred[L] ? C[L] : E[L]
/// Pred is written before Sel (matching the unfused record order when the
/// two destinations coincide); C/E must not alias Pred (the fusion pass
/// rejects that shape).
using CmpSelKernelFn = void (*)(uint64_t *Pred, uint64_t *Sel,
                                const uint64_t *A, const uint64_t *B,
                                const uint64_t *C, const uint64_t *E);

/// Whole-run address computation + bounds check for a homogeneous fused
/// Ld/St run (every member reads address lane J of the same vector slot,
/// with one shared byte offset / access size):
///   AddrOut[J] = AddrLanes[J] + Offset   (u64 wrap, like the member loop)
/// returns true iff every member passes the interpreter's resolveAddr
/// bounds form `!(Size > Limit || Addr > Limit - Size)`. On false the
/// caller must re-run the plain member loop so the trapping member is
/// identified in record order. Resolved only on the vector path; the
/// scalar oracle always walks members one at a time.
using RunAddrCheckFn = bool (*)(uint64_t *AddrOut, const uint64_t *AddrLanes,
                                uint64_t Offset, uint64_t Limit,
                                uint64_t Size);

LaneKernelFn resolveBinaryLanes(Opcode Op, ScalarKind K, unsigned W,
                                SimdPath Path);
LaneKernelFn resolveUnaryLanes(Opcode Op, ScalarKind K, unsigned W,
                               SimdPath Path);
LaneKernelFn resolveMadLanes(ScalarKind K, unsigned W, SimdPath Path);
LaneKernelFn resolveSetpLanes(CmpOp Cmp, ScalarKind K, unsigned W,
                              SimdPath Path);
LaneKernelFn resolveSelpLanes(unsigned W, SimdPath Path);
LaneKernelFn resolveMovLanes(unsigned W, SimdPath Path);
LaneKernelFn resolveConvertLanes(ScalarKind DstK, ScalarKind SrcK, unsigned W,
                                 SimdPath Path);
CmpSelKernelFn resolveCmpSelLanes(CmpOp Cmp, ScalarKind K, unsigned W,
                                  SimdPath Path);

/// Null unless Path is Vector and Len is a specialized run length
/// ({2,4,8}).
RunAddrCheckFn resolveRunAddrCheck(unsigned Len, SimdPath Path);

} // namespace simtvec

#endif // SIMTVEC_VM_EXECKERNELS_H
