//===- simtvec/vm/NativeCodegen.h - C++ emission for the JIT ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits one self-contained C++ translation unit for a prepared executable:
/// the straight-line lane loops of the pre-decoded instruction stream with
/// every decode-time constant (register-file slots, folded immediates,
/// issue-cost sums, L1 geometry, trap-refund tails) baked in as literals.
/// The generated TU includes `simtvec/ir/ScalarOpsImpl.h` — the same inline
/// semantics both interpreter engines are compiled from — so a system
/// toolchain at -O2 produces a native tier whose outputs *and* modeled
/// `em.*` counters are bit-identical to the interpreter's.
///
/// Codegen is best-effort: any construct outside the supported envelope
/// (warp width beyond the ABI maximum, malformed stream) yields an empty
/// string and the caller stays on the interpreter tier.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_NATIVECODEGEN_H
#define SIMTVEC_VM_NATIVECODEGEN_H

#include <cstdint>
#include <string>

namespace simtvec {

class KernelExec;
struct MachineModel;

/// Emits the native-tier C++ source for \p Exec under \p Machine.
/// \p BuildFingerprint is recorded in the exported meta symbol and verified
/// again at dlopen time. Returns "" when \p Exec cannot be compiled (the
/// caller degrades silently to the interpreter).
std::string emitNativeSource(const KernelExec &Exec,
                             const MachineModel &Machine,
                             uint64_t BuildFingerprint);

} // namespace simtvec

#endif // SIMTVEC_VM_NATIVECODEGEN_H
