//===- simtvec/vm/ThreadContext.h - Thread contexts and warps ---*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread context object of the paper (§4): grid dimensions, block
/// dimensions, block ID, thread ID and the thread-local memory base, plus
/// the resume point / resume status fields written by the yield-on-diverge
/// exit handlers (Algorithm 4). A warp is an ordered collection of contexts
/// passed to a vectorized kernel; lane i of every vector register holds
/// thread i's value.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_THREADCONTEXT_H
#define SIMTVEC_VM_THREADCONTEXT_H

#include "simtvec/ir/Opcode.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace simtvec {

/// Launch geometry.
struct Dim3 {
  uint32_t X = 1, Y = 1, Z = 1;
  uint64_t count() const {
    return static_cast<uint64_t>(X) * Y * Z;
  }
  friend bool operator==(const Dim3 &, const Dim3 &) = default;
};

/// One logical (light-weight) thread.
struct ThreadContext {
  uint32_t TidX = 0, TidY = 0, TidZ = 0;
  uint32_t LinearTid = 0; ///< tid.x + tid.y*ntid.x + tid.z*ntid.x*ntid.y
  Dim3 CtaId;
  Dim3 GridDim;
  Dim3 BlockDim;

  /// Thread-local memory (user .local vars followed by the spill area).
  std::byte *LocalMem = nullptr;

  /// Entry ID at which this thread resumes (0 = kernel entry).
  uint32_t ResumePoint = 0;
  /// Why the last yield happened.
  ResumeStatus Status = ResumeStatus::Branch;
};

/// An ordered collection of thread contexts executing in lock step.
struct Warp {
  ThreadContext *const *Threads = nullptr;
  uint32_t Size = 0;

  ThreadContext &lane(uint32_t L) const {
    assert(L < Size && "lane out of range");
    return *Threads[L];
  }
};

/// Address-striped locks serializing read-modify-write atomics. Atomics to
/// the same (naturally aligned) location always hash to the same stripe, so
/// per-address atomicity is preserved while atomics to different addresses
/// proceed concurrently — one process-wide mutex would serialize every
/// AtomAdd across all workers and sink Histogram64-style workloads.
class AtomicStripes {
public:
  static constexpr size_t NumStripes = 64;

  /// Lock covering the 8-byte granule containing \p Addr (4- and 8-byte
  /// naturally aligned atomics to one location share a granule).
  std::mutex &lockFor(uint64_t Addr) {
    return Locks[(Addr >> 3) & (NumStripes - 1)];
  }

private:
  std::array<std::mutex, NumStripes> Locks;
};

/// The memory spaces visible to one warp execution.
struct ExecMemory {
  std::byte *Global = nullptr;
  size_t GlobalSize = 0;
  std::byte *Shared = nullptr; ///< the executing CTA's shared memory
  size_t SharedSize = 0;
  const std::byte *ParamBuf = nullptr;
  size_t ParamSize = 0;
  size_t LocalSize = 0; ///< per-thread local bytes (user + spill)
  AtomicStripes *Atomics = nullptr; ///< striped AtomAdd serialization
};

} // namespace simtvec

#endif // SIMTVEC_VM_THREADCONTEXT_H
