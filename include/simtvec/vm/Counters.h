//===- simtvec/vm/Counters.h - Modeled cycle accounting ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic modeled-cycle and event counters. The buckets mirror the
/// paper's Figure 9: time executing the vectorized subkernel, time in yield
/// entry/exit handlers (save/restore of live state), and time in the
/// execution manager.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_VM_COUNTERS_H
#define SIMTVEC_VM_COUNTERS_H

#include <cstdint>

namespace simtvec {

/// Cycle and event counters accumulated by one worker.
struct CycleCounters {
  double SubkernelCycles = 0; ///< BlockKind::Body instructions
  double YieldCycles = 0;     ///< scheduler / entry / exit handler blocks
  double EMCycles = 0;        ///< execution-manager bookkeeping

  uint64_t Flops = 0;
  uint64_t InstsExecuted = 0;
  uint64_t VectorInsts = 0; ///< executed instructions with vector type

  uint64_t RestoredValues = 0; ///< executions of Restore (per warp, Fig. 8)
  uint64_t SpilledValues = 0;  ///< executions of Spill (per warp)

  uint64_t GlobalAccesses = 0; ///< global-space loads/stores/atomics
  uint64_t GlobalMisses = 0;   ///< ... that missed the modeled L1

  double totalCycles() const {
    return SubkernelCycles + YieldCycles + EMCycles;
  }

  CycleCounters &operator+=(const CycleCounters &R) {
    SubkernelCycles += R.SubkernelCycles;
    YieldCycles += R.YieldCycles;
    EMCycles += R.EMCycles;
    Flops += R.Flops;
    InstsExecuted += R.InstsExecuted;
    VectorInsts += R.VectorInsts;
    RestoredValues += R.RestoredValues;
    SpilledValues += R.SpilledValues;
    GlobalAccesses += R.GlobalAccesses;
    GlobalMisses += R.GlobalMisses;
    return *this;
  }
};

} // namespace simtvec

#endif // SIMTVEC_VM_COUNTERS_H
