//===- simtvec/workloads/Workloads.h - Benchmark kernel suite ---*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application suite standing in for the paper's CUDA SDK / Parboil
/// workloads (§6). Each workload bundles an SVIR kernel, a host-side
/// problem setup, and a golden-reference checker. The suite spans the
/// behaviour classes the evaluation aggregates:
///
///   compute-uniform   uniform control flow, flop-dominated (Throughput,
///                     CP, Nbody, BlackScholes, MonteCarlo, MriQ)
///   barrier-heavy     frequent CTA-wide synchronization (BinomialOptions,
///                     MatrixMul, Reduction, Scan, FastWalsh, Bitonic)
///   memory-bound      load/store dominated (BoxFilter, ScalarProd,
///                     SobolQRNG, Transpose, Histogram64, VectorAdd)
///   divergent         data-dependent, thread-uncorrelated control flow
///                     (MersenneTwister, Mandelbrot)
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_WORKLOADS_WORKLOADS_H
#define SIMTVEC_WORKLOADS_WORKLOADS_H

#include "simtvec/runtime/Runtime.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace simtvec {

/// One prepared problem: device buffers uploaded, parameters serialized,
/// geometry chosen, checker bound.
struct WorkloadInstance {
  std::unique_ptr<Device> Dev;
  Dim3 Grid, Block;
  ParamBuilder Params;
  /// Validates device results against the golden reference; fills \p Error
  /// on mismatch.
  std::function<bool(Device &, std::string &Error)> Check;
};

/// Behaviour classes used for reporting.
enum class WorkloadClass : uint8_t {
  ComputeUniform,
  BarrierHeavy,
  MemoryBound,
  Divergent,
};

const char *workloadClassName(WorkloadClass C);

/// A benchmark application.
struct Workload {
  const char *Name;
  const char *KernelName;
  WorkloadClass Class;
  const char *Source; ///< SVIR text

  /// Builds an instance at problem scale \p Scale (1 = the default size
  /// used by the figure benches; tests use smaller scales).
  std::function<std::unique_ptr<WorkloadInstance>(uint32_t Scale)> Make;
};

/// The full suite, in the order the figures report.
const std::vector<Workload> &allWorkloads();

/// Finds a workload by name; null when absent.
const Workload *findWorkload(const std::string &Name);

/// Convenience: compile a workload's program (aborts on error; sources are
/// compiled into the binary and must be valid).
std::unique_ptr<Program> compileWorkload(const Workload &W,
                                         const MachineModel &Machine = {});

/// Convenience: run one workload end to end and validate; returns the
/// stats or an error (including "validation failed: ...").
Expected<LaunchStats> runWorkload(const Workload &W, uint32_t Scale,
                                  const LaunchOptions &Options,
                                  const MachineModel &Machine = {});

} // namespace simtvec

#endif // SIMTVEC_WORKLOADS_WORKLOADS_H
