//===- simtvec/support/Serialize.h - Binary serialization -------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization primitives for the persistent artifact cache: a
/// little-endian append-only writer, a bounds-checked reader that latches
/// failure instead of erroring per field (callers check once at the end, so
/// a truncated or bit-flipped artifact degrades to "invalid", never UB), a
/// CRC32 for payload integrity, an FNV-1a hash for build fingerprints, and
/// atomic-rename file publication so concurrent processes sharing one cache
/// directory never observe a half-written entry.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_SERIALIZE_H
#define SIMTVEC_SUPPORT_SERIALIZE_H

#include "simtvec/support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace simtvec {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of \p Size bytes.
uint32_t crc32(const void *Data, size_t Size);

/// FNV-1a 64-bit hash, continuable: pass a previous result as \p Seed to
/// fold multiple fields into one fingerprint.
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 0xcbf29ce484222325ull);
inline uint64_t fnv1a64(const std::string &S,
                        uint64_t Seed = 0xcbf29ce484222325ull) {
  return fnv1a64(S.data(), S.size(), Seed);
}

/// Append-only little-endian byte stream writer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { raw(&V, sizeof(V)); }
  void u32(uint32_t V) { raw(&V, sizeof(V)); }
  void u64(uint64_t V) { raw(&V, sizeof(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  /// Length-prefixed string.
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    raw(S.data(), S.size());
  }
  void raw(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader over an externally owned buffer.
/// Any out-of-bounds read latches `failed()` and yields zeros; callers
/// validate once after decoding (the artifact loader treats failure as a
/// cache miss).
class ByteReader {
public:
  ByteReader(const void *Data, size_t Size)
      : P(static_cast<const uint8_t *>(Data)), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : ByteReader(Buf.data(), Buf.size()) {}

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, sizeof(V));
    return V;
  }
  uint16_t u16() {
    uint16_t V = 0;
    raw(&V, sizeof(V));
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, sizeof(V));
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, sizeof(V));
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (N > remaining()) {
      Failed = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(P + Pos), N);
    Pos += N;
    return S;
  }
  void raw(void *Out, size_t N) {
    if (N > remaining()) {
      Failed = true;
      std::memset(Out, 0, N);
      return;
    }
    std::memcpy(Out, P + Pos, N);
    Pos += N;
  }

  size_t remaining() const { return Size - Pos; }
  bool failed() const { return Failed; }
  /// True when the whole buffer was consumed without a bounds violation.
  bool exhausted() const { return !Failed && Pos == Size; }

private:
  const uint8_t *P;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// Reads a whole file; an unreadable file is an error (the artifact cache
/// maps it to a miss).
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Publishes \p Data at \p Path atomically: writes to a unique temporary in
/// the same directory, then renames over the target. Readers see the old
/// content, no content, or the full new content — never a prefix. Parent
/// directories are created as needed.
Status writeFileAtomic(const std::string &Path, const void *Data,
                       size_t Size);
inline Status writeFileAtomic(const std::string &Path,
                              const std::vector<uint8_t> &Data) {
  return writeFileAtomic(Path, Data.data(), Data.size());
}

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_SERIALIZE_H
