//===- simtvec/support/BitSet.h - Dense dynamic bit set ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense fixed-capacity bit set used by the dataflow analyses (liveness,
/// variance). Word-parallel union/intersection keep the fixed points cheap.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_BITSET_H
#define SIMTVEC_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace simtvec {

/// Dense bit set over [0, size).
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t Size) : NumBits(Size), Words((Size + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }
  void set(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] |= 1ull << (Bit % 64);
  }
  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] &= ~(1ull << (Bit % 64));
  }

  /// Union-in; returns true when this set changed.
  bool unionWith(const BitSet &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Merged = Words[W] | RHS.Words[W];
      Changed |= Merged != Words[W];
      Words[W] = Merged;
    }
    return Changed;
  }

  /// this |= (RHS minus Kill).
  bool unionWithMinus(const BitSet &RHS, const BitSet &Kill) {
    assert(NumBits == RHS.NumBits && NumBits == Kill.NumBits &&
           "size mismatch");
    bool Changed = false;
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Merged = Words[W] | (RHS.Words[W] & ~Kill.Words[W]);
      Changed |= Merged != Words[W];
      Words[W] = Merged;
    }
    return Changed;
  }

  size_t count() const {
    size_t Total = 0;
    for (uint64_t W : Words)
      Total += static_cast<size_t>(__builtin_popcountll(W));
    return Total;
  }

  bool operator==(const BitSet &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  /// Invokes \p F for each set bit in ascending order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned Tz = static_cast<unsigned>(__builtin_ctzll(Bits));
        F(W * 64 + Tz);
        Bits &= Bits - 1;
      }
    }
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_BITSET_H
