//===- simtvec/support/Status.h - Recoverable error handling ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free recoverable error types. `Status` carries success or an
/// error message; `Expected<T>` carries a value or an error message. Both
/// follow the spirit of llvm::Error / llvm::Expected, without the
/// checked-flag machinery (the library compiles with -fno-exceptions
/// semantics: programmatic errors are asserts, recoverable errors are these).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_STATUS_H
#define SIMTVEC_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace simtvec {

/// Success or an error described by a message.
class Status {
public:
  /// Creates a success value.
  static Status success() { return Status(); }

  /// Creates a failure value carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    assert(!S.Message->empty() && "error status requires a message");
    return S;
  }

  /// True when this is an error.
  explicit operator bool() const { return Message.has_value(); }

  bool isError() const { return Message.has_value(); }

  /// The error message; only valid when isError().
  const std::string &message() const {
    assert(isError() && "no message on a success Status");
    return *Message;
  }

private:
  Status() = default;
  std::optional<std::string> Message;
};

/// A value of type \p T or an error message.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status Err) : Err(std::move(Err)) {
    assert(this->Err.isError() && "Expected built from a success Status");
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing an errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an errored Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The error; only valid on failure.
  const Status &status() const {
    assert(!Value && "no error on a successful Expected");
    return Err;
  }

  /// Moves the contained value out; only valid on success.
  T take() {
    assert(Value && "taking from an errored Expected");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err = Status::success();
};

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_STATUS_H
