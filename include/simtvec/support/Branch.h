//===- simtvec/support/Branch.h - Divergent-branch policy knob --*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The divergence-reduction knob: what the specializer does at a divergent
/// branch site. Yield is the engine's historical behaviour (vote the
/// predicate, yield the warp back to the scheduler on disagreement);
/// Predicate flattens acyclic if/else diamonds so both sides execute
/// guarded in one warp; Meld adds DARM-style alignment of structurally
/// similar half-regions plus masked execution of divergent self-loops; Pgo
/// explores with yields first, measures per-site divergence, and commits a
/// per-site plan persisted with the autotune profile. Resolution follows
/// the Jit.h convention: the explicit LaunchOptions value wins, Auto defers
/// to the SIMTVEC_BRANCH env var, and an unset env var means Yield so the
/// default pipeline is bit-stable against earlier releases.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_BRANCH_H
#define SIMTVEC_SUPPORT_BRANCH_H

#include <cstdint>

namespace simtvec {

/// User-facing knob: Auto defers to SIMTVEC_BRANCH, then to Yield. Pgo is
/// what SIMTVEC_BRANCH=auto selects — measure, then commit per site.
enum class BranchMode : uint8_t {
  Auto = 0,
  Pgo = 1,
  Meld = 2,
  Predicate = 3,
  Yield = 4,
};

/// Parses SIMTVEC_BRANCH (full-string match of auto|meld|predicate|yield,
/// cached on first use; invalid values warn once on stderr and fall back to
/// yield). "auto" means Pgo. Unset means Yield.
BranchMode branchModeFromEnv();

/// Collapses Auto to the env var's answer; explicit modes win. Never
/// returns Auto.
BranchMode resolveBranchMode(BranchMode Mode);

/// "auto" / "meld" / "predicate" / "yield" (Pgo prints as "auto").
const char *branchModeName(BranchMode Mode);

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_BRANCH_H
