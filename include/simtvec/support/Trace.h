//===- simtvec/support/Trace.h - Structured tracing & metrics ---*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing and metrics for the runtime. The paper's
/// evaluation (Figs. 6-10) is an exercise in attributing warp time to the
/// subkernel, the yield handlers, and the execution manager; this subsystem
/// makes that attribution observable *inside* a launch instead of only as
/// end-of-launch aggregates.
///
/// Two facilities:
///
///  - **Event tracing** (`trace::*`): instrumented seams (launch/CTA spans
///    in the execution manager, warp-formation histograms, translation-cache
///    hit/miss/compile, stream op lifecycle, pool park/wake) record fixed
///    size events into per-thread single-producer buffers. A session is
///    exported as Chrome `chrome://tracing` / Perfetto trace-event JSON
///    (`trace::writeJson`), validated by `tools/trace_dump --check`.
///
///  - **Metrics** (`MetricsRegistry`): process-wide named monotonic counters
///    and gauges (cache hit rate, warps formed per width, barrier waits,
///    pool occupancy) queryable from the host API and printed by
///    `wallclock_throughput --metrics`.
///
/// Overhead contract: when tracing is disabled every hook is one relaxed
/// atomic load plus a predicted-untaken branch — no clock read, no buffer
/// touch (`trace::enabled()`). Recording never takes a lock: each thread
/// owns its buffer, slots are written once and published with a
/// release-store of the write index, and overflow drops the new event
/// (counted in `ThreadEvents::Dropped`) instead of overwriting slots a
/// reader may be scanning. Tracing is host-side only: it never touches the
/// modeled counters, so `LaunchStats` are bit-identical with tracing on or
/// off (asserted by tests/trace_test.cpp).
///
/// Session discipline: `startSession()` resets the clock epoch and marks
/// every buffer for (owner-side) reuse; `collect()`/`writeJson()` must not
/// run concurrently with a *later* `startSession()` — sessions are
/// sequential, the traced work inside them is arbitrarily parallel.
///
/// Gating: the `SIMTVEC_TRACE` environment variable (non-empty, not "0")
/// starts a session at process start; `LaunchOptions::Trace` starts one
/// lazily at the first traced launch; `Program::launchTraced` brackets a
/// single launch and writes its trace file.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_TRACE_H
#define SIMTVEC_SUPPORT_TRACE_H

#include "simtvec/support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace simtvec {
namespace trace {

/// Event kinds, mapped to trace-event phases on export: Span -> "X"
/// (complete event with duration; begin/end derived at export, so pairs are
/// matched by construction even under drops), Instant -> "i", Counter ->
/// "C".
enum class Kind : uint8_t { Span, Instant, Counter };

/// One recorded event. Name/category/argument-key strings must have process
/// lifetime (string literals, or `trace::intern` for dynamic names).
struct Event {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t Ts = 0;  ///< nanoseconds since the session epoch
  uint64_t Dur = 0; ///< Span only
  Kind Ph = Kind::Instant;
  uint64_t A0 = 0, A1 = 0;
  const char *K0 = nullptr, *K1 = nullptr; ///< arg names; null = absent
  const char *SK = nullptr; ///< string-arg key (null = absent)
  const char *SV = nullptr; ///< string-arg value (interned)
};

namespace detail {
/// Single relaxed load; the branch lives at the call site.
extern std::atomic<bool> EnabledFlag;
void record(const Event &E);
uint64_t sessionNanos(); ///< nanoseconds since the session epoch
} // namespace detail

/// True when a trace session is active. The disabled-path cost of every
/// hook: this load plus one branch.
inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// Starts a session: resets the epoch, marks all thread buffers for reuse,
/// and enables recording. Must not race with a collect() of the previous
/// session (sessions are sequential).
void startSession();

/// Disables recording. Already-recorded events stay collectable.
void endSession();

/// Copies a dynamic string into process-lifetime storage, deduplicated, so
/// it can be carried by events. Cold paths only (per launch, per compile).
const char *intern(const std::string &S);

/// Records an instant event (no-op when disabled).
inline void instant(const char *Name, const char *Cat, uint64_t A0 = 0,
                    const char *K0 = nullptr, uint64_t A1 = 0,
                    const char *K1 = nullptr) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = detail::sessionNanos();
  E.Ph = Kind::Instant;
  E.A0 = A0;
  E.A1 = A1;
  E.K0 = K0;
  E.K1 = K1;
  detail::record(E);
}

/// Records a counter sample (rendered as a counter track).
inline void counter(const char *Name, const char *Cat, uint64_t Value) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = detail::sessionNanos();
  E.Ph = Kind::Counter;
  E.A0 = Value;
  E.K0 = "value";
  detail::record(E);
}

/// RAII span: captures the start time at construction when tracing is on,
/// records a complete event at destruction. When tracing is off both ends
/// are a load + branch. Spans must strictly nest per thread (stack
/// discipline), which scoped lifetime guarantees.
class Span {
public:
  Span(const char *Name, const char *Cat) : Name(Name), Cat(Cat) {
    if (enabled())
      Start = detail::sessionNanos() + 1; // +1: 0 means "not tracing"
  }
  ~Span() {
    if (Start)
      finish();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Optional arguments, attached before destruction.
  void arg(const char *Key, uint64_t Value) {
    if (!Start)
      return;
    if (!K0) {
      K0 = Key;
      A0 = Value;
    } else {
      K1 = Key;
      A1 = Value;
    }
  }
  void strArg(const char *Key, const char *InternedValue) {
    if (!Start)
      return;
    SK = Key;
    SV = InternedValue;
  }

private:
  void finish();

  const char *Name;
  const char *Cat;
  uint64_t Start = 0;
  uint64_t A0 = 0, A1 = 0;
  const char *K0 = nullptr, *K1 = nullptr;
  const char *SK = nullptr, *SV = nullptr;
};

/// Events of one thread, in record order (timestamps nondecreasing).
struct ThreadEvents {
  uint32_t Tid = 0;        ///< dense per-process trace thread id
  uint64_t Dropped = 0;    ///< events lost to buffer overflow
  std::vector<Event> Events;
};

/// Snapshots every thread's events for the current session. Safe against
/// concurrent recording (in-flight events may simply be missed); must not
/// race with a later startSession().
std::vector<ThreadEvents> collect();

/// Serializes the current session as Chrome trace-event JSON.
std::string toJson();

/// Writes toJson() to \p Path.
Status writeJson(const std::string &Path);

/// Per-thread buffer capacity in events; settable via the
/// SIMTVEC_TRACE_BUFFER environment variable (default 1<<15). Applies to
/// buffers created after the change.
size_t bufferCapacity();

} // namespace trace

/// Process-wide named counters and gauges. Counters are monotonic
/// uint64 atomics — the registry hands out a stable pointer so hot sites
/// pay one relaxed fetch_add, not a map lookup. Gauges are last-write-wins
/// doubles. Lookup/creation is mutex-guarded and intended for cold paths;
/// cache the returned counter reference.
class MetricsRegistry {
public:
  using Counter = std::atomic<uint64_t>;

  static MetricsRegistry &global();

  /// Finds or creates the counter \p Name. The reference is stable for the
  /// registry's lifetime.
  Counter &counter(const std::string &Name);

  /// Convenience: counter(Name) += Delta (cold paths; hot sites should
  /// cache the counter).
  void add(const std::string &Name, uint64_t Delta) {
    counter(Name).fetch_add(Delta, std::memory_order_relaxed);
  }

  /// Sets the gauge \p Name to \p Value (last write wins).
  void setGauge(const std::string &Name, double Value);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> Counters; ///< sorted
    std::vector<std::pair<std::string, double>> Gauges;     ///< sorted
    /// The counter's value, or 0 when absent.
    uint64_t counterValue(const std::string &Name) const;
  };
  Snapshot snapshot() const;

  /// Zeroes every counter and drops every gauge (tests).
  void reset();

private:
  MetricsRegistry() = default;
  struct Impl;
  Impl &impl() const;
};

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_TRACE_H
