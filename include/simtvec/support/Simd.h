//===- simtvec/support/Simd.h - Fixed-width SIMD value class ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-length SIMD value type `Simd<T, W>` (W in {1,2,4,8}) in the
/// Kokkos `Vector<SIMD<T>, l>` style, built on the GCC/Clang vector
/// extensions (`__attribute__((vector_size)))`) with a guaranteed-correct
/// scalar-loop fallback selected at compile time. The vm lane kernels
/// (src/vm/ExecKernels.cpp) are written against this class; the paper's JIT
/// emitted native SSE per specialized kernel, and this is the portable
/// equivalent — the op is expressed directly on vector registers instead of
/// hoping the autovectorizer rediscovers it behind the u64 lane-word boxing.
///
/// Semantics contract (what makes the vm's bit-identity argument work):
///  - integer + - * wrap modulo 2^bits (computed on the unsigned
///    counterpart, exactly like ScalarOpsImpl.h's intBinary — no
///    signed-overflow UB on either backend);
///  - comparisons return a mask vector of signed integers the same size as
///    the element, with all-ones for true and zero for false — the GCC
///    vector-compare convention, which the Array backend reproduces;
///  - select() is a pure bit blend (M & A) | (~M & B), so the selected
///    operand's bit pattern (NaN payloads, -0.0) is preserved exactly;
///  - convertTo<To>() is the elementwise static_cast (what
///    __builtin_convertvector does); bitcastTo<To>() is a same-size
///    reinterpret. Float->int conversions with out-of-range values are NOT
///    defined here — callers that need saturating semantics (evalConvert's
///    floatToInt) must keep the scalar path.
///
/// Both backends compile everywhere; `Simd<T, W>` defaults to the native
/// backend when the compiler has the extension. Tests instantiate
/// `Simd<T, W, SimdBackend::Array>` explicitly to pin the fallback.
///
/// The engine-selection knobs live here too: SimdMode is the user-facing
/// three-state knob (LaunchOptions / SIMTVEC_SIMD env), SimdPath is the
/// resolved two-state engine path recorded in translation-cache keys.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_SIMD_H
#define SIMTVEC_SUPPORT_SIMD_H

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace simtvec {

//===----------------------------------------------------------------------===
// Engine-path selection knobs
//===----------------------------------------------------------------------===

/// User-facing knob: Auto defers to the SIMTVEC_SIMD env var, then to the
/// build default (vector iff the native backend is compiled in).
enum class SimdMode : uint8_t { Auto = 0, Vector = 1, Scalar = 2 };

/// Resolved engine path. Scalar keeps the pre-SIMD lane loops as the
/// differential oracle; Vector selects the Simd<T,W>-based kernels.
enum class SimdPath : uint8_t { Scalar = 0, Vector = 1 };

#if defined(__GNUC__) || defined(__clang__)
#define SIMTVEC_SIMD_HAVE_NATIVE 1
#else
#define SIMTVEC_SIMD_HAVE_NATIVE 0
#endif

constexpr bool simdNativeAvailable() { return SIMTVEC_SIMD_HAVE_NATIVE != 0; }

/// Parses SIMTVEC_SIMD (full-string match of auto|vector|scalar, cached on
/// first use; invalid values warn once on stderr and fall back to auto).
SimdMode simdModeFromEnv();

/// Mode -> path: explicit modes win; Auto consults the env var, then
/// defaults to Vector iff the native backend is available.
SimdPath resolveSimdPath(SimdMode Mode);

const char *simdPathName(SimdPath Path); // "scalar" / "vector"
const char *simdModeName(SimdMode Mode); // "auto" / "vector" / "scalar"

//===----------------------------------------------------------------------===
// Simd<T, W, Backend>
//===----------------------------------------------------------------------===

enum class SimdBackend : uint8_t { Array, Native };

inline constexpr SimdBackend SimdDefaultBackend =
    simdNativeAvailable() ? SimdBackend::Native : SimdBackend::Array;

namespace simd_detail {

template <unsigned Size> struct SignedOfSize;
template <> struct SignedOfSize<1> { using type = int8_t; };
template <> struct SignedOfSize<2> { using type = int16_t; };
template <> struct SignedOfSize<4> { using type = int32_t; };
template <> struct SignedOfSize<8> { using type = int64_t; };

/// Mask element for T: a signed integer the same size as T.
template <typename T>
using MaskEltT = typename SignedOfSize<sizeof(T)>::type;

/// Unsigned integer the same size as T (bit blends, wrap arithmetic).
template <typename T>
using UIntOfT = std::make_unsigned_t<MaskEltT<T>>;

#if SIMTVEC_SIMD_HAVE_NATIVE
template <typename T, unsigned W>
using NativeVec [[gnu::vector_size(sizeof(T) * W)]] = T;
#endif

template <typename T, unsigned W, SimdBackend B> struct Storage;
template <typename T, unsigned W> struct Storage<T, W, SimdBackend::Array> {
  T Lane[W];
};
#if SIMTVEC_SIMD_HAVE_NATIVE
template <typename T, unsigned W> struct Storage<T, W, SimdBackend::Native> {
  NativeVec<T, W> V;
};
#endif

} // namespace simd_detail

template <typename T, unsigned W, SimdBackend B = SimdDefaultBackend>
class Simd {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8,
                "specialized widths only");
  static_assert(std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                "lane element must be a (non-bool) arithmetic type");

  simd_detail::Storage<T, W, B> S;

  static constexpr bool IsNative = B == SimdBackend::Native;
  static constexpr bool IsInt = std::is_integral_v<T>;
  using UT = simd_detail::UIntOfT<T>;

public:
  using value_type = T;
  using MaskElt = simd_detail::MaskEltT<T>;
  using Mask = Simd<MaskElt, W, B>;
  static constexpr unsigned Width = W;
  static constexpr SimdBackend Backend = B;

  Simd() = default;

  static Simd splat(T X) {
    Simd R;
    for (unsigned L = 0; L < W; ++L)
      R.setLane(L, X);
    return R;
  }

  // Element order is memory order on both backends, so byte-offset access
  // is well defined (and sidesteps the vector subscript extension).
  T lane(unsigned L) const {
    T X;
    std::memcpy(&X, reinterpret_cast<const char *>(&S) + L * sizeof(T),
                sizeof(T));
    return X;
  }

  void setLane(unsigned L, T X) {
    std::memcpy(reinterpret_cast<char *>(&S) + L * sizeof(T), &X, sizeof(T));
  }

  /// Elementwise load/store of raw T values (unaligned-safe).
  static Simd load(const T *P) {
    Simd R;
    std::memcpy(&R.S, P, sizeof(R.S));
    return R;
  }
  void store(T *P) const { std::memcpy(P, &S, sizeof(S)); }

  //===--------------------------------------------------------------------===
  // Representation conversions
  //===--------------------------------------------------------------------===

  /// Elementwise value conversion (static_cast semantics; what
  /// __builtin_convertvector does). Not defined for float sources with
  /// values out of the destination's range.
  template <typename To> Simd<To, W, B> convertTo() const {
    Simd<To, W, B> R;
    if constexpr (IsNative) {
#if SIMTVEC_SIMD_HAVE_NATIVE
      R.S.V = __builtin_convertvector(S.V, simd_detail::NativeVec<To, W>);
#endif
    } else {
      for (unsigned L = 0; L < W; ++L)
        R.setLane(L, static_cast<To>(lane(L)));
    }
    return R;
  }

  /// Same-total-size reinterpret (element size must match).
  template <typename To> Simd<To, W, B> bitcastTo() const {
    static_assert(sizeof(To) == sizeof(T), "bitcast needs equal element size");
    Simd<To, W, B> R;
    std::memcpy(&R, &S, sizeof(S));
    return R;
  }

  //===--------------------------------------------------------------------===
  // u64 lane-word load/store: the vm's stride-1 operand representation
  // (integers zero-extended, f32 in the low 32 bits, f64 bit pattern).
  // These reproduce ScalarOpsImpl.h fromBits/toBits elementwise.
  //===--------------------------------------------------------------------===

  static Simd loadLaneWords(const uint64_t *Words) {
    using U64 = Simd<uint64_t, W, B>;
    U64 Raw = U64::load(Words);
    if constexpr (std::is_same_v<T, uint64_t>)
      return Raw;
    else if constexpr (std::is_same_v<T, int64_t>)
      return Raw.template bitcastTo<int64_t>();
    else if constexpr (std::is_same_v<T, double>)
      return Raw.template bitcastTo<double>();
    else if constexpr (std::is_same_v<T, float>)
      return Raw.template convertTo<uint32_t>().template bitcastTo<float>();
    else if constexpr (std::is_signed_v<T>)
      return Raw.template convertTo<UT>().template bitcastTo<T>();
    else
      return Raw.template convertTo<T>();
  }

  void storeLaneWords(uint64_t *Words) const {
    using U64 = Simd<uint64_t, W, B>;
    U64 Out;
    if constexpr (std::is_same_v<T, uint64_t>)
      Out = *this;
    else if constexpr (std::is_same_v<T, int64_t> ||
                       std::is_same_v<T, double>)
      Out = bitcastTo<uint64_t>();
    else if constexpr (std::is_same_v<T, float>)
      Out = bitcastTo<uint32_t>().template convertTo<uint64_t>();
    else if constexpr (std::is_signed_v<T>)
      Out = bitcastTo<UT>().template convertTo<uint64_t>();
    else
      Out = convertTo<uint64_t>();
    Out.store(Words);
  }

  //===--------------------------------------------------------------------===
  // Arithmetic
  //===--------------------------------------------------------------------===

  friend Simd operator+(const Simd &A, const Simd &X) {
    return arith(A, X, [](const auto &U, const auto &V) { return U + V; });
  }
  friend Simd operator-(const Simd &A, const Simd &X) {
    return arith(A, X, [](const auto &U, const auto &V) { return U - V; });
  }
  friend Simd operator*(const Simd &A, const Simd &X) {
    return arith(A, X, [](const auto &U, const auto &V) { return U * V; });
  }
  friend Simd operator/(const Simd &A, const Simd &X) {
    static_assert(std::is_floating_point_v<T>,
                  "integer division keeps the scalar path (zero guards)");
    return arith(A, X, [](const auto &U, const auto &V) { return U / V; });
  }

  /// 0 - X on the unsigned counterpart (ScalarOpsImpl intUnary Neg); for
  /// floats the IEEE negation (sign-bit flip, NaN payload preserved).
  Simd negated() const {
    if constexpr (IsInt)
      return Simd::splat(T(0)) - *this;
    else
      return arith(*this, *this,
                   [](const auto &U, const auto &) { return -U; });
  }

  //===--------------------------------------------------------------------===
  // Bitwise (integral T)
  //===--------------------------------------------------------------------===

  friend Simd operator&(const Simd &A, const Simd &X) {
    static_assert(IsInt, "bitwise op needs an integral element");
    return arith(A, X, [](const auto &U, const auto &V) { return U & V; });
  }
  friend Simd operator|(const Simd &A, const Simd &X) {
    static_assert(IsInt, "bitwise op needs an integral element");
    return arith(A, X, [](const auto &U, const auto &V) { return U | V; });
  }
  friend Simd operator^(const Simd &A, const Simd &X) {
    static_assert(IsInt, "bitwise op needs an integral element");
    return arith(A, X, [](const auto &U, const auto &V) { return U ^ V; });
  }
  Simd operator~() const {
    static_assert(IsInt, "bitwise op needs an integral element");
    return *this ^ Simd::splat(static_cast<T>(~UT(0)));
  }

  /// Shifts with the count masked to the element width (ScalarOpsImpl's
  /// `count & (bits - 1)`), so no out-of-range-shift UB. shl is logical on
  /// the unsigned counterpart; shr is arithmetic iff T is signed — exactly
  /// intBinary's Shl/Shr.
  Simd shlMasked(const Simd &Count) const {
    static_assert(IsInt, "shift needs an integral element");
    const Simd C = Count & Simd::splat(static_cast<T>(sizeof(T) * 8 - 1));
    return arith(*this, C,
                 [](const auto &U, const auto &V) { return U << V; });
  }

  Simd shrMasked(const Simd &Count) const {
    static_assert(IsInt, "shift needs an integral element");
    const Simd C = Count & Simd::splat(static_cast<T>(sizeof(T) * 8 - 1));
    Simd R;
    if constexpr (IsNative) {
#if SIMTVEC_SIMD_HAVE_NATIVE
      R.S.V = S.V >> C.S.V; // arithmetic iff T signed, like the scalar op
#endif
    } else {
      for (unsigned L = 0; L < W; ++L)
        R.setLane(L,
                  static_cast<T>(lane(L) >> static_cast<unsigned>(C.lane(L))));
    }
    return R;
  }

  //===--------------------------------------------------------------------===
  // Comparison -> mask (all-ones / zero lanes of MaskElt), and bit-blend
  // select. Float compares follow C scalar semantics (NaN unordered).
  //===--------------------------------------------------------------------===

  Mask cmpEq(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A == C; });
  }
  Mask cmpNe(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A != C; });
  }
  Mask cmpLt(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A < C; });
  }
  Mask cmpLe(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A <= C; });
  }
  Mask cmpGt(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A > C; });
  }
  Mask cmpGe(const Simd &X) const {
    return cmp(X, [](const auto &A, const auto &C) { return A >= C; });
  }

  /// Bit blend: lane L of the result is A's lane where M's lane is all-ones,
  /// X's lane where it is zero. M must come from a compare (no partial
  /// masks), which makes this exactly the ternary `cond ? A : X` — down to
  /// NaN payload and signed-zero bits.
  static Simd select(const Mask &M, const Simd &A, const Simd &X) {
    using UV = Simd<UT, W, B>;
    const UV MU = M.template bitcastTo<UT>();
    const UV R = (MU & A.template bitcastTo<UT>()) |
                 (~MU & X.template bitcastTo<UT>());
    return R.template bitcastTo<T>();
  }

private:
  /// Elementwise binary op. Integer inputs are rebound to the unsigned
  /// counterpart before Op and rebound back after, so +,-,*,<< wrap with no
  /// signed-overflow UB; floats apply Op directly. The native branch hands
  /// Op whole vectors, the array branch hands it scalars.
  template <typename F>
  static Simd arith(const Simd &A, const Simd &X, F Op) {
    Simd R;
    if constexpr (IsNative) {
#if SIMTVEC_SIMD_HAVE_NATIVE
      if constexpr (IsInt && std::is_signed_v<T>) {
        using UV = simd_detail::NativeVec<UT, W>;
        UV UA, UX;
        std::memcpy(&UA, &A.S.V, sizeof(UA));
        std::memcpy(&UX, &X.S.V, sizeof(UX));
        const UV UR = Op(UA, UX);
        std::memcpy(&R.S.V, &UR, sizeof(UR));
      } else {
        R.S.V = Op(A.S.V, X.S.V);
      }
#endif
    } else {
      for (unsigned L = 0; L < W; ++L) {
        if constexpr (IsInt)
          R.setLane(L, static_cast<T>(Op(UT(A.lane(L)), UT(X.lane(L)))));
        else
          R.setLane(L, Op(A.lane(L), X.lane(L)));
      }
    }
    return R;
  }

  template <typename F> Mask cmp(const Simd &X, F Op) const {
    Mask R;
    if constexpr (IsNative) {
#if SIMTVEC_SIMD_HAVE_NATIVE
      const auto MV = Op(S.V, X.S.V); // GCC: signed int vector, -1/0 lanes
      static_assert(sizeof(MV) == sizeof(R));
      std::memcpy(&R, &MV, sizeof(R));
#endif
    } else {
      for (unsigned L = 0; L < W; ++L)
        R.setLane(L, Op(lane(L), X.lane(L)) ? MaskElt(-1) : MaskElt(0));
    }
    return R;
  }

  template <typename T2, unsigned W2, SimdBackend B2> friend class Simd;
};

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_SIMD_H
