//===- simtvec/support/RNG.h - Deterministic random numbers -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 generator used to synthesize workload inputs deterministically.
/// Every experiment seeds its own RNG so results are reproducible bit-for-bit
/// across runs and hosts.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_RNG_H
#define SIMTVEC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace simtvec {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Uniform float in [0, 1).
  float nextFloat() {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [Lo, Hi).
  float nextFloat(float Lo, float Hi) { return Lo + (Hi - Lo) * nextFloat(); }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_RNG_H
