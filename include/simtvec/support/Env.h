//===- simtvec/support/Env.h - Environment knob parsing ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one shared parser behind every `SIMTVEC_*` environment knob
/// (`SIMTVEC_SIMD`, `SIMTVEC_JIT`, `SIMTVEC_POOL_THREADS`,
/// `SIMTVEC_TRACE`, `SIMTVEC_TRACE_BUFFER`, ...). All knobs follow one
/// contract:
///
///  - unset and empty values mean "use the default", silently;
///  - a set value is validated against the *full* string — trailing
///    garbage ("8abc"), out-of-range numbers, and unknown enumerators are
///    rejected, never truncated or partially accepted;
///  - a rejected value produces exactly one stderr warning of the form
///    `simtvec: ignoring invalid NAME='value' (expected ...); using ...`
///    and falls back to the default (a bad knob must never abort a run).
///
/// Callers keep their own defaults: the parsers return `std::nullopt` for
/// "unset / empty / rejected" so the call site's fallback applies in one
/// place.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_ENV_H
#define SIMTVEC_SUPPORT_ENV_H

#include <cstddef>
#include <optional>
#include <vector>

namespace simtvec {
namespace env {

/// Reads the integer knob \p Name. Returns the value when it parses as a
/// full-string integer in [\p Min, \p Max]; returns std::nullopt silently
/// when the variable is unset or empty, and with the one-line stderr
/// warning (naming \p FallbackDesc as what will be used instead) when the
/// value is malformed or out of range.
std::optional<long long> intKnob(const char *Name, long long Min,
                                 long long Max, const char *FallbackDesc);

/// Reads the enumerated knob \p Name. Returns the index of the matching
/// entry of \p Choices (exact, case-sensitive, full-string match); returns
/// std::nullopt silently when unset or empty, and with the stderr warning
/// (listing the choices as `a|b|c`) when the value matches none.
std::optional<size_t> choiceKnob(const char *Name,
                                 const std::vector<const char *> &Choices,
                                 const char *FallbackDesc);

/// Reads the boolean knob \p Name: true when the variable is set to
/// anything other than the empty string or "0". Never warns — every value
/// is a valid boolean.
bool boolKnob(const char *Name);

} // namespace env
} // namespace simtvec

#endif // SIMTVEC_SUPPORT_ENV_H
