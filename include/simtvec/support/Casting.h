//===- simtvec/support/Casting.h - LLVM-style isa/cast/dyn_cast -*- C++ -*-===//
//
// Part of SIMTVec, a reproduction of "Dynamic Compilation of Data-Parallel
// Kernels for Vector Processors" (Kerr, Diamos, Yalamanchili; CGO 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in RTTI templates in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_CASTING_H
#define SIMTVEC_SUPPORT_CASTING_H

#include <cassert>

namespace simtvec {

/// Returns true if \p Val is an instance of \p To (checked via classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_CASTING_H
