//===- simtvec/support/Format.h - printf-style string formatting -*- C++ -*-=//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `formatString` renders a printf-style format into a std::string. Used for
/// diagnostics and for the bench harness tables.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_FORMAT_H
#define SIMTVEC_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace simtvec {

/// Renders \p Fmt with printf semantics into a string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_FORMAT_H
