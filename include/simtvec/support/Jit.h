//===- simtvec/support/Jit.h - Execution-tier selection knob ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiered-execution knob: Auto interprets on first use and hot-swaps to
/// the background-compiled native tier when it is ready, Native forces a
/// synchronous native compile (deterministic tests, benchmarking the tier),
/// Interp pins the interpreter — the differential oracle for the JIT exactly
/// as SIMTVEC_SIMD=scalar is for the SIMD lane kernels. Resolution follows
/// the Simd.h convention: the explicit LaunchOptions value wins, Auto defers
/// to the SIMTVEC_JIT env var.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SUPPORT_JIT_H
#define SIMTVEC_SUPPORT_JIT_H

#include <cstdint>

namespace simtvec {

/// User-facing knob: Auto defers to the SIMTVEC_JIT env var, then to the
/// default tiered behaviour (interpret now, go native when the background
/// compile lands).
enum class JitMode : uint8_t { Auto = 0, Native = 1, Interp = 2 };

/// Parses SIMTVEC_JIT (full-string match of auto|native|interp, cached on
/// first use; invalid values warn once on stderr and fall back to auto).
JitMode jitModeFromEnv();

/// Collapses Auto to the env var's answer; explicit modes win. The result
/// is never Auto unless both the option and the env var say Auto — i.e. the
/// default tiered behaviour.
JitMode resolveJitMode(JitMode Mode);

const char *jitModeName(JitMode Mode); // "auto" / "native" / "interp"

} // namespace simtvec

#endif // SIMTVEC_SUPPORT_JIT_H
