//===- simtvec/ir/Operand.h - SVIR instruction operands ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operands of SVIR instructions: virtual registers, immediates, special
/// registers (the thread-context accessors of the paper's context object:
/// grid/block dimensions, block ID, thread ID), and address symbols for the
/// .param/.shared/.local spaces.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_OPERAND_H
#define SIMTVEC_IR_OPERAND_H

#include "simtvec/ir/Type.h"

#include <cstdint>

namespace simtvec {

/// Index of a virtual register within its kernel's register table.
struct RegId {
  uint32_t Index = ~0u;

  RegId() = default;
  explicit RegId(uint32_t Index) : Index(Index) {}

  bool isValid() const { return Index != ~0u; }
  bool operator==(const RegId &RHS) const { return Index == RHS.Index; }
  bool operator!=(const RegId &RHS) const { return Index != RHS.Index; }
};

/// Special (context) registers. TidX..NCTAIdZ are the PTX %tid/%ntid/%ctaid/
/// %nctaid accessors; the last three are introduced by the vectorizer:
/// LaneId is the lane's position in the warp, WarpBaseTid is lane 0's
/// linearized thread index (uniform; the basis of thread-invariant
/// elimination with static warp formation, paper §6.2), WarpWidth is the
/// specialization's warp size.
enum class SReg : uint8_t {
  TidX,
  TidY,
  TidZ,
  NTidX,
  NTidY,
  NTidZ,
  CTAIdX,
  CTAIdY,
  CTAIdZ,
  NCTAIdX,
  NCTAIdY,
  NCTAIdZ,
  LaneId,
  WarpBaseTid,
  WarpWidth,
  EntryId, ///< the warp's entry point ID (scheduler dispatch, Algorithm 3)
};

/// Printable name for a special register, e.g. "%tid.x".
const char *sregName(SReg S);

/// True for special registers whose value differs between the threads of a
/// warp (the roots of thread-variance, paper §6.2).
bool isThreadVariant(SReg S);

/// Kinds of address symbols.
enum class SymKind : uint8_t { Param, Shared, Local };

/// A single instruction operand.
class Operand {
public:
  enum class Kind : uint8_t { None, Reg, Imm, Special, Symbol };

  Operand() = default;

  static Operand reg(RegId Reg) {
    Operand O;
    O.K = Kind::Reg;
    O.Reg = Reg;
    return O;
  }

  /// An integer immediate of type \p Ty holding \p Value (sign-agnostic raw
  /// bits in the low `bitWidth` bits).
  static Operand immInt(Type Ty, int64_t Value) {
    Operand O;
    O.K = Kind::Imm;
    O.ImmTy = Ty;
    O.ImmBits = static_cast<uint64_t>(Value);
    return O;
  }

  static Operand immF32(float Value);
  static Operand immF64(double Value);

  /// An immediate with explicit raw bits.
  static Operand immBits(Type Ty, uint64_t Bits) {
    Operand O;
    O.K = Kind::Imm;
    O.ImmTy = Ty;
    O.ImmBits = Bits;
    return O;
  }

  static Operand special(SReg S) {
    Operand O;
    O.K = Kind::Special;
    O.Special = S;
    return O;
  }

  static Operand symbol(SymKind SK, uint32_t Index) {
    Operand O;
    O.K = Kind::Symbol;
    O.Sym = SK;
    O.SymIndex = Index;
    return O;
  }

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isSpecial() const { return K == Kind::Special; }
  bool isSymbol() const { return K == Kind::Symbol; }

  RegId regId() const {
    assert(isReg() && "not a register operand");
    return Reg;
  }
  uint64_t immBits() const {
    assert(isImm() && "not an immediate operand");
    return ImmBits;
  }
  Type immType() const {
    assert(isImm() && "not an immediate operand");
    return ImmTy;
  }
  int64_t immInt() const;
  float immF32() const;
  double immF64() const;

  SReg specialReg() const {
    assert(isSpecial() && "not a special-register operand");
    return Special;
  }
  SymKind symKind() const {
    assert(isSymbol() && "not a symbol operand");
    return Sym;
  }
  uint32_t symIndex() const {
    assert(isSymbol() && "not a symbol operand");
    return SymIndex;
  }

private:
  Kind K = Kind::None;
  RegId Reg;
  Type ImmTy;
  uint64_t ImmBits = 0;
  SReg Special = SReg::TidX;
  SymKind Sym = SymKind::Param;
  uint32_t SymIndex = 0;
};

} // namespace simtvec

#endif // SIMTVEC_IR_OPERAND_H
