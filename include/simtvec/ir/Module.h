//===- simtvec/ir/Module.h - SVIR modules -----------------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module is a named collection of kernels, mirroring a registered PTX
/// module in the paper's runtime (§3).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_MODULE_H
#define SIMTVEC_IR_MODULE_H

#include "simtvec/ir/Kernel.h"

#include <memory>
#include <string>
#include <vector>

namespace simtvec {

/// A collection of kernels.
class Module {
public:
  /// Adds an empty kernel named \p Name and returns it.
  Kernel &addKernel(std::string Name) {
    Kernels.push_back(std::make_unique<Kernel>());
    Kernels.back()->Name = std::move(Name);
    return *Kernels.back();
  }

  /// Finds a kernel by name; returns null when absent.
  Kernel *findKernel(const std::string &Name);
  const Kernel *findKernel(const std::string &Name) const;

  const std::vector<std::unique_ptr<Kernel>> &kernels() const {
    return Kernels;
  }

private:
  std::vector<std::unique_ptr<Kernel>> Kernels;
};

} // namespace simtvec

#endif // SIMTVEC_IR_MODULE_H
