//===- simtvec/ir/Verifier.h - SVIR structural verifier ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural and type invariants of kernels. Run after parsing
/// and after every transformation in debug flows; the translation cache
/// verifies each specialization before handing it to the VM.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_VERIFIER_H
#define SIMTVEC_IR_VERIFIER_H

#include "simtvec/support/Status.h"

namespace simtvec {

class Kernel;
class Module;

/// Verifies \p K; returns an error describing the first violation found.
Status verifyKernel(const Kernel &K);

/// Verifies every kernel of \p M.
Status verifyModule(const Module &M);

} // namespace simtvec

#endif // SIMTVEC_IR_VERIFIER_H
