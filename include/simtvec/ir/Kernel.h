//===- simtvec/ir/Kernel.h - SVIR kernels and basic blocks ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A kernel is a scalar function launched over a hierarchical collection of
/// threads (paper Figure 1). After specialization by the translation cache
/// it additionally carries warp-size metadata, the entry-point table used by
/// the scheduler block, and the spill-slot area appended to thread-local
/// memory (paper Algorithms 2-4).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_KERNEL_H
#define SIMTVEC_IR_KERNEL_H

#include "simtvec/ir/Instruction.h"

#include <string>
#include <vector>

namespace simtvec {

/// Role of a block inside a specialized kernel; used to attribute modeled
/// cycles to the paper's Figure 9 buckets (subkernel vs yield handling).
enum class BlockKind : uint8_t {
  Body,         ///< vectorized kernel body
  Scheduler,    ///< compiler-inserted trampoline (Algorithm 3)
  EntryHandler, ///< restores live state on entry (Algorithm 3)
  ExitHandler,  ///< spills live state and yields (Algorithm 4)
};

/// A basic block: a label, a run of non-terminators, and one terminator.
class BasicBlock {
public:
  std::string Name;
  BlockKind Kind = BlockKind::Body;
  std::vector<Instruction> Insts;

  BasicBlock() = default;
  explicit BasicBlock(std::string Name, BlockKind Kind = BlockKind::Body)
      : Name(std::move(Name)), Kind(Kind) {}

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }
  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }
  Instruction &terminator() {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }
};

/// A kernel parameter (uniform across all threads of a launch).
struct Param {
  std::string Name;
  Type Ty;
  uint32_t Offset = 0; ///< byte offset in the parameter buffer
};

/// A named array in the .shared or .local space.
struct MemVar {
  std::string Name;
  uint32_t Bytes = 0;
  uint32_t Offset = 0; ///< byte offset within its space
};

/// A typed virtual register.
struct VirtualRegister {
  std::string Name;
  Type Ty;
};

/// A data-parallel kernel.
class Kernel {
public:
  std::string Name;

  std::vector<Param> Params;
  uint32_t ParamBytes = 0;

  std::vector<MemVar> SharedVars;
  uint32_t SharedBytes = 0; ///< per-CTA

  std::vector<MemVar> LocalVars;
  uint32_t LocalBytes = 0; ///< per-thread, user-declared portion

  std::vector<VirtualRegister> Regs;
  std::vector<BasicBlock> Blocks; ///< Blocks[0] is the function entry

  //===--------------------------------------------------------------------===
  // Specialization metadata (filled in by the core transforms).
  //===--------------------------------------------------------------------===

  /// Warp size this kernel was specialized for; 0 for unspecialized input.
  uint32_t WarpSize = 0;

  /// Entry-point table: entry ID -> block index. Entry 0 is the kernel
  /// entry; further entries are successors of divergence and barrier sites
  /// (paper Algorithm 3). Empty for unspecialized input.
  std::vector<uint32_t> EntryBlocks;

  /// Bytes of spill area appended to each thread's local memory by the
  /// yield-on-diverge lowering.
  uint32_t SpillBytes = 0;

  //===--------------------------------------------------------------------===

  /// Adds a register and returns its id.
  RegId addReg(std::string Name, Type Ty) {
    Regs.push_back({std::move(Name), Ty});
    return RegId(static_cast<uint32_t>(Regs.size() - 1));
  }

  /// Adds a block and returns its index.
  uint32_t addBlock(std::string Name, BlockKind Kind = BlockKind::Body) {
    Blocks.emplace_back(std::move(Name), Kind);
    return static_cast<uint32_t>(Blocks.size() - 1);
  }

  const VirtualRegister &reg(RegId Id) const {
    assert(Id.Index < Regs.size() && "register id out of range");
    return Regs[Id.Index];
  }
  Type regType(RegId Id) const { return reg(Id).Ty; }

  /// Finds a register by name; returns an invalid id when absent.
  RegId findReg(const std::string &Name) const;

  /// Finds a block by label; returns InvalidBlock when absent.
  uint32_t findBlock(const std::string &Name) const;

  /// Finds a parameter index by name; returns ~0u when absent.
  uint32_t findParam(const std::string &Name) const;

  /// Appends a parameter, assigning its buffer offset (naturally aligned).
  uint32_t addParam(std::string Name, Type Ty);

  /// Appends a shared (or local) array, assigning its offset. Alignment is
  /// 16 bytes, enough for any element type.
  uint32_t addSharedVar(std::string Name, uint32_t Bytes);
  uint32_t addLocalVar(std::string Name, uint32_t Bytes);

  /// Successor block indices of block \p BlockIdx, derived from its
  /// terminator.
  std::vector<uint32_t> successors(uint32_t BlockIdx) const;

  /// Total dynamic instruction count (static, over all blocks).
  size_t instructionCount() const;
};

} // namespace simtvec

#endif // SIMTVEC_IR_KERNEL_H
