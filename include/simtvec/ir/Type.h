//===- simtvec/ir/Type.h - SVIR type system ---------------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SVIR value types. A type is a scalar kind plus a lane count; lane count 1
/// is a scalar, lane count `w` is the vector form produced by the
/// vectorization transformation for a warp of `w` threads (paper §4).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_TYPE_H
#define SIMTVEC_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace simtvec {

/// Scalar element kinds, a PTX-flavoured subset.
enum class ScalarKind : uint8_t {
  Pred, ///< 1-bit predicate (stored as 0/1)
  U8,   ///< unsigned byte
  S32,
  U32,
  S64,
  U64,
  F32,
  F64,
};

/// A value type: scalar kind x lane count.
class Type {
public:
  constexpr Type() : Kind(ScalarKind::U32), NumLanes(1) {}
  constexpr Type(ScalarKind Kind, uint16_t Lanes = 1)
      : Kind(Kind), NumLanes(Lanes) {}

  static constexpr Type pred() { return Type(ScalarKind::Pred); }
  static constexpr Type u8() { return Type(ScalarKind::U8); }
  static constexpr Type s32() { return Type(ScalarKind::S32); }
  static constexpr Type u32() { return Type(ScalarKind::U32); }
  static constexpr Type s64() { return Type(ScalarKind::S64); }
  static constexpr Type u64() { return Type(ScalarKind::U64); }
  static constexpr Type f32() { return Type(ScalarKind::F32); }
  static constexpr Type f64() { return Type(ScalarKind::F64); }

  ScalarKind kind() const { return Kind; }
  uint16_t lanes() const { return NumLanes; }
  bool isVector() const { return NumLanes > 1; }
  bool isPred() const { return Kind == ScalarKind::Pred; }
  bool isFloat() const {
    return Kind == ScalarKind::F32 || Kind == ScalarKind::F64;
  }
  bool isInteger() const { return !isFloat() && !isPred(); }
  bool isSigned() const {
    return Kind == ScalarKind::S32 || Kind == ScalarKind::S64;
  }

  /// Bit width of one lane (predicates report 1).
  unsigned bitWidth() const;

  /// Byte size of one lane as stored in memory (predicates are not
  /// addressable; asserts).
  unsigned byteSize() const;

  /// The scalar form of this type.
  Type scalar() const { return Type(Kind, 1); }

  /// This type widened (or narrowed) to \p Lanes lanes.
  Type withLanes(uint16_t Lanes) const { return Type(Kind, Lanes); }

  bool operator==(const Type &RHS) const {
    return Kind == RHS.Kind && NumLanes == RHS.NumLanes;
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  /// Textual form, e.g. ".f32" or "<4 x .f32>".
  std::string str() const;

  /// Name of a scalar kind without the vector wrapper, e.g. "f32".
  static const char *kindName(ScalarKind Kind);

private:
  ScalarKind Kind;
  uint16_t NumLanes;
};

} // namespace simtvec

#endif // SIMTVEC_IR_TYPE_H
