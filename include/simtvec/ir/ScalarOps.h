//===- simtvec/ir/ScalarOps.h - Scalar operation semantics ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-level semantics of SVIR operations over raw 64-bit words:
/// integers are zero-extended bit patterns, f32 occupies the low 32 bits,
/// predicates are 0/1. Shared by the VM interpreter and the constant
/// folder so folding is bit-exact with execution.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_SCALAROPS_H
#define SIMTVEC_IR_SCALAROPS_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Type.h"

#include <cstdint>

namespace simtvec {

/// d = A op B for a two-operand opcode; sets \p Bad when the opcode/kind
/// combination is invalid (e.g. shl on f32).
uint64_t evalBinary(Opcode Op, ScalarKind K, uint64_t A, uint64_t B,
                    bool &Bad);

/// d = A * B + C.
uint64_t evalMad(ScalarKind K, uint64_t A, uint64_t B, uint64_t C, bool &Bad);

/// d = op A for a one-operand opcode (neg/abs/not/transcendentals).
uint64_t evalUnary(Opcode Op, ScalarKind K, uint64_t A, bool &Bad);

/// Comparison of A and B interpreted as kind \p K (NaN compares false
/// except under Ne).
bool evalCmp(CmpOp Cmp, ScalarKind K, uint64_t A, uint64_t B);

/// Conversion with well-defined float->int behaviour (NaN -> 0, saturating
/// at the destination's range).
uint64_t evalConvert(ScalarKind DstK, ScalarKind SrcK, uint64_t Bits);

//===----------------------------------------------------------------------===
// Decode-time resolution. Each resolver returns a direct function computing
// the corresponding eval* with the opcode/kind switches folded away (the
// functions are instantiations of the generic code, so results are
// bit-identical), or null when the combination is invalid — validity
// depends only on (opcode, kind), never on the data.
//===----------------------------------------------------------------------===

using BinaryFn = uint64_t (*)(uint64_t A, uint64_t B);
using UnaryFn = uint64_t (*)(uint64_t A);
using MadFn = uint64_t (*)(uint64_t A, uint64_t B, uint64_t C);
using CmpFn = bool (*)(uint64_t A, uint64_t B);
using ConvertFn = uint64_t (*)(uint64_t Bits);

BinaryFn resolveBinary(Opcode Op, ScalarKind K);
UnaryFn resolveUnary(Opcode Op, ScalarKind K);
MadFn resolveMad(ScalarKind K);
CmpFn resolveCmp(CmpOp Cmp, ScalarKind K);
ConvertFn resolveConvert(ScalarKind DstK, ScalarKind SrcK);

} // namespace simtvec

#endif // SIMTVEC_IR_SCALAROPS_H
