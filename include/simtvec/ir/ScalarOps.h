//===- simtvec/ir/ScalarOps.h - Scalar operation semantics ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-level semantics of SVIR operations over raw 64-bit words:
/// integers are zero-extended bit patterns, f32 occupies the low 32 bits,
/// predicates are 0/1. Shared by the VM interpreter and the constant
/// folder so folding is bit-exact with execution.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_SCALAROPS_H
#define SIMTVEC_IR_SCALAROPS_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Type.h"

#include <cstdint>

namespace simtvec {

/// d = A op B for a two-operand opcode; sets \p Bad when the opcode/kind
/// combination is invalid (e.g. shl on f32).
uint64_t evalBinary(Opcode Op, ScalarKind K, uint64_t A, uint64_t B,
                    bool &Bad);

/// d = A * B + C.
uint64_t evalMad(ScalarKind K, uint64_t A, uint64_t B, uint64_t C, bool &Bad);

/// d = op A for a one-operand opcode (neg/abs/not/transcendentals).
uint64_t evalUnary(Opcode Op, ScalarKind K, uint64_t A, bool &Bad);

/// Comparison of A and B interpreted as kind \p K (NaN compares false
/// except under Ne).
bool evalCmp(CmpOp Cmp, ScalarKind K, uint64_t A, uint64_t B);

/// Conversion with well-defined float->int behaviour (NaN -> 0, saturating
/// at the destination's range).
uint64_t evalConvert(ScalarKind DstK, ScalarKind SrcK, uint64_t Bits);

} // namespace simtvec

#endif // SIMTVEC_IR_SCALAROPS_H
