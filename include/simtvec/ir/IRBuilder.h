//===- simtvec/ir/IRBuilder.h - Convenience kernel builder ------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper for constructing kernels programmatically (used by the
/// transforms, the tests and the random kernel generator). Appends
/// instructions to a current insertion block.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_IRBUILDER_H
#define SIMTVEC_IR_IRBUILDER_H

#include "simtvec/ir/Kernel.h"

namespace simtvec {

/// Appends instructions to a kernel block by block.
class IRBuilder {
public:
  explicit IRBuilder(Kernel &K) : K(K) {}

  Kernel &kernel() { return K; }

  /// Sets the insertion block.
  void setBlock(uint32_t BlockIdx) {
    assert(BlockIdx < K.Blocks.size() && "block index out of range");
    Block = BlockIdx;
  }
  uint32_t block() const { return Block; }

  /// Creates a block and makes it the insertion point.
  uint32_t startBlock(std::string Name, BlockKind Kind = BlockKind::Body) {
    Block = K.addBlock(std::move(Name), Kind);
    return Block;
  }

  /// Appends \p I to the insertion block and returns a reference to it.
  Instruction &append(Instruction I) {
    assert(Block < K.Blocks.size() && "no insertion block");
    BasicBlock &B = K.Blocks[Block];
    assert(!B.hasTerminator() && "appending past a terminator");
    B.Insts.push_back(std::move(I));
    return B.Insts.back();
  }

  //===--------------------------------------------------------------------===
  // Generic emitters
  //===--------------------------------------------------------------------===

  /// op.Ty Dst, Srcs...
  Instruction &emit(Opcode Op, Type Ty, RegId Dst,
                    std::vector<Operand> Srcs) {
    Instruction I(Op, Ty);
    I.Dst = Dst;
    I.Srcs = std::move(Srcs);
    return append(std::move(I));
  }

  Instruction &mov(RegId Dst, Operand Src) {
    return emit(Opcode::Mov, K.regType(Dst), Dst, {Src});
  }
  Instruction &binary(Opcode Op, Type Ty, RegId Dst, Operand A, Operand B) {
    return emit(Op, Ty, Dst, {A, B});
  }
  Instruction &add(Type Ty, RegId Dst, Operand A, Operand B) {
    return binary(Opcode::Add, Ty, Dst, A, B);
  }
  Instruction &sub(Type Ty, RegId Dst, Operand A, Operand B) {
    return binary(Opcode::Sub, Ty, Dst, A, B);
  }
  Instruction &mul(Type Ty, RegId Dst, Operand A, Operand B) {
    return binary(Opcode::Mul, Ty, Dst, A, B);
  }
  Instruction &mad(Type Ty, RegId Dst, Operand A, Operand B, Operand C) {
    return emit(Opcode::Mad, Ty, Dst, {A, B, C});
  }
  Instruction &setp(CmpOp Cmp, Type Ty, RegId Dst, Operand A, Operand B) {
    Instruction &I = emit(Opcode::Setp, Ty, Dst, {A, B});
    I.Cmp = Cmp;
    return I;
  }
  Instruction &selp(Type Ty, RegId Dst, Operand A, Operand B, Operand Pred) {
    return emit(Opcode::Selp, Ty, Dst, {A, B, Pred});
  }
  Instruction &cvt(Type DstTy, RegId Dst, Operand Src) {
    return emit(Opcode::Cvt, DstTy, Dst, {Src});
  }

  Instruction &ld(AddressSpace Space, Type Ty, RegId Dst, Operand Addr,
                  int64_t Offset = 0) {
    Instruction &I = emit(Opcode::Ld, Ty, Dst, {Addr});
    I.Space = Space;
    I.MemOffset = Offset;
    return I;
  }
  Instruction &st(AddressSpace Space, Type Ty, Operand Addr, Operand Value,
                  int64_t Offset = 0) {
    Instruction I(Opcode::St, Ty);
    I.Space = Space;
    I.Srcs = {Addr, Value};
    I.MemOffset = Offset;
    return append(std::move(I));
  }

  Instruction &barSync() { return append(Instruction(Opcode::BarSync)); }

  Instruction &bra(uint32_t Target) {
    Instruction I(Opcode::Bra);
    I.Target = Target;
    return append(std::move(I));
  }
  Instruction &braCond(RegId Pred, bool Negated, uint32_t Taken,
                       uint32_t FallThrough) {
    Instruction I(Opcode::Bra);
    I.Guard = Pred;
    I.GuardNegated = Negated;
    I.Target = Taken;
    I.FalseTarget = FallThrough;
    return append(std::move(I));
  }
  Instruction &ret() { return append(Instruction(Opcode::Ret)); }

  //===--------------------------------------------------------------------===
  // Vector / runtime emitters (used by the vectorizer and divergence
  // lowering)
  //===--------------------------------------------------------------------===

  Instruction &broadcast(RegId Dst, Operand Scalar) {
    return emit(Opcode::Broadcast, K.regType(Dst), Dst, {Scalar});
  }
  Instruction &iota(RegId Dst) {
    return emit(Opcode::Iota, K.regType(Dst), Dst, {});
  }
  Instruction &insertElement(RegId Dst, Operand Vec, Operand Scalar,
                             uint32_t LaneIdx) {
    return emit(Opcode::InsertElement, K.regType(Dst), Dst,
                {Vec, Scalar, Operand::immInt(Type::u32(), LaneIdx)});
  }
  Instruction &extractElement(RegId Dst, Operand Vec, uint32_t LaneIdx) {
    return emit(Opcode::ExtractElement, K.regType(Dst), Dst,
                {Vec, Operand::immInt(Type::u32(), LaneIdx)});
  }
  Instruction &voteSum(RegId Dst, Operand PredVec) {
    return emit(Opcode::VoteSum, Type::u32(), Dst, {PredVec});
  }
  Instruction &spill(Operand Value, Type Ty, int64_t SlotOffset) {
    Instruction I(Opcode::Spill, Ty);
    I.Srcs = {Value};
    I.MemOffset = SlotOffset;
    return append(std::move(I));
  }
  Instruction &restore(RegId Dst, int64_t SlotOffset) {
    Instruction I(Opcode::Restore, K.regType(Dst));
    I.Dst = Dst;
    I.MemOffset = SlotOffset;
    return append(std::move(I));
  }
  Instruction &setRPoint(Operand EntryIds) {
    Instruction I(Opcode::SetRPoint, Type::u32());
    I.Srcs = {EntryIds};
    return append(std::move(I));
  }
  Instruction &setRStatus(ResumeStatus Status) {
    Instruction I(Opcode::SetRStatus, Type::u32());
    I.Srcs = {Operand::immInt(Type::u32(), static_cast<int64_t>(Status))};
    return append(std::move(I));
  }
  Instruction &yield() { return append(Instruction(Opcode::Yield)); }

  Instruction &makeSwitch(Operand Value, std::vector<int64_t> CaseValues,
                          std::vector<uint32_t> CaseTargets,
                          uint32_t DefaultTarget) {
    assert(CaseValues.size() == CaseTargets.size() &&
           "switch case arrays must be parallel");
    Instruction I(Opcode::Switch, Type::u32());
    I.Srcs = {Value};
    I.SwitchValues = std::move(CaseValues);
    I.SwitchTargets = std::move(CaseTargets);
    I.SwitchDefault = DefaultTarget;
    return append(std::move(I));
  }

private:
  Kernel &K;
  uint32_t Block = InvalidBlock;
};

} // namespace simtvec

#endif // SIMTVEC_IR_IRBUILDER_H
