//===- simtvec/ir/ScalarOpsImpl.h - Inline scalar semantics -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for lane-level operation semantics, as inline
/// templates. Two translation units instantiate this code: ScalarOps.cpp
/// (the generic eval* entry points and the decode-time thunk resolvers) and
/// vm/ExecKernels.cpp (the specialized fixed-width lane kernels). Keeping
/// one definition compiled under identical flags is what makes the two
/// paths bit-identical — the dispatch switches below fold away when the
/// opcode/kind arguments are compile-time constants, but the arithmetic
/// that remains is the very same expression either way.
///
/// Bit-identity caveat: these expressions must compile without FP
/// contraction differences between the including TUs. The build never
/// enables -ffast-math, and SIMTVEC_NATIVE explicitly pins
/// -ffp-contract=off, so a*b+c in evalMadImpl is two rounded operations
/// everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_SCALAROPSIMPL_H
#define SIMTVEC_IR_SCALAROPSIMPL_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Type.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

namespace simtvec {
namespace scalarops {

//===----------------------------------------------------------------------===
// Raw-bits <-> typed value. Lane values are stored as 64-bit words:
// integers zero-extended from their bit pattern, f32 in the low 32 bits,
// predicates as 0/1.
//===----------------------------------------------------------------------===

template <typename T> T fromBits(uint64_t Bits);
template <> inline int32_t fromBits(uint64_t Bits) {
  return static_cast<int32_t>(static_cast<uint32_t>(Bits));
}
template <> inline uint32_t fromBits(uint64_t Bits) {
  return static_cast<uint32_t>(Bits);
}
template <> inline int64_t fromBits(uint64_t Bits) {
  return static_cast<int64_t>(Bits);
}
template <> inline uint64_t fromBits(uint64_t Bits) { return Bits; }
template <> inline uint8_t fromBits(uint64_t Bits) {
  return static_cast<uint8_t>(Bits);
}
template <> inline float fromBits(uint64_t Bits) {
  float V;
  uint32_t B = static_cast<uint32_t>(Bits);
  std::memcpy(&V, &B, sizeof(V));
  return V;
}
template <> inline double fromBits(uint64_t Bits) {
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

template <typename T> uint64_t toBits(T Value);
template <> inline uint64_t toBits(int32_t V) {
  return static_cast<uint32_t>(V);
}
template <> inline uint64_t toBits(uint32_t V) { return V; }
template <> inline uint64_t toBits(int64_t V) {
  return static_cast<uint64_t>(V);
}
template <> inline uint64_t toBits(uint64_t V) { return V; }
template <> inline uint64_t toBits(uint8_t V) { return V; }
template <> inline uint64_t toBits(float V) {
  uint32_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}
template <> inline uint64_t toBits(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

//===----------------------------------------------------------------------===
// Scalar operation semantics
//===----------------------------------------------------------------------===

template <typename T>
inline uint64_t intBinary(Opcode Op, uint64_t A, uint64_t B, bool &Bad) {
  T X = fromBits<T>(A), Y = fromBits<T>(B);
  using U = std::make_unsigned_t<T>;
  switch (Op) {
  case Opcode::Add:
    return toBits<T>(static_cast<T>(static_cast<U>(X) + static_cast<U>(Y)));
  case Opcode::Sub:
    return toBits<T>(static_cast<T>(static_cast<U>(X) - static_cast<U>(Y)));
  case Opcode::Mul:
    return toBits<T>(static_cast<T>(static_cast<U>(X) * static_cast<U>(Y)));
  case Opcode::Div:
    // Division never traps: /0 yields 0, and signed T_MIN/-1 (UB and a
    // SIGFPE on x86) wraps to T_MIN like the hardware negate it equals.
    if (Y == 0)
      return toBits<T>(T(0));
    if constexpr (std::is_signed_v<T>)
      if (Y == T(-1))
        return toBits<T>(static_cast<T>(U(0) - static_cast<U>(X)));
    return toBits<T>(static_cast<T>(X / Y));
  case Opcode::Rem:
    if (Y == 0)
      return toBits<T>(T(0));
    if constexpr (std::is_signed_v<T>)
      if (Y == T(-1))
        return toBits<T>(T(0)); // X % -1 == 0, without the T_MIN trap
    return toBits<T>(static_cast<T>(X % Y));
  case Opcode::Min:
    return toBits<T>(X < Y ? X : Y);
  case Opcode::Max:
    return toBits<T>(X > Y ? X : Y);
  case Opcode::And:
    return toBits<T>(static_cast<T>(X & Y));
  case Opcode::Or:
    return toBits<T>(static_cast<T>(X | Y));
  case Opcode::Xor:
    return toBits<T>(static_cast<T>(X ^ Y));
  case Opcode::Shl: {
    unsigned Count = static_cast<unsigned>(Y) & (sizeof(T) * 8 - 1);
    return toBits<T>(static_cast<T>(static_cast<U>(X) << Count));
  }
  case Opcode::Shr: {
    unsigned Count = static_cast<unsigned>(Y) & (sizeof(T) * 8 - 1);
    return toBits<T>(static_cast<T>(X >> Count)); // arithmetic iff signed T
  }
  default:
    Bad = true;
    return 0;
  }
}

template <typename T>
inline uint64_t floatBinary(Opcode Op, uint64_t A, uint64_t B, bool &Bad) {
  T X = fromBits<T>(A), Y = fromBits<T>(B);
  switch (Op) {
  case Opcode::Add:
    return toBits<T>(X + Y);
  case Opcode::Sub:
    return toBits<T>(X - Y);
  case Opcode::Mul:
    return toBits<T>(X * Y);
  case Opcode::Div:
    return toBits<T>(X / Y);
  case Opcode::Min:
    return toBits<T>(X < Y ? X : Y);
  case Opcode::Max:
    return toBits<T>(X > Y ? X : Y);
  default:
    Bad = true;
    return 0;
  }
}

inline uint64_t evalBinaryImpl(Opcode Op, ScalarKind K, uint64_t A,
                               uint64_t B, bool &Bad) {
  switch (K) {
  case ScalarKind::Pred:
    switch (Op) {
    case Opcode::And:
      return (A & B) & 1;
    case Opcode::Or:
      return (A | B) & 1;
    case Opcode::Xor:
      return (A ^ B) & 1;
    default:
      Bad = true;
      return 0;
    }
  case ScalarKind::U8:
    return intBinary<uint8_t>(Op, A, B, Bad);
  case ScalarKind::S32:
    return intBinary<int32_t>(Op, A, B, Bad);
  case ScalarKind::U32:
    return intBinary<uint32_t>(Op, A, B, Bad);
  case ScalarKind::S64:
    return intBinary<int64_t>(Op, A, B, Bad);
  case ScalarKind::U64:
    return intBinary<uint64_t>(Op, A, B, Bad);
  case ScalarKind::F32:
    return floatBinary<float>(Op, A, B, Bad);
  case ScalarKind::F64:
    return floatBinary<double>(Op, A, B, Bad);
  }
  Bad = true;
  return 0;
}

inline uint64_t evalMadImpl(ScalarKind K, uint64_t A, uint64_t B, uint64_t C,
                            bool &Bad) {
  switch (K) {
  case ScalarKind::F32:
    return toBits<float>(fromBits<float>(A) * fromBits<float>(B) +
                         fromBits<float>(C));
  case ScalarKind::F64:
    return toBits<double>(fromBits<double>(A) * fromBits<double>(B) +
                          fromBits<double>(C));
  case ScalarKind::S32:
  case ScalarKind::U32:
    return toBits<uint32_t>(fromBits<uint32_t>(A) * fromBits<uint32_t>(B) +
                            fromBits<uint32_t>(C));
  case ScalarKind::S64:
  case ScalarKind::U64:
    return fromBits<uint64_t>(A) * fromBits<uint64_t>(B) +
           fromBits<uint64_t>(C);
  default:
    Bad = true;
    return 0;
  }
}

template <typename T>
inline uint64_t floatUnary(Opcode Op, uint64_t A, bool &Bad) {
  T X = fromBits<T>(A);
  switch (Op) {
  case Opcode::Neg:
    return toBits<T>(-X);
  case Opcode::Abs:
    return toBits<T>(std::fabs(X));
  case Opcode::Rcp:
    return toBits<T>(T(1) / X);
  case Opcode::Sqrt:
    return toBits<T>(std::sqrt(X));
  case Opcode::Rsqrt:
    return toBits<T>(T(1) / std::sqrt(X));
  case Opcode::Sin:
    return toBits<T>(std::sin(X));
  case Opcode::Cos:
    return toBits<T>(std::cos(X));
  case Opcode::Lg2:
    return toBits<T>(std::log2(X));
  case Opcode::Ex2:
    return toBits<T>(std::exp2(X));
  default:
    Bad = true;
    return 0;
  }
}

template <typename T>
inline uint64_t intUnary(Opcode Op, uint64_t A, bool &Bad) {
  T X = fromBits<T>(A);
  switch (Op) {
  case Opcode::Neg:
    return toBits<T>(static_cast<T>(0 - std::make_unsigned_t<T>(X)));
  case Opcode::Abs:
    // Negate on the unsigned counterpart: abs(INT_MIN) wraps to INT_MIN
    // (like Neg below) instead of the signed-overflow UB of -X.
    return toBits<T>(
        X < 0 ? static_cast<T>(0 - std::make_unsigned_t<T>(X)) : X);
  case Opcode::Not:
    return toBits<T>(static_cast<T>(~X));
  default:
    Bad = true;
    return 0;
  }
}

inline uint64_t evalUnaryImpl(Opcode Op, ScalarKind K, uint64_t A,
                              bool &Bad) {
  switch (K) {
  case ScalarKind::Pred:
    if (Op == Opcode::Not)
      return (~A) & 1;
    Bad = true;
    return 0;
  case ScalarKind::U8:
    return intUnary<uint8_t>(Op, A, Bad);
  case ScalarKind::S32:
    return intUnary<int32_t>(Op, A, Bad);
  case ScalarKind::U32:
    return intUnary<uint32_t>(Op, A, Bad);
  case ScalarKind::S64:
    return intUnary<int64_t>(Op, A, Bad);
  case ScalarKind::U64:
    return intUnary<uint64_t>(Op, A, Bad);
  case ScalarKind::F32:
    return floatUnary<float>(Op, A, Bad);
  case ScalarKind::F64:
    return floatUnary<double>(Op, A, Bad);
  }
  Bad = true;
  return 0;
}

template <typename T> inline bool cmpTyped(CmpOp Cmp, T A, T B) {
  switch (Cmp) {
  case CmpOp::Eq:
    return A == B;
  case CmpOp::Ne:
    return A != B;
  case CmpOp::Lt:
    return A < B;
  case CmpOp::Le:
    return A <= B;
  case CmpOp::Gt:
    return A > B;
  case CmpOp::Ge:
    return A >= B;
  }
  return false;
}

inline bool evalCmpImpl(CmpOp Cmp, ScalarKind K, uint64_t A, uint64_t B) {
  switch (K) {
  case ScalarKind::Pred:
    return cmpTyped<uint64_t>(Cmp, A & 1, B & 1);
  case ScalarKind::U8:
    return cmpTyped(Cmp, fromBits<uint8_t>(A), fromBits<uint8_t>(B));
  case ScalarKind::S32:
    return cmpTyped(Cmp, fromBits<int32_t>(A), fromBits<int32_t>(B));
  case ScalarKind::U32:
    return cmpTyped(Cmp, fromBits<uint32_t>(A), fromBits<uint32_t>(B));
  case ScalarKind::S64:
    return cmpTyped(Cmp, fromBits<int64_t>(A), fromBits<int64_t>(B));
  case ScalarKind::U64:
    return cmpTyped(Cmp, fromBits<uint64_t>(A), fromBits<uint64_t>(B));
  case ScalarKind::F32:
    return cmpTyped(Cmp, fromBits<float>(A), fromBits<float>(B));
  case ScalarKind::F64:
    return cmpTyped(Cmp, fromBits<double>(A), fromBits<double>(B));
  }
  return false;
}

/// Widest-range intermediate conversion with well-defined float->int
/// behaviour (NaN -> 0, saturation at the type bounds).
template <typename To> inline To floatToInt(double V) {
  if (std::isnan(V))
    return To(0);
  constexpr double Lo = static_cast<double>(std::numeric_limits<To>::min());
  constexpr double Hi = static_cast<double>(std::numeric_limits<To>::max());
  if (V <= Lo)
    return std::numeric_limits<To>::min();
  if (V >= Hi)
    return std::numeric_limits<To>::max();
  return static_cast<To>(V);
}

inline uint64_t evalConvertImpl(ScalarKind DstK, ScalarKind SrcK,
                                uint64_t Bits) {
  // Load the source as the widest lossless representation.
  bool SrcFloat = SrcK == ScalarKind::F32 || SrcK == ScalarKind::F64;
  double FloatVal = 0;
  int64_t IntVal = 0;
  uint64_t UIntVal = 0;
  bool SrcSigned = SrcK == ScalarKind::S32 || SrcK == ScalarKind::S64;
  switch (SrcK) {
  case ScalarKind::F32:
    FloatVal = fromBits<float>(Bits);
    break;
  case ScalarKind::F64:
    FloatVal = fromBits<double>(Bits);
    break;
  case ScalarKind::S32:
    IntVal = fromBits<int32_t>(Bits);
    break;
  case ScalarKind::S64:
    IntVal = fromBits<int64_t>(Bits);
    break;
  case ScalarKind::U8:
    UIntVal = fromBits<uint8_t>(Bits);
    break;
  case ScalarKind::U32:
    UIntVal = fromBits<uint32_t>(Bits);
    break;
  case ScalarKind::U64:
    UIntVal = Bits;
    break;
  case ScalarKind::Pred:
    UIntVal = Bits & 1;
    break;
  }

  auto asDouble = [&]() -> double {
    if (SrcFloat)
      return FloatVal;
    if (SrcSigned)
      return static_cast<double>(IntVal);
    return static_cast<double>(UIntVal);
  };
  auto asU64 = [&]() -> uint64_t {
    if (SrcFloat)
      return static_cast<uint64_t>(floatToInt<int64_t>(FloatVal));
    if (SrcSigned)
      return static_cast<uint64_t>(IntVal);
    return UIntVal;
  };

  switch (DstK) {
  case ScalarKind::F32:
    return toBits<float>(static_cast<float>(asDouble()));
  case ScalarKind::F64:
    return toBits<double>(asDouble());
  case ScalarKind::S32:
    if (SrcFloat)
      return toBits<int32_t>(floatToInt<int32_t>(FloatVal));
    return toBits<int32_t>(static_cast<int32_t>(asU64()));
  case ScalarKind::U8:
    if (SrcFloat)
      return toBits<uint8_t>(static_cast<uint8_t>(floatToInt<int64_t>(
          FloatVal)));
    return toBits<uint8_t>(static_cast<uint8_t>(asU64()));
  case ScalarKind::U32:
    if (SrcFloat)
      return toBits<uint32_t>(static_cast<uint32_t>(floatToInt<int64_t>(
          FloatVal)));
    return toBits<uint32_t>(static_cast<uint32_t>(asU64()));
  case ScalarKind::S64:
    if (SrcFloat)
      return toBits<int64_t>(floatToInt<int64_t>(FloatVal));
    return asU64();
  case ScalarKind::U64:
    return asU64();
  case ScalarKind::Pred:
    return asU64() != 0;
  }
  return 0;
}

} // namespace scalarops
} // namespace simtvec

#endif // SIMTVEC_IR_SCALAROPSIMPL_H
