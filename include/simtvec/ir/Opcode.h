//===- simtvec/ir/Opcode.h - SVIR opcodes and properties --------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SVIR instruction opcodes. The set mirrors the PTX subset the paper's
/// pipeline consumes (arithmetic, transcendental, memory, control, barrier),
/// plus the lane/vector operators and runtime intrinsics that the
/// vectorization and yield-on-diverge transformations introduce (paper §4).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_OPCODE_H
#define SIMTVEC_IR_OPCODE_H

#include <cstdint>

namespace simtvec {

enum class Opcode : uint8_t {
  // Data movement and arithmetic (vectorizable).
  Mov,
  Add,
  Sub,
  Mul,
  Mad, ///< d = a * b + c
  Div,
  Rem,
  Min,
  Max,
  Neg,
  Abs,
  And,
  Or,
  Xor,
  Not,
  Shl,
  Shr,
  Setp, ///< compare, writes a predicate
  Selp, ///< d = p ? a : b
  Cvt,  ///< convert between scalar kinds

  // Transcendentals (vectorizable; the paper vectorizes calls to
  // transcendental built-ins).
  Rcp,
  Sqrt,
  Rsqrt,
  Sin,
  Cos,
  Lg2,
  Ex2,

  // Memory (not vectorizable: replicated per thread; paper §4,
  // "Non-vectorizable Instructions").
  Ld,
  St,
  AtomAdd, ///< d = old; [addr] += src (global space only)

  // Control flow and synchronization.
  Bra,     ///< conditional (guarded, two targets) or unconditional
  Ret,     ///< thread termination
  BarSync, ///< CTA-wide barrier

  // Lane and vector operators (introduced by vectorization).
  InsertElement,  ///< d = vec with lane k replaced by scalar
  ExtractElement, ///< d = vec[k]
  Broadcast,      ///< d = splat(scalar)
  Iota,           ///< d = {0, 1, ..., w-1} (u32 vector)
  VoteSum,        ///< d = sum over lanes of a predicate vector (u32 scalar)

  // Runtime intrinsics (introduced by yield-on-diverge lowering, §4.1).
  Switch,     ///< multiway branch on a u32 scalar
  Spill,      ///< store each lane's element to that thread's spill slot
  Restore,    ///< load each lane's element from that thread's spill slot
  SetRPoint,  ///< write per-thread resume entry IDs to the contexts
  SetRStatus, ///< write the warp's resume status
  Yield,      ///< terminator: return control to the execution manager
  Membar,     ///< memory fence (modeled as a no-op with issue cost)

  Trap, ///< terminator: unreachable / abort
};

/// Comparison operators for Setp.
enum class CmpOp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Memory address spaces (paper Figure 1: .global, .shared, .local, .param).
enum class AddressSpace : uint8_t { Global, Shared, Local, Param };

/// Why a warp returned to the execution manager (paper §4.1: "three classes
/// of kernel yields").
enum class ResumeStatus : uint8_t {
  Branch = 0,  ///< divergent (or uniform-exit) branch: threads re-enter ready
  Barrier = 1, ///< CTA-wide barrier: threads wait until all arrive
  Exit = 2,    ///< thread termination: contexts are discarded
};

/// Printable mnemonic, e.g. "mad" or "vote.sum".
const char *opcodeName(Opcode Op);

/// Printable comparison name, e.g. "lt".
const char *cmpOpName(CmpOp Cmp);

/// Printable space name, e.g. "global".
const char *addressSpaceName(AddressSpace Space);

/// True for opcodes that replicate-then-promote to a single vector operation
/// (Algorithm 1's "is vectorizable" predicate).
bool isVectorizable(Opcode Op);

/// True for Ld/St/AtomAdd.
bool isMemoryOp(Opcode Op);

/// True for opcodes that end a basic block.
bool isTerminator(Opcode Op);

/// True for the transcendental group (distinct issue cost in the machine
/// model).
bool isTranscendental(Opcode Op);

/// True when the opcode writes a destination register.
bool hasResult(Opcode Op);

/// True for instructions with side effects that DCE must preserve.
bool hasSideEffects(Opcode Op);

} // namespace simtvec

#endif // SIMTVEC_IR_OPCODE_H
