//===- simtvec/ir/Printer.h - SVIR textual printer --------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, kernels and instructions in the SVIR textual dialect.
/// The printer and parser round-trip: parse(print(M)) is structurally equal
/// to M, including specialization metadata.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_PRINTER_H
#define SIMTVEC_IR_PRINTER_H

#include <string>

namespace simtvec {

class Module;
class Kernel;
class Instruction;

/// Renders \p M as SVIR text.
std::string printModule(const Module &M);

/// Renders \p K as SVIR text.
std::string printKernel(const Kernel &K);

/// Renders one instruction (no trailing newline). \p K supplies register and
/// block names.
std::string printInstruction(const Kernel &K, const Instruction &I);

} // namespace simtvec

#endif // SIMTVEC_IR_PRINTER_H
