//===- simtvec/ir/Instruction.h - SVIR instructions -------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SVIR instructions are plain values held by their basic block. The IR is
/// register-based (PTX-like, not SSA): virtual registers are typed and may
/// be assigned multiple times, so no phi nodes exist and the vectorizer's
/// replication (paper Algorithm 1) is a straightforward register remapping.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_IR_INSTRUCTION_H
#define SIMTVEC_IR_INSTRUCTION_H

#include "simtvec/ir/Opcode.h"
#include "simtvec/ir/Operand.h"

#include <cstdint>
#include <vector>

namespace simtvec {

/// Sentinel for "no block target".
inline constexpr uint32_t InvalidBlock = ~0u;

/// One SVIR instruction.
class Instruction {
public:
  Opcode Op = Opcode::Trap;

  /// Operation type: the lane type the operation computes in. For Setp this
  /// is the *compared* type (the result register is .pred). For Ld/St it is
  /// the memory element type.
  Type Ty;

  /// Comparison operator; meaningful for Setp only.
  CmpOp Cmp = CmpOp::Eq;

  /// Address space; meaningful for Ld/St/AtomAdd.
  AddressSpace Space = AddressSpace::Global;

  /// Destination register; invalid when the opcode has no result.
  RegId Dst;

  /// Source operands. For Ld/AtomAdd the first operand is the address; for
  /// St the first operand is the address and the second the stored value.
  std::vector<Operand> Srcs;

  /// Byte offset added to the address operand of Ld/St/AtomAdd, and the slot
  /// offset of Spill/Restore.
  int64_t MemOffset = 0;

  /// Guard predicate (PTX `@%p` / `@!%p`); invalid when unguarded. For Bra
  /// the guard is the branch condition.
  RegId Guard;
  bool GuardNegated = false;

  /// Lane index this instruction executes for. Meaningful for replicated
  /// scalar instructions inside a vectorized kernel: per-thread state
  /// (special registers, .local addresses, guards) is resolved against lane
  /// `Lane` of the executing warp.
  uint16_t Lane = 0;

  /// Bra: taken target; unconditional branches use only this.
  uint32_t Target = InvalidBlock;
  /// Bra: fall-through target of a guarded (conditional) branch.
  uint32_t FalseTarget = InvalidBlock;

  /// Switch: case values and targets (parallel arrays) plus default target.
  std::vector<int64_t> SwitchValues;
  std::vector<uint32_t> SwitchTargets;
  uint32_t SwitchDefault = InvalidBlock;

  Instruction() = default;
  explicit Instruction(Opcode Op, Type Ty = Type()) : Op(Op), Ty(Ty) {}

  bool isTerminator() const { return simtvec::isTerminator(Op); }
  bool isConditionalBranch() const {
    return Op == Opcode::Bra && Guard.isValid();
  }
  bool hasResult() const { return simtvec::hasResult(Op) && Dst.isValid(); }

  /// Invokes \p Fn on every register this instruction reads (sources and
  /// guard).
  template <typename Fn> void forEachUse(Fn &&F) const {
    for (const Operand &O : Srcs)
      if (O.isReg())
        F(O.regId());
    if (Guard.isValid())
      F(Guard);
  }
};

} // namespace simtvec

#endif // SIMTVEC_IR_INSTRUCTION_H
